open Remy_cc
open Remy_sim

(* Receiver-level delayed-ACK tests driven by an explicit engine. *)

let make_receiver ?delack () =
  let metrics = Metrics.create ~n_flows:1 in
  let acks = ref [] in
  let r =
    Receiver.create ~flow:0 ~metrics
      ~queueing_delay_of:(fun _ ~now:_ -> 0.)
      ~ack_sink:(fun a -> acks := a :: !acks)
      ?delack ()
  in
  (r, acks)

let pkt ?(conn = 0) seq = Packet.make ~flow:0 ~seq ~conn ~now:0.1 ()

let test_batches_in_order () =
  let engine = Engine.create () in
  let delack =
    {
      Receiver.ack_every = 2;
      delack_timeout = 0.2;
      schedule_in = Engine.schedule_in engine;
    }
  in
  let r, acks = make_receiver ~delack () in
  Receiver.receive r ~now:0.2 (pkt 0);
  Alcotest.(check int) "first arrival deferred" 0 (List.length !acks);
  Receiver.receive r ~now:0.21 (pkt 1);
  Alcotest.(check int) "second arrival flushes" 1 (List.length !acks);
  Alcotest.(check int) "cumulative covers both" 2 (List.hd !acks).Packet.cum_ack

let test_timer_flushes_straggler () =
  let engine = Engine.create () in
  let delack =
    {
      Receiver.ack_every = 2;
      delack_timeout = 0.2;
      schedule_in = Engine.schedule_in engine;
    }
  in
  let r, acks = make_receiver ~delack () in
  Engine.schedule engine 0.1 (fun () -> Receiver.receive r ~now:0.1 (pkt 0));
  Engine.run engine ~until:1.;
  Alcotest.(check int) "timer flushed the straggler" 1 (List.length !acks);
  Alcotest.(check int) "cum" 1 (List.hd !acks).Packet.cum_ack

let test_out_of_order_immediate () =
  let engine = Engine.create () in
  let delack =
    {
      Receiver.ack_every = 4;
      delack_timeout = 0.5;
      schedule_in = Engine.schedule_in engine;
    }
  in
  let r, acks = make_receiver ~delack () in
  Receiver.receive r ~now:0.1 (pkt 0);
  (* Segment 1 missing: the out-of-order arrival must be ACKed now so
     the sender's dupACK counter works. *)
  Receiver.receive r ~now:0.2 (pkt 2);
  Alcotest.(check bool) "dup ack immediate" true (List.length !acks >= 1);
  let cum = (List.hd !acks).Packet.cum_ack in
  Alcotest.(check int) "cum shows the hole" 1 cum

let test_no_delack_unchanged () =
  let r, acks = make_receiver () in
  for i = 0 to 3 do
    Receiver.receive r ~now:0.1 (pkt i)
  done;
  Alcotest.(check int) "per-packet acks" 4 (List.length !acks)

let test_transfer_with_delack_completes () =
  (* End-to-end: sender completes a transfer against a delayed-ACK
     receiver (the RTO/timer machinery must tolerate batched ACKs). *)
  let engine = Engine.create () in
  let metrics = Metrics.create ~n_flows:1 in
  let sender_cell = ref None in
  let delack =
    {
      Receiver.ack_every = 2;
      delack_timeout = 0.2;
      schedule_in = Engine.schedule_in engine;
    }
  in
  let receiver =
    Receiver.create ~flow:0 ~metrics
      ~queueing_delay_of:(fun _ ~now:_ -> 0.)
      ~ack_sink:(fun a ->
        Engine.schedule_in engine 0.05 (fun () ->
            Tcp_sender.handle_ack (Option.get !sender_cell) a))
      ~delack ()
  in
  let sender =
    Tcp_sender.create engine
      {
        Tcp_sender.flow = 0;
        cc = Newreno.make ();
        rtt = 0.1;
        workload =
          {
            Workload.off_time = Remy_util.Dist.Constant infinity;
            on_spec = Workload.By_bytes (Remy_util.Dist.Constant (50. *. 1500.));
          };
        start = `Immediate;
        min_rto = 0.2;
      }
      ~transmit:(fun p ->
        Engine.schedule_in engine 0.05 (fun () ->
            Receiver.receive receiver ~now:(Engine.now engine) p))
      ~metrics ~rng:(Remy_util.Prng.create 1)
  in
  sender_cell := Some sender;
  Tcp_sender.start sender;
  Engine.run engine ~until:30.;
  Alcotest.(check int) "transfer completes" 50 (Tcp_sender.cum_acked sender)

let test_dumbbell_with_delack () =
  (* The full dumbbell runs with delayed-ACK receivers; throughput stays
     in the same ballpark as per-packet ACKs. *)
  let flows =
    [|
      {
        Dumbbell.cc = Newreno.factory ();
        rtt = 0.1;
        workload = Workload.saturating;
        start = `Immediate;
      };
    |]
  in
  let config =
    {
      Dumbbell.service = Dumbbell.Rate_mbps 10.;
      qdisc = Dumbbell.Droptail 500;
      flows;
      duration = 20.;
      seed = 77;
      min_rto = 0.2;
    }
  in
  let plain = Dumbbell.run config in
  let delayed = Dumbbell.run ~delack:(2, 0.2) config in
  let tput r = r.Dumbbell.flows.(0).Metrics.throughput_mbps in
  Alcotest.(check bool) "delack throughput within 30%" true
    (tput delayed > 0.7 *. tput plain)

let tests =
  [
    Alcotest.test_case "batches in-order acks" `Quick test_batches_in_order;
    Alcotest.test_case "dumbbell with delack" `Slow test_dumbbell_with_delack;
    Alcotest.test_case "timer flushes straggler" `Quick test_timer_flushes_straggler;
    Alcotest.test_case "out-of-order acked immediately" `Quick test_out_of_order_immediate;
    Alcotest.test_case "no delack = per-packet" `Quick test_no_delack_unchanged;
    Alcotest.test_case "transfer completes with delack" `Quick test_transfer_with_delack_completes;
  ]
