open Remy_util

let test_mean_variance () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check (float 1e-9)) "mean" 3. (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "variance" 2.5 (Stats.variance xs);
  Alcotest.(check (float 1e-9)) "stddev" (sqrt 2.5) (Stats.stddev xs)

let test_empty_and_singleton () =
  Alcotest.(check bool) "mean of empty is nan" true (Float.is_nan (Stats.mean [||]));
  Alcotest.(check (float 0.)) "variance of singleton" 0. (Stats.variance [| 7. |])

let test_median () =
  Alcotest.(check (float 1e-9)) "odd" 2. (Stats.median [| 3.; 1.; 2. |]);
  Alcotest.(check (float 1e-9)) "even interpolates" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |])

let test_quantile () =
  let xs = [| 10.; 20.; 30.; 40. |] in
  Alcotest.(check (float 1e-9)) "q0" 10. (Stats.quantile xs 0.);
  Alcotest.(check (float 1e-9)) "q1" 40. (Stats.quantile xs 1.);
  Alcotest.(check (float 1e-9)) "q1/3" 20. (Stats.quantile xs (1. /. 3.));
  Alcotest.check_raises "empty raises" (Invalid_argument "Stats.quantile: empty")
    (fun () -> ignore (Stats.quantile [||] 0.5));
  Alcotest.check_raises "q out of range" (Invalid_argument "Stats.quantile: q outside [0,1]")
    (fun () -> ignore (Stats.quantile xs 1.5))

let test_covariance () =
  let xs = [| 1.; 2.; 3. |] and ys = [| 2.; 4.; 6. |] in
  Alcotest.(check (float 1e-9)) "cov" 2. (Stats.covariance xs ys);
  let anti = [| 6.; 4.; 2. |] in
  Alcotest.(check (float 1e-9)) "negative cov" (-2.) (Stats.covariance xs anti)

let test_running_matches_direct () =
  let rng = Prng.create 12 in
  let xs = Array.init 1000 (fun _ -> Prng.float rng 10.) in
  let r = Stats.running_create () in
  Array.iter (Stats.running_add r) xs;
  Alcotest.(check int) "count" 1000 (Stats.running_count r);
  Alcotest.(check (float 1e-9)) "mean" (Stats.mean xs) (Stats.running_mean r);
  Alcotest.(check (float 1e-6)) "variance" (Stats.variance xs) (Stats.running_variance r)

let test_linear_fit () =
  let points = Array.init 10 (fun i -> (float_of_int i, (2.5 *. float_of_int i) +. 1.)) in
  let slope, intercept = Stats.linear_fit points in
  Alcotest.(check (float 1e-9)) "slope" 2.5 slope;
  Alcotest.(check (float 1e-9)) "intercept" 1. intercept

let test_standard_error () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check (float 1e-9)) "se" (Stats.stddev xs /. 2.) (Stats.standard_error xs)

let prop_median_bounded =
  QCheck.Test.make ~name:"median lies within min..max" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let m = Stats.median xs in
      let lo = Array.fold_left Float.min infinity xs in
      let hi = Array.fold_left Float.max neg_infinity xs in
      m >= lo && m <= hi)

let prop_variance_nonneg =
  QCheck.Test.make ~name:"variance is non-negative" ~count:200
    QCheck.(array_of_size Gen.(int_range 0 50) (float_range (-1e3) 1e3))
    (fun xs -> Stats.variance xs >= 0.)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone in q" ~count:200
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 40) (float_range (-1e3) 1e3))
        (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun (xs, (q1, q2)) ->
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Stats.quantile xs lo <= Stats.quantile xs hi +. 1e-9)

let tests =
  [
    Alcotest.test_case "mean/variance/stddev" `Quick test_mean_variance;
    Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
    Alcotest.test_case "median" `Quick test_median;
    Alcotest.test_case "quantile" `Quick test_quantile;
    Alcotest.test_case "covariance" `Quick test_covariance;
    Alcotest.test_case "running matches direct" `Quick test_running_matches_direct;
    Alcotest.test_case "linear fit recovers line" `Quick test_linear_fit;
    Alcotest.test_case "standard error" `Quick test_standard_error;
    QCheck_alcotest.to_alcotest prop_median_bounded;
    QCheck_alcotest.to_alcotest prop_variance_nonneg;
    QCheck_alcotest.to_alcotest prop_quantile_monotone;
  ]
