open Remy_util

let rng () = Prng.create 99

let test_exponential_mean () =
  let rng = rng () in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Dist.exponential rng 3.0
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 3.0) > 0.1 then Alcotest.failf "exp mean off: %f" mean

let test_exponential_positive () =
  let rng = rng () in
  for _ = 1 to 10_000 do
    if Dist.exponential rng 1.0 <= 0. then Alcotest.fail "non-positive draw"
  done

let test_pareto_lower_bound () =
  let rng = rng () in
  for _ = 1 to 10_000 do
    let x = Dist.pareto rng ~xm:147. ~alpha:0.5 in
    if x < 147. then Alcotest.failf "pareto below xm: %f" x
  done

let test_pareto_median () =
  (* Median of Pareto(xm, alpha) is xm * 2^(1/alpha): 147 * 4 = 588. *)
  let rng = rng () in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Dist.pareto rng ~xm:147. ~alpha:0.5) in
  let med = Stats.median xs in
  if Float.abs (med -. 588.) > 25. then Alcotest.failf "pareto median off: %f" med

let test_icsi_floor () =
  (* Every evaluation flow gets at least the 16 KiB the paper adds. *)
  let rng = rng () in
  for _ = 1 to 10_000 do
    let x = Dist.pareto_icsi rng in
    if x < 16384. then Alcotest.failf "flow below 16 KiB: %f" x
  done

let test_icsi_cdf_formula () =
  Alcotest.(check (float 1e-9)) "below xm" 0. (Dist.icsi_cdf 100.);
  (* P(X <= x) = 1 - (147/(x+40))^0.5 *)
  let x = 10_000. in
  let expected = 1. -. sqrt (147. /. (x +. 40.)) in
  Alcotest.(check (float 1e-9)) "closed form" expected (Dist.icsi_cdf x)

let test_icsi_cdf_matches_samples () =
  let rng = rng () in
  let n = 40_000 in
  let xs =
    Array.init n (fun _ ->
        (* Undo the +16 KiB shift to compare against the raw CDF. *)
        Dist.pareto_icsi rng -. 16384.)
  in
  List.iter
    (fun q ->
      let empirical =
        float_of_int (Array.length (Array.of_list (List.filter (fun x -> x <= q) (Array.to_list xs))))
        /. float_of_int n
      in
      let expected = Dist.icsi_cdf q in
      if Float.abs (empirical -. expected) > 0.015 then
        Alcotest.failf "CDF mismatch at %g: %f vs %f" q empirical expected)
    [ 200.; 1000.; 10_000.; 100_000. ]

let test_gaussian_moments () =
  let rng = rng () in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Dist.gaussian rng ~mean:2. ~std:3.) in
  let mean = Stats.mean xs and sd = Stats.stddev xs in
  if Float.abs (mean -. 2.) > 0.06 then Alcotest.failf "gaussian mean off: %f" mean;
  if Float.abs (sd -. 3.) > 0.06 then Alcotest.failf "gaussian std off: %f" sd

let test_sample_dispatch () =
  let rng = rng () in
  Alcotest.(check (float 0.)) "constant" 4.2 (Dist.sample (Dist.Constant 4.2) rng);
  let u = Dist.sample (Dist.Uniform (1., 2.)) rng in
  if u < 1. || u >= 2. then Alcotest.failf "uniform sample out of range: %f" u;
  let e = Dist.sample (Dist.Empirical [| 5.; 5.; 5. |]) rng in
  Alcotest.(check (float 0.)) "empirical" 5. e

let test_mean_closed_forms () =
  Alcotest.(check (option (float 1e-9))) "constant" (Some 3.) (Dist.mean (Dist.Constant 3.));
  Alcotest.(check (option (float 1e-9))) "uniform" (Some 1.5) (Dist.mean (Dist.Uniform (1., 2.)));
  Alcotest.(check (option (float 1e-9))) "exponential" (Some 7.) (Dist.mean (Dist.Exponential 7.));
  Alcotest.(check (option (float 1e-9)))
    "heavy-tail Pareto has no mean" None
    (Dist.mean (Dist.Pareto { xm = 147.; alpha = 0.5; shift = 40. }));
  Alcotest.(check (option (float 1e-6)))
    "pareto alpha>1" (Some ((2. *. 10. /. 1.) -. 0.))
    (Dist.mean (Dist.Pareto { xm = 10.; alpha = 2.; shift = 0. }))

let tests =
  [
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
    Alcotest.test_case "pareto lower bound" `Quick test_pareto_lower_bound;
    Alcotest.test_case "pareto median" `Quick test_pareto_median;
    Alcotest.test_case "ICSI flows get 16 KiB floor" `Quick test_icsi_floor;
    Alcotest.test_case "ICSI CDF closed form" `Quick test_icsi_cdf_formula;
    Alcotest.test_case "ICSI CDF matches samples" `Quick test_icsi_cdf_matches_samples;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "sample dispatch" `Quick test_sample_dispatch;
    Alcotest.test_case "closed-form means" `Quick test_mean_closed_forms;
  ]
