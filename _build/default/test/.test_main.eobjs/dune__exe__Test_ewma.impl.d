test/test_ewma.ml: Alcotest Ewma Float Gen List QCheck QCheck_alcotest Remy_util
