test/test_action.ml: Action Alcotest Float List QCheck QCheck_alcotest Remy
