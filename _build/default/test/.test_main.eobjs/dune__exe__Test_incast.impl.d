test/test_incast.ml: Alcotest Array Dctcp Dumbbell Metrics Prng Remy_cc Remy_sim Remy_util Workload
