test/test_scenarios.ml: Alcotest Array Filename List Remy Remy_cc Remy_scenarios Remy_sim Scenario Schemes Tables Workload
