test/test_qdisc_props.ml: Alcotest Codel Droptail Gen List Packet Printf QCheck QCheck_alcotest Qdisc Red Remy_sim Sfq_codel
