test/test_heap.ml: Alcotest Fun Gen Heap List Option QCheck QCheck_alcotest Remy_util
