test/test_figures.ml: Alcotest Figures Filename Format In_channel List Printf Remy_scenarios Result String Sys Tables
