test/test_remycc.ml: Action Alcotest Array Cc List Memory Remy Remy_cc Remycc Rule_tree Tally
