test/test_cc_algorithms.ml: Alcotest Cc Compound Cubic Dctcp Float Newreno Remy_cc Remy_sim Vegas Xcp
