test/test_net_model.ml: Alcotest Array Float Net_model Prng Remy Remy_sim Remy_util
