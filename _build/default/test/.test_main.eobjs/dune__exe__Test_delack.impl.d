test/test_delack.ml: Alcotest Array Dumbbell Engine List Metrics Newreno Option Packet Receiver Remy_cc Remy_sim Remy_util Tcp_sender Workload
