test/test_metrics.ml: Alcotest Array Metrics Remy_sim
