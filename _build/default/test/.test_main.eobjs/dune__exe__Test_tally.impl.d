test/test_tally.ml: Alcotest List Memory Remy Tally
