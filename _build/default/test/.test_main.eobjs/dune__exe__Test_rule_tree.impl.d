test/test_rule_tree.ml: Action Alcotest Array Filename Float Format List Memory Out_channel Prng QCheck QCheck_alcotest Remy Remy_util Rule_tree Sys
