test/test_cell_trace.ml: Alcotest Array Cell_trace Filename Float Link List Out_channel Prng Remy_sim Remy_util Sys
