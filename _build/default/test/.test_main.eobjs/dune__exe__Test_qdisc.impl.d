test/test_qdisc.ml: Alcotest Droptail List Option Packet Qdisc Red Remy_sim
