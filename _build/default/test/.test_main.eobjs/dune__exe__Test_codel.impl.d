test/test_codel.ml: Alcotest Codel List Packet Qdisc Remy_sim Sfq_codel
