test/test_optimizer.ml: Alcotest Evaluator Float Net_model Objective Optimizer Remy Remy_util Rule_tree Unix
