test/test_lossy.ml: Alcotest Array Droptail Dumbbell Float List Lossy Newreno Packet Qdisc Remy_cc Remy_sim Remy_util Workload
