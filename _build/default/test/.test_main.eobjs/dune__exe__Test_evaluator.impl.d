test/test_evaluator.ml: Action Alcotest Array Evaluator Float List Net_model Objective Remy Remy_util Rule_tree Tally
