test/test_par.ml: Alcotest Array Fun Par Remy
