test/test_sexp.ml: Alcotest Filename Float Format List QCheck QCheck_alcotest Remy_util Result Sexp String Sys
