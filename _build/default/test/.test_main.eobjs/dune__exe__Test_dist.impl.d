test/test_dist.ml: Alcotest Array Dist Float List Prng Remy_util Stats
