test/test_memory.ml: Alcotest Gen List Memory QCheck QCheck_alcotest Remy
