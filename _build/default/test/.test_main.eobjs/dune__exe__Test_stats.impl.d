test/test_stats.ml: Alcotest Array Float Gen Prng QCheck QCheck_alcotest Remy_util Stats
