test/test_link.ml: Alcotest Array Droptail Engine Link List Packet Remy_sim
