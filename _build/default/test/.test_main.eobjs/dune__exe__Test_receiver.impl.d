test/test_receiver.ml: Alcotest List Metrics Packet Receiver Remy_cc Remy_sim
