test/test_dumbbell.ml: Alcotest Array Cell_trace Dctcp Dumbbell Float List Metrics Newreno Remy_cc Remy_sim Remy_util Workload
