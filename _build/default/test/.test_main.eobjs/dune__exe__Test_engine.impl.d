test/test_engine.ml: Alcotest Engine Gen List QCheck QCheck_alcotest Remy_sim
