test/test_ellipse.ml: Alcotest Array Ellipse Float QCheck QCheck_alcotest Remy_util Stats
