test/test_objective.ml: Alcotest Float Objective QCheck QCheck_alcotest Remy
