test/test_table_diff.ml: Action Alcotest Memory Remy Rule_tree Table_diff
