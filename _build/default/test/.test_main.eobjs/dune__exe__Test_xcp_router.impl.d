test/test_xcp_router.ml: Alcotest Array Dumbbell Float Metrics Newreno Remy_cc Remy_sim Workload Xcp
