test/test_data_tables.ml: Action Alcotest Filename Format List Memory Printf Remy Remy_cc Remy_scenarios Remy_sim Remy_util Rule_tree Scenario Schemes Sys Tables
