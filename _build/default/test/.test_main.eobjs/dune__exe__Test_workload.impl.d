test/test_workload.ml: Alcotest Float Packet Prng Remy_sim Remy_util Workload
