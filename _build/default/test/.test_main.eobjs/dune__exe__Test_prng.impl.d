test/test_prng.ml: Alcotest Array Float List Prng Remy_util
