test/test_tcp_sender.ml: Alcotest Cc Engine Hashtbl List Metrics Newreno Option Packet Prng Receiver Remy_cc Remy_sim Remy_util Tcp_sender Workload
