(* Integration smoke tests: every experiment in the benchmark harness
   runs end-to-end at micro scale without raising, and produces
   artifacts when asked.  These exercise the same code paths as
   `dune exec bench/main.exe`. *)

open Remy_scenarios

let null_fmt =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let micro_opts ?artifact_dir () =
  {
    Figures.replications = 1;
    duration = 4.;
    base_seed = 12345;
    progress = ignore;
    artifact_dir;
  }

(* Every experiment must have a pre-trained table available, otherwise
   the fallback trainer would dominate test time; skip the experiment
   (not fail) if its tables are absent, since `dune runtest` must work
   from a fresh checkout. *)
let tables_available specs =
  List.for_all (fun spec -> Result.is_ok (Tables.load spec.Tables.table)) specs

let smoke ?(needs = []) id =
  Alcotest.test_case id `Slow (fun () ->
      if tables_available needs then begin
        match List.assoc_opt id Figures.all with
        | Some f -> f null_fmt (micro_opts ())
        | None -> Alcotest.failf "experiment %s not registered" id
      end
      else Printf.eprintf "[skip] %s: tables not trained yet\n" id)

let deltas = [ Tables.delta01; Tables.delta1; Tables.delta10 ]

let test_artifacts_written () =
  if tables_available deltas then begin
    let dir = Filename.temp_file "remy_artifacts" "" in
    Sys.remove dir;
    (match List.assoc_opt "fig4" Figures.all with
    | Some f -> f null_fmt (micro_opts ~artifact_dir:dir ())
    | None -> Alcotest.fail "fig4 missing");
    Alcotest.(check bool) "scatter tsv" true (Sys.file_exists (Filename.concat dir "fig4.tsv"));
    Alcotest.(check bool) "medians tsv" true
      (Sys.file_exists (Filename.concat dir "fig4_medians.tsv"));
    (* The TSV has a header and at least one data row. *)
    let lines =
      In_channel.with_open_text (Filename.concat dir "fig4.tsv") In_channel.input_all
      |> String.split_on_char '\n'
      |> List.filter (fun l -> String.trim l <> "")
    in
    Alcotest.(check bool) "rows present" true (List.length lines > 1);
    Alcotest.(check bool) "header marked" true
      (String.length (List.hd lines) > 0 && (List.hd lines).[0] = '#')
  end

let test_experiment_registry_complete () =
  let ids = List.map fst Figures.all in
  List.iter
    (fun expected ->
      if not (List.mem expected ids) then Alcotest.failf "missing %s" expected)
    [
      "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10";
      "tbl_datacenter"; "tbl_competing"; "fig11"; "ablation_loss";
      "ablation_signals";
    ]

let tests =
  [
    Alcotest.test_case "registry complete" `Quick test_experiment_registry_complete;
    smoke "fig3";
    smoke ~needs:deltas "fig4";
    smoke ~needs:deltas "fig5";
    smoke ~needs:[ Tables.delta1; Tables.onex ] "fig6";
    smoke ~needs:deltas "fig7";
    smoke ~needs:deltas "fig9";
    smoke ~needs:deltas "fig10";
    smoke ~needs:[ Tables.datacenter ] "tbl_datacenter";
    smoke ~needs:[ Tables.coexist ] "tbl_competing";
    smoke ~needs:[ Tables.onex; Tables.tenx ] "fig11";
    smoke ~needs:[ Tables.delta1 ] "ablation_loss";
    smoke ~needs:[ Tables.delta1 ] "ablation_signals";
    Alcotest.test_case "artifacts written" `Slow test_artifacts_written;
  ]
