open Remy_sim

let test_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e 3. (fun () -> log := 3 :: !log);
  Engine.schedule e 1. (fun () -> log := 1 :: !log);
  Engine.schedule e 2. (fun () -> log := 2 :: !log);
  Engine.run e ~until:10.;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log)

let test_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  List.iter (fun i -> Engine.schedule e 1. (fun () -> log := i :: !log)) [ 1; 2; 3 ];
  Engine.run e ~until:10.;
  Alcotest.(check (list int)) "FIFO at same instant" [ 1; 2; 3 ] (List.rev !log)

let test_clock_advances () =
  let e = Engine.create () in
  let seen = ref 0. in
  Engine.schedule e 2.5 (fun () -> seen := Engine.now e);
  Engine.run e ~until:10.;
  Alcotest.(check (float 1e-12)) "clock at event" 2.5 !seen;
  Alcotest.(check (float 1e-12)) "clock at horizon" 10. (Engine.now e)

let test_until_excludes_later () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule e 5. (fun () -> fired := true);
  Engine.run e ~until:4.;
  Alcotest.(check bool) "future event not fired" false !fired;
  Alcotest.(check int) "still pending" 1 (Engine.pending e);
  Engine.run e ~until:6.;
  Alcotest.(check bool) "fires later" true !fired

let test_cascading () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 5 then Engine.schedule_in e 1. tick
  in
  Engine.schedule e 0. tick;
  Engine.run e ~until:100.;
  Alcotest.(check int) "chain of events" 5 !count;
  Alcotest.(check int) "agenda drained" 0 (Engine.pending e)

let test_past_scheduling_rejected () =
  let e = Engine.create () in
  Engine.schedule e 5. (fun () -> ());
  Engine.run e ~until:5.;
  (try
     Engine.schedule e 1. (fun () -> ());
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_schedule_now_during_event () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e 1. (fun () ->
      Engine.schedule e (Engine.now e) (fun () -> log := "inner" :: !log);
      log := "outer" :: !log);
  Engine.run e ~until:2.;
  Alcotest.(check (list string)) "same-instant follow-up runs" [ "outer"; "inner" ]
    (List.rev !log)

let prop_random_schedule_fires_in_order =
  QCheck.Test.make ~name:"random schedules fire in nondecreasing time order"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 0 100) (float_range 0. 1000.))
    (fun times ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iter (fun t -> Engine.schedule e t (fun () -> fired := t :: !fired)) times;
      Engine.run e ~until:2000.;
      let fired = List.rev !fired in
      List.length fired = List.length times
      && List.for_all2 ( = ) fired (List.sort compare times))

let test_stress_many_events () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 0 to 49_999 do
    Engine.schedule e (float_of_int (i * 7919 mod 10_000)) (fun () -> incr count)
  done;
  Engine.run e ~until:1e6;
  Alcotest.(check int) "all 50k fired" 50_000 !count;
  Alcotest.(check int) "drained" 0 (Engine.pending e)

let tests =
  [
    Alcotest.test_case "events fire in time order" `Quick test_order;
    QCheck_alcotest.to_alcotest prop_random_schedule_fires_in_order;
    Alcotest.test_case "50k-event stress" `Quick test_stress_many_events;
    Alcotest.test_case "same-time events are FIFO" `Quick test_same_time_fifo;
    Alcotest.test_case "clock advances with events" `Quick test_clock_advances;
    Alcotest.test_case "run ~until excludes later events" `Quick test_until_excludes_later;
    Alcotest.test_case "cascading self-scheduling" `Quick test_cascading;
    Alcotest.test_case "scheduling in the past rejected" `Quick test_past_scheduling_rejected;
    Alcotest.test_case "same-instant follow-up" `Quick test_schedule_now_during_event;
  ]
