open Remy_sim
open Remy_util

let test_by_time () =
  let w = Workload.by_time ~mean_on:2. ~mean_off:1. in
  let rng = Prng.create 5 in
  for _ = 1 to 100 do
    (match Workload.sample_on w rng with
    | Workload.Seconds s -> if s <= 0. then Alcotest.fail "non-positive on time"
    | Workload.Packets _ -> Alcotest.fail "expected Seconds");
    if Workload.sample_off w rng <= 0. then Alcotest.fail "non-positive off time"
  done

let test_by_bytes_rounding () =
  let w = Workload.by_bytes ~mean_bytes:100. ~mean_off:1. in
  let rng = Prng.create 5 in
  for _ = 1 to 200 do
    match Workload.sample_on w rng with
    | Workload.Packets n -> if n < 1 then Alcotest.fail "flow below one segment"
    | Workload.Seconds _ -> Alcotest.fail "expected Packets"
  done

let test_by_bytes_mean () =
  let w = Workload.by_bytes ~mean_bytes:1_000_000. ~mean_off:1. in
  let rng = Prng.create 6 in
  let n = 20_000 in
  let total = ref 0 in
  for _ = 1 to n do
    match Workload.sample_on w rng with
    | Workload.Packets p -> total := !total + p
    | Workload.Seconds _ -> ()
  done;
  let mean_pkts = float_of_int !total /. float_of_int n in
  let expected = 1_000_000. /. float_of_int Packet.default_size in
  if Float.abs (mean_pkts -. expected) /. expected > 0.05 then
    Alcotest.failf "mean packets off: %f vs %f" mean_pkts expected

let test_icsi_floor () =
  let w = Workload.icsi ~mean_off:0.2 in
  let rng = Prng.create 7 in
  let min_pkts = 16384 / Packet.default_size in
  for _ = 1 to 1000 do
    match Workload.sample_on w rng with
    | Workload.Packets n ->
      if n < min_pkts then Alcotest.failf "ICSI flow too small: %d" n
    | Workload.Seconds _ -> Alcotest.fail "expected Packets"
  done

let test_saturating () =
  let rng = Prng.create 8 in
  (match Workload.sample_on Workload.saturating rng with
  | Workload.Seconds s -> Alcotest.(check bool) "infinite on" true (s = infinity)
  | Workload.Packets _ -> Alcotest.fail "expected Seconds");
  Alcotest.(check bool) "infinite off" true
    (Workload.sample_off Workload.saturating rng = infinity)

let tests =
  [
    Alcotest.test_case "by-time sampling" `Quick test_by_time;
    Alcotest.test_case "by-bytes rounds to segments" `Quick test_by_bytes_rounding;
    Alcotest.test_case "by-bytes mean" `Quick test_by_bytes_mean;
    Alcotest.test_case "ICSI 16 KiB floor" `Quick test_icsi_floor;
    Alcotest.test_case "saturating workload" `Quick test_saturating;
  ]
