open Remy_sim
open Remy_util

let test_synthesize_duration () =
  let rng = Prng.create 11 in
  let t = Cell_trace.synthesize rng Cell_trace.verizon_like ~duration:30. in
  let total = Array.fold_left ( +. ) 0. t.Cell_trace.gaps in
  Alcotest.(check bool) "covers requested span" true (total >= 29.);
  Array.iter (fun g -> if g <= 0. then Alcotest.fail "non-positive gap") t.Cell_trace.gaps

let test_mean_rate_plausible () =
  let rng = Prng.create 12 in
  let t = Cell_trace.synthesize rng Cell_trace.verizon_like ~duration:120. in
  let rate = Cell_trace.mean_rate_mbps t in
  (* Mean-reverting walk around 9 Mbps: allow a broad band. *)
  if rate < 3. || rate > 30. then Alcotest.failf "implausible mean rate: %f" rate

let test_att_slower_than_verizon () =
  let t1 = Cell_trace.synthesize (Prng.create 13) Cell_trace.verizon_like ~duration:200. in
  let t2 = Cell_trace.synthesize (Prng.create 13) Cell_trace.att_like ~duration:200. in
  Alcotest.(check bool) "AT&T-like profile is slower" true
    (Cell_trace.mean_rate_mbps t2 < Cell_trace.mean_rate_mbps t1)

let test_deterministic () =
  let t1 = Cell_trace.synthesize (Prng.create 5) Cell_trace.att_like ~duration:10. in
  let t2 = Cell_trace.synthesize (Prng.create 5) Cell_trace.att_like ~duration:10. in
  Alcotest.(check bool) "same seed, same trace" true (t1.Cell_trace.gaps = t2.Cell_trace.gaps)

let test_gap_fn_cycles () =
  let t = { Cell_trace.gaps = [| 1.; 2.; 3. |]; profile_name = "t" } in
  let f = Cell_trace.gap_fn t in
  let drawn = List.init 7 (fun _ -> f ()) in
  Alcotest.(check (list (float 0.))) "cyclic replay" [ 1.; 2.; 3.; 1.; 2.; 3.; 1. ] drawn

let test_save_load_roundtrip () =
  let rng = Prng.create 17 in
  let t = Cell_trace.synthesize ~name:"unit-test" rng Cell_trace.att_like ~duration:5. in
  let path = Filename.temp_file "trace" ".trace" in
  Cell_trace.save path t;
  (match Cell_trace.load path with
  | Ok t' ->
    Alcotest.(check string) "name" "unit-test" t'.Cell_trace.profile_name;
    Alcotest.(check int) "gap count" (Array.length t.Cell_trace.gaps)
      (Array.length t'.Cell_trace.gaps);
    Array.iteri
      (fun i g ->
        if Float.abs (g -. t'.Cell_trace.gaps.(i)) > 1e-9 then
          Alcotest.failf "gap %d differs" i)
      t.Cell_trace.gaps
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

let test_load_rejects_garbage () =
  let path = Filename.temp_file "trace" ".trace" in
  Out_channel.with_open_text path (fun oc -> output_string oc "# bad\n1.0\nnonsense\n");
  (match Cell_trace.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage");
  Sys.remove path

let test_rates_within_profile_bounds () =
  let rng = Prng.create 23 in
  let profile = Cell_trace.verizon_like in
  let t = Cell_trace.synthesize rng profile ~duration:60. in
  let max_pps = Link.pps_of_mbps profile.Cell_trace.max_mbps in
  Array.iter
    (fun g ->
      (* No gap may be shorter than the max-rate spacing. *)
      if g < (1. /. max_pps) -. 1e-12 then Alcotest.failf "gap too small: %g" g)
    t.Cell_trace.gaps

let tests =
  [
    Alcotest.test_case "synthesize covers duration" `Quick test_synthesize_duration;
    Alcotest.test_case "mean rate plausible" `Quick test_mean_rate_plausible;
    Alcotest.test_case "AT&T-like slower" `Quick test_att_slower_than_verizon;
    Alcotest.test_case "deterministic given seed" `Quick test_deterministic;
    Alcotest.test_case "gap_fn cycles" `Quick test_gap_fn_cycles;
    Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
    Alcotest.test_case "load rejects garbage" `Quick test_load_rejects_garbage;
    Alcotest.test_case "rates respect profile bounds" `Quick test_rates_within_profile_bounds;
  ]
