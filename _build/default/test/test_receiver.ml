open Remy_cc
open Remy_sim

let make ?(flow = 0) () =
  let metrics = Metrics.create ~n_flows:1 in
  let acks = ref [] in
  let r =
    Receiver.create ~flow ~metrics
      ~queueing_delay_of:(fun _ ~now:_ -> 0.001)
      ~ack_sink:(fun a -> acks := a :: !acks)
      ()
  in
  (r, metrics, acks)

let pkt ?(conn = 0) ?(retx = false) seq = Packet.make ~flow:0 ~seq ~conn ~now:0.5 ~retx ()

let test_in_order () =
  let r, metrics, acks = make () in
  for s = 0 to 4 do
    Receiver.receive r ~now:1. (pkt s)
  done;
  Alcotest.(check int) "expected advances" 5 (Receiver.expected r);
  Alcotest.(check int) "five acks" 5 (List.length !acks);
  let cum = (List.hd !acks).Packet.cum_ack in
  Alcotest.(check int) "cumulative" 5 cum;
  Alcotest.(check int) "metrics counted" 5 (Metrics.summary metrics 0).Metrics.packets

let test_gap_generates_dupacks () =
  let r, _, acks = make () in
  Receiver.receive r ~now:1. (pkt 0);
  (* Segment 1 lost; 2, 3, 4 arrive. *)
  List.iter (fun s -> Receiver.receive r ~now:1. (pkt s)) [ 2; 3; 4 ];
  let cums = List.rev_map (fun a -> a.Packet.cum_ack) !acks in
  Alcotest.(check (list int)) "dup acks at the hole" [ 1; 1; 1; 1 ] cums;
  (* The hole fills: cumulative jumps over the buffered segments. *)
  Receiver.receive r ~now:2. (pkt 1);
  let cum = (List.hd !acks).Packet.cum_ack in
  Alcotest.(check int) "jump after fill" 5 cum

let test_duplicate_data_not_recounted () =
  let r, metrics, acks = make () in
  Receiver.receive r ~now:1. (pkt 0);
  Receiver.receive r ~now:1.1 (pkt 0);
  Alcotest.(check int) "still acked" 2 (List.length !acks);
  Alcotest.(check int) "counted once" 1 (Metrics.summary metrics 0).Metrics.packets

let test_new_connection_resets () =
  let r, _, acks = make () in
  List.iter (fun s -> Receiver.receive r ~now:1. (pkt s)) [ 0; 1; 2 ];
  Receiver.receive r ~now:2. (pkt ~conn:1 0);
  Alcotest.(check int) "expected reset" 1 (Receiver.expected r);
  let a = List.hd !acks in
  Alcotest.(check int) "ack carries conn" 1 a.Packet.ack_conn;
  Alcotest.(check int) "fresh cumulative" 1 a.Packet.cum_ack

let test_stale_connection_ignored () =
  let r, metrics, acks = make () in
  Receiver.receive r ~now:1. (pkt ~conn:2 0);
  let n_acks = List.length !acks in
  (* A leftover packet from connection 1 arrives late: no ack, no count. *)
  Receiver.receive r ~now:1.5 (pkt ~conn:1 7);
  Alcotest.(check int) "no ack for stale conn" n_acks (List.length !acks);
  Alcotest.(check int) "not counted" 1 (Metrics.summary metrics 0).Metrics.packets

let test_echo_fields () =
  let r, _, acks = make () in
  Receiver.receive r ~now:1.25 (pkt ~retx:true 0);
  let a = List.hd !acks in
  Alcotest.(check int) "acked seq" 0 a.Packet.acked_seq;
  Alcotest.(check (float 0.)) "echoed send ts" 0.5 a.Packet.acked_sent_at;
  Alcotest.(check bool) "retx flag echoed" true a.Packet.acked_retx;
  Alcotest.(check (float 0.)) "receiver ts" 1.25 a.Packet.received_at

let test_ecn_echo () =
  let r, _, acks = make () in
  let p = pkt 0 in
  p.Packet.ecn_marked <- true;
  Receiver.receive r ~now:1. p;
  Alcotest.(check bool) "CE echoed" true (List.hd !acks).Packet.ecn_echo

let tests =
  [
    Alcotest.test_case "in-order delivery" `Quick test_in_order;
    Alcotest.test_case "gap generates dup acks" `Quick test_gap_generates_dupacks;
    Alcotest.test_case "duplicates not recounted" `Quick test_duplicate_data_not_recounted;
    Alcotest.test_case "new connection resets" `Quick test_new_connection_resets;
    Alcotest.test_case "stale connection ignored" `Quick test_stale_connection_ignored;
    Alcotest.test_case "echo fields" `Quick test_echo_fields;
    Alcotest.test_case "ECN echo" `Quick test_ecn_echo;
  ]
