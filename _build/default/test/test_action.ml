open Remy

let test_default () =
  Alcotest.(check (float 0.)) "m" 1. Action.default.Action.multiple;
  Alcotest.(check (float 0.)) "b" 1. Action.default.Action.increment;
  Alcotest.(check (float 0.)) "r" 0.01 Action.default.Action.intersend_ms

let test_apply () =
  let a = { Action.multiple = 0.5; increment = 3.; intersend_ms = 1. } in
  Alcotest.(check (float 1e-9)) "m*w+b" 8. (Action.apply a ~window:10.);
  (* Negative results clamp to zero. *)
  let neg = { Action.multiple = 0.; increment = -5.; intersend_ms = 1. } in
  Alcotest.(check (float 0.)) "floor 0" 0. (Action.apply neg ~window:10.);
  (* Huge windows clamp at 1e6. *)
  let big = { Action.multiple = 2.; increment = 0.; intersend_ms = 1. } in
  Alcotest.(check (float 0.)) "cap 1e6" 1e6 (Action.apply big ~window:9e5)

let test_clamp () =
  let a =
    Action.clamp { Action.multiple = -1.; increment = 1e9; intersend_ms = 0. }
  in
  Alcotest.(check (float 0.)) "m floor" 0. a.Action.multiple;
  Alcotest.(check (float 0.)) "b cap" 256. a.Action.increment;
  Alcotest.(check (float 0.)) "r floor" 0.001 a.Action.intersend_ms

let test_neighbors_exclude_self () =
  let n = Action.neighbors Action.default in
  Alcotest.(check bool) "non-empty" true (List.length n > 0);
  List.iter
    (fun c ->
      if Action.equal c Action.default then Alcotest.fail "self in neighbors")
    n

let test_neighbors_count () =
  (* Interior point, no clamp collapses: 7^3 - 1 = 342 candidates for
     the default three-magnitude ladder. *)
  let a = { Action.multiple = 1.; increment = 0.; intersend_ms = 10. } in
  let n = Action.neighbors a in
  Alcotest.(check int) "full Cartesian product" 342 (List.length n);
  let small = Action.neighbors ~multipliers:[ 1. ] a in
  Alcotest.(check int) "single magnitude" 26 (List.length small)

let test_neighbors_geometric_ladder () =
  let a = { Action.multiple = 1.; increment = 0.; intersend_ms = 10. } in
  let n = Action.neighbors a in
  (* The paper's r ± 0.01, ± 0.08, ± 0.64 pattern. *)
  let rs = List.sort_uniq compare (List.map (fun c -> c.Action.intersend_ms) n) in
  List.iter
    (fun expected ->
      if not (List.exists (fun r -> Float.abs (r -. expected) < 1e-12) rs) then
        Alcotest.failf "missing r %f" expected)
    [ 10. -. 0.64; 10. -. 0.08; 10. -. 0.01; 10.; 10. +. 0.01; 10. +. 0.08; 10. +. 0.64 ]

let prop_neighbors_clamped =
  QCheck.Test.make ~name:"all neighbors are within the searchable region" ~count:100
    QCheck.(
      triple (float_range 0. 2.) (float_range (-256.) 256.) (float_range 0.001 1000.))
    (fun (m, b, r) ->
      let a = Action.clamp { Action.multiple = m; increment = b; intersend_ms = r } in
      List.for_all
        (fun c ->
          c.Action.multiple >= 0. && c.Action.multiple <= 2.
          && c.Action.increment >= -256. && c.Action.increment <= 256.
          && c.Action.intersend_ms >= 0.001 && c.Action.intersend_ms <= 1000.)
        (Action.neighbors a))

let prop_neighbors_unique =
  QCheck.Test.make ~name:"neighbors are deduplicated" ~count:100
    QCheck.(
      triple (float_range 0. 2.) (float_range (-256.) 256.) (float_range 0.001 1000.))
    (fun (m, b, r) ->
      let a = Action.clamp { Action.multiple = m; increment = b; intersend_ms = r } in
      let n = Action.neighbors a in
      List.length (List.sort_uniq compare n) = List.length n)

let tests =
  [
    Alcotest.test_case "default action" `Quick test_default;
    Alcotest.test_case "apply" `Quick test_apply;
    Alcotest.test_case "clamp" `Quick test_clamp;
    Alcotest.test_case "neighbors exclude self" `Quick test_neighbors_exclude_self;
    Alcotest.test_case "neighbors count" `Quick test_neighbors_count;
    Alcotest.test_case "geometric ladder" `Quick test_neighbors_geometric_ladder;
    QCheck_alcotest.to_alcotest prop_neighbors_clamped;
    QCheck_alcotest.to_alcotest prop_neighbors_unique;
  ]
