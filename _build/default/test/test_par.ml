open Remy

let test_identity_map () =
  let xs = Array.init 100 Fun.id in
  let ys = Par.map ~domains:4 (fun x -> x * 2) xs in
  Alcotest.(check (array int)) "order preserved" (Array.map (fun x -> x * 2) xs) ys

let test_empty () =
  Alcotest.(check (array int)) "empty" [||] (Par.map ~domains:4 Fun.id [||])

let test_single_domain () =
  let xs = Array.init 10 Fun.id in
  Alcotest.(check (array int)) "domains=1 works" xs (Par.map ~domains:1 Fun.id xs)

let test_more_domains_than_work () =
  let xs = [| 1; 2 |] in
  Alcotest.(check (array int)) "clamped" [| 2; 4 |]
    (Par.map ~domains:64 (fun x -> x * 2) xs)

let test_exception_propagates () =
  (try
     ignore (Par.map ~domains:2 (fun x -> if x = 5 then failwith "boom" else x)
               (Array.init 10 Fun.id));
     Alcotest.fail "expected exception"
   with Failure msg -> Alcotest.(check string) "message" "boom" msg)

let test_matches_sequential () =
  let xs = Array.init 200 (fun i -> float_of_int i) in
  let f x = sin x +. sqrt x in
  Alcotest.(check (array (float 0.))) "parallel = sequential" (Array.map f xs)
    (Par.map ~domains:3 f xs)

let tests =
  [
    Alcotest.test_case "identity map" `Quick test_identity_map;
    Alcotest.test_case "empty input" `Quick test_empty;
    Alcotest.test_case "single domain" `Quick test_single_domain;
    Alcotest.test_case "more domains than work" `Quick test_more_domains_than_work;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "matches sequential" `Quick test_matches_sequential;
  ]
