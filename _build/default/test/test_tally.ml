open Remy

let mem v = Memory.make ~ack_ewma:v ~send_ewma:v ~rtt_ratio:v

let test_counts () =
  let t = Tally.create ~capacity:4 ~seed:1 () in
  Tally.record t 2 (mem 1.);
  Tally.record t 2 (mem 2.);
  Tally.record t 0 (mem 3.);
  Alcotest.(check int) "rule 2" 2 (Tally.count t 2);
  Alcotest.(check int) "rule 0" 1 (Tally.count t 0);
  Alcotest.(check int) "rule 1 untouched" 0 (Tally.count t 1)

let test_reservoir_bound () =
  let t = Tally.create ~reservoir:16 ~capacity:1 ~seed:1 () in
  for i = 1 to 1000 do
    Tally.record t 0 (mem (float_of_int i))
  done;
  Alcotest.(check int) "count exact" 1000 (Tally.count t 0);
  Alcotest.(check bool) "samples capped" true (List.length (Tally.samples t 0) <= 16)

let test_most_used () =
  let t = Tally.create ~capacity:4 ~seed:1 () in
  Tally.record t 1 (mem 1.);
  Tally.record t 3 (mem 1.);
  Tally.record t 3 (mem 1.);
  Alcotest.(check (option int)) "most used" (Some 3) (Tally.most_used t ~among:[ 0; 1; 2; 3 ]);
  Alcotest.(check (option int)) "restricted" (Some 1) (Tally.most_used t ~among:[ 0; 1; 2 ]);
  Alcotest.(check (option int)) "no hits" None (Tally.most_used t ~among:[ 0; 2 ])

let test_median () =
  let t = Tally.create ~capacity:2 ~seed:1 () in
  List.iter (fun v -> Tally.record t 0 (mem v)) [ 1.; 2.; 3.; 4.; 100. ];
  (match Tally.median_memory t 0 with
  | Some m -> Alcotest.(check (float 1e-9)) "median robust to outlier" 3. m.Memory.ack_ewma
  | None -> Alcotest.fail "no median");
  Alcotest.(check bool) "empty slot has no median" true (Tally.median_memory t 1 = None)

let test_merge () =
  let a = Tally.create ~capacity:2 ~seed:1 () in
  let b = Tally.create ~capacity:2 ~seed:2 () in
  Tally.record a 0 (mem 1.);
  Tally.record b 0 (mem 2.);
  Tally.record b 1 (mem 3.);
  Tally.merge_into a b;
  Alcotest.(check int) "merged counts" 2 (Tally.count a 0);
  Alcotest.(check int) "merged other rule" 1 (Tally.count a 1);
  Alcotest.(check bool) "samples pooled" true (List.length (Tally.samples a 0) = 2)

let test_merge_smaller_capacity () =
  let a = Tally.create ~capacity:1 ~seed:1 () in
  let b = Tally.create ~capacity:4 ~seed:2 () in
  Tally.record b 3 (mem 1.);
  (* Out-of-range ids in the source are ignored, not a crash. *)
  Tally.merge_into a b;
  Alcotest.(check int) "in-range only" 0 (Tally.count a 0)

let tests =
  [
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "reservoir bound" `Quick test_reservoir_bound;
    Alcotest.test_case "most used" `Quick test_most_used;
    Alcotest.test_case "median memory" `Quick test_median;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "merge capacity mismatch" `Quick test_merge_smaller_capacity;
  ]
