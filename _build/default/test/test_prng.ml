open Remy_util

let test_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check int) "different seeds diverge" 0 !same

let test_copy_replays () =
  let a = Prng.create 7 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  let xs = List.init 20 (fun _ -> Prng.bits64 a) in
  let ys = List.init 20 (fun _ -> Prng.bits64 b) in
  Alcotest.(check (list int64)) "copy replays" xs ys

let test_split_independent () =
  let a = Prng.create 7 in
  let child = Prng.split a in
  (* The child stream must not simply mirror the parent's. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 child then incr same
  done;
  Alcotest.(check int) "split independent" 0 !same

let test_float_bounds () =
  let rng = Prng.create 3 in
  for _ = 1 to 10_000 do
    let x = Prng.float rng 5.0 in
    if x < 0. || x >= 5.0 then Alcotest.failf "float out of bounds: %f" x
  done

let test_float_mean () =
  let rng = Prng.create 4 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.float rng 1.0
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 0.5) > 0.01 then Alcotest.failf "uniform mean off: %f" mean

let test_int_bounds () =
  let rng = Prng.create 5 in
  let seen = Array.make 10 false in
  for _ = 1 to 10_000 do
    let k = Prng.int rng 10 in
    if k < 0 || k >= 10 then Alcotest.failf "int out of bounds: %d" k;
    seen.(k) <- true
  done;
  Array.iteri (fun i hit -> if not hit then Alcotest.failf "value %d never drawn" i) seen

let test_uniform_range () =
  let rng = Prng.create 6 in
  for _ = 1 to 1000 do
    let x = Prng.uniform rng (-2.) 3. in
    if x < -2. || x >= 3. then Alcotest.failf "uniform out of range: %f" x
  done

let test_bool_balance () =
  let rng = Prng.create 8 in
  let heads = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bool rng then incr heads
  done;
  let frac = float_of_int !heads /. float_of_int n in
  if Float.abs (frac -. 0.5) > 0.02 then Alcotest.failf "biased coin: %f" frac

let tests =
  [
    Alcotest.test_case "same seed, same stream" `Quick test_deterministic;
    Alcotest.test_case "different seeds diverge" `Quick test_seeds_differ;
    Alcotest.test_case "copy replays the future" `Quick test_copy_replays;
    Alcotest.test_case "split gives independent stream" `Quick test_split_independent;
    Alcotest.test_case "float stays in bounds" `Quick test_float_bounds;
    Alcotest.test_case "uniform mean is 1/2" `Quick test_float_mean;
    Alcotest.test_case "int covers range" `Quick test_int_bounds;
    Alcotest.test_case "uniform respects lo/hi" `Quick test_uniform_range;
    Alcotest.test_case "bool is balanced" `Quick test_bool_balance;
  ]
