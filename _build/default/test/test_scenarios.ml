open Remy_scenarios
open Remy_sim

let quick_scenario ?(n = 2) () =
  Scenario.make
    ~service:(Remy_cc.Dumbbell.Rate_mbps 15.)
    ~n ~rtt:0.15
    ~workload:(Workload.by_bytes ~mean_bytes:5e4 ~mean_off:0.3)
    ~duration:10. ~replications:3 ()

let test_registry_names () =
  List.iter
    (fun name ->
      match Schemes.by_name name with
      | Some s -> Alcotest.(check string) "case-insensitive lookup" name s.Schemes.name
      | None -> Alcotest.failf "missing scheme %s" name)
    [ "NewReno"; "Vegas"; "Cubic"; "Compound"; "Cubic/sfqCoDel"; "XCP"; "DCTCP" ];
  Alcotest.(check bool) "unknown scheme" true (Schemes.by_name "bogus" = None)

let test_qdisc_pairings () =
  Alcotest.(check bool) "sfqcodel pairing" true
    (match Schemes.qdisc_spec Schemes.cubic_sfqcodel ~capacity:10 with
    | Remy_cc.Dumbbell.Sfq_codel 10 -> true
    | _ -> false);
  Alcotest.(check bool) "dctcp pairing" true
    (match Schemes.qdisc_spec Schemes.dctcp ~capacity:10 with
    | Remy_cc.Dumbbell.Dctcp_red { capacity = 10; threshold = 65 } -> true
    | _ -> false)

let test_run_scheme_points () =
  let s = Scenario.run_scheme (quick_scenario ()) Schemes.newreno in
  Alcotest.(check string) "scheme name" "NewReno" s.Scenario.scheme;
  (* Up to n senders x replications points; senders that never came on
     are excluded, so just require a sane, non-empty set. *)
  Alcotest.(check bool) "points collected" true (Array.length s.Scenario.points > 0);
  Alcotest.(check bool) "points bounded" true (Array.length s.Scenario.points <= 6);
  Alcotest.(check bool) "median positive" true (s.Scenario.median_tput > 0.);
  Alcotest.(check bool) "ellipse present" true (s.Scenario.ellipse <> None);
  Alcotest.(check int) "per-flow rows" 3 (Array.length s.Scenario.per_flow_tput)

let test_run_deterministic () =
  let sc = quick_scenario () in
  let a = Scenario.run_scheme sc Schemes.vegas in
  let b = Scenario.run_scheme sc Schemes.vegas in
  Alcotest.(check (float 0.)) "same medians" a.Scenario.median_tput b.Scenario.median_tput

let test_remy_scheme_runs () =
  (* A hand-built two-rule table, no training required. *)
  let tree = Remy.Rule_tree.create () in
  Remy.Rule_tree.set_action tree 0
    { Remy.Action.multiple = 0.8; increment = 5.; intersend_ms = 1. };
  let scheme = Schemes.remy ~name:"Remy test" tree in
  let s = Scenario.run_scheme (quick_scenario ()) scheme in
  Alcotest.(check bool) "remycc moves data" true (s.Scenario.median_tput > 0.1)

let test_tables_path_shape () =
  let p = Tables.path "delta1" in
  Alcotest.(check bool) "ends with delta1.rules" true
    (Filename.check_suffix p "delta1.rules")

let test_rtts_broadcast () =
  let sc =
    Scenario.make
      ~service:(Remy_cc.Dumbbell.Rate_mbps 10.)
      ~n:3 ~rtt:0.1
      ~rtts:[| 0.05; 0.1; 0.15 |]
      ~workload:Workload.saturating ~start:`Immediate ~duration:5. ~replications:1 ()
  in
  Alcotest.(check int) "explicit rtts kept" 3 (Array.length sc.Scenario.rtts);
  let s = Scenario.run_scheme sc Schemes.newreno in
  Alcotest.(check bool) "runs" true (Array.length s.Scenario.points > 0)

let tests =
  [
    Alcotest.test_case "registry names" `Quick test_registry_names;
    Alcotest.test_case "qdisc pairings" `Quick test_qdisc_pairings;
    Alcotest.test_case "run_scheme points" `Slow test_run_scheme_points;
    Alcotest.test_case "deterministic run" `Slow test_run_deterministic;
    Alcotest.test_case "remy scheme runs" `Slow test_remy_scheme_runs;
    Alcotest.test_case "tables path" `Quick test_tables_path_shape;
    Alcotest.test_case "per-flow rtts" `Slow test_rtts_broadcast;
  ]
