open Remy

let test_log_utility () =
  Alcotest.(check (float 1e-9)) "U_1 is log" (log 2.) (Objective.alpha_utility 1. 2.);
  Alcotest.(check (float 1e-9)) "U_2 is -1/x" (-0.5) (Objective.alpha_utility 2. 2.);
  Alcotest.(check (float 1e-9)) "U_0 is x" 3. (Objective.alpha_utility 0. 3.)

let test_proportional_score () =
  let obj = Objective.proportional ~delta:1. in
  let s = Objective.score obj ~throughput_mbps:2. ~mean_rtt_ms:100. in
  Alcotest.(check (float 1e-9)) "log tput - log delay" (log 2. -. log 100.) s

let test_delta_weighting () =
  let lo = Objective.proportional ~delta:0.1 in
  let hi = Objective.proportional ~delta:10. in
  let at d obj = Objective.score obj ~throughput_mbps:1. ~mean_rtt_ms:d in
  (* The high-delta objective punishes a delay increase harder. *)
  let penalty obj = at 100. obj -. at 200. obj in
  Alcotest.(check bool) "delta scales delay penalty" true (penalty hi > penalty lo)

let test_min_potential_delay () =
  let obj = Objective.min_potential_delay in
  let s = Objective.score obj ~throughput_mbps:4. ~mean_rtt_ms:1. in
  Alcotest.(check (float 1e-9)) "-1/throughput" (-0.25) s;
  (* Delay is irrelevant at delta = 0. *)
  let s' = Objective.score obj ~throughput_mbps:4. ~mean_rtt_ms:1000. in
  Alcotest.(check (float 1e-9)) "delay ignored" s s'

let test_floors_keep_scores_finite () =
  let obj = Objective.proportional ~delta:10. in
  let s = Objective.score obj ~throughput_mbps:0. ~mean_rtt_ms:0. in
  Alcotest.(check bool) "finite" true (Float.is_finite s)

let test_monotonicity () =
  let obj = Objective.proportional ~delta:1. in
  let s1 = Objective.score obj ~throughput_mbps:1. ~mean_rtt_ms:100. in
  let s2 = Objective.score obj ~throughput_mbps:2. ~mean_rtt_ms:100. in
  let s3 = Objective.score obj ~throughput_mbps:2. ~mean_rtt_ms:200. in
  Alcotest.(check bool) "more tput better" true (s2 > s1);
  Alcotest.(check bool) "more delay worse" true (s3 < s2)

let test_normalized_score () =
  let obj = Objective.proportional ~delta:1. in
  (* At fair share and no queueing: log 1 - log 1 = 0. *)
  let s =
    Objective.normalized_score obj ~throughput_mbps:5. ~mean_rtt_ms:150.
      ~fair_share_mbps:5. ~min_rtt_ms:150.
  in
  Alcotest.(check (float 1e-9)) "zero at ideal" 0. s

let prop_pareto =
  QCheck.Test.make ~name:"score is Pareto-monotone" ~count:200
    QCheck.(
      quad (float_range 0.01 100.) (float_range 0.01 100.) (float_range 1. 1000.)
        (float_range 0.01 10.))
    (fun (x1, dx, y, delta) ->
      let obj = Objective.proportional ~delta in
      Objective.score obj ~throughput_mbps:(x1 +. dx) ~mean_rtt_ms:y
      >= Objective.score obj ~throughput_mbps:x1 ~mean_rtt_ms:y)

let tests =
  [
    Alcotest.test_case "alpha utilities" `Quick test_log_utility;
    Alcotest.test_case "proportional score" `Quick test_proportional_score;
    Alcotest.test_case "delta weighting" `Quick test_delta_weighting;
    Alcotest.test_case "min potential delay" `Quick test_min_potential_delay;
    Alcotest.test_case "floors keep scores finite" `Quick test_floors_keep_scores_finite;
    Alcotest.test_case "monotonicity" `Quick test_monotonicity;
    Alcotest.test_case "normalized score" `Quick test_normalized_score;
    QCheck_alcotest.to_alcotest prop_pareto;
  ]
