open Remy_util

let test_axis_aligned () =
  (* Points spread along x only: major axis horizontal. *)
  let points = Array.init 100 (fun i -> (float_of_int i, 5.)) in
  let e = Ellipse.fit points in
  Alcotest.(check (float 1e-6)) "center x" 49.5 e.Ellipse.center_x;
  Alcotest.(check (float 1e-6)) "center y" 5. e.Ellipse.center_y;
  Alcotest.(check (float 1e-6)) "minor axis zero" 0. e.Ellipse.minor;
  Alcotest.(check (float 1e-6)) "angle" 0. e.Ellipse.angle;
  let expected_major = Stats.stddev (Array.map fst points) in
  Alcotest.(check (float 1e-6)) "major = stddev" expected_major e.Ellipse.major

let test_vertical () =
  let points = Array.init 100 (fun i -> (2., float_of_int i)) in
  let e = Ellipse.fit points in
  Alcotest.(check (float 1e-6)) "angle pi/2" (Float.pi /. 2.) e.Ellipse.angle

let test_diagonal () =
  (* Perfectly correlated points: major axis at 45 degrees. *)
  let points = Array.init 100 (fun i -> (float_of_int i, float_of_int i)) in
  let e = Ellipse.fit points in
  Alcotest.(check (float 1e-6)) "45 degrees" (Float.pi /. 4.) e.Ellipse.angle;
  Alcotest.(check (float 1e-6)) "degenerate minor" 0. e.Ellipse.minor

let test_scale () =
  let points = [| (0., 0.); (1., 0.); (0., 1.); (1., 1.) |] in
  let e = Ellipse.fit points in
  let half = Ellipse.scale e 0.5 in
  Alcotest.(check (float 1e-9)) "major halved" (e.Ellipse.major /. 2.) half.Ellipse.major;
  Alcotest.(check (float 1e-9)) "minor halved" (e.Ellipse.minor /. 2.) half.Ellipse.minor;
  Alcotest.(check (float 1e-9)) "center unchanged" e.Ellipse.center_x half.Ellipse.center_x

let test_too_few_points () =
  Alcotest.check_raises "one point raises"
    (Invalid_argument "Ellipse.fit: need >= 2 points") (fun () ->
      ignore (Ellipse.fit [| (1., 1.) |]))

let prop_major_ge_minor =
  QCheck.Test.make ~name:"major >= minor >= 0" ~count:200
    QCheck.(array_of_size (QCheck.Gen.int_range 2 60) (pair (float_range (-100.) 100.) (float_range (-100.) 100.)))
    (fun points ->
      let e = Ellipse.fit points in
      e.Ellipse.major >= e.Ellipse.minor && e.Ellipse.minor >= 0.)

let tests =
  [
    Alcotest.test_case "axis-aligned horizontal" `Quick test_axis_aligned;
    Alcotest.test_case "vertical" `Quick test_vertical;
    Alcotest.test_case "diagonal correlation" `Quick test_diagonal;
    Alcotest.test_case "scale" `Quick test_scale;
    Alcotest.test_case "too few points" `Quick test_too_few_points;
    QCheck_alcotest.to_alcotest prop_major_ge_minor;
  ]
