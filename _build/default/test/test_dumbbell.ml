open Remy_cc
open Remy_sim

let newreno_flow ?(rtt = 0.15) ?(workload = Workload.saturating) () =
  { Dumbbell.cc = Newreno.factory (); rtt; workload; start = `Immediate }

let base_config flows =
  {
    Dumbbell.service = Dumbbell.Rate_mbps 15.;
    qdisc = Dumbbell.Droptail 1000;
    flows;
    duration = 30.;
    seed = 9;
    min_rto = 0.2;
  }

let test_single_flow_fills_link () =
  let r = Dumbbell.run (base_config [| newreno_flow () |]) in
  let f = r.Dumbbell.flows.(0) in
  Alcotest.(check bool) "near link rate" true (f.Metrics.throughput_mbps > 11.);
  Alcotest.(check bool) "utilization consistent" true (r.Dumbbell.mean_utilization > 0.75)

let test_two_flows_split_capacity () =
  let r = Dumbbell.run (base_config [| newreno_flow (); newreno_flow () |]) in
  let t0 = r.Dumbbell.flows.(0).Metrics.throughput_mbps in
  let t1 = r.Dumbbell.flows.(1).Metrics.throughput_mbps in
  Alcotest.(check bool) "capacity shared" true (t0 +. t1 > 10.);
  Alcotest.(check bool) "no starvation" true (Float.min t0 t1 > 1.)

let test_deterministic_given_seed () =
  let cfg =
    base_config
      [| newreno_flow ~workload:(Workload.by_bytes ~mean_bytes:5e4 ~mean_off:0.3) () |]
  in
  let r1 = Dumbbell.run cfg and r2 = Dumbbell.run cfg in
  Alcotest.(check (float 0.)) "identical throughput"
    r1.Dumbbell.flows.(0).Metrics.throughput_mbps
    r2.Dumbbell.flows.(0).Metrics.throughput_mbps;
  Alcotest.(check int) "identical drops" r1.Dumbbell.drops r2.Dumbbell.drops

let test_seed_changes_runs () =
  let cfg =
    base_config
      [| newreno_flow ~workload:(Workload.by_bytes ~mean_bytes:5e4 ~mean_off:0.3) () |]
  in
  let r1 = Dumbbell.run cfg in
  let r2 = Dumbbell.run { cfg with Dumbbell.seed = 10 } in
  Alcotest.(check bool) "different seeds differ" true
    (r1.Dumbbell.flows.(0).Metrics.throughput_mbps
    <> r2.Dumbbell.flows.(0).Metrics.throughput_mbps)

let test_queueing_delay_reflects_buffer () =
  (* A saturating NewReno flow against a big buffer must show the
     bufferbloat the paper attributes to loss-based TCP. *)
  let r = Dumbbell.run (base_config [| newreno_flow () |]) in
  Alcotest.(check bool) "inflated queues" true
    (r.Dumbbell.flows.(0).Metrics.mean_queueing_delay_ms > 50.)

let test_sfqcodel_cuts_delay () =
  let droptail = Dumbbell.run (base_config [| newreno_flow (); newreno_flow () |]) in
  let sfq =
    Dumbbell.run
      { (base_config [| newreno_flow (); newreno_flow () |]) with
        Dumbbell.qdisc = Dumbbell.Sfq_codel 1000 }
  in
  let delay cfg = cfg.Dumbbell.flows.(0).Metrics.mean_queueing_delay_ms in
  Alcotest.(check bool) "CoDel keeps delay low" true (delay sfq < delay droptail /. 2.)

let test_differing_rtts () =
  let flows = [| newreno_flow ~rtt:0.05 (); newreno_flow ~rtt:0.2 () |] in
  let r = Dumbbell.run { (base_config flows) with Dumbbell.duration = 60. } in
  let t_short = r.Dumbbell.flows.(0).Metrics.throughput_mbps in
  let t_long = r.Dumbbell.flows.(1).Metrics.throughput_mbps in
  (* Classic RTT unfairness: the short-RTT flow wins, the long-RTT flow
     is squeezed but not fully starved. *)
  Alcotest.(check bool) "short RTT advantaged" true (t_short > t_long);
  Alcotest.(check bool) "long RTT still served" true (t_long > 0.1)

let test_dctcp_over_red () =
  let flows =
    Array.init 4 (fun _ ->
        {
          Dumbbell.cc = Dctcp.factory ();
          rtt = 0.004;
          workload = Workload.saturating;
          start = `Immediate;
        })
  in
  let r =
    Dumbbell.run
      {
        Dumbbell.service = Dumbbell.Rate_mbps 100.;
        qdisc = Dumbbell.Dctcp_red { capacity = 1000; threshold = 65 };
        flows;
        duration = 10.;
        seed = 12;
        min_rto = 0.2;
      }
  in
  let total =
    Array.fold_left
      (fun acc f -> acc +. f.Metrics.throughput_mbps)
      0. r.Dumbbell.flows
  in
  Alcotest.(check bool) "high aggregate utilization" true (total > 70.);
  let delays =
    Array.map (fun f -> f.Metrics.mean_queueing_delay_ms) r.Dumbbell.flows
  in
  Array.iter
    (fun d -> Alcotest.(check bool) "ECN keeps queues short" true (d < 20.))
    delays

let test_trace_service () =
  let rng = Remy_util.Prng.create 33 in
  let trace = Cell_trace.synthesize rng Cell_trace.verizon_like ~duration:30. in
  let r =
    Dumbbell.run
      {
        Dumbbell.service = Dumbbell.Trace trace;
        qdisc = Dumbbell.Droptail 1000;
        flows = [| newreno_flow ~rtt:0.05 () |];
        duration = 30.;
        seed = 13;
        min_rto = 0.2;
      }
  in
  let f = r.Dumbbell.flows.(0) in
  let trace_rate = Cell_trace.mean_rate_mbps trace in
  Alcotest.(check bool) "bounded by trace rate" true
    (f.Metrics.throughput_mbps <= trace_rate +. 0.5);
  Alcotest.(check bool) "gets useful throughput" true
    (f.Metrics.throughput_mbps > trace_rate /. 4.)

let test_delivery_hook_sequences () =
  let seqs = ref [] in
  let cfg =
    { (base_config [| newreno_flow () |]) with Dumbbell.duration = 5. }
  in
  let _ =
    Dumbbell.run
      ~delivery_hook:(fun ~flow ~now ~seq ->
        Alcotest.(check int) "flow id" 0 flow;
        ignore now;
        seqs := seq :: !seqs)
      cfg
  in
  let seqs = List.rev !seqs in
  Alcotest.(check bool) "deliveries observed" true (List.length seqs > 100);
  (* In-order network: delivered sequence numbers are nondecreasing in
     the absence of retransmissions. *)
  Alcotest.(check int) "starts at 0" 0 (List.hd seqs)

let test_on_off_workload_duty_cycle () =
  let workload = Workload.by_time ~mean_on:0.5 ~mean_off:0.5 in
  let cfg =
    { (base_config [| { (newreno_flow ~workload ()) with Dumbbell.start = `Off_draw } |])
      with Dumbbell.duration = 60. }
  in
  let r = Dumbbell.run cfg in
  let on_time = r.Dumbbell.flows.(0).Metrics.on_time in
  (* 50% duty cycle, loose tolerance. *)
  Alcotest.(check bool) "duty cycle plausible" true (on_time > 10. && on_time < 50.)

let tests =
  [
    Alcotest.test_case "single flow fills link" `Slow test_single_flow_fills_link;
    Alcotest.test_case "two flows split capacity" `Slow test_two_flows_split_capacity;
    Alcotest.test_case "deterministic given seed" `Quick test_deterministic_given_seed;
    Alcotest.test_case "seed changes runs" `Quick test_seed_changes_runs;
    Alcotest.test_case "droptail bufferbloat" `Slow test_queueing_delay_reflects_buffer;
    Alcotest.test_case "sfqCoDel cuts delay" `Slow test_sfqcodel_cuts_delay;
    Alcotest.test_case "differing RTTs unfairness" `Slow test_differing_rtts;
    Alcotest.test_case "DCTCP over RED" `Slow test_dctcp_over_red;
    Alcotest.test_case "trace-driven service" `Slow test_trace_service;
    Alcotest.test_case "delivery hook" `Quick test_delivery_hook_sequences;
    Alcotest.test_case "on/off duty cycle" `Slow test_on_off_workload_duty_cycle;
  ]
