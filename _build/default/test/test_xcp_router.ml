open Remy_cc
open Remy_sim

(* Integration: one XCP flow over an XCP router converges near link
   capacity without loss. *)
let run_xcp ~n ~mbps ~duration ~seed =
  let flows =
    Array.init n (fun _ ->
        {
          Dumbbell.cc = Xcp.factory ();
          rtt = 0.1;
          workload = Workload.saturating;
          start = `Immediate;
        })
  in
  Dumbbell.run
    {
      Dumbbell.service = Dumbbell.Rate_mbps mbps;
      qdisc = Dumbbell.Xcp 1000;
      flows;
      duration;
      seed;
      min_rto = 0.2;
    }

let test_single_flow_converges () =
  let r = run_xcp ~n:1 ~mbps:10. ~duration:20. ~seed:1 in
  let f = r.Dumbbell.flows.(0) in
  Alcotest.(check bool) "high utilization" true (f.Metrics.throughput_mbps > 7.);
  Alcotest.(check bool) "low queueing" true (f.Metrics.mean_queueing_delay_ms < 30.)

let test_two_flows_share_fairly () =
  let r = run_xcp ~n:2 ~mbps:10. ~duration:30. ~seed:2 in
  let t0 = r.Dumbbell.flows.(0).Metrics.throughput_mbps in
  let t1 = r.Dumbbell.flows.(1).Metrics.throughput_mbps in
  Alcotest.(check bool) "both get substantial share" true (t0 > 2. && t1 > 2.);
  let ratio = Float.max t0 t1 /. Float.min t0 t1 in
  Alcotest.(check bool) "roughly fair" true (ratio < 2.)

let test_xcp_avoids_loss () =
  let r = run_xcp ~n:4 ~mbps:10. ~duration:20. ~seed:3 in
  (* The explicit controller should keep the queue from overflowing a
     1000-packet buffer. *)
  Alcotest.(check int) "no drops" 0 r.Dumbbell.drops

let test_router_without_xcp_senders () =
  (* Non-XCP traffic through an XCP router: no feedback, no crash, and
     the router still forwards. *)
  let flows =
    [|
      {
        Dumbbell.cc = Newreno.factory ();
        rtt = 0.1;
        workload = Workload.saturating;
        start = `Immediate;
      };
    |]
  in
  let r =
    Dumbbell.run
      {
        Dumbbell.service = Dumbbell.Rate_mbps 10.;
        qdisc = Dumbbell.Xcp 1000;
        flows;
        duration = 10.;
        seed = 4;
        min_rto = 0.2;
      }
  in
  Alcotest.(check bool) "traffic flows" true
    (r.Dumbbell.flows.(0).Metrics.throughput_mbps > 1.)

let tests =
  [
    Alcotest.test_case "single flow converges" `Slow test_single_flow_converges;
    Alcotest.test_case "two flows share fairly" `Slow test_two_flows_share_fairly;
    Alcotest.test_case "XCP avoids loss" `Slow test_xcp_avoids_loss;
    Alcotest.test_case "router tolerates non-XCP senders" `Quick test_router_without_xcp_senders;
  ]
