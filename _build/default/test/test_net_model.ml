open Remy
open Remy_util

let test_draw_within_ranges () =
  let model = Net_model.general () in
  let rng = Prng.create 14 in
  for _ = 1 to 500 do
    let s = Net_model.draw model rng in
    if s.Net_model.n < 1 || s.Net_model.n > 16 then Alcotest.failf "n out of range: %d" s.Net_model.n;
    if s.Net_model.spec_link_mbps < 10. || s.Net_model.spec_link_mbps >= 20. then
      Alcotest.failf "link out of range: %f" s.Net_model.spec_link_mbps;
    if s.Net_model.rtt_s < 0.1 || s.Net_model.rtt_s >= 0.2 then
      Alcotest.failf "rtt out of range: %f" s.Net_model.rtt_s;
    if s.Net_model.spec_seed < 0 then Alcotest.fail "negative seed"
  done

let test_exact_models_are_constant () =
  let model = Net_model.onex () in
  let rng = Prng.create 15 in
  for _ = 1 to 50 do
    let s = Net_model.draw model rng in
    Alcotest.(check (float 0.)) "15 Mbps exact" 15. s.Net_model.spec_link_mbps;
    Alcotest.(check (float 1e-12)) "150 ms exact" 0.15 s.Net_model.rtt_s
  done

let test_n_covers_range () =
  let model = Net_model.general () in
  let rng = Prng.create 16 in
  let seen = Array.make 17 false in
  for _ = 1 to 2000 do
    let s = Net_model.draw model rng in
    seen.(s.Net_model.n) <- true
  done;
  for n = 1 to 16 do
    if not (seen.(n)) then Alcotest.failf "n=%d never drawn" n
  done

let test_tenx_spans_decade () =
  let model = Net_model.tenx () in
  let rng = Prng.create 17 in
  let lo = ref infinity and hi = ref 0. in
  for _ = 1 to 2000 do
    let s = Net_model.draw model rng in
    lo := Float.min !lo s.Net_model.spec_link_mbps;
    hi := Float.max !hi s.Net_model.spec_link_mbps
  done;
  Alcotest.(check bool) "covers most of 4.7-47" true (!lo < 6. && !hi > 40.)

let test_coexist_rtt_range () =
  let model = Net_model.coexist () in
  let rng = Prng.create 18 in
  let hi = ref 0. in
  for _ = 1 to 2000 do
    let s = Net_model.draw model rng in
    hi := Float.max !hi s.Net_model.rtt_s
  done;
  Alcotest.(check bool) "RTTs reach seconds" true (!hi > 5.)

let test_datacenter_scaling () =
  let model = Net_model.datacenter () in
  (match model.Net_model.on_process with
  | Net_model.On_bytes b ->
    (* 20 MB at 10 Gbps scales to 2 MB at the default 1 Gbps. *)
    Alcotest.(check (float 1.)) "transfer size scaled" 2e6 b
  | _ -> Alcotest.fail "expected byte process");
  let rng = Prng.create 19 in
  let s = Net_model.draw model rng in
  Alcotest.(check (float 1e-12)) "4 ms RTT" 0.004 s.Net_model.rtt_s

let test_workload_kind_matches () =
  let rng = Prng.create 20 in
  let s = Net_model.draw (Net_model.general ()) rng in
  (match Remy_sim.Workload.sample_on s.Net_model.workload rng with
  | Remy_sim.Workload.Seconds _ -> ()
  | Remy_sim.Workload.Packets _ -> Alcotest.fail "general model is by-time");
  let s = Net_model.draw (Net_model.datacenter ()) rng in
  match Remy_sim.Workload.sample_on s.Net_model.workload rng with
  | Remy_sim.Workload.Packets _ -> ()
  | Remy_sim.Workload.Seconds _ -> Alcotest.fail "datacenter model is by-bytes"

let tests =
  [
    Alcotest.test_case "draws within ranges" `Quick test_draw_within_ranges;
    Alcotest.test_case "exact models constant" `Quick test_exact_models_are_constant;
    Alcotest.test_case "n covers 1..16" `Quick test_n_covers_range;
    Alcotest.test_case "tenx spans a decade" `Quick test_tenx_spans_decade;
    Alcotest.test_case "coexist RTTs reach seconds" `Quick test_coexist_rtt_range;
    Alcotest.test_case "datacenter scaling" `Quick test_datacenter_scaling;
    Alcotest.test_case "workload kinds" `Quick test_workload_kind_matches;
  ]
