open Remy_util

let test_first_sample_initializes () =
  let e = Ewma.create ~alpha:0.125 in
  Alcotest.(check bool) "unset" false (Ewma.is_set e);
  Alcotest.(check (float 0.)) "zero before samples" 0. (Ewma.value e);
  Ewma.update e 10.;
  Alcotest.(check (float 1e-9)) "first sample taken whole" 10. (Ewma.value e)

let test_weighting () =
  let e = Ewma.create ~alpha:0.125 in
  Ewma.update e 0.;
  Ewma.update e 8.;
  (* 0 + 1/8 * (8 - 0) = 1 *)
  Alcotest.(check (float 1e-9)) "paper's 1/8 weight" 1. (Ewma.value e)

let test_create_at_blends_from_initial () =
  (* The RemyCC memory blends from the all-zero state: the very first
     sample only contributes alpha of itself. *)
  let e = Ewma.create_at ~alpha:0.125 0. in
  Ewma.update e 8.;
  Alcotest.(check (float 1e-9)) "first sample blended" 1. (Ewma.value e)

let test_reset () =
  let e = Ewma.create ~alpha:0.5 in
  Ewma.update e 4.;
  Ewma.reset e;
  Alcotest.(check bool) "unset after reset" false (Ewma.is_set e);
  let e2 = Ewma.create_at ~alpha:0.5 3. in
  Ewma.update e2 100.;
  Ewma.reset e2;
  Alcotest.(check (float 1e-9)) "reset to initial" 3. (Ewma.value e2);
  Alcotest.(check bool) "still set" true (Ewma.is_set e2)

let test_convergence () =
  let e = Ewma.create ~alpha:0.125 in
  for _ = 1 to 200 do
    Ewma.update e 42.
  done;
  Alcotest.(check (float 1e-6)) "converges to constant input" 42. (Ewma.value e)

let prop_value_bounded =
  QCheck.Test.make ~name:"ewma stays within sample range" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 60) (float_range 0. 1000.))
    (fun samples ->
      let e = Ewma.create ~alpha:0.125 in
      List.iter (Ewma.update e) samples;
      let lo = List.fold_left Float.min infinity samples in
      let hi = List.fold_left Float.max neg_infinity samples in
      Ewma.value e >= lo -. 1e-9 && Ewma.value e <= hi +. 1e-9)

let tests =
  [
    Alcotest.test_case "first sample initializes" `Quick test_first_sample_initializes;
    Alcotest.test_case "1/8 weighting" `Quick test_weighting;
    Alcotest.test_case "create_at blends from initial" `Quick test_create_at_blends_from_initial;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "convergence" `Quick test_convergence;
    QCheck_alcotest.to_alcotest prop_value_bounded;
  ]
