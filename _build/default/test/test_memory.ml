open Remy

let test_zero_initial () =
  let t = Memory.tracker () in
  let m = Memory.current t in
  Alcotest.(check (float 0.)) "ack_ewma" 0. m.Memory.ack_ewma;
  Alcotest.(check (float 0.)) "send_ewma" 0. m.Memory.send_ewma;
  Alcotest.(check (float 0.)) "rtt_ratio" 0. m.Memory.rtt_ratio

let test_first_ack_sets_ratio_only () =
  let t = Memory.tracker () in
  let m = Memory.on_ack t ~sent_at:0. ~received_at:0.075 ~rtt:0.15 in
  (* No deltas yet, so the EWMAs stay zero; the first RTT is the min so
     the ratio is 1. *)
  Alcotest.(check (float 0.)) "ack_ewma still 0" 0. m.Memory.ack_ewma;
  Alcotest.(check (float 0.)) "send_ewma still 0" 0. m.Memory.send_ewma;
  Alcotest.(check (float 1e-9)) "ratio 1" 1. m.Memory.rtt_ratio;
  Alcotest.(check (option (float 1e-12))) "min rtt" (Some 0.15) (Memory.min_rtt t)

let test_ewma_blends_from_zero () =
  let t = Memory.tracker () in
  ignore (Memory.on_ack t ~sent_at:0. ~received_at:0.1 ~rtt:0.1);
  (* Second ack 8 ms later at receiver, 8 ms later at sender. *)
  let m = Memory.on_ack t ~sent_at:0.008 ~received_at:0.108 ~rtt:0.1 in
  (* EWMA from zero with weight 1/8: 0 + (8 - 0)/8 = 1 ms. *)
  Alcotest.(check (float 1e-9)) "ack_ewma" 1. m.Memory.ack_ewma;
  Alcotest.(check (float 1e-9)) "send_ewma" 1. m.Memory.send_ewma

let test_rtt_ratio_tracks_min () =
  let t = Memory.tracker () in
  ignore (Memory.on_ack t ~sent_at:0. ~received_at:0.1 ~rtt:0.1);
  let m = Memory.on_ack t ~sent_at:0.01 ~received_at:0.12 ~rtt:0.2 in
  Alcotest.(check (float 1e-9)) "ratio 2" 2. m.Memory.rtt_ratio;
  (* A new smaller RTT becomes the min; ratio returns to 1. *)
  let m = Memory.on_ack t ~sent_at:0.02 ~received_at:0.13 ~rtt:0.05 in
  Alcotest.(check (float 1e-9)) "new min, ratio 1" 1. m.Memory.rtt_ratio

let test_reset () =
  let t = Memory.tracker () in
  ignore (Memory.on_ack t ~sent_at:0. ~received_at:0.1 ~rtt:0.1);
  ignore (Memory.on_ack t ~sent_at:0.01 ~received_at:0.2 ~rtt:0.19);
  Memory.reset t;
  let m = Memory.current t in
  Alcotest.(check (float 0.)) "back to zero" 0. m.Memory.ack_ewma;
  Alcotest.(check bool) "min rtt cleared" true (Memory.min_rtt t = None)

let test_clamping () =
  let m = Memory.make ~ack_ewma:1e9 ~send_ewma:(-5.) ~rtt_ratio:20000. in
  Alcotest.(check bool) "ack clamped" true (m.Memory.ack_ewma < Memory.max_value);
  Alcotest.(check (float 0.)) "negative floored" 0. m.Memory.send_ewma;
  Alcotest.(check bool) "ratio clamped" true (m.Memory.rtt_ratio < Memory.max_value)

let test_get_dims () =
  let m = Memory.make ~ack_ewma:1. ~send_ewma:2. ~rtt_ratio:3. in
  Alcotest.(check (float 0.)) "dim 0" 1. (Memory.get m 0);
  Alcotest.(check (float 0.)) "dim 1" 2. (Memory.get m 1);
  Alcotest.(check (float 0.)) "dim 2" 3. (Memory.get m 2);
  Alcotest.check_raises "dim 3 invalid" (Invalid_argument "Memory.get: dimension 3")
    (fun () -> ignore (Memory.get m 3))

let test_reordered_echo_floored () =
  let t = Memory.tracker () in
  ignore (Memory.on_ack t ~sent_at:0.010 ~received_at:0.110 ~rtt:0.1);
  (* An echo with an *earlier* send timestamp must not produce a
     negative EWMA sample. *)
  let m = Memory.on_ack t ~sent_at:0.005 ~received_at:0.112 ~rtt:0.107 in
  Alcotest.(check bool) "send_ewma non-negative" true (m.Memory.send_ewma >= 0.)

let prop_ratio_at_least_one =
  QCheck.Test.make ~name:"rtt_ratio >= 1 once samples exist" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 40) (float_range 0.01 2.0))
    (fun rtts ->
      let t = Memory.tracker () in
      let clock = ref 0. in
      List.for_all
        (fun rtt ->
          clock := !clock +. 0.05;
          let m = Memory.on_ack t ~sent_at:(!clock -. rtt) ~received_at:!clock ~rtt in
          m.Memory.rtt_ratio >= 1. -. 1e-9)
        rtts)

let prop_memory_always_in_cube =
  QCheck.Test.make ~name:"memory stays inside [0, 16384)^3" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 40) (pair (float_range 0. 100.) (float_range 0.001 50.)))
    (fun samples ->
      let t = Memory.tracker () in
      let clock = ref 0. in
      List.for_all
        (fun (gap, rtt) ->
          clock := !clock +. gap;
          let m = Memory.on_ack t ~sent_at:(!clock -. rtt) ~received_at:!clock ~rtt in
          let ok v = v >= 0. && v < Memory.max_value in
          ok m.Memory.ack_ewma && ok m.Memory.send_ewma && ok m.Memory.rtt_ratio)
        samples)

let tests =
  [
    Alcotest.test_case "all-zero initial state" `Quick test_zero_initial;
    QCheck_alcotest.to_alcotest prop_ratio_at_least_one;
    QCheck_alcotest.to_alcotest prop_memory_always_in_cube;
    Alcotest.test_case "first ack sets ratio only" `Quick test_first_ack_sets_ratio_only;
    Alcotest.test_case "EWMA blends from zero with 1/8" `Quick test_ewma_blends_from_zero;
    Alcotest.test_case "rtt ratio tracks min" `Quick test_rtt_ratio_tracks_min;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "clamping to [0, 16384)" `Quick test_clamping;
    Alcotest.test_case "dimension accessor" `Quick test_get_dims;
    Alcotest.test_case "reordered echo floored" `Quick test_reordered_echo_floored;
  ]
