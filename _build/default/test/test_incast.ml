open Remy_cc
open Remy_sim
open Remy_util

let test_incast_draws_are_deterministic () =
  let w = Workload.incast ~burst_bytes:(32. *. 1500.) ~period:0.1 in
  let rng = Prng.create 1 in
  for _ = 1 to 20 do
    (match Workload.sample_on w rng with
    | Workload.Packets 32 -> ()
    | Workload.Packets n -> Alcotest.failf "burst of %d" n
    | Workload.Seconds _ -> Alcotest.fail "expected Packets");
    Alcotest.(check (float 0.)) "fixed period" 0.1 (Workload.sample_off w rng)
  done

let run_incast ~qdisc ~senders ~capacity =
  let flows =
    Array.init senders (fun _ ->
        {
          Dumbbell.cc = Dctcp.factory ();
          rtt = 0.004;
          workload = Workload.incast ~burst_bytes:(64. *. 1500.) ~period:0.05;
          start = `Immediate;
        })
  in
  Dumbbell.run
    {
      Dumbbell.service = Dumbbell.Rate_mbps 1000.;
      qdisc = qdisc capacity;
      flows;
      duration = 3.;
      seed = 11;
      min_rto = 0.2;
    }

let test_synchronized_bursts_overflow_small_buffer () =
  (* 32 senders x 64-segment synchronized bursts = 2048 packets hitting
     a 128-packet buffer at once: drops are inevitable.  This is the
     incast collapse of Section 3.2's datacenter traffic model. *)
  let r = run_incast ~qdisc:(fun c -> Dumbbell.Droptail c) ~senders:32 ~capacity:128 in
  Alcotest.(check bool) "incast drops" true (r.Dumbbell.drops > 0)

let test_big_buffer_absorbs_burst () =
  let r =
    run_incast ~qdisc:(fun c -> Dumbbell.Droptail c) ~senders:8 ~capacity:4096
  in
  Alcotest.(check int) "no drops with headroom" 0 r.Dumbbell.drops;
  Array.iter
    (fun (f : Metrics.flow_summary) ->
      Alcotest.(check bool) "every sender progresses" true (f.Metrics.packets > 0))
    r.Dumbbell.flows

let test_ecn_reduces_incast_drops () =
  let droptail =
    run_incast ~qdisc:(fun c -> Dumbbell.Droptail c) ~senders:32 ~capacity:256
  in
  let red =
    run_incast
      ~qdisc:(fun c -> Dumbbell.Dctcp_red { capacity = c; threshold = 65 })
      ~senders:32 ~capacity:256
  in
  (* DCTCP's marking throttles senders before the buffer fills, so the
     ECN switch should drop (tail-drop) less than pure DropTail. *)
  Alcotest.(check bool) "ECN mitigates incast" true
    (red.Dumbbell.drops <= droptail.Dumbbell.drops)

let tests =
  [
    Alcotest.test_case "deterministic draws" `Quick test_incast_draws_are_deterministic;
    Alcotest.test_case "synchronized bursts overflow" `Slow test_synchronized_bursts_overflow_small_buffer;
    Alcotest.test_case "big buffer absorbs" `Slow test_big_buffer_absorbs_burst;
    Alcotest.test_case "ECN reduces incast drops" `Slow test_ecn_reduces_incast_drops;
  ]
