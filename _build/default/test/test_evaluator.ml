open Remy

let model = Net_model.onex ~sim_duration:3.0 ()

let specimens seed =
  Net_model.draw_many model (Remy_util.Prng.create seed) 3

let objective = Objective.proportional ~delta:1.0

let eval ?override ?tally tree specs =
  Evaluator.score ?override ?tally ~domains:1 ~objective
    ~queue_capacity:model.Net_model.queue_capacity
    ~duration:model.Net_model.sim_duration tree specs

let test_deterministic () =
  let tree = Rule_tree.create () in
  let r1 = eval tree (specimens 5) and r2 = eval tree (specimens 5) in
  Alcotest.(check (float 0.)) "same specimens, same score" r1.Evaluator.mean_score
    r2.Evaluator.mean_score

let test_specimens_matter () =
  let tree = Rule_tree.create () in
  let r1 = eval tree (specimens 5) and r2 = eval tree (specimens 6) in
  Alcotest.(check bool) "different specimens, different score" true
    (r1.Evaluator.mean_score <> r2.Evaluator.mean_score)

let test_override_changes_score () =
  let tree = Rule_tree.create () in
  let specs = specimens 5 in
  let base = eval tree specs in
  let slow =
    eval ~override:(0, { Action.multiple = 0.; increment = 1.; intersend_ms = 500. })
      tree specs
  in
  Alcotest.(check bool) "throttled candidate scores differently" true
    (base.Evaluator.mean_score <> slow.Evaluator.mean_score);
  Alcotest.(check bool) "throttled candidate scores worse" true
    (slow.Evaluator.mean_score < base.Evaluator.mean_score)

let test_tally_collected () =
  let tree = Rule_tree.create () in
  let tally = Tally.create ~capacity:(Rule_tree.capacity tree) ~seed:2 () in
  ignore (eval ~tally tree (specimens 5));
  Alcotest.(check bool) "rule usage observed" true (Tally.count tally 0 > 0);
  Alcotest.(check bool) "memory samples kept" true (Tally.samples tally 0 <> [])

let test_scores_finite () =
  let tree = Rule_tree.create () in
  let r = eval tree (specimens 9) in
  List.iter
    (fun s -> if not (Float.is_finite s) then Alcotest.fail "non-finite sender score")
    r.Evaluator.sender_scores;
  Alcotest.(check bool) "mean finite" true (Float.is_finite r.Evaluator.mean_score)

let test_flow_summaries_exposed () =
  let tree = Rule_tree.create () in
  let s = List.hd (specimens 5) in
  let flows =
    Evaluator.specimen_flow_summaries ~queue_capacity:model.Net_model.queue_capacity
      ~duration:model.Net_model.sim_duration tree s
  in
  Alcotest.(check int) "one summary per sender" s.Net_model.n (Array.length flows)

let tests =
  [
    Alcotest.test_case "deterministic" `Slow test_deterministic;
    Alcotest.test_case "specimens matter" `Slow test_specimens_matter;
    Alcotest.test_case "override changes score" `Slow test_override_changes_score;
    Alcotest.test_case "tally collected" `Slow test_tally_collected;
    Alcotest.test_case "scores finite" `Slow test_scores_finite;
    Alcotest.test_case "flow summaries exposed" `Quick test_flow_summaries_exposed;
  ]
