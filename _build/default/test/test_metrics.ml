open Remy_sim

let test_throughput_definition () =
  (* Paper: throughput = sum of bytes / sum of on-times. *)
  let m = Metrics.create ~n_flows:1 in
  Metrics.flow_on m 0 0.;
  Metrics.packet_delivered m 0 ~bytes:125_000 ~queueing_delay:0.01;
  Metrics.flow_off m 0 1.;
  Metrics.flow_on m 0 5.;
  Metrics.packet_delivered m 0 ~bytes:125_000 ~queueing_delay:0.03;
  Metrics.flow_off m 0 6.;
  let s = Metrics.summary m 0 in
  (* 250 kB over 2 s on-time = 1 Mbps. *)
  Alcotest.(check (float 1e-9)) "throughput" 1.0 s.Metrics.throughput_mbps;
  Alcotest.(check (float 1e-9)) "mean qdelay ms" 20. s.Metrics.mean_queueing_delay_ms;
  Alcotest.(check int) "packets" 2 s.Metrics.packets;
  Alcotest.(check (float 1e-9)) "on time" 2. s.Metrics.on_time

let test_idempotent_transitions () =
  let m = Metrics.create ~n_flows:1 in
  Metrics.flow_on m 0 0.;
  Metrics.flow_on m 0 1.;
  (* ignored: already on *)
  Metrics.flow_off m 0 2.;
  Metrics.flow_off m 0 3.;
  (* ignored: already off *)
  let s = Metrics.summary m 0 in
  Alcotest.(check (float 1e-9)) "single interval" 2. s.Metrics.on_time

let test_finish_closes_open_interval () =
  let m = Metrics.create ~n_flows:2 in
  Metrics.flow_on m 1 4.;
  Metrics.finish m 10.;
  let s = Metrics.summary m 1 in
  Alcotest.(check (float 1e-9)) "closed at finish" 6. s.Metrics.on_time

let test_never_on () =
  let m = Metrics.create ~n_flows:1 in
  Metrics.finish m 10.;
  let s = Metrics.summary m 0 in
  Alcotest.(check (float 0.)) "zero throughput" 0. s.Metrics.throughput_mbps;
  Alcotest.(check (float 0.)) "zero delay" 0. s.Metrics.mean_queueing_delay_ms

let test_summaries_shape () =
  let m = Metrics.create ~n_flows:3 in
  Alcotest.(check int) "one summary per flow" 3 (Array.length (Metrics.summaries m))

let tests =
  [
    Alcotest.test_case "throughput = bytes / on-time" `Quick test_throughput_definition;
    Alcotest.test_case "idempotent on/off" `Quick test_idempotent_transitions;
    Alcotest.test_case "finish closes open intervals" `Quick test_finish_closes_open_interval;
    Alcotest.test_case "never-on flow" `Quick test_never_on;
    Alcotest.test_case "summaries shape" `Quick test_summaries_shape;
  ]
