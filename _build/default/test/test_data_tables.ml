(* Sanity checks over the checked-in pre-trained rule tables: they must
   load, be well-formed, behave deterministically, and actually move
   traffic.  Skipped quietly when a table has not been trained yet. *)

open Remy
open Remy_scenarios

let table_names =
  [ "delta01"; "delta1"; "delta10"; "onex"; "tenx"; "datacenter"; "coexist" ]

let with_table name f =
  match Tables.load name with
  | Ok tree -> f tree
  | Error _ -> Printf.eprintf "[skip] table %s not trained yet\n" name

let test_loads_and_roundtrips name () =
  with_table name (fun tree ->
      Alcotest.(check bool) "non-empty" true (Rule_tree.num_rules tree >= 1);
      (* Round-trip through the serializer preserves lookups. *)
      let tmp = Filename.temp_file "table" ".rules" in
      Rule_tree.save tmp tree;
      (match Rule_tree.load tmp with
      | Error msg -> Alcotest.fail msg
      | Ok tree' ->
        let rng = Remy_util.Prng.create 55 in
        for _ = 1 to 200 do
          let m =
            Memory.make
              ~ack_ewma:(Remy_util.Prng.float rng 100.)
              ~send_ewma:(Remy_util.Prng.float rng 100.)
              ~rtt_ratio:(Remy_util.Prng.float rng 8.)
          in
          let a = Rule_tree.action tree (Rule_tree.lookup tree m) in
          let a' = Rule_tree.action tree' (Rule_tree.lookup tree' m) in
          if not (Action.equal a a') then Alcotest.fail "lookup divergence"
        done);
      Sys.remove tmp)

let test_actions_in_searchable_region name () =
  with_table name (fun tree ->
      List.iter
        (fun id ->
          let a = Rule_tree.action tree id in
          if
            a.Action.multiple < 0. || a.Action.multiple > 2.
            || a.Action.increment < -256. || a.Action.increment > 256.
            || a.Action.intersend_ms < 0.001 || a.Action.intersend_ms > 1000.
          then
            Alcotest.failf "rule %d action outside clamp region: %s" id
              (Format.asprintf "%a" Action.pp a))
        (Rule_tree.live_ids tree))

let test_delta1_moves_traffic () =
  with_table "delta1" (fun tree ->
      let scenario =
        Scenario.make
          ~service:(Remy_cc.Dumbbell.Rate_mbps 15.)
          ~n:2 ~rtt:0.150
          ~workload:(Remy_sim.Workload.by_time ~mean_on:1. ~mean_off:1.)
          ~duration:15. ~replications:2 ()
      in
      let s = Scenario.run_scheme scenario (Schemes.remy ~name:"remy" tree) in
      Alcotest.(check bool) "achieves real throughput" true
        (s.Scenario.median_tput > 0.5))

let test_delta_family_orders_delay () =
  (* Bigger delta must not yield *more* queueing delay than smaller
     delta on the design-range scenario. *)
  match (Tables.load "delta01", Tables.load "delta10") with
  | Ok t01, Ok t10 ->
    let scenario =
      Scenario.make
        ~service:(Remy_cc.Dumbbell.Rate_mbps 15.)
        ~n:4 ~rtt:0.150
        ~workload:(Remy_sim.Workload.by_bytes ~mean_bytes:100e3 ~mean_off:0.5)
        ~duration:20. ~replications:3 ()
    in
    let d tree =
      (Scenario.run_scheme scenario (Schemes.remy ~name:"r" tree)).Scenario
        .median_qdelay
    in
    Alcotest.(check bool) "delta=10 trades throughput for delay" true
      (d t10 <= d t01)
  | _ -> Printf.eprintf "[skip] delta tables not trained yet\n"

let tests =
  List.concat_map
    (fun name ->
      [
        Alcotest.test_case (name ^ " loads/roundtrips") `Quick
          (test_loads_and_roundtrips name);
        Alcotest.test_case (name ^ " actions clamped") `Quick
          (test_actions_in_searchable_region name);
      ])
    table_names
  @ [
      Alcotest.test_case "delta1 moves traffic" `Slow test_delta1_moves_traffic;
      Alcotest.test_case "delta family orders delay" `Slow test_delta_family_orders_delay;
    ]
