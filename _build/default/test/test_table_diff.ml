open Remy

let mem v = Memory.make ~ack_ewma:v ~send_ewma:v ~rtt_ratio:v

let test_identical_tables () =
  let t = Rule_tree.create () in
  let r = Table_diff.compare_on_grid t t in
  Alcotest.(check (float 0.)) "full agreement" 1.0 r.Table_diff.agreement;
  Alcotest.(check (float 0.)) "no multiple diff" 0. r.Table_diff.mean_d_multiple;
  Alcotest.(check (float 0.)) "no increment diff" 0. r.Table_diff.mean_d_increment;
  Alcotest.(check int) "grid size" (12 * 12 * 12) r.Table_diff.points

let test_uniformly_different () =
  let a = Rule_tree.create () in
  let b = Rule_tree.create () in
  Rule_tree.set_action b 0 { Action.multiple = 1.; increment = 3.; intersend_ms = 0.01 };
  let r = Table_diff.compare_on_grid a b in
  Alcotest.(check (float 0.)) "no agreement" 0. r.Table_diff.agreement;
  (* b differs from default by increment 2 everywhere. *)
  Alcotest.(check (float 1e-9)) "increment delta" 2. r.Table_diff.mean_d_increment

let test_localized_difference () =
  let a = Rule_tree.create () in
  let b = Rule_tree.create () in
  ignore (Rule_tree.subdivide b 0 ~at:(mem 100.));
  (* Change only the all-high octant of b. *)
  let high = Rule_tree.lookup b (mem 10000.) in
  Rule_tree.set_action b high
    { Action.multiple = 0.; increment = 1.; intersend_ms = 100. };
  let r = Table_diff.compare_on_grid a b in
  Alcotest.(check bool) "mostly agrees" true (r.Table_diff.agreement > 0.5);
  Alcotest.(check bool) "not fully" true (r.Table_diff.agreement < 1.0);
  let m, a1, a2 = r.Table_diff.max_disagreement in
  Alcotest.(check bool) "worst point is in the high region" true
    (Memory.get m 0 >= 100. && Memory.get m 1 >= 100. && Memory.get m 2 >= 100.);
  Alcotest.(check bool) "actions reported differ" true (not (Action.equal a1 a2))

let test_action_distance () =
  Alcotest.(check (float 0.)) "zero for equal" 0.
    (Table_diff.action_distance Action.default Action.default);
  let d =
    Table_diff.action_distance Action.default
      { Action.multiple = 2.; increment = 1.; intersend_ms = 0.01 }
  in
  Alcotest.(check (float 1e-9)) "multiple term" 0.5 d

let test_grid_covers_origin_and_far () =
  (* The probe grid must include the all-zero initial state (where every
     connection starts) for the diff to be meaningful. *)
  let a = Rule_tree.create () in
  let b = Rule_tree.create () in
  ignore (Rule_tree.subdivide b 0 ~at:(mem 0.5));
  (* Only the origin octant differs. *)
  let origin = Rule_tree.lookup b Memory.zero in
  Rule_tree.set_action b origin
    { Action.multiple = 1.; increment = 50.; intersend_ms = 0.01 };
  let r = Table_diff.compare_on_grid a b in
  Alcotest.(check bool) "origin difference detected" true
    (r.Table_diff.agreement < 1.0)

let tests =
  [
    Alcotest.test_case "identical tables" `Quick test_identical_tables;
    Alcotest.test_case "uniformly different" `Quick test_uniformly_different;
    Alcotest.test_case "localized difference" `Quick test_localized_difference;
    Alcotest.test_case "action distance" `Quick test_action_distance;
    Alcotest.test_case "grid covers origin" `Quick test_grid_covers_origin_and_far;
  ]
