open Remy_cc

let ack ?(now = 1.) ?(rtt = Some 0.1) ?(newly = 1) ?(cum = 1) ?(ecn = false)
    ?(xcp = None) ?(in_recovery = false) () =
  {
    Cc.now;
    rtt;
    newly_acked = newly;
    cum_ack = cum;
    acked_seq = cum - 1;
    acked_sent_at = now -. (match rtt with Some r -> r | None -> 0.1);
    receiver_ts = now -. 0.05;
    ecn_echo = ecn;
    xcp_feedback = xcp;
    in_flight = 1;
    in_recovery;
  }

(* --- NewReno -------------------------------------------------------- *)

let test_newreno_slow_start () =
  let cc = Newreno.make ~initial_window:2. () in
  cc.Cc.reset ~now:0.;
  Alcotest.(check (float 1e-9)) "initial window" 2. (cc.Cc.window ());
  cc.Cc.on_ack (ack ~newly:2 ());
  Alcotest.(check (float 1e-9)) "slow start doubles per window" 4. (cc.Cc.window ())

let test_newreno_congestion_avoidance () =
  let cc = Newreno.make () in
  cc.Cc.reset ~now:0.;
  cc.Cc.on_loss ~now:1.;
  (* leaves slow start: ssthresh = cwnd/2 *)
  let w0 = cc.Cc.window () in
  cc.Cc.on_ack (ack ());
  Alcotest.(check (float 1e-9)) "additive increase" (w0 +. (1. /. w0)) (cc.Cc.window ())

let test_newreno_loss_halves () =
  let cc = Newreno.make () in
  cc.Cc.reset ~now:0.;
  for _ = 1 to 6 do
    cc.Cc.on_ack (ack ())
  done;
  let w = cc.Cc.window () in
  cc.Cc.on_loss ~now:1.;
  Alcotest.(check (float 1e-9)) "halved" (Float.max 2. (w /. 2.)) (cc.Cc.window ())

let test_newreno_timeout_collapses () =
  let cc = Newreno.make () in
  cc.Cc.reset ~now:0.;
  for _ = 1 to 6 do
    cc.Cc.on_ack (ack ())
  done;
  cc.Cc.on_timeout ~now:1.;
  Alcotest.(check (float 1e-9)) "window of one" 1. (cc.Cc.window ());
  (* After timeout, slow start resumes toward ssthresh. *)
  cc.Cc.on_ack (ack ());
  Alcotest.(check (float 1e-9)) "slow start resumes" 2. (cc.Cc.window ())

let test_newreno_frozen_in_recovery () =
  let cc = Newreno.make () in
  cc.Cc.reset ~now:0.;
  let w0 = cc.Cc.window () in
  cc.Cc.on_ack (ack ~in_recovery:true ());
  Alcotest.(check (float 1e-9)) "no growth during recovery" w0 (cc.Cc.window ())

(* --- Vegas ---------------------------------------------------------- *)

let run_vegas_epochs cc ~rtt ~epochs =
  (* Feed one-ack-per-epoch with the given RTT; epoch boundaries are
     time-based, so space the acks a full RTT apart. *)
  let now = ref 0.1 in
  for _ = 1 to epochs do
    cc.Cc.on_ack (ack ~now:!now ~rtt:(Some rtt) ());
    now := !now +. rtt +. 0.001
  done

let test_vegas_increases_when_uncongested () =
  let cc = Vegas.make ~alpha:1. ~beta:3. () in
  cc.Cc.reset ~now:0.;
  cc.Cc.on_loss ~now:0.;
  (* exit slow start; cwnd = 2 *)
  let w0 = cc.Cc.window () in
  (* Constant RTT = base RTT: diff = 0 < alpha, so +1 per epoch. *)
  run_vegas_epochs cc ~rtt:0.1 ~epochs:5;
  Alcotest.(check bool) "grew" true (cc.Cc.window () > w0 +. 2.)

let test_vegas_decreases_when_queueing () =
  let cc = Vegas.make ~alpha:1. ~beta:3. () in
  cc.Cc.reset ~now:0.;
  cc.Cc.on_loss ~now:0.;
  (* Establish a low base RTT, grow a bit. *)
  run_vegas_epochs cc ~rtt:0.1 ~epochs:8;
  let w_grown = cc.Cc.window () in
  (* Now the RTT inflates 3x: diff >> beta, Vegas must back off. *)
  run_vegas_epochs cc ~rtt:0.3 ~epochs:8;
  Alcotest.(check bool) "backed off" true (cc.Cc.window () < w_grown)

let test_vegas_slow_start_exits () =
  let cc = Vegas.make ~gamma:1. () in
  cc.Cc.reset ~now:0.;
  (* Huge queueing right away: slow start must stop doubling. *)
  run_vegas_epochs cc ~rtt:0.1 ~epochs:2;
  run_vegas_epochs cc ~rtt:0.5 ~epochs:6;
  Alcotest.(check bool) "window stays modest" true (cc.Cc.window () < 20.)

(* --- Cubic ---------------------------------------------------------- *)

let test_cubic_beta_decrease () =
  let cc = Cubic.make () in
  cc.Cc.reset ~now:0.;
  for _ = 1 to 20 do
    cc.Cc.on_ack (ack ())
  done;
  let w = cc.Cc.window () in
  cc.Cc.on_loss ~now:1.;
  Alcotest.(check (float 1e-6)) "0.7 multiplicative decrease" (w *. 0.7) (cc.Cc.window ())

let test_cubic_grows_toward_wmax () =
  let cc = Cubic.make () in
  cc.Cc.reset ~now:0.;
  for _ = 1 to 40 do
    cc.Cc.on_ack (ack ())
  done;
  cc.Cc.on_loss ~now:1.;
  let w_after_loss = cc.Cc.window () in
  (* Acks over the next seconds: concave growth back toward W_max. *)
  let now = ref 1.1 in
  for _ = 1 to 100 do
    cc.Cc.on_ack (ack ~now:!now ());
    now := !now +. 0.1
  done;
  let w = cc.Cc.window () in
  Alcotest.(check bool) "recovered beyond the drop" true (w > w_after_loss)

let test_cubic_timeout () =
  let cc = Cubic.make () in
  cc.Cc.reset ~now:0.;
  for _ = 1 to 10 do
    cc.Cc.on_ack (ack ())
  done;
  cc.Cc.on_timeout ~now:1.;
  Alcotest.(check (float 1e-9)) "collapses to 1" 1. (cc.Cc.window ())

(* --- Compound ------------------------------------------------------- *)

(* Feed a full window of ACKs per RTT — a realistic ACK clock, unlike
   one ACK per epoch which starves both the Reno and binomial terms. *)
let run_compound_epochs cc ~rtt ~epochs ~start =
  let now = ref start in
  for _ = 1 to epochs do
    let acks = max 1 (int_of_float (cc.Cc.window ())) in
    for _ = 1 to acks do
      cc.Cc.on_ack (ack ~now:!now ~rtt:(Some rtt) ())
    done;
    now := !now +. rtt +. 0.001
  done;
  !now

let grow_to cc ~target =
  (* Slow start with a full ACK clock until the window reaches target. *)
  let now = ref 0.01 in
  while cc.Cc.window () < target do
    cc.Cc.on_ack (ack ~now:!now ());
    now := !now +. 0.0001
  done;
  !now

let test_compound_dwnd_grows_when_uncongested () =
  let cc = Compound.make () in
  cc.Cc.reset ~now:0.;
  let t = grow_to cc ~target:100. in
  cc.Cc.on_loss ~now:t;
  (* exit slow start around win = 50 *)
  let w0 = cc.Cc.window () in
  let _ = run_compound_epochs cc ~rtt:0.1 ~epochs:10 ~start:(t +. 0.1) in
  (* Ten RTTs of Reno alone would add ~10; the binomial dwnd term
     (alpha * win^k - 1 per RTT, ~1.3 at win = 50) must push beyond that. *)
  Alcotest.(check bool) "superlinear growth" true (cc.Cc.window () > w0 +. 13.)

let test_compound_dwnd_retreats_under_queueing () =
  let cc = Compound.make () in
  cc.Cc.reset ~now:0.;
  let t = grow_to cc ~target:100. in
  cc.Cc.on_loss ~now:t;
  let t = run_compound_epochs cc ~rtt:0.1 ~epochs:30 ~start:(t +. 0.1) in
  let w_grown = cc.Cc.window () in
  (* RTT inflates 4x: diff >> gamma, the delay window must be released
     faster than Reno's additive term can regrow it. *)
  let _ = run_compound_epochs cc ~rtt:0.4 ~epochs:3 ~start:t in
  Alcotest.(check bool) "delay window retreats" true (cc.Cc.window () < w_grown)

let test_compound_loss_halves_combined () =
  let cc = Compound.make () in
  cc.Cc.reset ~now:0.;
  let t = grow_to cc ~target:100. in
  cc.Cc.on_loss ~now:t;
  let _ = run_compound_epochs cc ~rtt:0.1 ~epochs:10 ~start:(t +. 0.1) in
  let w = cc.Cc.window () in
  cc.Cc.on_loss ~now:(t +. 10.);
  let w' = cc.Cc.window () in
  if Float.abs (w' -. Float.max 2. (w /. 2.)) > 2. then
    Alcotest.failf "combined window not halved: %f -> %f" w w'

(* --- DCTCP ---------------------------------------------------------- *)

let test_dctcp_ecn_capable () =
  let cc = Dctcp.make () in
  Alcotest.(check bool) "requests ECN" true cc.Cc.ecn_capable

let test_dctcp_gentle_reduction () =
  let cc = Dctcp.make ~g:0.5 () in
  cc.Cc.reset ~now:0.;
  cc.Cc.on_loss ~now:0.;
  (* leave slow start *)
  (* Grow a bit without marks. *)
  for i = 1 to 50 do
    cc.Cc.on_ack (ack ~cum:i ())
  done;
  let w = cc.Cc.window () in
  (* A window with a small fraction of marks: reduction should be much
     gentler than halving. *)
  for i = 51 to 60 do
    cc.Cc.on_ack (ack ~cum:i ~ecn:(i = 51) ())
  done;
  let w' = cc.Cc.window () in
  Alcotest.(check bool) "reduced" true (w' < w +. 1.);
  Alcotest.(check bool) "gentler than halving" true (w' > w /. 2.)

let test_dctcp_full_marking_approaches_half () =
  let cc = Dctcp.make ~g:1.0 () in
  cc.Cc.reset ~now:0.;
  cc.Cc.on_loss ~now:0.;
  for i = 1 to 30 do
    cc.Cc.on_ack (ack ~cum:i ())
  done;
  let w = cc.Cc.window () in
  (* Everything marked with g=1: alpha -> 1, reduction -> w/2 within a
     couple of observation windows. *)
  for i = 31 to 120 do
    cc.Cc.on_ack (ack ~cum:i ~ecn:true ())
  done;
  Alcotest.(check bool) "strong reduction under full marking" true
    (cc.Cc.window () < w)

(* --- XCP endpoint --------------------------------------------------- *)

let test_xcp_applies_feedback () =
  let cc = Xcp.make ~initial_window:10. () in
  cc.Cc.reset ~now:0.;
  cc.Cc.on_ack (ack ~xcp:(Some 5.) ());
  Alcotest.(check (float 1e-9)) "positive feedback" 15. (cc.Cc.window ());
  cc.Cc.on_ack (ack ~xcp:(Some (-10.)) ());
  Alcotest.(check (float 1e-9)) "negative feedback" 5. (cc.Cc.window ());
  cc.Cc.on_ack (ack ~xcp:(Some (-100.)) ());
  Alcotest.(check (float 1e-9)) "floor of one" 1. (cc.Cc.window ())

let test_xcp_stamps_header () =
  let cc = Xcp.make ~initial_window:7. () in
  cc.Cc.reset ~now:0.;
  cc.Cc.on_ack (ack ~rtt:(Some 0.123) ~xcp:(Some 0.) ());
  match cc.Cc.stamp ~now:1. with
  | Some hdr ->
    Alcotest.(check (float 1e-9)) "cwnd stamped" 7. hdr.Remy_sim.Packet.xcp_cwnd;
    Alcotest.(check (float 1e-9)) "rtt stamped" 0.123 hdr.Remy_sim.Packet.xcp_rtt;
    Alcotest.(check bool) "feedback starts unbounded" true
      (hdr.Remy_sim.Packet.xcp_feedback = infinity)
  | None -> Alcotest.fail "no header"

let test_xcp_reno_fallback () =
  let cc = Xcp.make ~initial_window:4. () in
  cc.Cc.reset ~now:0.;
  cc.Cc.on_ack (ack ~xcp:None ());
  Alcotest.(check (float 1e-9)) "reno-ish growth without routers" (4. +. (1. /. 4.))
    (cc.Cc.window ())

let tests =
  [
    Alcotest.test_case "newreno slow start" `Quick test_newreno_slow_start;
    Alcotest.test_case "newreno congestion avoidance" `Quick test_newreno_congestion_avoidance;
    Alcotest.test_case "newreno loss halves" `Quick test_newreno_loss_halves;
    Alcotest.test_case "newreno timeout collapses" `Quick test_newreno_timeout_collapses;
    Alcotest.test_case "newreno frozen in recovery" `Quick test_newreno_frozen_in_recovery;
    Alcotest.test_case "vegas grows when uncongested" `Quick test_vegas_increases_when_uncongested;
    Alcotest.test_case "vegas backs off queueing" `Quick test_vegas_decreases_when_queueing;
    Alcotest.test_case "vegas slow start exits" `Quick test_vegas_slow_start_exits;
    Alcotest.test_case "cubic 0.7 decrease" `Quick test_cubic_beta_decrease;
    Alcotest.test_case "cubic regrows toward wmax" `Quick test_cubic_grows_toward_wmax;
    Alcotest.test_case "cubic timeout" `Quick test_cubic_timeout;
    Alcotest.test_case "compound grows superlinearly" `Quick test_compound_dwnd_grows_when_uncongested;
    Alcotest.test_case "compound retreats under queueing" `Quick test_compound_dwnd_retreats_under_queueing;
    Alcotest.test_case "compound loss halves combined" `Quick test_compound_loss_halves_combined;
    Alcotest.test_case "dctcp is ecn capable" `Quick test_dctcp_ecn_capable;
    Alcotest.test_case "dctcp gentle reduction" `Quick test_dctcp_gentle_reduction;
    Alcotest.test_case "dctcp full marking" `Quick test_dctcp_full_marking_approaches_half;
    Alcotest.test_case "xcp applies feedback" `Quick test_xcp_applies_feedback;
    Alcotest.test_case "xcp stamps header" `Quick test_xcp_stamps_header;
    Alcotest.test_case "xcp reno fallback" `Quick test_xcp_reno_fallback;
  ]
