open Remy
open Remy_cc

let ack ?(now = 1.) ?(rtt = 0.1) ?(sent_at = None) () =
  let acked_sent_at = match sent_at with Some s -> s | None -> now -. rtt in
  {
    Cc.now;
    rtt = Some rtt;
    newly_acked = 1;
    cum_ack = 1;
    acked_seq = 0;
    acked_sent_at;
    receiver_ts = now -. (rtt /. 2.);
    ecn_echo = false;
    xcp_feedback = None;
    in_flight = 1;
    in_recovery = false;
  }

let test_initial_window_is_increment () =
  (* cwnd starts at m*0 + b = b for the zero-memory rule. *)
  let tree = Rule_tree.create () in
  Rule_tree.set_action tree 0
    { Action.multiple = 1.; increment = 5.; intersend_ms = 2. };
  let cc = Remycc.make tree in
  cc.Cc.reset ~now:0.;
  Alcotest.(check (float 1e-9)) "initial window" 5. (cc.Cc.window ());
  Alcotest.(check (float 1e-9)) "intersend seconds" 0.002 (cc.Cc.intersend ())

let test_window_update_rule () =
  let tree = Rule_tree.create () in
  Rule_tree.set_action tree 0
    { Action.multiple = 0.5; increment = 3.; intersend_ms = 1. };
  let cc = Remycc.make tree in
  cc.Cc.reset ~now:0.;
  (* reset applies once: w = 3. Each ack: w = 0.5 w + 3. *)
  cc.Cc.on_ack (ack ());
  Alcotest.(check (float 1e-9)) "after one ack" 4.5 (cc.Cc.window ());
  cc.Cc.on_ack (ack ~now:1.2 ());
  Alcotest.(check (float 1e-9)) "after two acks" 5.25 (cc.Cc.window ())

let test_loss_and_timeout_ignored () =
  let tree = Rule_tree.create () in
  let cc = Remycc.make tree in
  cc.Cc.reset ~now:0.;
  cc.Cc.on_ack (ack ());
  let w = cc.Cc.window () in
  cc.Cc.on_loss ~now:2.;
  cc.Cc.on_timeout ~now:3.;
  Alcotest.(check (float 0.)) "window untouched by loss signals" w (cc.Cc.window ())

let test_reset_clears_memory () =
  let tree = Rule_tree.create () in
  let cc = Remycc.make tree in
  cc.Cc.reset ~now:0.;
  for i = 1 to 20 do
    cc.Cc.on_ack (ack ~now:(float_of_int i *. 0.1) ())
  done;
  let w_grown = cc.Cc.window () in
  cc.Cc.reset ~now:10.;
  Alcotest.(check (float 1e-9)) "back to initial" 1. (cc.Cc.window ());
  Alcotest.(check bool) "had grown" true (w_grown > 1.)

let test_rules_differentiate_by_memory () =
  (* Split the tree and give the high-rtt_ratio region a draconian
     action; a congested ack stream must select it. *)
  let tree = Rule_tree.create () in
  ignore
    (Rule_tree.subdivide tree 0
       ~at:(Memory.make ~ack_ewma:8000. ~send_ewma:8000. ~rtt_ratio:1.5));
  (* Octant index: rtt_ratio is dimension 2, so >=1.5 sets bit 4. *)
  List.iter
    (fun id ->
      let b = Rule_tree.box tree id in
      let lo_ratio = fst b.(2) in
      if lo_ratio >= 1.5 then
        Rule_tree.set_action tree id
          { Action.multiple = 0.; increment = 1.; intersend_ms = 100. }
      else
        Rule_tree.set_action tree id
          { Action.multiple = 1.; increment = 10.; intersend_ms = 0.01 })
    (Rule_tree.live_ids tree);
  let cc = Remycc.make tree in
  cc.Cc.reset ~now:0.;
  (* Uncongested acks: fast region, window grows by 10 per ack. *)
  cc.Cc.on_ack (ack ~now:0.1 ~rtt:0.1 ());
  cc.Cc.on_ack (ack ~now:0.2 ~rtt:0.1 ());
  Alcotest.(check bool) "aggressive region" true (cc.Cc.window () > 20.);
  (* Now RTT doubles: ratio = 2 >= 1.5 selects the draconian rule. *)
  cc.Cc.on_ack (ack ~now:0.5 ~rtt:0.2 ());
  Alcotest.(check (float 1e-9)) "window collapsed" 1. (cc.Cc.window ());
  Alcotest.(check (float 1e-9)) "paced at 100 ms" 0.1 (cc.Cc.intersend ())

let test_tally_records_usage () =
  let tree = Rule_tree.create () in
  let tally = Tally.create ~capacity:(Rule_tree.capacity tree) ~seed:3 () in
  let cc = Remycc.make ~tally tree in
  cc.Cc.reset ~now:0.;
  cc.Cc.on_ack (ack ());
  cc.Cc.on_ack (ack ~now:1.1 ());
  (* reset consults once + two acks. *)
  Alcotest.(check int) "uses counted" 3 (Tally.count tally 0)

let test_signal_mask () =
  (* With rtt_ratio masked, the draconian high-ratio rule from the
     differentiation test can never fire. *)
  let tree = Rule_tree.create () in
  ignore
    (Rule_tree.subdivide tree 0
       ~at:(Memory.make ~ack_ewma:8000. ~send_ewma:8000. ~rtt_ratio:1.5));
  List.iter
    (fun id ->
      let b = Rule_tree.box tree id in
      if fst b.(2) >= 1.5 then
        Rule_tree.set_action tree id
          { Action.multiple = 0.; increment = 1.; intersend_ms = 100. }
      else
        Rule_tree.set_action tree id
          { Action.multiple = 1.; increment = 10.; intersend_ms = 0.01 })
    (Rule_tree.live_ids tree);
  let mask = { Remycc.all_signals with Remycc.use_rtt_ratio = false } in
  let cc = Remycc.make ~mask tree in
  cc.Cc.reset ~now:0.;
  cc.Cc.on_ack (ack ~now:0.1 ~rtt:0.1 ());
  (* RTT doubles; unmasked this would collapse the window to 1. *)
  cc.Cc.on_ack (ack ~now:0.5 ~rtt:0.2 ());
  Alcotest.(check bool) "masked signal ignored" true (cc.Cc.window () > 20.)

let test_override_changes_behavior () =
  let tree = Rule_tree.create () in
  let override = (0, { Action.multiple = 1.; increment = 7.; intersend_ms = 1. }) in
  let cc = Remycc.make ~override tree in
  cc.Cc.reset ~now:0.;
  Alcotest.(check (float 1e-9)) "override applied" 7. (cc.Cc.window ())

let tests =
  [
    Alcotest.test_case "initial window = b" `Quick test_initial_window_is_increment;
    Alcotest.test_case "window update rule" `Quick test_window_update_rule;
    Alcotest.test_case "loss/timeout ignored" `Quick test_loss_and_timeout_ignored;
    Alcotest.test_case "reset clears memory" `Quick test_reset_clears_memory;
    Alcotest.test_case "rules differentiate by memory" `Quick test_rules_differentiate_by_memory;
    Alcotest.test_case "tally records usage" `Quick test_tally_records_usage;
    Alcotest.test_case "signal mask" `Quick test_signal_mask;
    Alcotest.test_case "override changes behavior" `Quick test_override_changes_behavior;
  ]
