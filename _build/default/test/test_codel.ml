open Remy_sim

let mk_pkt ?(flow = 0) seq = Packet.make ~flow ~seq ~conn:0 ~now:0. ()

let test_no_drops_when_fast () =
  (* Sojourn below the 5 ms target: CoDel must never drop. *)
  let q = Codel.create ~capacity:1000 () in
  let now = ref 0. in
  for i = 0 to 499 do
    ignore (q.Qdisc.enqueue ~now:!now (mk_pkt i));
    now := !now +. 0.001;
    ignore (q.Qdisc.dequeue ~now:!now)
  done;
  Alcotest.(check int) "no drops under target" 0 (q.Qdisc.drops ())

let test_drops_standing_queue () =
  (* A persistent queue with >100 ms sojourn must trigger dropping. *)
  let q = Codel.create ~capacity:1000 () in
  let now = ref 0. in
  let delivered = ref 0 in
  let next_seq = ref 0 in
  (* Arrivals at 2x the departure rate build a standing queue. *)
  for _ = 0 to 4000 do
    ignore (q.Qdisc.enqueue ~now:!now (mk_pkt !next_seq));
    incr next_seq;
    ignore (q.Qdisc.enqueue ~now:!now (mk_pkt !next_seq));
    incr next_seq;
    now := !now +. 0.002;
    match q.Qdisc.dequeue ~now:!now with Some _ -> incr delivered | None -> ()
  done;
  Alcotest.(check bool) "codel dropped" true (q.Qdisc.drops () > 0);
  Alcotest.(check bool) "still delivering" true (!delivered > 0)

let test_drop_spacing_increases () =
  (* After entering drop state the control law drops progressively more
     often: interval/sqrt(count) shrinks.  Check the count grows. *)
  let q = Codel.create ~capacity:100_000 () in
  let now = ref 0. in
  let next_seq = ref 0 in
  let drops_at_1s = ref 0 in
  for step = 0 to 7999 do
    for _ = 0 to 2 do
      ignore (q.Qdisc.enqueue ~now:!now (mk_pkt !next_seq));
      incr next_seq
    done;
    now := !now +. 0.001;
    ignore (q.Qdisc.dequeue ~now:!now);
    if step = 3999 then drops_at_1s := q.Qdisc.drops ()
  done;
  let first_half = !drops_at_1s in
  let second_half = q.Qdisc.drops () - !drops_at_1s in
  Alcotest.(check bool) "accelerating drop rate" true (second_half > first_half)

let test_codel_keeps_one_mtu () =
  (* CoDel never drops when the backlog is at or below one MTU. *)
  let q = Codel.create ~capacity:10 () in
  ignore (q.Qdisc.enqueue ~now:0. (mk_pkt 0));
  (* Even with a huge sojourn, a single-packet backlog survives. *)
  (match q.Qdisc.dequeue ~now:10. with
  | Some p -> Alcotest.(check int) "packet survives" 0 p.Packet.seq
  | None -> Alcotest.fail "dropped last packet");
  Alcotest.(check int) "no drops" 0 (q.Qdisc.drops ())

let test_sfq_isolates_flows () =
  (* An aggressive flow and a light flow: DRR must serve the light flow
     roughly its arrival share. *)
  let q = Sfq_codel.create ~capacity:1000 () in
  let now = ref 0. in
  let light_out = ref 0 and heavy_out = ref 0 in
  for i = 0 to 1999 do
    (* Heavy flow floods; light flow sends one packet per round. *)
    ignore (q.Qdisc.enqueue ~now:!now (mk_pkt ~flow:1 i));
    ignore (q.Qdisc.enqueue ~now:!now (mk_pkt ~flow:1 (i + 100_000)));
    ignore (q.Qdisc.enqueue ~now:!now (mk_pkt ~flow:2 i));
    now := !now +. 0.001;
    (match q.Qdisc.dequeue ~now:!now with
    | Some p -> if p.Packet.flow = 2 then incr light_out else incr heavy_out
    | None -> ());
    match q.Qdisc.dequeue ~now:!now with
    | Some p -> if p.Packet.flow = 2 then incr light_out else incr heavy_out
    | None -> ()
  done;
  (* Fair queueing: the light flow gets to send everything it offered
     (~1/3 of service), despite the heavy flow's 2x offered load. *)
  Alcotest.(check bool) "light flow served"
    true
    (float_of_int !light_out > 0.8 *. float_of_int (!light_out + !heavy_out) /. 3.)

let test_sfq_counts () =
  let q = Sfq_codel.create ~capacity:10 ~bins:16 () in
  for i = 0 to 4 do
    ignore (q.Qdisc.enqueue ~now:0. (mk_pkt ~flow:i i))
  done;
  Alcotest.(check int) "length tracks all bins" 5 (q.Qdisc.length ());
  let drained = ref 0 in
  let rec drain () =
    match q.Qdisc.dequeue ~now:0.001 with
    | Some _ ->
      incr drained;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "drains everything" 5 !drained;
  Alcotest.(check int) "empty" 0 (q.Qdisc.length ())

let test_sfq_overflow_drops_fattest () =
  let q = Sfq_codel.create ~capacity:10 ~bins:16 () in
  (* Flow 1 hogs the buffer; flow 2 then arrives. *)
  for i = 0 to 9 do
    ignore (q.Qdisc.enqueue ~now:0. (mk_pkt ~flow:1 i))
  done;
  ignore (q.Qdisc.enqueue ~now:0. (mk_pkt ~flow:2 0));
  Alcotest.(check bool) "a drop happened" true (q.Qdisc.drops () > 0);
  Alcotest.(check int) "buffer bounded" 10 (q.Qdisc.length ());
  (* The victim must come from the fat flow, so flow 2's packet survives. *)
  let rec drain acc =
    match q.Qdisc.dequeue ~now:0.001 with
    | Some p -> drain (p.Packet.flow :: acc)
    | None -> acc
  in
  let flows = drain [] in
  Alcotest.(check bool) "light flow survived" true (List.mem 2 flows)

let tests =
  [
    Alcotest.test_case "no drops under target" `Quick test_no_drops_when_fast;
    Alcotest.test_case "drops a standing queue" `Quick test_drops_standing_queue;
    Alcotest.test_case "control law accelerates" `Quick test_drop_spacing_increases;
    Alcotest.test_case "keeps >= one MTU" `Quick test_codel_keeps_one_mtu;
    Alcotest.test_case "sfqCoDel isolates flows" `Quick test_sfq_isolates_flows;
    Alcotest.test_case "sfqCoDel accounting" `Quick test_sfq_counts;
    Alcotest.test_case "sfqCoDel overflow hits fattest bin" `Quick test_sfq_overflow_drops_fattest;
  ]
