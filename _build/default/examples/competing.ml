(* Incremental deployment (Section 5.6): what happens when one RemyCC
   flow shares a DropTail bottleneck with a conventional buffer-filling
   TCP (Cubic)?

     dune exec examples/competing.exe *)

open Remy_scenarios
open Remy_sim
open Remy_util

let race ~tree ~off =
  let flows =
    [|
      {
        Remy_cc.Dumbbell.cc = Remy.Remycc.factory tree;
        rtt = 0.150;
        workload = Workload.icsi ~mean_off:off;
        start = `Off_draw;
      };
      {
        Remy_cc.Dumbbell.cc = Remy_cc.Cubic.factory ();
        rtt = 0.150;
        workload = Workload.icsi ~mean_off:off;
        start = `Off_draw;
      };
    |]
  in
  let remy_t = ref [] and cubic_t = ref [] in
  for rep = 0 to 5 do
    let r =
      Remy_cc.Dumbbell.run
        {
          Remy_cc.Dumbbell.service = Remy_cc.Dumbbell.Rate_mbps 15.;
          qdisc = Remy_cc.Dumbbell.Droptail 1000;
          flows;
          duration = 30.;
          seed = 9000 + rep;
          min_rto = Remy_cc.Dumbbell.default_min_rto;
        }
    in
    let f i = r.Remy_cc.Dumbbell.flows.(i) in
    if (f 0).Metrics.on_time > 0. then
      remy_t := (f 0).Metrics.throughput_mbps :: !remy_t;
    if (f 1).Metrics.on_time > 0. then
      cubic_t := (f 1).Metrics.throughput_mbps :: !cubic_t
  done;
  (Stats.mean (Array.of_list !remy_t), Stats.mean (Array.of_list !cubic_t))

let () =
  let tree = Tables.load_or_train ~progress:print_endline Tables.coexist in
  Format.printf
    "One RemyCC (coexistence-trained: RTT design range 100 ms - 10 s) vs one\n\
     Cubic flow on a 15 Mbps / 150 ms DropTail bottleneck, ICSI flow sizes:@.@.";
  Format.printf "%-14s %12s %12s@." "mean off" "RemyCC" "Cubic";
  List.iter
    (fun off ->
      let remy, cubic = race ~tree ~off in
      Format.printf "%11.0f ms %9.2f Mb %9.2f Mb@." (off *. 1e3) remy cubic)
    [ 0.5; 0.2; 0.05 ];
  Format.printf
    "@.Paper shape: at long off times (low duty cycle) the RemyCC grabs spare\n\
     capacity faster and wins; as the competitor approaches full duty cycle,\n\
     the buffer-filling protocol takes the larger share.@."
