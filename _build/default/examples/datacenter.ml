(* Datacenter example (Section 5.5): DCTCP with ECN marking switches vs
   a RemyCC trained to minimize -1/throughput over a DropTail switch.

     dune exec examples/datacenter.exe

   Scale note: 1 Gbps instead of the paper's 10 Gbps, with transfer
   sizes scaled alike (DESIGN.md, substitutions) so a laptop core can
   simulate it. *)

open Remy_scenarios
open Remy_sim

let () =
  let remy =
    Schemes.remy ~name:"RemyCC (DropTail)"
      (Tables.load_or_train ~progress:print_endline Tables.datacenter)
  in
  let scenario =
    Scenario.make
      ~service:(Remy_cc.Dumbbell.Rate_mbps 1000.)
      ~n:64 ~rtt:0.004
      ~workload:(Workload.by_bytes ~mean_bytes:2e6 ~mean_off:0.1)
      ~duration:5. ~replications:2 ()
  in
  Format.printf
    "64 senders, 1 Gbps, 4 ms RTT, exponential 2 MB transfers, 0.1 s off:@.@.";
  List.iter
    (fun scheme ->
      let s = Scenario.run_scheme scenario scheme in
      let tputs = Array.map (fun p -> p.Scenario.tput_mbps) s.Scenario.points in
      let rtts = Array.map (fun p -> p.Scenario.qdelay_ms +. 4.) s.Scenario.points in
      if Array.length tputs > 0 then
        Format.printf
          "  %-18s tput mean %6.1f / median %6.1f Mbps,  rtt mean %6.2f / median \
           %6.2f ms@."
          s.Scenario.scheme
          (Remy_util.Stats.mean tputs)
          (Remy_util.Stats.median tputs)
          (Remy_util.Stats.mean rtts)
          (Remy_util.Stats.median rtts))
    [ Schemes.dctcp; remy ];
  Format.printf
    "@.Paper shape: comparable transfer throughput; the RemyCC pays higher\n\
     per-packet RTTs because its DropTail switch lets queues grow, while\n\
     DCTCP's ECN keeps them near the marking threshold.@."
