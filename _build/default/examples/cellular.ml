(* Cellular example (Section 5.3): run congestion control over a
   time-varying LTE-like downlink, replayed from a trace.

     dune exec examples/cellular.exe

   The link releases one packet at each trace delivery instant; packets
   queue in between, so a protocol that overfills the buffer pays with
   self-inflicted delay ("bufferbloat") while a timid one wastes the
   rate bursts.  This probes the RemyCC outside its design range — the
   paper's "model mismatch" experiment. *)

open Remy_scenarios
open Remy_sim
open Remy_util

let () =
  (* Synthesize a fresh 2-minute trace (see DESIGN.md substitutions for
     why the paper's proprietary Verizon capture is replaced). *)
  let trace =
    Cell_trace.synthesize ~name:"example-lte" (Prng.create 42)
      Cell_trace.verizon_like ~duration:120.
  in
  Format.printf "Synthetic LTE downlink: %d delivery opportunities, mean %.1f Mbps@."
    (Array.length trace.Cell_trace.gaps)
    (Cell_trace.mean_rate_mbps trace);
  let remy =
    Schemes.remy ~name:"RemyCC d=1"
      (Tables.load_or_train ~progress:print_endline Tables.delta1)
  in
  let scenario =
    Scenario.make
      ~service:(Remy_cc.Dumbbell.Trace trace)
      ~n:4 ~rtt:0.050
      ~workload:(Workload.by_bytes ~mean_bytes:100e3 ~mean_off:0.5)
      ~duration:40. ~replications:4 ()
  in
  Format.printf "@.Four senders sharing the cellular link:@.@.";
  List.iter
    (fun scheme ->
      let s = Scenario.run_scheme scenario scheme in
      Format.printf "  %a@." Scenario.pp_summary_row s)
    [ Schemes.newreno; Schemes.cubic; Schemes.cubic_sfqcodel; remy ];
  Format.printf
    "@.Even though the trace's rate range (up to 50 Mbps, with outages) lies\n\
     outside the RemyCC's 10-20 Mbps design range, it should remain\n\
     competitive at this degree of multiplexing (paper Section 5.3).@."
