(* Quickstart: load a computer-generated congestion-control algorithm
   (a RemyCC rule table) and race it against NewReno and Cubic on the
   paper's Fig. 4 dumbbell.

     dune exec examples/quickstart.exe

   If data/delta1.rules is missing, a small table is trained on the fly
   (about two minutes); `dune exec bin/remy_train.exe` builds better
   ones. *)

open Remy_scenarios
open Remy_sim

let () =
  Format.printf "Loading the delta=1 RemyCC (trained for 10-20 Mbps links, ";
  Format.printf "100-200 ms RTTs, 1-16 senders)...@.";
  let remy =
    Schemes.remy ~name:"RemyCC d=1"
      (Tables.load_or_train ~progress:print_endline Tables.delta1)
  in
  (* The Fig. 4 scenario: eight senders, 15 Mbps, 150 ms, exponential
     100 kB transfers with 0.5 s think times. *)
  let scenario =
    Scenario.make
      ~service:(Remy_cc.Dumbbell.Rate_mbps 15.)
      ~n:8 ~rtt:0.150
      ~workload:(Workload.by_bytes ~mean_bytes:100e3 ~mean_off:0.5)
      ~duration:30. ~replications:4 ()
  in
  Format.printf "@.Simulating 8 senders on a 15 Mbps / 150 ms dumbbell:@.@.";
  List.iter
    (fun scheme ->
      let s = Scenario.run_scheme scenario scheme in
      Format.printf "  %a@." Scenario.pp_summary_row s)
    [ Schemes.newreno; Schemes.cubic; Schemes.vegas; remy ];
  Format.printf
    "@.The computer-generated algorithm should sit above and to the right:\n\
     more median throughput at comparable or lower queueing delay.@."
