(* Bufferbloat and AQM: why the paper evaluates against
   Cubic-over-sfqCoDel.

     dune exec examples/bufferbloat.exe

   A single Cubic flow over a deep (1000-packet) buffer fills it and
   inflates everyone's delay — the "bufferbloat" pathology the paper's
   introduction cites.  Active queue management (CoDel / sfqCoDel)
   controls the queue from inside the network; a RemyCC controls it from
   the endpoint alone, which is the paper's headline provocation. *)

open Remy_scenarios
open Remy_sim

let () =
  let scenario =
    Scenario.make
      ~service:(Remy_cc.Dumbbell.Rate_mbps 15.)
      ~n:2 ~rtt:0.150 ~workload:Workload.saturating ~start:`Immediate
      ~duration:30. ~replications:3 ()
  in
  let remy =
    Schemes.remy ~name:"RemyCC d=10"
      (Tables.load_or_train ~progress:print_endline Tables.delta10)
  in
  let cubic_codel =
    { Schemes.cubic with Schemes.name = "Cubic/CoDel"; qdisc = Schemes.Q_sfqcodel }
  in
  Format.printf
    "Two saturating flows, 15 Mbps / 150 ms, 1000-packet buffer:@.@.";
  Format.printf "  %-18s %10s %14s@." "scheme" "tput" "queueing delay";
  List.iter
    (fun scheme ->
      let s = Scenario.run_scheme scenario scheme in
      Format.printf "  %-18s %7.2f Mb %11.1f ms@." s.Scenario.scheme
        s.Scenario.median_tput s.Scenario.median_qdelay)
    [ Schemes.cubic; cubic_codel; remy ];
  Format.printf
    "@.Cubic alone fills the buffer (hundreds of ms of queue); CoDel fixes it\n\
     from the router; the delay-weighted RemyCC fixes it from the endpoint,\n\
     with no router cooperation at all.@."
