examples/cellular.mli:
