examples/bufferbloat.mli:
