examples/design_your_own.ml: Format List Net_model Objective Optimizer Remy Remy_cc Remy_scenarios Remy_sim Rule_tree
