examples/datacenter.mli:
