examples/competing.ml: Array Format List Metrics Remy Remy_cc Remy_scenarios Remy_sim Remy_util Stats Tables Workload
