examples/cellular.ml: Array Cell_trace Format List Prng Remy_cc Remy_scenarios Remy_sim Remy_util Scenario Schemes Tables Workload
