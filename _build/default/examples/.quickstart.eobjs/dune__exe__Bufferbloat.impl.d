examples/bufferbloat.ml: Format List Remy_cc Remy_scenarios Remy_sim Scenario Schemes Tables Workload
