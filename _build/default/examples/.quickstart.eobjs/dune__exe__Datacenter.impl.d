examples/datacenter.ml: Array Format List Remy_cc Remy_scenarios Remy_sim Remy_util Scenario Schemes Tables Workload
