examples/quickstart.mli:
