examples/competing.mli:
