examples/design_your_own.mli:
