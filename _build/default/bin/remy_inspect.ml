(* remy_inspect: pretty-print a trained RemyCC rule table, optionally
   exercising it on design-range specimens to show which rules actually
   fire and where the memory lives.

     remy_inspect data/delta1.rules
     remy_inspect data/delta1.rules --exercise *)

open Cmdliner
open Remy

let exercise tree =
  let model = Net_model.general ~sim_duration:8.0 () in
  let rng = Remy_util.Prng.create 4242 in
  let specimens = Net_model.draw_many model rng 8 in
  let tally = Tally.create ~capacity:(Rule_tree.capacity tree) ~seed:4242 () in
  let result =
    Evaluator.score ~tally ~domains:1
      ~objective:(Objective.proportional ~delta:1.0)
      ~queue_capacity:model.Net_model.queue_capacity
      ~duration:model.Net_model.sim_duration tree specimens
  in
  let total =
    List.fold_left (fun acc id -> acc + Tally.count tally id) 0
      (Rule_tree.live_ids tree)
  in
  Format.printf
    "@.usage over 8 design-range specimens (mean objective %.4f, %d lookups):@."
    result.Evaluator.mean_score total;
  Format.printf "%6s %10s %8s   %s@." "rule" "uses" "share" "median memory seen";
  List.iter
    (fun id ->
      let uses = Tally.count tally id in
      let share =
        if total > 0 then 100. *. float_of_int uses /. float_of_int total else 0.
      in
      let median =
        match Tally.median_memory tally id with
        | Some m -> Format.asprintf "%a" Memory.pp m
        | None -> "-"
      in
      Format.printf "%6d %10d %7.2f%%   %s@." id uses share median)
    (List.sort
       (fun a b -> compare (Tally.count tally b) (Tally.count tally a))
       (Rule_tree.live_ids tree))

let run file do_exercise =
  match Rule_tree.load file with
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Ok tree ->
    Format.printf "%a@." Rule_tree.pp tree;
    if do_exercise then exercise tree

let cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Rule table.")
  in
  let ex =
    Arg.(
      value & flag
      & info [ "exercise" ] ~doc:"Simulate the table and report per-rule usage.")
  in
  Cmd.v
    (Cmd.info "remy_inspect" ~doc:"Dump a RemyCC rule table")
    Term.(const run $ file $ ex)

let () = exit (Cmd.eval cmd)
