(* gen_traces: synthesize the stand-in LTE traces (DESIGN.md,
   "Substitutions") and store them under data/. *)

open Cmdliner
open Remy_sim
open Remy_util

let run dir duration seed =
  let gen name profile =
    let rng = Prng.create seed in
    let trace = Cell_trace.synthesize ~name rng profile ~duration in
    let path = Filename.concat dir (name ^ ".trace") in
    Cell_trace.save path trace;
    Printf.printf "wrote %s: %d delivery opportunities, mean rate %.2f Mbps\n" path
      (Array.length trace.Cell_trace.gaps)
      (Cell_trace.mean_rate_mbps trace)
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  gen "verizon-lte" Cell_trace.verizon_like;
  gen "att-lte" Cell_trace.att_like

let cmd =
  let dir = Arg.(value & opt string "data" & info [ "dir" ] ~doc:"Output dir.") in
  let duration =
    Arg.(value & opt float 300. & info [ "duration" ] ~doc:"Trace seconds.")
  in
  let seed = Arg.(value & opt int 20130812 & info [ "seed" ] ~doc:"Seed.") in
  Cmd.v
    (Cmd.info "gen_traces" ~doc:"Generate synthetic LTE traces")
    Term.(const run $ dir $ duration $ seed)

let () = exit (Cmd.eval cmd)
