let recommended_domains () = max 1 (Domain.recommended_domain_count () - 1)

let map ~domains f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let domains = max 1 (min domains n) in
    let results = Array.make n None in
    let error = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get error = None then begin
          (match f xs.(i) with
          | v -> results.(i) <- Some v
          | exception e -> ignore (Atomic.compare_and_set error None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    (match Atomic.get error with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end
