(** One evaluation step of Remy's design loop (Section 4.3): simulate a
    RemyCC on a set of network specimens and total the objective.

    Every specimen is a dumbbell (Fig. 2) whose senders all run the same
    rule table — the superrational setting of Section 4 — over an
    unlimited (design-time) queue.  All candidate actions are scored on
    the same specimens with the same seeds, so score differences come
    only from the actions. *)

type result = {
  mean_score : float;
      (** mean over specimens of the mean per-sender objective *)
  sender_scores : float list;  (** every scored sender, for diagnostics *)
}

val score :
  ?override:int * Action.t ->
  ?tally:Tally.t ->
  domains:int ->
  objective:Objective.t ->
  queue_capacity:int ->
  duration:float ->
  Rule_tree.t ->
  Net_model.specimen list ->
  result
(** Specimens are simulated in parallel across [domains].  When [tally]
    is given, per-specimen tallies are merged into it after the runs.
    Senders that were never scheduled "on" are excluded from scoring
    (their workload, drawn from the specimen seed, is identical for
    every candidate). *)

val specimen_flow_summaries :
  ?override:int * Action.t ->
  ?tally:Tally.t ->
  queue_capacity:int ->
  duration:float ->
  Rule_tree.t ->
  Net_model.specimen ->
  Remy_sim.Metrics.flow_summary array
(** Run a single specimen and expose the raw per-flow summaries (tests,
    diagnostics). *)
