open Remy_cc
open Remy_sim

type result = { mean_score : float; sender_scores : float list }

let config_of_specimen ~queue_capacity ~duration ~cc_factory
    (s : Net_model.specimen) =
  {
    Dumbbell.service = Dumbbell.Rate_mbps s.Net_model.spec_link_mbps;
    qdisc = Dumbbell.Droptail queue_capacity;
    flows =
      Array.init s.Net_model.n (fun _ ->
          {
            Dumbbell.cc = cc_factory;
            rtt = s.Net_model.rtt_s;
            workload = s.Net_model.workload;
            start = `Off_draw;
          });
    duration;
    seed = s.Net_model.spec_seed;
    min_rto = 1.0;
  }

let specimen_flow_summaries ?override ?tally ~queue_capacity ~duration tree s =
  let cc_factory = Remycc.factory ?override ?tally tree in
  let r = Dumbbell.run (config_of_specimen ~queue_capacity ~duration ~cc_factory s) in
  r.Dumbbell.flows

let specimen_scores ?override ?tally ~objective ~queue_capacity ~duration tree s =
  let flows = specimen_flow_summaries ?override ?tally ~queue_capacity ~duration tree s in
  let min_rtt_ms = s.Net_model.rtt_s *. 1e3 in
  Array.to_list flows
  |> List.filter_map (fun (f : Metrics.flow_summary) ->
         if f.Metrics.on_time <= 0. then None
         else
           Some
             (Objective.score objective ~throughput_mbps:f.Metrics.throughput_mbps
                ~mean_rtt_ms:(f.Metrics.mean_queueing_delay_ms +. min_rtt_ms)))

let score ?override ?tally ~domains ~objective ~queue_capacity ~duration tree
    specimens =
  let specs = Array.of_list specimens in
  let per_spec =
    Par.map ~domains
      (fun (s : Net_model.specimen) ->
        (* Each specimen gets a private tally (merged afterwards) so the
           parallel workers never share mutable state. *)
        let local_tally =
          Option.map
            (fun _ ->
              Tally.create ~capacity:(Rule_tree.capacity tree)
                ~seed:(s.Net_model.spec_seed lxor 0x5EED) ())
            tally
        in
        let scores =
          specimen_scores ?override ?tally:local_tally ~objective ~queue_capacity
            ~duration tree s
        in
        (scores, local_tally))
      specs
  in
  (match tally with
  | Some dst ->
    Array.iter
      (fun (_, local) -> match local with Some t -> Tally.merge_into dst t | None -> ())
      per_spec
  | None -> ());
  let sender_scores = List.concat_map fst (Array.to_list per_spec) in
  let spec_means =
    Array.to_list per_spec
    |> List.filter_map (fun (scores, _) ->
           match scores with
           | [] -> None
           | l -> Some (List.fold_left ( +. ) 0. l /. float_of_int (List.length l)))
  in
  let mean_score =
    match spec_means with
    | [] -> neg_infinity
    | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
  in
  { mean_score; sender_scores }
