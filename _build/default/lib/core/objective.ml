type t = { alpha : float; beta : float; delta : float }

let proportional ~delta = { alpha = 1.; beta = 1.; delta }
let min_potential_delay = { alpha = 2.; beta = 1.; delta = 0. }

let alpha_utility a x =
  if Float.abs (a -. 1.) < 1e-9 then log x else (x ** (1. -. a)) /. (1. -. a)

let tput_floor = 1e-3 (* Mbps = 1 kbit/s *)
let delay_floor = 0.01 (* ms *)

let score t ~throughput_mbps ~mean_rtt_ms =
  let x = Float.max tput_floor throughput_mbps in
  let y = Float.max delay_floor mean_rtt_ms in
  alpha_utility t.alpha x -. (t.delta *. alpha_utility t.beta y)

let normalized_score t ~throughput_mbps ~mean_rtt_ms ~fair_share_mbps ~min_rtt_ms =
  let x = Float.max 1e-6 (throughput_mbps /. Float.max 1e-9 fair_share_mbps) in
  let y = Float.max 1e-6 (mean_rtt_ms /. Float.max delay_floor min_rtt_ms) in
  alpha_utility t.alpha x -. (t.delta *. alpha_utility t.beta y)

let pp fmt t =
  Format.fprintf fmt "U_%.3g(tput) - %.3g * U_%.3g(delay)" t.alpha t.delta t.beta
