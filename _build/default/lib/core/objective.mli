(** The objective function of Section 3.3 (Equation 1).

    A flow with average throughput x and average round-trip delay y
    scores U_alpha(x) - delta * U_beta(y), where U_a is the alpha-fair
    utility x^(1-a)/(1-a), with the log at a = 1.  The paper's two
    operating points:

    - [proportional ~delta]: alpha = beta = 1, i.e.
      log(throughput) - delta * log(delay) — used for the general
      RemyCCs with delta in {0.1, 1, 10};
    - [min_potential_delay]: alpha = 2, delta = 0, i.e. -1/throughput —
      used for the datacenter RemyCC (Section 5.5).

    Throughput is floored at 1 kbit/s and delay at 0.01 ms so scores of
    starved flows stay finite (they are heavily but boundedly
    penalized). *)

type t = { alpha : float; beta : float; delta : float }

val proportional : delta:float -> t
val min_potential_delay : t

val alpha_utility : float -> float -> float
(** [alpha_utility a x] = U_a(x). *)

val score : t -> throughput_mbps:float -> mean_rtt_ms:float -> float
(** Score one flow. *)

val normalized_score :
  t -> throughput_mbps:float -> mean_rtt_ms:float -> fair_share_mbps:float ->
  min_rtt_ms:float -> float
(** Fig. 11's y-axis: throughput normalized by the fair share of the
    link and delay normalized by the propagation RTT before applying the
    utilities. *)

val pp : Format.formatter -> t -> unit
