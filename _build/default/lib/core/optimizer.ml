open Remy_util

type config = {
  model : Net_model.t;
  objective : Objective.t;
  specimens_per_step : int;
  domains : int;
  k_subdivide : int;
  candidate_multipliers : float list;
  rounds_per_rule : int;
  max_epochs : int;
  max_rules : int;
  prune_agreeing : bool;
  wall_budget_s : float;
  seed : int;
}

let default_config ?(specimens_per_step = 16) ?domains ?(k_subdivide = 4)
    ?(candidate_multipliers = [ 1.; 8.; 64. ]) ?(rounds_per_rule = 40)
    ?(max_epochs = 16) ?(max_rules = 256) ?(prune_agreeing = false)
    ?(wall_budget_s = 600.) ?(seed = 1) ~model ~objective () =
  {
    model;
    objective;
    specimens_per_step;
    domains = (match domains with Some d -> d | None -> Par.recommended_domains ());
    k_subdivide;
    candidate_multipliers;
    rounds_per_rule;
    prune_agreeing;
    max_epochs;
    max_rules;
    wall_budget_s;
    seed;
  }

type report = {
  tree : Rule_tree.t;
  epochs : int;
  improvements : int;
  subdivisions : int;
  evaluations : int;
  final_score : float;
}

let design ?(progress = fun _ -> ()) config =
  let started = Unix.gettimeofday () in
  let out_of_time () = Unix.gettimeofday () -. started > config.wall_budget_s in
  let rng = Prng.create config.seed in
  let tree = Rule_tree.create () in
  let improvements = ref 0 in
  let subdivisions = ref 0 in
  let evaluations = ref 0 in
  let last_score = ref neg_infinity in
  let queue_capacity = config.model.Net_model.queue_capacity in
  let duration = config.model.Net_model.sim_duration in
  let eval ?override ?tally ~domains specimens =
    incr evaluations;
    (Evaluator.score ?override ?tally ~domains ~objective:config.objective
       ~queue_capacity ~duration tree specimens)
      .Evaluator.mean_score
  in
  (* Greedy improvement of one rule's action on fixed specimens
     (step 3).  Returns true if the action changed. *)
  let improve_rule id specimens baseline =
    let changed = ref false in
    let current = ref baseline in
    let continue = ref true in
    let rounds = ref 0 in
    while !continue && !rounds < config.rounds_per_rule && not (out_of_time ()) do
      incr rounds;
      let candidates =
        Array.of_list
          (Action.neighbors
             ~multipliers:config.candidate_multipliers
             (Rule_tree.action tree id))
      in
      let scores =
        Par.map ~domains:config.domains
          (fun cand -> eval ~override:(id, cand) ~domains:1 specimens)
          candidates
      in
      let best = ref (-1) in
      Array.iteri (fun i s -> if s > !current && (!best < 0 || s > scores.(!best)) then best := i) scores;
      if !best >= 0 then begin
        Rule_tree.set_action tree id candidates.(!best);
        current := scores.(!best);
        changed := true;
        incr improvements;
        progress
          (Format.asprintf "  rule %d -> %a (score %.4f)" id Action.pp
             candidates.(!best) !current)
      end
      else continue := false
    done;
    last_score := !current;
    !changed
  in
  let subdivide_most_used () =
    if config.prune_agreeing then begin
      let collapsed = Rule_tree.collapse_agreeing tree in
      if collapsed > 0 then
        progress
          (Format.asprintf "pruned %d agreeing split(s) (%d rules now)" collapsed
             (Rule_tree.num_rules tree))
    end;
    if Rule_tree.num_rules tree < config.max_rules then begin
      let specimens = Net_model.draw_many config.model rng config.specimens_per_step in
      let tally =
        Tally.create ~capacity:(Rule_tree.capacity tree)
          ~seed:(config.seed lxor 0xD1F) ()
      in
      ignore (eval ~tally ~domains:config.domains specimens);
      match Tally.most_used tally ~among:(Rule_tree.live_ids tree) with
      | None -> ()
      | Some id ->
        let at =
          match Tally.median_memory tally id with
          | Some m -> m
          | None -> Memory.zero
        in
        ignore (Rule_tree.subdivide tree id ~at);
        incr subdivisions;
        progress
          (Format.asprintf "epoch: subdivided rule %d at %a (%d rules now)" id
             Memory.pp at (Rule_tree.num_rules tree))
    end
  in
  let global_epoch = ref 0 in
  (try
     while !global_epoch < config.max_epochs && not (out_of_time ()) do
       (* Step 1: everything joins the current epoch. *)
       Rule_tree.promote_all tree !global_epoch;
       (* Steps 2-3: improve most-used rules of this epoch until none
          remain or time runs out. *)
       let continue = ref true in
       while !continue && not (out_of_time ()) do
         let specimens =
           Net_model.draw_many config.model rng config.specimens_per_step
         in
         let tally =
           Tally.create ~capacity:(Rule_tree.capacity tree)
             ~seed:(config.seed lxor !evaluations) ()
         in
         let baseline = eval ~tally ~domains:config.domains specimens in
         let current_epoch_rules =
           List.filter
             (fun id -> Rule_tree.epoch tree id = !global_epoch)
             (Rule_tree.live_ids tree)
         in
         match Tally.most_used tally ~among:current_epoch_rules with
         | None -> continue := false
         | Some id ->
           progress
             (Format.asprintf "epoch %d: improving rule %d (uses=%d, score %.4f)"
                !global_epoch id (Tally.count tally id) baseline);
           ignore (improve_rule id specimens baseline);
           Rule_tree.set_epoch tree id (!global_epoch + 1)
       done;
       (* Step 4. *)
       incr global_epoch;
       (* Step 5. *)
       if !global_epoch mod config.k_subdivide = 0 then subdivide_most_used ()
     done
   with Stdlib.Exit -> ());
  {
    tree;
    epochs = !global_epoch;
    improvements = !improvements;
    subdivisions = !subdivisions;
    evaluations = !evaluations;
    final_score = !last_score;
  }
