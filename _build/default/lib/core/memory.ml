open Remy_util

type t = { ack_ewma : float; send_ewma : float; rtt_ratio : float }

let zero = { ack_ewma = 0.; send_ewma = 0.; rtt_ratio = 0. }
let max_value = 16384.
let ewma_weight = 0.125
let dims = 3

let clamp v = Float.min (max_value -. 1e-9) (Float.max 0. v)

type tracker = {
  ack : Ewma.t;
  send : Ewma.t;
  mutable last_received_at : float option;
  mutable last_sent_at : float option;
  mutable min_rtt : float option;
  mutable rtt_ratio : float;
}

let tracker () =
  {
    ack = Ewma.create_at ~alpha:ewma_weight 0.;
    send = Ewma.create_at ~alpha:ewma_weight 0.;
    last_received_at = None;
    last_sent_at = None;
    min_rtt = None;
    rtt_ratio = 0.;
  }

let reset t =
  Ewma.reset t.ack;
  Ewma.reset t.send;
  t.last_received_at <- None;
  t.last_sent_at <- None;
  t.min_rtt <- None;
  t.rtt_ratio <- 0.

let current t =
  {
    ack_ewma = clamp (Ewma.value t.ack);
    send_ewma = clamp (Ewma.value t.send);
    rtt_ratio = clamp t.rtt_ratio;
  }

let on_ack t ~sent_at ~received_at ~rtt =
  (match (t.last_received_at, t.last_sent_at) with
  | Some last_recv, Some last_sent ->
    (* Deltas in milliseconds; negative deltas (reordered echoes) are
       floored at zero. *)
    Ewma.update t.ack (Float.max 0. ((received_at -. last_recv) *. 1e3));
    Ewma.update t.send (Float.max 0. ((sent_at -. last_sent) *. 1e3))
  | _ -> ());
  t.last_received_at <- Some received_at;
  t.last_sent_at <- Some sent_at;
  (match t.min_rtt with
  | None -> t.min_rtt <- Some rtt
  | Some m -> if rtt < m then t.min_rtt <- Some rtt);
  (match t.min_rtt with
  | Some m when m > 0. -> t.rtt_ratio <- rtt /. m
  | Some _ | None -> t.rtt_ratio <- 1.);
  current t

let min_rtt t = t.min_rtt

let get m = function
  | 0 -> m.ack_ewma
  | 1 -> m.send_ewma
  | 2 -> m.rtt_ratio
  | d -> invalid_arg (Printf.sprintf "Memory.get: dimension %d" d)

let make ~ack_ewma ~send_ewma ~rtt_ratio =
  { ack_ewma = clamp ack_ewma; send_ewma = clamp send_ewma; rtt_ratio = clamp rtt_ratio }

let pp fmt m =
  Format.fprintf fmt "<ack_ewma=%.3f send_ewma=%.3f rtt_ratio=%.3f>" m.ack_ewma
    m.send_ewma m.rtt_ratio
