lib/core/table_diff.ml: Action Array Float Format Memory Rule_tree
