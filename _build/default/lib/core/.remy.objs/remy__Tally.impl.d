lib/core/tally.ml: Array List Memory Option Prng Remy_util Stats
