lib/core/optimizer.mli: Net_model Objective Rule_tree
