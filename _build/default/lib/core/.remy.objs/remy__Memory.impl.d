lib/core/memory.ml: Ewma Float Format Printf Remy_util
