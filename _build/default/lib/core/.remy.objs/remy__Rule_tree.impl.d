lib/core/rule_tree.ml: Action Array Format List Memory Printf Remy_util Result Sexp
