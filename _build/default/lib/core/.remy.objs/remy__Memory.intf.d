lib/core/memory.mli: Format
