lib/core/evaluator.mli: Action Net_model Objective Remy_sim Rule_tree Tally
