lib/core/net_model.ml: Format Int64 List Prng Qdisc Remy_sim Remy_util Workload
