lib/core/evaluator.ml: Array Dumbbell List Metrics Net_model Objective Option Par Remy_cc Remy_sim Remycc Rule_tree Tally
