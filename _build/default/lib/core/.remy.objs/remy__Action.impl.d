lib/core/action.ml: Float Format Hashtbl List
