lib/core/remycc.mli: Action Remy_cc Rule_tree Tally
