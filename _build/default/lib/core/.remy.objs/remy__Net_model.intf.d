lib/core/net_model.mli: Format Remy_sim Remy_util
