lib/core/tally.mli: Memory
