lib/core/remycc.ml: Action Cc Memory Remy_cc Rule_tree Tally
