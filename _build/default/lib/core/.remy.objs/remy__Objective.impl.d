lib/core/objective.ml: Float Format
