lib/core/optimizer.ml: Action Array Evaluator Format List Memory Net_model Objective Par Prng Remy_util Rule_tree Stdlib Tally Unix
