lib/core/rule_tree.mli: Action Format Memory Remy_util
