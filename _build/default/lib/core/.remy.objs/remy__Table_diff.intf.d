lib/core/table_diff.mli: Action Format Memory Rule_tree
