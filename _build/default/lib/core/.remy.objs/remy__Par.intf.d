lib/core/par.mli:
