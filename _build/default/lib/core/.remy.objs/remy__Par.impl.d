lib/core/par.ml: Array Atomic Domain List
