let make ?(alpha = 0.125) ?(beta = 0.5) ?(k = 0.75) ?(gamma = 30.) ?(zeta = 1.) () =
  let cwnd = ref 2. in
  let dwnd = ref 0. in
  let ssthresh = ref infinity in
  let base_rtt = ref infinity in
  let min_rtt_epoch = ref infinity in
  let epoch_end = ref 0. in
  let window () = !cwnd +. !dwnd in
  let reset ~now:_ =
    cwnd := 2.;
    dwnd := 0.;
    ssthresh := infinity;
    base_rtt := infinity;
    min_rtt_epoch := infinity;
    epoch_end := 0.
  in
  let per_rtt_update () =
    if Float.is_finite !min_rtt_epoch && !cwnd +. !dwnd >= !ssthresh then begin
      let rtt = !min_rtt_epoch in
      let win = window () in
      let diff = win *. (rtt -. !base_rtt) /. rtt in
      if diff < gamma then
        dwnd := Float.max 0. (!dwnd +. Float.max 0. ((alpha *. (win ** k)) -. 1.))
      else dwnd := Float.max 0. (!dwnd -. (zeta *. diff))
    end;
    min_rtt_epoch := infinity
  in
  let on_ack (a : Cc.ack_info) =
    (match a.rtt with
    | Some rtt ->
      if rtt < !base_rtt then base_rtt := rtt;
      if rtt < !min_rtt_epoch then min_rtt_epoch := rtt;
      if a.now >= !epoch_end then begin
        if !epoch_end > 0. then per_rtt_update ();
        epoch_end := a.now +. rtt
      end
    | None -> ());
    if a.newly_acked > 0 && not a.in_recovery then begin
      let n = float_of_int a.newly_acked in
      if window () < !ssthresh then cwnd := !cwnd +. n
      else cwnd := !cwnd +. (n /. window ())
    end
  in
  let on_loss ~now:_ =
    let win = window () in
    ssthresh := Float.max 2. (win /. 2.);
    cwnd := Float.max 2. (!cwnd /. 2.);
    (* dwnd absorbs what remains of the halved combined window. *)
    dwnd := Float.max 0. ((win *. (1. -. beta)) -. !cwnd);
    min_rtt_epoch := infinity
  in
  let on_timeout ~now:_ =
    ssthresh := Float.max 2. (window () /. 2.);
    cwnd := 1.;
    dwnd := 0.
  in
  {
    Cc.name = "compound";
    ecn_capable = false;
    reset;
    on_ack;
    on_loss;
    on_timeout;
    window;
    intersend = (fun () -> 0.);
    stamp = Cc.no_stamp;
  }

let factory ?alpha ?beta ?k ?gamma ?zeta () () = make ?alpha ?beta ?k ?gamma ?zeta ()
