(** TCP NewReno congestion control (RFC 5681 / RFC 6582 window rules).

    Slow start below ssthresh, additive increase of one segment per RTT
    above it, window halving on triple-dupACK loss, collapse to one
    segment on timeout.  Fast-retransmit/fast-recovery mechanics live in
    the shared {!Tcp_sender}; this module only sets the window. *)

val make : ?initial_window:float -> unit -> Cc.t

val factory : ?initial_window:float -> unit -> Cc.factory
