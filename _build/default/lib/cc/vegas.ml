let make ?(alpha = 1.) ?(beta = 3.) ?(gamma = 1.) () =
  let cwnd = ref 2. in
  let base_rtt = ref infinity in
  let min_rtt_epoch = ref infinity in
  (* smallest RTT this epoch *)
  let epoch_end = ref 0. in
  let slow_start = ref true in
  let grow_this_epoch = ref true in
  (* Vegas doubles every *other* RTT *)
  let reset ~now:_ =
    cwnd := 2.;
    base_rtt := infinity;
    min_rtt_epoch := infinity;
    epoch_end := 0.;
    slow_start := true;
    grow_this_epoch := true
  in
  let per_rtt_update () =
    if Float.is_finite !min_rtt_epoch && !base_rtt > 0. then begin
      let rtt = !min_rtt_epoch in
      (* Estimated backlog at the bottleneck, in packets. *)
      let diff = !cwnd *. (rtt -. !base_rtt) /. rtt in
      if !slow_start then begin
        if diff > gamma then slow_start := false
        else if !grow_this_epoch then cwnd := !cwnd *. 2.;
        grow_this_epoch := not !grow_this_epoch
      end
      else if diff < alpha then cwnd := !cwnd +. 1.
      else if diff > beta then cwnd := Float.max 2. (!cwnd -. 1.)
    end;
    min_rtt_epoch := infinity
  in
  let on_ack (a : Cc.ack_info) =
    match a.rtt with
    | None -> ()
    | Some rtt ->
      if rtt < !base_rtt then base_rtt := rtt;
      if rtt < !min_rtt_epoch then min_rtt_epoch := rtt;
      if a.now >= !epoch_end then begin
        if !epoch_end > 0. then per_rtt_update ();
        epoch_end := a.now +. rtt
      end
  in
  let on_loss ~now:_ =
    slow_start := false;
    cwnd := Float.max 2. (!cwnd /. 2.)
  in
  let on_timeout ~now:_ =
    slow_start := false;
    cwnd := 2.
  in
  {
    Cc.name = "vegas";
    ecn_capable = false;
    reset;
    on_ack;
    on_loss;
    on_timeout;
    window = (fun () -> !cwnd);
    intersend = (fun () -> 0.);
    stamp = Cc.no_stamp;
  }

let factory ?alpha ?beta ?gamma () () = make ?alpha ?beta ?gamma ()
