(** Compound TCP (Tan, Song, Zhang & Sridharan, INFOCOM 2006).

    Maintains a loss-based window (Reno rules) plus a delay-based window
    [dwnd] adjusted once per RTT by a binomial law: when the estimated
    bottleneck backlog [diff] is below [gamma] packets, dwnd grows by
    alpha * win^k - 1; when above, it shrinks by zeta * diff.  On loss
    the combined window halves, with dwnd absorbing the part above the
    halved cwnd.  The delay window identifies the {e absence} of
    congestion, the key difference from Vegas the paper highlights. *)

val make :
  ?alpha:float -> ?beta:float -> ?k:float -> ?gamma:float -> ?zeta:float -> unit -> Cc.t
(** Defaults per the Compound paper: alpha 1/8, beta 1/2, k 3/4,
    gamma 30 packets, zeta 1. *)

val factory :
  ?alpha:float -> ?beta:float -> ?k:float -> ?gamma:float -> ?zeta:float -> unit ->
  Cc.factory
