let cbrt x = if x >= 0. then x ** (1. /. 3.) else -.((-.x) ** (1. /. 3.))

let make ?(c = 0.4) ?(beta = 0.7) ?(fast_convergence = true) () =
  let cwnd = ref 2. in
  let ssthresh = ref infinity in
  let w_max = ref 0. in
  let k = ref 0. in
  let epoch_start = ref 0. in
  let w_est = ref 0. in
  (* TCP-friendly (Reno-equivalent) window estimate *)
  let srtt = ref 0.1 in
  let reset ~now:_ =
    cwnd := 2.;
    ssthresh := infinity;
    w_max := 0.;
    k := 0.;
    epoch_start := 0.;
    w_est := 0.;
    srtt := 0.1
  in
  let enter_epoch now =
    epoch_start := now;
    if !cwnd < !w_max then k := cbrt ((!w_max -. !cwnd) /. c) else k := 0.;
    w_est := !cwnd
  in
  let on_ack (a : Cc.ack_info) =
    (match a.rtt with
    | Some rtt -> srtt := (0.875 *. !srtt) +. (0.125 *. rtt)
    | None -> ());
    if a.newly_acked > 0 && not a.in_recovery then begin
      let n = float_of_int a.newly_acked in
      if !cwnd < !ssthresh then cwnd := !cwnd +. n
      else begin
        if !epoch_start <= 0. then enter_epoch a.now;
        let t = a.now -. !epoch_start +. !srtt in
        let target = (c *. ((t -. !k) ** 3.)) +. !w_max in
        (* Reno-equivalent growth for the TCP-friendly floor. *)
        w_est :=
          !w_est +. (3. *. (1. -. beta) /. (1. +. beta) *. (n /. !cwnd));
        let cubic_next =
          if target > !cwnd then !cwnd +. ((target -. !cwnd) /. !cwnd *. n)
          else !cwnd +. (0.01 *. n /. !cwnd)
        in
        cwnd := Float.max cubic_next !w_est
      end
    end
  in
  let multiplicative_decrease () =
    (* Fast convergence: release bandwidth when the loss came below the
       previous W_max. *)
    if fast_convergence && !cwnd < !w_max then
      w_max := !cwnd *. (1. +. beta) /. 2.
    else w_max := !cwnd;
    cwnd := Float.max 2. (!cwnd *. beta);
    ssthresh := !cwnd;
    epoch_start := 0.
  in
  let on_loss ~now:_ = multiplicative_decrease () in
  let on_timeout ~now:_ =
    multiplicative_decrease ();
    cwnd := 1.
  in
  {
    Cc.name = "cubic";
    ecn_capable = false;
    reset;
    on_ack;
    on_loss;
    on_timeout;
    window = (fun () -> !cwnd);
    intersend = (fun () -> 0.);
    stamp = Cc.no_stamp;
  }

let factory ?c ?beta ?fast_convergence () () = make ?c ?beta ?fast_convergence ()
