let make ?(initial_window = 2.) () =
  let cwnd = ref initial_window in
  let ssthresh = ref infinity in
  let reset ~now:_ =
    cwnd := initial_window;
    ssthresh := infinity
  in
  let on_ack (a : Cc.ack_info) =
    if a.newly_acked > 0 && not a.in_recovery then begin
      let n = float_of_int a.newly_acked in
      if !cwnd < !ssthresh then cwnd := !cwnd +. n
      else cwnd := !cwnd +. (n /. !cwnd)
    end
  in
  let on_loss ~now:_ =
    ssthresh := Float.max 2. (!cwnd /. 2.);
    cwnd := !ssthresh
  in
  let on_timeout ~now:_ =
    ssthresh := Float.max 2. (!cwnd /. 2.);
    cwnd := 1.
  in
  {
    Cc.name = "newreno";
    ecn_capable = false;
    reset;
    on_ack;
    on_loss;
    on_timeout;
    window = (fun () -> !cwnd);
    intersend = (fun () -> 0.);
    stamp = Cc.no_stamp;
  }

let factory ?initial_window () () = make ?initial_window ()
