type ack_info = {
  now : float;
  rtt : float option;
  newly_acked : int;
  cum_ack : int;
  acked_seq : int;
  acked_sent_at : float;
  receiver_ts : float;
  ecn_echo : bool;
  xcp_feedback : float option;
  in_flight : int;
  in_recovery : bool;
}

type t = {
  name : string;
  ecn_capable : bool;
  reset : now:float -> unit;
  on_ack : ack_info -> unit;
  on_loss : now:float -> unit;
  on_timeout : now:float -> unit;
  window : unit -> float;
  intersend : unit -> float;
  stamp : now:float -> Remy_sim.Packet.xcp_header option;
}

type factory = unit -> t

let no_stamp ~now:_ = None
let rtt_of (a : ack_info) = a.rtt
