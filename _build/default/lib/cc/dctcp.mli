(** DCTCP (Alizadeh et al., SIGCOMM 2010) — the datacenter baseline of
    Section 5.5.

    Packets are ECN-capable; the switch ({!Remy_sim.Red.create_dctcp})
    marks CE once the instantaneous queue exceeds K.  The sender counts
    the fraction F of marked ACKs over each window of data, maintains
    alpha <- (1-g) alpha + g F, and on a marked window reduces
    cwnd by a factor alpha/2 — a reduction proportional to the
    {e extent} of congestion.  Loss handling is Reno's. *)

val make : ?g:float -> unit -> Cc.t
(** [g] is the alpha estimation gain, default 1/16. *)

val factory : ?g:float -> unit -> Cc.factory
