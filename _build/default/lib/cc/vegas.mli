(** TCP Vegas (Brakmo & O'Malley & Peterson, SIGCOMM 1994).

    Delay-based avoidance: BaseRTT is the smallest RTT observed on the
    connection; once per RTT the sender compares expected throughput
    (cwnd/BaseRTT) with actual (cwnd/RTT) and nudges the window up when
    fewer than [alpha] packets appear queued, down when more than
    [beta].  Slow start doubles every other RTT and exits when the
    queue estimate crosses [gamma].  Loss response is Reno's. *)

val make : ?alpha:float -> ?beta:float -> ?gamma:float -> unit -> Cc.t
(** Defaults: alpha 1, beta 3, gamma 1 (packets of estimated queue). *)

val factory : ?alpha:float -> ?beta:float -> ?gamma:float -> unit -> Cc.factory
