(** Congestion-control interface.

    A congestion-control module is a bundle of callbacks owned by one
    flow.  The host machinery ({!Tcp_sender}) delivers ACK, loss and
    timeout events and consults [window] / [intersend] before each
    transmission — mirroring the paper's architecture where a RemyCC (or
    any classical algorithm) is implanted into an existing TCP sender and
    "inherits the loss-recovery behavior of whatever TCP sender it is
    added to" (Section 4.1). *)

type ack_info = {
  now : float;  (** virtual time the ACK reached the sender *)
  rtt : float option;
      (** RTT sample from the echoed timestamp; [None] when the echoed
          segment was a retransmission (Karn's rule) *)
  newly_acked : int;  (** segments newly covered by the cumulative ACK *)
  cum_ack : int;  (** next in-order segment the receiver expects *)
  acked_seq : int;  (** segment whose arrival generated this ACK *)
  acked_sent_at : float;  (** echo of that segment's send timestamp *)
  receiver_ts : float;  (** receiver clock when the segment arrived *)
  ecn_echo : bool;
  xcp_feedback : float option;  (** router window delta, packets *)
  in_flight : int;  (** outstanding segments after this ACK *)
  in_recovery : bool;  (** sender is in fast-recovery *)
}

type t = {
  name : string;
  ecn_capable : bool;  (** packets ask for ECN marking instead of drops *)
  reset : now:float -> unit;  (** connection ("on" period) start *)
  on_ack : ack_info -> unit;
  on_loss : now:float -> unit;  (** triple-dupACK, once per recovery episode *)
  on_timeout : now:float -> unit;
  window : unit -> float;  (** congestion window, packets *)
  intersend : unit -> float;
      (** minimum seconds between transmissions; [0.] = unpaced *)
  stamp : now:float -> Remy_sim.Packet.xcp_header option;
      (** congestion header for outgoing packets (XCP senders only) *)
}

type factory = unit -> t
(** Fresh algorithm state for one flow. *)

val no_stamp : now:float -> Remy_sim.Packet.xcp_header option
(** [fun ~now:_ -> None], the default for end-to-end schemes. *)

val rtt_of : ack_info -> float option
(** Convenience accessor for the optional RTT sample. *)
