let make ?(initial_window = 2.) () =
  let cwnd = ref initial_window in
  let srtt = ref 0. in
  let reset ~now:_ =
    cwnd := initial_window;
    srtt := 0.
  in
  let on_ack (a : Cc.ack_info) =
    (match a.rtt with
    | Some rtt ->
      if !srtt <= 0. then srtt := rtt
      else srtt := (0.875 *. !srtt) +. (0.125 *. rtt)
    | None -> ());
    match a.xcp_feedback with
    | Some delta -> cwnd := Float.max 1. (!cwnd +. delta)
    | None ->
      (* No XCP router on the path: behave like Reno's increase. *)
      if a.newly_acked > 0 && not a.in_recovery then
        cwnd := !cwnd +. (float_of_int a.newly_acked /. !cwnd)
  in
  let on_loss ~now:_ = cwnd := Float.max 1. (!cwnd /. 2.) in
  let on_timeout ~now:_ = cwnd := 1. in
  let stamp ~now:_ =
    Some { Remy_sim.Packet.xcp_cwnd = !cwnd; xcp_rtt = !srtt; xcp_feedback = infinity }
  in
  {
    Cc.name = "xcp";
    ecn_capable = false;
    reset;
    on_ack;
    on_loss;
    on_timeout;
    window = (fun () -> !cwnd);
    intersend = (fun () -> 0.);
    stamp;
  }

let factory ?initial_window () () = make ?initial_window ()
