lib/cc/xcp.mli: Cc
