lib/cc/receiver.ml: Float Hashtbl Metrics Packet Remy_sim
