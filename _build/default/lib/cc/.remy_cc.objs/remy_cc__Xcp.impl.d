lib/cc/xcp.ml: Cc Float Remy_sim
