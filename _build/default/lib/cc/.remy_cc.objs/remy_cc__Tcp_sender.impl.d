lib/cc/tcp_sender.ml: Cc Engine Float Metrics Packet Prng Remy_sim Remy_util Workload
