lib/cc/cc.mli: Remy_sim
