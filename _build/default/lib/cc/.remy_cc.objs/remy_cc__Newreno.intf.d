lib/cc/newreno.mli: Cc
