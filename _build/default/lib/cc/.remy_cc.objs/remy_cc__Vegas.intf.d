lib/cc/vegas.mli: Cc
