lib/cc/receiver.mli: Remy_sim
