lib/cc/dumbbell.mli: Cc Remy_sim Tcp_sender
