lib/cc/tcp_sender.mli: Cc Remy_sim Remy_util
