lib/cc/newreno.ml: Cc Float
