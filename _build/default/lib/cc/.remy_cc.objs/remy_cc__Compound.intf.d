lib/cc/compound.mli: Cc
