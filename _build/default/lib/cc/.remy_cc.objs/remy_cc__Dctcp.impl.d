lib/cc/dctcp.ml: Cc Float
