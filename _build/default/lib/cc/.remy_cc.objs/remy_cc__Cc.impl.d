lib/cc/cc.ml: Remy_sim
