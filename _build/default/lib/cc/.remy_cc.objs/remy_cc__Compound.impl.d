lib/cc/compound.ml: Cc Float
