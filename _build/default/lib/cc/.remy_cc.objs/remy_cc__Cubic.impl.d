lib/cc/cubic.ml: Cc Float
