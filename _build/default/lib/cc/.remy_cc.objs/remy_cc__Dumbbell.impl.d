lib/cc/dumbbell.ml: Array Cc Cell_trace Codel Droptail Engine Float Link Lossy Metrics Option Packet Prng Qdisc Receiver Red Remy_sim Remy_util Sfq_codel Tcp_sender Workload Xcp_router
