lib/cc/dctcp.mli: Cc
