lib/cc/cubic.mli: Cc
