lib/cc/vegas.ml: Cc Float
