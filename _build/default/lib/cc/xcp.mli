(** XCP endpoint (Katabi, Handley & Rohrs, SIGCOMM 2002).

    Stamps every outgoing packet with the current congestion window and
    RTT estimate; applies the router-granted per-packet window delta
    from each ACK.  Falls back to Reno-style halving on loss and window
    collapse on timeout, as XCP prescribes for paths without XCP
    routers. *)

val make : ?initial_window:float -> unit -> Cc.t
val factory : ?initial_window:float -> unit -> Cc.factory
