let make ?(g = 0.0625) () =
  let cwnd = ref 2. in
  let ssthresh = ref infinity in
  let alpha = ref 1. in
  (* start conservative, per the DCTCP paper *)
  let window_end = ref 0 in
  (* observation window boundary in sequence space *)
  let acked_total = ref 0 in
  let acked_marked = ref 0 in
  let reset ~now:_ =
    cwnd := 2.;
    ssthresh := infinity;
    alpha := 1.;
    window_end := 0;
    acked_total := 0;
    acked_marked := 0
  in
  let end_of_window () =
    if !acked_total > 0 then begin
      let f = float_of_int !acked_marked /. float_of_int !acked_total in
      alpha := ((1. -. g) *. !alpha) +. (g *. f);
      if !acked_marked > 0 then begin
        cwnd := Float.max 2. (!cwnd *. (1. -. (!alpha /. 2.)));
        ssthresh := !cwnd
      end
    end;
    acked_total := 0;
    acked_marked := 0
  in
  let on_ack (a : Cc.ack_info) =
    incr acked_total;
    if a.ecn_echo then incr acked_marked;
    if a.cum_ack >= !window_end then begin
      end_of_window ();
      (* Next observation window: roughly one cwnd of data ahead. *)
      window_end := a.cum_ack + max 1 (int_of_float !cwnd)
    end;
    if a.newly_acked > 0 && not a.in_recovery then begin
      let n = float_of_int a.newly_acked in
      if !cwnd < !ssthresh then cwnd := !cwnd +. n
      else cwnd := !cwnd +. (n /. !cwnd)
    end
  in
  let on_loss ~now:_ =
    ssthresh := Float.max 2. (!cwnd /. 2.);
    cwnd := !ssthresh
  in
  let on_timeout ~now:_ =
    ssthresh := Float.max 2. (!cwnd /. 2.);
    cwnd := 1.
  in
  {
    Cc.name = "dctcp";
    ecn_capable = true;
    reset;
    on_ack;
    on_loss;
    on_timeout;
    window = (fun () -> !cwnd);
    intersend = (fun () -> 0.);
    stamp = Cc.no_stamp;
  }

let factory ?g () () = make ?g ()
