(** CUBIC congestion control (Ha, Rhee & Xu 2008; RFC 8312 constants).

    Window growth is a cubic function of wall-clock time since the last
    loss, centered on the pre-loss window W_max, with the TCP-friendly
    region (Reno-equivalent growth estimate) as a floor and fast
    convergence on consecutive decreases.  The paper notes Cubic's
    aggressive growth inflates queues — the behavior Figs. 4-5 show. *)

val make : ?c:float -> ?beta:float -> ?fast_convergence:bool -> unit -> Cc.t
(** Defaults: C 0.4, beta 0.7 (multiplicative decrease factor),
    fast convergence on. *)

val factory : ?c:float -> ?beta:float -> ?fast_convergence:bool -> unit -> Cc.factory
