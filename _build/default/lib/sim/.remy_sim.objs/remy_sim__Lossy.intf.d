lib/sim/lossy.mli: Qdisc
