lib/sim/sfq_codel.ml: Array Codel Packet Qdisc Queue
