lib/sim/cell_trace.ml: Array Dist Float Fun In_channel Link List Packet Printf Prng Remy_util String
