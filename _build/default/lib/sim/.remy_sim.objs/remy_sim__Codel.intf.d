lib/sim/codel.mli: Packet Qdisc
