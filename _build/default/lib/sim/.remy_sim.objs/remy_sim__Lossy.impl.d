lib/sim/lossy.ml: Prng Qdisc Remy_util
