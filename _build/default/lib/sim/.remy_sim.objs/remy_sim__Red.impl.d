lib/sim/red.ml: Packet Prng Qdisc Queue Remy_util
