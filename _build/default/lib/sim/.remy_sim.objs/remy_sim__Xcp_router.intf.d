lib/sim/xcp_router.mli: Engine Qdisc
