lib/sim/red.mli: Qdisc
