lib/sim/engine.ml: Float Heap Printf Remy_util
