lib/sim/link.mli: Engine Packet Qdisc
