lib/sim/droptail.mli: Qdisc
