lib/sim/cell_trace.mli: Remy_util
