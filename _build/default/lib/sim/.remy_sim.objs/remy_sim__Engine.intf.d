lib/sim/engine.mli:
