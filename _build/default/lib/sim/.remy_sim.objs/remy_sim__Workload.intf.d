lib/sim/workload.mli: Remy_util
