lib/sim/droptail.ml: Packet Qdisc Queue
