lib/sim/metrics.mli:
