lib/sim/xcp_router.ml: Engine Float Packet Qdisc Queue
