lib/sim/link.ml: Engine Float Packet Qdisc
