lib/sim/packet.ml:
