lib/sim/codel.ml: Packet Qdisc Queue
