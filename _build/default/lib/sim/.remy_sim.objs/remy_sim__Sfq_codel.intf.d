lib/sim/sfq_codel.mli: Qdisc
