lib/sim/packet.mli:
