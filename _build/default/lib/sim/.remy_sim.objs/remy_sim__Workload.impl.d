lib/sim/workload.ml: Dist Float Packet Remy_util
