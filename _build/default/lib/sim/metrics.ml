type flow = {
  mutable bytes : int;
  mutable packets : int;
  mutable delay_sum : float;
  mutable on_time : float;
  mutable on_since : float option;
}

type t = flow array

let create ~n_flows =
  Array.init n_flows (fun _ ->
      { bytes = 0; packets = 0; delay_sum = 0.; on_time = 0.; on_since = None })

let flow_on t i now =
  let f = t.(i) in
  match f.on_since with Some _ -> () | None -> f.on_since <- Some now

let flow_off t i now =
  let f = t.(i) in
  match f.on_since with
  | None -> ()
  | Some start ->
    f.on_time <- f.on_time +. (now -. start);
    f.on_since <- None

let packet_delivered t i ~bytes ~queueing_delay =
  let f = t.(i) in
  f.bytes <- f.bytes + bytes;
  f.packets <- f.packets + 1;
  f.delay_sum <- f.delay_sum +. queueing_delay

let finish t now = Array.iteri (fun i _ -> flow_off t i now) t

type flow_summary = {
  throughput_mbps : float;
  mean_queueing_delay_ms : float;
  bytes : int;
  packets : int;
  on_time : float;
}

let summary t i =
  let (f : flow) = t.(i) in
  let throughput_mbps =
    if f.on_time > 0. then float_of_int f.bytes *. 8. /. f.on_time /. 1e6 else 0.
  in
  let mean_queueing_delay_ms =
    if f.packets > 0 then f.delay_sum /. float_of_int f.packets *. 1e3 else 0.
  in
  { throughput_mbps; mean_queueing_delay_ms; bytes = f.bytes; packets = f.packets;
    on_time = f.on_time }

let summaries t = Array.init (Array.length t) (summary t)
