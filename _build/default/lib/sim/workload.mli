(** On/off traffic model (Section 3.2, Section 5.1 "Workloads").

    Each sender alternates between an exponentially distributed "off"
    period and an "on" period drawn one of three ways: by time (send as
    fast as the protocol allows for an exponential duration), by bytes
    (exponential transfer length), or from the empirical ICSI flow-length
    distribution of Fig. 3 (Pareto with the 16 KiB floor). *)

type on_spec =
  | By_time of Remy_util.Dist.t  (** seconds *)
  | By_bytes of Remy_util.Dist.t  (** bytes *)
  | Icsi_flow_lengths  (** Fig. 3's Pareto(x+40), Xm 147, alpha 0.5, +16 KiB *)

type t = { off_time : Remy_util.Dist.t; on_spec : on_spec }

type demand =
  | Packets of int  (** a transfer of this many segments, then off *)
  | Seconds of float  (** saturating traffic for this long, then off *)

val by_time : mean_on:float -> mean_off:float -> t
val by_bytes : mean_bytes:float -> mean_off:float -> t
val icsi : mean_off:float -> t

val sample_off : t -> Remy_util.Prng.t -> float
(** Duration of the next "off" period, seconds. *)

val sample_on : t -> Remy_util.Prng.t -> demand
(** Demand of the next "on" period.  Byte draws are rounded up to whole
    segments, with a minimum of one. *)

val saturating : t
(** Always-on sender (single infinite flow) for convergence studies like
    Fig. 6. *)

val incast : burst_bytes:float -> period:float -> t
(** Datacenter incast (Section 3.2: "off-to-on switches of contending
    flows may cluster near one another in time"): a deterministic
    fixed-size burst every [period] seconds.  Senders started together
    stay synchronized, hammering the shared queue simultaneously. *)
