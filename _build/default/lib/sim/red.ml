open Remy_util

let create ~capacity ~min_th ~max_th ~max_p ~weight ~seed =
  let q : Packet.t Queue.t = Queue.create () in
  let bytes = ref 0 in
  let drops = ref 0 in
  let avg = ref 0. in
  let count = ref (-1) in
  (* packets since last mark, for uniform marking spacing *)
  let rng = Prng.create seed in
  let mark_or_drop pkt =
    if pkt.Packet.ecn_capable then begin
      pkt.Packet.ecn_marked <- true;
      true (* still enqueued *)
    end
    else false
  in
  let admit pkt =
    Queue.add pkt q;
    bytes := !bytes + pkt.Packet.size;
    true
  in
  let enqueue ~now:_ pkt =
    avg := ((1. -. weight) *. !avg) +. (weight *. float_of_int (Queue.length q));
    if Queue.length q >= capacity then begin
      incr drops;
      false
    end
    else if !avg < min_th then begin
      count := -1;
      admit pkt
    end
    else if !avg >= max_th then begin
      count := 0;
      if mark_or_drop pkt then admit pkt
      else begin
        incr drops;
        false
      end
    end
    else begin
      incr count;
      let pb = max_p *. (!avg -. min_th) /. (max_th -. min_th) in
      let pa =
        let denom = 1. -. (float_of_int !count *. pb) in
        if denom <= 0. then 1. else pb /. denom
      in
      if Prng.float rng 1.0 < pa then begin
        count := 0;
        if mark_or_drop pkt then admit pkt
        else begin
          incr drops;
          false
        end
      end
      else admit pkt
    end
  in
  let dequeue ~now:_ =
    match Queue.take_opt q with
    | None -> None
    | Some pkt ->
      bytes := !bytes - pkt.Packet.size;
      Some pkt
  in
  {
    Qdisc.name = "red";
    enqueue;
    dequeue;
    length = (fun () -> Queue.length q);
    byte_length = (fun () -> !bytes);
    drops = (fun () -> !drops);
  }

let create_dctcp ~capacity ~threshold =
  let q : Packet.t Queue.t = Queue.create () in
  let bytes = ref 0 in
  let drops = ref 0 in
  let enqueue ~now:_ pkt =
    if Queue.length q >= capacity then begin
      incr drops;
      false
    end
    else begin
      if Queue.length q >= threshold && pkt.Packet.ecn_capable then
        pkt.Packet.ecn_marked <- true;
      Queue.add pkt q;
      bytes := !bytes + pkt.Packet.size;
      true
    end
  in
  let dequeue ~now:_ =
    match Queue.take_opt q with
    | None -> None
    | Some pkt ->
      bytes := !bytes - pkt.Packet.size;
      Some pkt
  in
  {
    Qdisc.name = "dctcp-red";
    enqueue;
    dequeue;
    length = (fun () -> Queue.length q);
    byte_length = (fun () -> !bytes);
    drops = (fun () -> !drops);
  }
