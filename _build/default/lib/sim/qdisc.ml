type t = {
  name : string;
  enqueue : now:float -> Packet.t -> bool;
  dequeue : now:float -> Packet.t option;
  length : unit -> int;
  byte_length : unit -> int;
  drops : unit -> int;
}

let unlimited_capacity = max_int
