type xcp_header = {
  xcp_cwnd : float;
  xcp_rtt : float;
  mutable xcp_feedback : float;
}

type t = {
  flow : int;
  seq : int;
  conn : int;
  size : int;
  sent_at : float;
  retx : bool;
  ecn_capable : bool;
  mutable ecn_marked : bool;
  xcp : xcp_header option;
}

type ack = {
  ack_flow : int;
  ack_conn : int;
  cum_ack : int;
  acked_seq : int;
  acked_sent_at : float;
  acked_retx : bool;
  ecn_echo : bool;
  ack_xcp_feedback : float option;
  received_at : float;
}

let default_size = 1500

let make ~flow ~seq ~conn ~now ?(size = default_size) ?(retx = false)
    ?(ecn_capable = false) ?xcp () =
  { flow; seq; conn; size; sent_at = now; retx; ecn_capable; ecn_marked = false; xcp }
