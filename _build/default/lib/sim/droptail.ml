let create ~capacity =
  let q : Packet.t Queue.t = Queue.create () in
  let bytes = ref 0 in
  let drops = ref 0 in
  let enqueue ~now:_ pkt =
    if Queue.length q >= capacity then begin
      incr drops;
      false
    end
    else begin
      Queue.add pkt q;
      bytes := !bytes + pkt.Packet.size;
      true
    end
  in
  let dequeue ~now:_ =
    match Queue.take_opt q with
    | None -> None
    | Some pkt ->
      bytes := !bytes - pkt.Packet.size;
      Some pkt
  in
  {
    Qdisc.name = "droptail";
    enqueue;
    dequeue;
    length = (fun () -> Queue.length q);
    byte_length = (fun () -> !bytes);
    drops = (fun () -> !drops);
  }
