(** Bottleneck link: serves packets from a queue discipline.

    Two service models, matching the paper's evaluation:

    - constant rate (the dumbbell and datacenter topologies): one packet
      transmission takes size/rate seconds;
    - trace-driven (the cellular experiments): queued packets are
      released at exactly the delivery instants of a pre-recorded trace,
      "queueing packets until they are released to the receiver at the
      same time they were released in the trace" (Section 5.3).

    Delivered packets go to [sink], which the topology wires to add
    propagation delay and hand the packet to a receiver. *)

type t

val create_constant :
  Engine.t -> qdisc:Qdisc.t -> bytes_per_sec:float -> sink:(Packet.t -> unit) -> t

val create_trace :
  Engine.t -> qdisc:Qdisc.t -> next_gap:(unit -> float) -> sink:(Packet.t -> unit) -> t
(** [next_gap ()] returns the time until the next delivery opportunity
    (one packet per opportunity); the chain of opportunities starts at
    creation time. *)

val send : t -> Packet.t -> unit
(** Enqueue a packet (the qdisc may drop or mark it) and start service if
    the link is idle. *)

val qdisc : t -> Qdisc.t
val delivered_packets : t -> int
val delivered_bytes : t -> int

val bytes_per_sec_of_mbps : float -> float
val pps_of_mbps : float -> float
(** Packets per second at the {!Packet.default_size} segment size. *)
