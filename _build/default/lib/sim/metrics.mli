(** Per-flow performance accounting (Section 5.1, "Metrics").

    Throughput of a sender-receiver pair is total bytes received divided
    by total time "on"; delay is the average per-packet end-to-end delay
    in excess of the path's minimum (the queueing delay the paper plots).
    On-intervals are opened when the workload switches the sender on and
    closed at transfer completion (by-bytes flows) or at the scheduled
    switch-off (by-time flows). *)

type t

val create : n_flows:int -> t

val flow_on : t -> int -> float -> unit
(** [flow_on t flow now] opens an on-interval. *)

val flow_off : t -> int -> float -> unit
(** Close the current on-interval (idempotent). *)

val packet_delivered : t -> int -> bytes:int -> queueing_delay:float -> unit
(** Record one data packet reaching the receiver; [queueing_delay] is
    end-to-end delay minus the propagation component, in seconds. *)

val finish : t -> float -> unit
(** Close any open intervals at simulation end. *)

type flow_summary = {
  throughput_mbps : float;  (** bytes received / on-time; 0 if never on *)
  mean_queueing_delay_ms : float;  (** 0 when no packet was delivered *)
  bytes : int;
  packets : int;
  on_time : float;
}

val summary : t -> int -> flow_summary
val summaries : t -> flow_summary array
