open Remy_util

type on_spec = By_time of Dist.t | By_bytes of Dist.t | Icsi_flow_lengths
type t = { off_time : Dist.t; on_spec : on_spec }
type demand = Packets of int | Seconds of float

let by_time ~mean_on ~mean_off =
  { off_time = Dist.Exponential mean_off; on_spec = By_time (Dist.Exponential mean_on) }

let by_bytes ~mean_bytes ~mean_off =
  {
    off_time = Dist.Exponential mean_off;
    on_spec = By_bytes (Dist.Exponential mean_bytes);
  }

let icsi ~mean_off = { off_time = Dist.Exponential mean_off; on_spec = Icsi_flow_lengths }

let sample_off t rng = Dist.sample t.off_time rng

let packets_of_bytes b =
  max 1 (int_of_float (Float.ceil (b /. float_of_int Packet.default_size)))

let sample_on t rng =
  match t.on_spec with
  | By_time d -> Seconds (Float.max 1e-3 (Dist.sample d rng))
  | By_bytes d -> Packets (packets_of_bytes (Dist.sample d rng))
  | Icsi_flow_lengths -> Packets (packets_of_bytes (Dist.pareto_icsi rng))

let saturating =
  { off_time = Dist.Constant infinity; on_spec = By_time (Dist.Constant infinity) }

let incast ~burst_bytes ~period =
  { off_time = Dist.Constant period; on_spec = By_bytes (Dist.Constant burst_bytes) }
