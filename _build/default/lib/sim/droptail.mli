(** Tail-drop FIFO queue — the paper's default 1000-packet DropTail
    bottleneck (Section 5.1), and with {!Qdisc.unlimited_capacity} the
    lossless queue of Remy's design-phase simulator. *)

val create : capacity:int -> Qdisc.t
(** [capacity] in packets. *)
