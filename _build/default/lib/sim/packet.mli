(** Data packets and acknowledgments.

    One packet is one fixed-size TCP segment (the simulator works in
    whole segments, like Remy's own design-phase simulator).  Sequence
    numbers count segments within one connection ("on" period).  The XCP
    congestion header and the ECN bits ride along for the router-assisted
    baselines. *)

type xcp_header = {
  xcp_cwnd : float;  (** sender cwnd, packets *)
  xcp_rtt : float;  (** sender RTT estimate, seconds *)
  mutable xcp_feedback : float;  (** router-granted window delta, packets *)
}

type t = {
  flow : int;  (** sender index within the experiment *)
  seq : int;  (** segment sequence number, from 0 per connection *)
  conn : int;  (** connection ("on" period) counter, guards stale ACKs *)
  size : int;  (** bytes on the wire *)
  sent_at : float;  (** transmission timestamp (echoed by receiver) *)
  retx : bool;  (** retransmission (Karn: no RTT sample) *)
  ecn_capable : bool;
  mutable ecn_marked : bool;
  xcp : xcp_header option;
}

type ack = {
  ack_flow : int;
  ack_conn : int;
  cum_ack : int;  (** next segment expected in order *)
  acked_seq : int;  (** seq of the data packet that triggered this ACK *)
  acked_sent_at : float;  (** echo of that packet's [sent_at] *)
  acked_retx : bool;
  ecn_echo : bool;
  ack_xcp_feedback : float option;  (** packets of window delta *)
  received_at : float;  (** receiver timestamp *)
}

val default_size : int
(** 1500 bytes: the segment size used throughout the evaluation. *)

val make :
  flow:int ->
  seq:int ->
  conn:int ->
  now:float ->
  ?size:int ->
  ?retx:bool ->
  ?ecn_capable:bool ->
  ?xcp:xcp_header ->
  unit ->
  t
