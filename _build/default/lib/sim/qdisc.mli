(** Queue-discipline interface shared by the bottleneck router variants.

    A qdisc owns the packets waiting for the bottleneck link.  [enqueue]
    may drop (tail drop, CoDel, RED) or ECN-mark; [dequeue] returns the
    next packet to serve and may itself drop packets first (CoDel drops at
    the head of the queue).  Implementations must be deterministic given
    their construction arguments. *)

type t = {
  name : string;
  enqueue : now:float -> Packet.t -> bool;
      (** [true] if the packet was accepted, [false] if dropped. *)
  dequeue : now:float -> Packet.t option;
  length : unit -> int;  (** packets currently queued *)
  byte_length : unit -> int;
  drops : unit -> int;  (** cumulative count, for diagnostics *)
}

val unlimited_capacity : int
(** Sentinel packet capacity meaning "never tail-drop" — Remy's
    design-phase simulator runs with unlimited queues (Section 5.1). *)
