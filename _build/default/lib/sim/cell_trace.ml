open Remy_util

type profile = {
  mean_mbps : float;
  sigma : float;
  dwell : float;
  min_mbps : float;
  max_mbps : float;
  outage_prob : float;
}

let verizon_like =
  {
    mean_mbps = 9.0;
    sigma = 0.35;
    dwell = 0.020;
    min_mbps = 0.5;
    max_mbps = 50.0;
    outage_prob = 0.005;
  }

let att_like =
  {
    mean_mbps = 6.0;
    sigma = 0.55;
    dwell = 0.020;
    min_mbps = 0.2;
    max_mbps = 40.0;
    outage_prob = 0.02;
  }

type t = { gaps : float array; profile_name : string }

let synthesize ?(name = "synthetic") rng profile ~duration =
  let gaps = ref [] in
  let clock = ref 0. in
  (* Mean-reverting walk in log rate keeps the long-run average near
     mean_mbps while producing the bursty rate excursions of a cellular
     downlink. *)
  let log_mean = log profile.mean_mbps in
  let log_rate = ref log_mean in
  while !clock < duration do
    let step = Dist.gaussian rng ~mean:0. ~std:profile.sigma in
    let reversion = 0.2 *. (log_mean -. !log_rate) in
    log_rate := !log_rate +. reversion +. step;
    let rate_mbps =
      Float.min profile.max_mbps (Float.max profile.min_mbps (exp !log_rate))
    in
    let outage = Prng.float rng 1.0 < profile.outage_prob in
    if outage then clock := !clock +. profile.dwell
    else begin
      let pps = Link.pps_of_mbps rate_mbps in
      let gap = 1. /. pps in
      let until = !clock +. profile.dwell in
      while !clock < until do
        gaps := gap :: !gaps;
        clock := !clock +. gap
      done
    end
  done;
  (* An outage at the very start could yield an empty trace; guarantee at
     least one opportunity. *)
  let arr =
    match !gaps with
    | [] -> [| duration |]
    | l -> Array.of_list (List.rev l)
  in
  { gaps = arr; profile_name = name }

let total_time t = Array.fold_left ( +. ) 0. t.gaps

let mean_rate_mbps t =
  let pkts = float_of_int (Array.length t.gaps) in
  let secs = total_time t in
  if secs <= 0. then 0.
  else pkts *. float_of_int Packet.default_size *. 8. /. secs /. 1e6

let gap_fn t =
  let i = ref 0 in
  let n = Array.length t.gaps in
  fun () ->
    let g = t.gaps.(!i mod n) in
    incr i;
    g

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "# %s\n" t.profile_name;
      Array.iter (fun g -> Printf.fprintf oc "%.9f\n" g) t.gaps)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents ->
    let lines = String.split_on_char '\n' contents in
    let name = ref "loaded" in
    let gaps = ref [] in
    let bad = ref None in
    List.iter
      (fun line ->
        let line = String.trim line in
        if line = "" then ()
        else if String.length line > 0 && line.[0] = '#' then
          name := String.trim (String.sub line 1 (String.length line - 1))
        else
          match float_of_string_opt line with
          | Some g when g > 0. -> gaps := g :: !gaps
          | _ -> if !bad = None then bad := Some line)
      lines;
    (match !bad with
    | Some line -> Error (Printf.sprintf "bad trace line: %S" line)
    | None ->
      if !gaps = [] then Error "empty trace"
      else Ok { gaps = Array.of_list (List.rev !gaps); profile_name = !name })
