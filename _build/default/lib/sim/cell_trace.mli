(** Synthetic cellular (LTE-like) link traces.

    The paper replays proprietary Verizon and AT&T LTE downlink captures
    (Section 5.3).  Those traces are not available, so this module
    synthesizes the closest equivalent that exercises the same code path:
    a time-varying packet-delivery schedule produced by a bounded
    geometric random walk over the link rate, holding each rate for a
    short dwell period.  The essential properties are preserved — the
    instantaneous rate wanders across 0-50 Mbps (far outside the RemyCC
    design range, the "model mismatch" the experiment probes), delivery
    opportunities come in bursts, and packets queue until the trace
    releases them.  See DESIGN.md, "Substitutions".

    A trace is the sequence of inter-delivery gaps (seconds per
    {!Packet.default_size} segment); links replay it cyclically. *)

type profile = {
  mean_mbps : float;  (** long-run average rate *)
  sigma : float;  (** per-step log-rate volatility *)
  dwell : float;  (** seconds between rate re-draws *)
  min_mbps : float;
  max_mbps : float;
  outage_prob : float;  (** chance a dwell period is a total outage *)
}

val verizon_like : profile
(** Mean about 9 Mbps, moderate volatility. *)

val att_like : profile
(** Slower (about 6 Mbps) and burstier, with more outages. *)

type t = { gaps : float array; profile_name : string }

val synthesize : ?name:string -> Remy_util.Prng.t -> profile -> duration:float -> t
(** Generate delivery gaps covering [duration] seconds of trace time. *)

val mean_rate_mbps : t -> float
(** Long-term average delivery rate of the trace — what XCP is told the
    link speed is (paper footnote 6). *)

val gap_fn : t -> unit -> float
(** Cyclic replay closure for {!Link.create_trace}. *)

val save : string -> t -> unit
(** One gap per line, with a [# name] header. *)

val load : string -> (t, string) result
