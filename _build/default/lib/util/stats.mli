(** Summary statistics for simulation outputs.

    Covers what the evaluation section needs: medians and quantiles for the
    headline tables, Welford-style running moments, covariance for the
    1-sigma throughput/delay ellipses of Figs. 4-9, and a simple linear
    regression used to estimate sending rates from Fig. 6's sequence plot. *)

val mean : float array -> float
(** Arithmetic mean; [nan] on empty input. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); [0.] for n < 2. *)

val stddev : float array -> float

val median : float array -> float
(** Median by sorting a copy; interpolates for even lengths. *)

val quantile : float array -> float -> float
(** [quantile xs q] for q in [0,1], linear interpolation between order
    statistics.  Raises [Invalid_argument] on empty input or q outside
    [0,1]. *)

val covariance : float array -> float array -> float
(** Unbiased sample covariance; arrays must have equal length. *)

val standard_error : float array -> float
(** stddev / sqrt n — Fig. 10's error bars. *)

type running
(** Welford accumulator for streaming mean/variance. *)

val running_create : unit -> running
val running_add : running -> float -> unit
val running_count : running -> int
val running_mean : running -> float
val running_variance : running -> float

val linear_fit : (float * float) array -> float * float
(** [linear_fit points] least-squares fit returning [(slope, intercept)].
    Requires at least two distinct x values. *)
