lib/util/ewma.mli:
