lib/util/stats.mli:
