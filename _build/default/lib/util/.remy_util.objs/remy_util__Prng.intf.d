lib/util/prng.mli:
