lib/util/heap.mli:
