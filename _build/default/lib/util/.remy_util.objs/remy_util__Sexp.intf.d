lib/util/sexp.mli:
