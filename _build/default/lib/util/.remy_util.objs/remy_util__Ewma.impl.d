lib/util/ewma.ml:
