lib/util/sexp.ml: Buffer In_channel List Printf String Sys
