lib/util/ellipse.ml: Array Float Format Stats
