lib/util/ellipse.mli: Format
