type t =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Pareto of { xm : float; alpha : float; shift : float }
  | Empirical of float array

let exponential rng mean =
  (* Inverse CDF; guard against log 0. *)
  let u = Prng.uniform rng epsilon_float 1.0 in
  -.mean *. log u

let pareto rng ~xm ~alpha =
  let u = Prng.uniform rng epsilon_float 1.0 in
  xm /. (u ** (1.0 /. alpha))

let gaussian rng ~mean ~std =
  let u1 = Prng.uniform rng epsilon_float 1.0 in
  let u2 = Prng.float rng 1.0 in
  mean +. (std *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let icsi_xm = 147.0
let icsi_alpha = 0.5
let icsi_shift = 40.0
let icsi_extra = 16384.0

let pareto_icsi rng =
  let raw = pareto rng ~xm:icsi_xm ~alpha:icsi_alpha in
  Float.max 0. (raw -. icsi_shift) +. icsi_extra

let icsi_cdf x =
  if x +. icsi_shift <= icsi_xm then 0.0
  else 1.0 -. ((icsi_xm /. (x +. icsi_shift)) ** icsi_alpha)

let sample t rng =
  match t with
  | Constant c -> c
  | Uniform (lo, hi) -> Prng.uniform rng lo hi
  | Exponential mean -> exponential rng mean
  | Pareto { xm; alpha; shift } -> Float.max 0. (pareto rng ~xm ~alpha -. shift)
  | Empirical values ->
    assert (Array.length values > 0);
    values.(Prng.int rng (Array.length values))

let mean = function
  | Constant c -> Some c
  | Uniform (lo, hi) -> Some ((lo +. hi) /. 2.)
  | Exponential m -> Some m
  | Pareto { xm; alpha; shift } ->
    if alpha > 1.0 then Some ((alpha *. xm /. (alpha -. 1.0)) -. shift) else None
  | Empirical values ->
    let n = Array.length values in
    if n = 0 then None else Some (Array.fold_left ( +. ) 0. values /. float_of_int n)
