type t = {
  center_x : float;
  center_y : float;
  major : float;
  minor : float;
  angle : float;
}

let fit points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Ellipse.fit: need >= 2 points";
  let xs = Array.map fst points and ys = Array.map snd points in
  let cx = Stats.mean xs and cy = Stats.mean ys in
  let sxx = Stats.variance xs in
  let syy = Stats.variance ys in
  let sxy = Stats.covariance xs ys in
  (* Eigenvalues of [[sxx sxy]; [sxy syy]]. *)
  let trace = sxx +. syy in
  let det = (sxx *. syy) -. (sxy *. sxy) in
  let disc = sqrt (Float.max 0. ((trace *. trace /. 4.) -. det)) in
  let l1 = (trace /. 2.) +. disc in
  let l2 = (trace /. 2.) -. disc in
  let angle =
    if Float.abs sxy < 1e-18 then if sxx >= syy then 0. else Float.pi /. 2.
    else Float.atan2 (l1 -. sxx) sxy
  in
  {
    center_x = cx;
    center_y = cy;
    major = sqrt (Float.max 0. l1);
    minor = sqrt (Float.max 0. l2);
    angle;
  }

let scale e k = { e with major = e.major *. k; minor = e.minor *. k }

let pp fmt e =
  Format.fprintf fmt "center=(%.4g, %.4g) axes=(%.4g, %.4g) angle=%.3f rad"
    e.center_x e.center_y e.major e.minor e.angle
