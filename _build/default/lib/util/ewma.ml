type t = {
  alpha : float;
  initial : float option;  (* None: first sample initializes *)
  mutable value : float;
  mutable set : bool;
}

let create ~alpha =
  assert (alpha > 0. && alpha <= 1.);
  { alpha; initial = None; value = 0.; set = false }

let create_at ~alpha v0 =
  assert (alpha > 0. && alpha <= 1.);
  { alpha; initial = Some v0; value = v0; set = true }

let reset t =
  match t.initial with
  | Some v0 ->
    t.value <- v0;
    t.set <- true
  | None ->
    t.value <- 0.;
    t.set <- false

let update t x =
  if t.set then t.value <- t.value +. (t.alpha *. (x -. t.value))
  else begin
    t.value <- x;
    t.set <- true
  end

let value t = t.value
let is_set t = t.set
