(** 1-sigma Gaussian ellipse fit for throughput-delay scatter plots.

    The paper summarizes each scheme as the 1-sigma elliptic contour of the
    maximum-likelihood 2D Gaussian over per-run (queueing delay, throughput)
    points (Section 5.1, Figs. 4-9).  This module computes that contour:
    the mean and the principal axes from the eigendecomposition of the
    2x2 sample covariance matrix. *)

type t = {
  center_x : float;
  center_y : float;
  major : float;  (** semi-axis length along the first eigenvector *)
  minor : float;  (** semi-axis length along the second eigenvector *)
  angle : float;  (** radians from the x-axis to the major axis *)
}

val fit : (float * float) array -> t
(** [fit points] with at least two points.  [sigma] scaling is 1 (the
    paper also uses 1/2-sigma in Fig. 5; scale axes by the caller). *)

val scale : t -> float -> t
(** [scale e k] multiplies both semi-axes by [k]. *)

val pp : Format.formatter -> t -> unit
