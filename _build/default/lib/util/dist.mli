(** Random distributions used by the network and traffic models.

    Every sampler is driven by an explicit {!Prng.t}.  The flow-length
    distribution of Allman's 2012 ICSI trace is modelled exactly as the
    paper fits it (Fig. 3): Pareto(x+40) with Xm = 147 bytes and
    alpha = 0.5, shifted by 16 KiB at sampling time (Section 5.1). *)

type t =
  | Constant of float
  | Uniform of float * float  (** inclusive-exclusive bounds *)
  | Exponential of float  (** mean *)
  | Pareto of { xm : float; alpha : float; shift : float }
      (** [shift] is subtracted from the raw Pareto draw, i.e. the paper's
          Pareto(x+40) uses [shift = 40]. *)
  | Empirical of float array  (** sample uniformly from the given values *)

val sample : t -> Prng.t -> float
(** Draw one value.  Pareto draws are truncated below at [0]. *)

val mean : t -> float option
(** Closed-form mean when it exists ([None] e.g. for Pareto with
    alpha <= 1, which has no finite mean — the point of Fig. 3). *)

val exponential : Prng.t -> float -> float
(** [exponential rng mean] — inverse-CDF sampling. *)

val pareto : Prng.t -> xm:float -> alpha:float -> float
(** Raw Pareto draw, >= xm. *)

val gaussian : Prng.t -> mean:float -> std:float -> float
(** Box-Muller normal draw (used by the synthetic LTE rate walk). *)

val pareto_icsi : Prng.t -> float
(** Flow length in bytes from the paper's ICSI model: Pareto(x+40),
    Xm = 147, alpha = 0.5, plus the 16 KiB the evaluation adds to each
    sampled value. *)

val icsi_cdf : float -> float
(** Closed-form CDF of the (unshifted, without the +16 KiB) ICSI Pareto
    fit, for Fig. 3: [icsi_cdf x] = P(flow length <= x bytes). *)
