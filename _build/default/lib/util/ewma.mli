(** Exponentially weighted moving average.

    Implements the RemyCC signal estimator of Section 4.1: the new sample
    receives weight [alpha] (the paper uses 1/8).  Two initialization
    behaviors are provided: an unset EWMA takes the first sample as its
    value (the usual TCP srtt convention), while {!create_at} starts from
    a fixed value and blends every sample in — matching the paper's
    "well-known all-zeroes initial state" for the RemyCC memory. *)

type t

val create : alpha:float -> t
(** [alpha] in (0, 1]: weight of each new sample.  First sample
    initializes the average. *)

val create_at : alpha:float -> float -> t
(** [create_at ~alpha v0] starts set at [v0]; every sample (including the
    first) blends with weight [alpha]. *)

val reset : t -> unit
(** Return to the creation state (unset, or the initial value for
    {!create_at}). *)

val update : t -> float -> unit
val value : t -> float
(** Current average; [0.] before any sample of an unset EWMA. *)

val is_set : t -> bool
