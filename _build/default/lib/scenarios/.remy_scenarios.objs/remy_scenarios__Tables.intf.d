lib/scenarios/tables.mli: Remy Schemes
