lib/scenarios/figures.mli: Format
