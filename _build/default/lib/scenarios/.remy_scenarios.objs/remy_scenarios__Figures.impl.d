lib/scenarios/figures.ml: Array Cell_trace Dist Ellipse Filename Float Format Fun Link List Metrics Printf Prng Remy Remy_cc Remy_sim Remy_util Scenario Schemes Stats String Sys Tables Workload
