lib/scenarios/schemes.ml: Cc Compound Cubic Dctcp Dumbbell List Newreno Remy Remy_cc String Vegas Xcp
