lib/scenarios/tables.ml: Filename Net_model Objective Optimizer Printf Remy Rule_tree Schemes Sys
