lib/scenarios/schemes.mli: Remy Remy_cc
