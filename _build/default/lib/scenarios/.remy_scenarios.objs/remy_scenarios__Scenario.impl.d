lib/scenarios/scenario.ml: Array Dumbbell Ellipse Format List Metrics Remy_cc Remy_sim Remy_util Schemes Stats Workload
