lib/scenarios/scenario.mli: Format Remy_cc Remy_sim Remy_util Schemes
