(** Locating and loading the pre-trained RemyCC rule tables.

    Tables live in [data/*.rules] at the repository root.  The data
    directory is found via the [REMY_DATA_DIR] environment variable or
    by walking up from the working directory — so [dune exec] works from
    any subdirectory.  If a table is missing, [load_or_train] designs a
    small replacement on the fly (with a tight wall budget) and saves
    it, so benchmarks remain runnable from a fresh checkout; properly
    trained tables should be produced with [bin/remy_train]. *)

val data_dir : unit -> string
(** Directory holding [*.rules] (created if absent). *)

val path : string -> string
(** [path "delta1"] = "<data_dir>/delta1.rules". *)

val load : string -> (Remy.Rule_tree.t, string) result

type spec = {
  table : string;  (** base name, e.g. "delta1" *)
  model : Remy.Net_model.t;
  objective : Remy.Objective.t;
  train_budget_s : float;  (** fallback training budget *)
}

val delta01 : spec
val delta1 : spec
val delta10 : spec
val onex : spec
val tenx : spec
val datacenter : spec
val coexist : spec
val all : spec list

val load_or_train : ?progress:(string -> unit) -> spec -> Remy.Rule_tree.t
(** Load the checked-in table, or train-and-save a fallback. *)

val default_label : spec -> string
(** Display label: "Remy d=0.1" for the delta tables, etc. *)

val scheme : ?label:string -> spec -> Schemes.t
(** [load_or_train] wrapped as a {!Schemes.t}; default label is
    "Remy d=0.1"-style for the delta tables, else the table name. *)
