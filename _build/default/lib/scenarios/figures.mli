(** Reproductions of every table and figure in the paper's evaluation
    (Section 5).  Each function runs the experiment and prints the rows
    or series the paper reports; EXPERIMENTS.md records paper-vs-measured.

    All experiments are deterministic given [opts.base_seed].  Default
    option sets are scaled down to finish on a laptop core; [full]
    approaches the paper's 100-second, 128-replication scale. *)

type opts = {
  replications : int;
  duration : float;  (** seconds per simulation run *)
  base_seed : int;
  progress : string -> unit;  (** training-fallback and status messages *)
  artifact_dir : string option;
      (** when set, each experiment also writes gnuplot-ready TSV data
          files (one per figure) into this directory *)
}

val quick : opts
(** 6 replications, 40 s runs. *)

val full : opts
(** 64 replications, 100 s runs (hours of CPU). *)

val fig3 : Format.formatter -> unit
(** Flow-length CDF of the generator vs the paper's Pareto fit. *)

val fig4 : Format.formatter -> opts -> unit
(** Dumbbell, 15 Mbps, n = 8, 100 kB exponential flows: per-scheme
    median throughput/queueing delay + 1-sigma ellipses, and the
    Section 1 summary table of speedups vs RemyCC. *)

val fig5 : Format.formatter -> opts -> unit
(** Dumbbell, n = 12, ICSI empirical flow lengths (1/2-sigma ellipses). *)

val fig6 : Format.formatter -> opts -> unit
(** Sequence plot: a RemyCC flow doubles its rate within about an RTT
    of a competing flow departing. *)

val fig7 : Format.formatter -> opts -> unit
(** Verizon-like LTE trace, n = 4. *)

val fig8 : Format.formatter -> opts -> unit
(** Verizon-like LTE trace, n = 8. *)

val fig9 : Format.formatter -> opts -> unit
(** AT&T-like LTE trace, n = 4. *)

val fig10 : Format.formatter -> opts -> unit
(** RTT unfairness: normalized throughput share at RTT 50/100/150/200 ms
    for the RemyCCs vs Cubic-over-sfqCoDel, with standard errors. *)

val tbl_datacenter : Format.formatter -> opts -> unit
(** Section 5.5: DCTCP (ECN) vs RemyCC (DropTail) at 1/10 of the paper's
    10 Gbps scale — mean/median transfer throughput and RTT. *)

val tbl_competing : Format.formatter -> opts -> unit
(** Section 5.6: one RemyCC flow sharing the bottleneck with Compound
    (off-time sweep) and with Cubic (flow-size sweep). *)

val fig11 : Format.formatter -> opts -> unit
(** Prior-knowledge sensitivity: 1x vs 10x RemyCC vs Cubic-over-sfqCoDel
    across a link-speed sweep, scored by log(tput) - log(delay). *)

(** {2 Beyond-paper ablations}

    Not figures from the paper, but direct tests of claims its prose
    makes about the design. *)

val ablation_loss : Format.formatter -> opts -> unit
(** Section 4.1 claims RemyCCs "robustly handle stochastic
    (non-congestive) packet losses" because loss is not one of their
    congestion signals: sweep an i.i.d. loss rate and compare against
    the loss-based TCPs. *)

val ablation_signals : Format.formatter -> opts -> unit
(** How much does each of the three memory signals contribute?  Runs
    the delta = 1 RemyCC with each signal pinned to zero. *)

val all : (string * (Format.formatter -> opts -> unit)) list
(** Experiment id -> runner, in paper order ("fig3" ignores opts),
    ablations last. *)
