(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index) plus Bechamel
   microbenchmarks of the core primitives.

     dune exec bench/main.exe                 # all experiments, scaled down
     dune exec bench/main.exe -- --only fig4  # one experiment
     dune exec bench/main.exe -- --full       # paper-scale (hours)
     dune exec bench/main.exe -- --micro      # microbenchmarks only *)

open Cmdliner
module Figures = Remy_scenarios.Figures

(* --- Bechamel microbenchmarks ---------------------------------------- *)

let micro_tests () =
  let open Bechamel in
  let open Remy_util in
  let prng = Prng.create 1 in
  let prng_test =
    Test.make ~name:"prng/bits64" (Staged.stage (fun () -> ignore (Prng.bits64 prng)))
  in
  let heap_test =
    Test.make ~name:"heap/push+pop-64"
      (Staged.stage (fun () ->
           let h = Heap.create () in
           for i = 0 to 63 do
             Heap.push h (float_of_int (i * 7919 mod 64)) i
           done;
           while not (Heap.is_empty h) do
             ignore (Heap.pop h)
           done))
  in
  let ewma = Ewma.create_at ~alpha:0.125 0. in
  let ewma_test =
    Test.make ~name:"ewma/update" (Staged.stage (fun () -> Ewma.update ewma 1.5))
  in
  let tracker = Remy.Memory.tracker () in
  let memory_test =
    Test.make ~name:"memory/on_ack"
      (Staged.stage (fun () ->
           ignore
             (Remy.Memory.on_ack tracker ~sent_at:1.0 ~received_at:1.1 ~rtt:0.1)))
  in
  (* A realistically subdivided rule table for lookup costs. *)
  let tree = Remy.Rule_tree.create () in
  let seed_rng = Prng.create 5 in
  for _ = 1 to 3 do
    let ids = Remy.Rule_tree.live_ids tree in
    let id = List.nth ids (Prng.int seed_rng (List.length ids)) in
    ignore
      (Remy.Rule_tree.subdivide tree id
         ~at:
           (Remy.Memory.make
              ~ack_ewma:(Prng.float seed_rng 100.)
              ~send_ewma:(Prng.float seed_rng 100.)
              ~rtt_ratio:(Prng.float seed_rng 4.)))
  done;
  let probe = Remy.Memory.make ~ack_ewma:12.5 ~send_ewma:11.0 ~rtt_ratio:1.3 in
  let lookup_test =
    Test.make ~name:"rule_tree/lookup"
      (Staged.stage (fun () -> ignore (Remy.Rule_tree.lookup tree probe)))
  in
  let engine_test =
    Test.make ~name:"engine/schedule+run-64"
      (Staged.stage (fun () ->
           let e = Remy_sim.Engine.create () in
           for i = 0 to 63 do
             Remy_sim.Engine.schedule e (float_of_int i *. 0.001) (fun () -> ())
           done;
           Remy_sim.Engine.run e ~until:1.))
  in
  let codel_q = Remy_sim.Codel.create ~capacity:1000 () in
  let codel_test =
    Test.make ~name:"codel/enq+deq"
      (Staged.stage (fun () ->
           let pkt = Remy_sim.Packet.make ~flow:0 ~seq:0 ~conn:0 ~now:0. () in
           ignore (codel_q.Remy_sim.Qdisc.enqueue ~now:0. pkt);
           ignore (codel_q.Remy_sim.Qdisc.dequeue ~now:0.001)))
  in
  Test.make_grouped ~name:"remy"
    [
      prng_test; heap_test; ewma_test; memory_test; lookup_test; engine_test;
      codel_test;
    ]

let micro_rows () =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> est
          | Some [] | None -> nan
        in
        let r2 =
          match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
        in
        (name, ns, r2) :: acc)
      results []
  in
  List.sort compare rows

let run_micro fmt =
  Format.fprintf fmt "@.==== Microbenchmarks (Bechamel, OLS time per run) ====@.@.";
  let rows = micro_rows () in
  Format.fprintf fmt "%-32s %14s %8s@." "benchmark" "time/run (ns)" "r^2";
  List.iter
    (fun (name, ns, r2) -> Format.fprintf fmt "%-32s %14.1f %8.3f@." name ns r2)
    rows

(* --- optimizer-throughput macrobench ---------------------------------- *)

(* A fixed small training config (onex model, k = 1 so the rule table
   subdivides every epoch and the incremental cache has rules to skip).
   Reported as candidate evaluations per second of wall time; the
   evaluation count is deterministic, so the ratio between two builds is
   a pure wall-time speedup. *)
type macro_result = {
  mr_domains : int;
  mr_smoke : bool;
  mr_evaluations : int;
  mr_wall_s : float;
  mr_evals_per_sec : float;
  mr_spec_sims : int;
  mr_spec_skips : int;
  mr_pool_jobs : int;
  mr_pool_tasks : int;
  mr_pool_helper_tasks : int;
  mr_rules : int;
  mr_final_score : float;
  mr_counters : Remy_obs.Counters.snapshot;
      (* counter deltas attributed to this section alone *)
  mr_tree : string;
      (* canonical full-serialization of the trained tree, the reference
         the distributed bench checks bit-identity against *)
}

(* Shared by the macrobench and the distributed bench: the trees are
   only comparable because both runs train this exact configuration. *)
let macro_model () = Remy.Net_model.onex ~sim_duration:1.0 ()

let macro_config ~domains ~smoke ~model =
  let open Remy in
  Optimizer.default_config
    ~specimens_per_step:(if smoke then 3 else 4)
    ~domains ~k_subdivide:1 ~candidate_multipliers:[ 1.; 8. ]
    ~rounds_per_rule:(if smoke then 1 else 2)
    ~max_epochs:(if smoke then 2 else 3)
    ~wall_budget_s:600. ~seed:42 ~model
    ~objective:(Objective.proportional ~delta:1.0) ()

let run_macro ~domains ~smoke =
  let open Remy in
  let model = macro_model () in
  let config = macro_config ~domains ~smoke ~model in
  let before = Par.stats () in
  let c0 = Remy_obs.Counters.snapshot () in
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  let report = Optimizer.design config in
  let wall = Unix.gettimeofday () -. t0 in
  let after = Par.stats () in
  {
    mr_domains = domains;
    mr_smoke = smoke;
    mr_evaluations = report.Optimizer.evaluations;
    mr_wall_s = wall;
    mr_evals_per_sec = float_of_int report.Optimizer.evaluations /. wall;
    mr_spec_sims = report.Optimizer.spec_sims;
    mr_spec_skips = report.Optimizer.spec_skips;
    mr_pool_jobs = after.Par.pool_jobs - before.Par.pool_jobs;
    mr_pool_tasks = after.Par.pool_tasks - before.Par.pool_tasks;
    mr_pool_helper_tasks = after.Par.pool_helper_tasks - before.Par.pool_helper_tasks;
    mr_rules = Rule_tree.num_rules report.Optimizer.tree;
    mr_final_score = report.Optimizer.final_score;
    mr_counters = Remy_obs.Counters.diff (Remy_obs.Counters.snapshot ()) c0;
    mr_tree =
      Remy_util.Sexp.to_string (Rule_tree.to_sexp_full report.Optimizer.tree);
  }

let pp_macro fmt (m : macro_result) =
  Format.fprintf fmt
    "@.==== Optimizer macrobench (domains=%d%s) ====@.@.%d evaluations in %.2f s \
     = %.1f evals/s; %d specimen sims, %d skipped; %d pool jobs, %d tasks (%d by \
     helpers); %d rules, final score %.4f@."
    m.mr_domains
    (if m.mr_smoke then ", smoke" else "")
    m.mr_evaluations m.mr_wall_s m.mr_evals_per_sec m.mr_spec_sims m.mr_spec_skips
    m.mr_pool_jobs m.mr_pool_tasks m.mr_pool_helper_tasks m.mr_rules
    m.mr_final_score

(* --- distributed-training bench ---------------------------------------- *)

(* The macrobench configuration again, but driven through the lib/dist
   coordinator with worker processes instead of the in-process domain
   pool.  Two things come out: evals/s per worker count (the sharding
   overhead/scaling story) and whether each trained tree is
   bit-identical to the single-process macrobench tree — the invariant
   CI's dist-smoke job also enforces end-to-end on remy_train output.
   Workers are spawned (posix_spawn, re-execing this binary with
   [dist_worker_arg]) rather than forked: by the time this section runs
   the macrobench pool has already created domains, after which OCaml 5
   permanently refuses [Unix.fork]. *)
let dist_worker_arg = "--dist-worker-child"

type dist_row = {
  dd_workers : int;
  dd_evaluations : int;
  dd_wall_s : float;
  dd_evals_per_sec : float;
  dd_identical : bool;  (* tree bit-identical to the macrobench's *)
}

let run_dist ~smoke ~reference_tree =
  let open Remy in
  let model = macro_model () in
  List.map
    (fun workers ->
      let config = macro_config ~domains:1 ~smoke ~model in
      let coord =
        Remy_dist.Coordinator.create
          ~params:
            {
              Remy_dist.Wire.objective = config.Optimizer.objective;
              queue_capacity = model.Net_model.queue_capacity;
              duration = model.Net_model.sim_duration;
              topology = model.Net_model.topology;
            }
          ~config_hash:(Optimizer.config_fingerprint config)
          ~workers:
            (List.init workers (fun _ ->
                 Remy_dist.Coordinator.Spawn
                   [ Sys.executable_name; dist_worker_arg ]))
          ()
      in
      let report, wall =
        Fun.protect
          ~finally:(fun () -> Remy_dist.Coordinator.shutdown coord)
          (fun () ->
            let backend =
              Remy_dist.Coordinator.backend coord
                ~incremental:config.Optimizer.incremental
            in
            let t0 = Unix.gettimeofday () in
            let report = Optimizer.design ~backend config in
            (report, Unix.gettimeofday () -. t0))
      in
      {
        dd_workers = workers;
        dd_evaluations = report.Optimizer.evaluations;
        dd_wall_s = wall;
        dd_evals_per_sec = float_of_int report.Optimizer.evaluations /. wall;
        dd_identical =
          Remy_util.Sexp.to_string (Rule_tree.to_sexp_full report.Optimizer.tree)
          = reference_tree;
      })
    [ 1; 2 ]

let pp_dist fmt (rows : dist_row list) =
  Format.fprintf fmt
    "@.==== Distributed training bench (spawned workers) ====@.@.";
  List.iter
    (fun r ->
      Format.fprintf fmt
        "%d worker%s: %d evaluations in %.2f s = %.1f evals/s; tree %s@."
        r.dd_workers
        (if r.dd_workers = 1 then " " else "s")
        r.dd_evaluations r.dd_wall_s r.dd_evals_per_sec
        (if r.dd_identical then "bit-identical to single-process"
         else "DIVERGED from single-process"))
    rows

(* --- simulator-only microbench ---------------------------------------- *)

(* Hot-path throughput with the optimizer out of the picture: a dumbbell
   simulation driven by a realistically subdivided RemyCC table, measured
   via the Remy_obs.Counters deltas, plus a tight rule-lookup loop that
   pits the compiled index against raw tree descent. *)
type sim_result = {
  sb_sim_s : float;  (* simulated seconds across all repetitions *)
  sb_wall_s : float;
  sb_events : int;
  sb_events_per_sec : float;
  sb_acks : int;
  sb_acks_per_sec : float;
  sb_lookups_per_sec : float;
  sb_tree_lookups_per_sec : float;
  sb_minor_words_per_sim_s : float;
  sb_pool_hit_rate : float;
  sb_counters : Remy_obs.Counters.snapshot;
      (* counter deltas attributed to this section alone *)
}

(* Four random subdivisions = 29 rules, the table size a mid-training
   optimizer epoch works with. *)
let bench_tree () =
  let open Remy in
  let tree = Rule_tree.create () in
  let rng = Remy_util.Prng.create 5 in
  for _ = 1 to 4 do
    let ids = Rule_tree.live_ids tree in
    let id = List.nth ids (Remy_util.Prng.int rng (List.length ids)) in
    ignore
      (Rule_tree.subdivide tree id
         ~at:
           (Memory.make
              ~ack_ewma:(Remy_util.Prng.float rng 200.)
              ~send_ewma:(Remy_util.Prng.float rng 200.)
              ~rtt_ratio:(Remy_util.Prng.float rng 4.)))
  done;
  tree

let run_sim_bench ~smoke =
  let open Remy in
  let open Remy_cc in
  let tree = bench_tree () in
  let duration = if smoke then 8. else 24. in
  let reps = 3 in
  let config seed =
    {
      Dumbbell.service = Dumbbell.Rate_mbps 15.;
      qdisc = Dumbbell.Droptail 120;
      flows =
        Array.init 2 (fun _ ->
            {
              Dumbbell.cc = Remycc.factory tree;
              rtt = 0.1;
              workload = Remy_sim.Workload.by_time ~mean_on:1.0 ~mean_off:0.5;
              start = `Off_draw;
            });
      duration;
      seed;
      min_rto = Dumbbell.default_min_rto;
    }
  in
  (* Snapshot-diff instead of a process-wide reset, so concurrent report
     sections (the macrobench just ran) keep their own attribution. *)
  let c0 = Remy_obs.Counters.snapshot () in
  Gc.full_major ();
  let mw0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for r = 1 to reps do
    ignore (Dumbbell.run (config (1000 + r)))
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let minor_words = Gc.minor_words () -. mw0 in
  let snap = Remy_obs.Counters.diff (Remy_obs.Counters.snapshot ()) c0 in
  (* Lookup throughput over a cycling batch of pseudorandom memory
     points; the batch is a power of two so indexing is a mask. *)
  let probes =
    let rng = Remy_util.Prng.create 9 in
    Array.init 1024 (fun _ ->
        Memory.make
          ~ack_ewma:(Remy_util.Prng.float rng 400.)
          ~send_ewma:(Remy_util.Prng.float rng 400.)
          ~rtt_ratio:(Remy_util.Prng.float rng 8.))
  in
  let n_lookups = if smoke then 2_000_000 else 8_000_000 in
  let time_lookups f =
    let t0 = Unix.gettimeofday () in
    let acc = ref 0 in
    for i = 0 to n_lookups - 1 do
      acc := !acc + f tree (Array.unsafe_get probes (i land 1023))
    done;
    ignore (Sys.opaque_identity !acc);
    float_of_int n_lookups /. (Unix.gettimeofday () -. t0)
  in
  let lookups_per_sec = time_lookups Rule_tree.lookup in
  let tree_lookups_per_sec = time_lookups Rule_tree.lookup_uncompiled in
  Remy_obs.Counters.add Remy_obs.Counters.lookups (2 * n_lookups);
  let counters = Remy_obs.Counters.diff (Remy_obs.Counters.snapshot ()) c0 in
  let sim_s = duration *. float_of_int reps in
  let pool_total = snap.Remy_obs.Counters.pool_hits + snap.Remy_obs.Counters.pool_misses in
  {
    sb_sim_s = sim_s;
    sb_wall_s = wall;
    sb_events = snap.Remy_obs.Counters.events_run;
    sb_events_per_sec = float_of_int snap.Remy_obs.Counters.events_run /. wall;
    sb_acks = snap.Remy_obs.Counters.acks_processed;
    sb_acks_per_sec = float_of_int snap.Remy_obs.Counters.acks_processed /. wall;
    sb_lookups_per_sec = lookups_per_sec;
    sb_tree_lookups_per_sec = tree_lookups_per_sec;
    sb_minor_words_per_sim_s = minor_words /. sim_s;
    sb_pool_hit_rate =
      (if pool_total > 0 then
         float_of_int snap.Remy_obs.Counters.pool_hits /. float_of_int pool_total
       else 0.);
    sb_counters = counters;
  }

let pp_sim fmt (s : sim_result) =
  Format.fprintf fmt
    "@.==== Simulator microbench (%g simulated s) ====@.@.%d events in %.2f s = \
     %.0f events/s; %d acks = %.0f acks/s; lookups %.2g/s compiled vs %.2g/s \
     tree; %.3g minor words per simulated second; pool hit rate %.3f@."
    s.sb_sim_s s.sb_events s.sb_wall_s s.sb_events_per_sec s.sb_acks
    s.sb_acks_per_sec s.sb_lookups_per_sec s.sb_tree_lookups_per_sec
    s.sb_minor_words_per_sim_s s.sb_pool_hit_rate

(* --- wheel-vs-heap agenda microbench ---------------------------------- *)

(* The classic "hold" benchmark for event queues: preload N pending
   events, then repeatedly pop the minimum and push a replacement a
   random delta later, which is exactly the steady-state access pattern
   of the simulator agenda.  The heap is O(log n) per hold, the wheel
   amortized O(1); the gap should widen with N. *)
type hold_result = {
  hd_pending : int;
  hd_ops : int;
  hd_wheel_ops_per_sec : float;
  hd_heap_ops_per_sec : float;
}

let hold_heap ~pending ~ops =
  let open Remy_util in
  let rng = Prng.create 7 in
  let h = Heap.create () in
  for i = 0 to pending - 1 do
    Heap.push h (Prng.float rng 1.0) i
  done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to ops do
    let p = Heap.min_prio h in
    let v = Heap.pop_exn h in
    Heap.push h (p +. Prng.float rng 0.01) v
  done;
  let wall = Unix.gettimeofday () -. t0 in
  ignore (Sys.opaque_identity (Heap.size h));
  float_of_int ops /. wall

let hold_wheel ~pending ~ops =
  let open Remy_util in
  let rng = Prng.create 7 in
  let w = Timing_wheel.create () in
  for i = 0 to pending - 1 do
    Timing_wheel.push w (Prng.float rng 1.0) i
  done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to ops do
    let p = Timing_wheel.min_prio w in
    let v = Timing_wheel.pop_exn w in
    Timing_wheel.push w (p +. Prng.float rng 0.01) v
  done;
  let wall = Unix.gettimeofday () -. t0 in
  ignore (Sys.opaque_identity (Timing_wheel.size w));
  float_of_int ops /. wall

let run_wheel_vs_heap ~smoke =
  List.map
    (fun pending ->
      let ops =
        let base = if pending >= 65536 then 1_000_000 else 2_000_000 in
        if smoke then base / 4 else base
      in
      {
        hd_pending = pending;
        hd_ops = ops;
        hd_wheel_ops_per_sec = hold_wheel ~pending ~ops;
        hd_heap_ops_per_sec = hold_heap ~pending ~ops;
      })
    [ 64; 4096; 65536 ]

let pp_hold fmt (rows : hold_result list) =
  Format.fprintf fmt
    "@.==== Agenda hold benchmark (pop-min + push replacement) ====@.@.%-10s \
     %14s %14s %8s@."
    "pending" "wheel ops/s" "heap ops/s" "ratio";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-10d %14.0f %14.0f %7.2fx@." r.hd_pending
        r.hd_wheel_ops_per_sec r.hd_heap_ops_per_sec
        (r.hd_wheel_ops_per_sec /. r.hd_heap_ops_per_sec))
    rows

(* --- flow-scale simulator benchmark ----------------------------------- *)

(* The tentpole measurement: end-to-end simulator throughput as the
   flow count grows, on the multi-bottleneck topologies.  Two arms per
   configuration — the timing-wheel agenda driving the SoA sender fleet
   versus the binary-heap agenda driving per-record senders (the
   pre-PR architecture) — both bit-identical in results, so the ratio
   is a pure wall-time speedup.  Pool hit rates report how well the
   BDP-based pre-sizing fits each scenario. *)
type scale_arm = {
  sa_wall_s : float;
  sa_events : int;
  sa_events_per_sec : float;
  sa_acks : int;
  sa_acks_per_sec : float;
  sa_pool_hit_rate : float;
}

type scale_row = {
  sc_scenario : string;
  sc_flows : int;
  sc_sim_s : float;
  sc_wheel : scale_arm; (* timing-wheel agenda + SoA fleet *)
  sc_heap : scale_arm; (* heap agenda + per-record senders *)
}

let arm_of_rep wall (snap : Remy_obs.Counters.snapshot) =
  let pool_total =
    snap.Remy_obs.Counters.pool_hits + snap.Remy_obs.Counters.pool_misses
  in
  {
    sa_wall_s = wall;
    sa_events = snap.Remy_obs.Counters.events_run;
    sa_events_per_sec = float_of_int snap.Remy_obs.Counters.events_run /. wall;
    sa_acks = snap.Remy_obs.Counters.acks_processed;
    sa_acks_per_sec = float_of_int snap.Remy_obs.Counters.acks_processed /. wall;
    sa_pool_hit_rate =
      (if pool_total > 0 then
         float_of_int snap.Remy_obs.Counters.pool_hits
         /. float_of_int pool_total
       else 0.);
  }

(* Measure several arms with their reps interleaved — rep 1 of every
   arm, then rep 2, and so on — keeping each arm's best-wall rep.  A
   single-vCPU CI box loses tens of percent to host-side contention
   that drifts on a seconds scale, so running one arm's reps
   back-to-back before the next arm's biases any ratio between them;
   interleaving spreads a slow window across all arms, and the
   per-arm minimum converges on the code's real speed. *)
let measure_arms ~reps (arms : (bool * (unit -> unit)) list) =
  let n = List.length arms in
  let best = Array.make n infinity and snaps = Array.make n None in
  Fun.protect
    ~finally:(fun () -> Remy_sim.Engine.use_wheel true)
    (fun () ->
      for _ = 1 to reps do
        List.iteri
          (fun i (wheel, body) ->
            Remy_sim.Engine.use_wheel wheel;
            let c0 = Remy_obs.Counters.snapshot () in
            let t0 = Unix.gettimeofday () in
            body ();
            let wall = Unix.gettimeofday () -. t0 in
            let snap =
              Remy_obs.Counters.diff (Remy_obs.Counters.snapshot ()) c0
            in
            if wall < best.(i) then begin
              best.(i) <- wall;
              snaps.(i) <- Some snap
            end)
          arms
      done);
  Array.to_list
    (Array.init n (fun i -> arm_of_rep best.(i) (Option.get snaps.(i))))

let scale_body ~fleet tree (config : unit -> Remy_cc.Topology.config) () =
  if fleet then
    ignore
      (Remy_cc.Topology.run ~sender_factory:(Remy.Fleet.factory tree) (config ()))
  else ignore (Remy_cc.Topology.run (config ()))

(* The incast baseline arm runs the PRE-PR architecture end to end:
   [Dumbbell.run] (per-flow sender and receiver records, closure
   wiring) on the heap agenda.  The default incast topology is a
   single link with routes [|0|], for which test_topology proves the
   two runners bit-identical flow for flow — so the speedup is pure
   wall time, old stack vs new stack, on identical work. *)
let dumbbell_body tree ~n ~rtt_s ~burst_kb ~period_s ~duration () =
  let open Remy_cc in
  let flows =
    Array.init n (fun _ ->
        {
          Dumbbell.cc = Remy.Remycc.factory tree;
          rtt = rtt_s;
          workload =
            Remy_sim.Workload.incast ~burst_bytes:(burst_kb *. 1e3)
              ~period:period_s;
          start = `Immediate;
        })
  in
  ignore
    (Dumbbell.run
       {
         Dumbbell.service = Dumbbell.Rate_mbps 1000.;
         qdisc = Dumbbell.Droptail 1000;
         flows;
         duration;
         seed = 71;
         min_rto = Dumbbell.default_min_rto;
       })

let run_sim_scale ~smoke =
  let open Remy_cc in
  let tree = bench_tree () in
  let scale = if smoke then 0.5 else 1.0 in
  let reps = if smoke then 2 else 5 in
  (* Incast cells model synchronized single-segment responders over a
     metro-scale fan-in: 1.5 kB bursts every 20 ms across a 4 ms RTT.
     The long RTT is deliberate — it keeps tens of thousands of events
     pending at 4096 flows, which is the regime the timing wheel and
     the SoA fleet exist for.  Durations shrink as flow counts grow so
     every cell costs seconds, not minutes; events/s is a rate, so
     cells remain comparable. *)
  let rtt_s = 8e-3 and burst_kb = 1.5 and period_s = 0.02 in
  let cells = [ (16, 4.0, 8.0); (256, 2.0, 4.0); (4096, 2.0, 2.0) ] in
  List.concat_map
    (fun (n, incast_dur, parking_dur) ->
      let incast_cfg () =
        Topology.incast ~rtt_s ~burst_kb ~period_s ~n
          ~cc:(Remy.Remycc.factory tree)
          ~duration:(incast_dur *. scale) ~seed:71 ()
      in
      let parking_cfg () =
        Topology.parking_lot ~n
          ~cc:(Remy.Remycc.factory tree)
          ~workload:(Remy_sim.Workload.by_time ~mean_on:1.0 ~mean_off:0.2)
          ~start:`Off_draw
          ~duration:(parking_dur *. scale) ~seed:72 ()
      in
      let incast_wheel, incast_heap =
        match
          measure_arms ~reps
            [
              (true, scale_body ~fleet:true tree incast_cfg);
              ( false,
                dumbbell_body tree ~n ~rtt_s ~burst_kb ~period_s
                  ~duration:(incast_dur *. scale) );
            ]
        with
        | [ w; h ] -> (w, h)
        | _ -> assert false
      in
      let parking_wheel, parking_heap =
        match
          measure_arms ~reps
            [
              (true, scale_body ~fleet:true tree parking_cfg);
              (false, scale_body ~fleet:false tree parking_cfg);
            ]
        with
        | [ w; h ] -> (w, h)
        | _ -> assert false
      in
      [
        {
          sc_scenario = "incast";
          sc_flows = n;
          sc_sim_s = (incast_cfg ()).Topology.duration;
          sc_wheel = incast_wheel;
          sc_heap = incast_heap;
        };
        {
          sc_scenario = "parkinglot";
          sc_flows = n;
          sc_sim_s = (parking_cfg ()).Topology.duration;
          sc_wheel = parking_wheel;
          sc_heap = parking_heap;
        };
      ])
    cells

let pp_scale fmt (rows : scale_row list) =
  Format.fprintf fmt
    "@.==== Flow-scale benchmark (wheel+fleet vs pre-PR heap stack) ====@.@.%-12s \
     %6s %6s %13s %13s %8s %9s@."
    "scenario" "flows" "sim s" "events/s" "baseline" "speedup" "pool hit";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-12s %6d %6.2g %13.0f %13.0f %7.2fx %9.3f@."
        r.sc_scenario r.sc_flows r.sc_sim_s r.sc_wheel.sa_events_per_sec
        r.sc_heap.sa_events_per_sec
        (r.sc_wheel.sa_events_per_sec /. r.sc_heap.sa_events_per_sec)
        r.sc_wheel.sa_pool_hit_rate)
    rows

(* --- machine-readable output ------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6g" f
  else Printf.sprintf "\"%s\"" (Float.to_string f)

let counters_json (c : Remy_obs.Counters.snapshot) =
  Printf.sprintf
    "{\"events_run\": %d, \"acks_processed\": %d, \"lookups\": %d, \
     \"index_builds\": %d, \"pool_hits\": %d, \"pool_misses\": %d}"
    c.Remy_obs.Counters.events_run c.Remy_obs.Counters.acks_processed
    c.Remy_obs.Counters.lookups c.Remy_obs.Counters.index_builds
    c.Remy_obs.Counters.pool_hits c.Remy_obs.Counters.pool_misses

(* The gate's extractor finds the FIRST occurrence of a quoted key, so
   every numeric key below is globally unique across the document:
   hold rows are prefixed wheel_/heap_ + the pending count, scale rows
   by scenario + flow count (baseline_ marks the heap+records arm). *)
let hold_json oc (rows : hold_result list) =
  let out fmt = Printf.fprintf oc fmt in
  out "  \"wheel_vs_heap\": {\n";
  List.iteri
    (fun i (r : hold_result) ->
      out "    \"hold%d_ops\": %d,\n" r.hd_pending r.hd_ops;
      out "    \"wheel_hold%d_ops_per_sec\": %s,\n" r.hd_pending
        (json_float r.hd_wheel_ops_per_sec);
      out "    \"heap_hold%d_ops_per_sec\": %s,\n" r.hd_pending
        (json_float r.hd_heap_ops_per_sec);
      out "    \"hold%d_ratio\": %s%s\n" r.hd_pending
        (json_float (r.hd_wheel_ops_per_sec /. r.hd_heap_ops_per_sec))
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  },\n"

let scale_json oc (rows : scale_row list) =
  let out fmt = Printf.fprintf oc fmt in
  out "  \"sim_scale\": {\n";
  List.iteri
    (fun i (r : scale_row) ->
      let key = Printf.sprintf "%s%d" r.sc_scenario r.sc_flows in
      out "    \"%s_sim_s\": %s,\n" key (json_float r.sc_sim_s);
      out "    \"%s_events\": %d,\n" key r.sc_wheel.sa_events;
      out "    \"%s_events_per_sec\": %s,\n" key
        (json_float r.sc_wheel.sa_events_per_sec);
      out "    \"%s_acks_per_sec\": %s,\n" key
        (json_float r.sc_wheel.sa_acks_per_sec);
      out "    \"%s_pool_hit_rate\": %s,\n" key
        (json_float r.sc_wheel.sa_pool_hit_rate);
      out "    \"%s_baseline_events_per_sec\": %s,\n" key
        (json_float r.sc_heap.sa_events_per_sec);
      out "    \"%s_baseline_acks_per_sec\": %s,\n" key
        (json_float r.sc_heap.sa_acks_per_sec);
      out "    \"%s_baseline_pool_hit_rate\": %s,\n" key
        (json_float r.sc_heap.sa_pool_hit_rate);
      out "    \"%s_speedup\": %s%s\n" key
        (json_float (r.sc_wheel.sa_events_per_sec /. r.sc_heap.sa_events_per_sec))
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  },\n"

let write_json path micro (macro : macro_result) (sim : sim_result)
    (hold : hold_result list) (scale : scale_row list) (dist : dist_row list) =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": \"remy-bench-v1\",\n";
  out "  \"host\": {\"cores\": %d},\n" (Domain.recommended_domain_count ());
  out "  \"micro\": [\n";
  List.iteri
    (fun i (name, ns, r2) ->
      out "    {\"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s}%s\n"
        (json_escape name) (json_float ns) (json_float r2)
        (if i = List.length micro - 1 then "" else ","))
    micro;
  out "  ],\n";
  out "  \"sim_microbench\": {\n";
  out "    \"sim_s\": %s,\n" (json_float sim.sb_sim_s);
  out "    \"wall_s\": %s,\n" (json_float sim.sb_wall_s);
  out "    \"events\": %d,\n" sim.sb_events;
  out "    \"events_per_sec\": %s,\n" (json_float sim.sb_events_per_sec);
  out "    \"acks\": %d,\n" sim.sb_acks;
  out "    \"acks_per_sec\": %s,\n" (json_float sim.sb_acks_per_sec);
  out "    \"lookups_per_sec\": %s,\n" (json_float sim.sb_lookups_per_sec);
  out "    \"tree_lookups_per_sec\": %s,\n" (json_float sim.sb_tree_lookups_per_sec);
  out "    \"minor_words_per_sim_s\": %s,\n" (json_float sim.sb_minor_words_per_sim_s);
  out "    \"pool_hit_rate\": %s,\n" (json_float sim.sb_pool_hit_rate);
  out "    \"counters\": %s\n" (counters_json sim.sb_counters);
  out "  },\n";
  hold_json oc hold;
  scale_json oc scale;
  out "  \"optimizer_macrobench\": {\n";
  out "    \"domains\": %d,\n" macro.mr_domains;
  out "    \"smoke\": %b,\n" macro.mr_smoke;
  out "    \"evaluations\": %d,\n" macro.mr_evaluations;
  out "    \"wall_s\": %s,\n" (json_float macro.mr_wall_s);
  out "    \"evals_per_sec\": %s,\n" (json_float macro.mr_evals_per_sec);
  out "    \"spec_sims\": %d,\n" macro.mr_spec_sims;
  out "    \"spec_skips\": %d,\n" macro.mr_spec_skips;
  out "    \"pool_jobs\": %d,\n" macro.mr_pool_jobs;
  out "    \"pool_tasks\": %d,\n" macro.mr_pool_tasks;
  out "    \"pool_helper_tasks\": %d,\n" macro.mr_pool_helper_tasks;
  out "    \"rules\": %d,\n" macro.mr_rules;
  out "    \"final_score\": %s,\n" (json_float macro.mr_final_score);
  out "    \"counters\": %s\n" (counters_json macro.mr_counters);
  out "  },\n";
  (* Recorded, not gated: dist throughput on a tiny grid is dominated by
     spawn/handshake cost, so rates here are informational; the
     identical flags are enforced bit-exactly by CI's dist-smoke job. *)
  out "  \"dist\": [\n";
  List.iteri
    (fun i (r : dist_row) ->
      out
        "    {\"workers\": %d, \"evaluations\": %d, \"wall_s\": %s, \
         \"evals_per_sec\": %s, \"identical\": %b}%s\n"
        r.dd_workers r.dd_evaluations (json_float r.dd_wall_s)
        (json_float r.dd_evals_per_sec) r.dd_identical
        (if i = List.length dist - 1 then "" else ","))
    dist;
  out "  ]\n";
  out "}\n";
  close_out oc

(* --- benchmark-regression gate ---------------------------------------- *)

(* The gate reads back its own output format, so a full JSON parser would
   be overkill (and the build has none): each gated key appears exactly
   once, quoted, followed by a colon and a plain number. *)
let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let extract_number content key =
  let pat = "\"" ^ key ^ "\"" in
  let n = String.length content and m = String.length pat in
  let rec find i =
    if i + m > n then None
    else if String.sub content i m = pat then Some (i + m)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
    let j = ref i in
    while
      !j < n && (content.[!j] = ':' || content.[!j] = ' ' || content.[!j] = '\t')
    do
      incr j
    done;
    let k = ref !j in
    while
      !k < n
      &&
      match content.[!k] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr k
    done;
    if !k > !j then float_of_string_opt (String.sub content !j (!k - !j))
    else None

(* Higher-is-better throughput metrics the CI gate guards.  Allocation
   and score metrics are recorded but not gated: minor_words is already
   held down by design, and final_score is checked bit-exactly by the
   test suite, not by a tolerance band. *)
let gated_metrics =
  [
    "evals_per_sec";
    "events_per_sec";
    "acks_per_sec";
    "lookups_per_sec";
    (* Agenda hold throughput at simulator-scale pending counts. *)
    "wheel_hold4096_ops_per_sec";
    "heap_hold4096_ops_per_sec";
    (* Flow-scale end-to-end throughput (wheel+fleet arm) at the
       4096-flow target, plus its baseline arm so the pre-PR
       architecture cannot silently rot either. *)
    "incast4096_events_per_sec";
    "incast4096_acks_per_sec";
    "parkinglot4096_events_per_sec";
    (* Ratio metrics: both arms run back-to-back in one process, so
       these survive machine-wide speed swings that would trip the
       absolute rates above. *)
    "hold4096_ratio";
    "incast4096_speedup";
  ]

let run_gate ?(metrics = gated_metrics) ~tolerance ~candidate ~baseline () =
  let cand = read_file candidate and base = read_file baseline in
  Printf.printf "comparing %s against baseline %s (tolerance %.0f%%)\n" candidate
    baseline (100. *. tolerance);
  (match (extract_number cand "cores", extract_number base "cores") with
  | Some c, Some b when c <> b ->
    Printf.printf
      "warning: host core counts differ (candidate %g, baseline %g); throughput \
       ratios may reflect the machine, not the code\n"
      c b
  | _ -> ());
  let failures = ref 0 in
  List.iter
    (fun key ->
      match (extract_number cand key, extract_number base key) with
      | Some c, Some b when b > 0. ->
        let ratio = c /. b in
        let verdict =
          if ratio < 1. -. tolerance then (
            incr failures;
            "FAIL")
          else "ok"
        in
        Printf.printf "%-22s baseline %14.1f  candidate %14.1f  %5.2fx  %s\n" key
          b c ratio verdict
      | None, _ -> Printf.printf "%-22s missing in candidate; skipped\n" key
      | _, None -> Printf.printf "%-22s missing in baseline; skipped\n" key
      | Some _, Some _ -> Printf.printf "%-22s baseline non-positive; skipped\n" key)
    metrics;
  if !failures > 0 then
    Printf.printf "regression gate: FAIL (%d metric(s) regressed by more than %.0f%%)\n"
      !failures (100. *. tolerance)
  else
    Printf.printf "regression gate: ok (all gated metrics within %.0f%% of baseline)\n"
      (100. *. tolerance);
  !failures = 0

(* --- experiment driver ------------------------------------------------ *)

let run full only micro_only replications duration seed out json smoke
    bench_domains compare_base gate_candidate tolerance gate_metrics obs
    minor_heap_mb =
  let fmt = Format.std_formatter in
  (* Minor-heap sizing knob for allocation-sensitive runs: a larger
     nursery means fewer minor collections per simulated second. *)
  (match minor_heap_mb with
  | Some mb -> Gc.set { (Gc.get ()) with Gc.minor_heap_size = mb * 1024 * 1024 / 8 }
  | None -> ());
  let metrics =
    match gate_metrics with [] -> gated_metrics | keys -> keys
  in
  if obs then begin
    Remy_obs.Metrics.enable ();
    Remy_obs.Profiler.enable ()
  end;
  match (gate_candidate, json) with
  | Some candidate, _ -> (
    (* Pure file-vs-file comparison: no benchmarks run.  Used by CI to
       gate a fresh results file against the committed baseline (and to
       self-test that the gate trips on a seeded slowdown). *)
    match compare_base with
    | None ->
      prerr_endline "bench: --gate requires --compare BASELINE.json";
      exit 2
    | Some baseline ->
      if not (run_gate ~metrics ~tolerance ~candidate ~baseline ()) then exit 1)
  | None, Some path ->
    (* Machine-readable mode: the optimizer-throughput macrobench, then
       the simulator-only microbench, then bechamel microbenchmarks,
       written as one JSON document for perf trajectories.  The
       macrobench goes first so bechamel's heap churn cannot distort the
       timed training run. *)
    let t0 = Remy_obs.Clock.now_s () in
    let manifest_path = path ^ ".manifest.json" in
    let manifest0 = Remy_obs.Manifest.make ~tool:"bench" ~seed () in
    let write_manifest m =
      try Remy_obs.Manifest.write ~path:manifest_path m
      with Sys_error msg ->
        Printf.eprintf "warning: cannot write manifest: %s\n%!" msg
    in
    write_manifest manifest0;
    Format.fprintf fmt "running optimizer macrobench (domains=%d%s)...@."
      bench_domains
      (if smoke then ", smoke" else "");
    let macro = Remy_obs.Profiler.span "macro" (fun () ->
        run_macro ~domains:bench_domains ~smoke)
    in
    pp_macro fmt macro;
    Format.fprintf fmt "running simulator microbench...@.";
    let sim = Remy_obs.Profiler.span "sim_micro" (fun () -> run_sim_bench ~smoke) in
    pp_sim fmt sim;
    Format.fprintf fmt "running wheel-vs-heap hold benchmark...@.";
    let hold =
      Remy_obs.Profiler.span "wheel_vs_heap" (fun () -> run_wheel_vs_heap ~smoke)
    in
    pp_hold fmt hold;
    Format.fprintf fmt "running flow-scale benchmark...@.";
    let scale =
      Remy_obs.Profiler.span "sim_scale" (fun () -> run_sim_scale ~smoke)
    in
    pp_scale fmt scale;
    Format.fprintf fmt
      "running distributed-training bench (spawned workers)...@.";
    let dist =
      Remy_obs.Profiler.span "dist" (fun () ->
          run_dist ~smoke ~reference_tree:macro.mr_tree)
    in
    pp_dist fmt dist;
    Format.fprintf fmt "running microbenchmarks...@.";
    let rows = Remy_obs.Profiler.span "bechamel" micro_rows in
    write_json path rows macro sim hold scale dist;
    Format.fprintf fmt "wrote %s@." path;
    write_manifest
      (Remy_obs.Manifest.finalize manifest0 ~status:"completed"
         ~wall_s:(Remy_obs.Clock.now_s () -. t0));
    if obs then begin
      let roots = Remy_obs.Profiler.snapshot () in
      let dump p contents =
        try
          let oc = open_out p in
          output_string oc contents;
          close_out oc;
          Format.fprintf fmt "wrote %s@." p
        with Sys_error msg ->
          Printf.eprintf "warning: cannot write profile %s: %s\n%!" p msg
      in
      dump (path ^ ".profile") (Remy_obs.Profiler.to_collapsed roots);
      dump (path ^ ".profile.json") (Remy_obs.Profiler.to_json roots)
    end;
    (match compare_base with
    | Some baseline ->
      if not (run_gate ~metrics ~tolerance ~candidate:path ~baseline ()) then
        exit 1
    | None -> ())
  | None, None ->
  let base = if full then Figures.full else Figures.quick in
  let opts =
    {
      Figures.replications =
        (match replications with Some r -> r | None -> base.Figures.replications);
      duration = (match duration with Some d -> d | None -> base.Figures.duration);
      base_seed = seed;
      progress = (fun msg -> Format.printf "[bench] %s@." msg);
      artifact_dir = out;
    }
  in
  Format.fprintf fmt
    "TCP ex Machina reproduction benchmarks (replications=%d, duration=%.0fs, \
     seed=%d)@."
    opts.Figures.replications opts.Figures.duration opts.Figures.base_seed;
  if not micro_only then begin
    let selected =
      match only with
      | [] -> Figures.all
      | ids ->
        List.filter_map
          (fun id ->
            match List.assoc_opt id Figures.all with
            | Some f -> Some (id, f)
            | None ->
              Format.eprintf "unknown experiment %S (known: %s)@." id
                (String.concat ", " (List.map fst Figures.all));
              exit 1)
          ids
    in
    List.iter
      (fun (id, f) ->
        let t0 = Unix.gettimeofday () in
        f fmt opts;
        Format.fprintf fmt "@.[%s finished in %.1f s]@." id
          (Unix.gettimeofday () -. t0))
      selected
  end;
  if micro_only || only = [] then run_micro fmt

let cmd =
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale runs (hours).") in
  let only =
    Arg.(
      value
      & opt (list string) []
      & info [ "only" ] ~doc:"Comma-separated experiment ids (e.g. fig4,fig10).")
  in
  let micro = Arg.(value & flag & info [ "micro" ] ~doc:"Microbenchmarks only.") in
  let replications =
    Arg.(value & opt (some int) None & info [ "replications" ] ~doc:"Override.")
  in
  let duration =
    Arg.(value & opt (some float) None & info [ "duration" ] ~doc:"Override, s.")
  in
  let seed = Arg.(value & opt int 7000 & info [ "seed" ] ~doc:"Base seed.") in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~doc:"Directory for gnuplot-ready TSV data files.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ]
          ~doc:
            "Write machine-readable results (microbench ns/run + the optimizer \
             throughput macrobench) to $(docv) and skip the figure experiments."
          ~docv:"FILE")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Shrink the macrobench for CI (fewer epochs/specimens/rounds).")
  in
  let bench_domains =
    Arg.(
      value & opt int 4
      & info [ "bench-domains" ] ~doc:"Domain-pool size for the macrobench.")
  in
  let compare_base =
    Arg.(
      value
      & opt (some string) None
      & info [ "compare" ]
          ~doc:
            "Baseline results file.  With --json, gate the fresh results \
             against it after the run; with --gate, compare two existing \
             files.  Exits 1 if any gated throughput metric (evals/s, \
             events/s, acks/s, lookups/s) falls more than --tolerance below \
             the baseline."
          ~docv:"FILE")
  in
  let gate_candidate =
    Arg.(
      value
      & opt (some string) None
      & info [ "gate" ]
          ~doc:
            "Run only the regression gate on an existing results file \
             (against --compare), without benchmarking."
          ~docv:"FILE")
  in
  let tolerance =
    Arg.(
      value & opt float 0.15
      & info [ "tolerance" ]
          ~doc:"Allowed fractional slowdown before --compare fails (0.15 = 15%).")
  in
  let gate_metrics =
    Arg.(
      value
      & opt (list string) []
      & info [ "gate-metrics" ]
          ~doc:
            "Comma-separated metric keys for the regression gate (default: \
             evals_per_sec, events_per_sec, acks_per_sec, lookups_per_sec, \
             the 4096-pending agenda hold rates, and the 4096-flow \
             incast/parking-lot scale rates).  CI's obs-overhead job gates \
             only evals_per_sec with a tight tolerance.")
  in
  let obs =
    Arg.(
      value & flag
      & info [ "obs" ]
          ~doc:
            "Enable runtime histograms and the span profiler during the \
             benchmarks; with --json, also write <FILE>.profile (collapsed \
             stacks) and <FILE>.profile.json.  Used by CI to bound \
             observability overhead.")
  in
  let minor_heap_mb =
    Arg.(
      value
      & opt (some int) None
      & info [ "minor-heap-mb" ]
          ~doc:"Set the GC minor heap to $(docv) MiB before running."
          ~docv:"MIB")
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Reproduce the paper's tables and figures")
    Term.(
      const run $ full $ only $ micro $ replications $ duration $ seed $ out
      $ json $ smoke $ bench_domains $ compare_base $ gate_candidate $ tolerance
      $ gate_metrics $ obs $ minor_heap_mb)

let () =
  (* Re-exec'd dist-bench worker child: serve the wire protocol on stdin
     (the socketpair end Coordinator.Spawn installs there) and exit
     before cmdliner ever parses. *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = dist_worker_arg then
    match Remy_dist.Worker.serve Unix.stdin with
    | () -> exit 0
    | exception Remy_dist.Worker.Protocol_error m ->
        prerr_endline m;
        exit 1

let () = exit (Cmd.eval cmd)
