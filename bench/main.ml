(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index) plus Bechamel
   microbenchmarks of the core primitives.

     dune exec bench/main.exe                 # all experiments, scaled down
     dune exec bench/main.exe -- --only fig4  # one experiment
     dune exec bench/main.exe -- --full       # paper-scale (hours)
     dune exec bench/main.exe -- --micro      # microbenchmarks only *)

open Cmdliner
module Figures = Remy_scenarios.Figures

(* --- Bechamel microbenchmarks ---------------------------------------- *)

let micro_tests () =
  let open Bechamel in
  let open Remy_util in
  let prng = Prng.create 1 in
  let prng_test =
    Test.make ~name:"prng/bits64" (Staged.stage (fun () -> ignore (Prng.bits64 prng)))
  in
  let heap_test =
    Test.make ~name:"heap/push+pop-64"
      (Staged.stage (fun () ->
           let h = Heap.create () in
           for i = 0 to 63 do
             Heap.push h (float_of_int (i * 7919 mod 64)) i
           done;
           while not (Heap.is_empty h) do
             ignore (Heap.pop h)
           done))
  in
  let ewma = Ewma.create_at ~alpha:0.125 0. in
  let ewma_test =
    Test.make ~name:"ewma/update" (Staged.stage (fun () -> Ewma.update ewma 1.5))
  in
  let tracker = Remy.Memory.tracker () in
  let memory_test =
    Test.make ~name:"memory/on_ack"
      (Staged.stage (fun () ->
           ignore
             (Remy.Memory.on_ack tracker ~sent_at:1.0 ~received_at:1.1 ~rtt:0.1)))
  in
  (* A realistically subdivided rule table for lookup costs. *)
  let tree = Remy.Rule_tree.create () in
  let seed_rng = Prng.create 5 in
  for _ = 1 to 3 do
    let ids = Remy.Rule_tree.live_ids tree in
    let id = List.nth ids (Prng.int seed_rng (List.length ids)) in
    ignore
      (Remy.Rule_tree.subdivide tree id
         ~at:
           (Remy.Memory.make
              ~ack_ewma:(Prng.float seed_rng 100.)
              ~send_ewma:(Prng.float seed_rng 100.)
              ~rtt_ratio:(Prng.float seed_rng 4.)))
  done;
  let probe = Remy.Memory.make ~ack_ewma:12.5 ~send_ewma:11.0 ~rtt_ratio:1.3 in
  let lookup_test =
    Test.make ~name:"rule_tree/lookup"
      (Staged.stage (fun () -> ignore (Remy.Rule_tree.lookup tree probe)))
  in
  let engine_test =
    Test.make ~name:"engine/schedule+run-64"
      (Staged.stage (fun () ->
           let e = Remy_sim.Engine.create () in
           for i = 0 to 63 do
             Remy_sim.Engine.schedule e (float_of_int i *. 0.001) (fun () -> ())
           done;
           Remy_sim.Engine.run e ~until:1.))
  in
  let codel_q = Remy_sim.Codel.create ~capacity:1000 () in
  let codel_test =
    Test.make ~name:"codel/enq+deq"
      (Staged.stage (fun () ->
           let pkt = Remy_sim.Packet.make ~flow:0 ~seq:0 ~conn:0 ~now:0. () in
           ignore (codel_q.Remy_sim.Qdisc.enqueue ~now:0. pkt);
           ignore (codel_q.Remy_sim.Qdisc.dequeue ~now:0.001)))
  in
  Test.make_grouped ~name:"remy"
    [
      prng_test; heap_test; ewma_test; memory_test; lookup_test; engine_test;
      codel_test;
    ]

let micro_rows () =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> est
          | Some [] | None -> nan
        in
        let r2 =
          match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
        in
        (name, ns, r2) :: acc)
      results []
  in
  List.sort compare rows

let run_micro fmt =
  Format.fprintf fmt "@.==== Microbenchmarks (Bechamel, OLS time per run) ====@.@.";
  let rows = micro_rows () in
  Format.fprintf fmt "%-32s %14s %8s@." "benchmark" "time/run (ns)" "r^2";
  List.iter
    (fun (name, ns, r2) -> Format.fprintf fmt "%-32s %14.1f %8.3f@." name ns r2)
    rows

(* --- optimizer-throughput macrobench ---------------------------------- *)

(* A fixed small training config (onex model, k = 1 so the rule table
   subdivides every epoch and the incremental cache has rules to skip).
   Reported as candidate evaluations per second of wall time; the
   evaluation count is deterministic, so the ratio between two builds is
   a pure wall-time speedup. *)
type macro_result = {
  mr_domains : int;
  mr_smoke : bool;
  mr_evaluations : int;
  mr_wall_s : float;
  mr_evals_per_sec : float;
  mr_spec_sims : int;
  mr_spec_skips : int;
  mr_pool_jobs : int;
  mr_pool_tasks : int;
  mr_pool_helper_tasks : int;
  mr_rules : int;
  mr_final_score : float;
}

let run_macro ~domains ~smoke =
  let open Remy in
  let model = Net_model.onex ~sim_duration:1.0 () in
  let config =
    Optimizer.default_config
      ~specimens_per_step:(if smoke then 3 else 4)
      ~domains ~k_subdivide:1 ~candidate_multipliers:[ 1.; 8. ]
      ~rounds_per_rule:(if smoke then 1 else 2)
      ~max_epochs:(if smoke then 2 else 3)
      ~wall_budget_s:600. ~seed:42 ~model
      ~objective:(Objective.proportional ~delta:1.0) ()
  in
  let before = Par.stats () in
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  let report = Optimizer.design config in
  let wall = Unix.gettimeofday () -. t0 in
  let after = Par.stats () in
  {
    mr_domains = domains;
    mr_smoke = smoke;
    mr_evaluations = report.Optimizer.evaluations;
    mr_wall_s = wall;
    mr_evals_per_sec = float_of_int report.Optimizer.evaluations /. wall;
    mr_spec_sims = report.Optimizer.spec_sims;
    mr_spec_skips = report.Optimizer.spec_skips;
    mr_pool_jobs = after.Par.pool_jobs - before.Par.pool_jobs;
    mr_pool_tasks = after.Par.pool_tasks - before.Par.pool_tasks;
    mr_pool_helper_tasks = after.Par.pool_helper_tasks - before.Par.pool_helper_tasks;
    mr_rules = Rule_tree.num_rules report.Optimizer.tree;
    mr_final_score = report.Optimizer.final_score;
  }

let pp_macro fmt (m : macro_result) =
  Format.fprintf fmt
    "@.==== Optimizer macrobench (domains=%d%s) ====@.@.%d evaluations in %.2f s \
     = %.1f evals/s; %d specimen sims, %d skipped; %d pool jobs, %d tasks (%d by \
     helpers); %d rules, final score %.4f@."
    m.mr_domains
    (if m.mr_smoke then ", smoke" else "")
    m.mr_evaluations m.mr_wall_s m.mr_evals_per_sec m.mr_spec_sims m.mr_spec_skips
    m.mr_pool_jobs m.mr_pool_tasks m.mr_pool_helper_tasks m.mr_rules
    m.mr_final_score

(* --- machine-readable output ------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6g" f
  else Printf.sprintf "\"%s\"" (Float.to_string f)

let write_json path micro (macro : macro_result) =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": \"remy-bench-v1\",\n";
  out "  \"micro\": [\n";
  List.iteri
    (fun i (name, ns, r2) ->
      out "    {\"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s}%s\n"
        (json_escape name) (json_float ns) (json_float r2)
        (if i = List.length micro - 1 then "" else ","))
    micro;
  out "  ],\n";
  out "  \"optimizer_macrobench\": {\n";
  out "    \"domains\": %d,\n" macro.mr_domains;
  out "    \"smoke\": %b,\n" macro.mr_smoke;
  out "    \"evaluations\": %d,\n" macro.mr_evaluations;
  out "    \"wall_s\": %s,\n" (json_float macro.mr_wall_s);
  out "    \"evals_per_sec\": %s,\n" (json_float macro.mr_evals_per_sec);
  out "    \"spec_sims\": %d,\n" macro.mr_spec_sims;
  out "    \"spec_skips\": %d,\n" macro.mr_spec_skips;
  out "    \"pool_jobs\": %d,\n" macro.mr_pool_jobs;
  out "    \"pool_tasks\": %d,\n" macro.mr_pool_tasks;
  out "    \"pool_helper_tasks\": %d,\n" macro.mr_pool_helper_tasks;
  out "    \"rules\": %d,\n" macro.mr_rules;
  out "    \"final_score\": %s\n" (json_float macro.mr_final_score);
  out "  }\n";
  out "}\n";
  close_out oc

(* --- experiment driver ------------------------------------------------ *)

let run full only micro_only replications duration seed out json smoke
    bench_domains =
  let fmt = Format.std_formatter in
  match json with
  | Some path ->
    (* Machine-readable mode: the optimizer-throughput macrobench, then
       microbenchmarks, written as one JSON document for perf
       trajectories.  The macrobench goes first so bechamel's heap churn
       cannot distort the timed training run. *)
    Format.fprintf fmt "running optimizer macrobench (domains=%d%s)...@."
      bench_domains
      (if smoke then ", smoke" else "");
    let macro = run_macro ~domains:bench_domains ~smoke in
    pp_macro fmt macro;
    Format.fprintf fmt "running microbenchmarks...@.";
    let rows = micro_rows () in
    write_json path rows macro;
    Format.fprintf fmt "wrote %s@." path
  | None ->
  let base = if full then Figures.full else Figures.quick in
  let opts =
    {
      Figures.replications =
        (match replications with Some r -> r | None -> base.Figures.replications);
      duration = (match duration with Some d -> d | None -> base.Figures.duration);
      base_seed = seed;
      progress = (fun msg -> Format.printf "[bench] %s@." msg);
      artifact_dir = out;
    }
  in
  Format.fprintf fmt
    "TCP ex Machina reproduction benchmarks (replications=%d, duration=%.0fs, \
     seed=%d)@."
    opts.Figures.replications opts.Figures.duration opts.Figures.base_seed;
  if not micro_only then begin
    let selected =
      match only with
      | [] -> Figures.all
      | ids ->
        List.filter_map
          (fun id ->
            match List.assoc_opt id Figures.all with
            | Some f -> Some (id, f)
            | None ->
              Format.eprintf "unknown experiment %S (known: %s)@." id
                (String.concat ", " (List.map fst Figures.all));
              exit 1)
          ids
    in
    List.iter
      (fun (id, f) ->
        let t0 = Unix.gettimeofday () in
        f fmt opts;
        Format.fprintf fmt "@.[%s finished in %.1f s]@." id
          (Unix.gettimeofday () -. t0))
      selected
  end;
  if micro_only || only = [] then run_micro fmt

let cmd =
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale runs (hours).") in
  let only =
    Arg.(
      value
      & opt (list string) []
      & info [ "only" ] ~doc:"Comma-separated experiment ids (e.g. fig4,fig10).")
  in
  let micro = Arg.(value & flag & info [ "micro" ] ~doc:"Microbenchmarks only.") in
  let replications =
    Arg.(value & opt (some int) None & info [ "replications" ] ~doc:"Override.")
  in
  let duration =
    Arg.(value & opt (some float) None & info [ "duration" ] ~doc:"Override, s.")
  in
  let seed = Arg.(value & opt int 7000 & info [ "seed" ] ~doc:"Base seed.") in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~doc:"Directory for gnuplot-ready TSV data files.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ]
          ~doc:
            "Write machine-readable results (microbench ns/run + the optimizer \
             throughput macrobench) to $(docv) and skip the figure experiments."
          ~docv:"FILE")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Shrink the macrobench for CI (fewer epochs/specimens/rounds).")
  in
  let bench_domains =
    Arg.(
      value & opt int 4
      & info [ "bench-domains" ] ~doc:"Domain-pool size for the macrobench.")
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Reproduce the paper's tables and figures")
    Term.(
      const run $ full $ only $ micro $ replications $ duration $ seed $ out
      $ json $ smoke $ bench_domains)

let () = exit (Cmd.eval cmd)
