(* Design your own congestion-control algorithm (Section 4).

     dune exec examples/design_your_own.exe

   The whole point of the paper: state your assumptions about the
   network and your objective, and let the optimizer derive the
   endpoint algorithm.  This example designs a protocol for a tiny,
   fully-known network in about a minute, then shows the rule table it
   discovered and how it performs.  Notice that the optimizer tends to
   rediscover the link's bandwidth-delay product on its own. *)

open Remy

let () =
  (* 1. Prior assumptions: an 8 Mbps link, 100 ms RTT, 1-2 senders. *)
  let model =
    {
      Net_model.min_senders = 1;
      max_senders = 2;
      link_mbps = (8., 8.);
      rtt_ms = (100., 100.);
      on_process = Net_model.On_seconds 1.0;
      mean_off_s = 1.0;
      queue_capacity = Remy_sim.Qdisc.unlimited_capacity;
      sim_duration = 6.0;
      topology = None;
    }
  in
  (* 2. Objective: log(throughput) - log(delay). *)
  let objective = Objective.proportional ~delta:1.0 in
  (* 3. Let the machine design the protocol. *)
  let config =
    Optimizer.default_config ~specimens_per_step:6 ~candidate_multipliers:[ 1.; 8. ]
      ~rounds_per_rule:6 ~max_epochs:8 ~wall_budget_s:60. ~seed:7 ~model ~objective
      ()
  in
  Format.printf "Designing a congestion-control algorithm (about a minute)...@.";
  let report = Optimizer.design ~progress:(fun _ -> ()) config in
  Format.printf "@.The machine-designed rule table:@.%a@." Rule_tree.pp
    report.Optimizer.tree;
  Format.printf
    "(For reference: the bandwidth-delay product of this network is %.0f \
     packets,@. and one packet's service time is %.2f ms.)@.@."
    (8e6 /. 8. /. 1500. *. 0.1)
    (1500. *. 8. /. 8e6 *. 1e3);
  (* 4. Check the result against NewReno on the modeled network. *)
  let scenario =
    Remy_scenarios.Scenario.make
      ~service:(Remy_cc.Dumbbell.Rate_mbps 8.)
      ~n:2 ~rtt:0.100
      ~workload:(Remy_sim.Workload.by_time ~mean_on:1.0 ~mean_off:1.0)
      ~duration:30. ~replications:4 ()
  in
  List.iter
    (fun scheme ->
      let s = Remy_scenarios.Scenario.run_scheme scenario scheme in
      Format.printf "  %a@." Remy_scenarios.Scenario.pp_summary_row s)
    [
      Remy_scenarios.Schemes.newreno;
      Remy_scenarios.Schemes.remy ~name:"your RemyCC" report.Optimizer.tree;
    ]
