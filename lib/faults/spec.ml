(* Fault-schedule specifications: the parsed form of `--faults`.

   A spec is a set of fault axes applied to every link plus optional
   per-link overrides.  The concrete syntax is a semicolon-separated
   list of clauses, each optionally scoped to one link:

     [linkN/]AXIS

   with axes

     outage:START+DUR[+PERIOD][,drop]   link down for DUR seconds from
                                        START, repeating every PERIOD;
                                        arrivals park in the queue by
                                        default, `,drop` discards them
     ge:PGB,PBG,LOSSBAD[,LOSSGOOD]      Gilbert-Elliott bursty loss
     reorder:PROB,EXTRA_S               delay a fraction of packets by
                                        EXTRA_S (overtaken = reordered)
     dup:PROB                           duplicate a fraction of packets
     corrupt:PROB                       mark a fraction corrupt (dropped
                                        at link exit, after service)
     rate:MBPS@AT                       set link rate to MBPS at time AT
     ratex:FACTOR@AT                    scale the initial rate by FACTOR
     delay:EXTRA_S@AT                   add EXTRA_S one-way latency from
                                        time AT

   e.g.  "outage:10+2+30;ge:0.01,0.25,0.5;link1/corrupt:0.01"

   Everything is plain data here; [Injector] turns a [link_faults] into
   scheduled events and a qdisc wrapper. *)

type policy = Park | Drop_arrivals

type outage = {
  start_s : float;
  down_s : float;
  period_s : float option;
  policy : policy;
}

type reorder = { reorder_prob : float; reorder_delay_s : float }
type rate_change = Mbps of float | Factor of float
type rate_shift = { rate_at_s : float; change : rate_change }
type delay_shift = { delay_at_s : float; extra_s : float }

type link_faults = {
  outages : outage list;
  ge : Gilbert.params option;
  reorder : reorder option;
  dup_prob : float;
  corrupt_prob : float;
  rate_shifts : rate_shift list;
  delay_shifts : delay_shift list;
}

let empty_link =
  {
    outages = [];
    ge = None;
    reorder = None;
    dup_prob = 0.;
    corrupt_prob = 0.;
    rate_shifts = [];
    delay_shifts = [];
  }

let is_empty_link lf =
  lf.outages = [] && lf.ge = None && lf.reorder = None && lf.dup_prob = 0.
  && lf.corrupt_prob = 0. && lf.rate_shifts = [] && lf.delay_shifts = []

type t = { all : link_faults; per_link : (int * link_faults) list }

let empty = { all = empty_link; per_link = [] }
let is_empty t = is_empty_link t.all && t.per_link = []

(* Per-link view: schedules concatenate, probabilistic axes are
   overridden by a per-link clause when one is present. *)
let for_link t li =
  match List.assoc_opt li t.per_link with
  | None -> t.all
  | Some o ->
    {
      outages = t.all.outages @ o.outages;
      ge = (match o.ge with Some _ -> o.ge | None -> t.all.ge);
      reorder = (match o.reorder with Some _ -> o.reorder | None -> t.all.reorder);
      dup_prob = (if o.dup_prob > 0. then o.dup_prob else t.all.dup_prob);
      corrupt_prob =
        (if o.corrupt_prob > 0. then o.corrupt_prob else t.all.corrupt_prob);
      rate_shifts = t.all.rate_shifts @ o.rate_shifts;
      delay_shifts = t.all.delay_shifts @ o.delay_shifts;
    }

(* --- parsing ---------------------------------------------------------- *)

let ( let* ) = Result.bind

let float_arg clause s =
  match float_of_string_opt (String.trim s) with
  | Some f when Float.is_finite f -> Ok f
  | _ -> Error (Printf.sprintf "faults: bad number %S in %S" s clause)

let prob_arg clause s =
  let* f = float_arg clause s in
  if f < 0. || f > 1. then
    Error (Printf.sprintf "faults: probability %g outside [0, 1] in %S" f clause)
  else Ok f

let split_on c s = String.split_on_char c s |> List.map String.trim

let parse_outage clause args =
  let args, policy =
    match split_on ',' args with
    | [ nums ] -> (nums, Ok Park)
    | [ nums; "drop" ] -> (nums, Ok Drop_arrivals)
    | [ nums; "park" ] -> (nums, Ok Park)
    | _ -> (args, Error (Printf.sprintf "faults: bad outage flags in %S" clause))
  in
  let* policy = policy in
  let* start_s, down_s, period_s =
    match split_on '+' args with
    | [ a; b ] ->
      let* a = float_arg clause a in
      let* b = float_arg clause b in
      Ok (a, b, None)
    | [ a; b; p ] ->
      let* a = float_arg clause a in
      let* b = float_arg clause b in
      let* p = float_arg clause p in
      Ok (a, b, Some p)
    | _ ->
      Error
        (Printf.sprintf "faults: outage wants START+DUR[+PERIOD], got %S" clause)
  in
  if start_s < 0. || down_s <= 0. then
    Error (Printf.sprintf "faults: outage needs START >= 0, DUR > 0 in %S" clause)
  else
    match period_s with
    | Some p when p <= down_s ->
      Error (Printf.sprintf "faults: outage PERIOD must exceed DUR in %S" clause)
    | _ -> Ok { start_s; down_s; period_s; policy }

let parse_ge clause args =
  let* p =
    match split_on ',' args with
    | [ gb; bg; lb ] ->
      let* p_gb = prob_arg clause gb in
      let* p_bg = prob_arg clause bg in
      let* loss_bad = prob_arg clause lb in
      Ok { Gilbert.p_gb; p_bg; loss_good = 0.; loss_bad }
    | [ gb; bg; lb; lg ] ->
      let* p_gb = prob_arg clause gb in
      let* p_bg = prob_arg clause bg in
      let* loss_bad = prob_arg clause lb in
      let* loss_good = prob_arg clause lg in
      Ok { Gilbert.p_gb; p_bg; loss_good; loss_bad }
    | _ ->
      Error
        (Printf.sprintf "faults: ge wants PGB,PBG,LOSSBAD[,LOSSGOOD], got %S"
           clause)
  in
  Gilbert.validate p

let parse_at clause args =
  match split_on '@' args with
  | [ v; at ] ->
    let* v = float_arg clause v in
    let* at = float_arg clause at in
    if at < 0. then
      Error (Printf.sprintf "faults: time %g before 0 in %S" at clause)
    else Ok (v, at)
  | _ -> Error (Printf.sprintf "faults: %S wants VALUE@TIME" clause)

let parse_axis lf clause =
  match String.index_opt clause ':' with
  | None -> Error (Printf.sprintf "faults: clause %S has no axis arguments" clause)
  | Some i ->
    let axis = String.trim (String.sub clause 0 i) in
    let args = String.sub clause (i + 1) (String.length clause - i - 1) in
    (match axis with
    | "outage" ->
      let* o = parse_outage clause args in
      Ok { lf with outages = lf.outages @ [ o ] }
    | "ge" ->
      let* ge = parse_ge clause args in
      Ok { lf with ge = Some ge }
    | "reorder" ->
      (match split_on ',' args with
      | [ p; d ] ->
        let* reorder_prob = prob_arg clause p in
        let* reorder_delay_s = float_arg clause d in
        if reorder_delay_s <= 0. then
          Error (Printf.sprintf "faults: reorder delay must be > 0 in %S" clause)
        else Ok { lf with reorder = Some { reorder_prob; reorder_delay_s } }
      | _ -> Error (Printf.sprintf "faults: reorder wants PROB,EXTRA_S in %S" clause))
    | "dup" ->
      let* p = prob_arg clause args in
      Ok { lf with dup_prob = p }
    | "corrupt" ->
      let* p = prob_arg clause args in
      Ok { lf with corrupt_prob = p }
    | "rate" ->
      let* mbps, rate_at_s = parse_at clause args in
      if mbps <= 0. then
        Error (Printf.sprintf "faults: rate must be > 0 Mbps in %S" clause)
      else
        Ok
          {
            lf with
            rate_shifts = lf.rate_shifts @ [ { rate_at_s; change = Mbps mbps } ];
          }
    | "ratex" ->
      let* factor, rate_at_s = parse_at clause args in
      if factor <= 0. then
        Error (Printf.sprintf "faults: ratex factor must be > 0 in %S" clause)
      else
        Ok
          {
            lf with
            rate_shifts =
              lf.rate_shifts @ [ { rate_at_s; change = Factor factor } ];
          }
    | "delay" ->
      let* extra_s, delay_at_s = parse_at clause args in
      if extra_s < 0. then
        Error (Printf.sprintf "faults: delay must be >= 0 in %S" clause)
      else
        Ok
          {
            lf with
            delay_shifts = lf.delay_shifts @ [ { delay_at_s; extra_s } ];
          }
    | _ -> Error (Printf.sprintf "faults: unknown axis %S in %S" axis clause))

(* "linkN/<axis>" scopes a clause to link index N (topology link order;
   the dumbbell's single bottleneck is link 0). *)
let parse_scope clause =
  match String.index_opt clause '/' with
  | Some i
    when i > 4
         && String.sub clause 0 4 = "link"
         && (match int_of_string_opt (String.sub clause 4 (i - 4)) with
            | Some li -> li >= 0
            | None -> false) ->
    let li = int_of_string (String.sub clause 4 (i - 4)) in
    (Some li, String.sub clause (i + 1) (String.length clause - i - 1))
  | _ -> (None, clause)

let parse s =
  let clauses =
    split_on ';' s |> List.filter (fun c -> String.length c > 0)
  in
  if clauses = [] then Error "faults: empty spec"
  else
    List.fold_left
      (fun acc clause ->
        let* t = acc in
        let scope, body = parse_scope clause in
        match scope with
        | None ->
          let* all = parse_axis t.all body in
          Ok { t with all }
        | Some li ->
          let prev =
            Option.value (List.assoc_opt li t.per_link) ~default:empty_link
          in
          let* lf = parse_axis prev body in
          Ok
            {
              t with
              per_link = (li, lf) :: List.remove_assoc li t.per_link;
            })
      (Ok empty) clauses

(* --- printing --------------------------------------------------------- *)

let clauses_of_link lf =
  let num f =
    (* %.12g round-trips every float we parse while keeping specs short. *)
    Printf.sprintf "%.12g" f
  in
  List.map
    (fun o ->
      Printf.sprintf "outage:%s+%s%s%s" (num o.start_s) (num o.down_s)
        (match o.period_s with Some p -> "+" ^ num p | None -> "")
        (match o.policy with Drop_arrivals -> ",drop" | Park -> ""))
    lf.outages
  @ (match lf.ge with
    | Some g ->
      [
        Printf.sprintf "ge:%s,%s,%s,%s" (num g.Gilbert.p_gb) (num g.Gilbert.p_bg)
          (num g.Gilbert.loss_bad) (num g.Gilbert.loss_good);
      ]
    | None -> [])
  @ (match lf.reorder with
    | Some r ->
      [ Printf.sprintf "reorder:%s,%s" (num r.reorder_prob) (num r.reorder_delay_s) ]
    | None -> [])
  @ (if lf.dup_prob > 0. then [ Printf.sprintf "dup:%s" (num lf.dup_prob) ] else [])
  @ (if lf.corrupt_prob > 0. then
       [ Printf.sprintf "corrupt:%s" (num lf.corrupt_prob) ]
     else [])
  @ List.map
      (fun r ->
        match r.change with
        | Mbps m -> Printf.sprintf "rate:%s@%s" (num m) (num r.rate_at_s)
        | Factor f -> Printf.sprintf "ratex:%s@%s" (num f) (num r.rate_at_s))
      lf.rate_shifts
  @ List.map
      (fun d -> Printf.sprintf "delay:%s@%s" (num d.extra_s) (num d.delay_at_s))
      lf.delay_shifts

let to_string t =
  let scoped =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) t.per_link
    |> List.concat_map (fun (li, lf) ->
           List.map (fun c -> Printf.sprintf "link%d/%s" li c) (clauses_of_link lf))
  in
  String.concat ";" (clauses_of_link t.all @ scoped)

(* --- presets ---------------------------------------------------------- *)

let presets =
  [
    (* One-second blackouts every 10 s: the outage/flap axis. *)
    ("flaky", "outage:5+1+10");
    (* Bursty loss, ~3.8% stationary with mean burst of 4 packets. *)
    ("bursty", "ge:0.01,0.25,0.5");
    (* Path churn: reordering, duplication and a little corruption. *)
    ("jitter", "reorder:0.05,0.005;dup:0.01;corrupt:0.002");
    (* Mid-run capacity halving plus 20 ms extra latency. *)
    ("degrade", "ratex:0.5@30;delay:0.02@30");
    (* One long outage: exercises RTO backoff and idle restart. *)
    ("blackout", "outage:10+3");
  ]

let of_arg s =
  (* Scripting convenience: --faults "" (an unset shell variable) means
     no faults, exactly like omitting the flag. *)
  if String.trim s = "" then Ok empty
  else
    match List.assoc_opt (String.trim s) presets with
    | Some spec -> parse spec
    | None -> parse s
