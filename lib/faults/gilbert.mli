(** Gilbert–Elliott two-state Markov (bursty) packet loss.

    Generalizes {!Remy_sim.Lossy}'s i.i.d. loss: a Good state with
    [loss_good] drop probability and a Bad state with [loss_bad], with
    per-packet transition probabilities [p_gb] (good to bad) and [p_bg]
    (bad to good).  Mean bad-burst length is [1 / p_bg] packets; the
    chain spends fraction [p_gb / (p_gb + p_bg)] of packets bad. *)

type params = {
  p_gb : float;  (** P(good to bad) per packet, in [0, 1] *)
  p_bg : float;  (** P(bad to good) per packet, in [0, 1] *)
  loss_good : float;  (** drop probability in the good state *)
  loss_bad : float;  (** drop probability in the bad state *)
}

val validate : params -> (params, string) result
(** Reject probabilities outside [0, 1] (or NaN). *)

val stationary_bad : params -> float
(** Stationary probability of the bad state ([0] when both transition
    probabilities are zero: the chain never leaves its initial state). *)

val stationary_loss : params -> float
(** Long-run expected drop rate under the stationary distribution. *)

type t

val create : seed:int -> params -> t
(** The chain's own PRNG stream derives from [seed] alone; the initial
    state is drawn from the stationary distribution so empirical loss
    converges to {!stationary_loss} without a mixing transient. *)

val step_drop : t -> bool
(** Advance the chain one packet (transition, then a loss draw in the
    resulting state) and report whether that packet is dropped. *)

val in_bad_state : t -> bool
