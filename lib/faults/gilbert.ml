open Remy_util

(* The classic two-state Markov loss model (Gilbert 1960, Elliott 1963):
   a Good state with low (usually zero) loss and a Bad state with high
   loss, with per-packet transition probabilities between them.  This
   generalizes [Remy_sim.Lossy]'s i.i.d. model — set [p_gb = p_bg] and
   equal loss rates to recover it — while producing the *bursts* of
   consecutive loss that real radio links and overflowing FIFOs show.

   Mean burst length in the bad state is 1/p_bg packets; the stationary
   probability of being bad is p_gb / (p_gb + p_bg). *)

type params = {
  p_gb : float;  (* P(good -> bad) per packet *)
  p_bg : float;  (* P(bad -> good) per packet *)
  loss_good : float;  (* drop probability while good *)
  loss_bad : float;  (* drop probability while bad *)
}

let validate p =
  let prob name v =
    if Float.is_nan v || v < 0. || v > 1. then
      Error (Printf.sprintf "gilbert: %s = %g outside [0, 1]" name v)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = prob "p_gb" p.p_gb in
  let* () = prob "p_bg" p.p_bg in
  let* () = prob "loss_good" p.loss_good in
  let* () = prob "loss_bad" p.loss_bad in
  Ok p

let stationary_bad p =
  if p.p_gb +. p.p_bg <= 0. then 0. else p.p_gb /. (p.p_gb +. p.p_bg)

let stationary_loss p =
  let pi_bad = stationary_bad p in
  ((1. -. pi_bad) *. p.loss_good) +. (pi_bad *. p.loss_bad)

type t = { params : params; rng : Prng.t; mutable bad : bool }

(* The initial state is drawn from the stationary distribution, so the
   empirical loss rate converges to [stationary_loss] from packet one
   rather than after a mixing transient. *)
let create ~seed params =
  let rng = Prng.create seed in
  let bad = Prng.float rng 1.0 < stationary_bad params in
  { params; rng; bad }

(* Per packet: transition first, then draw loss in the new state.  One
   fixed draw order keeps the stream reproducible whatever the caller
   composes around it. *)
let step_drop t =
  let p = t.params in
  let flip = Prng.float t.rng 1.0 < if t.bad then p.p_bg else p.p_gb in
  if flip then t.bad <- not t.bad;
  let loss = if t.bad then p.loss_bad else p.loss_good in
  loss > 0. && Prng.float t.rng 1.0 < loss

let in_bad_state t = t.bad
