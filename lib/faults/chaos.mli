(** Chaos harness: process-level fault injection at named points in the
    training pipeline, proving the retry/watchdog/checkpoint machinery
    recovers.

    Chaos points are compiled in as {!hit} calls ([pool-task],
    [checkpoint-write], [checkpoint-saved], [round-end] — see
    {!points}).  With nothing configured — the default, and whenever
    [REMY_CHAOS] is unset — a hit costs one atomic read.

    Directive syntax (comma-separated in [$REMY_CHAOS]):
    - [fail=POINT:NTH] — raise {!Injected} at the NTH hit
    - [stall=POINT:NTH:SECONDS] — block that long (trips the watchdog)
    - [kill=POINT:NTH] — SIGKILL the process (torn-write crash test)
    - [sigint=POINT:NTH] — SIGINT (graceful-shutdown test)
    - [corrupt=POINT:NTH] — flip a byte in the file the point just wrote

    Each directive fires exactly once; hit counts are global across
    domains (mutex-guarded — [Par.Pool] workers hit concurrently). *)

exception Injected of string
(** Raised by a [fail] directive; carries the point name. *)

type action = Fail | Stall of float | Kill | Sigint | Corrupt_file

type directive = {
  point : string;
  nth : int;  (** 1-based hit index at which to fire *)
  action : action;
  mutable fired : bool;
}

val directive : point:string -> nth:int -> action -> directive

val parse : string -> (directive list, string) result

val configure : directive list -> unit
(** Install directives directly (tests).  Resets all hit counts and
    suppresses the [REMY_CHAOS] lookup. *)

val configure_from_env : unit -> unit
(** Re-read [REMY_CHAOS] now (otherwise it is read lazily on first
    {!hit}).  @raise Invalid_argument on a malformed value. *)

val reset : unit -> unit
(** Disarm everything and clear hit counts. *)

val active : unit -> bool

val hit : ?path:string -> string -> unit
(** Mark one execution of a chaos point.  [path] names the file a
    [corrupt] directive at this point would damage. *)

val points : (string * string) list
(** The compiled-in chaos points and where they live. *)

val env_var : string
