(* Process-level fault injection for the training pipeline.

   Named chaos points are compiled into the trainer — [Par.Pool] task
   execution, the checkpoint write path, the optimizer round boundary —
   and each is one [hit] call.  With no directives configured (the
   default, and whenever REMY_CHAOS is unset) a hit is a monotonic-bool
   check and nothing else, so production runs pay nothing.

   A directive arms one action at the Nth hit of one point:

     fail=pool-task:3          raise Injected on the 3rd task           (retry path)
     stall=pool-task:2:1.5     block the 2nd task for 1.5 s             (watchdog)
     kill=checkpoint-write:1   SIGKILL mid-write, tmp file torn         (resume)
     sigint=round-end:1        SIGINT at the 1st round boundary         (graceful stop)
     corrupt=checkpoint-saved:1  flip a byte in the file just written   (CRC + fallback)

   Directives are comma-separated in REMY_CHAOS (or installed directly
   with [configure], for tests).  Each fires exactly once: counting is
   per point, global across domains, mutex-guarded — pool tasks hit
   concurrently and the count must not race. *)

exception Injected of string

type action = Fail | Stall of float | Kill | Sigint | Corrupt_file

type directive = {
  point : string;
  nth : int;  (* 1-based hit index at which to fire *)
  action : action;
  mutable fired : bool;
}

let directive ~point ~nth action = { point; nth; action; fired = false }

type state = {
  mutable directives : directive list;
  counts : (string, int ref) Hashtbl.t;
  mutable initialized : bool;
}

(* Every access goes through [locked] below; the armed flag is the only
   lock-free read. *)
(* remy-lint: allow global-mutable *)
let state = { directives = []; counts = Hashtbl.create 8; initialized = false }
let lock = Mutex.create ()
let locked f = Mutex.protect lock f

(* Cheap armed check read outside the lock: monotonic under configure
   (set before [initialized]), so a stale read only costs taking the
   slow path once. *)
let armed = Atomic.make false

let configure ds =
  locked (fun () ->
      state.directives <- ds;
      Hashtbl.reset state.counts;
      state.initialized <- true;
      Atomic.set armed (ds <> []))

let reset () = configure []
let active () = Atomic.get armed

(* --- directive syntax ------------------------------------------------- *)

let parse_one item =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt item '=' with
  | None -> fail "chaos: %S is not ACTION=POINT:NTH" item
  | Some i ->
    let action = String.sub item 0 i in
    let rest = String.sub item (i + 1) (String.length item - i - 1) in
    let parts = String.split_on_char ':' rest in
    let point_nth () =
      match parts with
      | point :: nth :: _ -> (
        match int_of_string_opt nth with
        | Some n when n >= 1 -> Ok (point, n)
        | _ -> fail "chaos: bad hit index %S in %S" nth item)
      | _ -> fail "chaos: %S wants POINT:NTH" item
    in
    let ( let* ) = Result.bind in
    (match action with
    | "fail" ->
      let* point, nth = point_nth () in
      Ok (directive ~point ~nth Fail)
    | "stall" -> (
      let* point, nth = point_nth () in
      match parts with
      | [ _; _; secs ] -> (
        match float_of_string_opt secs with
        | Some s when s > 0. -> Ok (directive ~point ~nth (Stall s))
        | _ -> fail "chaos: bad stall duration %S in %S" secs item)
      | _ -> fail "chaos: stall wants POINT:NTH:SECONDS in %S" item)
    | "kill" ->
      let* point, nth = point_nth () in
      Ok (directive ~point ~nth Kill)
    | "sigint" ->
      let* point, nth = point_nth () in
      Ok (directive ~point ~nth Sigint)
    | "corrupt" ->
      let* point, nth = point_nth () in
      Ok (directive ~point ~nth Corrupt_file)
    | _ -> fail "chaos: unknown action %S in %S" action item)

let parse s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun item -> String.length item > 0)
  |> List.fold_left
       (fun acc item ->
         Result.bind acc (fun ds ->
             Result.map (fun d -> d :: ds) (parse_one item)))
       (Ok [])
  |> Result.map List.rev

let env_var = "REMY_CHAOS"

let configure_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> configure []
  | Some s -> (
    match parse s with
    | Ok ds -> configure ds
    | Error msg -> invalid_arg (msg ^ " (from $" ^ env_var ^ ")"))

(* --- firing ----------------------------------------------------------- *)

(* Flip one byte near the start of the payload (past any magic header,
   so format sniffing still routes the file to its real loader and the
   CRC check is what must catch it). *)
let corrupt_file path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      if size > 0 then begin
        let off = min (size - 1) 16 in
        let buf = Bytes.create 1 in
        ignore (Unix.lseek fd off Unix.SEEK_SET);
        ignore (Unix.read fd buf 0 1);
        Bytes.set buf 0 (Char.chr (Char.code (Bytes.get buf 0) lxor 0xFF));
        ignore (Unix.lseek fd off Unix.SEEK_SET);
        ignore (Unix.write fd buf 0 1)
      end)

let perform d ~path =
  match d.action with
  | Fail -> raise (Injected d.point)
  | Stall s -> Unix.sleepf s
  | Kill -> Unix.kill (Unix.getpid ()) Sys.sigkill
  | Sigint -> Unix.kill (Unix.getpid ()) Sys.sigint
  | Corrupt_file -> ( match path with Some p -> corrupt_file p | None -> ())

let ensure_init () =
  if not state.initialized then
    locked (fun () -> if not state.initialized then begin
        state.initialized <- true;
        match Sys.getenv_opt env_var with
        | None | Some "" -> ()
        | Some s -> (
          match parse s with
          | Ok ds ->
            state.directives <- ds;
            Atomic.set armed (ds <> [])
          | Error msg -> invalid_arg (msg ^ " (from $" ^ env_var ^ ")"))
      end)

let hit ?path point =
  if Atomic.get armed || not state.initialized then begin
    ensure_init ();
    if Atomic.get armed then begin
      let due =
        locked (fun () ->
            let c =
              match Hashtbl.find_opt state.counts point with
              | Some r -> r
              | None ->
                let r = ref 0 in
                Hashtbl.add state.counts point r;
                r
            in
            incr c;
            List.filter
              (fun d ->
                if (not d.fired) && String.equal d.point point && !c = d.nth
                then begin
                  d.fired <- true;
                  true
                end
                else false)
              state.directives)
      in
      (* Actions run outside the lock: a stall must not serialize every
         other domain's hits behind it, and Fail unwinds the caller. *)
      List.iter (fun d -> perform d ~path) due
    end
  end

let points =
  [
    ("pool-task", "Par.Pool, before executing each task");
    ("checkpoint-write", "Checkpoint.save, after the tmp write, before rename");
    ("checkpoint-saved", "Checkpoint.save, after the atomic publish (path given)");
    ("round-end", "Optimizer.design, at each improvement-round boundary");
  ]
