(** Fault-schedule specifications — the parsed form of [--faults].

    Concrete syntax: semicolon-separated clauses, each optionally scoped
    to one link with a [linkN/] prefix (link indices follow the
    topology's link order; the dumbbell's bottleneck is link 0):

    - [outage:START+DUR[+PERIOD][,drop]] — link down for [DUR] seconds
      from [START], repeating every [PERIOD] if given.  Arrivals during
      an outage park in the queue by default; [,drop] discards them.
    - [ge:PGB,PBG,LOSSBAD[,LOSSGOOD]] — {!Gilbert} bursty loss.
    - [reorder:PROB,EXTRA_S] — hold back a fraction [PROB] of packets by
      [EXTRA_S] seconds so later packets overtake them.
    - [dup:PROB] — duplicate a fraction of packets.
    - [corrupt:PROB] — mark a fraction corrupt; corrupt packets consume
      link capacity and are dropped at link exit.
    - [rate:MBPS@AT] / [ratex:FACTOR@AT] — set the link rate (absolute,
      or a factor of the initial rate) at time [AT].
    - [delay:EXTRA_S@AT] — add one-way latency from time [AT].

    Example: ["outage:10+2+30;ge:0.01,0.25,0.5;link1/corrupt:0.01"]. *)

type policy = Park | Drop_arrivals

type outage = {
  start_s : float;
  down_s : float;
  period_s : float option;
  policy : policy;
}

type reorder = { reorder_prob : float; reorder_delay_s : float }
type rate_change = Mbps of float | Factor of float
type rate_shift = { rate_at_s : float; change : rate_change }
type delay_shift = { delay_at_s : float; extra_s : float }

type link_faults = {
  outages : outage list;
  ge : Gilbert.params option;
  reorder : reorder option;
  dup_prob : float;
  corrupt_prob : float;
  rate_shifts : rate_shift list;
  delay_shifts : delay_shift list;
}

val empty_link : link_faults
val is_empty_link : link_faults -> bool

type t = { all : link_faults; per_link : (int * link_faults) list }

val empty : t

val is_empty : t -> bool
(** [true] iff no fault axis is configured anywhere — callers skip the
    injector entirely, keeping the no-fault path bit-identical to a
    build without this library. *)

val for_link : t -> int -> link_faults
(** The faults applying to link [li]: schedules ([outage]/[rate]/[delay])
    concatenate the global and per-link clauses; the probabilistic axes
    take the per-link value when one is set. *)

val parse : string -> (t, string) result

val to_string : t -> string
(** Canonical round-trip: [parse (to_string t)] re-reads as [t]. *)

val presets : (string * string) list
(** Named shorthand specs ([flaky], [bursty], [jitter], [degrade],
    [blackout]) accepted by {!of_arg}. *)

val of_arg : string -> (t, string) result
(** Resolve a CLI argument: a preset name, a raw spec string, or the
    empty/blank string (= {!empty}, no faults — so scripts can pass an
    unset variable). *)
