(** Applies a {!Spec.link_faults} to one link.

    Two halves: [create] wraps the link's qdisc with a gate applying the
    per-packet axes (Gilbert–Elliott loss, outage-drop, corruption
    marking, duplication, reorder/delay holds) in a fixed draw order;
    [attach] registers the time axes (outages, rate shifts, delay
    shifts) as engine events against the built link.

    Determinism: the injector owns a PRNG stream derived from [seed]
    alone — nothing is split from the flow RNG chain — so installing a
    schedule leaves every other stochastic component untouched, and two
    runs of the same spec and seed produce bit-identical traces on
    either agenda backend. *)

type stats = {
  mutable ge_drops : int;
  mutable outage_drops : int;  (** arrivals discarded by [,drop] outages *)
  mutable reordered : int;
  mutable duplicated : int;
  mutable corrupted : int;
  mutable outages_started : int;
  mutable rate_shifts_applied : int;
  mutable delay_shifts_applied : int;
}

type t

val create :
  Remy_sim.Engine.t ->
  ?tracer:Remy_obs.Trace.t ->
  seed:int ->
  Spec.link_faults ->
  inner:Remy_sim.Qdisc.t ->
  Remy_sim.Qdisc.t * t
(** Wrap [inner]; build the link on the returned qdisc, then {!attach}. *)

val attach : t -> Remy_sim.Link.t -> unit
(** Install the outage / rate-shift / delay-shift schedule.  Must run
    before the engine does (events are registered at absolute times). *)

val maybe :
  Remy_sim.Engine.t ->
  ?tracer:Remy_obs.Trace.t ->
  seed:int ->
  Spec.link_faults ->
  inner:Remy_sim.Qdisc.t ->
  Remy_sim.Qdisc.t * t option
(** [create], except an empty spec returns [inner] untouched — the
    zero-cost-when-off path. *)

val stats : t -> stats
