open Remy_util
open Remy_sim

(* One injector per faulted link.  It has two halves:

   - a qdisc wrapper ([create]) applying the per-packet axes — GE loss,
     outage-drop, corruption marking, duplication, reorder/delay holds —
     in one fixed draw order so the stream is reproducible;
   - a link schedule ([attach]) driving the time axes — outages, rate
     and delay shifts — as pre-registered engine events.

   The injector draws from its own PRNG stream (derived from the run
   seed by the caller, never split from the flow RNG chain), so wiring a
   fault schedule does not perturb any other stochastic component: a
   no-fault run is bit-identical to one on a build without this
   library. *)

type stats = {
  mutable ge_drops : int;
  mutable outage_drops : int;
  mutable reordered : int;
  mutable duplicated : int;
  mutable corrupted : int;
  mutable outages_started : int;
  mutable rate_shifts_applied : int;
  mutable delay_shifts_applied : int;
}

type t = {
  engine : Engine.t;
  tracer : Remy_obs.Trace.t;
  spec : Spec.link_faults;
  rng : Prng.t;
  ge : Gilbert.t option;
  name : string;
  mutable down_depth : int;  (* overlapping outages nest *)
  mutable drop_depth : int;  (* of which, Drop_arrivals policy *)
  mutable extra_delay_s : float;
  mutable link : Link.t option;
  stats : stats;
}

let stats t = t.stats

let fresh_stats () =
  {
    ge_drops = 0;
    outage_drops = 0;
    reordered = 0;
    duplicated = 0;
    corrupted = 0;
    outages_started = 0;
    rate_shifts_applied = 0;
    delay_shifts_applied = 0;
  }

let kick t = match t.link with Some l -> Link.kick l | None -> ()

(* A duplicate must be a fresh record: pooled packets are owned by the
   receiver, which releases them after delivery — two queue entries
   aliasing one record would double-release.  The copy is never pooled;
   it is collected once the receiver discards it as a duplicate. *)
let copy_packet (pkt : Packet.t) =
  let xcp =
    Option.map
      (fun h ->
        {
          Packet.xcp_cwnd = h.Packet.xcp_cwnd;
          xcp_rtt = h.Packet.xcp_rtt;
          xcp_feedback = h.Packet.xcp_feedback;
        })
      pkt.Packet.xcp
  in
  let copy =
    Packet.make ~flow:pkt.Packet.flow ~seq:pkt.Packet.seq ~conn:pkt.Packet.conn
      ~now:pkt.Packet.sent_at ~size:pkt.Packet.size ~retx:pkt.Packet.retx
      ~ecn_capable:pkt.Packet.ecn_capable ?xcp ()
  in
  copy.Packet.ecn_marked <- pkt.Packet.ecn_marked;
  copy.Packet.corrupt <- pkt.Packet.corrupt;
  copy

let create engine ?(tracer = Remy_obs.Trace.off) ~seed (spec : Spec.link_faults)
    ~(inner : Qdisc.t) =
  let module T = Remy_obs.Trace in
  let name = inner.Qdisc.name ^ "+faults" in
  let t =
    {
      engine;
      tracer;
      spec;
      rng = Prng.create seed;
      (* The GE chain gets its own stream so its state sequence depends
         only on packet count, not on the other axes' draws. *)
      ge = Option.map (Gilbert.create ~seed:(seed lxor 0x6E11)) spec.Spec.ge;
      name;
      down_depth = 0;
      drop_depth = 0;
      extra_delay_s = 0.;
      link = None;
      stats = fresh_stats ();
    }
  in
  let trace_drop ~now pkt suffix =
    if T.is_on tracer then
      T.packet_event tracer ~now ~kind:T.Drop
        ~queue:(inner.Qdisc.name ^ suffix)
        ~flow:pkt.Packet.flow ~seq:pkt.Packet.seq ~size:pkt.Packet.size
        ~qlen:(inner.Qdisc.length ()) ()
  in
  let trace_fault ~now fault =
    if T.is_on tracer then T.fault_event tracer ~now ~queue:name ~fault ()
  in
  (* Deferred entry: the packet re-enters the real qdisc after [hold]
     seconds, then pokes the link in case it went idle meanwhile. *)
  let defer ~now hold pkt =
    Engine.schedule t.engine (now +. hold) (fun () ->
        let accepted = inner.Qdisc.enqueue ~now:(Engine.now t.engine) pkt in
        if accepted then kick t)
  in
  let enqueue ~now pkt =
    (* Fixed decision order — outage, GE, corrupt, duplicate, hold — so
       the PRNG consumption per packet depends only on the spec. *)
    if t.drop_depth > 0 then begin
      t.stats.outage_drops <- t.stats.outage_drops + 1;
      trace_drop ~now pkt "+outage";
      false
    end
    else
      match t.ge with
      | Some ge when Gilbert.step_drop ge ->
        t.stats.ge_drops <- t.stats.ge_drops + 1;
        trace_drop ~now pkt "+ge";
        false
      | _ ->
        if t.spec.Spec.corrupt_prob > 0.
           && Prng.float t.rng 1.0 < t.spec.Spec.corrupt_prob
        then begin
          pkt.Packet.corrupt <- true;
          t.stats.corrupted <- t.stats.corrupted + 1;
          trace_fault ~now "corrupt"
        end;
        let dup =
          t.spec.Spec.dup_prob > 0.
          && Prng.float t.rng 1.0 < t.spec.Spec.dup_prob
        in
        let hold =
          match t.spec.Spec.reorder with
          | Some r when Prng.float t.rng 1.0 < r.Spec.reorder_prob ->
            t.stats.reordered <- t.stats.reordered + 1;
            trace_fault ~now "reorder";
            t.extra_delay_s +. r.Spec.reorder_delay_s
          | _ -> t.extra_delay_s
        in
        let accepted =
          if hold > 0. then begin
            defer ~now hold pkt;
            (* The hold hides the queue's verdict from the sender, as a
               real extra propagation segment would. *)
            true
          end
          else inner.Qdisc.enqueue ~now pkt
        in
        if dup then begin
          t.stats.duplicated <- t.stats.duplicated + 1;
          trace_fault ~now "duplicate";
          let copy = copy_packet pkt in
          if hold > 0. then defer ~now hold copy
          else ignore (inner.Qdisc.enqueue ~now copy)
        end;
        accepted
  in
  let gate =
    {
      Qdisc.name;
      enqueue;
      dequeue = inner.Qdisc.dequeue;
      length = inner.Qdisc.length;
      byte_length = inner.Qdisc.byte_length;
      drops =
        (fun () -> t.stats.ge_drops + t.stats.outage_drops + inner.Qdisc.drops ());
    }
  in
  (gate, t)

let attach t link =
  let module T = Remy_obs.Trace in
  t.link <- Some link;
  let initial_rate = Link.rate_bytes_per_sec link in
  let trace_fault ~now fault value =
    if T.is_on t.tracer then
      T.fault_event t.tracer ~now ~queue:t.name ~fault ?value ()
  in
  let go_down (o : Spec.outage) =
    t.down_depth <- t.down_depth + 1;
    (match o.Spec.policy with
    | Spec.Drop_arrivals -> t.drop_depth <- t.drop_depth + 1
    | Spec.Park -> ());
    t.stats.outages_started <- t.stats.outages_started + 1;
    trace_fault ~now:(Engine.now t.engine) "link-down" (Some o.Spec.down_s);
    if t.down_depth = 1 then Link.set_up link false
  in
  let go_up (o : Spec.outage) =
    t.down_depth <- t.down_depth - 1;
    (match o.Spec.policy with
    | Spec.Drop_arrivals -> t.drop_depth <- t.drop_depth - 1
    | Spec.Park -> ());
    trace_fault ~now:(Engine.now t.engine) "link-up" None;
    if t.down_depth = 0 then Link.set_up link true
  in
  List.iter
    (fun (o : Spec.outage) ->
      (* Flaps self-reschedule, so no horizon is needed here; cycles
         beyond the run's end stay pending in the agenda, unfired. *)
      let rec cycle k =
        let at = o.Spec.start_s +. (float_of_int k *. Option.value o.Spec.period_s ~default:0.) in
        Engine.schedule t.engine at (fun () ->
            go_down o;
            Engine.schedule t.engine (at +. o.Spec.down_s) (fun () ->
                go_up o;
                match o.Spec.period_s with
                | Some p when p > 0. -> cycle (k + 1)
                | _ -> ()))
      in
      cycle 0)
    t.spec.Spec.outages;
  List.iter
    (fun (s : Spec.rate_shift) ->
      Engine.schedule t.engine s.Spec.rate_at_s (fun () ->
          let target =
            match (s.Spec.change, initial_rate) with
            | Spec.Mbps m, _ -> Some (Link.bytes_per_sec_of_mbps m)
            | Spec.Factor f, Some r0 -> Some (f *. r0)
            | Spec.Factor _, None -> None (* trace-driven: no base rate *)
          in
          match target with
          | Some bps ->
            Link.set_rate_bytes_per_sec link bps;
            t.stats.rate_shifts_applied <- t.stats.rate_shifts_applied + 1;
            trace_fault ~now:(Engine.now t.engine) "rate-shift"
              (Some (bps *. 8. /. 1e6))
          | None -> ()))
    t.spec.Spec.rate_shifts;
  List.iter
    (fun (d : Spec.delay_shift) ->
      Engine.schedule t.engine d.Spec.delay_at_s (fun () ->
          t.extra_delay_s <- d.Spec.extra_s;
          t.stats.delay_shifts_applied <- t.stats.delay_shifts_applied + 1;
          trace_fault ~now:(Engine.now t.engine) "delay-shift"
            (Some d.Spec.extra_s)))
    t.spec.Spec.delay_shifts

(* Convenience wrapper used by Dumbbell/Topology: no-op on an empty
   link spec (zero-cost-when-off), else wrap + remember the injector so
   the link can be attached once built. *)
let maybe engine ?tracer ~seed spec ~inner =
  if Spec.is_empty_link spec then (inner, None)
  else
    let gate, t = create engine ?tracer ~seed spec ~inner in
    (gate, Some t)
