(** Process-wide hot-path counters.

    Cheap visibility into the simulator inner loop: how many agenda
    events fired, acks crossed the congestion-control boundary, rule
    lookups ran, compiled indexes were built, and how the packet pools
    behaved.  Counters are atomics so worker domains may bump them
    concurrently; hot loops accumulate locally and {!add} once per run. *)

val events_run : int Atomic.t
val acks_processed : int Atomic.t
val lookups : int Atomic.t
val index_builds : int Atomic.t
val pool_hits : int Atomic.t
val pool_misses : int Atomic.t

val add : int Atomic.t -> int -> unit
(** [add c n] adds [n] (no-op when [n = 0]). *)

val incr : int Atomic.t -> unit

type snapshot = {
  events_run : int;
  acks_processed : int;
  lookups : int;
  index_builds : int;
  pool_hits : int;
  pool_misses : int;
}

val snapshot : unit -> snapshot
val reset : unit -> unit

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] — fieldwise subtraction, attributing counters to
    the work between the two snapshots without a process-wide reset. *)

val to_record : ?prefix:string -> snapshot -> Record.t
(** Flat fields [<prefix>events_run] .. [<prefix>pool_misses] (default
    prefix ["c_"]) — the block run manifests and bench sections embed. *)

val of_record : ?prefix:string -> Record.t -> snapshot option
(** Inverse of {!to_record}; [None] if any field is missing. *)
