let times ~interval ~until =
  if interval <= 0. then invalid_arg "Probe.times: interval must be positive";
  if until < 0. then invalid_arg "Probe.times: until must be non-negative";
  (* k * interval (not an accumulator) so long runs do not drift; the
     final sample lands exactly on [until]. *)
  let rec go k acc =
    let t = float_of_int k *. interval in
    if t >= until -. 1e-9 then List.rev (until :: acc) else go (k + 1) (t :: acc)
  in
  go 0 []
