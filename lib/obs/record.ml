type value = Bool of bool | Int of int | Float of float | Str of string
type t = (string * value) list

let find = List.assoc_opt

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Bool _ | Str _ -> None

let to_int = function Int i -> Some i | Float _ | Bool _ | Str _ -> None
let to_str = function Str s -> Some s | Int _ | Float _ | Bool _ -> None

(* %.12g: enough digits that trace timestamps and scores survive a
   round-trip at full useful precision without the noise of %.17g. *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

(* --- JSONL ---------------------------------------------------------- *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let value_into b = function
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string b (float_str f)
    else begin
      (* JSON has no inf/nan literals; quote them rather than lie. *)
      Buffer.add_char b '"';
      Buffer.add_string b (Float.to_string f);
      Buffer.add_char b '"'
    end
  | Str s ->
    Buffer.add_char b '"';
    escape_into b s;
    Buffer.add_char b '"'

let to_json (r : t) =
  let b = Buffer.create 128 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      escape_into b k;
      Buffer.add_string b "\":";
      value_into b v)
    r;
  Buffer.add_char b '}';
  Buffer.contents b

exception Parse of string

(* Minimal parser for the flat one-object-per-line JSON this library
   writes: values are strings, numbers, or booleans — no nesting. *)
let of_json line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = line.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        if !pos >= n then fail "dangling escape";
        let e = line.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let code = int_of_string ("0x" ^ String.sub line !pos 4) in
          pos := !pos + 4;
          Buffer.add_char b (if code < 128 then Char.chr code else '?')
        | _ -> fail "unknown escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some 't' when !pos + 4 <= n && String.sub line !pos 4 = "true" ->
      pos := !pos + 4;
      Bool true
    | Some 'f' when !pos + 5 <= n && String.sub line !pos 5 = "false" ->
      pos := !pos + 5;
      Bool false
    | Some _ ->
      let start = !pos in
      while
        !pos < n
        && (match line.[!pos] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr pos
      done;
      let tok = String.sub line start (!pos - start) in
      if tok = "" then fail "expected a value";
      (match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "malformed number"))
    | None -> fail "expected a value"
  in
  try
    expect '{';
    skip_ws ();
    if peek () = Some '}' then Ok []
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws ();
        let k = parse_string () in
        expect ':';
        let v = parse_value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          members ()
        | Some '}' -> incr pos
        | _ -> fail "expected , or }"
      in
      members ();
      Ok (List.rev !fields)
    end
  with Parse msg -> Error msg

(* --- CSV ------------------------------------------------------------ *)

(* Field values never contain commas (queue names, event kinds, numbers),
   so no quoting is needed — kept that way on purpose. *)

let value_to_csv = function
  | Bool x -> string_of_bool x
  | Int i -> string_of_int i
  | Float f -> float_str f
  | Str s -> s

let csv_header columns = String.concat "," columns

let to_csv ~columns (r : t) =
  String.concat ","
    (List.map
       (fun c -> match find c r with Some v -> value_to_csv v | None -> "")
       columns)

let csv_cell s =
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> (
      match bool_of_string_opt s with Some b -> Bool b | None -> Str s))

let of_csv ~header line =
  let cells = String.split_on_char ',' line in
  let rec zip hs cs acc =
    match (hs, cs) with
    | [], _ | _, [] -> List.rev acc
    | h :: hs, c :: cs ->
      if c = "" then zip hs cs acc else zip hs cs ((h, csv_cell c) :: acc)
  in
  zip header cells []
