(** Live TTY training dashboard ([remy_train --dashboard]).

    A handful of ANSI in-place-redrawn lines driven by the same
    {!Telemetry.epoch} records the telemetry sink receives: score
    sparkline over the recent epochs, evaluations/s, incremental-cache
    hit rate, pool utilization, and wall/ETA against the run's wall
    budget.  {!render} is pure (returns the frame) so tests can check
    the output without a terminal. *)

type t

val create : ?out:out_channel -> ?wall_budget_s:float -> unit -> t
(** [out] defaults to [stdout].  Pass [wall_budget_s] to get an ETA
    line. *)

val update : t -> Telemetry.epoch -> unit
(** Record the epoch and repaint in place. *)

val render : t -> string
(** The current frame: complete ['\n']-terminated lines, no cursor
    control. *)

val sparkline : float list -> string
(** Oldest-first values as U+2581..U+2588 block cells, min-max scaled;
    [""] on empty input. *)

val finish : t -> unit
(** Move the cursor past the dashboard so subsequent output appends
    normally. *)
