(* Self-describing run manifests.

   One flat record per run, written at invocation start (status
   "running") and rewritten at exit with final counters and histogram
   summaries, so every BENCH/telemetry/trace artifact sitting next to it
   says exactly which code, configuration, host and seed produced it.
   The manifest is a plain Record, so it round-trips through the same
   JSON codec as every other lib/obs artifact. *)

let schema = "remy-manifest-v1"

type t = {
  tool : string;
  status : string;  (* running | completed | interrupted | failed *)
  argv : string;
  git : string;
  config_fingerprint : string;
  host_cores : int;
  seed : int;
  wall_s : float;
  counters : Counters.snapshot;
  extras : Record.t;  (* h_* histogram summary fields *)
}

let float_field k f =
  if Float.is_finite f then (k, Record.Float f) else (k, Record.Str (Float.to_string f))

let to_record m : Record.t =
  [
    ("schema", Record.Str schema);
    ("tool", Record.Str m.tool);
    ("status", Record.Str m.status);
    ("argv", Record.Str m.argv);
    ("git", Record.Str m.git);
    ("config", Record.Str m.config_fingerprint);
    ("host_cores", Record.Int m.host_cores);
    ("seed", Record.Int m.seed);
    float_field "wall_s" m.wall_s;
  ]
  @ Counters.to_record m.counters
  @ m.extras

let of_record (r : Record.t) =
  let str k = Option.bind (Record.find k r) Record.to_str in
  let int k = Option.bind (Record.find k r) Record.to_int in
  let flt k = Option.bind (Record.find k r) Record.to_float in
  match str "schema" with
  | Some s when s = schema -> (
    match (str "tool", str "status", Counters.of_record r) with
    | Some tool, Some status, Some counters ->
      let has_prefix p k =
        String.length k > String.length p && String.sub k 0 (String.length p) = p
      in
      let extras =
        List.filter (fun (k, _) -> has_prefix "h_" k || has_prefix "dist_" k) r
      in
      Ok
        {
          tool;
          status;
          argv = Option.value ~default:"" (str "argv");
          git = Option.value ~default:"unknown" (str "git");
          config_fingerprint = Option.value ~default:"" (str "config");
          host_cores = Option.value ~default:0 (int "host_cores");
          seed = Option.value ~default:0 (int "seed");
          wall_s = Option.value ~default:Float.nan (flt "wall_s");
          counters;
          extras;
        }
    | _ -> Error "manifest record is missing tool/status/counter fields")
  | Some s -> Error (Printf.sprintf "unsupported manifest schema %S" s)
  | None -> Error "not a manifest record (no schema field)"

(* Best-effort provenance: ask git; anything going wrong (no git binary,
   not a repository, sandboxed exec) degrades to "unknown". *)
let git_describe () =
  try
    let ic =
      Unix.open_process_in "git describe --always --dirty --tags 2>/dev/null"
    in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let make ~tool ?(argv = Sys.argv) ?(git = git_describe ())
    ?(config_fingerprint = "") ?(seed = 0) ?(extras = []) () =
  {
    tool;
    status = "running";
    argv = String.concat " " (Array.to_list argv);
    git;
    config_fingerprint;
    host_cores = Domain.recommended_domain_count ();
    seed;
    wall_s = 0.;
    counters = Counters.snapshot ();
    extras;
  }

let finalize m ~status ~wall_s =
  (* Keep caller-supplied extras (e.g. dist_* fields), refresh the
     histogram summaries. *)
  let keep =
    List.filter
      (fun (k, _) -> not (String.length k > 2 && String.sub k 0 2 = "h_"))
      m.extras
  in
  {
    m with
    status;
    wall_s;
    counters = Counters.snapshot ();
    extras = keep @ Metrics.summary_fields ();
  }

let write ~path m =
  let oc = open_out path in
  output_string oc (Record.to_json (to_record m));
  output_char oc '\n';
  close_out oc

let load ~path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no such file" path)
  else begin
    let ic = open_in path in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    match Record.of_json line with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok r -> of_record r
  end
