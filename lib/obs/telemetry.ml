type epoch = {
  epoch : int;
  live_rules : int;
  most_used_rule : int option;
  evaluations : int;
  improvements : int;
  subdivisions : int;
  score : float;
  wall_s : float;
  domains : int;
  par_tasks : int;
  par_spawns : int;
  par_jobs : int;
  par_helper_tasks : int;
  spec_sims : int;
  spec_skips : int;
}

let float_field k f =
  if Float.is_finite f then (k, Record.Float f) else (k, Record.Str (Float.to_string f))

let to_record (e : epoch) : Record.t =
  [
    ("epoch", Record.Int e.epoch);
    ("live_rules", Record.Int e.live_rules);
  ]
  @ (match e.most_used_rule with
    | Some id -> [ ("most_used_rule", Record.Int id) ]
    | None -> [])
  @ [
      ("evaluations", Record.Int e.evaluations);
      ("improvements", Record.Int e.improvements);
      ("subdivisions", Record.Int e.subdivisions);
      float_field "score" e.score;
      float_field "wall_s" e.wall_s;
      ("domains", Record.Int e.domains);
      ("par_tasks", Record.Int e.par_tasks);
      ("par_spawns", Record.Int e.par_spawns);
      ("par_jobs", Record.Int e.par_jobs);
      ("par_helper_tasks", Record.Int e.par_helper_tasks);
      ("spec_sims", Record.Int e.spec_sims);
      ("spec_skips", Record.Int e.spec_skips);
    ]

let write sink e = Sink.emit sink (to_record e)

let of_record (r : Record.t) =
  let int k = Option.bind (Record.find k r) Record.to_int in
  let flt k = Option.bind (Record.find k r) Record.to_float in
  match (int "epoch", int "live_rules", int "evaluations") with
  | Some epoch, Some live_rules, Some evaluations ->
    Some
      {
        epoch;
        live_rules;
        most_used_rule = int "most_used_rule";
        evaluations;
        improvements = Option.value ~default:0 (int "improvements");
        subdivisions = Option.value ~default:0 (int "subdivisions");
        score = Option.value ~default:Float.nan (flt "score");
        wall_s = Option.value ~default:Float.nan (flt "wall_s");
        domains = Option.value ~default:1 (int "domains");
        par_tasks = Option.value ~default:0 (int "par_tasks");
        par_spawns = Option.value ~default:0 (int "par_spawns");
        par_jobs = Option.value ~default:0 (int "par_jobs");
        par_helper_tasks = Option.value ~default:0 (int "par_helper_tasks");
        spec_sims = Option.value ~default:0 (int "spec_sims");
        spec_skips = Option.value ~default:0 (int "spec_skips");
      }
  | _ -> None
