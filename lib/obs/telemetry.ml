type epoch = {
  epoch : int;
  live_rules : int;
  most_used_rule : int option;
  evaluations : int;
  improvements : int;
  subdivisions : int;
  score : float;
  wall_s : float;
  domains : int;
  par_tasks : int;
  par_spawns : int;
  par_jobs : int;
  par_helper_tasks : int;
  spec_sims : int;
  spec_skips : int;
}

let float_field k f =
  if Float.is_finite f then (k, Record.Float f) else (k, Record.Str (Float.to_string f))

let to_record (e : epoch) : Record.t =
  [
    ("epoch", Record.Int e.epoch);
    ("live_rules", Record.Int e.live_rules);
  ]
  @ (match e.most_used_rule with
    | Some id -> [ ("most_used_rule", Record.Int id) ]
    | None -> [])
  @ [
      ("evaluations", Record.Int e.evaluations);
      ("improvements", Record.Int e.improvements);
      ("subdivisions", Record.Int e.subdivisions);
      float_field "score" e.score;
      float_field "wall_s" e.wall_s;
      ("domains", Record.Int e.domains);
      ("par_tasks", Record.Int e.par_tasks);
      ("par_spawns", Record.Int e.par_spawns);
      ("par_jobs", Record.Int e.par_jobs);
      ("par_helper_tasks", Record.Int e.par_helper_tasks);
      ("spec_sims", Record.Int e.spec_sims);
      ("spec_skips", Record.Int e.spec_skips);
    ]

let write sink e = Sink.emit sink (to_record e)

(* --- robustness events ---------------------------------------------- *)

type robustness =
  | Checkpoint_written of {
      epoch : int;
      rounds : int;
      duration_s : float;
      path : string;
    }
  | Resumed_from of { epoch : int; rounds : int; elapsed_s : float; path : string }
  | Worker_retry of { task : int; attempt : int; error : string }
  | Table_verified of {
      rounds : int;
      rules : int;
      sound : bool;
      problems : int;
      window_hi : float;
    }
  | Worker_joined of { worker : int; addr : string; pid : int }
  | Worker_lost of { worker : int; addr : string; reason : string; requeued : int }
  | Task_reissued of { index : int; from_worker : int; to_worker : int }

let robustness_to_record = function
  | Checkpoint_written { epoch; rounds; duration_s; path } ->
    [
      ("event", Record.Str "checkpoint_written");
      ("epoch", Record.Int epoch);
      ("rounds", Record.Int rounds);
      float_field "duration_s" duration_s;
      ("path", Record.Str path);
    ]
  | Resumed_from { epoch; rounds; elapsed_s; path } ->
    [
      ("event", Record.Str "resumed_from");
      ("epoch", Record.Int epoch);
      ("rounds", Record.Int rounds);
      float_field "elapsed_s" elapsed_s;
      ("path", Record.Str path);
    ]
  | Worker_retry { task; attempt; error } ->
    [
      ("event", Record.Str "worker_retry");
      ("task", Record.Int task);
      ("attempt", Record.Int attempt);
      ("error", Record.Str error);
    ]
  | Table_verified { rounds; rules; sound; problems; window_hi } ->
    [
      ("event", Record.Str "table_verified");
      ("rounds", Record.Int rounds);
      ("rules", Record.Int rules);
      ("sound", Record.Bool sound);
      ("problems", Record.Int problems);
      float_field "window_hi" window_hi;
    ]
  | Worker_joined { worker; addr; pid } ->
    [
      ("event", Record.Str "worker_joined");
      ("worker", Record.Int worker);
      ("addr", Record.Str addr);
      ("pid", Record.Int pid);
    ]
  | Worker_lost { worker; addr; reason; requeued } ->
    [
      ("event", Record.Str "worker_lost");
      ("worker", Record.Int worker);
      ("addr", Record.Str addr);
      ("reason", Record.Str reason);
      ("requeued", Record.Int requeued);
    ]
  | Task_reissued { index; from_worker; to_worker } ->
    [
      ("event", Record.Str "task_reissued");
      ("index", Record.Int index);
      ("from_worker", Record.Int from_worker);
      ("to_worker", Record.Int to_worker);
    ]

let robustness_of_record (r : Record.t) =
  let int k = Option.bind (Record.find k r) Record.to_int in
  let flt k = Option.bind (Record.find k r) Record.to_float in
  let str k = Option.bind (Record.find k r) Record.to_str in
  match str "event" with
  | Some "checkpoint_written" -> (
    match (int "epoch", int "rounds") with
    | Some epoch, Some rounds ->
      Some
        (Checkpoint_written
           {
             epoch;
             rounds;
             duration_s = Option.value ~default:Float.nan (flt "duration_s");
             path = Option.value ~default:"" (str "path");
           })
    | _ -> None)
  | Some "resumed_from" -> (
    match (int "epoch", int "rounds") with
    | Some epoch, Some rounds ->
      Some
        (Resumed_from
           {
             epoch;
             rounds;
             elapsed_s = Option.value ~default:Float.nan (flt "elapsed_s");
             path = Option.value ~default:"" (str "path");
           })
    | _ -> None)
  | Some "worker_retry" -> (
    match (int "task", int "attempt") with
    | Some task, Some attempt ->
      Some
        (Worker_retry
           { task; attempt; error = Option.value ~default:"" (str "error") })
    | _ -> None)
  | Some "table_verified" -> (
    match (int "rounds", int "rules") with
    | Some rounds, Some rules ->
      let sound =
        match Record.find "sound" r with Some (Record.Bool b) -> b | _ -> false
      in
      Some
        (Table_verified
           {
             rounds;
             rules;
             sound;
             problems = Option.value ~default:0 (int "problems");
             window_hi = Option.value ~default:Float.nan (flt "window_hi");
           })
    | _ -> None)
  | Some "worker_joined" -> (
    match int "worker" with
    | Some worker ->
      Some
        (Worker_joined
           {
             worker;
             addr = Option.value ~default:"" (str "addr");
             pid = Option.value ~default:0 (int "pid");
           })
    | None -> None)
  | Some "worker_lost" -> (
    match int "worker" with
    | Some worker ->
      Some
        (Worker_lost
           {
             worker;
             addr = Option.value ~default:"" (str "addr");
             reason = Option.value ~default:"" (str "reason");
             requeued = Option.value ~default:0 (int "requeued");
           })
    | None -> None)
  | Some "task_reissued" -> (
    match (int "index", int "from_worker", int "to_worker") with
    | Some index, Some from_worker, Some to_worker ->
      Some (Task_reissued { index; from_worker; to_worker })
    | _ -> None)
  | _ -> None

let write_robustness sink e = Sink.emit sink (robustness_to_record e)

let of_record (r : Record.t) =
  let int k = Option.bind (Record.find k r) Record.to_int in
  let flt k = Option.bind (Record.find k r) Record.to_float in
  match (int "epoch", int "live_rules", int "evaluations") with
  | Some epoch, Some live_rules, Some evaluations ->
    Some
      {
        epoch;
        live_rules;
        most_used_rule = int "most_used_rule";
        evaluations;
        improvements = Option.value ~default:0 (int "improvements");
        subdivisions = Option.value ~default:0 (int "subdivisions");
        score = Option.value ~default:Float.nan (flt "score");
        wall_s = Option.value ~default:Float.nan (flt "wall_s");
        domains = Option.value ~default:1 (int "domains");
        par_tasks = Option.value ~default:0 (int "par_tasks");
        par_spawns = Option.value ~default:0 (int "par_spawns");
        par_jobs = Option.value ~default:0 (int "par_jobs");
        par_helper_tasks = Option.value ~default:0 (int "par_helper_tasks");
        spec_sims = Option.value ~default:0 (int "spec_sims");
        spec_skips = Option.value ~default:0 (int "spec_skips");
      }
  | _ -> None
