(** Well-known runtime distributions: the metrics layer over {!Histogram}.

    Four log-bucketed histograms recorded by the simulator and optimizer:

    - [Sim_wall] — wall seconds per specimen simulation ({!Remy.Evaluator})
    - [Eval_round] — wall seconds per candidate-evaluation round
      ({!Remy.Optimizer})
    - [Queueing_delay] — simulated per-packet queueing delay at bottleneck
      exit, the §5 distribution whose tails the paper plots
      ({!Remy_sim.Link})
    - [Sojourn] — simulated per-packet bottleneck-queue sojourn, enqueue
      to dequeue ({!Remy_sim.Link})

    Zero-cost when off (the default): a record site is one atomic load,
    and hot paths guard argument computation behind {!enabled}.  Each
    domain writes its own histograms; {!merged} aggregates bucketwise
    (integer addition — deterministic in any merge order).  Recording only
    observes: outputs are bit-identical with metrics on or off. *)

type kind = Sim_wall | Eval_round | Queueing_delay | Sojourn

val kind_name : kind -> string
(** ["sim_wall_s"], ["eval_round_s"], ["queueing_delay_s"], ["sojourn_s"]. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val record : kind -> float -> unit
(** No-op when disabled.  In per-packet paths, guard the value computation
    with [if Metrics.enabled () then record ...]. *)

val reset : unit -> unit
(** Clear every domain's histograms.  Call only while pool domains are
    idle. *)

val merged : kind -> Histogram.t
(** Bucketwise sum across all domains that recorded so far. *)

val all_merged : unit -> (string * Histogram.t) list
(** Every kind with its name, in canonical (sorted) order. *)

val summary_fields : unit -> Record.t
(** Flat [h_<name>_{count,p50,p90,p99,p999}] fields for every non-empty
    histogram — the block run manifests embed. *)
