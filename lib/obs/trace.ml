type kind = Enqueue | Dequeue | Drop | Ecn_mark | Deliver | Timeout

let kind_name = function
  | Enqueue -> "enqueue"
  | Dequeue -> "dequeue"
  | Drop -> "drop"
  | Ecn_mark -> "ecn_mark"
  | Deliver -> "deliver"
  | Timeout -> "timeout"

let kind_of_name = function
  | "enqueue" -> Some Enqueue
  | "dequeue" -> Some Dequeue
  | "drop" -> Some Drop
  | "ecn_mark" -> Some Ecn_mark
  | "deliver" -> Some Deliver
  | "timeout" -> Some Timeout
  | _ -> None

type t = Off | On of Sink.t

let off = Off
let make sink = On sink
let is_on = function Off -> false | On _ -> true
let emit t r = match t with Off -> () | On sink -> Sink.emit sink r
let close = function Off -> () | On sink -> Sink.close sink

(* Fixed column set so a CSV sink can write its header up front; JSONL
   records simply omit the fields that do not apply. *)
let columns =
  [
    "t"; "ev"; "q"; "flow"; "seq"; "size"; "qlen"; "qbytes"; "delay_s";
    "cwnd"; "intersend_s"; "srtt_s"; "scheme"; "rep"; "fk"; "val";
  ]

let packet_event t ~now ~kind ~queue ~flow ~seq ~size ?delay_s ~qlen () =
  emit t
    ([
       ("t", Record.Float now);
       ("ev", Record.Str (kind_name kind));
       ("q", Record.Str queue);
       ("flow", Record.Int flow);
       ("seq", Record.Int seq);
       ("size", Record.Int size);
       ("qlen", Record.Int qlen);
     ]
    @ match delay_s with Some d -> [ ("delay_s", Record.Float d) ] | None -> [])

let sender_event t ~now ~kind ~flow ~seq =
  emit t
    [
      ("t", Record.Float now);
      ("ev", Record.Str (kind_name kind));
      ("flow", Record.Int flow);
      ("seq", Record.Int seq);
    ]

let queue_sample t ~now ~queue ~qlen ~qbytes =
  emit t
    [
      ("t", Record.Float now);
      ("ev", Record.Str "qsample");
      ("q", Record.Str queue);
      ("qlen", Record.Int qlen);
      ("qbytes", Record.Int qbytes);
    ]

let flow_sample t ~now ~flow ~cwnd ~intersend_s ~srtt_s =
  emit t
    ([
       ("t", Record.Float now);
       ("ev", Record.Str "fsample");
       ("flow", Record.Int flow);
       ("cwnd", Record.Float cwnd);
       ("intersend_s", Record.Float intersend_s);
     ]
    @ match srtt_s with Some r -> [ ("srtt_s", Record.Float r) ] | None -> [])

let note t ~now fields =
  emit t (("t", Record.Float now) :: ("ev", Record.Str "note") :: fields)

let fault_event t ~now ~queue ~fault ?value () =
  emit t
    ([
       ("t", Record.Float now);
       ("ev", Record.Str "fault");
       ("q", Record.Str queue);
       ("fk", Record.Str fault);
     ]
    @ match value with Some v -> [ ("val", Record.Float v) ] | None -> [])
