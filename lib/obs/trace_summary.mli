(** Aggregate a trace file into drop / mark / occupancy statistics —
    the [remy_inspect trace-summary] backend.

    Consumes the JSONL or CSV that {!Trace} writes and reduces it to
    per-event totals, per-queue enqueue/dequeue/drop/mark counts with
    queue-occupancy statistics (over event [qlen] fields and [qsample]
    rows), per-flow delivery counts and queueing-delay percentiles (over
    [deliver] rows' [delay_s]), and the covered time span. *)

type queue_stats = {
  mutable enqueues : int;
  mutable dequeues : int;
  mutable drops : int;
  mutable marks : int;
  mutable qlen_sum : float;
  mutable qlen_samples : int;
  mutable qlen_max : int;
}

type t = {
  mutable records : int;
  mutable t_min : float;
  mutable t_max : float;
  mutable timeouts : int;
  mutable notes : int;
  by_event : (string, int ref) Hashtbl.t;
  by_queue : (string, queue_stats) Hashtbl.t;
  delivers_by_flow : (int, int ref) Hashtbl.t;
  delay_by_flow : (int, Histogram.t) Hashtbl.t;
      (** per-flow queueing delay, from [deliver] rows' [delay_s] field;
          detailed histograms are kept for the first {!detailed_flow_cap}
          flows only *)
  delay_all : Histogram.t;
      (** queueing delay aggregated over every flow, uncapped *)
  mutable delay_capped : bool;
      (** true when some flow exceeded the per-flow detail cap *)
}

val detailed_flow_cap : int
(** Per-flow delay histograms kept (64); beyond it flows contribute to
    [delay_all] only, so summarizing a 10k-flow trace stays bounded. *)

val of_records : Record.t list -> t

val of_file : string -> (t, string) result
(** Streams the file via {!Sink.fold_file} — constant space in the
    number of events, bounded space in the number of flows. *)

val count : t -> string -> int
(** Occurrences of an [ev] kind, e.g. [count t "drop"]. *)

val pp : Format.formatter -> t -> unit
