(* Global hot-path counters.  Each counter is an [Atomic.t] so simulator
   code running on optimizer worker domains can bump them without locks;
   the hot loops themselves accumulate into local ints and flush once per
   run, so the atomics are touched O(runs) times, not O(events). *)

let events_run = Atomic.make 0
let acks_processed = Atomic.make 0
let lookups = Atomic.make 0
let index_builds = Atomic.make 0
let pool_hits = Atomic.make 0
let pool_misses = Atomic.make 0

let add c n = if n <> 0 then ignore (Atomic.fetch_and_add c n)
let incr c = ignore (Atomic.fetch_and_add c 1)

type snapshot = {
  events_run : int;
  acks_processed : int;
  lookups : int;
  index_builds : int;
  pool_hits : int;
  pool_misses : int;
}

let snapshot () =
  {
    events_run = Atomic.get events_run;
    acks_processed = Atomic.get acks_processed;
    lookups = Atomic.get lookups;
    index_builds = Atomic.get index_builds;
    pool_hits = Atomic.get pool_hits;
    pool_misses = Atomic.get pool_misses;
  }

let reset () =
  Atomic.set events_run 0;
  Atomic.set acks_processed 0;
  Atomic.set lookups 0;
  Atomic.set index_builds 0;
  Atomic.set pool_hits 0;
  Atomic.set pool_misses 0
