(* Global hot-path counters.  Each counter is an [Atomic.t] so simulator
   code running on optimizer worker domains can bump them without locks;
   the hot loops themselves accumulate into local ints and flush once per
   run, so the atomics are touched O(runs) times, not O(events). *)

let events_run = Atomic.make 0
let acks_processed = Atomic.make 0
let lookups = Atomic.make 0
let index_builds = Atomic.make 0
let pool_hits = Atomic.make 0
let pool_misses = Atomic.make 0

let add c n = if n <> 0 then ignore (Atomic.fetch_and_add c n)
let incr c = ignore (Atomic.fetch_and_add c 1)

type snapshot = {
  events_run : int;
  acks_processed : int;
  lookups : int;
  index_builds : int;
  pool_hits : int;
  pool_misses : int;
}

let snapshot () =
  {
    events_run = Atomic.get events_run;
    acks_processed = Atomic.get acks_processed;
    lookups = Atomic.get lookups;
    index_builds = Atomic.get index_builds;
    pool_hits = Atomic.get pool_hits;
    pool_misses = Atomic.get pool_misses;
  }

let reset () =
  Atomic.set events_run 0;
  Atomic.set acks_processed 0;
  Atomic.set lookups 0;
  Atomic.set index_builds 0;
  Atomic.set pool_hits 0;
  Atomic.set pool_misses 0

(* [diff later earlier]: the counters attributable to the work between the
   two snapshots, so concurrent report sections no longer need to share
   one process-wide [reset]. *)
let diff (a : snapshot) (b : snapshot) =
  {
    events_run = a.events_run - b.events_run;
    acks_processed = a.acks_processed - b.acks_processed;
    lookups = a.lookups - b.lookups;
    index_builds = a.index_builds - b.index_builds;
    pool_hits = a.pool_hits - b.pool_hits;
    pool_misses = a.pool_misses - b.pool_misses;
  }

let to_record ?(prefix = "c_") (s : snapshot) : Record.t =
  [
    (prefix ^ "events_run", Record.Int s.events_run);
    (prefix ^ "acks_processed", Record.Int s.acks_processed);
    (prefix ^ "lookups", Record.Int s.lookups);
    (prefix ^ "index_builds", Record.Int s.index_builds);
    (prefix ^ "pool_hits", Record.Int s.pool_hits);
    (prefix ^ "pool_misses", Record.Int s.pool_misses);
  ]

let of_record ?(prefix = "c_") (r : Record.t) =
  let int k = Option.bind (Record.find (prefix ^ k) r) Record.to_int in
  match
    ( int "events_run", int "acks_processed", int "lookups", int "index_builds",
      int "pool_hits", int "pool_misses" )
  with
  | Some events_run, Some acks_processed, Some lookups, Some index_builds,
    Some pool_hits, Some pool_misses ->
    Some { events_run; acks_processed; lookups; index_builds; pool_hits; pool_misses }
  | _ -> None
