(** Log-bucketed latency/delay histogram (HDR-style).

    Fixed preallocated buckets: [subbuckets] geometric subdivisions per
    power of two across 2^-30 .. 2^10 (nanoseconds to ~17 minutes, in
    seconds), plus underflow/overflow slots.  The bucket index is computed
    from the float's bit pattern — no [log], no allocation — so recording
    is cheap enough for per-packet paths.  A histogram is single-writer by
    design (the metrics layer keeps one per domain); cross-domain
    aggregation uses {!merge_into}, which is bucketwise integer addition
    and therefore deterministic regardless of merge order.

    Quantiles are exact to within one bucket: for in-range samples,
    [exact <= quantile t q <= exact * (1 + relative_error)] where [exact]
    is the sorted sample of rank [ceil (q * n)]. *)

type t

val create : unit -> t
val clear : t -> unit
val count : t -> int

val record : t -> float -> unit
(** NaN and non-positive values land in the underflow bucket; [infinity]
    and values >= 2^10 s in the overflow bucket. *)

val merge_into : into:t -> t -> unit
(** Bucketwise add [t] into [into] (commutative and associative). *)

val relative_error : float
(** Bound on any bucket's relative width ([1/32]). *)

val quantile : t -> float -> float
(** Upper edge of the bucket holding the rank-[ceil (q*n)] sample; NaN on
    an empty histogram.  Monotone in [q]. *)

val max_value : t -> float
(** Upper edge of the highest occupied bucket; NaN when empty. *)

type summary = { n : int; p50 : float; p90 : float; p99 : float; p999 : float }

val summarize : t -> summary

val summary_fields : prefix:string -> t -> Record.t
(** Flat record fields [<prefix>_count], [<prefix>_p50] .. [<prefix>_p999]
    — the shape run manifests embed. *)
