(** Sample schedule for periodic probes.

    The simulator (which owns the engine) schedules one callback per
    returned instant; each callback emits {!Trace.queue_sample} and
    {!Trace.flow_sample} rows.  Sampling callbacks only read simulator
    state, so an attached probe never changes simulation results — it
    only adds observation events to the agenda. *)

val times : interval:float -> until:float -> float list
(** [times ~interval ~until] = [0; interval; 2*interval; ...; until].
    The last element is always exactly [until] (the end-of-simulation
    sample); a grid point within 1 ns of [until] is merged into it.
    Raises [Invalid_argument] on a non-positive interval. *)
