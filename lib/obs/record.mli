(** Flat key/value records — the unit of everything this library writes.

    A record is an ordered association list of scalar fields.  The codec
    here is intentionally minimal: it reads and writes exactly the flat
    one-object-per-line JSON (and unquoted CSV) that {!Sink} produces, so
    the repository needs no external JSON dependency. *)

type value = Bool of bool | Int of int | Float of float | Str of string
type t = (string * value) list

val find : string -> t -> value option
val to_float : value -> float option
(** [Int] coerces to float; other shapes return [None]. *)

val to_int : value -> int option
val to_str : value -> string option

val float_str : float -> string
(** Deterministic rendering: integral floats as ["%.1f"], others as
    ["%.12g"] — stable across runs, precise enough for trace analysis. *)

val to_json : t -> string
(** One JSON object, no trailing newline.  Non-finite floats are written
    as quoted strings (JSON has no literal for them). *)

val of_json : string -> (t, string) result
(** Parse one line written by {!to_json}.  Flat objects only. *)

val csv_header : string list -> string
val to_csv : columns:string list -> t -> string
(** Missing fields render as empty cells; extra fields are dropped. *)

val of_csv : header:string list -> string -> t
(** Empty cells are omitted from the result; each non-empty cell is
    classified as int, float, bool, or string, in that order. *)
