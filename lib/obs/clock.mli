(** Engine-independent monotonic wall clock.

    Backed by CLOCK_MONOTONIC (via bechamel's stubs), so optimizer wall
    budgets and telemetry timings are immune to system-time jumps —
    unlike [Unix.gettimeofday]. *)

val now_s : unit -> float
(** Monotonic time in seconds from an arbitrary epoch; only differences
    are meaningful. *)
