(** Self-describing run manifests.

    A manifest is one flat {!Record} written next to a run's outputs,
    answering "what produced this file": tool name, full argv, git
    describe, configuration fingerprint, host core count, seed, wall
    time, final {!Counters} snapshot, and {!Metrics} histogram
    summaries.  It is written once at invocation start (status
    ["running"]) and rewritten at exit, so a crash leaves a readable
    marker rather than nothing. *)

val schema : string
(** ["remy-manifest-v1"], the [schema] field every manifest leads with. *)

type t = {
  tool : string;
  status : string;  (** running | completed | interrupted | failed *)
  argv : string;
  git : string;
  config_fingerprint : string;
  host_cores : int;
  seed : int;
  wall_s : float;
  counters : Counters.snapshot;
  extras : Record.t;
      (** [h_*] histogram summary fields plus caller extras ([dist_*]
          distributed-run fields) *)
}

val make :
  tool:string ->
  ?argv:string array ->
  ?git:string ->
  ?config_fingerprint:string ->
  ?seed:int ->
  ?extras:Record.t ->
  unit ->
  t
(** Fresh ["running"] manifest.  [argv] defaults to [Sys.argv]; [git] to
    {!git_describe}.  [extras] are extra fields carried through
    {!finalize} (use [h_] or [dist_] prefixed keys so {!of_record}
    recovers them). *)

val finalize : t -> status:string -> wall_s:float -> t
(** Final manifest: given status and wall time, current counters,
    caller extras, and refreshed histogram summaries from
    {!Metrics.summary_fields}. *)

val to_record : t -> Record.t
val of_record : Record.t -> (t, string) result
(** Inverse of {!to_record} (field order aside): manifests round-trip
    through the record codec. *)

val write : path:string -> t -> unit
(** One JSON object plus newline, atomically small; overwrites. *)

val load : path:string -> (t, string) result

val git_describe : unit -> string
(** [git describe --always --dirty --tags], or ["unknown"] when git or
    the repository is unavailable. *)
