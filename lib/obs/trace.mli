(** Packet-level event tracer — this reproduction's stand-in for ns-2
    trace files.

    The tracer is wired through the simulator ({!Remy_sim.Engine}, the
    link, every queue discipline, the TCP sender); each wiring point
    costs exactly one [is_on] branch when tracing is disabled, and the
    disabled tracer ({!off}) is the default everywhere, so simulations
    without a tracer behave bit-identically to a build without this
    library.

    Event schema (one record per event):
    - [t] — virtual time, seconds
    - [ev] — [enqueue | dequeue | drop | ecn_mark | deliver | timeout],
      plus [qsample]/[fsample] rows from {!Probe} and free-form [note]s
    - [q] — queue-discipline name (packet events and queue samples)
    - [flow], [seq], [size] — packet identity
    - [qlen] — packets queued after the event applied *)

type kind = Enqueue | Dequeue | Drop | Ecn_mark | Deliver | Timeout

val kind_name : kind -> string
val kind_of_name : string -> kind option

type t

val off : t
(** The disabled tracer: every emit is a no-op behind one branch. *)

val make : Sink.t -> t
val is_on : t -> bool
val close : t -> unit

val columns : string list
(** Canonical column order, for CSV sinks. *)

val packet_event :
  t ->
  now:float ->
  kind:kind ->
  queue:string ->
  flow:int ->
  seq:int ->
  size:int ->
  ?delay_s:float ->
  qlen:int ->
  unit ->
  unit
(** [delay_s] attaches a per-packet delay to the event: queueing delay
    on [Deliver] (time since send minus propagation), queue sojourn on
    [Dequeue]. *)

val sender_event : t -> now:float -> kind:kind -> flow:int -> seq:int -> unit
(** Host-side events ([Timeout]) with no queue attached. *)

val queue_sample : t -> now:float -> queue:string -> qlen:int -> qbytes:int -> unit

val flow_sample :
  t ->
  now:float ->
  flow:int ->
  cwnd:float ->
  intersend_s:float ->
  srtt_s:float option ->
  unit

val note : t -> now:float -> Record.t -> unit
(** Free-form annotation ([ev = "note"]) — e.g. scheme boundaries when
    several runs share one trace file. *)

val fault_event :
  t -> now:float -> queue:string -> fault:string -> ?value:float -> unit -> unit
(** Fault-injection event ([ev = "fault"]): [fault] names the kind
    ([link-down], [link-up], [rate-shift], [delay-shift], [reorder],
    [duplicate], [corrupt]) in the [fk] column, [value] an optional
    magnitude (Mbps after a rate shift, seconds of extra delay). *)

val emit : t -> Record.t -> unit
(** Escape hatch: raw record (no-op when disabled). *)
