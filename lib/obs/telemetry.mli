(** Structured optimizer telemetry: one record per design epoch.

    Replaces the optimizer's free-form progress strings with data a
    plotting script can consume — training curves (score vs epoch or
    wall time), rule-table growth, and parallel-evaluation utilization
    across runs.  Counters ([evaluations], [improvements],
    [subdivisions], [par_*]) are cumulative since the start of the run,
    so the final record matches the optimizer's report. *)

type epoch = {
  epoch : int;  (** global epoch just completed, 0-based *)
  live_rules : int;  (** rules in the tree at epoch end *)
  most_used_rule : int option;
      (** the rule the tally ranked first at the epoch's start, i.e. the
          first rule this epoch improved; [None] if no rule fired *)
  evaluations : int;  (** cumulative candidate evaluations *)
  improvements : int;  (** cumulative actions replaced *)
  subdivisions : int;  (** cumulative rule splits *)
  score : float;  (** last whole-table score observed *)
  wall_s : float;  (** monotonic seconds since the run started *)
  domains : int;  (** configured parallelism *)
  par_tasks : int;
      (** cumulative {!Par}-executed tasks, transient maps + pool
          (process-wide) *)
  par_spawns : int;  (** cumulative helper domains spawned (process-wide) *)
  par_jobs : int;  (** cumulative pool job submissions (process-wide) *)
  par_helper_tasks : int;
      (** pool tasks claimed by helper domains rather than the submitter
          — divide by pool tasks for utilization (process-wide) *)
  spec_sims : int;
      (** cumulative specimen simulations run in candidate rounds *)
  spec_skips : int;
      (** cumulative specimen simulations the incremental cache avoided *)
}

val to_record : epoch -> Record.t
val of_record : Record.t -> epoch option
val write : Sink.t -> epoch -> unit
