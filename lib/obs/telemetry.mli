(** Structured optimizer telemetry: one record per design epoch.

    Replaces the optimizer's free-form progress strings with data a
    plotting script can consume — training curves (score vs epoch or
    wall time), rule-table growth, and parallel-evaluation utilization
    across runs.  Counters ([evaluations], [improvements],
    [subdivisions], [par_*]) are cumulative since the start of the run,
    so the final record matches the optimizer's report. *)

type epoch = {
  epoch : int;  (** global epoch just completed, 0-based *)
  live_rules : int;  (** rules in the tree at epoch end *)
  most_used_rule : int option;
      (** the rule the tally ranked first at the epoch's start, i.e. the
          first rule this epoch improved; [None] if no rule fired *)
  evaluations : int;  (** cumulative candidate evaluations *)
  improvements : int;  (** cumulative actions replaced *)
  subdivisions : int;  (** cumulative rule splits *)
  score : float;  (** last whole-table score observed *)
  wall_s : float;  (** monotonic seconds since the run started *)
  domains : int;  (** configured parallelism *)
  par_tasks : int;
      (** cumulative {!Par}-executed tasks, transient maps + pool
          (process-wide) *)
  par_spawns : int;  (** cumulative helper domains spawned (process-wide) *)
  par_jobs : int;  (** cumulative pool job submissions (process-wide) *)
  par_helper_tasks : int;
      (** pool tasks claimed by helper domains rather than the submitter
          — divide by pool tasks for utilization (process-wide) *)
  spec_sims : int;
      (** cumulative specimen simulations run in candidate rounds *)
  spec_skips : int;
      (** cumulative specimen simulations the incremental cache avoided *)
}

val to_record : epoch -> Record.t
val of_record : Record.t -> epoch option
val write : Sink.t -> epoch -> unit

(** Robustness events emitted by crash-safe training runs into the same
    stream as the epoch records.  Each carries an ["event"] string field
    as discriminator (epoch records have none), so mixed JSONL files
    stay unambiguous: filter on the presence/value of ["event"]. *)
type robustness =
  | Checkpoint_written of {
      epoch : int;
      rounds : int;
      duration_s : float;  (** time spent serializing + fsyncing *)
      path : string;
    }
  | Resumed_from of {
      epoch : int;
      rounds : int;
      elapsed_s : float;  (** wall time the resumed run had already spent *)
      path : string;
    }
  | Worker_retry of { task : int; attempt : int; error : string }
  | Table_verified of {
      rounds : int;  (** cumulative improvement rounds at the check *)
      rules : int;  (** live rules analyzed *)
      sound : bool;  (** partition proven and every action in bounds *)
      problems : int;  (** flaws found (0 when [sound]) *)
      window_hi : float;  (** proven bound on every reachable cwnd *)
    }
      (** the static analyzer ran over the training table
          ([remy_train --verify]'s post-round check) *)
  | Worker_joined of { worker : int; addr : string; pid : int }
      (** a distributed worker completed the handshake *)
  | Worker_lost of { worker : int; addr : string; reason : string; requeued : int }
      (** a distributed worker died or timed out; [requeued] of its
          in-flight tasks went back on the queue *)
  | Task_reissued of { index : int; from_worker : int; to_worker : int }
      (** a requeued task was dispatched to a surviving worker *)

val robustness_to_record : robustness -> Record.t
val robustness_of_record : Record.t -> robustness option
(** [None] for records without a recognized ["event"] field — epoch
    records in the same stream decode as [None] here, and vice versa. *)

val write_robustness : Sink.t -> robustness -> unit
