(** Pluggable record sinks: where trace and telemetry records go.

    A sink is two closures; everything upstream (tracer, probes,
    optimizer telemetry) is agnostic about the output format.  All sinks
    are synchronous and unbuffered beyond stdlib channel buffering —
    simulation determinism never depends on a sink, because sinks only
    observe. *)

type t = { emit : Record.t -> unit; close : unit -> unit }

val emit : t -> Record.t -> unit
val close : t -> unit
(** Flush (and for {!to_file}, close) the underlying channel. *)

val null : t
(** Swallows everything. *)

val jsonl : out_channel -> t
(** One JSON object per line. *)

val csv : ?columns:string list -> out_channel -> t
(** Comma-separated with a header row.  When [columns] is omitted the
    header is derived from the first record; later records are projected
    onto it (missing fields empty, unknown fields dropped). *)

val memory : unit -> t * (unit -> Record.t list)
(** In-memory sink for tests: returns the sink and a function that reads
    back everything emitted so far, in order. *)

val to_file : ?append:bool -> ?columns:string list -> string -> t
(** Open [path] and write CSV if the extension is [.csv], JSONL
    otherwise.  [close] flushes, fsyncs and closes the file — once it
    returns, the complete trace is durable on disk.  With [~append:true]
    (used by resumed training runs) existing records are kept, new ones
    are appended, and a CSV header is only written if the file was
    empty. *)

val fold_file : string -> init:'a -> ('a -> Record.t -> 'a) -> ('a, string) result
(** Stream a trace through a fold, one record in memory at a time —
    constant space even for multi-gigabyte traces of 10k-flow runs.
    Sniffs JSONL (first non-empty line starts with ['{']) vs CSV (first
    line is the header).  Stops at the first malformed JSONL line with
    its diagnostic. *)

val read_file : string -> (Record.t list, string) result
(** [fold_file] materialized into a list; prefer {!fold_file} for
    aggregation over large traces. *)
