(* The runtime's well-known latency/delay distributions.

   Four histograms, chosen to answer "where do the evals/s go and what do
   the tails look like":
     - sim_wall_s        wall time of one specimen simulation
     - eval_round_s      wall time of one candidate-evaluation round
     - queueing_delay_s  simulated per-packet queueing delay at delivery
                         (the distribution the paper's Figure 5 tails plot)
     - sojourn_s         simulated per-packet bottleneck-queue sojourn
                         (enqueue to dequeue, excluding transmission)

   Disabled (the default), every record site is one atomic load — hot
   loops guard the argument computation behind [enabled ()] so not even
   the subtraction happens.  Each domain records into its own histogram
   set (single-writer fast path, no atomics per sample); [merged] sums
   them bucketwise, which is order-independent and therefore deterministic
   however the pool scheduled the work. *)

type kind = Sim_wall | Eval_round | Queueing_delay | Sojourn

let kind_name = function
  | Sim_wall -> "sim_wall_s"
  | Eval_round -> "eval_round_s"
  | Queueing_delay -> "queueing_delay_s"
  | Sojourn -> "sojourn_s"

let all_kinds = [ Eval_round; Queueing_delay; Sim_wall; Sojourn ]
(* name-sorted, the canonical export order *)

type set = {
  sim_wall : Histogram.t;
  eval_round : Histogram.t;
  queueing_delay : Histogram.t;
  sojourn : Histogram.t;
}

let make_set () =
  {
    sim_wall = Histogram.create ();
    eval_round = Histogram.create ();
    queueing_delay = Histogram.create ();
    sojourn = Histogram.create ();
  }

let of_set s = function
  | Sim_wall -> s.sim_wall
  | Eval_round -> s.eval_round
  | Queueing_delay -> s.queueing_delay
  | Sojourn -> s.sojourn

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

(* Mutated only inside the DLS init closure under [registry_mutex];
   snapshot/merge also lock. *)
(* remy-lint: allow global-mutable *)
let registry : set list ref = ref []
let registry_mutex = Mutex.create ()

let key =
  Domain.DLS.new_key (fun () ->
      let s = make_set () in
      Mutex.lock registry_mutex;
      registry := s :: !registry;
      Mutex.unlock registry_mutex;
      s)

let record kind v =
  if Atomic.get enabled_flag then
    Histogram.record (of_set (Domain.DLS.get key) kind) v

let reset () =
  Mutex.lock registry_mutex;
  List.iter
    (fun s -> List.iter (fun k -> Histogram.clear (of_set s k)) all_kinds)
    !registry;
  Mutex.unlock registry_mutex

let merged kind =
  Mutex.lock registry_mutex;
  let sets = !registry in
  Mutex.unlock registry_mutex;
  let into = Histogram.create () in
  List.iter (fun s -> Histogram.merge_into ~into (of_set s kind)) sets;
  into

let all_merged () = List.map (fun k -> (kind_name k, merged k)) all_kinds

let summary_fields () : Record.t =
  List.concat_map
    (fun (name, h) ->
      if Histogram.count h = 0 then []
      else Histogram.summary_fields ~prefix:("h_" ^ name) h)
    (all_merged ())
