(** Nestable span profiler: named phases accumulated into a per-run tree.

    [span "eval" f] times [f] against {!Clock.now_s} and charges it to the
    node ["eval"] under the innermost open span of the calling domain.
    Disabled (the default), [span] is one atomic load and a tail call —
    zero cost, like {!Trace} — and since spans only observe, simulation
    and training outputs are bit-identical with profiling on or off.

    Every domain owns a private tree, so spans opened inside
    {!Remy.Par.Pool} tasks are contention-free; {!snapshot} returns the
    enabling domain's tree (root ["main"]) plus all worker-domain trees
    merged into one (root ["workers"]).  Merging visits children in name
    order, making the merged structure deterministic regardless of domain
    scheduling. *)

type node = {
  name : string;
  mutable total_s : float;  (** wall seconds spent inside this span *)
  mutable count : int;  (** times the span was entered *)
  children : (string, node) Hashtbl.t;
}

val enable : unit -> unit
(** Turn span recording on; the calling domain becomes the ["main"] tree
    of {!snapshot}. *)

val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Zero every domain's tree.  Call only while worker domains are idle. *)

val span : string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span.  Exceptions propagate; the span is
    closed either way, and an exception unwinding through several nested
    spans closes each of them (unbalanced exits cannot corrupt the
    stack). *)

val snapshot : unit -> node list
(** Deep-copied forest: [["main"]] and, if any pool domain recorded spans,
    [["main"; "workers"]].  Safe to read while profiling stays enabled. *)

val merge : name:string -> node list -> node
(** Merge trees by path under a fresh root, children visited in sorted
    name order (deterministic).  Exposed for tests. *)

val total : node -> float
val self_s : node -> float
(** Total minus children's totals, clamped at zero. *)

val find : node -> string list -> node option
(** Descend by child names, e.g. [find main ["remy_train"; "design"]]. *)

val to_json : node list -> string
(** Nested phase tree: name, total_s, self_s, count, children. *)

val to_collapsed : node list -> string
(** Collapsed-stack lines ["main;remy_train;design 12345"] weighted by
    integer microseconds of self time — flamegraph.pl / speedscope
    input. *)
