(* Log-bucketed latency histogram, HDR-style: a fixed preallocated bucket
   array covering [2^min_exp, 2^max_exp) with [subbuckets] geometric
   subdivisions per octave.  Bucket indices come straight from the float's
   bit pattern (exponent bits select the octave, the top mantissa bits the
   subbucket), so the record fast path is a handful of integer ops — no
   [log], no allocation, no atomics.  A histogram is single-writer;
   cross-domain aggregation goes through [merge_into], which is bucketwise
   integer addition and therefore independent of merge order. *)

(* Octaves 2^-30 (~1 ns) .. 2^10 (1024 s): every latency this runtime
   measures, with underflow/overflow buckets catching the rest. *)
let min_exp = -30
let max_exp = 10
let sub_bits = 5
let subbuckets = 1 lsl sub_bits
let octaves = max_exp - min_exp

(* Upper bound on a bucket's relative width: hi/lo - 1 <= 1/subbuckets. *)
let relative_error = 1. /. float_of_int subbuckets

let n_buckets = (octaves * subbuckets) + 2 (* + underflow, overflow *)
let underflow = 0
let overflow = n_buckets - 1

type t = { counts : int array; mutable total : int }

let create () = { counts = Array.make n_buckets 0; total = 0 }

let clear t =
  Array.fill t.counts 0 n_buckets 0;
  t.total <- 0

let count t = t.total

(* Bucket index for a strictly positive finite [v] inside the tracked
   range.  IEEE754 doubles order the (exponent, mantissa) fields
   lexicographically, so the unbiased exponent and top mantissa bits give
   the octave and geometric subbucket directly. *)
let index_of v =
  let bits = Int64.bits_of_float v in
  let e = Int64.to_int (Int64.logand (Int64.shift_right_logical bits 52) 0x7FFL) - 1023 in
  if e < min_exp then underflow
  else if e >= max_exp then overflow
  else begin
    let sub = Int64.to_int (Int64.logand (Int64.shift_right_logical bits 47) 0x1FL) in
    1 + (((e - min_exp) * subbuckets) + sub)
  end

let record t v =
  let i =
    if Float.is_nan v || v <= 0. then underflow
    else if v = Float.infinity then overflow
    else index_of v
  in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let merge_into ~into t =
  let c = into.counts and s = t.counts in
  for i = 0 to n_buckets - 1 do
    c.(i) <- c.(i) + s.(i)
  done;
  into.total <- into.total + t.total

(* Bucket bounds.  Slot 0 underflows to 0; the overflow slot reports the
   top of the tracked range. *)
let bucket_lo i =
  if i = underflow then 0.
  else if i = overflow then Float.ldexp 1. max_exp
  else begin
    let k = i - 1 in
    let e = min_exp + (k / subbuckets) in
    let sub = k mod subbuckets in
    Float.ldexp (1. +. (float_of_int sub /. float_of_int subbuckets)) e
  end

let bucket_hi i = if i >= overflow then Float.ldexp 1. max_exp else bucket_lo (i + 1)

(* Quantile = upper edge of the bucket holding the rank-ceil(q*n) sample,
   so for in-range data: exact <= quantile <= exact * (1 + relative_error)
   with the same rank convention. *)
let quantile t q =
  if t.total = 0 then Float.nan
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int t.total))) in
    let i = ref 0 in
    let cum = ref t.counts.(0) in
    while !cum < rank && !i < n_buckets - 1 do
      incr i;
      cum := !cum + t.counts.(!i)
    done;
    bucket_hi !i
  end

let max_value t =
  if t.total = 0 then Float.nan
  else begin
    let i = ref (n_buckets - 1) in
    while !i > 0 && t.counts.(!i) = 0 do
      decr i
    done;
    bucket_hi !i
  end

type summary = { n : int; p50 : float; p90 : float; p99 : float; p999 : float }

let summarize t =
  {
    n = t.total;
    p50 = quantile t 0.5;
    p90 = quantile t 0.9;
    p99 = quantile t 0.99;
    p999 = quantile t 0.999;
  }

let summary_fields ~prefix t : Record.t =
  let s = summarize t in
  let f k v =
    (prefix ^ "_" ^ k, if Float.is_finite v then Record.Float v else Record.Str (Float.to_string v))
  in
  [ (prefix ^ "_count", Record.Int s.n); f "p50" s.p50; f "p90" s.p90; f "p99" s.p99; f "p999" s.p999 ]
