type queue_stats = {
  mutable enqueues : int;
  mutable dequeues : int;
  mutable drops : int;
  mutable marks : int;
  mutable qlen_sum : float;
  mutable qlen_samples : int;
  mutable qlen_max : int;
}

(* A full histogram is ~10 KB; keeping one per flow is what made
   summarizing a 10k-flow trace blow up.  Per-flow detail is therefore
   capped: the first [detailed_flow_cap] flows seen get their own
   histogram, every delay sample additionally lands in the aggregate
   [delay_all], and flows beyond the cap only set [delay_capped]. *)
let detailed_flow_cap = 64

type t = {
  mutable records : int;
  mutable t_min : float;
  mutable t_max : float;
  mutable timeouts : int;
  mutable notes : int;
  by_event : (string, int ref) Hashtbl.t;
  by_queue : (string, queue_stats) Hashtbl.t;
  delivers_by_flow : (int, int ref) Hashtbl.t;
  delay_by_flow : (int, Histogram.t) Hashtbl.t;
  delay_all : Histogram.t;
  mutable delay_capped : bool;
}

let create () =
  {
    records = 0;
    t_min = infinity;
    t_max = neg_infinity;
    timeouts = 0;
    notes = 0;
    by_event = Hashtbl.create 16;
    by_queue = Hashtbl.create 8;
    delivers_by_flow = Hashtbl.create 16;
    delay_by_flow = Hashtbl.create 16;
    delay_all = Histogram.create ();
    delay_capped = false;
  }

let flow_delay_histogram t flow =
  match Hashtbl.find_opt t.delay_by_flow flow with
  | Some h -> Some h
  | None ->
    if Hashtbl.length t.delay_by_flow < detailed_flow_cap then begin
      let h = Histogram.create () in
      Hashtbl.add t.delay_by_flow flow h;
      Some h
    end
    else begin
      t.delay_capped <- true;
      None
    end

let queue_stats t q =
  match Hashtbl.find_opt t.by_queue q with
  | Some s -> s
  | None ->
    let s =
      {
        enqueues = 0;
        dequeues = 0;
        drops = 0;
        marks = 0;
        qlen_sum = 0.;
        qlen_samples = 0;
        qlen_max = 0;
      }
    in
    Hashtbl.add t.by_queue q s;
    s

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.add tbl key (ref 1)

let add t (r : Record.t) =
  t.records <- t.records + 1;
  (match Option.bind (Record.find "t" r) Record.to_float with
  | Some at ->
    if at < t.t_min then t.t_min <- at;
    if at > t.t_max then t.t_max <- at
  | None -> ());
  match Option.bind (Record.find "ev" r) Record.to_str with
  | None -> ()
  | Some ev ->
    bump t.by_event ev;
    let queue () = Option.bind (Record.find "q" r) Record.to_str in
    let qlen () = Option.bind (Record.find "qlen" r) Record.to_int in
    let observe_qlen () =
      match (queue (), qlen ()) with
      | Some q, Some n ->
        let s = queue_stats t q in
        s.qlen_sum <- s.qlen_sum +. float_of_int n;
        s.qlen_samples <- s.qlen_samples + 1;
        if n > s.qlen_max then s.qlen_max <- n;
        Some (queue_stats t q)
      | Some q, None -> Some (queue_stats t q)
      | None, _ -> None
    in
    (match ev with
    | "enqueue" -> (
      match observe_qlen () with Some s -> s.enqueues <- s.enqueues + 1 | None -> ())
    | "dequeue" -> (
      match observe_qlen () with Some s -> s.dequeues <- s.dequeues + 1 | None -> ())
    | "drop" -> (
      match observe_qlen () with Some s -> s.drops <- s.drops + 1 | None -> ())
    | "ecn_mark" -> (
      match observe_qlen () with Some s -> s.marks <- s.marks + 1 | None -> ())
    | "qsample" -> ignore (observe_qlen ())
    | "deliver" -> (
      ignore (observe_qlen ());
      match Option.bind (Record.find "flow" r) Record.to_int with
      | Some flow ->
        bump t.delivers_by_flow flow;
        (match Option.bind (Record.find "delay_s" r) Record.to_float with
        | Some d ->
          Histogram.record t.delay_all d;
          (match flow_delay_histogram t flow with
          | Some h -> Histogram.record h d
          | None -> ())
        | None -> ())
      | None -> ())
    | "timeout" -> t.timeouts <- t.timeouts + 1
    | "note" -> t.notes <- t.notes + 1
    | _ -> ())

let of_records records =
  let t = create () in
  List.iter (add t) records;
  t

(* Streams: constant space in the number of events, bounded space in the
   number of flows. *)
let of_file path =
  let t = create () in
  Result.map
    (fun () -> t)
    (Sink.fold_file path ~init:() (fun () r -> add t r))

let count t ev =
  match Hashtbl.find_opt t.by_event ev with Some r -> !r | None -> 0

(* Monomorphic comparison at each call site: key types differ per table
   and polymorphic compare is linted against. *)
let sorted_keys cmp tbl =
  List.sort cmp (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let pp fmt t =
  if t.records = 0 then Format.fprintf fmt "empty trace@."
  else begin
    let span =
      if Float.is_finite t.t_min && Float.is_finite t.t_max then t.t_max -. t.t_min
      else 0.
    in
    Format.fprintf fmt "%d records spanning %.6g s (t = %.6g .. %.6g)@." t.records
      span
      (if Float.is_finite t.t_min then t.t_min else 0.)
      (if Float.is_finite t.t_max then t.t_max else 0.);
    Format.fprintf fmt "@.events:@.";
    List.iter
      (fun ev -> Format.fprintf fmt "  %-10s %8d@." ev (count t ev))
      (sorted_keys String.compare t.by_event);
    if Hashtbl.length t.by_queue > 0 then begin
      Format.fprintf fmt "@.%-14s %9s %9s %7s %7s %10s %6s@." "queue" "enqueue"
        "dequeue" "drop" "mark" "mean qlen" "max";
      List.iter
        (fun q ->
          let s = Hashtbl.find t.by_queue q in
          let mean =
            if s.qlen_samples > 0 then s.qlen_sum /. float_of_int s.qlen_samples
            else 0.
          in
          Format.fprintf fmt "%-14s %9d %9d %7d %7d %10.2f %6d@." q s.enqueues
            s.dequeues s.drops s.marks mean s.qlen_max)
        (sorted_keys String.compare t.by_queue)
    end;
    let flows = sorted_keys Int.compare t.delivers_by_flow in
    if flows <> [] then begin
      let total =
        List.fold_left (fun acc f -> acc + !(Hashtbl.find t.delivers_by_flow f)) 0 flows
      in
      Format.fprintf fmt "@.deliveries: %d across %d flow(s)" total (List.length flows);
      if List.length flows <= 16 then begin
        Format.fprintf fmt " —";
        List.iter
          (fun f -> Format.fprintf fmt " %d:%d" f !(Hashtbl.find t.delivers_by_flow f))
          flows
      end;
      Format.fprintf fmt "@."
    end;
    let delay_flows = sorted_keys Int.compare t.delay_by_flow in
    if delay_flows <> [] then
      if (not t.delay_capped) && List.length delay_flows <= 16 then begin
        Format.fprintf fmt "@.%-6s %9s %12s %12s %12s@." "flow" "samples"
          "delay p50" "delay p99" "max";
        List.iter
          (fun f ->
            let h = Hashtbl.find t.delay_by_flow f in
            Format.fprintf fmt "%-6d %9d %11.4gs %11.4gs %11.4gs@." f
              (Histogram.count h) (Histogram.quantile h 0.5)
              (Histogram.quantile h 0.99) (Histogram.max_value h))
          delay_flows
      end
      else begin
        (* Too many flows for a per-flow table: one aggregate row.  The
           aggregate histogram covers every flow, including those past
           the per-flow detail cap. *)
        let h = t.delay_all in
        Format.fprintf fmt "@.%-6s %9s %12s %12s %12s@." "flows" "samples"
          "delay p50" "delay p99" "max";
        Format.fprintf fmt "%-6d %9d %11.4gs %11.4gs %11.4gs@."
          (Hashtbl.length t.delivers_by_flow)
          (Histogram.count h) (Histogram.quantile h 0.5)
          (Histogram.quantile h 0.99) (Histogram.max_value h)
      end;
    if t.timeouts > 0 then Format.fprintf fmt "timeouts: %d@." t.timeouts
  end
