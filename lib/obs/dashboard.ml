(* Live training dashboard: a few ANSI-redrawn lines fed from the same
   Telemetry.epoch records the --telemetry sink receives, so watching a
   run costs nothing the telemetry stream didn't already pay.  Rendering
   is pure ([render] returns the frame as a string, tests cover it
   directly); only [update]/[finish] touch the terminal, rewriting in
   place with cursor-up + erase-line so long runs don't scroll. *)

type t = {
  out : out_channel;
  wall_budget_s : float option;
  mutable scores : float list;  (* most recent first, bounded *)
  mutable last : Telemetry.epoch option;
  mutable lines_drawn : int;
}

let history = 60 (* sparkline window, newest-first *)

let create ?(out = stdout) ?wall_budget_s () =
  { out; wall_budget_s; scores = []; last = None; lines_drawn = 0 }

let ramp = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
              "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]
(* U+2581..U+2588 lower one-eighth .. full block *)

let sparkline values =
  let values = List.filter (fun v -> not (Float.is_nan v)) values in
  match values with
  | [] -> ""
  | v0 :: _ ->
    let lo = List.fold_left Float.min v0 values in
    let hi = List.fold_left Float.max v0 values in
    let span = hi -. lo in
    let cell v =
      if span <= 0. then ramp.(3)
      else begin
        let i = int_of_float ((v -. lo) /. span *. 7.99) in
        ramp.(Stdlib.max 0 (Stdlib.min 7 i))
      end
    in
    String.concat "" (List.map cell values)

let truncate_trailing l = if List.length l > history then List.filteri (fun i _ -> i < history) l else l

let fmt_duration s =
  if Float.is_nan s || s < 0. then "--"
  else begin
    let s = int_of_float s in
    if s >= 3600 then Printf.sprintf "%dh%02dm" (s / 3600) (s mod 3600 / 60)
    else if s >= 60 then Printf.sprintf "%dm%02ds" (s / 60) (s mod 60)
    else Printf.sprintf "%ds" s
  end

let pct num den = if den <= 0 then 0. else 100. *. float_of_int num /. float_of_int den

(* One frame, no cursor control: four '\n'-terminated lines. *)
let render t =
  match t.last with
  | None -> "remy_train: waiting for first epoch...\n"
  | Some (e : Telemetry.epoch) ->
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf "epoch %-5d rules %-5d score %.6g\n" (e.epoch + 1)
         e.live_rules e.score);
    let scores = List.rev t.scores in
    let lo = List.fold_left Float.min e.score scores in
    let hi = List.fold_left Float.max e.score scores in
    Buffer.add_string b
      (Printf.sprintf "score  %s  [%.4g .. %.4g]\n" (sparkline scores) lo hi);
    let evals_per_s =
      if e.wall_s > 0. then float_of_int e.evaluations /. e.wall_s else 0.
    in
    Buffer.add_string b
      (Printf.sprintf
         "evals  %-9d %8.1f/s   cache hit %5.1f%%   pool util %5.1f%%\n"
         e.evaluations evals_per_s
         (pct e.spec_skips (e.spec_sims + e.spec_skips))
         (pct e.par_helper_tasks e.par_tasks));
    (match t.wall_budget_s with
    | Some budget when budget > 0. ->
      Buffer.add_string b
        (Printf.sprintf "wall   %s / %s   eta %s\n" (fmt_duration e.wall_s)
           (fmt_duration budget)
           (fmt_duration (budget -. e.wall_s)))
    | _ -> Buffer.add_string b (Printf.sprintf "wall   %s\n" (fmt_duration e.wall_s)));
    Buffer.contents b

let count_lines s =
  String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s

let repaint t frame =
  (* Move up over the previous frame and repaint; erase each line first
     so a shorter new line leaves no stale tail. *)
  if t.lines_drawn > 0 then Printf.fprintf t.out "\027[%dA" t.lines_drawn;
  let lines =
    match List.rev (String.split_on_char '\n' frame) with
    | "" :: rest -> List.rev rest (* drop the final '\n's empty tail *)
    | _ -> String.split_on_char '\n' frame
  in
  List.iter
    (fun line ->
      output_string t.out "\027[2K";
      output_string t.out line;
      output_char t.out '\n')
    lines;
  t.lines_drawn <- count_lines frame;
  flush t.out

let update t (e : Telemetry.epoch) =
  t.last <- Some e;
  t.scores <- truncate_trailing (e.score :: t.scores);
  repaint t (render t)

let finish t =
  if t.lines_drawn > 0 then begin
    output_char t.out '\n';
    flush t.out;
    t.lines_drawn <- 0
  end
