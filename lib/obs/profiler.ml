(* Nestable named spans over Clock.now_s, accumulated into per-domain
   phase trees.  Disabled (the default) a span is one atomic load and a
   tail call — no clock reads, no tree writes — so instrumented code paths
   cost nothing when profiling is off, mirroring Trace's contract.

   Each domain owns its tree (domain-local storage), so worker-domain
   spans never contend with the submitting domain.  [snapshot] returns the
   enabling domain's tree plus all worker trees merged into one; the merge
   visits children in name order, so its structure and arithmetic are
   deterministic no matter which domain finished first. *)

type node = {
  name : string;
  mutable total_s : float;
  mutable count : int;
  children : (string, node) Hashtbl.t;
}

let make_node name = { name; total_s = 0.; count = 0; children = Hashtbl.create 8 }

type domain_state = { root : node; mutable stack : node list }

let enabled = Atomic.make false

(* Registry of every domain's state, so snapshot/reset can reach trees
   created on pool domains.  Guarded by a mutex: registration happens once
   per domain, snapshot/reset when the pool is quiescent. *)
(* remy-lint: allow global-mutable *)
let registry : (int * domain_state) list ref = ref []
let registry_mutex = Mutex.create ()
let main_domain = Atomic.make (-1)

let key =
  Domain.DLS.new_key (fun () ->
      let st = { root = make_node "root"; stack = [] } in
      let id = (Domain.self () :> int) in
      Mutex.lock registry_mutex;
      registry := (id, st) :: !registry;
      Mutex.unlock registry_mutex;
      st)

let enable () =
  Atomic.set main_domain (Domain.self () :> int);
  (* Touch the DLS so the enabling domain is registered even if it never
     opens a span itself. *)
  ignore (Domain.DLS.get key);
  Atomic.set enabled true

let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

let reset () =
  Mutex.lock registry_mutex;
  List.iter
    (fun (_, st) ->
      Hashtbl.reset st.root.children;
      st.root.total_s <- 0.;
      st.root.count <- 0;
      st.stack <- [])
    !registry;
  Mutex.unlock registry_mutex

let child parent name =
  match Hashtbl.find_opt parent.children name with
  | Some n -> n
  | None ->
    let n = make_node name in
    Hashtbl.add parent.children name n;
    n

let span_on name f =
  let st = Domain.DLS.get key in
  let parent = match st.stack with n :: _ -> n | [] -> st.root in
  let node = child parent name in
  st.stack <- node :: st.stack;
  let t0 = Clock.now_s () in
  Fun.protect
    ~finally:(fun () ->
      node.total_s <- node.total_s +. (Clock.now_s () -. t0);
      node.count <- node.count + 1;
      (* Unbalanced exits (an exception unwinding through several spans)
         pop every frame above this node too — Fun.protect runs the inner
         finalizers first, so the head is normally [node] already. *)
      match st.stack with
      | n :: rest when n == node -> st.stack <- rest
      | stack ->
        let rec drop = function
          | n :: rest -> if n == node then rest else drop rest
          | [] -> []
        in
        st.stack <- drop stack)
    f

let span name f = if Atomic.get enabled then span_on name f else f ()

(* --- aggregation ----------------------------------------------------- *)

let sorted_children n =
  List.sort
    (fun (a : node) b -> String.compare a.name b.name)
    (Hashtbl.fold (fun _ c acc -> c :: acc) n.children [])

let rec copy n =
  let c = make_node n.name in
  c.total_s <- n.total_s;
  c.count <- n.count;
  List.iter (fun ch -> Hashtbl.add c.children ch.name (copy ch)) (sorted_children n);
  c

let rec merge_node dst src =
  dst.total_s <- dst.total_s +. src.total_s;
  dst.count <- dst.count + src.count;
  List.iter (fun ch -> merge_node (child dst ch.name) ch) (sorted_children src)

let merge ~name nodes =
  let dst = make_node name in
  List.iter (fun n -> List.iter (fun ch -> merge_node (child dst ch.name) ch) (sorted_children n)) nodes;
  dst

let snapshot () =
  Mutex.lock registry_mutex;
  let entries = List.sort (fun (a, _) (b, _) -> Int.compare a b) !registry in
  Mutex.unlock registry_mutex;
  let main_id = Atomic.get main_domain in
  let mains, workers =
    List.partition (fun (id, _) -> id = main_id || main_id < 0) entries
  in
  let main =
    match mains with
    | (_, st) :: _ ->
      let c = copy st.root in
      { c with name = "main" }
    | [] -> make_node "main"
  in
  let worker_roots =
    List.filter_map
      (fun (_, st) -> if Hashtbl.length st.root.children = 0 then None else Some st.root)
      workers
  in
  match worker_roots with
  | [] -> [ main ]
  | roots -> [ main; merge ~name:"workers" roots ]

let total root = root.total_s

let self_s n =
  let children_s =
    Hashtbl.fold (fun _ c acc -> acc +. c.total_s) n.children 0.
  in
  Float.max 0. (n.total_s -. children_s)

let find root path =
  let rec go n = function
    | [] -> Some n
    | name :: rest -> (
      match Hashtbl.find_opt n.children name with
      | Some c -> go c rest
      | None -> None)
  in
  go root path

(* --- export ---------------------------------------------------------- *)

(* A root node is a container: its own total/count are zero and only its
   children carry measurements, so exports report children with the root
   as the stack prefix. *)

let rec node_json b (n : node) =
  Buffer.add_string b "{\"name\":\"";
  Buffer.add_string b (String.concat "" (List.map (fun c ->
      match c with '"' | '\\' -> Printf.sprintf "\\%c" c | c -> String.make 1 c)
      (List.init (String.length n.name) (String.get n.name))));
  Buffer.add_string b "\",\"total_s\":";
  Buffer.add_string b (Record.float_str n.total_s);
  Buffer.add_string b ",\"self_s\":";
  Buffer.add_string b (Record.float_str (self_s n));
  Buffer.add_string b ",\"count\":";
  Buffer.add_string b (string_of_int n.count);
  Buffer.add_string b ",\"children\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      node_json b c)
    (sorted_children n);
  Buffer.add_string b "]}"

let to_json roots =
  let b = Buffer.create 1024 in
  Buffer.add_char b '[';
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      node_json b r)
    roots;
  Buffer.add_char b ']';
  Buffer.contents b

(* Collapsed-stack format: one "frame;frame;frame count" line per stack,
   weights in integer microseconds of self time — what flamegraph.pl and
   speedscope ingest directly. *)
let to_collapsed roots =
  let b = Buffer.create 1024 in
  let rec go prefix n =
    let path = if prefix = "" then n.name else prefix ^ ";" ^ n.name in
    let self_us = int_of_float (Float.round (self_s n *. 1e6)) in
    if self_us > 0 || Hashtbl.length n.children = 0 then
      Buffer.add_string b (Printf.sprintf "%s %d\n" path (Stdlib.max 0 self_us));
    List.iter (go path) (sorted_children n)
  in
  List.iter (fun root -> List.iter (go root.name) (sorted_children root)) roots;
  Buffer.contents b
