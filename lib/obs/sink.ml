type t = { emit : Record.t -> unit; close : unit -> unit }

let emit t r = t.emit r
let close t = t.close ()
let null = { emit = (fun _ -> ()); close = (fun () -> ()) }

let jsonl oc =
  {
    emit =
      (fun r ->
        output_string oc (Record.to_json r);
        output_char oc '\n');
    close = (fun () -> flush oc);
  }

let csv_gen ~emit_header ?columns oc =
  (* The header is either fixed up front or derived from the first
     record's keys; later records are projected onto it.  When appending
     to a file that already has a header, [emit_header] is false: the
     column set still drives projection but is not re-written. *)
  let header = ref columns in
  let write_header cols =
    if emit_header then begin
      output_string oc (Record.csv_header cols);
      output_char oc '\n'
    end
  in
  (match columns with Some cols -> write_header cols | None -> ());
  {
    emit =
      (fun r ->
        let cols =
          match !header with
          | Some cols -> cols
          | None ->
            let cols = List.map fst r in
            header := Some cols;
            write_header cols;
            cols
        in
        output_string oc (Record.to_csv ~columns:cols r);
        output_char oc '\n');
    close = (fun () -> flush oc);
  }

let csv ?columns oc = csv_gen ~emit_header:true ?columns oc

let memory () =
  let acc = ref [] in
  ( { emit = (fun r -> acc := r :: !acc); close = (fun () -> ()) },
    fun () -> List.rev !acc )

let is_csv_path path = Filename.check_suffix (String.lowercase_ascii path) ".csv"

(* Unlike the atomic tmp+fsync+rename publishers ([Checkpoint.save],
   [Sexp.save]), a file sink streams — records hit the file as emitted,
   so there is no atomic publish.  Close does flush + fsync, making the
   complete trace durable once [close] returns (the chaos harness diffs
   traces across crashed runs, so "closed" must mean "on disk"). *)
let to_file ?(append = false) ?columns path =
  let oc =
    if append then open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
    else open_out path
  in
  (* When appending to a non-empty CSV, the header is already there. *)
  let had_content = append && out_channel_length oc > 0 in
  let inner =
    if is_csv_path path then csv_gen ~emit_header:(not had_content) ?columns oc
    else jsonl oc
  in
  {
    emit = inner.emit;
    close =
      (fun () ->
        inner.close ();
        flush oc;
        (try Unix.fsync (Unix.descr_of_out_channel oc)
         with Unix.Unix_error _ -> ());
        close_out oc);
  }

(* Streaming reader: one record in memory at a time, so a multi-gigabyte
   trace of a 10k-flow run folds in constant space.  The first non-empty
   line decides the format ('{' = JSONL, anything else = a CSV header). *)
let fold_file path ~init f =
  if not (Sys.file_exists path) then Error (Printf.sprintf "%s: no such file" path)
  else begin
    let ic = open_in path in
    (* Undecided until the first non-empty line; that line is itself
       consumed as the CSV header when it is not JSON. *)
    let mode = ref `Undecided in
    let acc = ref init in
    let bad = ref None in
    (try
       while !bad = None do
         let line = input_line ic in
         if String.trim line <> "" then
           match !mode with
           | `Undecided ->
             if (String.trim line).[0] = '{' then begin
               mode := `Jsonl;
               match Record.of_json line with
               | Ok r -> acc := f !acc r
               | Error e -> bad := Some (Printf.sprintf "%s: %s in %S" path e line)
             end
             else mode := `Csv (String.split_on_char ',' (String.trim line))
           | `Jsonl -> (
             match Record.of_json line with
             | Ok r -> acc := f !acc r
             | Error e -> bad := Some (Printf.sprintf "%s: %s in %S" path e line))
           | `Csv header -> acc := f !acc (Record.of_csv ~header line)
       done
     with End_of_file -> ());
    close_in ic;
    match !bad with Some e -> Error e | None -> Ok !acc
  end

let read_file path =
  Result.map List.rev (fold_file path ~init:[] (fun acc r -> r :: acc))
