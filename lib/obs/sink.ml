type t = { emit : Record.t -> unit; close : unit -> unit }

let emit t r = t.emit r
let close t = t.close ()
let null = { emit = (fun _ -> ()); close = (fun () -> ()) }

let jsonl oc =
  {
    emit =
      (fun r ->
        output_string oc (Record.to_json r);
        output_char oc '\n');
    close = (fun () -> flush oc);
  }

let csv_gen ~emit_header ?columns oc =
  (* The header is either fixed up front or derived from the first
     record's keys; later records are projected onto it.  When appending
     to a file that already has a header, [emit_header] is false: the
     column set still drives projection but is not re-written. *)
  let header = ref columns in
  let write_header cols =
    if emit_header then begin
      output_string oc (Record.csv_header cols);
      output_char oc '\n'
    end
  in
  (match columns with Some cols -> write_header cols | None -> ());
  {
    emit =
      (fun r ->
        let cols =
          match !header with
          | Some cols -> cols
          | None ->
            let cols = List.map fst r in
            header := Some cols;
            write_header cols;
            cols
        in
        output_string oc (Record.to_csv ~columns:cols r);
        output_char oc '\n');
    close = (fun () -> flush oc);
  }

let csv ?columns oc = csv_gen ~emit_header:true ?columns oc

let memory () =
  let acc = ref [] in
  ( { emit = (fun r -> acc := r :: !acc); close = (fun () -> ()) },
    fun () -> List.rev !acc )

let is_csv_path path = Filename.check_suffix (String.lowercase_ascii path) ".csv"

let to_file ?(append = false) ?columns path =
  let oc =
    if append then open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
    else open_out path
  in
  (* When appending to a non-empty CSV, the header is already there. *)
  let had_content = append && out_channel_length oc > 0 in
  let inner =
    if is_csv_path path then csv_gen ~emit_header:(not had_content) ?columns oc
    else jsonl oc
  in
  {
    emit = inner.emit;
    close =
      (fun () ->
        inner.close ();
        close_out oc);
  }

let read_file path =
  if not (Sys.file_exists path) then Error (Printf.sprintf "%s: no such file" path)
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in ic);
    let lines = List.rev !lines in
    let nonempty = List.filter (fun l -> String.trim l <> "") lines in
    match nonempty with
    | [] -> Ok []
    | first :: rest ->
      if String.length (String.trim first) > 0 && (String.trim first).[0] = '{' then begin
        (* JSONL *)
        let records = ref [] in
        let bad = ref None in
        List.iter
          (fun l ->
            if !bad = None then
              match Record.of_json l with
              | Ok r -> records := r :: !records
              | Error e -> bad := Some (Printf.sprintf "%s: %s in %S" path e l))
          nonempty;
        match !bad with Some e -> Error e | None -> Ok (List.rev !records)
      end
      else begin
        let header = String.split_on_char ',' (String.trim first) in
        Ok (List.map (fun l -> Record.of_csv ~header l) rest)
      end
  end
