(** Multi-bottleneck topology runner.

    Generalizes the dumbbell to an arbitrary set of links and per-flow
    routes: each link is a queue discipline + constant-rate server +
    exit propagation delay, packets are routed hop-by-hop, data is
    delivered to a structure-of-arrays {!Receiver_bank}, and ACKs
    return over uncongested per-flow reverse paths whose delay equals
    the flow's total forward propagation (symmetric paths).  With a
    single link and routes [[|0|]] this reduces exactly to
    {!Dumbbell.run} — test_topology proves such runs bit-identical —
    which transitively validates the runner against the original. *)

type link_spec = {
  rate_mbps : float;
  delay_s : float;  (** one-way propagation at link exit, seconds *)
  qdisc : Dumbbell.qdisc_spec;
}

type flow_spec = {
  cc : Cc.factory;
  route : int array;
      (** link indices from the sender outward; non-empty, loop-free *)
  workload : Remy_sim.Workload.t;
  start : [ `Immediate | `Off_draw ];
}

type config = {
  links : link_spec array;
  flows : flow_spec array;
  duration : float;  (** simulated seconds *)
  seed : int;
  min_rto : float;
}

type result = {
  flows : Remy_sim.Metrics.flow_summary array;
  drops : int;  (** across all links, all causes *)
  delivered : int;  (** packets through the bottleneck (min-rate) link *)
  received : int;  (** fresh data packets accepted by receivers *)
  bottleneck_utilization : float;
}

val bottleneck_index : config -> int
(** Index of the minimum-rate link (first on ties). *)

val run :
  ?tracer:Remy_obs.Trace.t ->
  ?probe_interval:float ->
  ?sender_factory:Sender_backend.factory ->
  ?faults:Remy_faults.Spec.t ->
  config ->
  result
(** Build the network, run for [duration] virtual seconds, return
    per-flow summaries.  [probe_interval] emits periodic qsample rows
    per link (queue names suffixed ["#<link>"]) and fsample rows per
    flow.  [sender_factory] overrides the default per-record TCP
    sender backend (e.g. with the SoA RemyCC fleet); results must be
    bit-identical across conforming backends. *)

(** {1 Canonical topologies} *)

val parking_lot :
  ?hops:int ->
  ?link_mbps:float ->
  ?rtt_s:float ->
  ?queue_capacity:int ->
  ?long_flows:int ->
  n:int ->
  cc:Cc.factory ->
  workload:Remy_sim.Workload.t ->
  start:[ `Immediate | `Off_draw ] ->
  duration:float ->
  seed:int ->
  unit ->
  config
(** Chain of [hops] (default 3) equal bottlenecks.  The first
    [long_flows] (default half) flows traverse the whole chain; the
    rest are single-hop cross traffic, assigned round-robin.  [rtt_s]
    is the long flows' two-way propagation (default 0.15). *)

val fat_tree_pod :
  ?edges:int ->
  ?edge_mbps:float ->
  ?oversub:float ->
  ?rtt_s:float ->
  ?queue_capacity:int ->
  n:int ->
  cc:Cc.factory ->
  workload:Remy_sim.Workload.t ->
  start:[ `Immediate | `Off_draw ] ->
  duration:float ->
  seed:int ->
  unit ->
  config
(** One fat-tree pod: [edges] (default 4) edge links feed a shared
    aggregation uplink oversubscribed [oversub]:1 (default 4), then a
    core link; flows are spread round-robin over the edges. *)

val incast :
  ?bottleneck_mbps:float ->
  ?access_mbps:float ->
  ?rtt_s:float ->
  ?queue_capacity:int ->
  ?burst_kb:float ->
  ?period_s:float ->
  ?workload:Remy_sim.Workload.t ->
  ?start:[ `Immediate | `Off_draw ] ->
  n:int ->
  cc:Cc.factory ->
  duration:float ->
  seed:int ->
  unit ->
  config
(** Many-to-one datacenter incast: [n] senders share one bottleneck,
    each firing a synchronized [burst_kb]-kilobyte burst every
    [period_s] seconds ({!Remy_sim.Workload.incast}) unless [workload]
    overrides.  [access_mbps] optionally puts a private access link in
    front of every sender. *)

(** {1 Registry} *)

type builder =
  n:int ->
  cc:Cc.factory ->
  ?workload:Remy_sim.Workload.t ->
  ?start:[ `Immediate | `Off_draw ] ->
  ?link_mbps:float ->
  ?rtt_s:float ->
  ?queue_capacity:int ->
  duration:float ->
  seed:int ->
  unit ->
  config

val builders : (string * builder) list
(** Named canonical topologies: ["parking-lot"], ["fat-tree-pod"],
    ["incast"].  [link_mbps] scales the bottleneck tier; [rtt_s] the
    total two-way propagation. *)

val names : string list
val builder_of_name : string -> builder option
