(** Dumbbell topology runner (Fig. 2 of the paper).

    n senders share one bottleneck (queue discipline + link) toward their
    receivers; ACKs return over an uncongested reverse path.  Each flow
    has its own two-way propagation delay (for the differing-RTT
    experiment of Section 5.4), an on/off workload, and a congestion
    control factory.  The same runner serves both roles from the paper:
    Remy's design-phase simulator (unlimited queue, no loss) and the
    ns-2-style evaluation (finite DropTail/sfqCoDel/RED/XCP bottleneck),
    selected by {!qdisc_spec}. *)

type qdisc_spec =
  | Droptail of int  (** capacity in packets; the paper's default is 1000 *)
  | Codel of int
  | Sfq_codel of int
  | Dctcp_red of { capacity : int; threshold : int }
  | Xcp of int
      (** capacity in packets; router learns the link rate from the
          service model (trace links use the long-run mean, footnote 6) *)
  | With_loss of float * qdisc_spec
      (** i.i.d. non-congestive loss rate in front of the inner queue *)

type service =
  | Rate_mbps of float
  | Trace of Remy_sim.Cell_trace.t  (** replayed cyclically *)

type flow_spec = {
  cc : Cc.factory;
  rtt : float;  (** two-way propagation delay, seconds *)
  workload : Remy_sim.Workload.t;
  start : [ `Immediate | `Off_draw ];
}

type config = {
  service : service;
  qdisc : qdisc_spec;
  flows : flow_spec array;
  duration : float;  (** simulated seconds *)
  seed : int;
  min_rto : float;
}

val default_min_rto : float
(** 0.2 s — small enough not to stall short LTE outages, large enough to
    avoid spurious timeouts at the design-range RTTs. *)

val qdisc_of_spec :
  Remy_sim.Engine.t ->
  tracer:Remy_obs.Trace.t ->
  rate_mbps:float ->
  seed:int ->
  qdisc_spec ->
  Remy_sim.Qdisc.t
(** Instantiate one queue discipline from its spec.  [rate_mbps] sizes
    XCP's capacity estimate; [seed] derives the stochastic-loss stream
    of {!With_loss}.  Shared with the multi-bottleneck {!Topology}
    runner, which builds one qdisc per link. *)

val pool_presize : rate_mbps:float -> max_rtt:float -> n_flows:int -> int
(** Packet/ack pool pre-size for a scenario: a few records per flow
    plus the bottleneck's bandwidth-delay product, capped at 65536. *)

type result = {
  flows : Remy_sim.Metrics.flow_summary array;
  drops : int;  (** bottleneck drops (all causes) *)
  delivered : int;  (** packets through the bottleneck *)
  mean_utilization : float;  (** delivered bytes / link capacity * duration *)
}

val fault_seed : seed:int -> link:int -> int
(** The PRNG seed for link [link]'s fault injector, derived from the run
    seed by a fixed mix (never by splitting the flow RNG chain), so
    installing a fault schedule perturbs no other stochastic stream. *)

val run :
  ?tracer:Remy_obs.Trace.t ->
  ?probe_interval:float ->
  ?delivery_hook:(flow:int -> now:float -> seq:int -> unit) ->
  ?sender_hook:(Tcp_sender.t array -> unit) ->
  ?delack:int * float ->
  ?faults:Remy_faults.Spec.t ->
  config ->
  result
(** Build the network, run it for [config.duration] virtual seconds, and
    return per-flow summaries.  [tracer] (default off) receives every
    packet-level event from the bottleneck queue, the link, and the
    senders; with [probe_interval] it additionally gets periodic
    [qsample]/[fsample] rows (queue depth; per-flow cwnd, pacing gap,
    srtt) on the grid {!Remy_obs.Probe.times}.  Tracing only observes:
    results are bit-identical with the tracer on, off, or absent.
    [delivery_hook] observes every in-order or fresh data delivery
    (Fig. 6's sequence plot); [sender_hook] receives the sender array
    right after construction, for tests that want to inspect sender
    state afterwards.  [delack] = [(every, timeout)] switches receivers
    from the default per-packet ACKs to RFC 1122-style delayed ACKs.
    [faults] (default {!Remy_faults.Spec.empty}) installs a fault
    schedule on the bottleneck (link 0); with the empty spec the wiring
    is skipped entirely and the run is bit-identical to one without the
    fault layer. *)
