open Remy_sim
open Remy_util

(* Multi-bottleneck topology runner: a generalization of the dumbbell
   to an arbitrary set of links and per-flow routes.  Each link is a
   qdisc + transmission server + exit propagation delay; packets are
   routed hop-by-hop via a per-link next-hop table and delivered to a
   structure-of-arrays receiver bank; ACKs return over uncongested
   per-flow reverse paths whose delay equals the flow's total forward
   propagation (symmetric paths).  With one link and routes [|0|] this
   reduces exactly to the dumbbell (test_topology proves runs are
   bit-identical flow for flow). *)

type link_spec = {
  rate_mbps : float;
  delay_s : float; (* one-way propagation at link exit, seconds *)
  qdisc : Dumbbell.qdisc_spec;
}

type flow_spec = {
  cc : Cc.factory;
  route : int array; (* link indices, sender side first; non-empty *)
  workload : Workload.t;
  start : [ `Immediate | `Off_draw ];
}

type config = {
  links : link_spec array;
  flows : flow_spec array;
  duration : float;
  seed : int;
  min_rto : float;
}

type result = {
  flows : Metrics.flow_summary array;
  drops : int; (* across all links, all causes *)
  delivered : int; (* packets through the bottleneck (min-rate) link *)
  received : int; (* fresh data packets accepted by receivers *)
  bottleneck_utilization : float;
}

let validate (config : config) =
  let nl = Array.length config.links in
  if nl = 0 then invalid_arg "Topology.run: no links";
  if Array.length config.flows = 0 then invalid_arg "Topology.run: no flows";
  Array.iteri
    (fun i f ->
      if Array.length f.route = 0 then
        invalid_arg (Printf.sprintf "Topology.run: flow %d has an empty route" i);
      Array.iter
        (fun li ->
          if li < 0 || li >= nl then
            invalid_arg
              (Printf.sprintf "Topology.run: flow %d routes over unknown link %d"
                 i li))
        f.route;
      (* A loop-free route visits each link at most once; next-hop
         routing is per (link, flow), so a repeat would be ambiguous. *)
      let seen = Array.make nl false in
      Array.iter
        (fun li ->
          if seen.(li) then
            invalid_arg
              (Printf.sprintf "Topology.run: flow %d visits link %d twice" i li);
          seen.(li) <- true)
        f.route)
    config.flows

let bottleneck_index (config : config) =
  let best = ref 0 in
  Array.iteri
    (fun i (l : link_spec) ->
      if l.rate_mbps < config.links.(!best).rate_mbps then best := i)
    config.links;
  !best

let run ?(tracer = Remy_obs.Trace.off) ?probe_interval ?sender_factory
    ?(faults = Remy_faults.Spec.empty) (config : config) =
  validate config;
  let n = Array.length config.flows in
  let nl = Array.length config.links in
  let engine = Engine.create ~tracer () in
  let metrics = Metrics.create ~n_flows:n in
  let root_rng = Prng.create config.seed in
  (* One qdisc per link; per-link seeds keep loss streams independent
     (link 0 matches the dumbbell's derivation for the equivalence
     oracle).  Fault injectors, where a link's spec is non-empty, wrap
     the qdisc here and attach to the link once built below. *)
  let injectors : Remy_faults.Injector.t option array = Array.make nl None in
  let qdiscs =
    Array.mapi
      (fun li (l : link_spec) ->
        let inner =
          Dumbbell.qdisc_of_spec engine ~tracer ~rate_mbps:l.rate_mbps
            ~seed:(config.seed + (li * 7919))
            l.qdisc
        in
        let gate, inj =
          Remy_faults.Injector.maybe engine ~tracer
            ~seed:(Dumbbell.fault_seed ~seed:config.seed ~link:li)
            (Remy_faults.Spec.for_link faults li)
            ~inner
        in
        injectors.(li) <- inj;
        gate)
      config.links
  in
  (* Forward propagation and two-way RTT per flow. *)
  let fwd_delay =
    Array.map
      (fun (f : flow_spec) ->
        Array.fold_left
          (fun acc li -> acc +. config.links.(li).delay_s)
          0. f.route)
      config.flows
  in
  (* Next hop per (link, flow): the link after [li] on the flow's
     route, or -1 to deliver to the flow's receiver. *)
  let next_of = Array.make_matrix nl n (-1) in
  Array.iteri
    (fun i (f : flow_spec) ->
      let len = Array.length f.route in
      for k = 0 to len - 2 do
        next_of.(f.route.(k)).(i) <- f.route.(k + 1)
      done)
    config.flows;
  let bi = bottleneck_index config in
  let max_rtt =
    Array.fold_left (fun acc d -> Float.max acc (2. *. d)) 0. fwd_delay
  in
  let presize =
    Dumbbell.pool_presize
      ~rate_mbps:config.links.(bi).rate_mbps
      ~max_rtt ~n_flows:n
  in
  let pool = Packet.Pool.create ~packets:presize ~acks:presize () in
  let acks_handled = ref 0 in
  (* Wiring order mirrors the dumbbell; the knots (links referenced
     from exit lines created before them, sender ops from ack lines)
     are tied through option arrays. *)
  let link_arr : Link.t option array = Array.make nl None in
  let bank_ref : Receiver_bank.t option ref = ref None in
  let exit_lines =
    Array.init nl (fun li ->
        Delay_line.create engine ~delay:config.links.(li).delay_s
          ~filler:Packet.dummy (fun pkt ->
            let nxt = next_of.(li).(pkt.Packet.flow) in
            if nxt >= 0 then
              match link_arr.(nxt) with
              | Some l -> Link.send l pkt
              | None -> assert false
            else
              match !bank_ref with
              | Some bank ->
                Receiver_bank.receive bank ~now:(Engine.now engine)
                  pkt.Packet.flow pkt
              | None -> assert false))
  in
  Array.iteri
    (fun li (l : link_spec) ->
      link_arr.(li) <-
        Some
          (Link.create_constant engine ~qdisc:qdiscs.(li)
             ~bytes_per_sec:(Link.bytes_per_sec_of_mbps l.rate_mbps)
             ~sink:(fun pkt -> Delay_line.push exit_lines.(li) pkt)))
    config.links;
  Array.iteri
    (fun li inj ->
      match (inj, link_arr.(li)) with
      | Some inj, Some link -> Remy_faults.Injector.attach inj link
      | _ -> ())
    injectors;
  let link_of li =
    match link_arr.(li) with Some l -> l | None -> assert false
  in
  let ops_arr : Sender_backend.ops option array = Array.make n None in
  let ack_lines =
    Array.init n (fun i ->
        Delay_line.create engine ~delay:fwd_delay.(i) ~filler:Packet.dummy_ack
          (fun ack ->
            (match ops_arr.(i) with
            | Some ops ->
              incr acks_handled;
              ops.Sender_backend.handle_ack ack
            | None -> assert false);
            Packet.Pool.release_ack pool ack))
  in
  let bank =
    Receiver_bank.create ~metrics ~pool
      ~ack_sink:(fun flow ack -> Delay_line.push ack_lines.(flow) ack)
      ~fwd_delay
  in
  bank_ref := Some bank;
  (* Flow order fixes the RNG split sequence, exactly as the dumbbell
     does. *)
  Array.iteri
    (fun i (f : flow_spec) ->
      let rng = Prng.split root_rng in
      let first = f.route.(0) in
      let env =
        {
          Sender_backend.engine;
          pool;
          metrics;
          n_flows = n;
          flow = i;
          flow_rtt = 2. *. fwd_delay.(i);
          workload = f.workload;
          start = f.start;
          min_rto = config.min_rto;
          rng;
          transmit = (fun pkt -> Link.send (link_of first) pkt);
        }
      in
      let ops =
        match sender_factory with
        | Some factory -> factory env
        | None -> Sender_backend.records f.cc env
      in
      ops_arr.(i) <- Some ops)
    config.flows;
  let ops_of i =
    match ops_arr.(i) with Some ops -> ops | None -> assert false
  in
  (match probe_interval with
  | Some interval when Remy_obs.Trace.is_on tracer && interval > 0. ->
    List.iter
      (fun at ->
        Engine.schedule engine at (fun () ->
            let now = Engine.now engine in
            Array.iteri
              (fun li disc ->
                Remy_obs.Trace.queue_sample tracer ~now
                  ~queue:(Printf.sprintf "%s#%d" disc.Qdisc.name li)
                  ~qlen:(disc.Qdisc.length ())
                  ~qbytes:(disc.Qdisc.byte_length ()))
              qdiscs;
            for flow = 0 to n - 1 do
              let ops = ops_of flow in
              Remy_obs.Trace.flow_sample tracer ~now ~flow
                ~cwnd:(ops.Sender_backend.cwnd ())
                ~intersend_s:(ops.Sender_backend.pacing_gap ())
                ~srtt_s:(ops.Sender_backend.srtt ())
            done))
      (Remy_obs.Probe.times ~interval ~until:config.duration)
  | _ -> ());
  for i = 0 to n - 1 do
    (ops_of i).Sender_backend.start_flow ()
  done;
  Engine.run engine ~until:config.duration;
  Remy_obs.Counters.add Remy_obs.Counters.acks_processed !acks_handled;
  Remy_obs.Counters.add Remy_obs.Counters.pool_hits (Packet.Pool.hits pool);
  Remy_obs.Counters.add Remy_obs.Counters.pool_misses (Packet.Pool.misses pool);
  Metrics.finish metrics config.duration;
  let bneck = link_of bi in
  let capacity_bytes =
    Link.bytes_per_sec_of_mbps config.links.(bi).rate_mbps *. config.duration
  in
  {
    flows = Metrics.summaries metrics;
    drops = Array.fold_left (fun acc d -> acc + d.Qdisc.drops ()) 0 qdiscs;
    delivered = Link.delivered_packets bneck;
    received = Receiver_bank.delivered bank;
    bottleneck_utilization =
      (if capacity_bytes > 0. then
         float_of_int (Link.delivered_bytes bneck) /. capacity_bytes
       else 0.);
  }

(* --- canonical topologies ------------------------------------------ *)

(* Parking lot (chain of bottlenecks): [hops] links in sequence.  The
   first [long_flows] flows traverse the whole chain; the remaining
   "cross" flows are assigned round-robin to single hops.  The classic
   multi-bottleneck fairness topology. *)
let parking_lot ?(hops = 3) ?(link_mbps = 15.) ?(rtt_s = 0.15)
    ?(queue_capacity = 1000) ?long_flows ~n ~cc ~workload ~start ~duration
    ~seed () =
  if hops < 1 then invalid_arg "Topology.parking_lot: hops must be >= 1";
  if n < 1 then invalid_arg "Topology.parking_lot: n must be >= 1";
  let long = match long_flows with Some l -> min l n | None -> (n + 1) / 2 in
  let hop_delay = rtt_s /. 2. /. float_of_int hops in
  let links =
    Array.init hops (fun _ ->
        {
          rate_mbps = link_mbps;
          delay_s = hop_delay;
          qdisc = Dumbbell.Droptail queue_capacity;
        })
  in
  let all_hops = Array.init hops Fun.id in
  let flows =
    Array.init n (fun i ->
        let route =
          if i < long then all_hops else [| (i - long) mod hops |]
        in
        { cc; route; workload; start })
  in
  { links; flows; duration; seed; min_rto = Dumbbell.default_min_rto }

(* One pod of a fat tree: [edges] edge links feed a shared aggregation
   uplink (oversubscribed [oversub]:1), which feeds a core link.
   Flows are assigned to edges round-robin and all traverse
   edge -> aggregation -> core. *)
let fat_tree_pod ?(edges = 4) ?(edge_mbps = 100.) ?(oversub = 4.)
    ?(rtt_s = 0.002) ?(queue_capacity = 1000) ~n ~cc ~workload ~start
    ~duration ~seed () =
  if edges < 1 then invalid_arg "Topology.fat_tree_pod: edges must be >= 1";
  if n < 1 then invalid_arg "Topology.fat_tree_pod: n must be >= 1";
  let agg_mbps = edge_mbps *. float_of_int edges /. oversub in
  let hop_delay = rtt_s /. 2. /. 3. in
  let link rate =
    { rate_mbps = rate; delay_s = hop_delay; qdisc = Dumbbell.Droptail queue_capacity }
  in
  let links =
    Array.init (edges + 2) (fun i ->
        if i < edges then link edge_mbps
        else if i = edges then link agg_mbps
        else link (agg_mbps *. 2.))
  in
  let flows =
    Array.init n (fun i ->
        { cc; route = [| i mod edges; edges; edges + 1 |]; workload; start })
  in
  { links; flows; duration; seed; min_rto = Dumbbell.default_min_rto }

(* Many-to-one datacenter incast: n senders share one bottleneck
   toward a single receiver host, each firing a synchronized burst
   every [period_s] (extending {!Workload.incast}).  [access_mbps]
   optionally puts a private access link in front of every sender. *)
let incast ?(bottleneck_mbps = 1000.) ?access_mbps ?(rtt_s = 4e-4)
    ?(queue_capacity = 1000) ?(burst_kb = 32.) ?(period_s = 0.02) ?workload
    ?(start = `Immediate) ~n ~cc ~duration ~seed () =
  if n < 1 then invalid_arg "Topology.incast: n must be >= 1";
  let workload =
    match workload with
    | Some w -> w
    | None -> Workload.incast ~burst_bytes:(burst_kb *. 1e3) ~period:period_s
  in
  match access_mbps with
  | None ->
    let links =
      [|
        {
          rate_mbps = bottleneck_mbps;
          delay_s = rtt_s /. 2.;
          qdisc = Dumbbell.Droptail queue_capacity;
        };
      |]
    in
    let flows = Array.init n (fun _ -> { cc; route = [| 0 |]; workload; start }) in
    { links; flows; duration; seed; min_rto = Dumbbell.default_min_rto }
  | Some access ->
    (* Link n is the shared bottleneck; links 0..n-1 are per-sender
       access links carrying a quarter of the propagation budget. *)
    let links =
      Array.init (n + 1) (fun i ->
          if i < n then
            {
              rate_mbps = access;
              delay_s = rtt_s /. 8.;
              qdisc = Dumbbell.Droptail queue_capacity;
            }
          else
            {
              rate_mbps = bottleneck_mbps;
              delay_s = rtt_s /. 4.;
              qdisc = Dumbbell.Droptail queue_capacity;
            })
    in
    let flows =
      Array.init n (fun i -> { cc; route = [| i; n |]; workload; start })
    in
    { links; flows; duration; seed; min_rto = Dumbbell.default_min_rto }

(* --- registry ------------------------------------------------------ *)

type builder =
  n:int ->
  cc:Cc.factory ->
  ?workload:Workload.t ->
  ?start:[ `Immediate | `Off_draw ] ->
  ?link_mbps:float ->
  ?rtt_s:float ->
  ?queue_capacity:int ->
  duration:float ->
  seed:int ->
  unit ->
  config

let default_workload w =
  match w with
  | Some w -> w
  | None -> Workload.by_time ~mean_on:1.0 ~mean_off:0.5

let builders : (string * builder) list =
  [
    ( "parking-lot",
      fun ~n ~cc ?workload ?(start = `Off_draw) ?(link_mbps = 15.)
          ?(rtt_s = 0.15) ?(queue_capacity = 1000) ~duration ~seed () ->
        parking_lot ~link_mbps ~rtt_s ~queue_capacity ~n ~cc
          ~workload:(default_workload workload) ~start ~duration ~seed () );
    ( "fat-tree-pod",
      fun ~n ~cc ?workload ?(start = `Off_draw) ?(link_mbps = 100.)
          ?(rtt_s = 0.002) ?(queue_capacity = 1000) ~duration ~seed () ->
        fat_tree_pod ~edge_mbps:link_mbps ~rtt_s ~queue_capacity ~n ~cc
          ~workload:(default_workload workload) ~start ~duration ~seed () );
    ( "incast",
      fun ~n ~cc ?workload ?(start = `Immediate) ?(link_mbps = 1000.)
          ?(rtt_s = 4e-4) ?(queue_capacity = 1000) ~duration ~seed () ->
        incast ~bottleneck_mbps:link_mbps ~rtt_s ~queue_capacity ?workload
          ~start ~n ~cc ~duration ~seed () );
  ]

let names = List.map fst builders

let builder_of_name name =
  List.find_map
    (fun (n, b) -> if String.equal n name then Some b else None)
    builders
