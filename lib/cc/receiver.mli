(** Per-flow receiver: reorder tracking and cumulative ACK generation.

    Acknowledges every arriving data segment (the paper's receivers are
    unchanged stock TCP receivers sending periodic ACK feedback).  Each
    ACK echoes the arriving segment's sequence number, send timestamp and
    ECN mark — which is exactly the feedback a RemyCC memory consumes.
    A new connection (higher [conn] counter) resets the reorder state.
    Duplicate segments are acknowledged but not recounted in metrics. *)

type t

type delack = {
  ack_every : int;  (** cumulative ACK after this many in-order arrivals *)
  delack_timeout : float;  (** flush a pending ACK after this long, seconds *)
  schedule_in : float -> (unit -> unit) -> unit;  (** event-queue hook *)
}
(** Delayed-ACK policy (RFC 1122-style): in-order arrivals may be
    acknowledged in batches of [ack_every], with a timer flushing
    stragglers; out-of-order or duplicate arrivals are always
    acknowledged immediately so fast retransmit still works.  The
    default (no [delack]) acknowledges every packet, like the paper's
    simulator. *)

val create :
  flow:int ->
  metrics:Remy_sim.Metrics.t ->
  queueing_delay_of:(Remy_sim.Packet.t -> now:float -> float) ->
  ack_sink:(Remy_sim.Packet.ack -> unit) ->
  ?delivery_hook:(now:float -> seq:int -> unit) ->
  ?delack:delack ->
  ?pool:Remy_sim.Packet.Pool.pool ->
  unit ->
  t
(** With [pool], the receiver owns arriving data packets: every packet
    handed to {!receive} is released back to the pool once its ACK is
    generated (or immediately, for stale-connection arrivals), and ACKs
    are acquired from the pool instead of allocated.  The caller must
    then release each ACK after the sender processes it, and must not
    retain packet references across {!receive}. *)

val receive : t -> now:float -> Remy_sim.Packet.t -> unit

val expected : t -> int
(** Next in-order segment expected (for tests). *)
