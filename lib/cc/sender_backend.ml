open Remy_sim
open Remy_util

(* Pluggable sender implementations for topology runners.  The default
   backend wraps one {!Tcp_sender} record per flow; the structure-of-
   arrays RemyCC fleet in lib/core provides an alternative factory
   with identical observable behaviour (bit-identical runs). *)

type ops = {
  start_flow : unit -> unit;
  handle_ack : Packet.ack -> unit;
  cwnd : unit -> float;
  pacing_gap : unit -> float;
  srtt : unit -> float option;
}

type env = {
  engine : Engine.t;
  pool : Packet.Pool.pool;
  metrics : Metrics.t;
  n_flows : int;
  flow : int;
  flow_rtt : float; (* two-way propagation over the flow's route *)
  workload : Workload.t;
  start : [ `Immediate | `Off_draw ];
  min_rto : float;
  rng : Prng.t;
  transmit : Packet.t -> unit;
}

type factory = env -> ops
(** Called once per flow, in flow order, with one fresh factory value
    per run (fleet factories allocate shared state on first use). *)

let records cc_factory : factory =
 fun env ->
  let sender =
    Tcp_sender.create ~pool:env.pool env.engine
      {
        Tcp_sender.flow = env.flow;
        cc = cc_factory ();
        rtt = env.flow_rtt;
        workload = env.workload;
        start = env.start;
        min_rto = env.min_rto;
      }
      ~transmit:env.transmit ~metrics:env.metrics ~rng:env.rng
  in
  {
    start_flow = (fun () -> Tcp_sender.start sender);
    handle_ack = (fun ack -> Tcp_sender.handle_ack sender ack);
    cwnd = (fun () -> Tcp_sender.cwnd sender);
    pacing_gap = (fun () -> Tcp_sender.pacing_gap sender);
    srtt = (fun () -> Tcp_sender.srtt sender);
  }
