(** Structure-of-arrays receiver fleet.

    n receivers whose hot per-ack state ([expected], [conn]) lives in
    flat int arrays; behaviour is exactly {!Receiver} without the
    delayed-ACK option, so runs through the bank are bit-identical to
    runs through per-flow receiver records.  Always pooled: arriving
    packets are released back to the pool on every path, and acks are
    acquired from it (the sender side must release them after
    [handle_ack], as the dumbbell does). *)

type t

val create :
  metrics:Remy_sim.Metrics.t ->
  pool:Remy_sim.Packet.Pool.pool ->
  ack_sink:(int -> Remy_sim.Packet.ack -> unit) ->
  fwd_delay:float array ->
  t
(** [fwd_delay.(flow)] is the flow's total forward propagation delay in
    seconds (its length fixes the fleet size); queueing delay of an
    arrival is [now - sent_at - fwd_delay]. *)

val receive : t -> now:float -> int -> Remy_sim.Packet.t -> unit
(** [receive t ~now flow pkt] takes ownership of [pkt]. *)

val expected : t -> int -> int
(** Next in-order sequence number for a flow. *)

val delivered : t -> int
(** Fresh data packets accepted across all flows. *)
