open Remy_sim
open Remy_util

type qdisc_spec =
  | Droptail of int
  | Codel of int
  | Sfq_codel of int
  | Dctcp_red of { capacity : int; threshold : int }
  | Xcp of int
  | With_loss of float * qdisc_spec

type service = Rate_mbps of float | Trace of Cell_trace.t

type flow_spec = {
  cc : Cc.factory;
  rtt : float;
  workload : Workload.t;
  start : [ `Immediate | `Off_draw ];
}

type config = {
  service : service;
  qdisc : qdisc_spec;
  flows : flow_spec array;
  duration : float;
  seed : int;
  min_rto : float;
}

let default_min_rto = 0.2

type result = {
  flows : Metrics.flow_summary array;
  drops : int;
  delivered : int;
  mean_utilization : float;
}

let service_rate_mbps = function
  | Rate_mbps m -> m
  | Trace t -> Cell_trace.mean_rate_mbps t

(* Shared with multi-bottleneck topologies, which instantiate one qdisc
   per link: [rate_mbps] sizes XCP's capacity and [seed] derives the
   stochastic-loss stream. *)
let qdisc_of_spec engine ~tracer ~rate_mbps ~seed spec =
  let rec build = function
    | Droptail capacity -> Droptail.create ~tracer ~capacity ()
    | Codel capacity -> Codel.create ~tracer ~capacity ()
    | Sfq_codel capacity -> Sfq_codel.create ~tracer ~capacity ()
    | Dctcp_red { capacity; threshold } ->
      Red.create_dctcp ~tracer ~capacity ~threshold ()
    | Xcp capacity ->
      let capacity_pps = Link.pps_of_mbps rate_mbps in
      Xcp_router.create engine ~tracer ~capacity_pps ~queue_capacity:capacity ()
    | With_loss (loss_rate, inner) ->
      Lossy.create ~tracer ~inner:(build inner) ~loss_rate
        ~seed:(seed lxor 0x105E) ()
  in
  build spec

let build_qdisc engine ~tracer config =
  qdisc_of_spec engine ~tracer
    ~rate_mbps:(service_rate_mbps config.service)
    ~seed:config.seed config.qdisc

(* Pre-size the packet/ack pools from the scenario's shape: a few
   segments per flow (windows, reorder buffers, in-flight acks) plus
   the bandwidth-delay product the bottleneck can hold, capped so a
   degenerate configuration cannot demand an absurd up-front
   allocation.  Purely a warm start — the pool still grows on miss. *)
let pool_presize ~rate_mbps ~max_rtt ~n_flows =
  let bdp_pkts =
    int_of_float
      (Float.min 32768.
         (Link.bytes_per_sec_of_mbps rate_mbps *. max_rtt
         /. float_of_int Packet.default_size))
  in
  min 65536 ((n_flows * 4) + bdp_pkts + 64)

(* Fault seeds derive from the run seed by a fixed xor, never by
   splitting the flow RNG chain: installing a schedule must not perturb
   any other stochastic stream (no-fault runs stay bit-identical). *)
let fault_seed ~seed ~link = (seed + (link * 7919)) lxor 0xFA17

let run ?(tracer = Remy_obs.Trace.off) ?probe_interval ?delivery_hook
    ?sender_hook ?delack ?(faults = Remy_faults.Spec.empty) (config : config) =
  let n = Array.length config.flows in
  assert (n > 0);
  let engine = Engine.create ~tracer () in
  let metrics = Metrics.create ~n_flows:n in
  let root_rng = Prng.create config.seed in
  let qdisc, injector =
    Remy_faults.Injector.maybe engine ~tracer
      ~seed:(fault_seed ~seed:config.seed ~link:0)
      (Remy_faults.Spec.for_link faults 0)
      ~inner:(build_qdisc engine ~tracer config)
  in
  (* One packet/ack pool per simulation: single-domain, so no sharing
     concerns, and each connection's segments cycle through a handful of
     records instead of allocating per send.  Pre-sized from the flow
     count and bandwidth-delay product so the steady state runs on
     recycled records from the first RTT. *)
  let max_rtt =
    Array.fold_left (fun acc spec -> Float.max acc spec.rtt) 0. config.flows
  in
  let presize =
    pool_presize
      ~rate_mbps:(service_rate_mbps config.service)
      ~max_rtt ~n_flows:n
  in
  let pool = Packet.Pool.create ~packets:presize ~acks:presize () in
  (* Local accumulator, flushed to the global atomic once per run. *)
  let acks_handled = ref 0 in
  (* The senders array is knotted after link construction. *)
  let senders : Tcp_sender.t option array = Array.make n None in
  let receivers : Receiver.t option array = Array.make n None in
  (* Fixed propagation delays are delay lines (ring buffer plus one
     shared callback), not a fresh closure per packet. *)
  let to_receiver =
    Array.mapi
      (fun i spec ->
        Delay_line.create engine ~delay:(spec.rtt /. 2.) ~filler:Packet.dummy
          (fun pkt ->
            match receivers.(i) with
            | Some receiver ->
              Receiver.receive receiver ~now:(Engine.now engine) pkt
            | None -> assert false))
      config.flows
  in
  let sink pkt = Delay_line.push to_receiver.(pkt.Packet.flow) pkt in
  let link =
    match config.service with
    | Rate_mbps mbps ->
      Link.create_constant engine ~qdisc
        ~bytes_per_sec:(Link.bytes_per_sec_of_mbps mbps)
        ~sink
    | Trace trace -> Link.create_trace engine ~qdisc ~next_gap:(Cell_trace.gap_fn trace) ~sink
  in
  Option.iter (fun inj -> Remy_faults.Injector.attach inj link) injector;
  Array.iteri
    (fun i spec ->
      let rng = Prng.split root_rng in
      let ack_line =
        Delay_line.create engine ~delay:(spec.rtt /. 2.)
          ~filler:Packet.dummy_ack (fun ack ->
            (match senders.(i) with
            | Some sender ->
              incr acks_handled;
              Tcp_sender.handle_ack sender ack
            | None -> assert false);
            (* The sender copies what it needs into [Cc.ack_info];
               nothing retains the ack past [handle_ack]. *)
            Packet.Pool.release_ack pool ack)
      in
      let ack_sink ack = Delay_line.push ack_line ack in
      let queueing_delay_of (pkt : Packet.t) ~now =
        Float.max 0. (now -. pkt.Packet.sent_at -. (spec.rtt /. 2.))
      in
      let delivery_hook =
        Option.map (fun f -> fun ~now ~seq -> f ~flow:i ~now ~seq) delivery_hook
      in
      let delack =
        Option.map
          (fun (ack_every, delack_timeout) ->
            {
              Receiver.ack_every;
              delack_timeout;
              schedule_in = Engine.schedule_in engine;
            })
          delack
      in
      let receiver =
        Receiver.create ~flow:i ~metrics ~queueing_delay_of ~ack_sink ?delivery_hook
          ?delack ~pool ()
      in
      receivers.(i) <- Some receiver;
      let sender =
        Tcp_sender.create ~pool engine
          {
            Tcp_sender.flow = i;
            cc = spec.cc ();
            rtt = spec.rtt;
            workload = spec.workload;
            start = spec.start;
            min_rto = config.min_rto;
          }
          ~transmit:(fun pkt -> Link.send link pkt)
          ~metrics ~rng
      in
      senders.(i) <- Some sender)
    config.flows;
  let sender_arr =
    Array.map (function Some s -> s | None -> assert false) senders
  in
  (match sender_hook with Some f -> f sender_arr | None -> ());
  (* Periodic probes: queue depth plus per-flow cwnd/pacing/srtt samples.
     Scheduled before the senders start, so at any shared instant the
     sample reflects state from before that instant's sender activity
     (the agenda is FIFO within a timestamp). *)
  (match probe_interval with
  | Some interval when Remy_obs.Trace.is_on tracer && interval > 0. ->
    let disc = Link.qdisc link in
    List.iter
      (fun at ->
        Engine.schedule engine at (fun () ->
            let now = Engine.now engine in
            Remy_obs.Trace.queue_sample tracer ~now ~queue:disc.Qdisc.name
              ~qlen:(disc.Qdisc.length ())
              ~qbytes:(disc.Qdisc.byte_length ());
            Array.iteri
              (fun flow s ->
                Remy_obs.Trace.flow_sample tracer ~now ~flow
                  ~cwnd:(Tcp_sender.cwnd s)
                  ~intersend_s:(Tcp_sender.pacing_gap s)
                  ~srtt_s:(Tcp_sender.srtt s))
              sender_arr))
      (Remy_obs.Probe.times ~interval ~until:config.duration)
  | _ -> ());
  Array.iter Tcp_sender.start sender_arr;
  Engine.run engine ~until:config.duration;
  Remy_obs.Counters.add Remy_obs.Counters.acks_processed !acks_handled;
  Remy_obs.Counters.add Remy_obs.Counters.pool_hits (Packet.Pool.hits pool);
  Remy_obs.Counters.add Remy_obs.Counters.pool_misses (Packet.Pool.misses pool);
  Metrics.finish metrics config.duration;
  let capacity_bytes =
    Link.bytes_per_sec_of_mbps (service_rate_mbps config.service) *. config.duration
  in
  {
    flows = Metrics.summaries metrics;
    drops = (Link.qdisc link).Qdisc.drops ();
    delivered = Link.delivered_packets link;
    mean_utilization =
      (if capacity_bytes > 0. then
         float_of_int (Link.delivered_bytes link) /. capacity_bytes
       else 0.);
  }
