open Remy_sim
open Remy_util

type config = {
  flow : int;
  cc : Cc.t;
  rtt : float;
  workload : Workload.t;
  start : [ `Immediate | `Off_draw ];
  min_rto : float;
}

type demand = Segments of int | Until of float

type t = {
  engine : Engine.t;
  config : config;
  transmit : Packet.t -> unit;
  metrics : Metrics.t;
  rng : Prng.t;
  pool : Packet.Pool.pool option;
  (* Workload state *)
  mutable on : bool;
  mutable demand : demand;
  mutable conn : int;  (* -1 before first connection *)
  mutable conns_started : int;
  (* Reliability state (per connection) *)
  mutable next_seq : int;
  mutable highest_sent : int;  (* one past the highest seq ever sent *)
  mutable cum_acked : int;
  mutable dup_acks : int;
  mutable in_recovery : bool;
  mutable recover_seq : int;
  mutable partial_rearmed : bool;  (* RFC 6582 "impatient": re-arm RTO
                                      only on the first partial ACK *)
  mutable retx_count : int;
  (* RTT estimation / RTO.  [srtt_s] is NaN before the first sample
     (avoids boxing an option per ACK in the estimator). *)
  mutable srtt_s : float;
  mutable rttvar : float;
  mutable rto_backoff : float;
  (* Lazy retransmission timer: [timer_deadline] is the authoritative
     expiry and re-arming just rewrites it.  An agenda event is only
     scheduled when none is outstanding at or before the deadline
     ([timer_event_at] tracks the live event's fire time, [timer_gen]
     invalidates superseded ones); an event that fires before the
     deadline reschedules itself.  Since deadlines almost always move
     later (each ACK pushes the RTO out), the per-ACK cost is two field
     writes instead of a closure allocation and an agenda push. *)
  mutable timer_armed : bool;
  mutable timer_deadline : float;
  mutable timer_event_at : float;  (* infinity when no live event *)
  mutable timer_gen : int;
  mutable timeout_count : int;
  (* Pacing *)
  mutable last_send : float;
  mutable wake_armed : bool;
  mutable wake_cb : unit -> unit;  (* preallocated pacing-stall callback *)
}

let max_rto = 60.

let create ?pool engine config ~transmit ~metrics ~rng =
  let t =
    {
      engine;
      config;
      transmit;
      metrics;
      rng;
      pool;
      on = false;
      demand = Segments 0;
      conn = -1;
      conns_started = 0;
      next_seq = 0;
      highest_sent = 0;
      cum_acked = 0;
      dup_acks = 0;
      in_recovery = false;
      recover_seq = -1;
      partial_rearmed = false;
      retx_count = 0;
      srtt_s = Float.nan;
      rttvar = 0.;
      rto_backoff = 1.;
      timer_armed = false;
      timer_deadline = Float.infinity;
      timer_event_at = Float.infinity;
      timer_gen = 0;
      timeout_count = 0;
      last_send = neg_infinity;
      wake_armed = false;
      wake_cb = ignore;
    }
  in
  t
(* [wake_cb] is knotted in [make_sender] below, after the recursive
   send/ack functions exist. *)

let is_on t = t.on
let next_seq t = t.next_seq
let cum_acked t = t.cum_acked
let connections_started t = t.conns_started
let retransmissions t = t.retx_count
let timeouts t = t.timeout_count
let srtt t = if Float.is_nan t.srtt_s then None else Some t.srtt_s
let cwnd t = t.config.cc.Cc.window ()
let pacing_gap t = t.config.cc.Cc.intersend ()
let rto_backoff t = t.rto_backoff

let in_flight t = max 0 (t.next_seq - t.cum_acked - t.dup_acks)

let current_rto t =
  let base =
    if Float.is_nan t.srtt_s then 1.0 else t.srtt_s +. (4. *. t.rttvar)
  in
  Float.min max_rto (Float.max t.config.min_rto base *. t.rto_backoff)

let segments_remaining t =
  match t.demand with
  | Segments total -> total - t.next_seq
  | Until deadline -> if Engine.now t.engine < deadline then max_int else 0

(* --- transmission ------------------------------------------------- *)

let rec schedule_timer_event t at =
  t.timer_gen <- t.timer_gen + 1;
  let gen = t.timer_gen in
  t.timer_event_at <- at;
  Engine.schedule t.engine at (fun () -> timer_event t gen)

and timer_event t gen =
  if gen = t.timer_gen then begin
    t.timer_event_at <- Float.infinity;
    if t.timer_armed then begin
      if Engine.now t.engine >= t.timer_deadline then on_rto t
      else
        (* Deadline moved later since this event was scheduled: chase it. *)
        schedule_timer_event t t.timer_deadline
    end
  end

and arm_timer t =
  t.timer_armed <- true;
  t.timer_deadline <- Engine.now t.engine +. current_rto t;
  if t.timer_deadline < t.timer_event_at then
    schedule_timer_event t t.timer_deadline

and disarm_timer t = t.timer_armed <- false

and send_packet t ~seq =
  let now = Engine.now t.engine in
  let retx = seq < t.highest_sent in
  let pkt =
    match t.pool with
    | Some pool ->
      Packet.Pool.acquire pool ~flow:t.config.flow ~seq ~conn:t.conn ~now ~retx
        ~ecn_capable:t.config.cc.Cc.ecn_capable
        ?xcp:(t.config.cc.Cc.stamp ~now)
        ()
    | None ->
      Packet.make ~flow:t.config.flow ~seq ~conn:t.conn ~now ~retx
        ~ecn_capable:t.config.cc.Cc.ecn_capable
        ?xcp:(t.config.cc.Cc.stamp ~now)
        ()
  in
  if retx then t.retx_count <- t.retx_count + 1;
  t.highest_sent <- max t.highest_sent (seq + 1);
  t.last_send <- now;
  t.transmit pkt;
  if not t.timer_armed then arm_timer t

and try_send t =
  if t.on then begin
    let now = Engine.now t.engine in
    let window = max 1 (int_of_float (Float.max 0. (t.config.cc.Cc.window ()))) in
    if in_flight t < window && segments_remaining t > 0 then begin
      let gap = t.config.cc.Cc.intersend () in
      let allowed_at = t.last_send +. gap in
      if now +. 1e-12 >= allowed_at then begin
        send_packet t ~seq:t.next_seq;
        t.next_seq <- t.next_seq + 1;
        try_send t
      end
      else if not t.wake_armed then begin
        t.wake_armed <- true;
        Engine.schedule t.engine allowed_at t.wake_cb
      end
    end
  end

(* --- loss events --------------------------------------------------- *)

and on_rto t =
  t.timer_armed <- false;
  if t.on && t.highest_sent > t.cum_acked then begin
    let now = Engine.now t.engine in
    t.timeout_count <- t.timeout_count + 1;
    (let tr = Engine.tracer t.engine in
     if Remy_obs.Trace.is_on tr then
       Remy_obs.Trace.sender_event tr ~now ~kind:Remy_obs.Trace.Timeout
         ~flow:t.config.flow ~seq:t.cum_acked);
    t.rto_backoff <- Float.min 64. (t.rto_backoff *. 2.);
    t.dup_acks <- 0;
    t.in_recovery <- false;
    (* RFC 6582 "careful" variant: dupACKs provoked by our own go-back-N
       retransmissions (cum <= recover_seq) must not trigger another fast
       retransmit, or a spurious timeout degenerates into an endless
       halving loop. *)
    t.recover_seq <- t.highest_sent;
    (* Go-back-N: everything past the cumulative ACK is presumed lost and
       will be re-sent under slow start; the receiver's reorder buffer
       collapses the re-sent span quickly via cumulative-ACK jumps. *)
    t.next_seq <- t.cum_acked;
    t.config.cc.Cc.on_timeout ~now;
    arm_timer t;
    try_send t
  end

(* --- workload switching -------------------------------------------- *)

and switch_on t =
  let now = Engine.now t.engine in
  t.on <- true;
  t.conn <- t.conn + 1;
  t.conns_started <- t.conns_started + 1;
  t.next_seq <- 0;
  t.highest_sent <- 0;
  t.cum_acked <- 0;
  t.dup_acks <- 0;
  t.in_recovery <- false;
  t.recover_seq <- -1;
  t.partial_rearmed <- false;
  t.srtt_s <- Float.nan;
  t.rttvar <- 0.;
  t.rto_backoff <- 1.;
  disarm_timer t;
  t.last_send <- neg_infinity;
  t.config.cc.Cc.reset ~now;
  Metrics.flow_on t.metrics t.config.flow now;
  (match Workload.sample_on t.config.workload t.rng with
  | Workload.Packets n -> t.demand <- Segments n
  | Workload.Seconds s ->
    t.demand <- Until (now +. s);
    if Float.is_finite s then
      let conn = t.conn in
      Engine.schedule_in t.engine s (fun () ->
          if t.on && t.conn = conn then switch_off t));
  try_send t

and switch_off t =
  let now = Engine.now t.engine in
  t.on <- false;
  disarm_timer t;
  Metrics.flow_off t.metrics t.config.flow now;
  let off = Workload.sample_off t.config.workload t.rng in
  if Float.is_finite off then Engine.schedule_in t.engine off (fun () -> switch_on t)

let start t =
  match t.config.start with
  | `Immediate -> switch_on t
  | `Off_draw ->
    let off = Workload.sample_off t.config.workload t.rng in
    if Float.is_finite off then Engine.schedule_in t.engine off (fun () -> switch_on t)

let create ?pool engine config ~transmit ~metrics ~rng =
  let t = create ?pool engine config ~transmit ~metrics ~rng in
  t.wake_cb <-
    (fun () ->
      t.wake_armed <- false;
      try_send t);
  t

(* --- ACK processing ------------------------------------------------ *)

let complete_if_done t =
  match t.demand with
  | Segments total when t.cum_acked >= total && t.on -> switch_off t
  | Segments _ | Until _ -> ()

let handle_ack t (ack : Packet.ack) =
  if t.on && ack.ack_conn = t.conn then begin
    let now = Engine.now t.engine in
    let cc = t.config.cc in
    let rtt_s =
      if ack.acked_retx then Float.nan else now -. ack.acked_sent_at
    in
    (* RFC 6298 estimator (NaN = no Karn-valid sample). *)
    if not (Float.is_nan rtt_s) then begin
      if Float.is_nan t.srtt_s then begin
        t.srtt_s <- rtt_s;
        t.rttvar <- rtt_s /. 2.
      end
      else begin
        t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt_s -. rtt_s));
        t.srtt_s <- (0.875 *. t.srtt_s) +. (0.125 *. rtt_s)
      end
    end;
    let newly = ack.cum_ack - t.cum_acked in
    if newly > 0 then begin
      t.cum_acked <- ack.cum_ack;
      if t.next_seq < t.cum_acked then t.next_seq <- t.cum_acked;
      t.dup_acks <- 0;
      t.rto_backoff <- 1.;
      if t.in_recovery then begin
        if t.cum_acked >= t.recover_seq then begin
          t.in_recovery <- false;
          arm_timer t
        end
        else begin
          (* NewReno partial ACK: retransmit the next hole immediately,
             re-arming the timer only once per episode (impatient
             variant) so the RTO backstop can cut short long hole-by-hole
             recoveries. *)
          send_packet t ~seq:t.cum_acked;
          if not t.partial_rearmed then begin
            t.partial_rearmed <- true;
            arm_timer t
          end
        end
      end
      else if t.highest_sent > t.cum_acked then arm_timer t
      else disarm_timer t;
      if t.highest_sent <= t.cum_acked then disarm_timer t
    end
    else begin
      t.dup_acks <- t.dup_acks + 1;
      (* Enter fast retransmit only when the cumulative ACK has advanced
         past the previous recovery point (RFC 6582's careful variant),
         so retransmission-induced dupACKs cannot restart recovery. *)
      if t.dup_acks = 3 && (not t.in_recovery) && t.cum_acked > t.recover_seq then begin
        t.in_recovery <- true;
        t.recover_seq <- t.next_seq;
        t.partial_rearmed <- false;
        cc.Cc.on_loss ~now;
        send_packet t ~seq:t.cum_acked
      end
    end;
    cc.Cc.on_ack
      {
        Cc.now;
        rtt = (if Float.is_nan rtt_s then None else Some rtt_s);
        newly_acked = max 0 newly;
        cum_ack = ack.cum_ack;
        acked_seq = ack.acked_seq;
        acked_sent_at = ack.acked_sent_at;
        receiver_ts = ack.received_at;
        ecn_echo = ack.ecn_echo;
        xcp_feedback = ack.ack_xcp_feedback;
        in_flight = in_flight t;
        in_recovery = t.in_recovery;
      };
    complete_if_done t;
    try_send t
  end
