(** Reliable windowed TCP sender with pluggable congestion control.

    Implements the host machinery every scheme in the evaluation shares:

    - an on/off workload source (Section 3.2): off periods are
      exponential; on periods are a fixed transfer (segments) or a fixed
      duration, after which the connection ends and the next one starts
      with fresh state ("RemyCCs do not keep state from one on period to
      the next");
    - window- and pacing-limited transmission: at most [floor cc.window]
      segments outstanding (minimum one, so a connection can always make
      progress), no two sends closer than [cc.intersend];
    - loss recovery: three duplicate ACKs trigger fast retransmit and a
      NewReno-style recovery episode with partial-ACK retransmissions;
      an RFC 6298 retransmission timer (Karn-filtered RTT samples,
      exponential backoff) recovers from tail loss;
    - outstanding-data estimation credits duplicate ACKs, which yields
      standard self-clocked fast-recovery behavior for every scheme.

    The congestion-control module only ever decides "how big a window,
    how fast to pace" — exactly the paper's division of labor. *)

type config = {
  flow : int;
  cc : Cc.t;
  rtt : float;  (** the flow's two-way propagation delay, seconds *)
  workload : Remy_sim.Workload.t;
  start : [ `Immediate | `Off_draw ];
      (** begin with an "on" period at t=0, or draw an initial off time *)
  min_rto : float;  (** RFC 6298 floor, typically 1.0 or 0.2 s *)
}

type t

val max_rto : float
(** 60 s, RFC 6298's suggested ceiling: however long an outage, the
    retransmission timer never backs off past this, so the sender probes
    a healed path within one minute instead of doubling unboundedly. *)

val create :
  ?pool:Remy_sim.Packet.Pool.pool ->
  Remy_sim.Engine.t ->
  config ->
  transmit:(Remy_sim.Packet.t -> unit) ->
  metrics:Remy_sim.Metrics.t ->
  rng:Remy_util.Prng.t ->
  t
(** With [pool], outgoing data packets are acquired from the pool
    instead of allocated; the receiving side is then responsible for
    releasing them (see {!Receiver.create}). *)

val start : t -> unit
(** Arm the workload process (call once before [Engine.run]). *)

val handle_ack : t -> Remy_sim.Packet.ack -> unit
(** Deliver an ACK that has crossed the reverse path. *)

(** {2 Introspection (tests, Fig. 6 instrumentation)} *)

val is_on : t -> bool
val next_seq : t -> int
val cum_acked : t -> int
val in_flight : t -> int
val connections_started : t -> int
val retransmissions : t -> int
val timeouts : t -> int
val srtt : t -> float option

val cwnd : t -> float
(** The congestion module's current window, in segments (may be
    fractional for RemyCC). *)

val pacing_gap : t -> float
(** The congestion module's current intersend gap, seconds. *)

val current_rto : t -> float
(** The live retransmission timeout: [srtt + 4 rttvar] (1 s before the
    first sample), floored at [config.min_rto], multiplied by the
    exponential backoff, and clamped at {!max_rto}. *)

val rto_backoff : t -> float
(** The exponential backoff multiplier: doubles per timeout (capped at
    64 so the multiplier alone cannot overflow the clamp), and resets
    to 1 on the first ACK that advances the cumulative point. *)
