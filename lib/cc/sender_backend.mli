(** Pluggable sender implementations for topology runners.

    The {!Topology} runner talks to senders only through {!ops}; a
    {!factory} builds one ops value per flow from that flow's wiring
    {!env}.  {!records} is the default backend — one {!Tcp_sender}
    record per flow — and the structure-of-arrays RemyCC fleet in
    lib/core ([Remy.Fleet]) is an alternative factory with identical
    observable behaviour (runs are bit-identical; test_fleet proves
    it). *)

type ops = {
  start_flow : unit -> unit;
  handle_ack : Remy_sim.Packet.ack -> unit;
      (** The caller retains ownership of the ack record and releases
          it to the pool after this returns. *)
  cwnd : unit -> float;
  pacing_gap : unit -> float;
  srtt : unit -> float option;
}

type env = {
  engine : Remy_sim.Engine.t;
  pool : Remy_sim.Packet.Pool.pool;
  metrics : Remy_sim.Metrics.t;
  n_flows : int;
  flow : int;
  flow_rtt : float;  (** two-way propagation over the flow's route *)
  workload : Remy_sim.Workload.t;
  start : [ `Immediate | `Off_draw ];
  min_rto : float;
  rng : Remy_util.Prng.t;
  transmit : Remy_sim.Packet.t -> unit;
}

type factory = env -> ops
(** Called once per flow, in flow order, with one fresh factory value
    per run (fleet factories allocate shared state on first use). *)

val records : Cc.factory -> factory
(** The per-record baseline: wraps {!Tcp_sender.create}. *)
