open Remy_sim

type delack = {
  ack_every : int;
  delack_timeout : float;
  schedule_in : float -> (unit -> unit) -> unit;
}

type t = {
  flow : int;
  metrics : Metrics.t;
  queueing_delay_of : Packet.t -> now:float -> float;
  ack_sink : Packet.ack -> unit;
  delivery_hook : (now:float -> seq:int -> unit) option;
  delack : delack option;
  pool : Packet.Pool.pool option;
  out_of_order : (int, unit) Hashtbl.t;
  mutable conn : int;
  mutable expected : int;
  (* Delayed-ACK state: the most recent unacknowledged arrival. *)
  mutable pending : (Packet.t * float) option;
  mutable pending_count : int;
  mutable delack_gen : int;
}

let create ~flow ~metrics ~queueing_delay_of ~ack_sink ?delivery_hook ?delack
    ?pool () =
  {
    flow;
    metrics;
    queueing_delay_of;
    ack_sink;
    delivery_hook;
    delack;
    pool;
    out_of_order = Hashtbl.create 64;
    conn = -1;
    expected = 0;
    pending = None;
    pending_count = 0;
    delack_gen = 0;
  }

let expected t = t.expected

(* The receiver owns data packets from the moment they arrive: every
   path through [receive] ends with the packet either parked as the
   delayed-ACK pending arrival or released back to the pool (a no-op
   when the dumbbell runs without pooling). *)
let release_pkt t pkt =
  match t.pool with Some p -> Packet.Pool.release p pkt | None -> ()

let ack_of t (pkt : Packet.t) ~now =
  let feedback =
    match pkt.xcp with
    | Some hdr when Float.is_finite hdr.xcp_feedback -> Some hdr.xcp_feedback
    | Some _ | None -> None
  in
  match t.pool with
  | Some p ->
    let ack = Packet.Pool.acquire_ack p in
    ack.Packet.ack_flow <- t.flow;
    ack.ack_conn <- t.conn;
    ack.cum_ack <- t.expected;
    ack.acked_seq <- pkt.seq;
    ack.acked_sent_at <- pkt.sent_at;
    ack.acked_retx <- pkt.retx;
    ack.ecn_echo <- pkt.ecn_marked;
    ack.ack_xcp_feedback <- feedback;
    ack.received_at <- now;
    ack
  | None ->
    {
      Packet.ack_flow = t.flow;
      ack_conn = t.conn;
      cum_ack = t.expected;
      acked_seq = pkt.seq;
      acked_sent_at = pkt.sent_at;
      acked_retx = pkt.retx;
      ecn_echo = pkt.ecn_marked;
      ack_xcp_feedback = feedback;
      received_at = now;
    }

let drop_pending t =
  match t.pending with
  | None -> ()
  | Some (pkt, _) ->
    t.pending <- None;
    t.pending_count <- 0;
    t.delack_gen <- t.delack_gen + 1;
    release_pkt t pkt

let flush_pending t =
  match t.pending with
  | None -> ()
  | Some (pkt, at) ->
    t.pending <- None;
    t.pending_count <- 0;
    t.delack_gen <- t.delack_gen + 1;
    let ack = ack_of t pkt ~now:at in
    release_pkt t pkt;
    t.ack_sink ack

let send_or_defer t ~now ~in_order (pkt : Packet.t) =
  match t.delack with
  | Some d when in_order ->
    (* A superseded pending arrival is covered by the batch's eventual
       cumulative ACK; only the newest one is echoed individually. *)
    (match t.pending with
    | Some (prev, _) -> release_pkt t prev
    | None -> ());
    t.pending <- Some (pkt, now);
    t.pending_count <- t.pending_count + 1;
    if t.pending_count >= d.ack_every then flush_pending t
    else begin
      (* Arm (or re-arm) the flush timer for the batch. *)
      t.delack_gen <- t.delack_gen + 1;
      let gen = t.delack_gen in
      d.schedule_in d.delack_timeout (fun () ->
          if gen = t.delack_gen then flush_pending t)
    end
  | Some _ | None ->
    (* Immediate ACK: no delack configured, or an out-of-order/duplicate
       arrival whose dupACK must reach the sender promptly.  Any batched
       in-order arrivals are acknowledged first to keep cum-ACKs
       monotone at the sender. *)
    flush_pending t;
    let ack = ack_of t pkt ~now in
    release_pkt t pkt;
    t.ack_sink ack

let receive t ~now (pkt : Packet.t) =
  if pkt.conn > t.conn then begin
    t.conn <- pkt.conn;
    t.expected <- 0;
    drop_pending t;
    Hashtbl.reset t.out_of_order
  end;
  if pkt.conn = t.conn then begin
    let fresh =
      pkt.seq >= t.expected && not (Hashtbl.mem t.out_of_order pkt.seq)
    in
    let in_order = fresh && pkt.seq = t.expected in
    if fresh then begin
      Metrics.packet_delivered t.metrics t.flow ~bytes:pkt.size
        ~queueing_delay:(t.queueing_delay_of pkt ~now);
      (match t.delivery_hook with Some f -> f ~now ~seq:pkt.seq | None -> ());
      if in_order then begin
        t.expected <- t.expected + 1;
        (* Drain any buffered in-order continuation. *)
        while Hashtbl.mem t.out_of_order t.expected do
          Hashtbl.remove t.out_of_order t.expected;
          t.expected <- t.expected + 1
        done
      end
      else Hashtbl.replace t.out_of_order pkt.seq ()
    end;
    (* A hole-filling arrival is "in order" for accounting but its ACK
       reveals a cum jump the sender needs promptly. *)
    let defer = in_order && Hashtbl.length t.out_of_order = 0 in
    send_or_defer t ~now ~in_order:defer pkt
  end
  else
    (* Stale connection: dropped without acknowledgment. *)
    release_pkt t pkt
