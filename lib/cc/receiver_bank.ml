open Remy_sim

(* Structure-of-arrays receiver fleet: the per-ack hot state of n
   receivers ([expected], [conn]) lives in two flat int arrays instead
   of n heap records, and the reorder buffers — cold, touched only
   under loss — are small per-flow tables created lazily at fleet
   construction.  Behaviour is exactly {!Receiver} without the
   delayed-ACK option: same freshness/in-order logic, same metrics
   calls, same ack construction, same pool ownership (the bank owns
   every arriving packet and releases it on all paths), so a run
   through the bank is bit-identical to one through per-flow
   {!Receiver} records (test_fleet proves this). *)

type t = {
  metrics : Metrics.t;
  pool : Packet.Pool.pool;
  ack_sink : int -> Packet.ack -> unit;
  fwd_delay : float array; (* forward propagation per flow, seconds *)
  conn : int array;
  expected : int array;
  out_of_order : (int, unit) Hashtbl.t array;
  mutable delivered : int; (* fresh data packets accepted, all flows *)
}

let create ~metrics ~pool ~ack_sink ~fwd_delay =
  let n = Array.length fwd_delay in
  {
    metrics;
    pool;
    ack_sink;
    fwd_delay;
    conn = Array.make n (-1);
    expected = Array.make n 0;
    out_of_order = Array.init n (fun _ -> Hashtbl.create 4);
    delivered = 0;
  }

let expected t flow = t.expected.(flow)
let delivered t = t.delivered

let ack_of t flow (pkt : Packet.t) ~now =
  let feedback =
    match pkt.Packet.xcp with
    | Some hdr when Float.is_finite hdr.Packet.xcp_feedback ->
      Some hdr.Packet.xcp_feedback
    | Some _ | None -> None
  in
  let ack = Packet.Pool.acquire_ack t.pool in
  ack.Packet.ack_flow <- flow;
  ack.ack_conn <- t.conn.(flow);
  ack.cum_ack <- t.expected.(flow);
  ack.acked_seq <- pkt.seq;
  ack.acked_sent_at <- pkt.sent_at;
  ack.acked_retx <- pkt.retx;
  ack.ecn_echo <- pkt.ecn_marked;
  ack.ack_xcp_feedback <- feedback;
  ack.received_at <- now;
  ack

let receive t ~now flow (pkt : Packet.t) =
  if pkt.Packet.conn > t.conn.(flow) then begin
    t.conn.(flow) <- pkt.Packet.conn;
    t.expected.(flow) <- 0;
    Hashtbl.reset t.out_of_order.(flow)
  end;
  if pkt.Packet.conn = t.conn.(flow) then begin
    let ooo = t.out_of_order.(flow) in
    (* [Hashtbl.length] is a field read; skipping the probes when the
       reorder buffer is empty keeps the loss-free path hash-free. *)
    let fresh =
      pkt.seq >= t.expected.(flow)
      && (Hashtbl.length ooo = 0 || not (Hashtbl.mem ooo pkt.seq))
    in
    if fresh then begin
      Metrics.packet_delivered t.metrics flow ~bytes:pkt.size
        ~queueing_delay:
          (Float.max 0. (now -. pkt.Packet.sent_at -. t.fwd_delay.(flow)));
      t.delivered <- t.delivered + 1;
      if pkt.seq = t.expected.(flow) then begin
        t.expected.(flow) <- t.expected.(flow) + 1;
        (* Drain any buffered in-order continuation. *)
        while Hashtbl.length ooo > 0 && Hashtbl.mem ooo t.expected.(flow) do
          Hashtbl.remove ooo t.expected.(flow);
          t.expected.(flow) <- t.expected.(flow) + 1
        done
      end
      else Hashtbl.replace ooo pkt.seq ()
    end;
    let ack = ack_of t flow pkt ~now in
    Packet.Pool.release t.pool pkt;
    t.ack_sink flow ack
  end
  else
    (* Stale connection: dropped without acknowledgment. *)
    Packet.Pool.release t.pool pkt
