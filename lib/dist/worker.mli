(** The stateless side of distributed training: evaluate whatever
    specimen the coordinator sends, against whatever tree it last
    synced.

    A worker holds no training state — no PRNG, no tally across tasks,
    no notion of rounds.  Determinism therefore cannot depend on which
    worker ran a task: a [Baseline] task seeds its private tally from
    the specimen seed exactly as the in-process pool does, and a
    [Candidate] task's override shadows the one rule the optimizer is
    improving, so the generation-tagged tree stays valid for the whole
    round. *)

exception Protocol_error of string
(** A malformed frame or out-of-order message.  The payload names the
    violation (and, for framing errors, the byte position) — callers
    print it and exit nonzero. *)

val serve : ?expect_config:string -> ?log:(string -> unit) -> Unix.file_descr -> unit
(** Serve one coordinator connection until [Shutdown] or EOF.

    The handshake rejects a [Hello] whose protocol version differs, or —
    when [expect_config] pins a config fingerprint — whose fingerprint
    does not match: a [Reject] naming both fingerprints is sent back and
    {!Protocol_error} is raised, so a worker started for run A can never
    silently contribute bits to run B.  [log] receives one line per
    lifecycle event (handshake, task counts at shutdown). *)
