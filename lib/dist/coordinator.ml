open Remy

type worker_spec = Fork | Connect of string | Spawn of string list

let specs_of_string s =
  let s = String.trim s in
  match int_of_string_opt s with
  | Some n when n >= 1 -> Ok (List.init n (fun _ -> Fork))
  | Some n -> Error (Printf.sprintf "--workers %d: need at least 1" n)
  | None ->
      let parts =
        String.split_on_char ',' s |> List.map String.trim
        |> List.filter (fun p -> p <> "")
      in
      if parts = [] then Error "--workers: empty worker list"
      else
        let rec check = function
          | [] -> Ok (List.map (fun p -> Connect p) parts)
          | p :: rest -> (
              match String.rindex_opt p ':' with
              | None ->
                  Error
                    (Printf.sprintf
                       "--workers: %S is neither a worker count nor host:port" p)
              | Some i -> (
                  match
                    int_of_string_opt
                      (String.sub p (i + 1) (String.length p - i - 1))
                  with
                  | Some port when port > 0 && port < 65536 -> check rest
                  | _ ->
                      Error (Printf.sprintf "--workers: %S: bad port" p)))
        in
        check parts

type event =
  | Worker_joined of { worker : int; addr : string; pid : int }
  | Worker_lost of { worker : int; addr : string; reason : string; requeued : int }
  | Task_reissued of { index : int; from_worker : int; to_worker : int }

exception Dist_error of string

type wstate = {
  id : int;
  addr : string;
  fd : Unix.file_descr;
  pid : int;  (* forked child pid; 0 for socket workers *)
  mutable alive : bool;
  mutable gen_sent : int;
  mutable last_heard : float;
  mutable ping_sent : bool;
  mutable in_flight : int list;  (* task indices, oldest first *)
}

type t = {
  params : Wire.eval_params;
  config_hash : string;
  on_event : event -> unit;
  heartbeat_s : float;
  timeout_s : float;
  mutable chaos_kill_after : int option;
  mutable workers : wstate list;  (* id order; dead workers stay listed *)
  mutable gen : int;  (* bumped on every tree sync *)
  mutable tree : Rule_tree.t option;
  mutable dispatched : int;  (* lifetime task dispatch count *)
  mutable ping_seq : int;
  mutable down : bool;
}

let now () = Remy_obs.Clock.now_s ()
let live_list t = List.filter (fun w -> w.alive) t.workers
let live_workers t = List.length (live_list t)

(* --- worker spawning --- *)

let fork_worker () =
  let parent_fd, child_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  match Unix.fork () with
  | 0 ->
      (* Child: terminal signals are the coordinator's to handle — a ^C
         must let the parent finish its round (which needs us alive) and
         checkpoint; we exit on Shutdown or socket EOF instead.  _exit
         skips the parent's at_exit machinery and buffered output. *)
      Sys.set_signal Sys.sigint Sys.Signal_ignore;
      Sys.set_signal Sys.sigterm Sys.Signal_ignore;
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      Unix.close parent_fd;
      let code =
        try
          Worker.serve child_fd;
          0
        with _ -> 1
      in
      Unix._exit code
  | pid ->
      Unix.close child_fd;
      (parent_fd, pid)

(* Unlike [fork_worker] this goes through posix_spawn, which the runtime
   permits even after the process has created domains (OCaml 5's
   [Unix.fork] is gated on a sticky is-multicore flag, not the live
   domain count).  The child reads the wire protocol on stdin; the
   socketpair is bidirectional, so its replies come back the same fd. *)
let spawn_worker argv =
  let prog =
    match argv with
    | [] -> raise (Dist_error "Spawn: empty argv")
    | p :: _ -> p
  in
  let parent_fd, child_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  (* Without close-on-exec, a later-spawned worker would inherit this
     worker's coordinator-side fd and keep the connection half-open
     after a coordinator crash, defeating EOF detection. *)
  Unix.set_close_on_exec parent_fd;
  match
    Unix.create_process prog (Array.of_list argv) child_fd Unix.stdout
      Unix.stderr
  with
  | pid ->
      Unix.close child_fd;
      (parent_fd, pid)
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close parent_fd with Unix.Unix_error _ -> ());
      (try Unix.close child_fd with Unix.Unix_error _ -> ());
      raise
        (Dist_error
           (Printf.sprintf "spawn %s: %s" prog (Unix.error_message e)))

let sockaddr_of_endpoint ep =
  match String.rindex_opt ep ':' with
  | None -> raise (Dist_error (Printf.sprintf "%S: expected host:port" ep))
  | Some i -> (
      let host = String.sub ep 0 i in
      let port_s = String.sub ep (i + 1) (String.length ep - i - 1) in
      match int_of_string_opt port_s with
      | None -> raise (Dist_error (Printf.sprintf "%S: bad port %S" ep port_s))
      | Some port -> (
          try Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
          with _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } ->
                raise (Dist_error (Printf.sprintf "%S: host has no address" ep))
            | h -> Unix.ADDR_INET (h.Unix.h_addr_list.(0), port)
            | exception Not_found ->
                raise
                  (Dist_error (Printf.sprintf "%S: unknown host %S" ep host)))))

let connect_with_retry ep ~retry_s =
  let sockaddr = sockaddr_of_endpoint ep in
  let deadline = now () +. retry_s in
  let rec go () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.EHOSTUNREACH), _, _)
      when now () < deadline ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.1;
        go ()
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise
          (Dist_error
             (Printf.sprintf "connect %s: %s" ep (Unix.error_message e)))
  in
  go ()

(* --- lifecycle --- *)

let handshake t w =
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        raise (Dist_error (Printf.sprintf "worker %d (%s): %s" w.id w.addr m)))
      fmt
  in
  (try
     Frame.write w.fd
       (Wire.to_sexp
          (Wire.Hello
             {
               version = Wire.version;
               config_hash = t.config_hash;
               params = t.params;
             }))
   with Unix.Unix_error (e, _, _) ->
     fail "handshake write failed: %s" (Unix.error_message e));
  match Frame.read w.fd with
  | Error Frame.Eof -> fail "connection closed during handshake"
  | Error (Frame.Corrupt d) -> fail "corrupt frame during handshake: %s" d
  | Ok sexp -> (
      match Wire.of_sexp sexp with
      | Error e -> fail "bad handshake reply: %s" e
      | Ok (Wire.Welcome { config_hash; pid }) ->
          if config_hash <> t.config_hash then
            fail "handshake echoed config %s, expected %s" config_hash
              t.config_hash;
          w.last_heard <- now ();
          t.on_event (Worker_joined { worker = w.id; addr = w.addr; pid })
      | Ok (Wire.Reject { reason }) -> fail "rejected handshake: %s" reason
      | Ok _ -> fail "unexpected handshake reply")

let shutdown t =
  if not t.down then begin
    t.down <- true;
    List.iter
      (fun w ->
        if w.alive then begin
          w.alive <- false;
          (try Frame.write w.fd (Wire.to_sexp Wire.Shutdown)
           with Unix.Unix_error _ | Invalid_argument _ -> ());
          try Unix.close w.fd with Unix.Unix_error _ -> ()
        end)
      t.workers;
    List.iter
      (fun w ->
        if w.pid > 0 then
          try ignore (Unix.waitpid [] w.pid)
          with Unix.Unix_error _ -> ())
      t.workers
  end

let create ?(on_event = fun (_ : event) -> ()) ?(heartbeat_s = 10.)
    ?(timeout_s = 120.) ?(connect_retry_s = 10.) ?chaos_kill_after ~params
    ~config_hash ~workers () =
  if workers = [] then raise (Dist_error "no workers specified");
  (* A worker death between select and write otherwise kills the whole
     process with SIGPIPE before the loss path can requeue its tasks. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t =
    {
      params;
      config_hash;
      on_event;
      heartbeat_s;
      timeout_s;
      chaos_kill_after;
      workers = [];
      gen = 0;
      tree = None;
      dispatched = 0;
      ping_seq = 0;
      down = false;
    }
  in
  (try
     List.iteri
       (fun id spec ->
         let fd, addr, pid =
           match spec with
           | Fork ->
               let fd, pid = fork_worker () in
               (fd, Printf.sprintf "fork:%d" pid, pid)
           | Connect ep -> (connect_with_retry ep ~retry_s:connect_retry_s, ep, 0)
           | Spawn argv ->
               let fd, pid = spawn_worker argv in
               (fd, Printf.sprintf "spawn:%d" pid, pid)
         in
         let w =
           {
             id;
             addr;
             fd;
             pid;
             alive = true;
             gen_sent = 0;
             last_heard = now ();
             ping_sent = false;
             in_flight = [];
           }
         in
         t.workers <- t.workers @ [ w ];
         handshake t w)
       workers
   with e ->
     shutdown t;
     raise e);
  t

(* --- the evaluation engine --- *)

(* Pipeline depth per worker: one task computing, one queued behind it,
   so a worker never idles waiting for the coordinator's select loop. *)
let depth = 2

let eval_grid t (tasks : Wire.task array) : Wire.outcome array =
  if t.down then raise (Dist_error "coordinator is shut down");
  let n = Array.length tasks in
  let results = Array.make n None in
  let completed = ref 0 in
  let pending = ref (List.init n Fun.id) in
  (* task index -> worker that lost it, for reissue telemetry *)
  let reissued_from = Hashtbl.create 8 in
  let lose w reason =
    if w.alive then begin
      w.alive <- false;
      (try Unix.close w.fd with Unix.Unix_error _ -> ());
      let requeue = List.filter (fun i -> results.(i) = None) w.in_flight in
      List.iter (fun i -> Hashtbl.replace reissued_from i w.id) requeue;
      w.in_flight <- [];
      pending := requeue @ !pending;
      t.on_event
        (Worker_lost
           { worker = w.id; addr = w.addr; reason; requeued = List.length requeue })
    end
  in
  let send w msg =
    try
      Frame.write w.fd (Wire.to_sexp msg);
      true
    with Unix.Unix_error (e, _, _) ->
      lose w (Printf.sprintf "write failed: %s" (Unix.error_message e));
      false
  in
  let chaos_maybe_kill w =
    match t.chaos_kill_after with
    | Some k
      when t.dispatched >= k && w.pid > 0
           && List.exists (fun o -> o.alive && o.id <> w.id) t.workers ->
        t.chaos_kill_after <- None;
        (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ())
    | _ -> ()
  in
  (* Send the tree sync (if this worker is behind) then the task.
     Returns false if the worker died mid-dispatch — the caller puts the
     task back. *)
  let dispatch w i =
    let synced =
      w.gen_sent = t.gen
      ||
      match t.tree with
      | None -> raise (Dist_error "task dispatch before tree sync")
      | Some tree ->
          let ok = send w (Wire.Tree { gen = t.gen; tree }) in
          if ok then w.gen_sent <- t.gen;
          ok
    in
    synced
    && send w (Wire.Task { index = i; task = tasks.(i) })
    &&
    (w.in_flight <- w.in_flight @ [ i ];
     t.dispatched <- t.dispatched + 1;
     (match Hashtbl.find_opt reissued_from i with
     | Some from_worker ->
         Hashtbl.remove reissued_from i;
         t.on_event (Task_reissued { index = i; from_worker; to_worker = w.id })
     | None -> ());
     chaos_maybe_kill w;
     true)
  in
  let fill () =
    List.iter
      (fun w ->
        let continue = ref true in
        while !continue && w.alive && List.length w.in_flight < depth do
          match !pending with
          | [] -> continue := false
          | i :: rest ->
              pending := rest;
              if not (dispatch w i) then
                (* dispatch failure requeues the worker's in-flight set,
                   but [i] was never in flight — put it back itself *)
                pending := i :: !pending
        done)
      (live_list t)
  in
  let handle_read w =
    match Frame.read w.fd with
    | Error Frame.Eof -> lose w "connection closed"
    | Error (Frame.Corrupt diag) ->
        raise
          (Dist_error
             (Printf.sprintf "worker %d (%s): corrupt frame: %s" w.id w.addr diag))
    | Ok sexp -> (
        match Wire.of_sexp sexp with
        | Error e ->
            raise
              (Dist_error
                 (Printf.sprintf "worker %d (%s): bad message: %s" w.id w.addr e))
        | Ok (Wire.Result { index; outcome }) ->
            w.last_heard <- now ();
            w.ping_sent <- false;
            if index < 0 || index >= n then
              raise
                (Dist_error
                   (Printf.sprintf "worker %d (%s): result index %d out of range"
                      w.id w.addr index));
            w.in_flight <- List.filter (fun j -> j <> index) w.in_flight;
            (match results.(index) with
            | Some _ -> ()  (* late duplicate after a reissue; ignored *)
            | None ->
                results.(index) <- Some outcome;
                incr completed)
        | Ok (Wire.Pong _) ->
            w.last_heard <- now ();
            w.ping_sent <- false
        | Ok (Wire.Reject { reason }) ->
            raise
              (Dist_error
                 (Printf.sprintf "worker %d (%s) rejected: %s" w.id w.addr reason))
        | Ok _ ->
            raise
              (Dist_error
                 (Printf.sprintf "worker %d (%s): unexpected message" w.id w.addr)))
  in
  while !completed < n do
    fill ();
    if !completed < n then begin
      let live = live_list t in
      if live = [] then
        raise
          (Dist_error
             (Printf.sprintf "all workers lost (%d/%d tasks complete)" !completed
                n));
      let fds = List.map (fun w -> w.fd) live in
      let readable, _, _ =
        try Unix.select fds [] [] 1.0
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun w -> if w.alive && List.memq w.fd readable then handle_read w)
        live;
      let tnow = now () in
      List.iter
        (fun w ->
          if w.alive && w.in_flight <> [] then
            if tnow -. w.last_heard > t.timeout_s then
              lose w
                (Printf.sprintf "unresponsive for %.1f s" (tnow -. w.last_heard))
            else if tnow -. w.last_heard > t.heartbeat_s && not w.ping_sent
            then begin
              t.ping_seq <- t.ping_seq + 1;
              if send w (Wire.Ping { seq = t.ping_seq }) then w.ping_sent <- true
            end)
        live
    end
  done;
  Array.map
    (function Some o -> o | None -> raise (Dist_error "missing result"))
    results

let set_tree t tree =
  t.gen <- t.gen + 1;
  t.tree <- Some tree

let backend t ~incremental =
  {
    Optimizer.eval_baseline =
      (fun ?tally tree specimens ->
        (* Baselines open every round: sync the tree here and the
           generation tag covers all candidate tasks that follow (their
           override shadows the only rule whose action changes within
           the round, and structural changes always precede another
           baseline). *)
        set_tree t tree;
        let specs = Array.of_list specimens in
        let outcomes =
          eval_grid t (Array.map (fun s -> Wire.Baseline { spec = s }) specs)
        in
        let scored =
          Array.map
            (function
              | Wire.Baseline_result { scores; slots } -> (scores, slots)
              | Wire.Candidate_result _ ->
                  raise (Dist_error "candidate result for a baseline task"))
            outcomes
        in
        (* Tally merge in specimen order — same order [Evaluator.baseline]
           merges its per-specimen tallies. *)
        (match tally with
        | Some dst ->
            Array.iter (fun (_, slots) -> Tally.merge_exported dst slots) scored
        | None -> ());
        let capacity = Rule_tree.capacity tree in
        let cache =
          Array.mapi
            (fun i (scores, slots) ->
              let touched = Array.make capacity false in
              List.iter
                (fun (id, _, _) -> if id < capacity then touched.(id) <- true)
                slots;
              { Evaluator.spec = specs.(i); scores; touched })
            scored
        in
        ( Evaluator.result_of_spec_scores
            (Array.map (fun c -> c.Evaluator.scores) cache),
          cache ));
    eval_candidates =
      (fun _tree ~rule candidates cache ->
        let resim = Evaluator.resim_indices ~incremental ~rule cache in
        let grid = Evaluator.candidate_grid ~candidates ~resim in
        let outcomes =
          eval_grid t
            (Array.map
               (fun (ci, si) ->
                 Wire.Candidate
                   {
                     rule;
                     action = candidates.(ci);
                     spec = cache.(si).Evaluator.spec;
                   })
               grid)
        in
        let fresh =
          Array.map
            (function
              | Wire.Candidate_result { scores } -> scores
              | Wire.Baseline_result _ ->
                  raise (Dist_error "baseline result for a candidate task"))
            outcomes
        in
        Evaluator.reduce_candidates ~candidates ~cache ~resim ~fresh);
  }
