(** The distributed-training message vocabulary and its sexp codecs.

    Everything that crosses a coordinator/worker socket is one of these
    messages, rendered canonically by {!Frame}.  Floats travel as
    ["%.17g"] atoms (exact round-trip), so a score computed on a worker
    reduces to the same bits the coordinator would have computed
    locally.

    Protocol flow: coordinator sends [Hello] (version + config
    fingerprint + evaluation parameters), worker answers [Welcome]
    (echoing the fingerprint) or [Reject]; the coordinator then
    interleaves [Tree] (full rule-table sync, generation-tagged),
    [Task] (one specimen evaluation, index-tagged), and [Ping];
    the worker answers [Result] and [Pong]; [Shutdown] ends the
    session. *)

open Remy

val version : int
(** Protocol version; a [Hello] with any other version is rejected. *)

type eval_params = {
  objective : Objective.t;
  queue_capacity : int;
  duration : float;  (** seconds simulated per specimen *)
  topology : string option;
      (** multi-bottleneck topology name, [None] = dumbbell *)
}
(** Everything a worker needs besides the tree and the specimen to run
    {!Evaluator.specimen_scores} — fixed for a whole training run, so it
    travels once in [Hello]. *)

type task =
  | Baseline of { spec : Net_model.specimen }
      (** simulate the current tree; return scores + the fired-rule tally *)
  | Candidate of { rule : int; action : Action.t; spec : Net_model.specimen }
      (** simulate with [rule]'s action overridden *)

type outcome =
  | Baseline_result of {
      scores : float list;
      slots : (int * int * Memory.t list) list;
          (** {!Tally.export} of the specimen's private tally *)
    }
  | Candidate_result of { scores : float list }

type msg =
  | Hello of { version : int; config_hash : string; params : eval_params }
  | Welcome of { config_hash : string; pid : int }
  | Reject of { reason : string }
  | Tree of { gen : int; tree : Rule_tree.t }
      (** checkpoint-grade serialization ({!Rule_tree.to_sexp_full}):
          same capacity, ids and epochs on both sides *)
  | Task of { index : int; task : task }
  | Result of { index : int; outcome : outcome }
  | Ping of { seq : int }
  | Pong of { seq : int }
  | Shutdown

val to_sexp : msg -> Remy_util.Sexp.t

val of_sexp : Remy_util.Sexp.t -> (msg, string) result
(** Errors name the malformed construct (["hello: missing config"],
    ["task: bad specimen: ..."]). *)

val specimen_to_sexp : Net_model.specimen -> Remy_util.Sexp.t
val specimen_of_sexp : Remy_util.Sexp.t -> (Net_model.specimen, string) result
