(** Length-prefixed s-expression frames — the unit of the distributed
    training protocol.

    A frame is an 8-byte header followed by the payload: 4 magic bytes
    ["RMYD"], a 4-byte big-endian payload length, then the payload — one
    s-expression in {!Remy_util.Sexp.to_string}'s canonical (minimal
    spacing) rendering, the same rendering {!Remy.Checkpoint} hashes.
    The length prefix makes framing independent of payload content, so a
    torn TCP stream is detected structurally (truncated header or
    payload) before the parser ever runs, and a corrupt payload is
    rejected by the s-expression parser with line/column positions.

    Every validation failure names what was wrong and where (byte
    offsets for framing, line/column for payloads), because a frame
    error on a training socket must be diagnosable from the log line
    alone. *)

val magic : string
(** ["RMYD"], the 4 bytes every frame leads with. *)

val header_bytes : int
(** 8: magic + big-endian payload length. *)

val max_payload : int
(** Frames above this payload size (64 MiB) are rejected on both send
    and receive — a length word that large is corruption, not data. *)

type read_error =
  | Eof  (** clean end of stream at a frame boundary *)
  | Corrupt of string
      (** framing or payload violation; the string names it (bad magic,
          truncated header/payload, oversized length, parse error with
          position) *)

val encode : Remy_util.Sexp.t -> string
(** Header + canonical payload, ready to write.  Raises
    [Invalid_argument] if the payload exceeds {!max_payload}. *)

val decode : string -> pos:int -> (Remy_util.Sexp.t * int, string) result
(** Decode one frame starting at byte [pos]; returns the payload and the
    offset just past the frame.  Pure string variant of {!read} for
    tests and buffers; errors carry byte positions relative to [pos]. *)

val write : Unix.file_descr -> Remy_util.Sexp.t -> unit
(** Write one frame, looping over partial writes and [EINTR].  Raises
    [Unix.Unix_error] (e.g. [EPIPE] when the peer died) and
    [Invalid_argument] on oversized payloads. *)

val read : Unix.file_descr -> (Remy_util.Sexp.t, read_error) result
(** Blocking read of exactly one frame.  [Error Eof] on a clean close
    before any header byte; [Error (Corrupt _)] on everything torn or
    malformed, including a connection reset mid-frame. *)
