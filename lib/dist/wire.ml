open Remy
open Remy_util

let version = 1

type eval_params = {
  objective : Objective.t;
  queue_capacity : int;
  duration : float;
  topology : string option;
}

type task =
  | Baseline of { spec : Net_model.specimen }
  | Candidate of { rule : int; action : Action.t; spec : Net_model.specimen }

type outcome =
  | Baseline_result of {
      scores : float list;
      slots : (int * int * Memory.t list) list;
    }
  | Candidate_result of { scores : float list }

type msg =
  | Hello of { version : int; config_hash : string; params : eval_params }
  | Welcome of { config_hash : string; pid : int }
  | Reject of { reason : string }
  | Tree of { gen : int; tree : Rule_tree.t }
  | Task of { index : int; task : task }
  | Result of { index : int; outcome : outcome }
  | Ping of { seq : int }
  | Pong of { seq : int }
  | Shutdown

let ( let* ) = Result.bind

(* Prefix decoding errors with the construct being decoded, so a bad
   frame names its path: "task: bad specimen: n: expected int". *)
let ctx name = Result.map_error (fun e -> name ^ ": " ^ e)

let field_int s k =
  let* v = Sexp.field s k in
  ctx k (Sexp.to_int v)

let field_float s k =
  let* v = Sexp.field s k in
  ctx k (Sexp.to_float v)

let field_atom s k =
  let* v = Sexp.field s k in
  ctx k (Sexp.to_atom v)

(* --- probability distributions (Remy_util.Dist) --- *)

let dist_to_sexp (d : Dist.t) =
  match d with
  | Dist.Constant x -> Sexp.list [ Sexp.atom "const"; Sexp.float x ]
  | Dist.Uniform (a, b) ->
      Sexp.list [ Sexp.atom "uniform"; Sexp.float a; Sexp.float b ]
  | Dist.Exponential m -> Sexp.list [ Sexp.atom "exp"; Sexp.float m ]
  | Dist.Pareto { xm; alpha; shift } ->
      Sexp.list
        [ Sexp.atom "pareto"; Sexp.float xm; Sexp.float alpha; Sexp.float shift ]
  | Dist.Empirical vs ->
      Sexp.list
        (Sexp.atom "empirical" :: (Array.to_list vs |> List.map Sexp.float))

let dist_of_sexp s =
  ctx "distribution"
    (match s with
    | Sexp.List [ Sexp.Atom "const"; x ] ->
        let* x = Sexp.to_float x in
        Ok (Dist.Constant x)
    | Sexp.List [ Sexp.Atom "uniform"; a; b ] ->
        let* a = Sexp.to_float a in
        let* b = Sexp.to_float b in
        Ok (Dist.Uniform (a, b))
    | Sexp.List [ Sexp.Atom "exp"; m ] ->
        let* m = Sexp.to_float m in
        Ok (Dist.Exponential m)
    | Sexp.List [ Sexp.Atom "pareto"; xm; alpha; shift ] ->
        let* xm = Sexp.to_float xm in
        let* alpha = Sexp.to_float alpha in
        let* shift = Sexp.to_float shift in
        Ok (Dist.Pareto { xm; alpha; shift })
    | Sexp.List (Sexp.Atom "empirical" :: vs) ->
        let* vs =
          List.fold_right
            (fun v acc ->
              let* acc = acc in
              let* v = Sexp.to_float v in
              Ok (v :: acc))
            vs (Ok [])
        in
        Ok (Dist.Empirical (Array.of_list vs))
    | _ -> Error "unknown form")

(* --- workloads --- *)

let on_spec_to_sexp (o : Remy_sim.Workload.on_spec) =
  match o with
  | Remy_sim.Workload.By_time d -> Sexp.list [ Sexp.atom "by-time"; dist_to_sexp d ]
  | Remy_sim.Workload.By_bytes d ->
      Sexp.list [ Sexp.atom "by-bytes"; dist_to_sexp d ]
  | Remy_sim.Workload.Icsi_flow_lengths -> Sexp.list [ Sexp.atom "icsi" ]

let on_spec_of_sexp s =
  ctx "on-spec"
    (match s with
    | Sexp.List [ Sexp.Atom "by-time"; d ] ->
        let* d = dist_of_sexp d in
        Ok (Remy_sim.Workload.By_time d)
    | Sexp.List [ Sexp.Atom "by-bytes"; d ] ->
        let* d = dist_of_sexp d in
        Ok (Remy_sim.Workload.By_bytes d)
    | Sexp.List [ Sexp.Atom "icsi" ] -> Ok Remy_sim.Workload.Icsi_flow_lengths
    | _ -> Error "unknown form")

(* --- specimens --- *)

let specimen_to_sexp (s : Net_model.specimen) =
  Sexp.list
    [
      Sexp.atom "spec";
      Sexp.list [ Sexp.atom "n"; Sexp.int s.Net_model.n ];
      Sexp.list [ Sexp.atom "link"; Sexp.float s.Net_model.spec_link_mbps ];
      Sexp.list [ Sexp.atom "rtt"; Sexp.float s.Net_model.rtt_s ];
      Sexp.list [ Sexp.atom "seed"; Sexp.int s.Net_model.spec_seed ];
      Sexp.list
        [
          Sexp.atom "off";
          dist_to_sexp s.Net_model.workload.Remy_sim.Workload.off_time;
        ];
      Sexp.list
        [
          Sexp.atom "on";
          on_spec_to_sexp s.Net_model.workload.Remy_sim.Workload.on_spec;
        ];
    ]

let specimen_of_sexp s =
  ctx "specimen"
    (match s with
    | Sexp.List (Sexp.Atom "spec" :: _) ->
        let* n = field_int s "n" in
        let* link = field_float s "link" in
        let* rtt = field_float s "rtt" in
        let* seed = field_int s "seed" in
        let* off = Sexp.field s "off" in
        let* off = dist_of_sexp off in
        let* on = Sexp.field s "on" in
        let* on = on_spec_of_sexp on in
        Ok
          {
            Net_model.n;
            spec_link_mbps = link;
            rtt_s = rtt;
            spec_seed = seed;
            workload = { Remy_sim.Workload.off_time = off; on_spec = on };
          }
    | _ -> Error "expected (spec ...)")

(* --- actions and memories --- *)

let action_to_sexp (a : Action.t) =
  Sexp.list
    [
      Sexp.atom "act";
      Sexp.float a.Action.multiple;
      Sexp.float a.Action.increment;
      Sexp.float a.Action.intersend_ms;
    ]

let action_of_sexp s =
  ctx "action"
    (match s with
    | Sexp.List [ Sexp.Atom "act"; m; b; r ] ->
        let* multiple = Sexp.to_float m in
        let* increment = Sexp.to_float b in
        let* intersend_ms = Sexp.to_float r in
        Ok { Action.multiple; increment; intersend_ms }
    | _ -> Error "expected (act m b r)")

let memory_to_sexp (m : Memory.t) =
  Sexp.list
    [
      Sexp.float m.Memory.ack_ewma;
      Sexp.float m.Memory.send_ewma;
      Sexp.float m.Memory.rtt_ratio;
    ]

let memory_of_sexp s =
  ctx "memory"
    (match s with
    | Sexp.List [ a; sd; r ] ->
        let* ack_ewma = Sexp.to_float a in
        let* send_ewma = Sexp.to_float sd in
        let* rtt_ratio = Sexp.to_float r in
        Ok (Memory.make ~ack_ewma ~send_ewma ~rtt_ratio)
    | _ -> Error "expected (ack send rtt)")

(* --- score lists and tally slots --- *)

let scores_to_sexp scores =
  Sexp.list (Sexp.atom "scores" :: List.map Sexp.float scores)

let scores_of_sexp s =
  ctx "scores"
    (match s with
    | Sexp.List (Sexp.Atom "scores" :: vs) ->
        List.fold_right
          (fun v acc ->
            let* acc = acc in
            let* v = Sexp.to_float v in
            Ok (v :: acc))
          vs (Ok [])
    | _ -> Error "expected (scores ...)")

let slot_to_sexp (id, count, kept) =
  Sexp.list
    (Sexp.atom "slot" :: Sexp.int id :: Sexp.int count
    :: List.map memory_to_sexp kept)

let slot_of_sexp s =
  ctx "slot"
    (match s with
    | Sexp.List (Sexp.Atom "slot" :: id :: count :: mems) ->
        let* id = Sexp.to_int id in
        let* count = Sexp.to_int count in
        let* kept =
          List.fold_right
            (fun m acc ->
              let* acc = acc in
              let* m = memory_of_sexp m in
              Ok (m :: acc))
            mems (Ok [])
        in
        Ok (id, count, kept)
    | _ -> Error "expected (slot id count mem...)")

let slots_to_sexp slots =
  Sexp.list (Sexp.atom "slots" :: List.map slot_to_sexp slots)

let slots_of_sexp s =
  ctx "slots"
    (match s with
    | Sexp.List (Sexp.Atom "slots" :: ss) ->
        List.fold_right
          (fun sl acc ->
            let* acc = acc in
            let* sl = slot_of_sexp sl in
            Ok (sl :: acc))
          ss (Ok [])
    | _ -> Error "expected (slots ...)")

(* --- eval params --- *)

let params_to_sexp p =
  Sexp.list
    [
      Sexp.atom "params";
      Sexp.list [ Sexp.atom "alpha"; Sexp.float p.objective.Objective.alpha ];
      Sexp.list [ Sexp.atom "beta"; Sexp.float p.objective.Objective.beta ];
      Sexp.list [ Sexp.atom "delta"; Sexp.float p.objective.Objective.delta ];
      Sexp.list [ Sexp.atom "queue"; Sexp.int p.queue_capacity ];
      Sexp.list [ Sexp.atom "duration"; Sexp.float p.duration ];
      Sexp.list
        [
          Sexp.atom "topology";
          Sexp.atom (match p.topology with None -> "none" | Some t -> t);
        ];
    ]

let params_of_sexp s =
  ctx "params"
    (match s with
    | Sexp.List (Sexp.Atom "params" :: _) ->
        let* alpha = field_float s "alpha" in
        let* beta = field_float s "beta" in
        let* delta = field_float s "delta" in
        let* queue_capacity = field_int s "queue" in
        let* duration = field_float s "duration" in
        let* topology = field_atom s "topology" in
        Ok
          {
            objective = { Objective.alpha; beta; delta };
            queue_capacity;
            duration;
            topology = (if topology = "none" then None else Some topology);
          }
    | _ -> Error "expected (params ...)")

(* --- tasks and outcomes --- *)

let task_to_sexp = function
  | Baseline { spec } -> Sexp.list [ Sexp.atom "baseline"; specimen_to_sexp spec ]
  | Candidate { rule; action; spec } ->
      Sexp.list
        [
          Sexp.atom "candidate";
          Sexp.int rule;
          action_to_sexp action;
          specimen_to_sexp spec;
        ]

let task_of_sexp s =
  ctx "task"
    (match s with
    | Sexp.List [ Sexp.Atom "baseline"; spec ] ->
        let* spec = specimen_of_sexp spec in
        Ok (Baseline { spec })
    | Sexp.List [ Sexp.Atom "candidate"; rule; action; spec ] ->
        let* rule = Sexp.to_int rule in
        let* action = action_of_sexp action in
        let* spec = specimen_of_sexp spec in
        Ok (Candidate { rule; action; spec })
    | _ -> Error "unknown form")

let outcome_to_sexp = function
  | Baseline_result { scores; slots } ->
      Sexp.list
        [ Sexp.atom "baseline"; scores_to_sexp scores; slots_to_sexp slots ]
  | Candidate_result { scores } ->
      Sexp.list [ Sexp.atom "candidate"; scores_to_sexp scores ]

let outcome_of_sexp s =
  ctx "outcome"
    (match s with
    | Sexp.List [ Sexp.Atom "baseline"; scores; slots ] ->
        let* scores = scores_of_sexp scores in
        let* slots = slots_of_sexp slots in
        Ok (Baseline_result { scores; slots })
    | Sexp.List [ Sexp.Atom "candidate"; scores ] ->
        let* scores = scores_of_sexp scores in
        Ok (Candidate_result { scores })
    | _ -> Error "unknown form")

(* --- top-level messages --- *)

let to_sexp = function
  | Hello { version; config_hash; params } ->
      Sexp.list
        [
          Sexp.atom "hello";
          Sexp.list [ Sexp.atom "version"; Sexp.int version ];
          Sexp.list [ Sexp.atom "config"; Sexp.string config_hash ];
          params_to_sexp params;
        ]
  | Welcome { config_hash; pid } ->
      Sexp.list
        [
          Sexp.atom "welcome";
          Sexp.list [ Sexp.atom "config"; Sexp.string config_hash ];
          Sexp.list [ Sexp.atom "pid"; Sexp.int pid ];
        ]
  | Reject { reason } -> Sexp.list [ Sexp.atom "reject"; Sexp.string reason ]
  | Tree { gen; tree } ->
      Sexp.list
        [
          Sexp.atom "tree";
          Sexp.list [ Sexp.atom "gen"; Sexp.int gen ];
          Rule_tree.to_sexp_full tree;
        ]
  | Task { index; task } ->
      Sexp.list [ Sexp.atom "task"; Sexp.int index; task_to_sexp task ]
  | Result { index; outcome } ->
      Sexp.list [ Sexp.atom "result"; Sexp.int index; outcome_to_sexp outcome ]
  | Ping { seq } -> Sexp.list [ Sexp.atom "ping"; Sexp.int seq ]
  | Pong { seq } -> Sexp.list [ Sexp.atom "pong"; Sexp.int seq ]
  | Shutdown -> Sexp.list [ Sexp.atom "shutdown" ]

(* Find the whole sub-list headed by [k] (unlike [Sexp.field], which
   unwraps it). *)
let sub s k =
  match s with
  | Sexp.List items -> (
      match
        List.find_opt
          (function Sexp.List (Sexp.Atom h :: _) -> h = k | _ -> false)
          items
      with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "missing %s" k))
  | Sexp.Atom _ -> Error (Printf.sprintf "missing %s" k)

let of_sexp s =
  match s with
  | Sexp.List (Sexp.Atom "hello" :: _) ->
      ctx "hello"
        (let* version = field_int s "version" in
         let* config_hash = field_atom s "config" in
         let* params = sub s "params" in
         let* params = params_of_sexp params in
         Ok (Hello { version; config_hash; params }))
  | Sexp.List (Sexp.Atom "welcome" :: _) ->
      ctx "welcome"
        (let* config_hash = field_atom s "config" in
         let* pid = field_int s "pid" in
         Ok (Welcome { config_hash; pid }))
  | Sexp.List [ Sexp.Atom "reject"; reason ] ->
      ctx "reject"
        (let* reason = Sexp.to_atom reason in
         Ok (Reject { reason }))
  | Sexp.List [ Sexp.Atom "tree"; gen_field; tree ] ->
      ctx "tree"
        (let* gen =
           match gen_field with
           | Sexp.List [ Sexp.Atom "gen"; g ] -> Sexp.to_int g
           | _ -> Error "missing gen"
         in
         let* tree = Rule_tree.of_sexp_full tree in
         Ok (Tree { gen; tree }))
  | Sexp.List [ Sexp.Atom "task"; index; task ] ->
      ctx "task"
        (let* index = Sexp.to_int index in
         let* task = task_of_sexp task in
         Ok (Task { index; task }))
  | Sexp.List [ Sexp.Atom "result"; index; outcome ] ->
      ctx "result"
        (let* index = Sexp.to_int index in
         let* outcome = outcome_of_sexp outcome in
         Ok (Result { index; outcome }))
  | Sexp.List [ Sexp.Atom "ping"; seq ] ->
      ctx "ping"
        (let* seq = Sexp.to_int seq in
         Ok (Ping { seq }))
  | Sexp.List [ Sexp.Atom "pong"; seq ] ->
      ctx "pong"
        (let* seq = Sexp.to_int seq in
         Ok (Pong { seq }))
  | Sexp.List [ Sexp.Atom "shutdown" ] -> Ok Shutdown
  | Sexp.List (Sexp.Atom h :: _) ->
      Error (Printf.sprintf "unknown message %S" h)
  | _ -> Error "unknown message form"
