open Remy_util

let magic = "RMYD"
let header_bytes = 8
let max_payload = 64 * 1024 * 1024

type read_error = Eof | Corrupt of string

let encode sexp =
  let payload = Sexp.to_string sexp in
  let n = String.length payload in
  if n > max_payload then
    invalid_arg
      (Printf.sprintf "Frame.encode: payload %d bytes exceeds max %d" n
         max_payload);
  let b = Bytes.create (header_bytes + n) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b 5 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 6 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 7 (Char.chr (n land 0xFF));
  Bytes.blit_string payload 0 b header_bytes n;
  Bytes.unsafe_to_string b

(* Validate an 8-byte header; returns the payload length.  Shared by the
   string decoder and the fd reader so both emit the same diagnostics. *)
let check_header h =
  if String.length h < header_bytes then
    Error
      (Printf.sprintf "truncated header: got %d of %d bytes" (String.length h)
         header_bytes)
  else if String.sub h 0 4 <> magic then
    Error
      (Printf.sprintf "bad magic at byte 0: expected %S, got %S" magic
         (String.sub h 0 4))
  else
    let byte i = Char.code h.[i] in
    let n = (byte 4 lsl 24) lor (byte 5 lsl 16) lor (byte 6 lsl 8) lor byte 7 in
    if n > max_payload then
      Error
        (Printf.sprintf "payload length %d at byte 4 exceeds max %d" n
           max_payload)
    else Ok n

let parse_payload payload =
  match Sexp.of_string payload with
  | Ok sexp -> Ok sexp
  | Error e -> Error (Printf.sprintf "payload at byte %d: %s" header_bytes e)

let decode s ~pos =
  let avail = String.length s - pos in
  if avail < header_bytes then
    Error
      (Printf.sprintf "truncated header: got %d of %d bytes"
         (max 0 avail) header_bytes)
  else
    match check_header (String.sub s pos header_bytes) with
    | Error e -> Error e
    | Ok n ->
        if avail - header_bytes < n then
          Error
            (Printf.sprintf "truncated payload: got %d of %d bytes"
               (avail - header_bytes) n)
        else
          let payload = String.sub s (pos + header_bytes) n in
          Result.map
            (fun sexp -> (sexp, pos + header_bytes + n))
            (parse_payload payload)

let write_all fd b off len =
  let off = ref off and len = ref len in
  while !len > 0 do
    match Unix.write fd b !off !len with
    | n ->
        off := !off + n;
        len := !len - n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let write fd sexp =
  let s = encode sexp in
  write_all fd (Bytes.unsafe_of_string s) 0 (String.length s)

(* Read exactly [len] bytes; returns how many arrived before EOF.  A
   reset peer reads as EOF: the caller distinguishes boundary vs torn. *)
let really_read fd b len =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    match Unix.read fd b !got (len - !got) with
    | 0 -> eof := true
    | n -> got := !got + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        eof := true
  done;
  !got

let read fd =
  let hdr = Bytes.create header_bytes in
  match really_read fd hdr header_bytes with
  | 0 -> Error Eof
  | n when n < header_bytes ->
      Error
        (Corrupt
           (Printf.sprintf "truncated header: got %d of %d bytes" n
              header_bytes))
  | _ -> (
      match check_header (Bytes.to_string hdr) with
      | Error e -> Error (Corrupt e)
      | Ok n -> (
          let payload = Bytes.create n in
          let got = really_read fd payload n in
          if got < n then
            Error
              (Corrupt
                 (Printf.sprintf "truncated payload: got %d of %d bytes" got n))
          else
            match parse_payload (Bytes.to_string payload) with
            | Ok sexp -> Ok sexp
            | Error e -> Error (Corrupt e)))
