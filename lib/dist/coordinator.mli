(** The stateful side of distributed training: owns the rule tree,
    shards evaluation grids across worker processes, and reduces
    results in fixed task order.

    Determinism argument, in full: the coordinator keeps every piece of
    trajectory-relevant state (tree, PRNG, counters) exactly where the
    single-process optimizer keeps it; workers only ever compute the
    pure function (tree, params, task) -> scores.  Results are buffered
    into a slot array by task index and reduced with the same
    {!Remy.Evaluator} arithmetic the in-process pool uses, only after
    the whole grid completes — so neither worker count, nor scheduling,
    nor worker loss (a reissued task recomputes the same pure function)
    can change a single bit of the outcome.

    Failure model: a worker that EOFs, resets, fails a write, or stays
    silent past the timeout is declared lost; its in-flight task
    indices are requeued at the front of the pending queue and reissued
    to surviving workers.  Corrupt frames are not survivable — they
    mean the transport or a peer is lying, and the run aborts with the
    frame diagnostic ({!Dist_error}).  Losing the last worker likewise
    aborts; the round-boundary checkpoint on disk remains the resume
    point, exactly as for {!Remy.Par} pool failures. *)

type worker_spec =
  | Fork  (** fork a worker child connected by socketpair *)
  | Connect of string  (** connect to a [remy_worker] at ["host:port"] *)
  | Spawn of string list
      (** exec [argv] as a worker child serving the protocol on stdin
          (a socketpair end).  Goes through posix_spawn, so — unlike
          [Fork] — it stays usable after this process has created
          domains. *)

val specs_of_string : string -> (worker_spec list, string) result
(** Parse a [--workers] argument: a bare integer [N] means [N] forked
    workers; otherwise a comma-separated list of [host:port] endpoints. *)

type event =
  | Worker_joined of { worker : int; addr : string; pid : int }
  | Worker_lost of { worker : int; addr : string; reason : string; requeued : int }
  | Task_reissued of { index : int; from_worker : int; to_worker : int }

exception Dist_error of string
(** Unrecoverable distribution failure (handshake rejection, corrupt
    frame, all workers lost).  The message names the worker and cause. *)

type t

val create :
  ?on_event:(event -> unit) ->
  ?heartbeat_s:float ->
  ?timeout_s:float ->
  ?connect_retry_s:float ->
  ?chaos_kill_after:int ->
  params:Wire.eval_params ->
  config_hash:string ->
  workers:worker_spec list ->
  unit ->
  t
(** Spawn/connect and handshake every worker (raises {!Dist_error} if
    any handshake fails).  [Fork] workers must be created before any
    domain is spawned in this process (fork + running domains do not
    mix); [remy_train] therefore builds the coordinator before
    {!Remy.Optimizer.design}, which skips its pool when given a
    backend.  [Spawn] workers have no such restriction (posix_spawn
    does not care about domains).  [Connect] endpoints are retried for
    [connect_retry_s]
    (default 10 s) to absorb worker startup races.  A worker with tasks
    in flight is pinged after [heartbeat_s] (default 10 s) of silence
    and declared lost after [timeout_s] (default 120 s).

    [chaos_kill_after n] SIGKILLs a forked worker right after the
    [n]-th task dispatch (only while another worker survives) — the CI
    hook that proves the reissue path preserves bit-identity. *)

val backend : t -> incremental:bool -> Remy.Optimizer.eval_backend
(** The {!Remy.Optimizer.design} evaluation engine: baselines sync the
    tree (generation-tagged, checkpoint-grade serialization) and merge
    worker tallies in specimen order; candidate rounds shard the same
    flattened candidates x resim grid the pool path enumerates and
    reduce with {!Remy.Evaluator.reduce_candidates}. *)

val live_workers : t -> int
(** Workers currently connected and healthy. *)

val shutdown : t -> unit
(** Send [Shutdown] to every live worker, close sockets, reap forked
    children.  Idempotent. *)
