open Remy

exception Protocol_error of string

(* Matches the in-process pool paths in [Evaluator.baseline]: a private
   tally per specimen, seeded from the specimen seed. *)
let tally_seed_salt = 0x5EED

let eval_task (p : Wire.eval_params) tree (task : Wire.task) : Wire.outcome =
  match task with
  | Wire.Baseline { spec } ->
      let tally =
        Tally.create
          ~capacity:(Rule_tree.capacity tree)
          ~seed:(spec.Net_model.spec_seed lxor tally_seed_salt)
          ()
      in
      let scores =
        Evaluator.specimen_scores ~tally ?topology:p.Wire.topology
          ~objective:p.Wire.objective ~queue_capacity:p.Wire.queue_capacity
          ~duration:p.Wire.duration tree spec
      in
      Wire.Baseline_result { scores; slots = Tally.export tally }
  | Wire.Candidate { rule; action; spec } ->
      let scores =
        Evaluator.specimen_scores ~override:(rule, action)
          ?topology:p.Wire.topology ~objective:p.Wire.objective
          ~queue_capacity:p.Wire.queue_capacity ~duration:p.Wire.duration tree
          spec
      in
      Wire.Candidate_result { scores }

let serve ?expect_config ?(log = fun _ -> ()) fd =
  let params = ref None in
  let tree = ref None in
  let tasks_done = ref 0 in
  let stop = ref false in
  let send msg = Frame.write fd (Wire.to_sexp msg) in
  while not !stop do
    match Frame.read fd with
    | Error Frame.Eof ->
        log (Printf.sprintf "coordinator hung up after %d tasks" !tasks_done);
        stop := true
    | Error (Frame.Corrupt diag) -> raise (Protocol_error ("corrupt frame: " ^ diag))
    | Ok sexp -> (
        match Wire.of_sexp sexp with
        | Error e -> raise (Protocol_error ("bad message: " ^ e))
        | Ok (Wire.Hello { version; config_hash; params = p }) ->
            if version <> Wire.version then begin
              let reason =
                Printf.sprintf "protocol version mismatch: coordinator %d, worker %d"
                  version Wire.version
              in
              send (Wire.Reject { reason });
              raise (Protocol_error reason)
            end;
            (match expect_config with
            | Some pinned when pinned <> config_hash ->
                let reason =
                  Printf.sprintf
                    "config fingerprint mismatch: coordinator %s, worker pinned %s"
                    config_hash pinned
                in
                send (Wire.Reject { reason });
                raise (Protocol_error reason)
            | _ -> ());
            params := Some p;
            send (Wire.Welcome { config_hash; pid = Unix.getpid () });
            log (Printf.sprintf "handshake ok (config %s)" config_hash)
        | Ok (Wire.Tree { gen; tree = t }) ->
            tree := Some t;
            log (Printf.sprintf "tree synced (gen %d, %d rules)" gen
                   (Rule_tree.num_rules t))
        | Ok (Wire.Task { index; task }) ->
            let p =
              match !params with
              | Some p -> p
              | None -> raise (Protocol_error "task before hello")
            in
            let t =
              match !tree with
              | Some t -> t
              | None -> raise (Protocol_error "task before tree sync")
            in
            let outcome = eval_task p t task in
            incr tasks_done;
            send (Wire.Result { index; outcome })
        | Ok (Wire.Ping { seq }) -> send (Wire.Pong { seq })
        | Ok Wire.Shutdown ->
            log (Printf.sprintf "shutdown after %d tasks" !tasks_done);
            stop := true
        | Ok (Wire.Welcome _ | Wire.Reject _ | Wire.Result _ | Wire.Pong _) ->
            raise (Protocol_error "unexpected coordinator-bound message"))
  done
