(** Static verification of RemyCC rule tables.

    The paper's artifact is a machine-generated table nobody
    hand-inspects; this module proves its safety obligations without
    running a single simulation:

    - {b Partition.} The live rules' boxes tile the 3-D memory domain
      exactly — exhaustive coverage and pairwise disjointness, decided
      by {!Remy_util.Boxpart}'s elementary-grid argument (no sampling,
      no false verdicts).  Every lookup therefore hits exactly one rule.
    - {b Action bounds.} Every live action is finite and inside the
      searchable region ({!Remy.Action.validate}).
    - {b Bounded window.} An abstract-interpretation pass iterates every
      rule's window map [w -> clamp (m*w + b)] over the interval lattice
      [[0, Action.max_window]] from the reset state [w = 0] to a
      fixpoint, proving a bound on every reachable congestion window and
      flagging {e divergent} rules — those whose un-clamped orbit grows
      without bound (m > 1, or m = 1 with b > 0), i.e. rules bounded
      only by the clamp.

    The result is a {!report}: a machine-readable verdict
    ({!to_record}, one flat JSONL record) plus the structured
    {!problem} list naming offending rule ids.  Dead table entries
    (retired by subdivision, unreachable by lookup) are counted, and a
    {!Remy.Tally} from an exercised run can be supplied to also report
    live rules that never fired. *)

type problem =
  | Empty_box of { id : int; dim : int }
      (** a live rule's box has no interior — unreachable by lookup *)
  | Escapes_domain of { id : int; dim : int }
  | Overlap of { a : int; b : int; point : float array }
      (** rules [a] and [b] both own the witness memory point *)
  | Gap of { point : float array }  (** no rule owns the witness point *)
  | Bad_action of { id : int; reason : string }
      (** non-finite or out-of-bounds action — includes divergent
          corruption such as a window multiple beyond the searchable
          [0, 2] range *)

type report = {
  live : int;  (** rules reachable by lookup *)
  capacity : int;  (** table entries including retired ones *)
  retired : int;  (** dead entries kept only for id stability *)
  problems : problem list;  (** empty iff the table is sound *)
  window_hi : float;
      (** proven upper bound on every reachable congestion window *)
  window_iters : int;  (** interval iterations to reach the fixpoint *)
  window_widened : bool;
      (** the fixpoint did not close within the iteration budget and the
          bound was widened to [Action.max_window] (still sound) *)
  divergent : int list;
      (** rules whose window growth only the clamp bounds *)
  never_fired : int list option;
      (** with [?tally]: live rules with zero recorded uses *)
}

val table : ?tally:Remy.Tally.t -> Remy.Rule_tree.t -> report
(** Analyze a table.  Never raises on corrupt tables — corruption comes
    back as {!problem}s. *)

val sound : report -> bool
(** No problems: partition proven, all actions in bounds. *)

val pp_problem : Format.formatter -> problem -> unit

val to_record : report -> Remy_obs.Record.t
(** Flat verdict record (JSONL/CSV ready): [verified], rule counts,
    problem count and first problem rendered, window bound, divergent /
    never-fired counts. *)

val pp : Format.formatter -> report -> unit
(** Human-readable multi-line report. *)
