open Remy
open Remy_util

type problem =
  | Empty_box of { id : int; dim : int }
  | Escapes_domain of { id : int; dim : int }
  | Overlap of { a : int; b : int; point : float array }
  | Gap of { point : float array }
  | Bad_action of { id : int; reason : string }

type report = {
  live : int;
  capacity : int;
  retired : int;
  problems : problem list;
  window_hi : float;
  window_iters : int;
  window_widened : bool;
  divergent : int list;
  never_fired : int list option;
}

let sound r = r.problems = []

(* --- partition -------------------------------------------------------- *)

let domain () =
  (Array.make Memory.dims 0., Array.make Memory.dims Memory.max_value)

let box_of_rule tree id =
  let b = Rule_tree.box tree id in
  { Boxpart.lo = Array.map fst b; hi = Array.map snd b }

let partition_problem tree ids =
  let boxes = Array.map (box_of_rule tree) ids in
  let lo, hi = domain () in
  match Boxpart.check ~lo ~hi boxes with
  | Ok () -> None
  | Error (Boxpart.Degenerate { box; dim }) ->
    Some (Empty_box { id = ids.(box); dim })
  | Error (Boxpart.Escape { box; dim }) ->
    Some (Escapes_domain { id = ids.(box); dim })
  | Error (Boxpart.Overlap { a; b; point }) ->
    Some (Overlap { a = ids.(a); b = ids.(b); point })
  | Error (Boxpart.Gap { point }) -> Some (Gap { point })

(* --- bounded-window abstract interpretation --------------------------- *)

(* The concrete window semantics applies, on each ACK, the owning rule's
   map f(w) = clamp_[0,max_window] (m*w + b).  Which rule fires depends
   on memory, which the abstraction drops: any rule may follow any rule.
   The reachable-window set is then the least fixpoint of
     W = {0} ∪ ⋃_rules f(W)
   over the interval lattice.  Each f is monotone (m >= 0 for valid
   actions), so an orbit from an interval endpoint is a monotone
   sequence whose limit has a closed form — accelerating plain Kleene
   iteration (which for the ubiquitous m=1, b=1 rule would crawl toward
   the clamp one packet at a time). *)

let orbit_limit (a : Action.t) w =
  let max_w = Action.max_window in
  let f w = Float.min max_w (Float.max 0. ((a.Action.multiple *. w) +. a.Action.increment)) in
  let fw = f w in
  if fw = w then w
  else if fw > w then
    if a.Action.multiple < 1. then
      (* increasing toward the attracting fixed point b/(1-m) *)
      Float.min max_w (a.Action.increment /. (1. -. a.Action.multiple))
    else max_w (* m >= 1 and still growing: only the clamp stops it *)
  else if a.Action.multiple < 1. then
    Float.max 0. (a.Action.increment /. (1. -. a.Action.multiple))
  else 0. (* m = 1 with b < 0 slides to the floor *)

let divergent_map (a : Action.t) =
  a.Action.multiple > 1. || (a.Action.multiple = 1. && a.Action.increment > 0.)

let window_fixpoint actions =
  let max_iters = 64 in
  let lo = ref 0. and hi = ref 0. in
  (* reset puts the window at 0 before the first rule fires *)
  let iters = ref 0 and converged = ref false in
  while (not !converged) && !iters < max_iters do
    incr iters;
    let nlo = ref !lo and nhi = ref !hi in
    Array.iter
      (fun a ->
        let l = orbit_limit a !lo and h = orbit_limit a !hi in
        nlo := Float.min !nlo (Float.min l h);
        nhi := Float.max !nhi (Float.max l h))
      actions;
    if !nlo = !lo && !nhi = !hi then converged := true
    else begin
      lo := !nlo;
      hi := !nhi
    end
  done;
  if !converged then (!hi, !iters, false) else (Action.max_window, !iters, true)

(* --- whole-table analysis --------------------------------------------- *)

let table ?tally tree =
  let ids = Array.of_list (Rule_tree.live_ids tree) in
  let live = Array.length ids in
  let capacity = Rule_tree.capacity tree in
  let bad_actions =
    Array.to_list ids
    |> List.filter_map (fun id ->
           match Action.validate (Rule_tree.action tree id) with
           | Ok () -> None
           | Error reason -> Some (Bad_action { id; reason }))
  in
  let geometry = Option.to_list (partition_problem tree ids) in
  (* Window pass: only actions the bounds check admitted — a non-finite
     multiple would poison the interval arithmetic, and it is already
     reported as its own problem. *)
  let finite_actions =
    Array.of_seq
      (Seq.filter
         (fun (a : Action.t) ->
           Float.is_finite a.Action.multiple && Float.is_finite a.Action.increment)
         (Seq.map (Rule_tree.action tree) (Array.to_seq ids)))
  in
  let window_hi, window_iters, window_widened = window_fixpoint finite_actions in
  let divergent =
    Array.to_list ids
    |> List.filter (fun id -> divergent_map (Rule_tree.action tree id))
  in
  let never_fired =
    Option.map
      (fun t ->
        Array.to_list ids |> List.filter (fun id -> Tally.count t id = 0))
      tally
  in
  {
    live;
    capacity;
    retired = capacity - live;
    problems = geometry @ bad_actions;
    window_hi;
    window_iters;
    window_widened;
    divergent;
    never_fired;
  }

(* --- rendering -------------------------------------------------------- *)

let pp_point fmt p =
  Format.fprintf fmt "(";
  Array.iteri
    (fun i v -> Format.fprintf fmt "%s%g" (if i = 0 then "" else " ") v)
    p;
  Format.fprintf fmt ")"

let pp_problem fmt = function
  | Empty_box { id; dim } ->
    Format.fprintf fmt "rule %d: empty box (lo >= hi in dimension %d)" id dim
  | Escapes_domain { id; dim } ->
    Format.fprintf fmt "rule %d escapes the memory domain in dimension %d" id dim
  | Overlap { a; b; point } ->
    Format.fprintf fmt "rules %d and %d overlap at %a — not a partition" a b
      pp_point point
  | Gap { point } ->
    Format.fprintf fmt "memory domain not covered: no rule owns %a" pp_point point
  | Bad_action { id; reason } -> Format.fprintf fmt "rule %d: %s" id reason

let to_record r =
  let float_field k f =
    if Float.is_finite f then (k, Remy_obs.Record.Float f)
    else (k, Remy_obs.Record.Str (Float.to_string f))
  in
  [
    ("verified", Remy_obs.Record.Bool (sound r));
    ("rules", Remy_obs.Record.Int r.live);
    ("capacity", Remy_obs.Record.Int r.capacity);
    ("retired", Remy_obs.Record.Int r.retired);
    ("problems", Remy_obs.Record.Int (List.length r.problems));
  ]
  @ (match r.problems with
    | [] -> []
    | p :: _ ->
      [ ("problem", Remy_obs.Record.Str (Format.asprintf "%a" pp_problem p)) ])
  @ [
      float_field "window_hi" r.window_hi;
      ("window_iters", Remy_obs.Record.Int r.window_iters);
      ("window_widened", Remy_obs.Record.Bool r.window_widened);
      ("divergent_rules", Remy_obs.Record.Int (List.length r.divergent));
    ]
  @
  match r.never_fired with
  | None -> []
  | Some l -> [ ("never_fired", Remy_obs.Record.Int (List.length l)) ]

let pp_id_list fmt = function
  | [] -> Format.fprintf fmt "none"
  | ids ->
    let shown = List.filteri (fun i _ -> i < 12) ids in
    Format.fprintf fmt "%s%s"
      (String.concat " " (List.map string_of_int shown))
      (if List.length ids > 12 then
         Printf.sprintf " … (%d total)" (List.length ids)
       else "")

let pp fmt r =
  Format.fprintf fmt "table: %d live rules (capacity %d, %d retired)@." r.live
    r.capacity r.retired;
  (match List.filter (function Overlap _ | Gap _ | Empty_box _ | Escapes_domain _ -> true | Bad_action _ -> false) r.problems with
  | [] ->
    Format.fprintf fmt
      "partition: proven — exhaustive coverage and pairwise disjointness over \
       [0,%g)^%d@."
      Memory.max_value Memory.dims
  | ps -> List.iter (fun p -> Format.fprintf fmt "partition: %a@." pp_problem p) ps);
  (match List.filter (function Bad_action _ -> true | _ -> false) r.problems with
  | [] -> Format.fprintf fmt "actions: all finite and within the searchable bounds@."
  | ps -> List.iter (fun p -> Format.fprintf fmt "actions: %a@." pp_problem p) ps);
  Format.fprintf fmt
    "window: every reachable cwnd <= %g (interval fixpoint in %d iteration%s%s)@."
    r.window_hi r.window_iters
    (if r.window_iters = 1 then "" else "s")
    (if r.window_widened then "; widened" else "");
  Format.fprintf fmt "window-divergent rules (bounded only by the clamp): %a@."
    pp_id_list r.divergent;
  (match r.never_fired with
  | None -> ()
  | Some ids -> Format.fprintf fmt "never fired during exercise: %a@." pp_id_list ids);
  Format.fprintf fmt "verdict: %s" (if sound r then "SOUND" else "UNSOUND")
