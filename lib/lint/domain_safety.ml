open Typedtree

let name = "domain-safety"
let rules = [ name; "global-mutable" ]

(* ------------------------------------------------------------------ *)
(* Suspect operations: (path suffix, index of the mutated positional
   argument, description).  Reads are suspect too — an unsynchronized
   read racing a write is undefined behaviour under the OCaml memory
   model — except array reads, which are idiomatically used for
   disjoint-index parallelism and would drown the signal. *)

let op_table =
  [
    ([ ":=" ], 0, "ref write");
    ([ "!" ], 0, "ref read");
    ([ "incr" ], 0, "ref write");
    ([ "decr" ], 0, "ref write");
    ([ "Array"; "set" ], 0, "array write");
    ([ "Array"; "unsafe_set" ], 0, "array write");
    ([ "Array"; "fill" ], 0, "array write");
    ([ "Array"; "blit" ], 2, "array write");
    ([ "Hashtbl"; "add" ], 0, "hashtable write");
    ([ "Hashtbl"; "replace" ], 0, "hashtable write");
    ([ "Hashtbl"; "remove" ], 0, "hashtable write");
    ([ "Hashtbl"; "reset" ], 0, "hashtable write");
    ([ "Hashtbl"; "clear" ], 0, "hashtable write");
    ([ "Hashtbl"; "filter_map_inplace" ], 1, "hashtable write");
    ([ "Hashtbl"; "find" ], 0, "hashtable read");
    ([ "Hashtbl"; "find_opt" ], 0, "hashtable read");
    ([ "Hashtbl"; "find_all" ], 0, "hashtable read");
    ([ "Hashtbl"; "mem" ], 0, "hashtable read");
    ([ "Hashtbl"; "length" ], 0, "hashtable read");
    ([ "Hashtbl"; "iter" ], 1, "hashtable read");
    ([ "Hashtbl"; "fold" ], 1, "hashtable read");
    ([ "Buffer"; "add_char" ], 0, "buffer write");
    ([ "Buffer"; "add_string" ], 0, "buffer write");
    ([ "Buffer"; "add_bytes" ], 0, "buffer write");
    ([ "Buffer"; "clear" ], 0, "buffer write");
    ([ "Buffer"; "reset" ], 0, "buffer write");
    ([ "Buffer"; "contents" ], 0, "buffer read");
    ([ "Buffer"; "length" ], 0, "buffer read");
    ([ "Queue"; "push" ], 1, "queue write");
    ([ "Queue"; "add" ], 1, "queue write");
    ([ "Queue"; "pop" ], 0, "queue write");
    ([ "Queue"; "take" ], 0, "queue write");
    ([ "Queue"; "clear" ], 0, "queue write");
    ([ "Queue"; "peek" ], 0, "queue read");
    ([ "Queue"; "length" ], 0, "queue read");
    ([ "Stack"; "push" ], 1, "stack write");
    ([ "Stack"; "pop" ], 0, "stack write");
    ([ "Stack"; "top" ], 0, "stack read");
    ([ "Stack"; "clear" ], 0, "stack write");
  ]

(* Crossing APIs: calls whose closure argument runs on another domain. *)
type arg_spec =
  | Nth of int  (** n-th positional argument *)
  | Labelled of string  (** a (possibly optional) labelled argument *)
  | Fun_args  (** every positional argument of arrow type *)
  | Record_run  (** the [run] field of a job-record literal (Pool.submit) *)

let crossing_table =
  [
    ([ "Domain"; "spawn" ], Nth 0, "Domain.spawn");
    ([ "Thread"; "create" ], Nth 0, "Thread.create");
    ([ "Par"; "map" ], Fun_args, "Par.map");
    ([ "Pool"; "map" ], Fun_args, "Par.Pool.map");
    ([ "Pool"; "run" ], Fun_args, "Par.Pool.run");
    ([ "Pool"; "submit" ], Record_run, "Par.Pool.submit");
    (* Unqualified: submit is called from inside its own defining module,
       where the path has no Pool prefix.  Harmless elsewhere — the spec
       only fires on record literals carrying a [run] field. *)
    ([ "submit" ], Record_run, "Pool.submit");
    ([ "Pool"; "create" ], Labelled "on_retry", "Par.Pool.create ~on_retry");
    ([ "DLS"; "new_key" ], Nth 0, "Domain.DLS.new_key");
  ]

let suffix_find norm table =
  if norm = [] then None
  else
    List.find_opt (fun (s, _, _) -> Tt_util.has_suffix norm ~suffix:s) table

(* Synchronized-by-construction modules: any operation through them is
   the fix, not the hazard (and e.g. Atomic.incr must not suffix-match
   the plain [incr] entry).  Guards the op table only — crossing entries
   like DLS.new_key must still match. *)
let safe_modules = [ "Atomic"; "Mutex"; "Condition"; "Semaphore"; "DLS" ]

let op_find norm =
  if List.exists (fun c -> List.mem c safe_modules) norm then None
  else suffix_find norm op_table

let is_call e suffix =
  match e.exp_desc with
  | Texp_apply (f, _) -> Tt_util.has_suffix (Tt_util.head_norm f) ~suffix
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Per-binding analysis.  For every let-bound value we record the
   suspect operations whose target is free in that binding, plus the
   in-unit bindings it references (callee edges for the fixpoint). *)

type op = { line : int; what : string; root : Tt_util.root }
type info = { ops : op list; callees : (string * string) list }

type binding = { display : string; expr : expression }

let analyze (bindings : (string, binding) Hashtbl.t) expr =
  let bound = Tt_util.bound_idents expr in
  let ops = ref [] in
  let callees = ref [] in
  let protected = ref false in
  let record e what root =
    if not !protected then
      match root with
      | Tt_util.Anon -> ()
      | Tt_util.Local id when Hashtbl.mem bound (Ident.unique_name id) -> ()
      | root -> ops := { line = Tt_util.line_of e; what; root } :: !ops
  in
  let super = Tast_iterator.default_iterator in
  let expr_it it (e : expression) =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _)
      when Hashtbl.mem bindings (Ident.unique_name id) ->
      if not !protected then
        callees := (Ident.unique_name id, Ident.name id) :: !callees
    | Texp_sequence (e1, e2) when is_call e1 [ "Mutex"; "lock" ] ->
      (* `Mutex.lock m; <rest>`: the rest of the sequence runs under the
         lock (the matching unlock is the author's problem, not a race). *)
      it.Tast_iterator.expr it e1;
      let saved = !protected in
      protected := true;
      it.Tast_iterator.expr it e2;
      protected := saved
    | Texp_apply (f, _) when Tt_util.has_suffix (Tt_util.head_norm f) ~suffix:[ "Mutex"; "protect" ] ->
      let saved = !protected in
      protected := true;
      super.expr it e;
      protected := saved
    | Texp_setfield (obj, _, ld, _) ->
      record e
        (Printf.sprintf "write to mutable field `%s`" ld.Types.lbl_name)
        (Tt_util.root_of obj);
      super.expr it e
    | Texp_field (obj, _, ld) -> (
      (match ld.Types.lbl_mut with
      | Asttypes.Mutable ->
        record e
          (Printf.sprintf "read of mutable field `%s`" ld.Types.lbl_name)
          (Tt_util.root_of obj)
      | Asttypes.Immutable -> ());
      super.expr it e)
    | Texp_apply (f, args) -> (
      (match op_find (Tt_util.head_norm f) with
      | Some (_, idx, what) -> (
        match Tt_util.nth_arg args idx with
        | Some target -> record e what (Tt_util.root_of target)
        | None -> ())
      | None -> ());
      super.expr it e)
    | _ -> super.expr it e
  in
  let it = { super with expr = expr_it } in
  it.expr it expr;
  { ops = List.rev !ops; callees = List.rev !callees }

let info_of bindings memo uname =
  match Hashtbl.find_opt memo uname with
  | Some i -> i
  | None ->
    (* Pre-seed to cut recursion cycles through the callee graph. *)
    Hashtbl.replace memo uname { ops = []; callees = [] };
    let i = analyze bindings (Hashtbl.find bindings uname).expr in
    Hashtbl.replace memo uname i;
    i

(* Transitive suspect operations of a crossing closure: its own, plus
   its callees', minus any whose target the closure itself binds (state
   created inside the closure is domain-private). *)
let transitive bindings memo ~closure_bound start =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec go via (info : info) =
    List.iter
      (fun (o : op) ->
        let shared =
          match o.root with
          | Tt_util.Local id -> not (Hashtbl.mem closure_bound (Ident.unique_name id))
          | Tt_util.Global _ -> true
          | Tt_util.Anon -> false
        in
        if shared then out := (o, List.rev via) :: !out)
      info.ops;
    List.iter
      (fun (uname, display) ->
        if not (Hashtbl.mem seen uname) then begin
          Hashtbl.add seen uname ();
          go (display :: via) (info_of bindings memo uname)
        end)
      info.callees
  in
  go [] start;
  !out

(* Resolve a crossing argument to the closure(s) it stands for: function
   literals directly, idents and partial applications through the unit's
   binding table, [Some f] through the option, job records through their
   [run] field. *)
let rec targets_of bindings (e : expression) =
  match e.exp_desc with
  | Texp_function _ -> [ `Closure e ]
  | Texp_ident (Path.Pident id, _, _)
    when Hashtbl.mem bindings (Ident.unique_name id) ->
    [ `Binding (Ident.unique_name id) ]
  | Texp_apply (f, _) -> targets_of bindings f
  | Texp_construct (_, _, [ inner ]) -> targets_of bindings inner
  | Texp_record { fields; _ } ->
    Array.to_list fields
    |> List.concat_map (fun ((ld : Types.label_description), def) ->
           match (ld.Types.lbl_name, def) with
           | "run", Overridden (_, e) -> targets_of bindings e
           | _ -> [])
  | _ -> []

let crossing_args spec args =
  match spec with
  | Nth n -> ( match Tt_util.nth_arg args n with Some e -> [ e ] | None -> [])
  | Labelled want ->
    List.filter_map
      (fun (lbl, a) ->
        match (lbl, a) with
        | (Asttypes.Labelled l | Asttypes.Optional l), Some e
          when String.equal l want ->
          Some e
        | _ -> None)
      args
  | Fun_args ->
    List.filter_map
      (fun (lbl, a) ->
        match (lbl, a) with
        | Asttypes.Nolabel, Some (e : expression) when Tt_util.is_arrow e.exp_type -> Some e
        | _ -> None)
      args
  | Record_run ->
    List.filter_map
      (fun (_, a) ->
        match a with
        | Some ({ exp_desc = Texp_record _; _ } as e) -> Some e
        | _ -> None)
      args

(* ------------------------------------------------------------------ *)
(* The [global-mutable] structural rule: module-level mutable state. *)

let exempt_type_suffixes =
  [ [ "Atomic"; "t" ]; [ "Mutex"; "t" ]; [ "Condition"; "t" ]; [ "DLS"; "key" ] ]

let mutable_ctor_table =
  [
    ([ "ref" ], "ref cell");
    ([ "Hashtbl"; "create" ], "hashtable");
    ([ "Buffer"; "create" ], "buffer");
    ([ "Queue"; "create" ], "queue");
    ([ "Stack"; "create" ], "stack");
  ]

let global_mutable_kind (e : expression) =
  let ty = Tt_util.type_suffix e.exp_type in
  if List.exists (fun s -> Tt_util.has_suffix ty ~suffix:s) exempt_type_suffixes
  then None
  else
    match e.exp_desc with
    | Texp_apply (f, _) -> (
      let norm = Tt_util.head_norm f in
      match
        List.find_opt (fun (s, _) -> Tt_util.has_suffix norm ~suffix:s)
          mutable_ctor_table
      with
      | Some (_, kind) -> Some kind
      | None -> None)
    | Texp_record { fields; _ }
      when Array.exists
             (fun ((ld : Types.label_description), _) ->
               match ld.Types.lbl_mut with
               | Asttypes.Mutable -> true
               | Asttypes.Immutable -> false)
             fields ->
      Some "record"
    | _ -> None

let rec check_globals ctx ~file (str : structure) =
  List.iter
    (fun (item : structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match (pat_bound_idents vb.vb_pat, global_mutable_kind vb.vb_expr) with
            | [ id ], Some kind ->
              Pass.emit ctx ~file
                ~line:vb.vb_loc.Location.loc_start.Lexing.pos_lnum
                ~pass:name ~rule:"global-mutable"
                ~witness:(Printf.sprintf "module-level binding `%s`" (Ident.name id))
                (Printf.sprintf
                   "module-level mutable %s `%s`: every domain can reach it; \
                    use Atomic/DLS, or guard with a Mutex and annotate allow \
                    with a justification"
                   kind (Ident.name id))
            | _ -> ())
          vbs
      | Tstr_module mb -> check_module ctx ~file mb.mb_expr
      | Tstr_recmodule mbs -> List.iter (fun mb -> check_module ctx ~file mb.mb_expr) mbs
      | _ -> ())
    str.str_items

and check_module ctx ~file (me : module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> check_globals ctx ~file str
  | Tmod_constraint (me, _, _, _) -> check_module ctx ~file me
  | _ -> ()

(* ------------------------------------------------------------------ *)

let run_unit (ctx : Pass.ctx) (u : Cmt_unit.t) =
  let bindings : (string, binding) Hashtbl.t = Hashtbl.create 64 in
  let memo : (string, info) Hashtbl.t = Hashtbl.create 64 in
  (* Collect every let binding in the unit (top-level and nested),
     keyed by unique stamp — the callee graph for the fixpoint. *)
  let super = Tast_iterator.default_iterator in
  let collect_vb it vb =
    (match pat_bound_idents vb.vb_pat with
    | [ id ] ->
      Hashtbl.replace bindings (Ident.unique_name id)
        { display = Ident.name id; expr = vb.vb_expr }
    | _ -> ());
    super.value_binding it vb
  in
  let collector = { super with value_binding = collect_vb } in
  collector.structure collector u.structure;
  (* Find crossing sites and check every closure that crosses. *)
  let emitted = Hashtbl.create 16 in
  let check_crossing ~api ~site_line target =
    let closure_expr, start =
      match target with
      | `Closure e -> (e, analyze bindings e)
      | `Binding uname ->
        let b = Hashtbl.find bindings uname in
        (b.expr, info_of bindings memo uname)
    in
    let closure_bound = Tt_util.bound_idents closure_expr in
    transitive bindings memo ~closure_bound start
    |> List.iter (fun ((o : op), via) ->
           let key = (o.line, o.what, Tt_util.root_name o.root) in
           if not (Hashtbl.mem emitted key) then begin
             Hashtbl.add emitted key ();
             let chain =
               match via with
               | [] -> ""
               | vs -> Printf.sprintf " via `%s`" (String.concat " -> " vs)
             in
             Pass.emit ctx ~file:u.source ~line:o.line ~pass:name ~rule:name
               ~witness:
                 (Printf.sprintf "crosses domains at %s:%d through %s%s"
                    u.source site_line api chain)
               (Printf.sprintf
                  "%s on `%s` in a closure that crosses domains, without \
                   Atomic/Mutex/DLS protection"
                  o.what (Tt_util.root_name o.root))
           end)
  in
  let site_expr it (e : expression) =
    (match e.exp_desc with
    | Texp_apply (f, args) -> (
      match suffix_find (Tt_util.head_norm f) crossing_table with
      | Some (_, spec, api) ->
        let site_line = Tt_util.line_of e in
        crossing_args spec args
        |> List.concat_map (targets_of bindings)
        |> List.iter (check_crossing ~api ~site_line)
      | None -> ())
    | _ -> ());
    super.expr it e
  in
  let finder = { super with expr = site_expr } in
  finder.structure finder u.structure;
  check_globals ctx ~file:u.source u.structure

let run (ctx : Pass.ctx) = List.iter (run_unit ctx) ctx.units

let pass : Pass.t =
  {
    name;
    description =
      "data races: unprotected mutable state crossing domain boundaries, and \
       module-level mutable state";
    rules;
    needs_cmt = true;
    run;
  }
