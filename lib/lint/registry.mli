(** The pass registry: every analysis the linter knows, in the order
    they run and render. *)

val all : Pass.t list
val find : string -> Pass.t option
val rule_names : unit -> string list
