type ctx = {
  root : string;
  paths : string list;
  files : string list;
  source : string -> Source_file.t;
  units : Cmt_unit.t list;
  rules : string list option;
  emit : Finding.t -> unit;
  error : string -> unit;
}

let emit ctx ~file ~line ~pass ~rule ?(witness = "") what =
  let wanted = match ctx.rules with None -> true | Some rs -> List.mem rule rs in
  if wanted && not (Source_file.allows (ctx.source file) ~line ~rule) then
    ctx.emit
      { Finding.file; line; pass; rule; severity = Finding.Error; what; witness }

type t = {
  name : string;
  description : string;
  rules : string list;
  needs_cmt : bool;
  run : ctx -> unit;
}
