(** The hot-path allocation pass (typedtree): functions annotated
    [(* remy-lint: hot *)] must contain no allocating constructs —
    closures, tuples, records, non-constant constructors (lists,
    options), array/lazy literals, known allocating stdlib calls, or
    partial applications (which allocate a closure).  Partial
    application is only provable when a labelled argument is omitted:
    by result type alone, [add 1] (partial, allocates) and
    [Heap.pop_exn h] (total, returns a stored callback) look identical,
    so positional under-application goes undetected rather than
    flagging every function-returning call.

    The check is intra-procedural: a call into another function that
    allocates internally is invisible (and acceptable — the callee can
    be annotated itself).  Boxed-float escapes are approximated by the
    constructor/tuple/record and partial-application rules; what the
    compiler boxes beyond those shapes is out of a lint's reach.
    Allocations on a cold sub-path (growth, error reporting) carry an
    audited [(* remy-lint: allow hot-alloc *)] annotation; arguments of
    [raise]/[failwith]/[invalid_arg]/[assert] are exempt by
    construction. *)

val pass : Pass.t
