(** Loading typed compilation units from dune's [.cmt] files — the input
    of the typedtree passes ([domain-safety], [hot-alloc]).

    Dune writes [.cmt] files next to the object files (under
    [.*.objs/byte/] inside [_build]); the locations stored inside them
    are build-root-relative source paths ([lib/core/par.ml]), which is
    exactly the path vocabulary the rest of the linter uses. *)

type t = {
  source : string;  (** build-root-relative source path *)
  cmt_path : string;  (** the .cmt file the unit was read from *)
  structure : Typedtree.structure;
}

val scan :
  roots:string list -> under:string list -> t list * string list
(** Recursively scan [roots] for [.cmt] files whose recorded source file
    lies under one of the [under] paths; returns the loaded units
    (sorted and deduplicated by source path) and the read errors.
    Interface-only and partial cmts are skipped silently. *)
