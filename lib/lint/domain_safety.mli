(** The domain-safety pass (typedtree): a static data-race detector.

    Rule [domain-safety] — mutable state (refs, mutable record fields,
    arrays, Hashtbl, Buffer, Queue, Stack) operated on by a closure that
    crosses a domain boundary ([Domain.spawn], [Par.map], [Par.Pool.map]
    / [submit] / [create ?on_retry], [Domain.DLS.new_key],
    [Thread.create]) without Atomic / Mutex / [Domain.DLS] protection.
    The escape analysis is intra-unit: closures are chased through
    let-bindings (including partial applications and [Some f] wrappers,
    and through the [run] field of job-record literals), the callee
    graph is closed transitively, and an operation is reported only when
    its target is free in the crossing closure — state the closure
    created for itself never fires.  Operations syntactically dominated
    by [Mutex.lock] (rest of the sequence) or inside the thunk of
    [Mutex.protect] count as protected; [Atomic]/[Mutex]/[Condition]/
    [DLS] operations are inherently safe.  State reached only through a
    function parameter is out of scope (the race, if any, is at the
    caller, in its own unit).

    Rule [global-mutable] — module-level [ref] / [Hashtbl.t] / [Buffer.t]
    / [Queue.t] / [Stack.t] / mutable-record bindings: pre-existing
    shared state every domain can reach.  Exempt when the binding's type
    is [Atomic.t] / [Mutex.t] / [Condition.t] / [DLS.key]; mutex-guarded
    registries carry an audited allow annotation.  Module-level arrays
    are deliberately not flagged: constant lookup tables are idiomatic
    and a read-only array is safe to share.

    Findings carry two witnesses: the mutation site (the finding's own
    file:line) and the crossing site with the call chain that connects
    them. *)

val pass : Pass.t
