type t = { path : string; lines : string array }

let read_lines file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> Array.of_list (List.rev acc)
      in
      go [])

let load path =
  match read_lines path with
  | lines -> { path; lines }
  | exception _ -> { path; lines = [||] }

let exists t = Array.length t.lines > 0
let line t n = if n >= 1 && n <= Array.length t.lines then t.lines.(n - 1) else ""

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

(* Same line or the immediately preceding one: an annotation may sit as
   a trailing comment or stand alone above the expression it audits. *)
let tagged t ~line:l tag = contains_sub (line t l) tag || contains_sub (line t (l - 1)) tag
let allows t ~line ~rule = tagged t ~line ("remy-lint: allow " ^ rule)
let hot t ~line = tagged t ~line "remy-lint: hot"

let rec ml_files path =
  match Sys.is_directory path with
  | exception Sys_error _ -> []
  | is_dir -> ml_files_in path is_dir

and ml_files_in path is_dir =
  if is_dir then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.filter (fun name -> name <> "" && name.[0] <> '_' && name.[0] <> '.')
    |> List.concat_map (fun name -> ml_files (Filename.concat path name))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []
