(** One lint finding: a rule violation pinned to a source line, with a
    named witness (what the pass saw, and where) so the report stands on
    its own without re-running the analysis. *)

type severity = Error | Warning

type t = {
  file : string;  (** root-relative source path, e.g. ["lib/core/par.ml"] *)
  line : int;  (** 1-based *)
  pass : string;  (** owning pass, e.g. ["domain-safety"] *)
  rule : string;  (** specific rule, e.g. ["wall-clock"], ["hot-alloc"] *)
  severity : severity;
  what : string;  (** one-line description of the violation *)
  witness : string;  (** supporting evidence, [""] when the site is all *)
}

val compare : t -> t -> int
(** Orders by (file, line, rule, what) — the stable report order. *)

val to_string : t -> string
(** ["file:line: [rule] what (witness)"] — the human report line. *)

val to_record : ?suppressed:string option -> t -> Remy_obs.Record.t
(** Flat record for [--json] output: file, line, pass, rule, severity,
    what, witness, plus [suppressed]/[why] when an allowlist entry
    matched.  One JSON object per finding, via the {!Remy_obs.Record}
    codec. *)
