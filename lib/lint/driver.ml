type config = {
  root : string;
  paths : string list;
  passes : string list option;
  rules : string list option;
  allow_file : string option;
  cmt_roots : string list;
  require_cmt : bool;
}

let default_config ~root =
  let build = Filename.concat root (Filename.concat "_build" "default") in
  {
    root;
    paths = [ "lib"; "bin" ];
    passes = None;
    rules = None;
    allow_file = Some "LINT_ALLOW";
    cmt_roots = (if Sys.file_exists build && Sys.is_directory build then [ build ] else [ root ]);
    require_cmt = false;
  }

let rec autodetect_root dir =
  if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
  else
    let parent = Filename.dirname dir in
    if String.equal parent dir then None else autodetect_root parent

type result = {
  findings : Finding.t list;
  suppressed : (Finding.t * Suppress.entry) list;
  errors : string list;
  files_scanned : int;
  units_typed : int;
}

(* Root-relative .ml files under the requested paths; a path may also
   name a single file directly. *)
let discover_files ~root ~paths =
  let strip abs =
    let prefix = Filename.concat root "" in
    let n = String.length prefix in
    if String.length abs > n && String.sub abs 0 n = prefix then
      String.sub abs n (String.length abs - n)
    else abs
  in
  List.concat_map
    (fun p ->
      let dir = if Filename.is_relative p then Filename.concat root p else p in
      Source_file.ml_files dir |> List.map strip)
    paths
  |> List.sort_uniq String.compare

let selected_passes cfg errors =
  match cfg.passes with
  | None -> Registry.all
  | Some names ->
    List.filter_map
      (fun n ->
        match Registry.find n with
        | Some p -> Some p
        | None ->
          errors := Printf.sprintf "unknown pass `%s`" n :: !errors;
          None)
      names

let validate_rules cfg errors =
  match cfg.rules with
  | None -> ()
  | Some rs ->
    let known = Registry.rule_names () in
    List.iter
      (fun r ->
        if not (List.exists (String.equal r) known) then
          errors := Printf.sprintf "unknown rule `%s`" r :: !errors)
      rs

let run cfg =
  let errors = ref [] in
  let raw_findings = ref [] in
  let passes = selected_passes cfg errors in
  validate_rules cfg errors;
  let allow =
    match cfg.allow_file with
    | None -> Suppress.empty
    | Some rel -> (
      let file =
        if Filename.is_relative rel then Filename.concat cfg.root rel else rel
      in
      if not (Sys.file_exists file) then Suppress.empty
      else
        match Suppress.load file with
        | Ok t -> t
        | Error e ->
          errors := e :: !errors;
          Suppress.empty)
  in
  let files = discover_files ~root:cfg.root ~paths:cfg.paths in
  let needs_cmt = List.exists (fun (p : Pass.t) -> p.needs_cmt) passes in
  let units, cmt_errors =
    if needs_cmt then Cmt_unit.scan ~roots:cfg.cmt_roots ~under:cfg.paths
    else ([], [])
  in
  List.iter (fun e -> errors := e :: !errors) cmt_errors;
  if cfg.require_cmt && needs_cmt && units = [] then
    errors :=
      Printf.sprintf
        "no .cmt files found under %s — build first (dune build) so typed \
         passes can run"
        (String.concat ", " cfg.cmt_roots)
      :: !errors;
  let sources = Hashtbl.create 64 in
  let source rel =
    match Hashtbl.find_opt sources rel with
    | Some s -> s
    | None ->
      let abs =
        if Filename.is_relative rel then Filename.concat cfg.root rel else rel
      in
      let s = Source_file.load abs in
      Hashtbl.add sources rel s;
      s
  in
  let ctx : Pass.ctx =
    {
      root = cfg.root;
      paths = cfg.paths;
      files;
      source;
      units;
      rules = cfg.rules;
      emit = (fun f -> raw_findings := f :: !raw_findings);
      error = (fun e -> errors := e :: !errors);
    }
  in
  List.iter (fun (p : Pass.t) -> p.run ctx) passes;
  let sorted = List.sort_uniq Finding.compare !raw_findings in
  let findings, suppressed =
    List.fold_left
      (fun (act, sup) f ->
        match Suppress.find allow f with
        | Some entry -> (act, (f, entry) :: sup)
        | None -> (f :: act, sup))
      ([], []) sorted
  in
  {
    findings = List.rev findings;
    suppressed = List.rev suppressed;
    errors = List.rev !errors;
    files_scanned = List.length files;
    units_typed = List.length units;
  }

let exit_code r =
  if r.errors <> [] then 2 else if r.findings <> [] then 1 else 0

let summary_line r =
  Printf.sprintf
    "%d finding%s (%d suppressed), %d file%s scanned, %d typed unit%s%s"
    (List.length r.findings)
    (if List.length r.findings = 1 then "" else "s")
    (List.length r.suppressed) r.files_scanned
    (if r.files_scanned = 1 then "" else "s")
    r.units_typed
    (if r.units_typed = 1 then "" else "s")
    (if r.errors = [] then ""
     else Printf.sprintf ", %d error%s" (List.length r.errors)
            (if List.length r.errors = 1 then "" else "s"))

let render_text r =
  let b = Buffer.create 256 in
  List.iter (fun f -> Buffer.add_string b (Finding.to_string f ^ "\n")) r.findings;
  List.iter
    (fun (f, (e : Suppress.entry)) ->
      Buffer.add_string b
        (Printf.sprintf "%s [allowed: %s]\n" (Finding.to_string f) e.why))
    r.suppressed;
  List.iter (fun e -> Buffer.add_string b (Printf.sprintf "error: %s\n" e)) r.errors;
  Buffer.add_string b (summary_line r ^ "\n");
  Buffer.contents b

let render_json r =
  let b = Buffer.create 256 in
  let add rec_ = Buffer.add_string b (Remy_obs.Record.to_json rec_ ^ "\n") in
  List.iter (fun f -> add (Finding.to_record f)) r.findings;
  List.iter
    (fun (f, (e : Suppress.entry)) ->
      add (Finding.to_record ~suppressed:(Some e.why) f))
    r.suppressed;
  List.iter
    (fun e -> add [ ("error", Remy_obs.Record.Str e) ])
    r.errors;
  add
    [
      ("summary", Remy_obs.Record.Bool true);
      ("findings", Remy_obs.Record.Int (List.length r.findings));
      ("suppressed", Remy_obs.Record.Int (List.length r.suppressed));
      ("errors", Remy_obs.Record.Int (List.length r.errors));
      ("files_scanned", Remy_obs.Record.Int r.files_scanned);
      ("units_typed", Remy_obs.Record.Int r.units_typed);
      ("exit_code", Remy_obs.Record.Int (exit_code r));
    ];
  Buffer.contents b
