type severity = Error | Warning

type t = {
  file : string;
  line : int;
  pass : string;
  rule : string;
  severity : severity;
  what : string;
  witness : string;
}

let severity_name = function Error -> "error" | Warning -> "warning"

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = String.compare a.rule b.rule in
      if c <> 0 then c else String.compare a.what b.what

let to_string f =
  Printf.sprintf "%s:%d: [%s] %s%s" f.file f.line f.rule f.what
    (if f.witness = "" then "" else Printf.sprintf " (%s)" f.witness)

let to_record ?(suppressed = None) f : Remy_obs.Record.t =
  let open Remy_obs.Record in
  [
    ("file", Str f.file);
    ("line", Int f.line);
    ("pass", Str f.pass);
    ("rule", Str f.rule);
    ("severity", Str (severity_name f.severity));
    ("what", Str f.what);
    ("witness", Str f.witness);
    ("suppressed", Bool (suppressed <> None));
  ]
  @ match suppressed with Some why -> [ ("why", Str why) ] | None -> []
