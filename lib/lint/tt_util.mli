(** Small typedtree helpers shared by the cmt-based passes.

    Everything here sticks to constructor shapes that are stable across
    OCaml 5.1 and 5.2 (the CI matrix): payload destructuring is limited
    to [Texp_ident]/[Texp_apply]/[Texp_field]-class nodes; nodes whose
    payload changed between versions (notably [Texp_function]) are only
    ever matched with a wildcard payload. *)

val normalize : Path.t -> string list
(** Flattened path with [Stdlib] stripped and dune's wrapped-library
    mangling undone: ["Remy__Par.Pool.map"] → [["Par"; "Pool"; "map"]]. *)

val has_suffix : string list -> suffix:string list -> bool

val ident_path : Typedtree.expression -> Path.t option
(** The path when the expression is a bare identifier. *)

val head_norm : Typedtree.expression -> string list
(** Normalized path of an application head (or ident), [[]] otherwise. *)

(** Innermost base of a field-access chain: the value whose mutation a
    suspect operation targets. *)
type root =
  | Local of Ident.t  (** an identifier of this compilation unit *)
  | Global of string  (** a value of another module ([Pdot] path) *)
  | Anon  (** computed — e.g. the result of a call; not tracked *)

val root_of : Typedtree.expression -> root
val root_name : root -> string

val is_arrow : Types.type_expr -> bool
(** The expression still expects arguments — a partial application. *)

val type_suffix : Types.type_expr -> string list
(** Normalized constructor path of the type's head, [[]] for non-[Tconstr]. *)

val line_of : Typedtree.expression -> int

val bound_idents : Typedtree.expression -> (string, unit) Hashtbl.t
(** Every identifier bound by any pattern inside the expression (params,
    lets, match cases), keyed by [Ident.unique_name] — the free-variable
    test for escape analysis.  Stamps are unique per compilation unit,
    so shadowing cannot alias two distinct binders. *)

val nth_arg :
  (Asttypes.arg_label * Typedtree.expression option) list ->
  int ->
  Typedtree.expression option
(** The [n]-th positional (unlabelled) argument, if supplied. *)
