(** The determinism pass (parsetree, no typing needed): rejects ambient
    entropy and ordering sources that break bit-reproducibility —
    [Stdlib.Random] ([random]), wall-clock reads ([wall-clock]),
    polymorphic hashing ([poly-hash]) and polymorphic compare/equality
    passed as values ([poly-compare]). *)

val pass : Pass.t
