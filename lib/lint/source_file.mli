(** Source text access for the passes: file discovery, cached lines, and
    the in-source annotation protocol.

    Two comment annotations are recognized, each on the flagged line
    itself or on the immediately preceding line (so long expressions can
    be annotated without breaking line-length conventions):

    - [(* remy-lint: allow <rule> *)] silences exactly [<rule>] for that
      line — an audited exception, justified in the surrounding comment.
    - [(* remy-lint: hot *)] marks the [let] binding it precedes as a
      hot-path function the [hot-alloc] pass must prove allocation-free. *)

type t = { path : string; lines : string array }

val load : string -> t
(** Missing or unreadable files load as zero lines (annotations simply
    never match); passes that need the text to exist check [exists]. *)

val exists : t -> bool
val line : t -> int -> string
(** 1-based; out-of-range lines are [""]. *)

val allows : t -> line:int -> rule:string -> bool
val hot : t -> line:int -> bool

val ml_files : string -> string list
(** All [.ml] files under a path (or the path itself when it is a file),
    recursively, sorted; directories starting with ['_'] or ['.'] are
    skipped. *)
