(** The lint driver: wires file discovery, cmt loading, the pass
    registry and the suppression file together, and owns rendering and
    exit codes.

    Exit-code contract (stable, scripts depend on it):
    - [0] — clean: no unsuppressed findings, no operational errors
    - [1] — findings: at least one unsuppressed finding
    - [2] — usage/operational error: unreadable suppression file, a
      requested pass or rule that does not exist, parse/cmt failures, or
      [require_cmt] with no typed units *)

type config = {
  root : string;  (** repo root; relative paths resolve against it *)
  paths : string list;  (** scan roots relative to [root], e.g. [lib bin] *)
  passes : string list option;  (** only these passes (default: all) *)
  rules : string list option;  (** only these rules (default: all) *)
  allow_file : string option;
      (** suppression file relative to [root]; [None] disables.  A
          missing default file is fine; an unreadable named one is an
          error. *)
  cmt_roots : string list;  (** directories scanned for [.cmt] files *)
  require_cmt : bool;
      (** error (exit 2) when a cmt-based pass finds no typed units —
          CI uses this so "no cmts" cannot masquerade as "clean" *)
}

val default_config : root:string -> config
(** [paths = ["lib"; "bin"]], all passes and rules, [allow_file = Some
    "LINT_ALLOW"], [cmt_roots] = [root/_build/default] when that exists
    (a source checkout) else [root] itself (already inside a build
    tree), [require_cmt = false]. *)

val autodetect_root : string -> string option
(** Walk up from a directory to the nearest ancestor containing
    [dune-project]. *)

type result = {
  findings : Finding.t list;  (** unsuppressed, sorted *)
  suppressed : (Finding.t * Suppress.entry) list;
  errors : string list;
  files_scanned : int;
  units_typed : int;
}

val run : config -> result
val exit_code : result -> int
val render_text : result -> string
(** Human-readable findings + a one-line summary (always non-empty). *)

val render_json : result -> string
(** One {!Remy_obs.Record} JSON object per line: every finding
    (suppressed ones carry [suppressed=true] and their justification),
    then one [{"summary": ...}] trailer with counts. *)
