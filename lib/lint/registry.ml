let all : Pass.t list = [ Determinism.pass; Hot_alloc.pass; Domain_safety.pass ]

let find name = List.find_opt (fun (p : Pass.t) -> String.equal p.name name) all

let rule_names () = List.concat_map (fun (p : Pass.t) -> p.rules) all
