open Typedtree

(* "Remy__Par" → "Par", "Dune__exe__Remy_lint" → "Remy_lint": keep what
   follows the last "__" separator dune uses for wrapped modules. *)
let strip_wrap comp =
  let n = String.length comp in
  let rec last_sep i found =
    if i + 1 >= n then found
    else if comp.[i] = '_' && comp.[i + 1] = '_' then last_sep (i + 1) (Some (i + 2))
    else last_sep (i + 1) found
  in
  match last_sep 0 None with
  | Some j when j < n -> String.sub comp j (n - j)
  | _ -> comp

let normalize path =
  match List.map strip_wrap (String.split_on_char '.' (Path.name path)) with
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | l -> l

let has_suffix l ~suffix =
  let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
  let ln = List.length l and sn = List.length suffix in
  ln >= sn && List.equal String.equal (drop (ln - sn) l) suffix

let ident_path e =
  match e.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

let head_norm e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> normalize p
  | Texp_apply (f, _) -> (
    match f.exp_desc with Texp_ident (p, _, _) -> normalize p | _ -> [])
  | _ -> []

type root = Local of Ident.t | Global of string | Anon

let rec root_of e =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Local id
  | Texp_ident (p, _, _) -> Global (String.concat "." (normalize p))
  | Texp_field (b, _, _) -> root_of b
  | _ -> Anon

let root_name = function
  | Local id -> Ident.name id
  | Global s -> s
  | Anon -> "<computed>"

let rec is_arrow ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Tpoly (t, _) -> is_arrow t
  | _ -> false

let rec type_suffix ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> normalize p
  | Types.Tpoly (t, _) -> type_suffix t
  | _ -> []

let line_of e = e.exp_loc.Location.loc_start.Lexing.pos_lnum

let bound_idents e =
  let tbl = Hashtbl.create 64 in
  let super = Tast_iterator.default_iterator in
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun it p ->
    List.iter (fun id -> Hashtbl.replace tbl (Ident.unique_name id) ()) (pat_bound_idents p);
    super.pat it p
  in
  let it = { super with pat } in
  it.expr it e;
  tbl

let nth_arg args n =
  let rec go k = function
    | [] -> None
    | (Asttypes.Nolabel, Some e) :: rest -> if k = n then Some e else go (k + 1) rest
    | _ :: rest -> go k rest
  in
  go 0 args
