(** The checked-in suppression file ([LINT_ALLOW] at the repo root): a
    reviewable registry of rule/file pairs that are allowed to carry
    findings, each with a mandatory justification.

    Format, one entry per line (['#'] starts a comment):

    {v
    <rule> <path> <justification...>
    v}

    e.g. [domain-safety lib/core/par.ml disjoint-index result writes].
    Entries without a justification are a usage error — an allowlist
    that does not say {e why} is a blindfold, not an audit. *)

type entry = { rule : string; path : string; why : string }
type t = entry list

val empty : t
val load : string -> (t, string) result
val find : t -> Finding.t -> entry option
(** An entry matches when its rule equals the finding's rule and its
    path equals (or is a suffix of) the finding's file. *)
