type entry = { rule : string; path : string; why : string }
type t = entry list

let empty = []

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let load file =
  let ic = try Some (open_in_bin file) with _ -> None in
  match ic with
  | None -> Error (Printf.sprintf "%s: cannot read suppression file" file)
  | Some ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go n acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | line -> (
            let line =
              match String.index_opt line '#' with
              | Some i -> String.sub line 0 i
              | None -> line
            in
            match split_ws line with
            | [] -> go (n + 1) acc
            | rule :: path :: (_ :: _ as why) ->
              go (n + 1) ({ rule; path; why = String.concat " " why } :: acc)
            | _ ->
              Error
                (Printf.sprintf
                   "%s:%d: allowlist entry needs <rule> <path> <justification>"
                   file n))
        in
        go 1 [])

let path_matches ~entry_path ~file =
  entry_path = file
  ||
  let n = String.length file and m = String.length entry_path in
  n > m && String.sub file (n - m) m = entry_path && file.[n - m - 1] = '/'

let find t (f : Finding.t) =
  List.find_opt
    (fun e -> e.rule = f.rule && path_matches ~entry_path:e.path ~file:f.file)
    t
