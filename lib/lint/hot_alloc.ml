open Typedtree

let name = "hot-alloc"

(* Stdlib entry points that unconditionally allocate their result.
   Intra-unit calls are not classified (see the .mli); this table is
   the "you certainly didn't mean that in a hot loop" set. *)
let allocating_calls =
  [
    [ "ref" ]; [ "^" ]; [ "@" ]; [ "^^" ];
    [ "Array"; "make" ]; [ "Array"; "init" ]; [ "Array"; "copy" ];
    [ "Array"; "append" ]; [ "Array"; "concat" ]; [ "Array"; "sub" ];
    [ "Array"; "of_list" ]; [ "Array"; "to_list" ]; [ "Array"; "map" ];
    [ "Array"; "mapi" ]; [ "Array"; "to_seq" ];
    [ "List"; "init" ]; [ "List"; "map" ]; [ "List"; "mapi" ];
    [ "List"; "append" ]; [ "List"; "concat" ]; [ "List"; "concat_map" ];
    [ "List"; "rev" ]; [ "List"; "filter" ]; [ "List"; "filter_map" ];
    [ "List"; "sort" ]; [ "List"; "merge" ]; [ "List"; "split" ];
    [ "List"; "combine" ]; [ "List"; "of_seq" ]; [ "List"; "to_seq" ];
    [ "String"; "make" ]; [ "String"; "init" ]; [ "String"; "sub" ];
    [ "String"; "concat" ]; [ "String"; "cat" ]; [ "String"; "split_on_char" ];
    [ "Bytes"; "create" ]; [ "Bytes"; "make" ]; [ "Bytes"; "copy" ];
    [ "Bytes"; "sub" ]; [ "Bytes"; "of_string" ]; [ "Bytes"; "to_string" ];
    [ "Printf"; "sprintf" ]; [ "Printf"; "printf" ]; [ "Printf"; "eprintf" ];
    [ "Printf"; "fprintf" ]; [ "Format"; "sprintf" ]; [ "Format"; "asprintf" ];
    [ "string_of_int" ]; [ "string_of_float" ]; [ "string_of_bool" ];
    [ "Int"; "to_string" ]; [ "Float"; "to_string" ];
    [ "Hashtbl"; "create" ]; [ "Buffer"; "create" ]; [ "Buffer"; "contents" ];
    [ "Queue"; "create" ]; [ "Stack"; "create" ];
    [ "Option"; "map" ]; [ "Option"; "some" ]; [ "Option"; "bind" ];
  ]

(* Escape paths: what these consume never returns, so allocation in
   their arguments is cold by construction. *)
let raising = [ [ "raise" ]; [ "raise_notrace" ]; [ "failwith" ]; [ "invalid_arg" ] ]

let suffix_mem norm table =
  norm <> [] && List.exists (fun s -> Tt_util.has_suffix norm ~suffix:s) table

let check_hot_body (ctx : Pass.ctx) ~file ~fn_name body =
  let flag e what =
    Pass.emit ctx ~file ~line:(Tt_util.line_of e) ~pass:name ~rule:name
      ~witness:(Printf.sprintf "hot function `%s`" fn_name)
      what
  in
  let super = Tast_iterator.default_iterator in
  (* The leading parameter spine of the hot function itself is not an
     allocation (entering a fully-applied curried function builds no
     closure); any function literal reached through a non-spine child
     is.  [Texp_let] keeps the spine alive through its body (and kills
     it in the bound expressions): optional-argument defaults desugar
     to a let-wrapped match between parameters, and a definition-time
     `let helper = ... in fun x -> ...` prefix runs once, not per
     call. *)
  let in_spine = ref true in
  let expr it (e : expression) =
    match e.exp_desc with
    | Texp_function _ ->
      if not !in_spine then flag e "closure allocation";
      let saved = !in_spine in
      in_spine := true;
      super.expr it e;
      in_spine := saved
    | Texp_let (_, vbs, body) ->
      let saved = !in_spine in
      in_spine := false;
      List.iter (fun vb -> it.Tast_iterator.value_binding it vb) vbs;
      in_spine := saved;
      it.Tast_iterator.expr it body
    | _ ->
      let saved = !in_spine in
      in_spine := false;
      (match e.exp_desc with
      | Texp_tuple _ -> flag e "tuple allocation"
      | Texp_construct (_, cd, args) when args <> [] ->
        flag e
          (Printf.sprintf "allocating constructor %s" cd.Types.cstr_name)
      | Texp_variant (_, Some _) -> flag e "allocating polymorphic variant"
      | Texp_record _ -> flag e "record allocation"
      | Texp_array (_ :: _) -> flag e "array literal allocation"
      | Texp_lazy _ -> flag e "lazy-value allocation"
      | Texp_letop _ -> flag e "binding-operator allocation"
      | Texp_object _ | Texp_pack _ -> flag e "object/module allocation"
      | Texp_apply (f, _) when suffix_mem (Tt_util.head_norm f) raising -> ()
      | Texp_apply (f, _) when suffix_mem (Tt_util.head_norm f) allocating_calls
        ->
        flag e
          (Printf.sprintf "allocating call %s"
             (String.concat "." (Tt_util.head_norm f)))
      | Texp_apply (_, args)
        when List.exists (fun (_, a) -> Option.is_none a) args ->
        (* An omitted labelled argument proves the application partial.
           Positional partial application is indistinguishable from a
           call that returns a function (e.g. Heap.pop_exn handing back
           an event callback) by the result type alone, so it is not
           flagged — see the .mli. *)
        flag e "partial application (allocates a closure)"
      | _ -> ());
      (match e.exp_desc with
      | Texp_assert _ -> () (* assertion failure path: cold *)
      | Texp_apply (f, _) when suffix_mem (Tt_util.head_norm f) raising -> ()
      | _ -> super.expr it e);
      in_spine := saved
  in
  let it = { super with expr } in
  in_spine := true;
  it.expr it body

let run (ctx : Pass.ctx) =
  List.iter
    (fun (u : Cmt_unit.t) ->
      let src = ctx.source u.source in
      if Source_file.exists src then begin
        let super = Tast_iterator.default_iterator in
        let value_binding it vb =
          (match pat_bound_idents vb.vb_pat with
          | [ id ]
            when Source_file.hot src
                   ~line:vb.vb_loc.Location.loc_start.Lexing.pos_lnum ->
            check_hot_body ctx ~file:u.source ~fn_name:(Ident.name id) vb.vb_expr
          | _ -> ());
          super.value_binding it vb
        in
        let it = { super with value_binding } in
        it.structure it u.structure
      end)
    ctx.units

let pass : Pass.t =
  {
    name;
    description = "hot-annotated functions must not allocate";
    rules = [ name ];
    needs_cmt = true;
    run;
  }
