type t = {
  source : string;
  cmt_path : string;
  structure : Typedtree.structure;
}

let norm_rel path =
  if String.length path >= 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let under paths file =
  List.exists
    (fun p ->
      let p = norm_rel p in
      file = p
      || String.length file > String.length p
         && String.sub file 0 (String.length p) = p
         && file.[String.length p] = '/')
    paths

let rec cmt_files path =
  match Sys.is_directory path with
  | exception _ -> []
  | false -> if Filename.check_suffix path ".cmt" then [ path ] else []
  | true ->
    if Filename.basename path = ".git" then []
    else
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.concat_map (fun name -> cmt_files (Filename.concat path name))

let scan ~roots ~under:paths =
  let errors = ref [] in
  let units =
    List.concat_map cmt_files roots
    |> List.filter_map (fun cmt_path ->
           match Cmt_format.read_cmt cmt_path with
           | exception exn ->
             errors :=
               Printf.sprintf "%s: cannot read cmt: %s" cmt_path
                 (Printexc.to_string exn)
               :: !errors;
             None
           | infos -> (
             match (infos.Cmt_format.cmt_annots, infos.Cmt_format.cmt_sourcefile) with
             | Cmt_format.Implementation structure, Some src ->
               let source = norm_rel src in
               if under paths source then Some { source; cmt_path; structure }
               else None
             | _ -> None))
  in
  (* One unit per source: _build can hold both fresh and stale copies
     (e.g. a module compiled into a library and an executable); keep the
     lexicographically first cmt path so reruns are deterministic. *)
  let by_source = Hashtbl.create 64 in
  List.iter
    (fun u ->
      match Hashtbl.find_opt by_source u.source with
      | Some prev when String.compare prev.cmt_path u.cmt_path <= 0 -> ()
      | _ -> Hashtbl.replace by_source u.source u)
    units;
  let kept = Hashtbl.fold (fun _ u acc -> u :: acc) by_source [] in
  (List.sort (fun a b -> String.compare a.source b.source) kept, List.rev !errors)
