(** The pass interface: every analysis is a named pass over a shared
    context, emitting {!Finding.t}s through the context rather than
    printing — the driver owns rendering, suppression and exit codes. *)

type ctx = {
  root : string;  (** directory all relative paths resolve against *)
  paths : string list;  (** requested scan roots, e.g. [["lib"; "bin"]] *)
  files : string list;  (** the [.ml] files under [paths] (root-relative) *)
  source : string -> Source_file.t;
      (** cached source text for a root-relative path *)
  units : Cmt_unit.t list;  (** typed units under [paths], possibly [[]] *)
  rules : string list option;  (** when set, emit only these rules *)
  emit : Finding.t -> unit;
  error : string -> unit;  (** operational failure — drives exit code 2 *)
}

val emit :
  ctx ->
  file:string ->
  line:int ->
  pass:string ->
  rule:string ->
  ?witness:string ->
  string ->
  unit
(** Emit unless the rule is filtered out or an in-source
    [remy-lint: allow <rule>] annotation covers the line. *)

type t = {
  name : string;
  description : string;
  rules : string list;  (** every rule this pass can emit *)
  needs_cmt : bool;
  run : ctx -> unit;
}
