(* The whole system's contract is bit-reproducibility: same seed, same
   table, same results — across runs, machines and domain counts.  That
   contract dies quietly when a source file reaches for an ambient
   entropy or ordering source, so this pass parses every .ml file (via
   compiler-libs, no typing needed) and rejects:

     random        Stdlib.Random — unseeded or globally seeded PRNG;
                   simulations must draw from Remy_util.Prng streams
     wall-clock    Unix.gettimeofday / Unix.time / Sys.time — real time
                   leaking into logic; use Remy_obs.Clock (monotonic,
                   display-only) or simulated time
     poly-hash     Hashtbl.hash / Hashtbl.seeded_hash — structure-
                   dependent hashing that silently changes when a type
                   gains a field
     poly-compare  polymorphic [compare] (and [=]/[<>] passed as a
                   function value) — ordering that breaks on cyclic or
                   functional values and re-orders when types change;
                   use the monomorphic Float.compare / Int.compare /
                   String.compare *)

let name = "determinism"
let rules = [ "random"; "wall-clock"; "poly-hash"; "poly-compare" ]

let strip_stdlib = function "Stdlib" :: rest -> rest | path -> path

(* [applied] distinguishes `compare a b` / `a = b` (head of an
   application) from `compare` passed as a value to e.g. Array.sort —
   the equality operators are only hazardous as values (applied
   structural (=) on scalars is fine and ubiquitous), while [compare]
   and friends are hazardous either way. *)
let classify ~applied path =
  match strip_stdlib path with
  | "Random" :: _ -> Some ("random", "Stdlib.Random is not seedable per-stream")
  | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] ->
    Some ("wall-clock", "real time must not reach simulation logic")
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param") ] ->
    Some ("poly-hash", "polymorphic hashing is representation-dependent")
  | [ "compare" ] | [ "min" ] | [ "max" ] when not applied ->
    Some
      ( "poly-compare",
        "polymorphic comparison passed as a function; use Float.compare / \
         Int.compare / String.compare" )
  | [ "compare" ] ->
    Some
      ( "poly-compare",
        "polymorphic compare; use Float.compare / Int.compare / String.compare"
      )
  | [ ("=" | "<>" | "==" | "!=") ] when not applied ->
    Some
      ( "poly-compare",
        "polymorphic equality passed as a function; use an explicit \
         monomorphic equality" )
  | _ -> None

let lint_ast ctx ~file ast =
  let report ~applied (id : Longident.t Location.loc) =
    let path = try Longident.flatten id.txt with _ -> [] in
    match classify ~applied path with
    | Some (rule, what) ->
      Pass.emit ctx ~file
        ~line:id.loc.Location.loc_start.Lexing.pos_lnum
        ~pass:name ~rule
        (String.concat "." path ^ ": " ^ what)
    | None -> ()
  in
  let super = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_apply (({ pexp_desc = Pexp_ident id; _ } as fn), args) ->
      report ~applied:true id;
      (* Visit the arguments but not the head ident, which would
         otherwise re-report as a function value. *)
      it.Ast_iterator.attributes it fn.pexp_attributes;
      List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args
    | Pexp_ident id ->
      report ~applied:false id;
      super.expr it e
    | _ -> super.expr it e
  in
  let it = { super with expr } in
  it.structure it ast

let lint_file (ctx : Pass.ctx) file =
  let abs =
    if Filename.is_relative file then Filename.concat ctx.root file else file
  in
  let ic = try Some (open_in_bin abs) with _ -> None in
  match ic with
  | None -> ctx.error (Printf.sprintf "%s: cannot open" file)
  | Some ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lexbuf = Lexing.from_channel ic in
        Lexing.set_filename lexbuf file;
        match Parse.implementation lexbuf with
        | ast -> lint_ast ctx ~file ast
        | exception exn ->
          ctx.error
            (Printf.sprintf "%s: cannot parse: %s" file (Printexc.to_string exn)))

let pass : Pass.t =
  {
    name;
    description = "ambient entropy/ordering sources that break reproducibility";
    rules;
    needs_cmt = false;
    run = (fun ctx -> List.iter (lint_file ctx) ctx.files);
  }
