open Remy_util

(* The robustness report behind `remy_inspect robustness-report`: the
   spirit of the paper's Fig. 6 ("how does performance degrade as the
   network leaves the design range?") applied to adversarial faults —
   sweep one fault axis at a time across intensities and report the
   objective-score degradation against the clean baseline, machine
   readable. *)

type level = { label : string; spec : Remy_faults.Spec.t }
type axis = { axis : string; levels : level list }

let spec s =
  match Remy_faults.Spec.parse s with
  | Ok t -> t
  | Error e -> invalid_arg (Printf.sprintf "Robustness: bad builtin spec %S: %s" s e)

let axis_of_strings axis levels =
  { axis; levels = List.map (fun (label, s) -> { label; spec = spec s }) levels }

(* Three intensities per axis, mild through severe.  Timed clauses
   assume a run longer than ~15 s (the sweep's default duration is 30);
   shorter runs simply see fewer outage cycles / a later rate cut. *)
let default_axes =
  [
    axis_of_strings "outage"
      [
        ("mild", "outage:5+0.5+15");
        ("moderate", "outage:5+1+15");
        ("severe", "outage:5+2+15");
      ];
    axis_of_strings "burst-loss"
      [
        ("mild", "ge:0.005,0.3,0.1");
        ("moderate", "ge:0.01,0.2,0.3");
        ("severe", "ge:0.02,0.1,0.5");
      ];
    axis_of_strings "reorder"
      [
        ("mild", "reorder:0.01,0.002");
        ("moderate", "reorder:0.05,0.005");
        ("severe", "reorder:0.1,0.01");
      ];
    axis_of_strings "duplicate"
      [ ("mild", "dup:0.01"); ("moderate", "dup:0.05"); ("severe", "dup:0.1") ];
    axis_of_strings "corrupt"
      [
        ("mild", "corrupt:0.005");
        ("moderate", "corrupt:0.02");
        ("severe", "corrupt:0.05");
      ];
    axis_of_strings "rate-cut"
      [
        ("mild", "ratex:0.75@10");
        ("moderate", "ratex:0.5@10");
        ("severe", "ratex:0.25@10");
      ];
  ]

type cell = {
  cell_axis : string;
  level : string;
  spec_string : string;
  score : float;
  degradation : float;  (* baseline score - this score *)
  mean_tput_mbps : float;
  mean_rtt_ms : float;
}

type report = {
  scheme : string;
  objective : Remy.Objective.t;
  baseline_score : float;
  baseline_tput_mbps : float;
  baseline_rtt_ms : float;
  cells : cell list;
}

(* Mean per-sender objective over the pooled points.  The sweep builds
   uniform-RTT dumbbells, so every point's propagation RTT is the
   scenario's broadcast one. *)
let score_of_summary objective (t : Scenario.t) (s : Scenario.summary) =
  let prop_ms = Stats.mean t.Scenario.rtts *. 1e3 in
  if Array.length s.Scenario.points = 0 then
    (* Nothing delivered at all (e.g. a blackout covering the run):
       score the floor, not 0, so "no throughput" ranks below any
       delivering cell. *)
    Remy.Objective.score objective ~throughput_mbps:0. ~mean_rtt_ms:prop_ms
  else
    Stats.mean
      (Array.map
         (fun (p : Scenario.point) ->
           Remy.Objective.score objective ~throughput_mbps:p.Scenario.tput_mbps
             ~mean_rtt_ms:(p.Scenario.qdelay_ms +. prop_ms))
         s.Scenario.points)

let run ?(axes = default_axes)
    ?(objective = Remy.Objective.proportional ~delta:1.0) (t : Scenario.t)
    (sch : Schemes.t) =
  let clean = Scenario.run_scheme t sch in
  let baseline_score = score_of_summary objective t clean in
  let cells =
    List.concat_map
      (fun a ->
        List.map
          (fun l ->
            let s = Scenario.run_scheme ~faults:l.spec t sch in
            let score = score_of_summary objective t s in
            {
              cell_axis = a.axis;
              level = l.label;
              spec_string = Remy_faults.Spec.to_string l.spec;
              score;
              degradation = baseline_score -. score;
              mean_tput_mbps = s.Scenario.mean_tput;
              mean_rtt_ms = s.Scenario.mean_rtt_ms;
            })
          a.levels)
      axes
  in
  {
    scheme = sch.Schemes.name;
    objective;
    baseline_score;
    baseline_tput_mbps = clean.Scenario.mean_tput;
    baseline_rtt_ms = clean.Scenario.mean_rtt_ms;
    cells;
  }

let to_records r =
  let open Remy_obs.Record in
  (* One baseline record, then one per cell — flat, so the JSONL feeds
     straight into any Sink consumer. *)
  [
    ("row", Str "baseline");
    ("scheme", Str r.scheme);
    ("score", Float r.baseline_score);
    ("tput_mbps", Float r.baseline_tput_mbps);
    ("rtt_ms", Float r.baseline_rtt_ms);
  ]
  :: List.map
       (fun c ->
         [
           ("row", Str "cell");
           ("scheme", Str r.scheme);
           ("axis", Str c.cell_axis);
           ("level", Str c.level);
           ("spec", Str c.spec_string);
           ("score", Float c.score);
           ("degradation", Float c.degradation);
           ("tput_mbps", Float c.mean_tput_mbps);
           ("rtt_ms", Float c.mean_rtt_ms);
         ])
       r.cells

let pp fmt r =
  Format.fprintf fmt "@[<v>robustness of %s (objective %a)@," r.scheme
    Remy.Objective.pp r.objective;
  Format.fprintf fmt "baseline: score %8.4f  %8.3f Mbps  %8.2f ms@," r.baseline_score
    r.baseline_tput_mbps r.baseline_rtt_ms;
  Format.fprintf fmt "%-12s %-10s %10s %12s %10s %10s@," "axis" "level" "score"
    "degradation" "Mbps" "rtt ms";
  List.iter
    (fun c ->
      Format.fprintf fmt "%-12s %-10s %10.4f %12.4f %10.3f %10.2f@," c.cell_axis
        c.level c.score c.degradation c.mean_tput_mbps c.mean_rtt_ms)
    r.cells;
  Format.fprintf fmt "@]"
