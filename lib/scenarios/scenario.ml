open Remy_cc
open Remy_sim
open Remy_util

type t = {
  service : Dumbbell.service;
  capacity : int;
  n : int;
  rtts : float array;
  workload : Workload.t;
  start : [ `Immediate | `Off_draw ];
  duration : float;
  replications : int;
  base_seed : int;
}

let make ?(capacity = Schemes.droptail_capacity) ?rtts ?(replications = 16)
    ?(base_seed = 7000) ?(start = `Off_draw) ~service ~n ~rtt ~workload ~duration
    () =
  let rtts = match rtts with Some r -> r | None -> Array.make n rtt in
  assert (Array.length rtts = n);
  { service; capacity; n; rtts; workload; start; duration; replications; base_seed }

type point = { tput_mbps : float; qdelay_ms : float }

type summary = {
  scheme : string;
  points : point array;
  median_tput : float;
  median_qdelay : float;
  ellipse : Ellipse.t option;
  mean_tput : float;
  mean_rtt_ms : float;
  per_flow_tput : float array array;
}

let run_scheme ?(tracer = Remy_obs.Trace.off) ?probe_interval
    ?(faults = Remy_faults.Spec.empty) t scheme =
  let points = ref [] in
  let rtt_sums = ref [] in
  let per_flow = ref [] in
  for rep = 0 to t.replications - 1 do
    (* Trace only the first replication: one representative run per
       scheme keeps trace files bounded; results are unaffected. *)
    let tracer = if rep = 0 then tracer else Remy_obs.Trace.off in
    let config =
      {
        Dumbbell.service = t.service;
        qdisc = Schemes.qdisc_spec scheme ~capacity:t.capacity;
        flows =
          Array.init t.n (fun i ->
              {
                Dumbbell.cc = scheme.Schemes.factory;
                rtt = t.rtts.(i);
                workload = t.workload;
                start = t.start;
              });
        duration = t.duration;
        seed = t.base_seed + rep;
        min_rto = Dumbbell.default_min_rto;
      }
    in
    let result = Dumbbell.run ~tracer ?probe_interval ~faults config in
    per_flow :=
      Array.map (fun (f : Metrics.flow_summary) -> f.Metrics.throughput_mbps)
        result.Dumbbell.flows
      :: !per_flow;
    Array.iteri
      (fun i (f : Metrics.flow_summary) ->
        if f.Metrics.on_time > 0. && f.Metrics.packets > 0 then begin
          points :=
            {
              tput_mbps = f.Metrics.throughput_mbps;
              qdelay_ms = f.Metrics.mean_queueing_delay_ms;
            }
            :: !points;
          rtt_sums :=
            (f.Metrics.mean_queueing_delay_ms +. (t.rtts.(i) *. 1e3)) :: !rtt_sums
        end)
      result.Dumbbell.flows
  done;
  let points = Array.of_list (List.rev !points) in
  let tputs = Array.map (fun p -> p.tput_mbps) points in
  let delays = Array.map (fun p -> p.qdelay_ms) points in
  let non_empty = Array.length points > 0 in
  {
    scheme = scheme.Schemes.name;
    points;
    median_tput = (if non_empty then Stats.median tputs else 0.);
    median_qdelay = (if non_empty then Stats.median delays else 0.);
    ellipse =
      (if Array.length points >= 2 then
         Some (Ellipse.fit (Array.map (fun p -> (p.qdelay_ms, p.tput_mbps)) points))
       else None);
    mean_tput = (if non_empty then Stats.mean tputs else 0.);
    mean_rtt_ms =
      (if !rtt_sums = [] then 0. else Stats.mean (Array.of_list !rtt_sums));
    per_flow_tput = Array.of_list (List.rev !per_flow);
  }

let run_all t schemes = List.map (fun s -> run_scheme t s) schemes

let pp_summary_row fmt s =
  let axes =
    match s.ellipse with
    | Some e -> Format.asprintf "%.2f x %.2f" e.Ellipse.major e.Ellipse.minor
    | None -> "-"
  in
  Format.fprintf fmt "%-16s %8.3f Mbps %10.2f ms   ellipse %s" s.scheme
    s.median_tput s.median_qdelay axes
