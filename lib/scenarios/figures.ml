open Remy_sim
open Remy_util

type opts = {
  replications : int;
  duration : float;
  base_seed : int;
  progress : string -> unit;
  artifact_dir : string option;
}

let quick =
  {
    replications = 6;
    duration = 40.;
    base_seed = 7000;
    progress = ignore;
    artifact_dir = None;
  }

let full = { quick with replications = 64; duration = 100. }

(* Write one TSV artifact ([name].tsv) when an artifact directory is
   configured: a header line then one row per data point. *)
let artifact opts name ~header rows =
  match opts.artifact_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (name ^ ".tsv") in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc ("# " ^ String.concat "\t" header ^ "\n");
        List.iter
          (fun row -> output_string oc (String.concat "\t" row ^ "\n"))
          rows);
    opts.progress (Printf.sprintf "wrote %s" path)

let scatter_artifact opts name summaries =
  artifact opts name
    ~header:[ "scheme"; "tput_mbps"; "qdelay_ms" ]
    (List.concat_map
       (fun (s : Scenario.summary) ->
         Array.to_list
           (Array.map
              (fun (p : Scenario.point) ->
                [
                  s.Scenario.scheme;
                  Printf.sprintf "%.6f" p.Scenario.tput_mbps;
                  Printf.sprintf "%.6f" p.Scenario.qdelay_ms;
                ])
              s.Scenario.points))
       summaries);
  artifact opts (name ^ "_medians")
    ~header:[ "scheme"; "median_tput_mbps"; "median_qdelay_ms" ]
    (List.map
       (fun (s : Scenario.summary) ->
         [
           s.Scenario.scheme;
           Printf.sprintf "%.6f" s.Scenario.median_tput;
           Printf.sprintf "%.6f" s.Scenario.median_qdelay;
         ])
       summaries)

let header fmt title note =
  Format.fprintf fmt "@.==== %s ====@.%s@.@." title note

let remy_scheme opts spec =
  Schemes.remy ~name:(Tables.default_label spec)
    (Tables.load_or_train ~progress:opts.progress spec)

let load_trace opts name profile =
  let path = Filename.concat (Tables.data_dir ()) (name ^ ".trace") in
  match Cell_trace.load path with
  | Ok t -> t
  | Error _ ->
    opts.progress
      (Printf.sprintf "trace %s missing; synthesizing (bin/gen_traces regenerates it)"
         path);
    let t = Cell_trace.synthesize ~name (Prng.create 20130812) profile ~duration:300. in
    Cell_trace.save path t;
    t

(* --- Fig. 3 ---------------------------------------------------------- *)

let fig3 fmt =
  header fmt "Figure 3: ICSI flow-length distribution"
    "Empirical CDF of 100k draws vs the paper's Pareto(x+40) fit (Xm=147, alpha=0.5).\n\
     The generator adds the 16 KiB evaluation floor, so compare after removing it.";
  let rng = Prng.create 3 in
  let n = 100_000 in
  let samples =
    Array.init n (fun _ -> Dist.pareto_icsi rng -. 16384.)
  in
  Array.sort Float.compare samples;
  Format.fprintf fmt "%12s %12s %12s@." "bytes" "empirical" "Pareto fit";
  List.iter
    (fun x ->
      let count = ref 0 in
      Array.iter (fun s -> if s <= x then incr count) samples;
      let empirical = float_of_int !count /. float_of_int n in
      Format.fprintf fmt "%12.0f %12.4f %12.4f@." x empirical (Dist.icsi_cdf x))
    [ 150.; 300.; 1e3; 1e4; 1e5; 1e6; 1e7 ];
  Format.fprintf fmt
    "@.shape check: heavy tail (no finite mean); median ~ %.0f bytes (paper: Xm*4-40 = 548)@."
    (Stats.median samples)

(* --- throughput-delay experiments (Figs. 4, 5, 7, 8, 9) -------------- *)

let pp_ellipse_row fmt (s : Scenario.summary) ~sigma =
  let ell =
    match s.Scenario.ellipse with
    | Some e ->
      let e = Remy_util.Ellipse.scale e sigma in
      Format.asprintf "%.2f x %.2f at %.0f deg" e.Ellipse.major e.Ellipse.minor
        (e.Ellipse.angle *. 180. /. Float.pi)
    | None -> "-"
  in
  Format.fprintf fmt "%-16s %8.3f %10.2f   %s@." s.Scenario.scheme
    s.Scenario.median_tput s.Scenario.median_qdelay ell

let throughput_delay_experiment fmt ~title ~note ~scenario ~schemes ~sigma =
  header fmt title note;
  Format.fprintf fmt "%-16s %8s %10s   %s@." "scheme" "tput" "qdelay"
    (Printf.sprintf "%g-sigma ellipse (delay x tput)" sigma);
  Format.fprintf fmt "%-16s %8s %10s@." "" "(Mbps)" "(ms)";
  let summaries = List.map (Scenario.run_scheme scenario) schemes in
  List.iter (fun s -> pp_ellipse_row fmt s ~sigma) summaries;
  summaries

let standard_schemes opts =
  Schemes.fig4_baselines
  @ List.map (remy_scheme opts) [ Tables.delta01; Tables.delta1; Tables.delta10 ]

let summary_table fmt summaries ~reference =
  match List.find_opt (fun s -> s.Scenario.scheme = reference) summaries with
  | None -> ()
  | Some remy ->
    Format.fprintf fmt
      "@.Section-1-style summary (median speedup and delay reduction of %s):@."
      reference;
    Format.fprintf fmt "%-16s %14s %16s@." "protocol" "median speedup"
      "delay reduction";
    List.iter
      (fun s ->
        if s.Scenario.scheme <> reference && s.Scenario.median_tput > 0. then
          Format.fprintf fmt "%-16s %13.2fx %15.2fx@." s.Scenario.scheme
            (remy.Scenario.median_tput /. s.Scenario.median_tput)
            (s.Scenario.median_qdelay /. Float.max 1e-9 remy.Scenario.median_qdelay))
      summaries

let fig4 fmt opts =
  let scenario =
    Scenario.make
      ~service:(Remy_cc.Dumbbell.Rate_mbps 15.)
      ~n:8 ~rtt:0.150
      ~workload:(Workload.by_bytes ~mean_bytes:100e3 ~mean_off:0.5)
      ~duration:opts.duration ~replications:opts.replications
      ~base_seed:opts.base_seed ()
  in
  let summaries =
    throughput_delay_experiment fmt
      ~title:"Figure 4 + Section 1 table: dumbbell, 15 Mbps, n = 8"
      ~note:
        "100 kB exponential flows, 0.5 s exponential off times, 1000-pkt DropTail.\n\
         Paper shape: RemyCCs define the efficient frontier; Vegas lowest delay &\n\
         throughput; Cubic most throughput-hungry of the TCPs; XCP/sfqCoDel between."
      ~scenario ~schemes:(standard_schemes opts) ~sigma:1.
  in
  (* The paper's Section 1 table quotes one RemyCC against each scheme;
     print the two ends of our frontier. *)
  summary_table fmt summaries ~reference:"Remy d=0.1";
  summary_table fmt summaries ~reference:"Remy d=10";
  scatter_artifact opts "fig4" summaries

let fig5 fmt opts =
  let scenario =
    Scenario.make
      ~service:(Remy_cc.Dumbbell.Rate_mbps 15.)
      ~n:12 ~rtt:0.150
      ~workload:(Workload.icsi ~mean_off:0.2)
      ~duration:opts.duration ~replications:opts.replications
      ~base_seed:opts.base_seed ()
  in
  let summaries =
    throughput_delay_experiment fmt
      ~title:"Figure 5: dumbbell, n = 12, ICSI empirical flow lengths"
      ~note:
        "Heavy-tailed (Fig. 3) transfers, 0.2 s off times; 1/2-sigma ellipses\n\
         because of the sending distribution's variance.  Paper shape: RemyCCs\n\
         again mark the efficient frontier."
      ~scenario ~schemes:(standard_schemes opts) ~sigma:0.5
  in
  scatter_artifact opts "fig5" summaries

let cellular_experiment fmt opts ~id ~title ~trace_name ~profile ~n =
  let trace = load_trace opts trace_name profile in
  let scenario =
    Scenario.make
      ~service:(Remy_cc.Dumbbell.Trace trace)
      ~n ~rtt:0.050
      ~workload:(Workload.by_bytes ~mean_bytes:100e3 ~mean_off:0.5)
      ~duration:opts.duration ~replications:opts.replications
      ~base_seed:opts.base_seed ()
  in
  let summaries =
    throughput_delay_experiment fmt ~title
      ~note:
        (Printf.sprintf
           "Trace-driven cellular downlink (synthetic stand-in, mean %.1f Mbps; see\n\
            DESIGN.md substitutions).  Model mismatch probe: the trace's rate range\n\
            lies outside the RemyCC design range.  Paper shape: RemyCCs stay on or\n\
            near the frontier at n <= 8; XCP gets the long-run mean rate (footnote 6)."
           (Cell_trace.mean_rate_mbps trace))
      ~scenario ~schemes:(standard_schemes opts) ~sigma:1.
  in
  summary_table fmt summaries ~reference:"Remy d=0.1";
  summary_table fmt summaries ~reference:"Remy d=10";
  scatter_artifact opts id summaries

let fig7 fmt opts =
  cellular_experiment fmt opts ~id:"fig7"
    ~title:"Figure 7 + Section 1 LTE table: Verizon-like trace, n = 4"
    ~trace_name:"verizon-lte" ~profile:Cell_trace.verizon_like ~n:4

let fig8 fmt opts =
  cellular_experiment fmt opts ~id:"fig8"
    ~title:"Figure 8: Verizon-like trace, n = 8" ~trace_name:"verizon-lte"
    ~profile:Cell_trace.verizon_like ~n:8

let fig9 fmt opts =
  cellular_experiment fmt opts ~id:"fig9" ~title:"Figure 9: AT&T-like trace, n = 4"
    ~trace_name:"att-lte" ~profile:Cell_trace.att_like ~n:4

(* --- Fig. 6: sequence plot ------------------------------------------- *)

let fig6_one fmt opts ~id ~label tree =
  Format.fprintf fmt "@.--- %s ---@." label;
  let t_depart = opts.duration /. 2. in
  let series = ref [] in
  let flows =
    [|
      {
        Remy_cc.Dumbbell.cc = Remy.Remycc.factory tree;
        rtt = 0.150;
        workload = Workload.saturating;
        start = `Immediate;
      };
      {
        Remy_cc.Dumbbell.cc = Remy.Remycc.factory tree;
        rtt = 0.150;
        workload =
          {
            Workload.off_time = Dist.Constant infinity;
            on_spec = Workload.By_time (Dist.Constant t_depart);
          };
        start = `Immediate;
      };
    |]
  in
  let _ =
    Remy_cc.Dumbbell.run
      ~delivery_hook:(fun ~flow ~now ~seq ->
        if flow = 0 then series := (now, seq) :: !series)
      {
        Remy_cc.Dumbbell.service = Remy_cc.Dumbbell.Rate_mbps 15.;
        qdisc = Remy_cc.Dumbbell.Droptail 1000;
        flows;
        duration = opts.duration;
        seed = opts.base_seed;
        min_rto = Remy_cc.Dumbbell.default_min_rto;
      }
  in
  let series = Array.of_list (List.rev !series) in
  let rate_between t0 t1 =
    let points =
      Array.of_list
        (List.filter
           (fun (t, _) -> t >= t0 && t <= t1)
           (Array.to_list (Array.map (fun (t, s) -> (t, float_of_int s)) series)))
    in
    if Array.length points < 2 then 0. else fst (Stats.linear_fit points)
  in
  let margin = 2. in
  let before = rate_between (t_depart -. (opts.duration /. 4.)) (t_depart -. 0.5) in
  let after = rate_between (t_depart +. margin) (t_depart +. (opts.duration /. 4.)) in
  (* Decimated sequence plot samples for plotting. *)
  Format.fprintf fmt "%10s %12s@." "time (s)" "seq (pkts)";
  let step = max 1 (Array.length series / 20) in
  Array.iteri
    (fun i (t, s) -> if i mod step = 0 then Format.fprintf fmt "%10.2f %12d@." t s)
    series;
  let link_pps = Link.pps_of_mbps 15. in
  Format.fprintf fmt
    "@.sending rate before departure: %.0f pkts/s (%.2f of link)@." before
    (before /. link_pps);
  Format.fprintf fmt "sending rate after departure:  %.0f pkts/s (%.2f of link)@."
    after (after /. link_pps);
  Format.fprintf fmt "rate ratio after/before: %.2fx (paper: ~2x)@."
    (if before > 0. then after /. before else nan);
  artifact opts id
    ~header:[ "time_s"; "seq" ]
    (Array.to_list
       (Array.map
          (fun (t, s) -> [ Printf.sprintf "%.4f" t; string_of_int s ])
          series))

let fig6 fmt opts =
  header fmt "Figure 6: RemyCC rate doubling when a competitor departs"
    "Two RemyCC flows share a 15 Mbps link; the competitor stops midway.\n\
     Paper shape: the surviving flow moves from ~1/2 link speed to ~full\n\
     link speed shortly after the departure.  Shown for the general\n\
     (delta = 1) table and for the link-specific 1x table.  Note: small\n\
     general tables (ours have ~8 rules vs the paper's 162-204) may cap\n\
     the window below the solo-flow BDP, muting the doubling; the 1x\n\
     table shows the paper's behavior exactly.";
  fig6_one fmt opts ~id:"fig6_general" ~label:"general RemyCC (delta = 1)"
    (Tables.load_or_train ~progress:opts.progress Tables.delta1);
  fig6_one fmt opts ~id:"fig6_onex"
    ~label:"link-specific RemyCC (1x, 15 Mbps known a priori)"
    (Tables.load_or_train ~progress:opts.progress Tables.onex)

(* --- Fig. 10: RTT unfairness ----------------------------------------- *)

let fig10 fmt opts =
  header fmt "Figure 10: RTT unfairness"
    "Four senders at RTT 50/100/150/200 ms share a 10 Mbps link (ICSI flows,\n\
     0.2 s off).  Normalized throughput share per RTT, with standard error.\n\
     Paper shape: RemyCCs are markedly flatter (fairer) than Cubic/sfqCoDel.";
  let rtts = [| 0.050; 0.100; 0.150; 0.200 |] in
  let scenario =
    Scenario.make
      ~service:(Remy_cc.Dumbbell.Rate_mbps 10.)
      ~n:4 ~rtt:0.1 ~rtts
      ~workload:(Workload.icsi ~mean_off:0.2)
      ~duration:opts.duration ~replications:opts.replications
      ~base_seed:opts.base_seed ()
  in
  let schemes =
    Schemes.cubic_sfqcodel
    :: List.map (remy_scheme opts) [ Tables.delta01; Tables.delta1; Tables.delta10 ]
  in
  Format.fprintf fmt "%-16s %22s %22s %22s %22s@." "scheme" "RTT 50ms" "100ms"
    "150ms" "200ms";
  let rows = ref [] in
  List.iter
    (fun scheme ->
      let s = Scenario.run_scheme scenario scheme in
      (* Per replication: each flow's share of the total, normalized so a
         fair split is 1.0 (multiply by n). *)
      let shares =
        Array.map
          (fun row ->
            let total = Array.fold_left ( +. ) 0. row in
            if total <= 0. then Array.map (fun _ -> nan) row
            else Array.map (fun t -> 4. *. t /. total) row)
          s.Scenario.per_flow_tput
      in
      Format.fprintf fmt "%-16s" s.Scenario.scheme;
      for i = 0 to 3 do
        let col =
          Array.of_list
            (List.filter (fun x -> not (Float.is_nan x))
               (Array.to_list (Array.map (fun r -> r.(i)) shares)))
        in
        if Array.length col = 0 then Format.fprintf fmt "%22s" "-"
        else begin
          Format.fprintf fmt "%14.2f +/- %.2f" (Stats.mean col)
            (Stats.standard_error col);
          rows :=
            [
              s.Scenario.scheme;
              Printf.sprintf "%.0f" (rtts.(i) *. 1e3);
              Printf.sprintf "%.4f" (Stats.mean col);
              Printf.sprintf "%.4f" (Stats.standard_error col);
            ]
            :: !rows
        end
      done;
      Format.fprintf fmt "@.")
    schemes;
  artifact opts "fig10"
    ~header:[ "scheme"; "rtt_ms"; "norm_share_mean"; "norm_share_sem" ]
    (List.rev !rows)

(* --- Section 5.5: datacenter table ----------------------------------- *)

let tbl_datacenter fmt opts =
  header fmt "Section 5.5 table: datacenter, DCTCP vs RemyCC (1/10 scale)"
    "64 senders, 1 Gbps (paper: 10 Gbps; scaled 10x down with transfer sizes,\n\
     see DESIGN.md), 4 ms RTT, exponential 2 MB transfers, 0.1 s off times.\n\
     DCTCP runs over threshold-marking RED (K = 65); RemyCC over 1000-pkt\n\
     DropTail.  Paper shape: comparable throughput, RemyCC's RTTs higher\n\
     because DropTail lets queues grow.";
  let duration = Float.min opts.duration 20. in
  let replications = max 2 (opts.replications / 2) in
  let scenario =
    Scenario.make
      ~service:(Remy_cc.Dumbbell.Rate_mbps 1000.)
      ~n:64 ~rtt:0.004
      ~workload:(Workload.by_bytes ~mean_bytes:2e6 ~mean_off:0.1)
      ~duration ~replications ~base_seed:opts.base_seed ()
  in
  let dc_remy = remy_scheme opts Tables.datacenter in
  Format.fprintf fmt "%-20s %10s %10s %12s %12s@." "scheme" "tput mean"
    "tput med" "rtt mean" "rtt med";
  Format.fprintf fmt "%-20s %10s %10s %12s %12s@." "" "(Mbps)" "(Mbps)" "(ms)" "(ms)";
  List.iter
    (fun scheme ->
      let s = Scenario.run_scheme scenario scheme in
      let tputs = Array.map (fun p -> p.Scenario.tput_mbps) s.Scenario.points in
      let rtts =
        Array.map (fun p -> p.Scenario.qdelay_ms +. 4.) s.Scenario.points
      in
      if Array.length tputs > 0 then
        Format.fprintf fmt "%-20s %10.1f %10.1f %12.2f %12.2f@." s.Scenario.scheme
          (Stats.mean tputs) (Stats.median tputs) (Stats.mean rtts)
          (Stats.median rtts)
      else Format.fprintf fmt "%-20s (no flows scored)@." s.Scenario.scheme)
    [ Schemes.dctcp; dc_remy ]

(* --- Section 5.6: competing protocols -------------------------------- *)

let competing_run opts ~remy_tree ~other_name ~other_factory ~workload ~seed =
  (* One RemyCC flow vs one [other] flow on the paper's 15 Mbps / 150 ms
     bottleneck; returns (remy_tputs, other_tputs) across replications. *)
  let remy_t = ref [] and other_t = ref [] in
  for rep = 0 to opts.replications - 1 do
    let flows =
      [|
        {
          Remy_cc.Dumbbell.cc = Remy.Remycc.factory remy_tree;
          rtt = 0.150;
          workload;
          start = `Off_draw;
        };
        {
          Remy_cc.Dumbbell.cc = other_factory;
          rtt = 0.150;
          workload;
          start = `Off_draw;
        };
      |]
    in
    let r =
      Remy_cc.Dumbbell.run
        {
          Remy_cc.Dumbbell.service = Remy_cc.Dumbbell.Rate_mbps 15.;
          qdisc = Remy_cc.Dumbbell.Droptail 1000;
          flows;
          duration = opts.duration;
          seed = seed + rep;
          min_rto = Remy_cc.Dumbbell.default_min_rto;
        }
    in
    let tput i = r.Remy_cc.Dumbbell.flows.(i).Metrics.throughput_mbps in
    if r.Remy_cc.Dumbbell.flows.(0).Metrics.on_time > 0. then
      remy_t := tput 0 :: !remy_t;
    if r.Remy_cc.Dumbbell.flows.(1).Metrics.on_time > 0. then
      other_t := tput 1 :: !other_t
  done;
  ignore other_name;
  (Array.of_list !remy_t, Array.of_list !other_t)

let tbl_competing fmt opts =
  header fmt "Section 5.6 tables: competing with Compound and Cubic"
    "One RemyCC (coexistence-trained, RTT design range 100 ms - 10 s) shares\n\
     the 15 Mbps / 150 ms bottleneck with one conventional flow.  Paper shape:\n\
     RemyCC wins at low duty cycles (it grabs spare bandwidth faster); at high\n\
     duty cycles the buffer-filling protocol takes the larger share.";
  let tree = Tables.load_or_train ~progress:opts.progress Tables.coexist in
  Format.fprintf fmt "@.vs Compound, ICSI flows, varying mean off time:@.";
  Format.fprintf fmt "%-14s %18s %18s@." "mean off" "RemyCC tput (sd)"
    "Compound tput (sd)";
  List.iteri
    (fun i off ->
      let remy, other =
        competing_run opts ~remy_tree:tree ~other_name:"compound"
          ~other_factory:(Remy_cc.Compound.factory ())
          ~workload:(Workload.icsi ~mean_off:off)
          ~seed:(opts.base_seed + (1000 * i))
      in
      Format.fprintf fmt "%11.0f ms %11.2f (%.2f) %11.2f (%.2f)@." (off *. 1e3)
        (Stats.mean remy) (Stats.stddev remy) (Stats.mean other)
        (Stats.stddev other))
    [ 0.200; 0.100; 0.010 ];
  Format.fprintf fmt "@.vs Cubic, exponential flows (off 0.5 s), varying mean size:@.";
  Format.fprintf fmt "%-14s %18s %18s@." "mean size" "RemyCC tput (sd)"
    "Cubic tput (sd)";
  List.iteri
    (fun i size ->
      let remy, other =
        competing_run opts ~remy_tree:tree ~other_name:"cubic"
          ~other_factory:(Remy_cc.Cubic.factory ())
          ~workload:(Workload.by_bytes ~mean_bytes:size ~mean_off:0.5)
          ~seed:(opts.base_seed + 5000 + (1000 * i))
      in
      Format.fprintf fmt "%11.0f kB %11.2f (%.2f) %11.2f (%.2f)@." (size /. 1e3)
        (Stats.mean remy) (Stats.stddev remy) (Stats.mean other)
        (Stats.stddev other))
    [ 100e3; 1e6 ]

(* --- Fig. 11: sensitivity to prior knowledge ------------------------- *)

let fig11 fmt opts =
  header fmt "Figure 11: how helpful is prior knowledge about the network?"
    "Two senders, 150 ms RTT, on/off traffic; link speed swept across\n\
     4.74-47.4 Mbps.  Score: log(normalized tput) - log(normalized delay).\n\
     Paper shape: the 1x RemyCC peaks at its design point (15 Mbps) and falls\n\
     off; the 10x RemyCC beats Cubic/sfqCoDel across its design decade but\n\
     deteriorates outside it.";
  let onex = remy_scheme opts Tables.onex in
  let tenx = remy_scheme opts Tables.tenx in
  let objective = Remy.Objective.proportional ~delta:1.0 in
  let speeds = [ 4.74; 6.7; 9.5; 13.4; 15.0; 19.0; 26.8; 37.9; 47.4 ] in
  Format.fprintf fmt "%12s %14s %14s %16s@." "link (Mbps)" "Remy 1x" "Remy 10x"
    "Cubic/sfqCoDel";
  let rows = ref [] in
  List.iter
    (fun mbps ->
      let scenario =
        Scenario.make
          ~service:(Remy_cc.Dumbbell.Rate_mbps mbps)
          ~n:2 ~rtt:0.150
          ~workload:(Workload.by_time ~mean_on:1.0 ~mean_off:1.0)
          ~duration:opts.duration
          ~replications:(max 2 (opts.replications / 2))
          ~base_seed:opts.base_seed ()
      in
      let score scheme =
        let s = Scenario.run_scheme scenario scheme in
        if Array.length s.Scenario.points = 0 then nan
        else
          Stats.mean
            (Array.map
               (fun p ->
                 Remy.Objective.normalized_score objective
                   ~throughput_mbps:p.Scenario.tput_mbps
                   ~mean_rtt_ms:(p.Scenario.qdelay_ms +. 150.)
                   ~fair_share_mbps:(mbps /. 2.) ~min_rtt_ms:150.)
               s.Scenario.points)
      in
      let s1 = score onex and s10 = score tenx and sc = score Schemes.cubic_sfqcodel in
      rows :=
        [
          Printf.sprintf "%.2f" mbps;
          Printf.sprintf "%.4f" s1;
          Printf.sprintf "%.4f" s10;
          Printf.sprintf "%.4f" sc;
        ]
        :: !rows;
      Format.fprintf fmt "%12.2f %14.3f %14.3f %16.3f@." mbps s1 s10 sc)
    speeds;
  artifact opts "fig11"
    ~header:[ "link_mbps"; "remy_1x"; "remy_10x"; "cubic_sfqcodel" ]
    (List.rev !rows)

(* --- beyond-paper ablations ------------------------------------------ *)

let ablation_loss fmt opts =
  header fmt "Ablation: stochastic (non-congestive) loss"
    "Section 4.1: RemyCCs avoid loss as a congestion signal, so random\n\
     (wireless-style) loss should cost them only the lost goodput, while\n\
     loss-based TCPs misread it as congestion and back off.  Two senders,\n\
     15 Mbps / 150 ms, on/off traffic; median per-sender throughput (Mbps).";
  let remy =
    Schemes.remy ~name:"Remy d=1"
      (Tables.load_or_train ~progress:opts.progress Tables.delta1)
  in
  let schemes = [ Schemes.newreno; Schemes.cubic; remy ] in
  Format.fprintf fmt "%-12s" "loss rate";
  List.iter (fun s -> Format.fprintf fmt "%14s" s.Schemes.name) schemes;
  Format.fprintf fmt "@.";
  let rows = ref [] in
  List.iter
    (fun loss ->
      Format.fprintf fmt "%11.1f%%" (loss *. 100.);
      List.iter
        (fun scheme ->
          (* Scenario does not know about loss wrapping; run directly,
             wrapping the scheme's queue discipline with the Bernoulli
             pre-drop. *)
          let tputs = ref [] in
          for rep = 0 to opts.replications - 1 do
            let flows =
              Array.init 2 (fun _ ->
                  {
                    Remy_cc.Dumbbell.cc = scheme.Schemes.factory;
                    rtt = 0.150;
                    workload = Workload.by_time ~mean_on:2.0 ~mean_off:1.0;
                    start = `Off_draw;
                  })
            in
            let r =
              Remy_cc.Dumbbell.run
                {
                  Remy_cc.Dumbbell.service = Remy_cc.Dumbbell.Rate_mbps 15.;
                  qdisc =
                    Remy_cc.Dumbbell.With_loss
                      (loss, Schemes.qdisc_spec scheme ~capacity:1000);
                  flows;
                  duration = opts.duration;
                  seed = opts.base_seed + rep;
                  min_rto = Remy_cc.Dumbbell.default_min_rto;
                }
            in
            Array.iter
              (fun (f : Metrics.flow_summary) ->
                if f.Metrics.on_time > 0. then
                  tputs := f.Metrics.throughput_mbps :: !tputs)
              r.Remy_cc.Dumbbell.flows
          done;
          let med =
            match !tputs with
            | [] -> nan
            | l -> Stats.median (Array.of_list l)
          in
          rows :=
            [
              Printf.sprintf "%.4f" loss;
              scheme.Schemes.name;
              Printf.sprintf "%.4f" med;
            ]
            :: !rows;
          Format.fprintf fmt "%14.2f" med)
        schemes;
      Format.fprintf fmt "@.")
    [ 0.0; 0.001; 0.01; 0.03 ];
  artifact opts "ablation_loss"
    ~header:[ "loss_rate"; "scheme"; "median_tput_mbps" ]
    (List.rev !rows)

let ablation_signals fmt opts =
  header fmt "Ablation: which memory signals matter?"
    "The delta = 1 RemyCC re-run with each of its three congestion signals\n\
     (Section 4.1) pinned to zero, on the Fig. 4 dumbbell.  A signal whose\n\
     removal hurts was load-bearing for this table.";
  let tree = Tables.load_or_train ~progress:opts.progress Tables.delta1 in
  let scenario =
    Scenario.make
      ~service:(Remy_cc.Dumbbell.Rate_mbps 15.)
      ~n:8 ~rtt:0.150
      ~workload:(Workload.by_bytes ~mean_bytes:100e3 ~mean_off:0.5)
      ~duration:opts.duration ~replications:opts.replications
      ~base_seed:opts.base_seed ()
  in
  let variant name mask =
    {
      Schemes.name;
      factory = Remy.Remycc.factory ~mask tree;
      qdisc = Schemes.Q_droptail;
      (* Masked RemyCCs must not be swapped for the unmasked fleet. *)
      tree = None;
    }
  in
  Format.fprintf fmt "%-24s %10s %12s@." "variant" "tput" "qdelay (ms)";
  List.iter
    (fun scheme ->
      let s = Scenario.run_scheme scenario scheme in
      Format.fprintf fmt "%-24s %10.2f %12.2f@." s.Scenario.scheme
        s.Scenario.median_tput s.Scenario.median_qdelay)
    [
      variant "all signals" Remy.Remycc.all_signals;
      variant "no ack_ewma"
        { Remy.Remycc.all_signals with Remy.Remycc.use_ack_ewma = false };
      variant "no send_ewma"
        { Remy.Remycc.all_signals with Remy.Remycc.use_send_ewma = false };
      variant "no rtt_ratio"
        { Remy.Remycc.all_signals with Remy.Remycc.use_rtt_ratio = false };
    ]

let all =
  [
    ("fig3", fun fmt (_ : opts) -> fig3 fmt);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("tbl_datacenter", tbl_datacenter);
    ("tbl_competing", tbl_competing);
    ("fig11", fig11);
    ("ablation_loss", ablation_loss);
    ("ablation_signals", ablation_signals);
  ]
