(** Per-axis robustness sweep — Fig. 6's question, machine-readable.

    Section 5.2 asks how a RemyCC's performance decays as the network
    leaves its design range; this module asks the same of adversarial
    faults.  One fault axis at a time (outage, bursty loss, reordering,
    duplication, corruption, rate cut) is swept across intensities on
    an otherwise-fixed dumbbell experiment, and each cell reports the
    mean objective score and its degradation against the clean
    baseline.  Backs [remy_inspect robustness-report]. *)

type level = { label : string; spec : Remy_faults.Spec.t }
type axis = { axis : string; levels : level list }

val default_axes : axis list
(** Six axes, three intensities each (mild / moderate / severe).  Timed
    clauses (outage cycles, the rate cut at t = 10 s) assume runs of
    roughly 15 s or longer. *)

type cell = {
  cell_axis : string;
  level : string;
  spec_string : string;  (** canonical {!Remy_faults.Spec.to_string} *)
  score : float;  (** mean per-sender objective under this fault *)
  degradation : float;  (** baseline score - [score]; bigger = worse *)
  mean_tput_mbps : float;
  mean_rtt_ms : float;
}

type report = {
  scheme : string;
  objective : Remy.Objective.t;
  baseline_score : float;
  baseline_tput_mbps : float;
  baseline_rtt_ms : float;
  cells : cell list;
}

val run : ?axes:axis list -> ?objective:Remy.Objective.t -> Scenario.t -> Schemes.t -> report
(** Runs the clean baseline plus one {!Scenario.run_scheme} per cell,
    all on the scenario's seeds — identical seeds across cells, so
    score differences come only from the faults.  Default objective:
    proportional with delta = 1. *)

val to_records : report -> Remy_obs.Record.t list
(** One flat record per row — a ["baseline"] row then one ["cell"] row
    per sweep point — for JSONL/CSV output via {!Remy_obs.Sink}. *)

val pp : Format.formatter -> report -> unit
(** Aligned human-readable table. *)
