(** Replicated experiments over the named multi-bottleneck topologies.

    The {!Scenario} experiment shape — one scheme, [replications]
    seeds, pooled (queueing delay, throughput) points — with the
    network built by a {!Remy_cc.Topology} builder ("parking-lot",
    "fat-tree-pod", "incast") instead of the dumbbell.  RemyCC schemes
    are simulated on the structure-of-arrays {!Remy.Fleet} sender
    backend (bit-identical to the per-record one), which is what makes
    a 10k-flow incast run feasible from the CLI. *)

type t = {
  topology : string;  (** a name from {!names} *)
  n : int;  (** senders *)
  link_mbps : float option;  (** bottleneck-tier rate; None = default *)
  rtt_s : float option;  (** total two-way propagation; None = default *)
  capacity : int;  (** per-link buffer, packets *)
  workload : Remy_sim.Workload.t option;
  start : [ `Immediate | `Off_draw ] option;
  duration : float;
  replications : int;
  base_seed : int;
}

val names : string list

val make :
  ?capacity:int ->
  ?replications:int ->
  ?base_seed:int ->
  ?link_mbps:float ->
  ?rtt_s:float ->
  ?workload:Remy_sim.Workload.t ->
  ?start:[ `Immediate | `Off_draw ] ->
  topology:string ->
  n:int ->
  duration:float ->
  unit ->
  t
(** Defaults: capacity 1000, 16 replications, base seed 7000; unset
    options fall through to the topology builder's own defaults.
    Raises [Invalid_argument] on an unknown topology name. *)

val config :
  t -> scheme:Schemes.t -> seed:int -> Remy_cc.Topology.config
(** The concrete network for one replication (exposed for tests and
    for tools that drive {!Remy_cc.Topology.run} directly). *)

val run_scheme :
  ?tracer:Remy_obs.Trace.t ->
  ?probe_interval:float ->
  ?faults:Remy_faults.Spec.t ->
  t ->
  Schemes.t ->
  Scenario.summary
(** Replication [i] uses seed [base_seed + i]; tracing applies to
    replication 0 only, exactly as {!Scenario.run_scheme}.  [faults]
    installs the same fault schedule on every replication, resolved
    per link exactly as in {!Remy_cc.Topology.run}. *)

val run_all : t -> Schemes.t list -> Scenario.summary list
