(** Registry of congestion-control schemes under evaluation (Section 5.1).

    A scheme pairs an endpoint algorithm with the bottleneck queue
    discipline it is evaluated over: the end-to-end schemes and RemyCCs
    run over DropTail, Cubic-over-sfqCoDel over per-flow CoDel queues,
    XCP over XCP routers, and DCTCP over the threshold-marking RED
    gateway. *)

type qdisc_kind = Q_droptail | Q_sfqcodel | Q_dctcp_red | Q_xcp

type t = {
  name : string;  (** label used in printed tables *)
  factory : Remy_cc.Cc.factory;
  qdisc : qdisc_kind;
  tree : Remy.Rule_tree.t option;
      (** the rule table behind a RemyCC scheme; lets runners substitute
          the structure-of-arrays {!Remy.Fleet} backend for the
          per-record one (identical results, scales to 10k flows) *)
}

val droptail_capacity : int
(** 1000 packets, the evaluation's default buffer. *)

val dctcp_threshold : int
(** RED marking threshold K (65 packets, per the DCTCP paper). *)

val newreno : t
val vegas : t
val cubic : t
val compound : t
val cubic_sfqcodel : t
val xcp : t
val dctcp : t

val end_to_end : t list
(** NewReno, Vegas, Cubic, Compound. *)

val fig4_baselines : t list
(** The six non-Remy schemes of Figs. 4-9. *)

val remy : ?idle_restart_s:float -> name:string -> Remy.Rule_tree.t -> t
(** Wrap a rule table as a scheme running over DropTail.
    [idle_restart_s] forwards to {!Remy.Remycc.factory}: after an ACK
    gap longer than this, stale memory EWMAs are reset (graceful
    degradation across link outages).  Default off. *)

val qdisc_spec : t -> capacity:int -> Remy_cc.Dumbbell.qdisc_spec

val by_name : string -> t option
(** Look up a baseline scheme by its printed name. *)
