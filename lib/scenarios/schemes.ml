open Remy_cc

type qdisc_kind = Q_droptail | Q_sfqcodel | Q_dctcp_red | Q_xcp

type t = {
  name : string;
  factory : Cc.factory;
  qdisc : qdisc_kind;
  tree : Remy.Rule_tree.t option;
}

let droptail_capacity = 1000
let dctcp_threshold = 65

let newreno =
  { name = "NewReno"; factory = Newreno.factory (); qdisc = Q_droptail; tree = None }
let vegas =
  { name = "Vegas"; factory = Vegas.factory (); qdisc = Q_droptail; tree = None }
let cubic =
  { name = "Cubic"; factory = Cubic.factory (); qdisc = Q_droptail; tree = None }
let compound =
  {
    name = "Compound";
    factory = Compound.factory ();
    qdisc = Q_droptail;
    tree = None;
  }

let cubic_sfqcodel =
  {
    name = "Cubic/sfqCoDel";
    factory = Cubic.factory ();
    qdisc = Q_sfqcodel;
    tree = None;
  }

let xcp = { name = "XCP"; factory = Xcp.factory (); qdisc = Q_xcp; tree = None }
let dctcp =
  { name = "DCTCP"; factory = Dctcp.factory (); qdisc = Q_dctcp_red; tree = None }

let end_to_end = [ newreno; vegas; cubic; compound ]
let fig4_baselines = end_to_end @ [ cubic_sfqcodel; xcp ]

let remy ?idle_restart_s ~name tree =
  {
    name;
    factory = Remy.Remycc.factory ?idle_restart_s tree;
    qdisc = Q_droptail;
    tree = Some tree;
  }

let qdisc_spec t ~capacity =
  match t.qdisc with
  | Q_droptail -> Dumbbell.Droptail capacity
  | Q_sfqcodel -> Dumbbell.Sfq_codel capacity
  | Q_dctcp_red -> Dumbbell.Dctcp_red { capacity; threshold = dctcp_threshold }
  | Q_xcp -> Dumbbell.Xcp capacity

let by_name name =
  List.find_opt (fun t -> String.lowercase_ascii t.name = String.lowercase_ascii name)
    (fig4_baselines @ [ dctcp ])
