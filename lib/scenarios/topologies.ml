open Remy_cc
open Remy_sim
open Remy_util

(* Scenario-level registry for the multi-bottleneck topologies: the
   same replicated experiment shape as {!Scenario}, but the network is
   built by a named {!Topology} builder instead of the dumbbell.
   RemyCC schemes run on the structure-of-arrays {!Remy.Fleet}
   backend — bit-identical to the per-record one, and the reason a
   10k-flow incast is feasible from the CLI. *)

type t = {
  topology : string;
  n : int;
  link_mbps : float option; (* None = builder default *)
  rtt_s : float option;
  capacity : int;
  workload : Workload.t option;
  start : [ `Immediate | `Off_draw ] option;
  duration : float;
  replications : int;
  base_seed : int;
}

let names = Topology.names

let make ?(capacity = Schemes.droptail_capacity) ?(replications = 16)
    ?(base_seed = 7000) ?link_mbps ?rtt_s ?workload ?start ~topology ~n
    ~duration () =
  if Topology.builder_of_name topology = None then
    invalid_arg (Printf.sprintf "Topologies.make: unknown topology %S" topology);
  {
    topology;
    n;
    link_mbps;
    rtt_s;
    capacity;
    workload;
    start;
    duration;
    replications;
    base_seed;
  }

let config t ~(scheme : Schemes.t) ~seed =
  let builder =
    match Topology.builder_of_name t.topology with
    | Some b -> b
    | None -> assert false (* checked in [make] *)
  in
  builder ~n:t.n ~cc:scheme.Schemes.factory ?workload:t.workload ?start:t.start
    ?link_mbps:t.link_mbps ?rtt_s:t.rtt_s ~queue_capacity:t.capacity
    ~duration:t.duration ~seed ()

(* RemyCC schemes get the SoA fleet; everything else keeps the
   per-record backend (the fleet is RemyCC-specialized). *)
let sender_factory_of (scheme : Schemes.t) =
  Option.map
    (fun tree () -> Remy.Fleet.factory tree)
    scheme.Schemes.tree

let run_scheme ?(tracer = Remy_obs.Trace.off) ?probe_interval
    ?(faults = Remy_faults.Spec.empty) t (scheme : Schemes.t) =
  let points = ref [] in
  let rtt_sums = ref [] in
  let per_flow = ref [] in
  for rep = 0 to t.replications - 1 do
    let tracer = if rep = 0 then tracer else Remy_obs.Trace.off in
    let config = config t ~scheme ~seed:(t.base_seed + rep) in
    let sender_factory =
      Option.map (fun mk -> mk ()) (sender_factory_of scheme)
    in
    let result =
      Topology.run ~tracer ?probe_interval ?sender_factory ~faults config
    in
    per_flow :=
      Array.map
        (fun (f : Metrics.flow_summary) -> f.Metrics.throughput_mbps)
        result.Topology.flows
      :: !per_flow;
    Array.iteri
      (fun i (f : Metrics.flow_summary) ->
        if f.Metrics.on_time > 0. && f.Metrics.packets > 0 then begin
          points :=
            {
              Scenario.tput_mbps = f.Metrics.throughput_mbps;
              qdelay_ms = f.Metrics.mean_queueing_delay_ms;
            }
            :: !points;
          let rtt_s =
            Array.fold_left
              (fun acc li -> acc +. config.Topology.links.(li).Topology.delay_s)
              0.
              config.Topology.flows.(i).Topology.route
            *. 2.
          in
          rtt_sums :=
            (f.Metrics.mean_queueing_delay_ms +. (rtt_s *. 1e3)) :: !rtt_sums
        end)
      result.Topology.flows
  done;
  let points = Array.of_list (List.rev !points) in
  let tputs = Array.map (fun (p : Scenario.point) -> p.tput_mbps) points in
  let delays = Array.map (fun (p : Scenario.point) -> p.qdelay_ms) points in
  let non_empty = Array.length points > 0 in
  {
    Scenario.scheme = scheme.Schemes.name;
    points;
    median_tput = (if non_empty then Stats.median tputs else 0.);
    median_qdelay = (if non_empty then Stats.median delays else 0.);
    ellipse =
      (if Array.length points >= 2 then
         Some
           (Ellipse.fit
              (Array.map
                 (fun (p : Scenario.point) -> (p.qdelay_ms, p.tput_mbps))
                 points))
       else None);
    mean_tput = (if non_empty then Stats.mean tputs else 0.);
    mean_rtt_ms =
      (if !rtt_sums = [] then 0. else Stats.mean (Array.of_list !rtt_sums));
    per_flow_tput = Array.of_list (List.rev !per_flow);
  }

let run_all t schemes = List.map (fun s -> run_scheme t s) schemes
