(** Generic replicated experiment runner.

    An experiment fixes a bottleneck (service model + buffer), a sender
    population (count, per-flow RTTs, workload) and a horizon, then runs
    each scheme over [replications] seeds, pooling one (queueing delay,
    throughput) point per sender per run — the points behind the
    paper's throughput-delay ellipse plots and median tables. *)

type t = {
  service : Remy_cc.Dumbbell.service;
  capacity : int;  (** bottleneck buffer, packets *)
  n : int;  (** senders *)
  rtts : float array;
      (** per-flow two-way propagation delay, seconds; length [n] or 1
          (broadcast) *)
  workload : Remy_sim.Workload.t;
  start : [ `Immediate | `Off_draw ];
  duration : float;
  replications : int;
  base_seed : int;
}

val make :
  ?capacity:int ->
  ?rtts:float array ->
  ?replications:int ->
  ?base_seed:int ->
  ?start:[ `Immediate | `Off_draw ] ->
  service:Remy_cc.Dumbbell.service ->
  n:int ->
  rtt:float ->
  workload:Remy_sim.Workload.t ->
  duration:float ->
  unit ->
  t
(** Defaults: capacity 1000, 16 replications, base seed 7000, all flows
    at [rtt], senders start with an off-time draw (use [`Immediate] for
    saturating workloads). *)

type point = { tput_mbps : float; qdelay_ms : float }

type summary = {
  scheme : string;
  points : point array;  (** one per scored sender per replication *)
  median_tput : float;
  median_qdelay : float;
  ellipse : Remy_util.Ellipse.t option;  (** [None] with fewer than 2 points *)
  mean_tput : float;
  mean_rtt_ms : float;  (** mean queueing delay + propagation RTT *)
  per_flow_tput : float array array;
      (** [replications] rows of per-flow throughput (RTT-fairness plots) *)
}

val run_scheme :
  ?tracer:Remy_obs.Trace.t ->
  ?probe_interval:float ->
  ?faults:Remy_faults.Spec.t ->
  t ->
  Schemes.t ->
  summary
(** Replication [i] uses seed [base_seed + i]; senders with zero on-time
    are excluded, like the paper's "active during intervals" accounting.
    [tracer]/[probe_interval] apply to replication 0 only (one
    representative trace per scheme); they never affect results.
    [faults] installs the same fault schedule in every replication
    (fault draws are seeded per replication from the run seed, so each
    replication sees different drop/reorder realizations of the same
    schedule). *)

val run_all : t -> Schemes.t list -> summary list

val pp_summary_row : Format.formatter -> summary -> unit
(** One aligned text row: scheme, median throughput, median delay,
    ellipse axes. *)
