open Remy

let rec find_upward dir depth =
  let candidate = Filename.concat dir "data" in
  if Sys.file_exists candidate && Sys.is_directory candidate then Some candidate
  else if depth = 0 then None
  else begin
    let parent = Filename.dirname dir in
    if parent = dir then None else find_upward parent (depth - 1)
  end

let data_dir () =
  let dir =
    match Sys.getenv_opt "REMY_DATA_DIR" with
    | Some d -> d
    | None -> (
      match find_upward (Sys.getcwd ()) 6 with
      | Some d -> d
      | None -> Filename.concat (Sys.getcwd ()) "data")
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

let path name = Filename.concat (data_dir ()) (name ^ ".rules")
let load name = Rule_tree.load (path name)

type spec = {
  table : string;
  model : Net_model.t;
  objective : Objective.t;
  train_budget_s : float;
}

let delta01 =
  {
    table = "delta01";
    model = Net_model.general ();
    objective = Objective.proportional ~delta:0.1;
    train_budget_s = 120.;
  }

let delta1 = { delta01 with table = "delta1"; objective = Objective.proportional ~delta:1.0 }

let delta10 =
  { delta01 with table = "delta10"; objective = Objective.proportional ~delta:10.0 }

let onex =
  {
    table = "onex";
    model = Net_model.onex ();
    objective = Objective.proportional ~delta:1.0;
    train_budget_s = 90.;
  }

let tenx = { onex with table = "tenx"; model = Net_model.tenx () }

let datacenter =
  {
    table = "datacenter";
    model = Net_model.datacenter ();
    objective = Objective.min_potential_delay;
    train_budget_s = 120.;
  }

let coexist =
  {
    table = "coexist";
    model = Net_model.coexist ();
    objective = Objective.proportional ~delta:1.0;
    train_budget_s = 90.;
  }

let all = [ delta01; delta1; delta10; onex; tenx; datacenter; coexist ]

let load_or_train ?(progress = fun _ -> ()) spec =
  match load spec.table with
  | Ok tree -> tree
  | Error _ ->
    progress
      (Printf.sprintf
         "table %s missing under %s; training a fallback (%.0f s budget) — run \
          bin/remy_train for a better one"
         spec.table (data_dir ()) spec.train_budget_s);
    let config =
      Optimizer.default_config ~specimens_per_step:8
        ~candidate_multipliers:[ 1.; 8. ] ~wall_budget_s:spec.train_budget_s
        ~seed:20130812 ~model:spec.model ~objective:spec.objective ()
    in
    let report =
      Optimizer.design
        ~progress:(fun ev -> progress (Format.asprintf "%a" Optimizer.pp_event ev))
        config
    in
    Rule_tree.save (path spec.table) report.Optimizer.tree;
    report.Optimizer.tree

let default_label spec =
  match spec.table with
  | "delta01" -> "Remy d=0.1"
  | "delta1" -> "Remy d=1"
  | "delta10" -> "Remy d=10"
  | "onex" -> "Remy 1x"
  | "tenx" -> "Remy 10x"
  | "datacenter" -> "RemyCC (DropTail)"
  | other -> "Remy " ^ other

let scheme ?label spec =
  let name = match label with Some l -> l | None -> default_label spec in
  Schemes.remy ~name (load_or_train spec)
