(** Exact partition checking for axis-aligned half-open boxes.

    A rule table's geometric soundness claim — the boxes tile the memory
    domain with no gap and no double cover — is decidable exactly,
    without sampling: project every box bound onto each axis, forming an
    elementary grid whose cells are the finest regions any box boundary
    can distinguish.  Every box covers a whole number of cells, so
    counting how many boxes cover each cell midpoint settles coverage
    (count 0 is a hole) and disjointness (count 2 is an overlap) for the
    entire continuum, not just the points tested.  The witness point
    returned with each flaw is the midpoint of an offending cell.

    Used by {!Rule_tree.validate} (so loading a table proves the
    partition) and by the [remy_analysis] analyzer's verdicts. *)

type box = { lo : float array; hi : float array }
(** Half-open region: point [p] is inside iff
    [lo.(d) <= p.(d) < hi.(d)] for every dimension [d]. *)

type flaw =
  | Degenerate of { box : int; dim : int }
      (** a bound is non-finite, or [lo >= hi] — the box is empty *)
  | Escape of { box : int; dim : int }
      (** the box spills outside the domain *)
  | Overlap of { a : int; b : int; point : float array }
      (** boxes [a] and [b] both contain [point] *)
  | Gap of { point : float array }  (** no box contains [point] *)

val check : lo:float array -> hi:float array -> box array -> (unit, flaw) result
(** [check ~lo ~hi boxes] proves the boxes partition the domain
    [\[lo, hi)], or returns the first flaw found (degenerate and escaped
    boxes first, then overlaps in preference to gaps, so the most
    actionable defect is named).  Box indices in flaws are positions in
    [boxes].  Exact: no false verdicts in either direction.  Raises
    [Invalid_argument] if the domain itself is empty or the elementary
    grid would exceed about 2^28 cells (adversarially non-aligned box
    sets only; octree-derived tables share bounds heavily). *)

val contains : box -> float array -> bool
(** Half-open membership test (the same one {!check}'s grid argument is
    about) — exposed for Monte-Carlo cross-checks in tests. *)

val pp_flaw : Format.formatter -> flaw -> unit
