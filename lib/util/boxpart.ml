type box = { lo : float array; hi : float array }

type flaw =
  | Degenerate of { box : int; dim : int }
  | Escape of { box : int; dim : int }
  | Overlap of { a : int; b : int; point : float array }
  | Gap of { point : float array }

let max_cells = 1 lsl 28

let contains b p =
  let ok = ref true in
  for d = 0 to Array.length p - 1 do
    if not (b.lo.(d) <= p.(d) && p.(d) < b.hi.(d)) then ok := false
  done;
  !ok

(* Index of [v] in sorted array [a]; bounds fed to the grid are exact
   copies of grid coordinates, so equality search never misses. *)
let find_exact (a : float array) v =
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < v then lo := mid + 1 else hi := mid
  done;
  assert (a.(!lo) = v);
  !lo

let check ~lo:dom_lo ~hi:dom_hi boxes =
  let dims = Array.length dom_lo in
  for d = 0 to dims - 1 do
    if not (dom_lo.(d) < dom_hi.(d)) then
      invalid_arg "Boxpart.check: empty domain"
  done;
  let n = Array.length boxes in
  (* Pass 1: per-box sanity, before any geometry. *)
  let flaw = ref None in
  let note f = if !flaw = None then flaw := Some f in
  Array.iteri
    (fun i b ->
      for d = 0 to dims - 1 do
        if
          not
            (Float.is_finite b.lo.(d) && Float.is_finite b.hi.(d)
            && b.lo.(d) < b.hi.(d))
        then note (Degenerate { box = i; dim = d })
        else if b.lo.(d) < dom_lo.(d) || b.hi.(d) > dom_hi.(d) then
          note (Escape { box = i; dim = d })
      done)
    boxes;
  match !flaw with
  | Some f -> Error f
  | None ->
    (* Elementary grid: distinct coordinates per dimension. *)
    let coords =
      Array.init dims (fun d ->
          let all =
            Array.init ((2 * n) + 2) (fun i ->
                if i = 2 * n then dom_lo.(d)
                else if i = 2 * n + 1 then dom_hi.(d)
                else if i land 1 = 0 then boxes.(i / 2).lo.(d)
                else boxes.(i / 2).hi.(d))
          in
          Array.sort Float.compare all;
          let uniq = ref [ all.(0) ] in
          Array.iter (fun v -> if v > List.hd !uniq then uniq := v :: !uniq) all;
          Array.of_list (List.rev !uniq))
    in
    let spans = Array.map (fun c -> Array.length c - 1) coords in
    let cells = Array.fold_left ( * ) 1 spans in
    if cells > max_cells || cells <= 0 then
      invalid_arg "Boxpart.check: elementary grid too large";
    (* Column-major strides: cell (i_0 .. i_{dims-1}) lives at
       sum_d i_d * stride_d. *)
    let strides = Array.make dims 1 in
    for d = dims - 2 downto 0 do
      strides.(d) <- strides.(d + 1) * spans.(d + 1)
    done;
    let counts = Bytes.make cells '\000' in
    (* Mark every cell of every box, saturating at 2. *)
    let rec mark b d base =
      if d = dims then begin
        let c = Bytes.unsafe_get counts base in
        if c < '\002' then
          Bytes.unsafe_set counts base (Char.chr (Char.code c + 1))
      end
      else begin
        let i0 = find_exact coords.(d) b.lo.(d) in
        let i1 = find_exact coords.(d) b.hi.(d) in
        for i = i0 to i1 - 1 do
          mark b (d + 1) (base + (i * strides.(d)))
        done
      end
    in
    Array.iter (fun b -> mark b 0 0) boxes;
    (* One scan names the verdict.  Overlaps outrank gaps: a shifted box
       usually causes both, and the colliding pair is the useful lead. *)
    let midpoint cell =
      Array.init dims (fun d ->
          let i = cell / strides.(d) mod spans.(d) in
          (coords.(d).(i) +. coords.(d).(i + 1)) /. 2.)
    in
    let first_gap = ref None and first_overlap = ref None in
    for cell = 0 to cells - 1 do
      match Bytes.unsafe_get counts cell with
      | '\000' -> if !first_gap = None then first_gap := Some cell
      | '\001' -> ()
      | _ -> if !first_overlap = None then first_overlap := Some cell
    done;
    (match (!first_overlap, !first_gap) with
    | Some cell, _ ->
      let point = midpoint cell in
      let owners = ref [] in
      Array.iteri (fun i b -> if contains b point then owners := i :: !owners) boxes;
      (match List.rev !owners with
      | a :: b :: _ -> Error (Overlap { a; b; point })
      | _ -> assert false)
    | None, Some cell -> Error (Gap { point = midpoint cell })
    | None, None -> Ok ())

let pp_point fmt p =
  Format.fprintf fmt "(";
  Array.iteri
    (fun i v -> Format.fprintf fmt "%s%g" (if i = 0 then "" else " ") v)
    p;
  Format.fprintf fmt ")"

let pp_flaw fmt = function
  | Degenerate { box; dim } ->
    Format.fprintf fmt "box %d is empty in dimension %d (lo >= hi or non-finite)"
      box dim
  | Escape { box; dim } ->
    Format.fprintf fmt "box %d escapes the domain in dimension %d" box dim
  | Overlap { a; b; point } ->
    Format.fprintf fmt "boxes %d and %d overlap at %a" a b pp_point point
  | Gap { point } -> Format.fprintf fmt "no box covers %a" pp_point point
