(* Hierarchical timing wheel keyed by [(priority, sequence)].

   Drop-in alternative to {!Heap} for the simulator agenda: same FIFO
   tie-break contract (ties on priority pop in insertion order), but
   amortized O(1) push/pop instead of O(log n), which is what matters
   once thousands of flows keep tens of thousands of events pending.

   Layout.  Priorities are quantized to integer ticks of [granularity]
   seconds (1 µs by default).  Three levels of 1024 slots each cover a
   2^30-tick horizon (~17 minutes at 1 µs); the wide, flat levels are
   deliberate: a level-0 slot spans 1 tick and level 0 spans ~1 ms, so
   the microsecond-scale deltas a packet simulation generates
   (transmission times, propagation legs, sub-ms pacing) file directly
   at level 0 and never cascade.

   Storage.  Events live in one structure-of-arrays pool (a float
   priority column, a value column, and an interleaved seq/next int
   column so a node's two ints share a cache line) recycled through a
   free list, so the
   working set stays a single contiguous region about the size of the
   pending count; a slot is an intrusive singly-linked list threaded
   through the pool's [next] column (head index per slot, -1 empty).
   Pushing prepends to a list (two int stores into hot memory),
   cascading relinks nodes without touching the payload, and nothing
   per-slot is ever allocated.  Occupancy per level is a two-tier
   bitmap — 32 words of 32 slot bits plus a 32-bit summary — so
   finding the next nonempty slot is two find-first-set steps, not a
   scan.

   Filing rule.  An event files at the lowest level [l] whose
   level-(l+1) window contains both the event's tick and the cursor
   (bits above [(l+1)*10] agree); ticks beyond the top-level window go
   to an overflow heap keyed lexicographically by (priority, seq).
   This window-aligned rule (rather than the classic delta-magnitude
   rule) gives the invariant that every level-l event lies in the
   cursor's current level-(l+1) window, so a seek scans each level
   only from the cursor's slot to the end of the window, and the
   bucket on the cursor's own path at every level >= 1 is empty.

   Pop.  The next nonempty slot found at level 0 is copied into a
   drain buffer, sorted by (priority, seq) — ticks quantize priorities
   monotonically, so (tick, priority, seq) order equals the heap's
   global (priority, seq) order and the two structures pop
   identically, which test_timing_wheel proves by QCheck oracle.
   Lists come out newest-first, so the drain fills backwards; a pure
   push-order list then lands already sorted and the O(n) sortedness
   check skips the sort (small out-of-order residues after a cascade
   take an in-place insertion sort, large ones a permutation sort).
   Slots found at higher levels redistribute strictly downward and
   the scan restarts; each event cascades at most [levels] times in
   its life.

   Rewind.  Pushing below the cursor (impossible from the engine,
   whose clock clamps schedule times, but allowed by the generic
   contract) rebuilds the whole structure at the earlier cursor — O(n),
   documented as the cold path. *)

let bits = 10
let slots = 1024 (* 1 lsl bits *)
let mask = slots - 1
let levels = 3

(* Window sizes per level: an event belongs at level [l] iff its tick
   agrees with the cursor above bit [(l+1)*bits], i.e. the xor of the
   two is < [w(l+1)].  Precomputed so [file] is a compare ladder, not
   a shift loop. *)
let w1 = 1 lsl bits
let w2 = 1 lsl (2 * bits)
let w3 = 1 lsl (3 * bits)

type 'a t = {
  granularity : float;
  inv_granularity : float; (* 1 / granularity; quantize by multiply *)
  (* Event pool: index = node id.  The two int columns (seq, next) are
     interleaved in [emeta] — seq at [2i], next at [2i+1] — so filing
     and draining a node touch one int cache line, not two; [next]
     doubles as the slot-list link and the free-list link.  Indices
     >= hw have never been used. *)
  mutable eprios : float array;
  mutable emeta : int array; (* 2 ints per node: seq, next *)
  mutable evals : 'a array;
  mutable free : int; (* free-list head, -1 when empty *)
  mutable hw : int; (* pool high-water mark *)
  heads : int array array; (* levels x slots: list head node, -1 empty *)
  occ : int array array; (* levels x 32 words of 32 slot bits *)
  summ : int array; (* per-level 32-bit mask of nonzero occ words *)
  mutable cur_tick : int;
  mutable next_seq : int;
  mutable count : int; (* wheel + drain remainder + overflow *)
  mutable osize : int; (* of [count], how many sit in overflow *)
  (* Drain buffer: the active tick's events in pop order. *)
  mutable dprios : float array;
  mutable dseqs : int array;
  mutable dvals : 'a array;
  mutable dpos : int;
  mutable dlen : int;
  (* Scratch for the large-slot permutation sort, grown with the
     drain; persistent so a busy slot never allocates per load. *)
  mutable sperm : int array;
  mutable sprios : float array;
  mutable sseqs : int array;
  mutable svals : 'a array;
  (* Overflow min-heap, keyed lexicographically by (prio, seq). *)
  mutable oprios : float array;
  mutable oseqs : int array;
  mutable ovals : 'a array;
}

let default_granularity = 1e-6

let create ?(granularity = default_granularity) () =
  if not (granularity > 0.) then
    invalid_arg "Timing_wheel.create: granularity must be positive";
  {
    granularity;
    inv_granularity = 1. /. granularity;
    eprios = [||];
    emeta = [||];
    evals = [||];
    free = -1;
    hw = 0;
    heads = Array.init levels (fun _ -> Array.make slots (-1));
    occ = Array.init levels (fun _ -> Array.make 32 0);
    summ = Array.make levels 0;
    cur_tick = 0;
    next_seq = 0;
    count = 0;
    osize = 0;
    dprios = [||];
    dseqs = [||];
    dvals = [||];
    dpos = 0;
    dlen = 0;
    sperm = [||];
    sprios = [||];
    sseqs = [||];
    svals = [||];
    oprios = [||];
    oseqs = [||];
    ovals = [||];
  }

(* Quantization saturates at +-1e15 ticks (beyond any horizon, well
   within the float-exact integer range) so that infinities and
   absurd priorities still order consistently instead of overflowing
   int_of_float.  Truncation toward zero rather than floor is fine,
   and so is multiplying by the precomputed reciprocal rather than
   dividing: the mapping only needs to be monotone (multiplication by
   a positive constant is), and equal-tick events are re-sorted by
   exact priority in the drain. *)
let tick_of_prio t prio =
  int_of_float (Float.min (Float.max (prio *. t.inv_granularity) (-1e15)) 1e15)

(* Index of the lowest set bit of [m] (m <> 0, bits 0..31): isolate it
   with [m land (-m)], then read its position off five mask tests.
   Pure integer arithmetic, so deterministic everywhere. *)
let lowest_bit m =
  let b = m land (-m) in
  (if b land 0xAAAAAAAA <> 0 then 1 else 0)
  lor (if b land 0xCCCCCCCC <> 0 then 2 else 0)
  lor (if b land 0xF0F0F0F0 <> 0 then 4 else 0)
  lor (if b land 0xFF00FF00 <> 0 then 8 else 0)
  lor (if b land 0xFFFF0000 <> 0 then 16 else 0)

(* --- occupancy ------------------------------------------------------ *)

let occ_set t l slot =
  let words = Array.unsafe_get t.occ l in
  let w = slot asr 5 in
  Array.unsafe_set words w (Array.unsafe_get words w lor (1 lsl (slot land 31)));
  Array.unsafe_set t.summ l (Array.unsafe_get t.summ l lor (1 lsl w))

let occ_clear t l slot =
  let words = Array.unsafe_get t.occ l in
  let w = slot asr 5 in
  let nw = Array.unsafe_get words w land lnot (1 lsl (slot land 31)) in
  Array.unsafe_set words w nw;
  if nw = 0 then
    Array.unsafe_set t.summ l (Array.unsafe_get t.summ l land lnot (1 lsl w))

(* First occupied slot at level [l] at or after [pos], or -1.  The
   shift [(-1) lsl (w + 1)] is safe even at w = 31: OCaml shifts by up
   to 62 are defined, and the summary has no bits at or above 32. *)
let occ_find_from t l pos =
  let words = Array.unsafe_get t.occ l in
  let w = pos asr 5 in
  let m = Array.unsafe_get words w land (-1 lsl (pos land 31)) in
  if m <> 0 then (w lsl 5) lor lowest_bit m
  else begin
    let sm = Array.unsafe_get t.summ l land (-1 lsl (w + 1)) in
    if sm = 0 then -1
    else begin
      let w' = lowest_bit sm in
      (w' lsl 5) lor lowest_bit (Array.unsafe_get words w')
    end
  end

(* --- event pool ----------------------------------------------------- *)

let pool_grow t filler =
  let cap = Array.length t.evals in
  let new_cap = max 16 (2 * cap) in
  let eprios = Array.make new_cap 0. in
  let emeta = Array.make (2 * new_cap) (-1) in
  let evals = Array.make new_cap filler in
  Array.blit t.eprios 0 eprios 0 t.hw;
  Array.blit t.emeta 0 emeta 0 (2 * t.hw);
  Array.blit t.evals 0 evals 0 t.hw;
  t.eprios <- eprios;
  t.emeta <- emeta;
  t.evals <- evals

(* Take a node off the free list (or extend the high-water mark) and
   fill it.  The caller links it into a slot. *)
let pool_alloc t prio seq v =
  let i =
    if t.free >= 0 then begin
      let i = t.free in
      t.free <- Array.unsafe_get t.emeta ((2 * i) + 1);
      i
    end
    else begin
      if t.hw >= Array.length t.evals then pool_grow t v;
      let i = t.hw in
      t.hw <- i + 1;
      i
    end
  in
  Array.unsafe_set t.eprios i prio;
  Array.unsafe_set t.emeta (2 * i) seq;
  Array.unsafe_set t.evals i v;
  i

(* --- overflow heap ------------------------------------------------- *)

let obefore p1 s1 p2 s2 = p1 < p2 || (p1 = p2 && s1 < s2)

let overflow_grow t filler =
  let cap = Array.length t.ovals in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let oprios = Array.make new_cap 0. in
  let oseqs = Array.make new_cap 0 in
  let ovals = Array.make new_cap filler in
  Array.blit t.oprios 0 oprios 0 t.osize;
  Array.blit t.oseqs 0 oseqs 0 t.osize;
  Array.blit t.ovals 0 ovals 0 t.osize;
  t.oprios <- oprios;
  t.oseqs <- oseqs;
  t.ovals <- ovals

let overflow_push t prio seq v =
  if t.osize >= Array.length t.ovals then overflow_grow t v;
  let i = ref t.osize in
  t.osize <- t.osize + 1;
  let moving = ref true in
  while !moving && !i > 0 do
    let parent = (!i - 1) / 2 in
    if obefore prio seq t.oprios.(parent) t.oseqs.(parent) then begin
      t.oprios.(!i) <- t.oprios.(parent);
      t.oseqs.(!i) <- t.oseqs.(parent);
      t.ovals.(!i) <- t.ovals.(parent);
      i := parent
    end
    else moving := false
  done;
  t.oprios.(!i) <- prio;
  t.oseqs.(!i) <- seq;
  t.ovals.(!i) <- v

let overflow_remove_top t =
  let n = t.osize - 1 in
  t.osize <- n;
  if n > 0 then begin
    let lp = t.oprios.(n) and ls = t.oseqs.(n) and lv = t.ovals.(n) in
    let i = ref 0 in
    let moving = ref true in
    while !moving do
      let l = (2 * !i) + 1 in
      if l >= n then moving := false
      else begin
        let r = l + 1 in
        let c =
          if r < n && obefore t.oprios.(r) t.oseqs.(r) t.oprios.(l) t.oseqs.(l)
          then r
          else l
        in
        if obefore t.oprios.(c) t.oseqs.(c) lp ls then begin
          t.oprios.(!i) <- t.oprios.(c);
          t.oseqs.(!i) <- t.oseqs.(c);
          t.ovals.(!i) <- t.ovals.(c);
          i := c
        end
        else moving := false
      end
    done;
    t.oprios.(!i) <- lp;
    t.oseqs.(!i) <- ls;
    t.ovals.(!i) <- lv
  end

(* --- filing -------------------------------------------------------- *)

(* Level for a wheel-bound tick: [tick lxor cur_tick] has its highest
   set bit exactly where the two first disagree, so the level test
   "bits above [(l+1)*bits] agree" is a compare ladder against the
   precomputed windows.  Caller has already ruled out overflow
   ([x < 0] means the sign bits differ, which implies the top-level
   windows do too). *)

(* Link pool node [i] into the slot for [tick] at level [l]. *)
(* remy-lint: hot *)
let link t l tick i =
  let slot = (tick asr (l * bits)) land mask in
  let row = Array.unsafe_get t.heads l in
  Array.unsafe_set t.emeta ((2 * i) + 1) (Array.unsafe_get row slot);
  Array.unsafe_set row slot i;
  occ_set t l slot

(* File a fresh event whose tick is >= cur_tick.  Never touches the
   drain. *)
(* remy-lint: hot *)
let file t tick prio seq v =
  let x = tick lxor t.cur_tick in
  if x < 0 || x >= w3 then overflow_push t prio seq v
  else begin
    let l = if x < w1 then 0 else if x < w2 then 1 else 2 in
    link t l tick (pool_alloc t prio seq v)
  end

(* --- drain --------------------------------------------------------- *)

let drain_ensure t n filler =
  if Array.length t.dvals < n then begin
    let cap = ref (max 16 (Array.length t.dvals)) in
    while !cap < n do
      cap := !cap * 2
    done;
    t.dprios <- Array.make !cap 0.;
    t.dseqs <- Array.make !cap 0;
    t.dvals <- Array.make !cap filler
  end

(* Load the level-0 slot [slot] into the drain, sorted by (prio, seq),
   and return its nodes to the free list.  The list is newest-first,
   so filling backwards lands a pure push-order slot already sorted
   and the O(n) check skips the sort; out-of-order residues (possible
   after a cascade interleaves with fresh pushes) get an in-place
   insertion sort when small and a permutation sort when large.
   (prio, seq) keys are unique, so either sort is deterministic. *)
let load_drain t slot =
  let row = Array.unsafe_get t.heads 0 in
  let head = Array.unsafe_get row slot in
  Array.unsafe_set row slot (-1);
  occ_clear t 0 slot;
  let em = t.emeta in
  let n = ref 0 in
  let i = ref head in
  while !i >= 0 do
    incr n;
    i := Array.unsafe_get em ((2 * !i) + 1)
  done;
  let n = !n in
  drain_ensure t n (Array.unsafe_get t.evals head);
  let dp = t.dprios and ds = t.dseqs and dv = t.dvals in
  let ep = t.eprios and ev = t.evals in
  (* Fill backwards (the list is newest-first) and check sortedness on
     the fly against the entry just written at [k + 1]. *)
  let sorted = ref true in
  let k = ref (n - 1) in
  let i = ref head in
  while !i >= 0 do
    let idx = !i in
    let nx = Array.unsafe_get em ((2 * idx) + 1) in
    let p = Array.unsafe_get ep idx and s = Array.unsafe_get em (2 * idx) in
    Array.unsafe_set dp !k p;
    Array.unsafe_set ds !k s;
    Array.unsafe_set dv !k (Array.unsafe_get ev idx);
    (if !k < n - 1 then
       let np = Array.unsafe_get dp (!k + 1) in
       if not (p < np || (p = np && s < Array.unsafe_get ds (!k + 1))) then
         sorted := false);
    Array.unsafe_set em ((2 * idx) + 1) t.free;
    t.free <- idx;
    decr k;
    i := nx
  done;
  (if not !sorted then
     if n <= 32 then
       for i = 1 to n - 1 do
         let p = dp.(i) and s = ds.(i) and v = dv.(i) in
         let j = ref (i - 1) in
         while !j >= 0 && (dp.(!j) > p || (dp.(!j) = p && ds.(!j) > s)) do
           dp.(!j + 1) <- dp.(!j);
           ds.(!j + 1) <- ds.(!j);
           dv.(!j + 1) <- dv.(!j);
           decr j
         done;
         dp.(!j + 1) <- p;
         ds.(!j + 1) <- s;
         dv.(!j + 1) <- v
       done
     else begin
       (* Persistent scratch: sort a permutation, then write back via
          copies of the three columns.  No allocation once the scratch
          has grown to the busiest slot's size. *)
       if Array.length t.sperm < Array.length dv then begin
         t.sperm <- Array.make (Array.length dv) 0;
         t.sprios <- Array.make (Array.length dv) 0.;
         t.sseqs <- Array.make (Array.length dv) 0;
         t.svals <- Array.make (Array.length dv) dv.(0)
       end;
       let perm = t.sperm in
       for i = 0 to n - 1 do
         perm.(i) <- i
       done;
       let sub = Array.sub perm 0 n in
       Array.sort
         (fun i j ->
           if dp.(i) < dp.(j) then -1
           else if dp.(i) > dp.(j) then 1
           else Int.compare ds.(i) ds.(j))
         sub;
       let sp = t.sprios and ss = t.sseqs and sv = t.svals in
       Array.blit dp 0 sp 0 n;
       Array.blit ds 0 ss 0 n;
       Array.blit dv 0 sv 0 n;
       for i = 0 to n - 1 do
         dp.(i) <- sp.(sub.(i));
         ds.(i) <- ss.(sub.(i));
         dv.(i) <- sv.(sub.(i))
       done
     end);
  t.dpos <- 0;
  t.dlen <- n

(* Doubling the drain arrays is the cold path of [drain_insert]; kept
   out of line so the hot path stays provably allocation-free. *)
let drain_grow t v =
  let cap = max 16 (2 * Array.length t.dvals) in
  let dprios = Array.make cap 0. in
  let dseqs = Array.make cap 0 in
  let dvals = Array.make cap v in
  Array.blit t.dprios 0 dprios 0 t.dlen;
  Array.blit t.dseqs 0 dseqs 0 t.dlen;
  Array.blit t.dvals 0 dvals 0 t.dlen;
  t.dprios <- dprios;
  t.dseqs <- dseqs;
  t.dvals <- dvals

(* First index in [lo, hi) whose priority exceeds [prio] — insertion
   keeps equal priorities in seq order because the probe is [<=]. *)
let rec drain_bsearch prios prio lo hi =
  if lo >= hi then lo
  else
    let mid = (lo + hi) / 2 in
    if Array.unsafe_get prios mid <= prio then drain_bsearch prios prio (mid + 1) hi
    else drain_bsearch prios prio lo mid

(* Insert into the active drain (same tick as the cursor, drain still
   being consumed).  The new event carries the largest seq ever
   issued, so it lands after every equal-priority entry; binary search
   over the remaining suffix keeps the common append case O(log n). *)
(* remy-lint: hot *)
let drain_insert t prio seq v =
  if t.dlen >= Array.length t.dvals then drain_grow t v;
  let at = drain_bsearch t.dprios prio t.dpos t.dlen in
  let tail = t.dlen - at in
  if tail > 0 then begin
    Array.blit t.dprios at t.dprios (at + 1) tail;
    Array.blit t.dseqs at t.dseqs (at + 1) tail;
    Array.blit t.dvals at t.dvals (at + 1) tail
  end;
  t.dprios.(at) <- prio;
  t.dseqs.(at) <- seq;
  t.dvals.(at) <- v;
  t.dlen <- t.dlen + 1

(* --- seek ---------------------------------------------------------- *)

(* Pull every overflow event that fits under the rebased horizon back
   into the wheel.  Overflow events all lie in strictly later
   top-level windows than any wheel event, so this only runs when the
   wheel is empty; the heap pops in (prio, seq) order and in-window
   ticks form a prefix of that order (quantization is monotone). *)
let rebase t =
  t.cur_tick <- tick_of_prio t t.oprios.(0);
  let top = t.cur_tick asr (levels * bits) in
  let continue_ = ref true in
  while !continue_ && t.osize > 0 do
    let prio = t.oprios.(0) in
    let tick = tick_of_prio t prio in
    if tick asr (levels * bits) = top then begin
      let seq = t.oseqs.(0) and v = t.ovals.(0) in
      overflow_remove_top t;
      file t tick prio seq v
    end
    else continue_ := false
  done

(* Advance the cursor to the next pending tick and load its events
   into the drain.  Precondition: count > dlen - dpos = remaining
   events exist outside the drain.  Higher-level slots found first
   redistribute strictly downward (a relink per node, no payload
   copies) and the scan restarts at level 0. *)
let seek t =
  let searching = ref true in
  while !searching do
    if t.count - t.osize = 0 then rebase t
    else begin
      let found_level = ref (-1) and found_slot = ref 0 in
      let l = ref 0 in
      while !found_level < 0 && !l < levels do
        let pos = (t.cur_tick asr (!l * bits)) land mask in
        (* Occupied slots at or after the cursor's slot in this
           level's current window; earlier slots are provably empty. *)
        let s = occ_find_from t !l pos in
        if s >= 0 then begin
          found_level := !l;
          found_slot := s
        end;
        incr l
      done;
      if !found_level < 0 then
        (* Unreachable: every wheel event sits at or after the
           cursor's slot in its level's current window. *)
        invalid_arg "Timing_wheel.seek: internal invariant broken"
      else if !found_level = 0 then begin
        let tick = ((t.cur_tick asr bits) lsl bits) lor !found_slot in
        t.cur_tick <- tick;
        load_drain t !found_slot;
        searching := false
      end
      else begin
        let lv = !found_level in
        let w = (lv + 1) * bits in
        let wstart =
          ((t.cur_tick asr w) lsl w) lor (!found_slot lsl (lv * bits))
        in
        if wstart > t.cur_tick then t.cur_tick <- wstart;
        let row = Array.unsafe_get t.heads lv in
        let head = Array.unsafe_get row !found_slot in
        Array.unsafe_set row !found_slot (-1);
        occ_clear t lv !found_slot;
        (* Relink strictly below [lv]: every node here shares the
           cursor's level-[lv] slot, so its xor with the cursor is
           below [w(lv)]. *)
        let em = t.emeta and ep = t.eprios in
        let i = ref head in
        while !i >= 0 do
          let idx = !i in
          let nx = Array.unsafe_get em ((2 * idx) + 1) in
          let tick = tick_of_prio t (Array.unsafe_get ep idx) in
          let x = tick lxor t.cur_tick in
          let l = if x < w1 then 0 else 1 in
          link t l tick idx;
          i := nx
        done
      end
    end
  done

(* --- rewind -------------------------------------------------------- *)

(* A push below the cursor: rebuild everything at the earlier cursor.
   O(n), but unreachable from the engine (its clock clamps schedule
   times to now), so only generic users pay for it. *)
let rewind t tick =
  let n = t.count in
  let prios = Array.make n 0. in
  let seqs = Array.make n 0 in
  let vals = ref [||] in
  let k = ref 0 in
  let take prio seq v =
    if Array.length !vals = 0 then vals := Array.make n v;
    prios.(!k) <- prio;
    seqs.(!k) <- seq;
    !vals.(!k) <- v;
    incr k
  in
  for l = 0 to levels - 1 do
    let row = t.heads.(l) in
    for j = 0 to slots - 1 do
      let i = ref row.(j) in
      while !i >= 0 do
        take t.eprios.(!i) t.emeta.(2 * !i) t.evals.(!i);
        i := t.emeta.((2 * !i) + 1)
      done;
      row.(j) <- -1
    done;
    Array.fill t.occ.(l) 0 32 0;
    t.summ.(l) <- 0
  done;
  for i = t.dpos to t.dlen - 1 do
    take t.dprios.(i) t.dseqs.(i) t.dvals.(i)
  done;
  t.dpos <- 0;
  t.dlen <- 0;
  for i = 0 to t.osize - 1 do
    take t.oprios.(i) t.oseqs.(i) t.ovals.(i)
  done;
  t.osize <- 0;
  t.free <- -1;
  t.hw <- 0;
  t.cur_tick <- tick;
  for i = 0 to !k - 1 do
    file t (tick_of_prio t prios.(i)) prios.(i) seqs.(i) !vals.(i)
  done

(* --- public api ---------------------------------------------------- *)

(* remy-lint: hot *)
let push t prio v =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let tick = tick_of_prio t prio in
  if t.dpos < t.dlen && tick = t.cur_tick then begin
    t.count <- t.count + 1;
    drain_insert t prio seq v
  end
  else if tick < t.cur_tick then begin
    rewind t tick;
    t.count <- t.count + 1;
    file t tick prio seq v
  end
  else begin
    t.count <- t.count + 1;
    file t tick prio seq v
  end

let size t = t.count
let is_empty t = t.count = 0

(* Drain reads are unsafe-indexed: [dpos < dlen <= capacity] holds
   whenever the drain is nonempty (load_drain and drain_insert keep
   the three arrays' lengths in lockstep). *)
(* remy-lint: hot *)
let min_prio t =
  if t.dpos < t.dlen then Array.unsafe_get t.dprios t.dpos
  else if t.count = 0 then Float.infinity
  else begin
    seek t;
    Array.unsafe_get t.dprios t.dpos
  end

(* remy-lint: hot *)
let pop_exn t =
  if t.count = 0 then invalid_arg "Timing_wheel.pop_exn: empty wheel";
  if t.dpos >= t.dlen then seek t;
  let v = Array.unsafe_get t.dvals t.dpos in
  t.dpos <- t.dpos + 1;
  t.count <- t.count - 1;
  v

let pop t =
  if t.count = 0 then None
  else begin
    let prio = min_prio t in
    let v = pop_exn t in
    Some (prio, v)
  end

let peek t =
  if t.count = 0 then None
  else begin
    let prio = min_prio t in
    Some (prio, t.dvals.(t.dpos))
  end

let clear t =
  (* Like {!Heap.clear}: keep every backing array for reuse; stale
     values stay reachable until overwritten. *)
  for l = 0 to levels - 1 do
    Array.fill t.heads.(l) 0 slots (-1);
    Array.fill t.occ.(l) 0 32 0;
    t.summ.(l) <- 0
  done;
  t.free <- -1;
  t.hw <- 0;
  t.osize <- 0;
  t.dpos <- 0;
  t.dlen <- 0;
  t.cur_tick <- 0;
  t.count <- 0
