(* Structure-of-arrays binary min-heap.  Priorities, sequence numbers and
   values live in three parallel arrays so that [push] allocates nothing
   on the steady state (the old representation boxed every entry in a
   3-field record, one minor-heap allocation per scheduled event).  The
   float array is unboxed, and both sifts move a "hole" instead of
   swapping, so each level costs one compare plus one slot copy. *)

type 'a t = {
  mutable prios : float array; (* slots >= size are junk *)
  mutable seqs : int array;
  mutable values : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  { prios = [||]; seqs = [||]; values = [||]; size = 0; next_seq = 0 }

let grow h filler =
  let cap = Array.length h.values in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let prios = Array.make new_cap 0. in
  let seqs = Array.make new_cap 0 in
  let values = Array.make new_cap filler in
  Array.blit h.prios 0 prios 0 h.size;
  Array.blit h.seqs 0 seqs 0 h.size;
  Array.blit h.values 0 values 0 h.size;
  h.prios <- prios;
  h.seqs <- seqs;
  h.values <- values

let push h prio value =
  if h.size >= Array.length h.values then grow h value;
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  let i = ref h.size in
  h.size <- h.size + 1;
  (* Sift the hole up.  The new entry carries the largest sequence number
     ever issued, so on a priority tie it sorts after every existing
     entry: the tie-break never moves it, and [prio < parent] suffices. *)
  let moving = ref true in
  while !moving && !i > 0 do
    let parent = (!i - 1) / 2 in
    if prio < h.prios.(parent) then begin
      h.prios.(!i) <- h.prios.(parent);
      h.seqs.(!i) <- h.seqs.(parent);
      h.values.(!i) <- h.values.(parent);
      i := parent
    end
    else moving := false
  done;
  h.prios.(!i) <- prio;
  h.seqs.(!i) <- seq;
  h.values.(!i) <- value

let peek h = if h.size = 0 then None else Some (h.prios.(0), h.values.(0))

let min_prio h = if h.size = 0 then Float.infinity else h.prios.(0)

let remove_top h =
  let n = h.size - 1 in
  h.size <- n;
  if n > 0 then begin
    (* The displaced last entry sinks from the root as a hole. *)
    let lp = h.prios.(n) and ls = h.seqs.(n) and lv = h.values.(n) in
    let i = ref 0 in
    let moving = ref true in
    while !moving do
      let l = (2 * !i) + 1 in
      if l >= n then moving := false
      else begin
        let r = l + 1 in
        let c =
          if
            r < n
            && (h.prios.(r) < h.prios.(l)
               || (h.prios.(r) = h.prios.(l) && h.seqs.(r) < h.seqs.(l)))
          then r
          else l
        in
        if
          h.prios.(c) < lp || (h.prios.(c) = lp && h.seqs.(c) < ls)
        then begin
          h.prios.(!i) <- h.prios.(c);
          h.seqs.(!i) <- h.seqs.(c);
          h.values.(!i) <- h.values.(c);
          i := c
        end
        else moving := false
      end
    done;
    h.prios.(!i) <- lp;
    h.seqs.(!i) <- ls;
    h.values.(!i) <- lv
  end

let pop_exn h =
  if h.size = 0 then invalid_arg "Heap.pop_exn: empty heap";
  let v = h.values.(0) in
  remove_top h;
  v

let pop h =
  if h.size = 0 then None
  else begin
    let prio = h.prios.(0) in
    let v = h.values.(0) in
    remove_top h;
    Some (prio, v)
  end

let size h = h.size
let is_empty h = h.size = 0

let capacity h = Array.length h.values

let clear h =
  (* Keep the backing arrays: a cleared heap is about to be refilled (the
     engine reuses event queues across replications), and regrowing from
     16 on every reuse showed up in the optimizer profile.  Slots >= size
     are junk, so old values stay reachable until overwritten. *)
  h.size <- 0
