type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable entries : 'a entry array;  (* slots >= size are junk *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { entries = [||]; size = 0; next_seq = 0 }

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow h =
  let cap = Array.length h.entries in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  (* Fill with an existing entry or leave empty when size = 0. *)
  if h.size = 0 then h.entries <- [||]
  else begin
    let bigger = Array.make new_cap h.entries.(0) in
    Array.blit h.entries 0 bigger 0 h.size;
    h.entries <- bigger
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h.entries.(i) h.entries.(parent) then begin
      let tmp = h.entries.(i) in
      h.entries.(i) <- h.entries.(parent);
      h.entries.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < h.size && less h.entries.(left) h.entries.(!smallest) then smallest := left;
  if right < h.size && less h.entries.(right) h.entries.(!smallest) then smallest := right;
  if !smallest <> i then begin
    let tmp = h.entries.(i) in
    h.entries.(i) <- h.entries.(!smallest);
    h.entries.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h prio value =
  let entry = { prio; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if h.size >= Array.length h.entries then begin
    if Array.length h.entries = 0 then h.entries <- Array.make 16 entry else grow h
  end;
  h.entries.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some (h.entries.(0).prio, h.entries.(0).value)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.entries.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.entries.(0) <- h.entries.(h.size);
      sift_down h 0
    end;
    Some (top.prio, top.value)
  end

let size h = h.size
let is_empty h = h.size = 0

let capacity h = Array.length h.entries

let clear h =
  (* Keep the backing array: a cleared heap is about to be refilled (the
     engine reuses event queues across replications), and regrowing from
     16 on every reuse showed up in the optimizer profile.  Slots >= size
     are junk, so old values stay reachable until overwritten. *)
  h.size <- 0
