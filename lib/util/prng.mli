(** Deterministic pseudo-random number generator.

    A self-contained xoshiro256** generator seeded through SplitMix64, so
    that every stochastic component of the simulator and of the Remy
    optimizer is reproducible from a single integer seed.  Independent
    streams are derived with {!split}, which is how per-specimen and
    per-replication randomness is isolated: two simulations given streams
    split from the same root never share state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed.  Equal seeds give
    equal streams. *)

val split : t -> t
(** [split t] derives an independent child generator, advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy replays [t]'s future draws. *)

val state : t -> int64 array
(** The four xoshiro256** state words, for checkpointing.  Restoring
    them with {!of_state} replays the generator's future draws exactly. *)

val of_state : int64 array -> (t, string) result
(** Rebuild a generator from {!state} output.  Rejects anything but four
    words, and the degenerate all-zero state (from which xoshiro never
    escapes). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)].  [bound] must be
    positive and finite. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)].  [bound > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] draws uniformly from [\[lo, hi)]. *)
