(** Minimal s-expression reader/writer.

    Used to persist trained RemyCC rule tables ([data/*.rules]) and
    synthetic cellular traces in a human-readable, diff-friendly form with
    no external dependencies.  Floats round-trip exactly (hex float
    notation is accepted; the writer uses ["%.17g"]). *)

type t = Atom of string | List of t list

val to_string : t -> string
(** Render with minimal spacing. *)

val to_string_hum : t -> string
(** Render with one nested list per line (indented), for readable files. *)

val of_string : string -> (t, string) result
(** Parse one s-expression; trailing whitespace is allowed, trailing
    content is an error.  Atoms containing whitespace, parens, quotes or
    that are empty must be double-quoted; ["\\"] escapes within quotes.
    Errors carry a ["line L, column C:"] prefix; truncated input
    (unterminated list or string, dangling escape) is reported as such,
    pointing at the construct left open, and complete expressions
    followed by more content are rejected as trailing garbage. *)

val atom : string -> t
val list : t list -> t
val float : float -> t
val int : int -> t
val string : string -> t

val to_float : t -> (float, string) result
val to_int : t -> (int, string) result
val to_atom : t -> (string, string) result
val to_list : t -> (t list, string) result

val field : t -> string -> (t, string) result
(** [field (List [List [Atom k; v]; ...]) k] looks up an alist-style
    field: the first inner list whose head atom equals [k]; returns its
    single value, or the remaining list when more than one value. *)

val save : string -> t -> unit
(** Write to a file (atomically via a temp file + rename). *)

val load : string -> (t, string) result
