type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64 step, used only to expand seeds into full state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_state64 seed64 =
  let st = ref seed64 in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let create seed = of_state64 (Int64.of_int seed)

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_state64 (bits64 t)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }
let state t = [| t.s0; t.s1; t.s2; t.s3 |]

let of_state words =
  if Array.length words <> 4 then
    Error
      (Printf.sprintf "PRNG state must have 4 words, got %d" (Array.length words))
  else if Array.for_all (fun w -> w = 0L) words then
    Error "PRNG state must not be all zeroes"
  else Ok { s0 = words.(0); s1 = words.(1); s2 = words.(2); s3 = words.(3) }

(* 53 uniform mantissa bits, exact in [0,1). *)
let unit_float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float t bound =
  assert (bound > 0. && Float.is_finite bound);
  unit_float t *. bound

let int t bound =
  assert (bound > 0);
  (* Rejection-free for our purposes: modulo bias is negligible for
     bounds far below 2^63, which is all callers use. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int bound))

let bool t = Int64.logand (bits64 t) 1L = 1L
let uniform t lo hi = lo +. (unit_float t *. (hi -. lo))
