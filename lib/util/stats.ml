let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty";
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = quantile xs 0.5

let covariance xs ys =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Stats.covariance: length mismatch";
  if n < 2 then 0.
  else begin
    let mx = mean xs and my = mean ys in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. ((xs.(i) -. mx) *. (ys.(i) -. my))
    done;
    !acc /. float_of_int (n - 1)
  end

let standard_error xs =
  let n = Array.length xs in
  if n = 0 then nan else stddev xs /. sqrt (float_of_int n)

type running = { mutable count : int; mutable m : float; mutable m2 : float }

let running_create () = { count = 0; m = 0.; m2 = 0. }

let running_add r x =
  r.count <- r.count + 1;
  let delta = x -. r.m in
  r.m <- r.m +. (delta /. float_of_int r.count);
  r.m2 <- r.m2 +. (delta *. (x -. r.m))

let running_count r = r.count
let running_mean r = if r.count = 0 then nan else r.m

let running_variance r =
  if r.count < 2 then 0. else r.m2 /. float_of_int (r.count - 1)

let linear_fit points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Stats.linear_fit: need >= 2 points";
  let sx = ref 0. and sy = ref 0. and sxx = ref 0. and sxy = ref 0. in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    points;
  let nf = float_of_int n in
  let denom = (nf *. !sxx) -. (!sx *. !sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x";
  let slope = ((nf *. !sxy) -. (!sx *. !sy)) /. denom in
  let intercept = (!sy -. (slope *. !sx)) /. nf in
  (slope, intercept)
