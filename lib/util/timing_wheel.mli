(** Hierarchical timing wheel keyed by [(priority, sequence)].

    A drop-in alternative to {!Heap} for the simulator's event queue:
    identical observable contract — pops come out in [(priority,
    insertion-order)] order — but amortized O(1) push/pop instead of
    O(log n).  Priorities are quantized to integer ticks of
    [granularity] seconds and filed into three levels of 1024 slots
    (a 2^30-tick horizon); events live in one pooled
    structure-of-arrays region threaded into per-slot intrusive
    lists, with two-tier bitmaps locating the next occupied slot.
    Events within one tick are re-sorted by exact priority, so the
    quantization never reorders pops relative to the heap (proved by
    the QCheck oracle in test_timing_wheel).

    Pushing below the most recently popped priority is legal but
    rebuilds the wheel in O(n); the engine never does this (its clock
    clamps schedule times), so only generic users pay for it. *)

type 'a t

val default_granularity : float
(** 1e-6 — one microsecond per tick, giving a ~17-minute top-level
    horizon; later events spill into an overflow heap. *)

val create : ?granularity:float -> unit -> 'a t
(** Raises [Invalid_argument] unless [granularity > 0]. *)

val push : 'a t -> float -> 'a -> unit
(** [push t priority v] inserts [v].  Steady-state pushes allocate
    nothing (buckets are structure-of-arrays, grown geometrically). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element (FIFO among equal
    priorities). *)

val pop_exn : 'a t -> 'a
(** Allocation-free [pop]: returns just the minimum value; combine
    with {!min_prio} to read the priority first.  Raises
    [Invalid_argument] when empty. *)

val min_prio : 'a t -> float
(** Priority of the minimum element, or [Float.infinity] when empty.
    May advance the wheel's internal cursor (cascading far buckets
    down); the observable pop order is unaffected. *)

val peek : 'a t -> (float * 'a) option
val size : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Empty the wheel but keep every backing array, mirroring
    {!Heap.clear}: a cleared wheel is about to be refilled.  Stale
    values remain reachable until their slots are overwritten. *)
