(** Growable binary min-heap keyed by [(priority, sequence)].

    The simulator's event queue: ties on priority are broken by insertion
    order so that runs are fully deterministic regardless of heap
    internals. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> float -> 'a -> unit
(** [push h priority v] inserts [v].  Entries are kept in parallel
    (priority / sequence / value) arrays, so a steady-state push performs
    no allocation. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element (FIFO among equal
    priorities). *)

val pop_exn : 'a t -> 'a
(** Allocation-free [pop]: returns just the minimum value.  Combine with
    {!min_prio} to recover the priority first.  Raises
    [Invalid_argument] on an empty heap. *)

val min_prio : 'a t -> float
(** Priority of the minimum element, or [Float.infinity] when empty.
    Lets hot loops test "is the next event due?" without the option and
    tuple that {!peek} allocates. *)

val peek : 'a t -> (float * 'a) option
val size : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Empty the heap but keep the allocated backing array, so a reused
    heap does not regrow from scratch.  Previously stored values remain
    reachable (not collected) until their slots are overwritten. *)

val capacity : 'a t -> int
(** Allocated slots in the backing array (>= {!size}); observable so
    tests and benchmarks can assert {!clear} keeps capacity. *)
