type t = Atom of string | List of t list

let atom s = Atom s
let list l = List l
let float f = Atom (Printf.sprintf "%.17g" f)
let int i = Atom (string_of_int i)

let needs_quoting s =
  s = ""
  || String.exists
       (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '(' || c = ')' || c = '"' || c = ';')
       s

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      (match c with
      | '"' | '\\' -> Buffer.add_char buf '\\'
      | _ -> ());
      Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let string s = Atom s

let render_atom s = if needs_quoting s then escape s else s

let rec write buf = function
  | Atom s -> Buffer.add_string buf (render_atom s)
  | List items ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ' ';
        write buf item)
      items;
    Buffer.add_char buf ')'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

let rec write_hum buf indent = function
  | Atom _ as a -> write buf a
  | List items when List.for_all (function Atom _ -> true | List _ -> false) items ->
    write buf (List items)
  | List items ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf '\n';
          Buffer.add_string buf (String.make (indent + 1) ' ')
        end;
        write_hum buf (indent + 1) item)
      items;
    Buffer.add_char buf ')'

let to_string_hum t =
  let buf = Buffer.create 1024 in
  write_hum buf 0 t;
  Buffer.contents buf

exception Parse_error of int * string
(* Internal: offset into the input + message.  [of_string] converts the
   offset to a line/column pair before surfacing the error. *)

let line_col input pos =
  let pos = min pos (String.length input) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to pos - 1 do
    if input.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, pos - !bol + 1)

let of_string input =
  let len = String.length input in
  let pos = ref 0 in
  let peek () = if !pos < len then Some input.[!pos] else None in
  let advance () = incr pos in
  let fail at msg = raise (Parse_error (at, msg)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some ';' ->
      (* comment to end of line *)
      while !pos < len && input.[!pos] <> '\n' do
        advance ()
      done;
      skip_ws ()
    | _ -> ()
  in
  let parse_quoted () =
    let opened = !pos in
    advance ();
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail opened "truncated input: unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> fail (!pos - 1) "truncated input: dangling escape"
        | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ())
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Atom (Buffer.contents buf)
  in
  let parse_bare () =
    let start = !pos in
    let is_delim c =
      c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '(' || c = ')' || c = '"' || c = ';'
    in
    while !pos < len && not (is_delim input.[!pos]) do
      advance ()
    done;
    if !pos = start then fail start "empty atom";
    Atom (String.sub input start (!pos - start))
  in
  let rec parse () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "truncated input: unexpected end of input"
    | Some '(' ->
      let opened = !pos in
      advance ();
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        match peek () with
        | None -> fail opened "truncated input: unterminated list opened here"
        | Some ')' -> advance ()
        | Some _ ->
          items := parse () :: !items;
          loop ()
      in
      loop ();
      List (List.rev !items)
    | Some ')' -> fail !pos "unexpected )"
    | Some '"' -> parse_quoted ()
    | Some _ -> parse_bare ()
  in
  match parse () with
  | result ->
    skip_ws ();
    if !pos < len then begin
      let line, col = line_col input !pos in
      Error (Printf.sprintf "line %d, column %d: trailing garbage after expression" line col)
    end
    else Ok result
  | exception Parse_error (at, msg) ->
    let line, col = line_col input at in
    Error (Printf.sprintf "line %d, column %d: %s" line col msg)

let to_atom = function
  | Atom s -> Ok s
  | List _ -> Error "expected atom, got list"

let to_list = function
  | List l -> Ok l
  | Atom s -> Error (Printf.sprintf "expected list, got atom %S" s)

let to_float t =
  match to_atom t with
  | Error _ as e -> e
  | Ok s -> (
    match float_of_string_opt s with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "not a float: %S" s))

let to_int t =
  match to_atom t with
  | Error _ as e -> e
  | Ok s -> (
    match int_of_string_opt s with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "not an int: %S" s))

let field t key =
  match t with
  | Atom _ -> Error "field lookup in atom"
  | List items ->
    let rec find = function
      | [] -> Error (Printf.sprintf "missing field %S" key)
      | List (Atom k :: rest) :: _ when k = key -> (
        match rest with
        | [ single ] -> Ok single
        | _ -> Ok (List rest))
      | _ :: tl -> find tl
    in
    find items

(* Atomic *and durable*: tmp + fsync + rename + directory fsync.
   Without the file fsync, a crash after the rename can publish a name
   pointing at un-flushed data (an empty or torn table); without the
   directory fsync, the rename itself may not survive.  Directory fsync
   is best-effort — some filesystems refuse it. *)
let save path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc (to_string_hum t);
     output_char oc '\n';
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path;
  try
    let fd = Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  with Unix.Unix_error _ -> ()

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_string contents
  | exception Sys_error msg -> Error msg
