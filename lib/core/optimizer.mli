(** Remy's automated design procedure (Section 4.3).

    Starting from a single rule (m = 1, b = 1, r = 0.01 covering all of
    memory space), the optimizer repeats:

    + set all rules to the current epoch;
    + simulate on freshly drawn network specimens and find the most-used
      rule of this epoch;
    + improve that rule's action greedily: evaluate the Cartesian
      product of geometrically growing increments on the same specimens
      with the same seeds, adopt the best strictly improving candidate,
      and repeat until none improves; then advance the rule's epoch;
    + when the epoch's rules are exhausted, bump the global epoch; every
      [k_subdivide]-th epoch (K = 4 in the paper), split the most-used
      rule at the median memory point that triggered it into eight
      octants.

    Candidate evaluations run in parallel on a persistent domain pool
    ({!Par.Pool}) created once per {!design} run; each improvement round
    submits the whole candidate x specimen grid as one flat task array.
    When [incremental] (the default), specimens whose baseline run never
    consulted the rule under improvement are not re-simulated — their
    cached scores are reused, which is exact: an overridden rule that is
    never consulted cannot influence the simulation.  The procedure is
    deterministic given [seed]; neither the domain count nor the
    incremental cache affects results, only wall time.

    {2 Crash safety}

    The loop's unit of progress is the {e round}: one tally + one greedy
    improvement of the most-used rule.  All mutable state the future
    depends on (rule tree, PRNG, evaluation counters) is consistent
    exactly at round boundaries, so that is where {!design}:

    - writes checkpoints (when [checkpoint] is given) via the atomic
      {!Checkpoint.save} protocol, every [every_rounds] rounds and
      always at epoch boundaries;
    - honors [stop_requested] — the in-flight round is finished first,
      a final checkpoint is forced, and the report comes back with
      [interrupted = true].

    Resuming from the resulting snapshot ([resume]) continues the run
    {e bit-identically}: the final tree, score and evaluation counts
    equal those of an uninterrupted run.  {!config_fingerprint} guards
    against resuming under a different model/objective/search config. *)

type config = {
  model : Net_model.t;
  objective : Objective.t;
  specimens_per_step : int;  (** >= 16 in the paper *)
  domains : int;
  k_subdivide : int;  (** K; the paper uses 4 *)
  candidate_multipliers : float list;  (** geometric ladder, e.g. [1.;8.;64.] *)
  rounds_per_rule : int;
      (** cap on improvement iterations per rule per visit — bounds the
          greedy walk deterministically (wall-clock budgets cannot) *)
  max_epochs : int;  (** global-epoch budget *)
  max_rules : int;  (** stop subdividing beyond this many live rules *)
  prune_agreeing : bool;
      (** at each subdivision step, first collapse previous splits whose
          improved children still agree ({!Rule_tree.collapse_agreeing}) —
          the Section 4.3 future-work refinement *)
  incremental : bool;
      (** reuse cached baseline scores for specimens the candidate's rule
          never touched (default true; results are identical either way) *)
  wall_budget_s : float;  (** stop after this much wall-clock time *)
  seed : int;
  task_retries : int;
      (** re-run a raising pool task up to this many times before the
          run fails (default 1); tasks are pure, so retries absorb
          transient faults without affecting results *)
  stall_timeout_s : float option;
      (** enable {!Par.Pool}'s watchdog: abort (with the last checkpoint
          intact) if no task completes for this long (default off) *)
}

val default_config :
  ?specimens_per_step:int ->
  ?domains:int ->
  ?k_subdivide:int ->
  ?candidate_multipliers:float list ->
  ?rounds_per_rule:int ->
  ?max_epochs:int ->
  ?max_rules:int ->
  ?prune_agreeing:bool ->
  ?incremental:bool ->
  ?wall_budget_s:float ->
  ?seed:int ->
  ?task_retries:int ->
  ?stall_timeout_s:float ->
  model:Net_model.t ->
  objective:Objective.t ->
  unit ->
  config

val config_fingerprint : config -> string
(** Hex hash ({!Checkpoint.hash_hex}) of every config field that can
    influence the search trajectory: model, objective, seed and search
    parameters.  [domains], [incremental], [task_retries],
    [stall_timeout_s], [max_epochs] and [wall_budget_s] are excluded —
    they are provably result-invariant or extendable budgets — so a
    resumed run may change them freely. *)

type checkpoint_spec = {
  dir : string;  (** where [checkpoint.sexp] lives *)
  every_rounds : int;
      (** write every this-many rounds (epoch boundaries and interrupts
          always write; [<= 0] means only those forced writes) *)
}

type report = {
  tree : Rule_tree.t;
  epochs : int;  (** global epochs completed *)
  rounds : int;  (** improvement rounds completed (tally + greedy visit) *)
  improvements : int;  (** actions replaced *)
  subdivisions : int;
  evaluations : int;  (** candidate evaluations (each = one specimen batch) *)
  spec_sims : int;
      (** specimen simulations actually run during candidate rounds *)
  spec_skips : int;
      (** specimen simulations avoided by the incremental cache *)
  final_score : float;  (** last whole-table score observed *)
  interrupted : bool;
      (** [stop_requested] ended the run early; a final checkpoint was
          written if checkpointing was on *)
}

(** Structured progress events.  [Epoch_done] carries the
    {!Remy_obs.Telemetry.epoch} record for the global epoch that just
    finished — exactly one per completed epoch, so a JSONL file of them
    has [report.epochs] lines.  The other constructors narrate the inner
    loop at the same granularity the old string messages did. *)
type event =
  | Improving of { epoch : int; rule : int; uses : int; score : float }
      (** the tally ranked [rule] first; greedy improvement starts *)
  | Improved of { rule : int; action : Action.t; score : float }
      (** a candidate action strictly improved the score and was adopted *)
  | Subdivided of { rule : int; at : Memory.t; rules_now : int }
  | Pruned of { collapsed : int; rules_now : int }
  | Epoch_done of Remy_obs.Telemetry.epoch
  | Checkpoint_saved of {
      path : string;
      epoch : int;
      rounds : int;
      duration_s : float;
    }  (** a snapshot hit the disk (atomically) *)
  | Resumed of { epoch : int; rounds : int; elapsed_s : float }
      (** the run restarted from a snapshot instead of from scratch *)
  | Worker_retry of { task : int; attempt : int; error : string }
      (** a pool task raised and was re-run; reported at the next round
          boundary, from the main domain *)

val pp_event : Format.formatter -> event -> unit
(** Render an event as the one-line status message it replaces. *)

type eval_backend = {
  eval_baseline :
    ?tally:Tally.t ->
    Rule_tree.t ->
    Net_model.specimen list ->
    Evaluator.result * Evaluator.spec_cache array;
  eval_candidates :
    Rule_tree.t ->
    rule:int ->
    Action.t array ->
    Evaluator.spec_cache array ->
    float array * (int * int);
}
(** Pluggable evaluation engine.  The default (no [backend] passed to
    {!design}) is the in-process {!Par.Pool}; the distributed
    coordinator substitutes socket workers.  The contract that keeps
    results bit-identical across engines: [eval_baseline] must return
    scores/caches in specimen order with per-specimen tallies (seeded
    from the specimen seed) merged in specimen order, and
    [eval_candidates] must reduce the flattened candidates x resim grid
    with {!Evaluator.reduce_candidates} — i.e. both reduce in task
    order, never arrival order. *)

val design :
  ?backend:eval_backend ->
  ?progress:(event -> unit) ->
  ?checkpoint:checkpoint_spec ->
  ?resume:Checkpoint.snapshot ->
  ?stop_requested:(unit -> bool) ->
  ?on_round:(rounds:int -> Rule_tree.t -> unit) ->
  ?now0:float ->
  config ->
  report
(** Run the search.  [progress] receives structured {!event}s; use
    {!pp_event} to recover the legacy console lines.

    [backend] replaces the in-process pool with an external evaluation
    engine (distributed training); no pool is created, so [domains],
    [task_retries] and [stall_timeout_s] are inert and failures surface
    as the backend's own exceptions rather than {!Par.Task_failed}.

    [now0] (a {!Remy_obs.Clock.now_s} reading, default: taken on entry)
    is the monotonic epoch base of the run: telemetry [wall_s] and the
    wall budget are measured from it.  Callers that also stamp a run
    manifest should capture one reading and pass it here so both
    artifacts agree on when the run started.

    When {!Remy_obs.Profiler} is enabled, the run accumulates a phase
    tree: [design] > [baseline]/[round] > [eval] > [sim], plus
    [subdivide] and [checkpoint]; {!Remy_obs.Metrics} likewise gets
    [eval_round_s] and (via the evaluator) [sim_wall_s] samples.
    Instrumentation only observes — results are bit-identical with
    profiling/metrics on or off.

    [on_round] runs on the main domain at every round boundary (the same
    consistent point where checkpoints are taken), with the cumulative
    round count and the live tree — the hook behind
    [remy_train --verify]'s post-round static checks.  It must not
    mutate the tree.

    [checkpoint] turns on crash-safe snapshots (see the module
    preamble); an initial checkpoint is written before the first round
    so a resumable file always exists.  [resume] continues from a loaded
    snapshot — raises [Invalid_argument] if the snapshot's config hash
    does not match this [config] (callers should {!Checkpoint.check_config}
    first for a clean error).  [stop_requested] is polled at round
    boundaries only — returning [true] finishes the in-flight round,
    forces a checkpoint, and returns with [interrupted = true].

    May raise {!Par.Task_failed} (a task kept failing after
    [task_retries]) or {!Par.Stalled} (watchdog; the pool's domains are
    abandoned, not joined).  In both cases the checkpoint on disk is the
    last round-boundary snapshot — it is never overwritten with
    mid-round state. *)
