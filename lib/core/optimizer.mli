(** Remy's automated design procedure (Section 4.3).

    Starting from a single rule (m = 1, b = 1, r = 0.01 covering all of
    memory space), the optimizer repeats:

    + set all rules to the current epoch;
    + simulate on freshly drawn network specimens and find the most-used
      rule of this epoch;
    + improve that rule's action greedily: evaluate the Cartesian
      product of geometrically growing increments on the same specimens
      with the same seeds, adopt the best strictly improving candidate,
      and repeat until none improves; then advance the rule's epoch;
    + when the epoch's rules are exhausted, bump the global epoch; every
      [k_subdivide]-th epoch (K = 4 in the paper), split the most-used
      rule at the median memory point that triggered it into eight
      octants.

    Candidate evaluations run in parallel on a persistent domain pool
    ({!Par.Pool}) created once per {!design} run; each improvement round
    submits the whole candidate x specimen grid as one flat task array.
    When [incremental] (the default), specimens whose baseline run never
    consulted the rule under improvement are not re-simulated — their
    cached scores are reused, which is exact: an overridden rule that is
    never consulted cannot influence the simulation.  The procedure is
    deterministic given [seed]; neither the domain count nor the
    incremental cache affects results, only wall time. *)

type config = {
  model : Net_model.t;
  objective : Objective.t;
  specimens_per_step : int;  (** >= 16 in the paper *)
  domains : int;
  k_subdivide : int;  (** K; the paper uses 4 *)
  candidate_multipliers : float list;  (** geometric ladder, e.g. [1.;8.;64.] *)
  rounds_per_rule : int;
      (** cap on improvement iterations per rule per visit — bounds the
          greedy walk deterministically (wall-clock budgets cannot) *)
  max_epochs : int;  (** global-epoch budget *)
  max_rules : int;  (** stop subdividing beyond this many live rules *)
  prune_agreeing : bool;
      (** at each subdivision step, first collapse previous splits whose
          improved children still agree ({!Rule_tree.collapse_agreeing}) —
          the Section 4.3 future-work refinement *)
  incremental : bool;
      (** reuse cached baseline scores for specimens the candidate's rule
          never touched (default true; results are identical either way) *)
  wall_budget_s : float;  (** stop after this much wall-clock time *)
  seed : int;
}

val default_config :
  ?specimens_per_step:int ->
  ?domains:int ->
  ?k_subdivide:int ->
  ?candidate_multipliers:float list ->
  ?rounds_per_rule:int ->
  ?max_epochs:int ->
  ?max_rules:int ->
  ?prune_agreeing:bool ->
  ?incremental:bool ->
  ?wall_budget_s:float ->
  ?seed:int ->
  model:Net_model.t ->
  objective:Objective.t ->
  unit ->
  config

type report = {
  tree : Rule_tree.t;
  epochs : int;  (** global epochs completed *)
  improvements : int;  (** actions replaced *)
  subdivisions : int;
  evaluations : int;  (** candidate evaluations (each = one specimen batch) *)
  spec_sims : int;
      (** specimen simulations actually run during candidate rounds *)
  spec_skips : int;
      (** specimen simulations avoided by the incremental cache *)
  final_score : float;  (** last whole-table score observed *)
}

(** Structured progress events.  [Epoch_done] carries the
    {!Remy_obs.Telemetry.epoch} record for the global epoch that just
    finished — exactly one per completed epoch, so a JSONL file of them
    has [report.epochs] lines.  The other constructors narrate the inner
    loop at the same granularity the old string messages did. *)
type event =
  | Improving of { epoch : int; rule : int; uses : int; score : float }
      (** the tally ranked [rule] first; greedy improvement starts *)
  | Improved of { rule : int; action : Action.t; score : float }
      (** a candidate action strictly improved the score and was adopted *)
  | Subdivided of { rule : int; at : Memory.t; rules_now : int }
  | Pruned of { collapsed : int; rules_now : int }
  | Epoch_done of Remy_obs.Telemetry.epoch

val pp_event : Format.formatter -> event -> unit
(** Render an event as the one-line status message it replaces. *)

val design : ?progress:(event -> unit) -> config -> report
(** Run the search.  [progress] receives structured {!event}s; use
    {!pp_event} to recover the legacy console lines. *)
