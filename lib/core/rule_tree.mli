(** The RemyCC rule table: an octree over the three-dimensional memory
    space (Section 4.3).

    Each live leaf is a rule: a rectangular region of memory space with
    an action, a use count epoch marker, and an id.  Remy's subdivision
    step splits the most-used rule at the median memory value observed
    to trigger it, producing eight children that inherit the action —
    so frequently visited regions of memory space get a finer-grained
    mapping.

    Rule ids are stable: subdividing retires the parent id (it can no
    longer be returned by {!lookup}) and appends eight fresh ids, so
    per-id tally arrays stay valid across a subdivision if sized with
    {!capacity}. *)

type t

val create : ?initial_action:Action.t -> unit -> t
(** A single rule covering all of memory space, mapped to
    {!Action.default} (m = 1, b = 1, r = 0.01). *)

val lookup : t -> Memory.t -> int
(** Id of the rule whose region contains the memory point.  When the
    compiled index is enabled (the default) this is one binary search
    per dimension over the table's distinct box edges plus a single
    dense-grid read; otherwise (or for tables whose grid would exceed
    the size cap) it is a tree descent.  Both paths return identical
    ids for every input. *)

val lookup3 : t -> ack_ewma:float -> send_ewma:float -> rtt_ratio:float -> int
(** [lookup] on [Memory.make ~ack_ewma ~send_ewma ~rtt_ratio] without
    allocating the record — for per-ack hot paths. *)

val lookup_uncompiled : t -> Memory.t -> int
(** The tree-descent lookup, always, regardless of the toggle — the
    reference implementation the compiled index is tested against. *)

val use_compiled_lookup : bool -> unit
(** Globally enable/disable the compiled index (default: enabled).
    Disabling makes {!lookup} fall back to tree descent; determinism
    tests flip this to prove whole design runs are bit-identical either
    way. *)

val compiled_lookup_enabled : unit -> bool

val index_state : t -> [ `Built of int | `Too_large | `Unbuilt ]
(** Compiled-index status: [`Built cells] (grid size), [`Too_large]
    (grid would exceed the internal cap; lookups use tree descent), or
    [`Unbuilt] (not yet constructed, e.g. the toggle was off during the
    last structural change). *)

val action : ?override:int * Action.t -> t -> int -> Action.t
(** Action of rule [id]; when [override] names this id its action is
    substituted — how candidate actions are evaluated without mutating
    the shared tree. *)

val set_action : t -> int -> Action.t -> unit
val epoch : t -> int -> int
val set_epoch : t -> int -> int -> unit
val promote_all : t -> int -> unit
(** Set every live rule's epoch ("Set all rules to the current epoch"). *)

val subdivide : t -> int -> at:Memory.t -> int list
(** [subdivide t id ~at] splits live leaf [id] at point [at] (coordinates
    are pulled strictly inside the rule's box if they fall on or outside
    it), returning the eight new rule ids.  Raises [Invalid_argument] if
    [id] is not a live leaf. *)

val collapse_agreeing : t -> int
(** Undo subdivisions that never paid off: every split whose eight
    children are leaves with identical actions is merged back into a
    single rule (bottom-up, so chains collapse fully).  Returns the
    number of splits removed.  This implements the refinement the paper
    suggests as future work in Section 4.3 — "divide a cell only if the
    actions at its boundaries markedly disagree" — as a post-hoc prune:
    children whose improved actions still agree evidently did not need
    the finer granularity. *)

val capacity : t -> int
(** One past the largest rule id ever allocated (size for tally arrays). *)

val live_ids : t -> int list
(** Ids reachable by lookup, in tree order. *)

val num_rules : t -> int
(** Number of live leaves — the paper reports 162-204 for its RemyCCs.
    O(1): maintained incrementally by {!subdivide} and
    {!collapse_agreeing} rather than recounted from the tree. *)

val box : t -> int -> (float * float) array
(** Per-dimension [lo, hi) bounds of a rule's region. *)

val to_sexp : t -> Remy_util.Sexp.t
val of_sexp : Remy_util.Sexp.t -> (t, string) result

val to_sexp_full : t -> Remy_util.Sexp.t
(** Checkpoint-grade serialization: the whole rules array (including
    retired entries), in order, with epochs and leaf flags, plus the
    tree structure by rule id.  Restoring with {!of_sexp_full} yields a
    tree bit-identical to the original for every consumer — same
    {!capacity}, same ids, same epochs — which {!to_sexp}/{!of_sexp}
    (live structure only, ids renumbered) do not guarantee. *)

val of_sexp_full : Remy_util.Sexp.t -> (t, string) result
(** Inverse of {!to_sexp_full}, validating on the way in: well-formed
    boxes, in-bounds actions ({!Action.validate}), split points strictly
    inside their boxes, every live rule referenced by exactly one leaf,
    and stored boxes agreeing with what the split points imply. *)

val validate : t -> (unit, string) result
(** Fail-fast whole-table check for loaded tables, in three layers:
    every live rule's action is finite and within the searchable bounds;
    the live rules' boxes are an exact partition of the 3-D memory
    domain ({!Remy_util.Boxpart} — exhaustive coverage and pairwise
    disjointness, decided without sampling); and every split point stays
    strictly inside its box.  Errors name the offending rule — for
    partition failures, the colliding rule pair (or the gap's witness
    memory point). *)

val save : string -> t -> unit
val load : string -> (t, string) result
(** Errors are prefixed with the path and carry the parser's
    line/column diagnostics. *)

val load_validated : string -> (t, string) result
(** {!load} followed by {!validate}: use before simulating a table so a
    corrupt file fails fast with the offending rule printed, not
    mid-simulation. *)

val pp : Format.formatter -> t -> unit
