let recommended_domains () = max 1 (Domain.recommended_domain_count () - 1)

type stats = { calls : int; tasks : int; spawns : int }

let calls = Atomic.make 0
let tasks = Atomic.make 0
let spawns = Atomic.make 0

let stats () =
  { calls = Atomic.get calls; tasks = Atomic.get tasks; spawns = Atomic.get spawns }

let map ~domains f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let domains = max 1 (min domains n) in
    Atomic.incr calls;
    ignore (Atomic.fetch_and_add tasks n);
    ignore (Atomic.fetch_and_add spawns (domains - 1));
    let results = Array.make n None in
    let error = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get error = None then begin
          (match f xs.(i) with
          | v -> results.(i) <- Some v
          | exception e -> ignore (Atomic.compare_and_set error None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    (match Atomic.get error with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end
