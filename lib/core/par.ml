let recommended_domains () = max 1 (Domain.recommended_domain_count () - 1)

type stats = {
  calls : int;
  tasks : int;
  spawns : int;
  pool_jobs : int;
  pool_tasks : int;
  pool_helper_tasks : int;
  pool_retries : int;
}

exception Task_failed of { index : int; attempts : int; error : string }
exception Stalled of { completed : int; total : int; waited_s : float }

let calls = Atomic.make 0
let tasks = Atomic.make 0
let spawns = Atomic.make 0
let pool_jobs = Atomic.make 0
let pool_tasks = Atomic.make 0
let pool_helper_tasks = Atomic.make 0
let pool_retries = Atomic.make 0

let stats () =
  {
    calls = Atomic.get calls;
    tasks = Atomic.get tasks;
    spawns = Atomic.get spawns;
    pool_jobs = Atomic.get pool_jobs;
    pool_tasks = Atomic.get pool_tasks;
    pool_helper_tasks = Atomic.get pool_helper_tasks;
    pool_retries = Atomic.get pool_retries;
  }

let () =
  Printexc.register_printer (function
    | Task_failed { index; attempts; error } ->
      Some
        (Printf.sprintf "Par.Task_failed(task %d failed after %d attempt%s: %s)"
           index attempts
           (if attempts = 1 then "" else "s")
           error)
    | Stalled { completed; total; waited_s } ->
      Some
        (Printf.sprintf
           "Par.Stalled(no task completed for %.1f s; %d/%d done — a worker \
            domain appears wedged)"
           waited_s completed total)
    | _ -> None)

(* Never run more domains than the hardware offers: OCaml 5's minor GC
   is stop-the-world across *running* domains, so oversubscribing cores
   turns every collection into a scheduling barrier (measured 5x
   slowdown at domains=4 on a 1-core box).  Results never depend on the
   domain count, so clamping is invisible except in wall time. *)
let hw_clamp domains = max 1 (min domains (Domain.recommended_domain_count ()))

let map ~domains f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let domains = max 1 (min (hw_clamp domains) n) in
    Atomic.incr calls;
    ignore (Atomic.fetch_and_add tasks n);
    ignore (Atomic.fetch_and_add spawns (domains - 1));
    let results = Array.make n None in
    let error = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get error = None then begin
          (match f xs.(i) with
          | v -> results.(i) <- Some v
          | exception e -> ignore (Atomic.compare_and_set error None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    (match Atomic.get error with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

module Pool = struct
  type job = { run : int -> unit; n : int; next : int Atomic.t; finished : int Atomic.t }

  type t = {
    size : int;
    mutable workers : unit Domain.t list;
    m : Mutex.t;
    work : Condition.t;  (* a new job arrived, or shutdown *)
    idle : Condition.t;  (* the current job completed *)
    mutable job : (int * job) option;  (* generation tag, job *)
    mutable gen : int;
    mutable stop : bool;
    retries : int;
    on_retry : (task:int -> attempt:int -> exn -> unit) option;
    stall_timeout_s : float option;
  }

  (* Claim tasks off the shared cursor until it is exhausted.  The
     participant that retires the last task wakes the submitter. *)
  let help t ~helper (j : job) =
    let rec loop () =
      let i = Atomic.fetch_and_add j.next 1 in
      if i < j.n then begin
        j.run i;
        Atomic.incr pool_tasks;
        if helper then Atomic.incr pool_helper_tasks;
        if 1 + Atomic.fetch_and_add j.finished 1 = j.n then begin
          Mutex.lock t.m;
          Condition.broadcast t.idle;
          Mutex.unlock t.m
        end;
        loop ()
      end
    in
    loop ()

  let worker t () =
    let seen = ref 0 in
    let rec loop () =
      Mutex.lock t.m;
      let rec wait () =
        if t.stop then None
        else
          match t.job with
          | Some (g, j) when g > !seen -> Some (g, j)
          | _ ->
            Condition.wait t.work t.m;
            wait ()
      in
      let claimed = wait () in
      Mutex.unlock t.m;
      match claimed with
      | None -> ()
      | Some (g, j) ->
        seen := g;
        help t ~helper:true j;
        loop ()
    in
    loop ()

  let create ?(retries = 0) ?on_retry ?stall_timeout_s ~domains () =
    let size = hw_clamp domains in
    let pool =
      {
        size;
        workers = [];
        m = Mutex.create ();
        work = Condition.create ();
        idle = Condition.create ();
        job = None;
        gen = 0;
        stop = false;
        retries;
        on_retry;
        stall_timeout_s;
      }
    in
    pool.workers <- List.init (size - 1) (fun _ -> Domain.spawn (worker pool));
    ignore (Atomic.fetch_and_add spawns (size - 1));
    pool

  let size t = t.size

  let submit t job =
    Atomic.incr pool_jobs;
    Mutex.lock t.m;
    t.gen <- t.gen + 1;
    t.job <- Some (t.gen, job);
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    help t ~helper:false job;
    (match t.stall_timeout_s with
    | None ->
      Mutex.lock t.m;
      while Atomic.get job.finished < job.n do
        Condition.wait t.idle t.m
      done;
      Mutex.unlock t.m
    | Some timeout ->
      (* Watchdog: the submitter has drained the cursor, so only tasks
         already claimed by helpers remain.  Poll their completion; if no
         task retires for [timeout] seconds, a helper domain is wedged
         (domains cannot be killed), so surface a contained, reported
         failure instead of hanging forever.  The pool is unusable after
         [Stalled]; the caller is expected to checkpoint and abort. *)
      (* The watchdog measures real elapsed time, never simulated time,
         and its readings cannot reach any result: tasks are pure and a
         firing only aborts the run.  Audited wall-clock use. *)
      let last = ref (Atomic.get job.finished) in
      (* remy-lint: allow wall-clock *)
      let last_change = ref (Unix.gettimeofday ()) in
      while Atomic.get job.finished < job.n do
        Unix.sleepf 0.002;
        let done_now = Atomic.get job.finished in
        if done_now <> !last then begin
          last := done_now;
          last_change := Unix.gettimeofday () (* remy-lint: allow wall-clock *)
        end
        else begin
          (* remy-lint: allow wall-clock *)
          let waited = Unix.gettimeofday () -. !last_change in
          if waited > timeout then
            raise (Stalled { completed = done_now; total = job.n; waited_s = waited })
        end
      done);
    Mutex.lock t.m;
    t.job <- None;
    Mutex.unlock t.m

  let map t f xs =
    let n = Array.length xs in
    if n = 0 then [||]
    else begin
      let results = Array.make n None in
      let error = Atomic.make None in
      let run i =
        if Atomic.get error = None then begin
          (* Tasks are pure functions of their input, so a retry either
             recomputes the identical value (transient failure: a domain
             hit by OOM or a signal) or fails identically — results can
             never depend on the retry count.  The chaos point sits
             inside the match so an injected failure or stall exercises
             exactly the retry/watchdog path a real one would. *)
          let rec attempt k =
            match
              Remy_faults.Chaos.hit "pool-task";
              f xs.(i)
            with
            | v -> results.(i) <- Some v
            | exception e ->
              if k <= t.retries then begin
                Atomic.incr pool_retries;
                (match t.on_retry with
                | Some cb -> cb ~task:i ~attempt:k e
                | None -> ());
                attempt (k + 1)
              end
              else begin
                let e =
                  if t.retries = 0 then e
                  else
                    Task_failed
                      { index = i; attempts = k; error = Printexc.to_string e }
                in
                ignore (Atomic.compare_and_set error None (Some e))
              end
          in
          attempt 1
        end
      in
      submit t { run; n; next = Atomic.make 0; finished = Atomic.make 0 };
      (match Atomic.get error with Some e -> raise e | None -> ());
      Array.map (function Some v -> v | None -> assert false) results
    end

  let shutdown t =
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    List.iter Domain.join t.workers

  let with_pool ?retries ?on_retry ?stall_timeout_s ~domains f =
    let t = create ?retries ?on_retry ?stall_timeout_s ~domains () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
end
