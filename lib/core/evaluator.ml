open Remy_cc
open Remy_sim

type result = { mean_score : float; sender_scores : float list }

type spec_cache = {
  spec : Net_model.specimen;
  scores : float list;
  touched : bool array;
}

let config_of_specimen ~queue_capacity ~duration ~cc_factory
    (s : Net_model.specimen) =
  {
    Dumbbell.service = Dumbbell.Rate_mbps s.Net_model.spec_link_mbps;
    qdisc = Dumbbell.Droptail queue_capacity;
    flows =
      Array.init s.Net_model.n (fun _ ->
          {
            Dumbbell.cc = cc_factory;
            rtt = s.Net_model.rtt_s;
            workload = s.Net_model.workload;
            start = `Off_draw;
          });
    duration;
    seed = s.Net_model.spec_seed;
    min_rto = 1.0;
  }

let timed_sim run =
  Remy_obs.Profiler.span "sim" (fun () ->
      if Remy_obs.Metrics.enabled () then begin
        let t0 = Remy_obs.Clock.now_s () in
        let r = run () in
        Remy_obs.Metrics.record Remy_obs.Metrics.Sim_wall
          (Remy_obs.Clock.now_s () -. t0);
        r
      end
      else run ())

let specimen_flow_summaries ?override ?tally ?topology ~queue_capacity ~duration
    tree s =
  match topology with
  | None ->
    let cc_factory = Remycc.factory ?override ?tally tree in
    let config = config_of_specimen ~queue_capacity ~duration ~cc_factory s in
    let r = timed_sim (fun () -> Dumbbell.run config) in
    r.Dumbbell.flows
  | Some name ->
    let builder =
      match Topology.builder_of_name name with
      | Some b -> b
      | None -> invalid_arg (Printf.sprintf "Evaluator: unknown topology %S" name)
    in
    let config =
      builder ~n:s.Net_model.n
        ~cc:(Remycc.factory ?override ?tally tree)
        ~workload:s.Net_model.workload
        ~link_mbps:s.Net_model.spec_link_mbps ~rtt_s:s.Net_model.rtt_s
        ~queue_capacity ~duration ~seed:s.Net_model.spec_seed ()
    in
    let config = { config with Topology.min_rto = 1.0 } in
    (* The SoA fleet is bit-identical to the per-record backend and
       scales to thousands of flows; a fresh factory per run. *)
    let sender_factory = Fleet.factory ?override ?tally tree in
    let r = timed_sim (fun () -> Topology.run ~sender_factory config) in
    r.Topology.flows

let specimen_scores ?override ?tally ?topology ~objective ~queue_capacity
    ~duration tree s =
  let flows =
    specimen_flow_summaries ?override ?tally ?topology ~queue_capacity ~duration
      tree s
  in
  let min_rtt_ms = s.Net_model.rtt_s *. 1e3 in
  Array.to_list flows
  |> List.filter_map (fun (f : Metrics.flow_summary) ->
         if f.Metrics.on_time <= 0. then None
         else
           Some
             (Objective.score objective ~throughput_mbps:f.Metrics.throughput_mbps
                ~mean_rtt_ms:(f.Metrics.mean_queueing_delay_ms +. min_rtt_ms)))

(* Reduce per-specimen sender-score lists to the run's result.  Every
   evaluation path funnels through this so the arithmetic (and therefore
   the bits) is identical whether a specimen's scores came from a fresh
   simulation or the incremental cache. *)
let result_of_spec_scores (per_spec : float list array) =
  let sender_scores = List.concat_map Fun.id (Array.to_list per_spec) in
  let spec_means =
    Array.to_list per_spec
    |> List.filter_map (fun scores ->
           match scores with
           | [] -> None
           | l -> Some (List.fold_left ( +. ) 0. l /. float_of_int (List.length l)))
  in
  let mean_score =
    match spec_means with
    | [] -> neg_infinity
    | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
  in
  { mean_score; sender_scores }

let score ?override ?tally ?topology ~domains ~objective ~queue_capacity
    ~duration tree specimens =
  let specs = Array.of_list specimens in
  let per_spec =
    Par.map ~domains
      (fun (s : Net_model.specimen) ->
        (* Each specimen gets a private tally (merged afterwards) so the
           parallel workers never share mutable state. *)
        let local_tally =
          Option.map
            (fun _ ->
              Tally.create ~capacity:(Rule_tree.capacity tree)
                ~seed:(s.Net_model.spec_seed lxor 0x5EED) ())
            tally
        in
        let scores =
          specimen_scores ?override ?tally:local_tally ?topology ~objective
            ~queue_capacity ~duration tree s
        in
        (scores, local_tally))
      specs
  in
  (match tally with
  | Some dst ->
    Array.iter
      (fun (_, local) -> match local with Some t -> Tally.merge_into dst t | None -> ())
      per_spec
  | None -> ());
  result_of_spec_scores (Array.map fst per_spec)

let baseline ~pool ?tally ?topology ~objective ~queue_capacity ~duration tree
    specimens =
  let specs = Array.of_list specimens in
  let capacity = Rule_tree.capacity tree in
  let per_spec =
    Par.Pool.map pool
      (fun (s : Net_model.specimen) ->
        (* A private tally per specimen: it feeds the caller's merged
           tally (when asked for) and, always, the touched-rule set that
           licenses incremental candidate evaluation. *)
        let local_tally =
          Tally.create ~capacity ~seed:(s.Net_model.spec_seed lxor 0x5EED) ()
        in
        let scores =
          specimen_scores ~tally:local_tally ?topology ~objective ~queue_capacity
            ~duration tree s
        in
        let touched = Array.init capacity (fun id -> Tally.count local_tally id > 0) in
        ({ spec = s; scores; touched }, local_tally))
      specs
  in
  (match tally with
  | Some dst -> Array.iter (fun (_, local) -> Tally.merge_into dst local) per_spec
  | None -> ());
  let cache = Array.map fst per_spec in
  (result_of_spec_scores (Array.map (fun c -> c.scores) cache), cache)

let resim_indices ~incremental ~rule (cache : spec_cache array) =
  Array.to_list cache
  |> List.mapi (fun i c -> (i, c))
  |> List.filter (fun (_, c) ->
         (not incremental) || (rule < Array.length c.touched && c.touched.(rule)))
  |> List.map fst |> Array.of_list

let candidate_grid ~candidates ~resim =
  let n_resim = Array.length resim in
  Array.init
    (Array.length candidates * n_resim)
    (fun k -> (k / n_resim, resim.(k mod n_resim)))

let reduce_candidates ~(candidates : Action.t array) ~(cache : spec_cache array)
    ~resim ~(fresh : float list array) =
  let n_spec = Array.length cache in
  let n_resim = Array.length resim in
  let scores =
    Array.mapi
      (fun ci _ ->
        let per_spec = Array.init n_spec (fun si -> cache.(si).scores) in
        Array.iteri (fun j si -> per_spec.(si) <- fresh.((ci * n_resim) + j)) resim;
        (result_of_spec_scores per_spec).mean_score)
      candidates
  in
  let simulated = Array.length candidates * n_resim in
  let skipped = (Array.length candidates * n_spec) - simulated in
  (scores, (simulated, skipped))

let candidate_scores ~pool ~incremental ?topology ~objective ~queue_capacity
    ~duration tree ~rule (candidates : Action.t array) (cache : spec_cache array) =
  let resim = resim_indices ~incremental ~rule cache in
  (* One flat candidate x specimen grid: load balances across the whole
     round instead of nesting sequential specimen sweeps inside an outer
     per-candidate map. *)
  let grid = candidate_grid ~candidates ~resim in
  let fresh =
    Par.Pool.map pool
      (fun (ci, si) ->
        specimen_scores ~override:(rule, candidates.(ci)) ?topology ~objective
          ~queue_capacity ~duration tree cache.(si).spec)
      grid
  in
  reduce_candidates ~candidates ~cache ~resim ~fresh
