(** One evaluation step of Remy's design loop (Section 4.3): simulate a
    RemyCC on a set of network specimens and total the objective.

    Every specimen is a dumbbell (Fig. 2) whose senders all run the same
    rule table — the superrational setting of Section 4 — over an
    unlimited (design-time) queue.  All candidate actions are scored on
    the same specimens with the same seeds, so score differences come
    only from the actions.

    Two evaluation paths:

    - {!score}: one-shot, spawning domains per call (CLI tools, tests).
    - {!baseline} + {!candidate_scores}: the optimizer's hot path over a
      persistent {!Par.Pool}.  [baseline] records, per specimen, which
      rules the run consulted and what each sender scored; a later
      candidate evaluation that overrides rule [r] then skips every
      specimen whose baseline never consulted [r] — the rule's action
      cannot influence a simulation that never reads it, so the cached
      scores are bit-identical to what a re-run would produce. *)

type result = {
  mean_score : float;
      (** mean over specimens of the mean per-sender objective *)
  sender_scores : float list;  (** every scored sender, for diagnostics *)
}

type spec_cache = {
  spec : Net_model.specimen;
  scores : float list;  (** per-sender objective scores of the baseline run *)
  touched : bool array;
      (** indexed by rule id ({!Rule_tree.capacity} slots): did the
          baseline run consult this rule? *)
}
(** Per-specimen baseline evidence for incremental candidate scoring.
    Valid for candidate evaluation of any rule id while the tree's
    structure is unchanged ([set_action] on the overridden rule does not
    invalidate it: overridden evaluations never read that action, and
    untouched specimens never read the rule at all). *)

val score :
  ?override:int * Action.t ->
  ?tally:Tally.t ->
  ?topology:string ->
  domains:int ->
  objective:Objective.t ->
  queue_capacity:int ->
  duration:float ->
  Rule_tree.t ->
  Net_model.specimen list ->
  result
(** Specimens are simulated in parallel across [domains].  When [tally]
    is given, per-specimen tallies are merged into it after the runs.
    Senders that were never scheduled "on" are excluded from scoring
    (their workload, drawn from the specimen seed, is identical for
    every candidate). *)

val specimen_flow_summaries :
  ?override:int * Action.t ->
  ?tally:Tally.t ->
  ?topology:string ->
  queue_capacity:int ->
  duration:float ->
  Rule_tree.t ->
  Net_model.specimen ->
  Remy_sim.Metrics.flow_summary array
(** Run a single specimen and expose the raw per-flow summaries (tests,
    diagnostics).  [topology] (from {!Net_model.t.topology}) routes the
    specimen through the named {!Remy_cc.Topology} builder — simulated
    with the SoA {!Fleet} backend — instead of the dumbbell. *)

val specimen_scores :
  ?override:int * Action.t ->
  ?tally:Tally.t ->
  ?topology:string ->
  objective:Objective.t ->
  queue_capacity:int ->
  duration:float ->
  Rule_tree.t ->
  Net_model.specimen ->
  float list
(** Simulate one specimen and score every sender that went "on" —
    the single-task unit both the in-process pool and distributed
    workers execute.  Scores are in flow order, so two executors of the
    same task produce the same list. *)

val result_of_spec_scores : float list array -> result
(** Reduce per-specimen sender-score lists (in specimen order) to a run
    result.  Every evaluation path — one-shot, pooled, distributed —
    funnels through this, so the arithmetic (and the bits) cannot depend
    on who ran the simulations. *)

val resim_indices :
  incremental:bool -> rule:int -> spec_cache array -> int array
(** Specimen indices that must be re-simulated when [rule]'s action
    changes: all of them, or (incrementally) only those whose baseline
    consulted [rule]. *)

val candidate_grid :
  candidates:'a array -> resim:int array -> (int * int) array
(** The flattened candidates x resim enumeration
    [k -> (k / n_resim, resim.(k mod n_resim))] every executor agrees
    on: index [k] names the same (candidate, specimen) pair everywhere. *)

val reduce_candidates :
  candidates:Action.t array ->
  cache:spec_cache array ->
  resim:int array ->
  fresh:float list array ->
  float array * (int * int)
(** Combine fresh simulation results (the flattened candidates x resim
    grid, [fresh.(ci * n_resim + j)] = candidate [ci] on specimen
    [resim.(j)]) with cached scores for skipped specimens.  Returns
    per-candidate mean scores plus [(simulated, skipped)] counts —
    the deterministic reduction shared by {!candidate_scores} and the
    distributed coordinator. *)

val baseline :
  pool:Par.Pool.t ->
  ?tally:Tally.t ->
  ?topology:string ->
  objective:Objective.t ->
  queue_capacity:int ->
  duration:float ->
  Rule_tree.t ->
  Net_model.specimen list ->
  result * spec_cache array
(** Whole-table evaluation on [pool], additionally returning the
    per-specimen cache (in specimen order).  Scores are identical to
    {!score} on the same inputs. *)

val candidate_scores :
  pool:Par.Pool.t ->
  incremental:bool ->
  ?topology:string ->
  objective:Objective.t ->
  queue_capacity:int ->
  duration:float ->
  Rule_tree.t ->
  rule:int ->
  Action.t array ->
  spec_cache array ->
  float array * (int * int)
(** [candidate_scores ~pool ~incremental ... ~rule candidates cache]
    scores every candidate action as an [~override:(rule, candidate)]
    evaluation over the cached specimens, submitting the whole candidate
    x specimen grid to the pool as one flat task array.  When
    [incremental], specimens whose baseline never touched [rule] reuse
    their cached scores instead of re-simulating; results are
    bit-identical either way.  Returns per-candidate mean scores plus
    [(simulated, skipped)] specimen-simulation counts. *)
