open Remy_util

type position = Epoch_start | Mid_epoch of { first_rule : int option }

type snapshot = {
  config_hash : string;
  position : position;
  epoch : int;
  rounds : int;
  improvements : int;
  subdivisions : int;
  evaluations : int;
  spec_sims : int;
  spec_skips : int;
  last_score : float;
  elapsed_s : float;
  telemetry_epochs : int;
  rng : int64 array;
  tree : Rule_tree.t;
}

let version = "v1"
let file ~dir = Filename.concat dir "checkpoint.sexp"

let hash_hex s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    s;
  Printf.sprintf "%016Lx" !h

(* --- encoding ------------------------------------------------------- *)

let position_sexp = function
  | Epoch_start -> Sexp.atom "epoch-start"
  | Mid_epoch { first_rule } ->
    Sexp.list
      [
        Sexp.atom "mid-epoch";
        (match first_rule with None -> Sexp.atom "none" | Some id -> Sexp.int id);
      ]

let position_of_sexp = function
  | Sexp.Atom "epoch-start" -> Ok Epoch_start
  | Sexp.List [ Sexp.Atom "mid-epoch"; Sexp.Atom "none" ] ->
    Ok (Mid_epoch { first_rule = None })
  | Sexp.List [ Sexp.Atom "mid-epoch"; id ] ->
    Result.map (fun id -> Mid_epoch { first_rule = Some id }) (Sexp.to_int id)
  | _ -> Error "bad position (expected epoch-start or (mid-epoch ...))"

let state_sexp s =
  let f k v = Sexp.list [ Sexp.atom k; v ] in
  Sexp.list
    [
      f "config-hash" (Sexp.atom s.config_hash);
      f "position" (position_sexp s.position);
      f "epoch" (Sexp.int s.epoch);
      f "rounds" (Sexp.int s.rounds);
      f "improvements" (Sexp.int s.improvements);
      f "subdivisions" (Sexp.int s.subdivisions);
      f "evaluations" (Sexp.int s.evaluations);
      f "spec-sims" (Sexp.int s.spec_sims);
      f "spec-skips" (Sexp.int s.spec_skips);
      f "last-score" (Sexp.float s.last_score);
      f "elapsed-s" (Sexp.float s.elapsed_s);
      f "telemetry-epochs" (Sexp.int s.telemetry_epochs);
      f "rng"
        (Sexp.list
           (Array.to_list (Array.map (fun w -> Sexp.atom (Int64.to_string w)) s.rng)));
      f "tree" (Rule_tree.to_sexp_full s.tree);
    ]

let to_sexp s =
  let state = state_sexp s in
  Sexp.list
    [
      Sexp.atom "remy-checkpoint";
      Sexp.atom version;
      Sexp.list [ Sexp.atom "crc"; Sexp.atom (hash_hex (Sexp.to_string state)) ];
      state;
    ]

(* --- decoding + validation ------------------------------------------ *)

let ( let* ) = Result.bind

let nonneg what v =
  if v < 0 then Error (Printf.sprintf "negative %s counter (%d)" what v) else Ok v

let state_of_sexp state =
  let field k = Sexp.field state k in
  let int_field k =
    let* v = field k in
    let* v = Sexp.to_int v in
    nonneg k v
  in
  let float_field k = Result.bind (field k) Sexp.to_float in
  let* config_hash = Result.bind (field "config-hash") Sexp.to_atom in
  let* position = Result.bind (field "position") position_of_sexp in
  let* epoch = int_field "epoch" in
  let* rounds = int_field "rounds" in
  let* improvements = int_field "improvements" in
  let* subdivisions = int_field "subdivisions" in
  let* evaluations = int_field "evaluations" in
  let* spec_sims = int_field "spec-sims" in
  let* spec_skips = int_field "spec-skips" in
  let* last_score = float_field "last-score" in
  let* elapsed_s = float_field "elapsed-s" in
  let* telemetry_epochs = int_field "telemetry-epochs" in
  let* rng_sexp = Result.bind (field "rng") Sexp.to_list in
  let* rng =
    List.fold_right
      (fun w acc ->
        let* acc = acc in
        let* a = Sexp.to_atom w in
        match Int64.of_string_opt a with
        | Some w -> Ok (w :: acc)
        | None -> Error (Printf.sprintf "bad PRNG state word %S" a))
      rng_sexp (Ok [])
  in
  let rng = Array.of_list rng in
  let* _ = Result.map_error (fun e -> "bad PRNG state: " ^ e) (Prng.of_state rng) in
  let* tree = Result.bind (field "tree") Rule_tree.of_sexp_full in
  if Float.is_nan last_score then Error "last-score is NaN"
  else if not (Float.is_finite elapsed_s) || elapsed_s < 0. then
    Error "elapsed-s must be a nonnegative finite float"
  else
    Ok
      {
        config_hash;
        position;
        epoch;
        rounds;
        improvements;
        subdivisions;
        evaluations;
        spec_sims;
        spec_skips;
        last_score;
        elapsed_s;
        telemetry_epochs;
        rng;
        tree;
      }

let of_sexp s =
  match s with
  | Sexp.List
      [
        Sexp.Atom "remy-checkpoint";
        Sexp.Atom v;
        Sexp.List [ Sexp.Atom "crc"; Sexp.Atom stored_crc ];
        state;
      ] ->
    if v <> version then
      Error
        (Printf.sprintf "unsupported checkpoint version %s (this build reads %s)" v
           version)
    else begin
      let computed = hash_hex (Sexp.to_string state) in
      if not (String.equal computed stored_crc) then
        Error
          (Printf.sprintf
             "checksum mismatch (stored %s, computed %s) — the checkpoint is \
              corrupted"
             stored_crc computed)
      else state_of_sexp state
    end
  | _ -> Error "not a checkpoint file (expected (remy-checkpoint v1 (crc ...) ...))"

let check_config s ~config_hash =
  if String.equal s.config_hash config_hash then Ok ()
  else
    Error
      (Printf.sprintf
         "config hash mismatch: checkpoint was written by a run configured as %s, \
          but this run is %s — model, objective, seed or search parameters differ"
         s.config_hash config_hash)

(* --- durable atomic I/O --------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~dir s =
  mkdir_p dir;
  let path = file ~dir in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc (Sexp.to_string_hum (to_sexp s));
     output_char oc '\n';
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  (* Chaos: a kill here leaves a complete .tmp but no published
     checkpoint — resume must fall back to the previous one. *)
  Remy_faults.Chaos.hit ~path:tmp "checkpoint-write";
  Sys.rename tmp path;
  (* Make the rename itself durable: fsync the containing directory.
     Best-effort — some filesystems refuse fsync on directories. *)
  (try
     let fd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
     Fun.protect
       ~finally:(fun () -> Unix.close fd)
       (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
   with Unix.Unix_error _ -> ());
  (* Chaos: a corrupt directive here damages the just-published file —
     load's CRC must reject it rather than resume from garbage. *)
  Remy_faults.Chaos.hit ~path "checkpoint-saved"

let load ~dir =
  let path = file ~dir in
  (* [Sys_error]s from [Sexp.load] already name the path. *)
  let with_path e =
    if String.length e >= String.length path && String.sub e 0 (String.length path) = path
    then e
    else Printf.sprintf "%s: %s" path e
  in
  match Sexp.load path with
  | Error e -> Error (with_path e)
  | Ok s -> (
    match of_sexp s with
    | Error e -> Error (with_path e)
    | Ok _ as ok -> ok)
