type t = { multiple : float; increment : float; intersend_ms : float }

let default = { multiple = 1.; increment = 1.; intersend_ms = 0.01 }

let clamp a =
  {
    multiple = Float.min 2. (Float.max 0. a.multiple);
    increment = Float.min 256. (Float.max (-256.) a.increment);
    intersend_ms = Float.min 1000. (Float.max 0.001 a.intersend_ms);
  }

let max_window = 1e6

let validate a =
  let finite = Float.is_finite in
  if not (finite a.multiple && finite a.increment && finite a.intersend_ms) then
    Error
      (Printf.sprintf "non-finite action value (m=%h b=%h r=%h)" a.multiple
         a.increment a.intersend_ms)
  else if a.multiple < 0. || a.multiple > 2. then
    Error (Printf.sprintf "window multiple %.17g outside [0, 2]" a.multiple)
  else if a.increment < -256. || a.increment > 256. then
    Error (Printf.sprintf "window increment %.17g outside [-256, 256]" a.increment)
  else if a.intersend_ms < 0.001 || a.intersend_ms > 1000. then
    Error
      (Printf.sprintf "intersend %.17g ms outside [0.001, 1000]" a.intersend_ms)
  else Ok ()

let apply a ~window =
  Float.min max_window (Float.max 0. ((a.multiple *. window) +. a.increment))

let equal a b =
  a.multiple = b.multiple && a.increment = b.increment
  && a.intersend_ms = b.intersend_ms

let neighbors ?(granularity = (0.01, 1.0, 0.01)) ?(multipliers = [ 1.; 8.; 64. ]) a =
  let gm, gb, gr = granularity in
  let deltas g =
    0. :: List.concat_map (fun k -> [ g *. k; -.(g *. k) ]) multipliers
  in
  let candidates =
    List.concat_map
      (fun dm ->
        List.concat_map
          (fun db ->
            List.map
              (fun dr ->
                clamp
                  {
                    multiple = a.multiple +. dm;
                    increment = a.increment +. db;
                    intersend_ms = a.intersend_ms +. dr;
                  })
              (deltas gr))
          (deltas gb))
      (deltas gm)
  in
  (* Clamping can collapse candidates onto each other or onto [a]; drop
     duplicates to avoid wasted simulations. *)
  let seen = Hashtbl.create 64 in
  Hashtbl.replace seen (a.multiple, a.increment, a.intersend_ms) ();
  List.filter
    (fun c ->
      let key = (c.multiple, c.increment, c.intersend_ms) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    candidates

let pp fmt a =
  Format.fprintf fmt "<m=%.4f b=%.3f r=%.4fms>" a.multiple a.increment a.intersend_ms
