open Remy_cc

type mask = { use_ack_ewma : bool; use_send_ewma : bool; use_rtt_ratio : bool }

let all_signals = { use_ack_ewma = true; use_send_ewma = true; use_rtt_ratio = true }

let apply_mask mask (m : Memory.t) =
  if mask = all_signals then m
  else
    Memory.make
      ~ack_ewma:(if mask.use_ack_ewma then m.Memory.ack_ewma else 0.)
      ~send_ewma:(if mask.use_send_ewma then m.Memory.send_ewma else 0.)
      ~rtt_ratio:(if mask.use_rtt_ratio then m.Memory.rtt_ratio else 0.)

(* Pacing state as a flat float record: field updates stay unboxed,
   where [float ref] assignment boxes a fresh float per ACK. *)
type state = { mutable cwnd : float; mutable intersend_s : float }

let make ?override ?tally ?(mask = all_signals)
    ?(idle_restart_s = Float.infinity) tree =
  let tracker = Memory.tracker () in
  let st = { cwnd = 0.; intersend_s = 0. } in
  let unmasked = mask = all_signals in
  let consult mem =
    let mem = if unmasked then mem else apply_mask mask mem in
    let id = Rule_tree.lookup tree mem in
    (match tally with Some t -> Tally.record t id mem | None -> ());
    Rule_tree.action ?override tree id
  in
  let apply mem =
    let act = consult mem in
    st.cwnd <- Action.apply act ~window:st.cwnd;
    st.intersend_s <- act.Action.intersend_ms /. 1e3
  in
  let reset ~now:_ =
    Memory.reset tracker;
    st.cwnd <- 0.;
    (* Section 4.3: before any ACK, the all-zero memory region's action
       determines the initial window (m * 0 + b). *)
    apply Memory.zero
  in
  let on_ack (a : Cc.ack_info) =
    (* Graceful degradation after an outage: a gap in the ACK stream
       longer than [idle_restart_s] means the EWMAs describe a network
       that no longer exists (one giant interarrival delta would
       otherwise dominate them for dozens of ACKs), so restart the
       estimators as at connection start.  Off (infinity) by default —
       the optimizer's design runs never take this branch. *)
    (if idle_restart_s < Float.infinity then
       let last = Memory.last_received_at tracker in
       if (not (Float.is_nan last)) && a.receiver_ts -. last > idle_restart_s
       then Memory.reset tracker);
    let rtt =
      match a.rtt with Some r -> r | None -> a.now -. a.acked_sent_at
    in
    let mem =
      Memory.on_ack tracker ~sent_at:a.acked_sent_at ~received_at:a.receiver_ts ~rtt
    in
    apply mem
  in
  {
    Cc.name = "remycc";
    ecn_capable = false;
    reset;
    on_ack;
    on_loss = (fun ~now:_ -> ());
    on_timeout = (fun ~now:_ -> ());
    window = (fun () -> st.cwnd);
    intersend = (fun () -> st.intersend_s);
    stamp = Cc.no_stamp;
  }

let factory ?override ?tally ?mask ?idle_restart_s tree () =
  make ?override ?tally ?mask ?idle_restart_s tree

(* Loading a table in order to *run* it goes through here: parse errors
   carry line/column, and structurally valid but out-of-bounds tables
   are rejected with the offending rule, before any simulation starts. *)
let load_result path = Rule_tree.load_validated path
