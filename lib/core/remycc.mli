(** The RemyCC runtime: interpret a rule table as a congestion-control
    module (Section 4.2).

    On every incoming ACK the sender updates its three-signal memory,
    looks up the rule covering the current memory point, and applies the
    action: cwnd <- m * cwnd + b, with sends paced at least r ms apart.
    At flow start the memory is all-zeroes and the initial window comes
    from applying that region's action to a window of zero.

    RemyCCs deliberately ignore loss and timeout signals (Section 4.1):
    the window is left untouched and the host TCP's retransmission
    machinery ({!Remy_cc.Tcp_sender}) recovers the data. *)

type mask = { use_ack_ewma : bool; use_send_ewma : bool; use_rtt_ratio : bool }
(** Signal ablation: a disabled signal is pinned to zero before the rule
    lookup, so the table only ever sees that dimension's initial-state
    region.  Used by the [ablation_signals] benchmark to measure how
    much each of Section 4.1's three congestion signals contributes. *)

val all_signals : mask

val make :
  ?override:int * Action.t ->
  ?tally:Tally.t ->
  ?mask:mask ->
  ?idle_restart_s:float ->
  Rule_tree.t ->
  Remy_cc.Cc.t
(** [override] substitutes one rule's action (candidate evaluation);
    [tally] records rule usage and memory samples.  The returned module
    only reads the tree, so one tree may back many concurrent flows.
    [idle_restart_s] (default infinity = off) restarts the memory
    estimators when the ACK stream gaps longer than that — graceful
    degradation across link outages, where one huge interarrival delta
    would otherwise poison the EWMAs for dozens of ACKs.  Leave unset in
    design runs: enabling it changes behavior, not just observation. *)

val factory :
  ?override:int * Action.t ->
  ?tally:Tally.t ->
  ?mask:mask ->
  ?idle_restart_s:float ->
  Rule_tree.t ->
  Remy_cc.Cc.factory

val load_result : string -> (Rule_tree.t, string) result
(** Load and validate a rule table for execution
    ({!Rule_tree.load_validated}): callers get a printable diagnostic —
    parse position or offending rule — instead of an exception or a
    mid-simulation failure. *)
