open Remy_util
open Remy_sim

type on_process = On_seconds of float | On_bytes of float | On_icsi

type t = {
  min_senders : int;
  max_senders : int;
  link_mbps : float * float;
  rtt_ms : float * float;
  on_process : on_process;
  mean_off_s : float;
  queue_capacity : int;
  sim_duration : float;
  topology : string option;
}

type specimen = {
  n : int;
  spec_link_mbps : float;
  rtt_s : float;
  workload : Workload.t;
  spec_seed : int;
}

let workload_of model =
  match model.on_process with
  | On_seconds mean_on -> Workload.by_time ~mean_on ~mean_off:model.mean_off_s
  | On_bytes mean_bytes -> Workload.by_bytes ~mean_bytes ~mean_off:model.mean_off_s
  | On_icsi -> Workload.icsi ~mean_off:model.mean_off_s

let draw model rng =
  let lo_l, hi_l = model.link_mbps in
  let lo_r, hi_r = model.rtt_ms in
  let n =
    if model.max_senders <= model.min_senders then model.min_senders
    else model.min_senders + Prng.int rng (model.max_senders - model.min_senders + 1)
  in
  {
    n;
    spec_link_mbps = (if hi_l > lo_l then Prng.uniform rng lo_l hi_l else lo_l);
    rtt_s = (if hi_r > lo_r then Prng.uniform rng lo_r hi_r else lo_r) /. 1e3;
    workload = workload_of model;
    spec_seed = Int64.to_int (Int64.shift_right_logical (Prng.bits64 rng) 2);
  }

let draw_many model rng count = List.init count (fun _ -> draw model rng)

let general ?(mean_on_s = 1.0) ?(mean_off_s = 1.0) ?(sim_duration = 12.0) () =
  {
    min_senders = 1;
    max_senders = 16;
    link_mbps = (10., 20.);
    rtt_ms = (100., 200.);
    on_process = On_seconds mean_on_s;
    mean_off_s;
    queue_capacity = Qdisc.unlimited_capacity;
    sim_duration;
    topology = None;
  }

let onex ?(sim_duration = 12.0) () =
  {
    min_senders = 1;
    max_senders = 2;
    link_mbps = (15., 15.);
    rtt_ms = (150., 150.);
    on_process = On_seconds 1.0;
    mean_off_s = 1.0;
    queue_capacity = Qdisc.unlimited_capacity;
    sim_duration;
    topology = None;
  }

let tenx ?(sim_duration = 12.0) () =
  { (onex ~sim_duration ()) with link_mbps = (4.7, 47.) }

let datacenter ?(link_mbps = 1000.) ?(sim_duration = 2.0) () =
  {
    min_senders = 1;
    max_senders = 64;
    link_mbps = (link_mbps, link_mbps);
    rtt_ms = (4., 4.);
    (* The paper's 20 MB mean transfer at 10 Gbps, scaled with the link. *)
    on_process = On_bytes (20e6 *. link_mbps /. 10000.);
    mean_off_s = 0.1;
    queue_capacity = Qdisc.unlimited_capacity;
    sim_duration;
    topology = None;
  }

let coexist ?(sim_duration = 12.0) () =
  { (general ~sim_duration ()) with rtt_ms = (100., 10_000.); max_senders = 2 }

let pp fmt m =
  let lo_l, hi_l = m.link_mbps and lo_r, hi_r = m.rtt_ms in
  Format.fprintf fmt
    "senders %d-%d, link %.3g-%.3g Mbps, rtt %.3g-%.3g ms, off %.3gs, horizon %.3gs"
    m.min_senders m.max_senders lo_l hi_l lo_r hi_r m.mean_off_s m.sim_duration;
  match m.topology with
  | Some name -> Format.fprintf fmt ", topology %s" name
  | None -> ()
