(** Per-rule usage statistics collected while simulating a RemyCC.

    The optimizer needs two things from an evaluation run (Section 4.3):
    how often each rule fired (to pick the most-used rule of the current
    epoch) and a sample of the memory values that triggered it (to split
    at the median).  Samples are kept with reservoir sampling so memory
    use stays bounded on long runs. *)

type t

val create : ?reservoir:int -> capacity:int -> seed:int -> unit -> t
(** [capacity] must cover every rule id of the tree
    ({!Rule_tree.capacity}); [reservoir] samples per rule (default 128). *)

val record : t -> int -> Memory.t -> unit
val count : t -> int -> int
val samples : t -> int -> Memory.t list
val merge_into : t -> t -> unit
(** [merge_into dst src] adds counts and pools samples. *)

val export : t -> (int * int * Memory.t list) list
(** Fired rules only, as [(id, count, kept samples)] with ids ascending
    and samples newest-first — the wire form a distributed worker ships
    back.  [merge_exported dst (export src)] is exactly
    [merge_into dst src]. *)

val merge_exported : t -> (int * int * Memory.t list) list -> unit
(** Merge an {!export}ed tally: add counts, pool samples (imported
    first, as {!merge_into} does), re-trim to [dst]'s reservoir.  Slots
    beyond [dst]'s capacity are ignored. *)

val most_used : t -> among:int list -> int option
(** The rule with the highest count among [among] (ties broken by lower
    id); [None] if none of them fired. *)

val median_memory : t -> int -> Memory.t option
(** Component-wise median of the recorded samples for a rule. *)
