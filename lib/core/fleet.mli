(** Structure-of-arrays RemyCC sender fleet.

    A {!Remy_cc.Sender_backend.factory} that keeps the per-flow hot
    state of every sender — reliability counters, RFC 6298 estimator,
    pacing clock, RemyCC memory signals — in flat float/int arrays
    shared across the fleet, instead of one {!Remy_cc.Tcp_sender}
    record and {!Remycc} closure set per flow.  Steady-state ack
    processing allocates only the [Memory.t] record passed to
    {!Rule_tree.lookup}, so 10k-flow scenarios run with O(1) allocation
    per ack.

    Behaviour is bit-identical to
    [Sender_backend.records (Remycc.factory tree)]: every arithmetic
    expression mirrors [Tcp_sender]/[Remycc]/[Memory] verbatim
    (test_fleet proves run-level equivalence). *)

val max_rto : float
(** Alias of {!Remy_cc.Tcp_sender.max_rto} — the fleet mirrors the
    record sender's RTO clamp exactly. *)

val factory :
  ?override:int * Action.t ->
  ?tally:Tally.t ->
  ?idle_restart_s:float ->
  Rule_tree.t ->
  Remy_cc.Sender_backend.factory
(** [factory tree] builds one fleet per run: the shared arrays are
    allocated on the first per-flow call (sized by [env.n_flows]), so
    use a fresh factory value for every {!Remy_cc.Topology.run}.
    [override], [tally] and [idle_restart_s] behave as in
    {!Remycc.factory}. *)
