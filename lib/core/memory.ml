open Remy_util

type t = { ack_ewma : float; send_ewma : float; rtt_ratio : float }

let zero = { ack_ewma = 0.; send_ewma = 0.; rtt_ratio = 0. }
let max_value = 16384.
let ewma_weight = 0.125
let dims = 3

let clamp v = Float.min (max_value -. 1e-9) (Float.max 0. v)

(* The per-ack fields use float sentinels instead of options — NaN for
   "no echo seen yet", infinity for "no RTT observed" — so the tracker
   allocates nothing on the ack path (options would box three floats per
   ack). *)
type tracker = {
  ack : Ewma.t;
  send : Ewma.t;
  mutable last_received_at : float;  (* NaN before the first ack *)
  mutable last_sent_at : float;  (* NaN before the first ack *)
  mutable min_rtt_s : float;  (* infinity before the first sample *)
  mutable rtt_ratio : float;
}

let tracker () =
  {
    ack = Ewma.create_at ~alpha:ewma_weight 0.;
    send = Ewma.create_at ~alpha:ewma_weight 0.;
    last_received_at = Float.nan;
    last_sent_at = Float.nan;
    min_rtt_s = Float.infinity;
    rtt_ratio = 0.;
  }

let reset t =
  Ewma.reset t.ack;
  Ewma.reset t.send;
  t.last_received_at <- Float.nan;
  t.last_sent_at <- Float.nan;
  t.min_rtt_s <- Float.infinity;
  t.rtt_ratio <- 0.

let current t =
  {
    ack_ewma = clamp (Ewma.value t.ack);
    send_ewma = clamp (Ewma.value t.send);
    rtt_ratio = clamp t.rtt_ratio;
  }

let on_ack t ~sent_at ~received_at ~rtt =
  if not (Float.is_nan t.last_received_at) then begin
    (* Deltas in milliseconds; negative deltas (reordered echoes) are
       floored at zero. *)
    Ewma.update t.ack (Float.max 0. ((received_at -. t.last_received_at) *. 1e3));
    Ewma.update t.send (Float.max 0. ((sent_at -. t.last_sent_at) *. 1e3))
  end;
  t.last_received_at <- received_at;
  t.last_sent_at <- sent_at;
  if rtt < t.min_rtt_s then t.min_rtt_s <- rtt;
  t.rtt_ratio <-
    (if t.min_rtt_s > 0. && Float.is_finite t.min_rtt_s then rtt /. t.min_rtt_s
     else 1.);
  current t

let min_rtt t = if Float.is_finite t.min_rtt_s then Some t.min_rtt_s else None
let last_received_at t = t.last_received_at

let get m = function
  | 0 -> m.ack_ewma
  | 1 -> m.send_ewma
  | 2 -> m.rtt_ratio
  | d -> invalid_arg (Printf.sprintf "Memory.get: dimension %d" d)

let make ~ack_ewma ~send_ewma ~rtt_ratio =
  { ack_ewma = clamp ack_ewma; send_ewma = clamp send_ewma; rtt_ratio = clamp rtt_ratio }

let pp fmt m =
  Format.fprintf fmt "<ack_ewma=%.3f send_ewma=%.3f rtt_ratio=%.3f>" m.ack_ewma
    m.send_ewma m.rtt_ratio
