(** A RemyCC action (Section 4.2): what to do with the window when an
    ACK arrives in a given memory region.

    - [multiple] m >= 0: multiply the congestion window;
    - [increment] b: add to the window (may be negative);
    - [intersend_ms] r > 0: minimum milliseconds between successive
      sends.

    The default rule maps everything to m = 1, b = 1, r = 0.01
    (Section 4.3).  {!neighbors} generates the candidate set of the
    optimizer's "improve" step: per-dimension increments growing
    geometrically away from the current value, combined as a Cartesian
    product. *)

type t = { multiple : float; increment : float; intersend_ms : float }

val default : t
(** m = 1, b = 1, r = 0.01 ms. *)

val clamp : t -> t
(** Restrict to the searchable region: m in [0, 2], b in [-256, 256],
    r in [0.001, 1000] ms. *)

val validate : t -> (unit, string) result
(** Check that every component is finite and inside the {!clamp} region
    — the invariant every optimizer-produced (and every loadable) action
    satisfies.  The error names the offending component and value. *)

val max_window : float
(** The window ceiling {!apply} clamps to (1e6 packets) — also the top
    of the abstract window lattice the static analyzer iterates over. *)

val apply : t -> window:float -> float
(** New congestion window, clamped to [0, {!max_window}] packets. *)

val equal : t -> t -> bool

val neighbors :
  ?granularity:float * float * float -> ?multipliers:float list -> t -> t list
(** Candidate actions around [t], excluding [t] itself and clamping each
    candidate.  Defaults: granularity (0.01, 1, 0.01) for (m, b, r) and
    magnitude multipliers [1; 8; 64] — i.e. the paper's
    "r +/- 0.01, r +/- 0.08, r +/- 0.64, ..." pattern, 342 candidates
    before deduplication. *)

val pp : Format.formatter -> t -> unit
