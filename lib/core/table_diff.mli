(** Comparing two RemyCC rule tables.

    Section 6 argues that a virtue of computer-generated algorithms is
    that differences between two of them are explainable: "either they
    make different assumptions about the expected networks ... or they
    have different goals".  This module quantifies such differences by
    probing both tables over a grid of memory points and comparing the
    actions they map to — e.g. a delta = 10 table should show larger
    intersend times than a delta = 0.1 table in the congested region. *)

type report = {
  points : int;  (** grid points probed *)
  agreement : float;  (** fraction of points with exactly equal actions *)
  mean_d_multiple : float;  (** mean |m1 - m2| *)
  mean_d_increment : float;  (** mean |b1 - b2| *)
  mean_d_intersend : float;  (** mean |r1 - r2|, ms *)
  max_disagreement : Memory.t * Action.t * Action.t;
      (** the probed point with the largest action distance *)
}

val compare_on_grid : ?per_dim:int -> Rule_tree.t -> Rule_tree.t -> report
(** [compare_on_grid a b] probes a logarithmically spaced grid
    ([per_dim]^3 points, default 12 per dimension, covering the
    [0, 16384) memory cube with emphasis near the origin where flows
    actually live). *)

val action_distance : Action.t -> Action.t -> float
(** Scale-normalized distance used to pick [max_disagreement]:
    |dm| / 2 + |db| / 512 + |dr| / 1000. *)

val identical : report -> bool
(** True when every probed point mapped to exactly equal actions
    ([agreement = 1.0]).  Drives [remy_diff]'s exit code: sampling on
    the probe grid, so "identical" means indistinguishable at the grid
    resolution, not structural equality of the trees. *)

val pp : Format.formatter -> report -> unit
