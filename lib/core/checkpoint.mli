(** Crash-safe persistence for optimizer runs.

    A checkpoint is a versioned, self-validating snapshot of everything
    the design loop's future depends on: the full rule-tree state
    (including retired rules and epochs — {!Rule_tree.to_sexp_full}),
    the PRNG state words, every cumulative counter that feeds seeds or
    telemetry, the loop position, and a hash of the result-affecting
    configuration.  Restoring a snapshot and continuing produces a run
    bit-identical to one that was never interrupted, because the
    optimizer only reads checkpointable state at round boundaries.

    Durability protocol ({!save}): serialize to [DIR/checkpoint.sexp.tmp],
    [fsync] the file, atomically [rename] over [DIR/checkpoint.sexp],
    then [fsync] the directory — a crash at any point leaves either the
    old or the new checkpoint intact, never a torn one.

    Integrity: the payload carries an FNV-1a-64 checksum, so bit flips
    that would still parse (a changed digit) are rejected at load, not
    silently trained on.  {!load} additionally re-validates the rule
    tree ({!Rule_tree.of_sexp_full} checks boxes, bounds, reachability)
    and the PRNG state, and {!check_config} refuses snapshots whose
    configuration hash does not match the resuming run. *)

type position =
  | Epoch_start  (** about to promote all rules and start a fresh epoch *)
  | Mid_epoch of { first_rule : int option }
      (** inside an epoch's improvement loop; [first_rule] is the first
          rule this epoch improved (for the epoch telemetry record) *)

type snapshot = {
  config_hash : string;
      (** hex FNV-1a of the result-affecting config fingerprint
          ({!Optimizer.config_fingerprint}) *)
  position : position;
  epoch : int;  (** global epochs completed *)
  rounds : int;  (** improvement rounds completed *)
  improvements : int;
  subdivisions : int;
  evaluations : int;  (** feeds tally seeds — must restore exactly *)
  spec_sims : int;
  spec_skips : int;
  last_score : float;
  elapsed_s : float;  (** wall time consumed before the snapshot *)
  telemetry_epochs : int;  (** epoch records already emitted to sinks *)
  rng : int64 array;  (** {!Remy_util.Prng.state} words *)
  tree : Rule_tree.t;
}

val hash_hex : string -> string
(** 64-bit FNV-1a of a string, as 16 lowercase hex digits — used for
    both the config fingerprint and the payload checksum. *)

val file : dir:string -> string
(** [DIR/checkpoint.sexp], where {!save} writes and {!load} reads. *)

val to_sexp : snapshot -> Remy_util.Sexp.t
val of_sexp : Remy_util.Sexp.t -> (snapshot, string) result
(** [of_sexp] performs the full validation battery: schema version,
    checksum, counter sanity, PRNG state shape, and rule-tree
    structural checks.  The error says which validation failed. *)

val save : dir:string -> snapshot -> unit
(** Atomic, durable write (see the protocol above).  Creates [dir] if
    missing.  Raises [Sys_error]/[Unix.Unix_error] only for
    environmental failures (permissions, disk full). *)

val load : dir:string -> (snapshot, string) result
(** Read and validate [DIR/checkpoint.sexp].  Never raises: missing
    file, parse error (with line/column), checksum mismatch, version
    skew and structural violations all come back as [Error] with a
    diagnostic naming the failed validation. *)

val check_config : snapshot -> config_hash:string -> (unit, string) result
(** Refuse to resume under a different model/objective/search
    configuration: a checkpoint only licenses bit-identical continuation
    of the run that wrote it. *)
