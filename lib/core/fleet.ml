open Remy_sim
open Remy_util
open Remy_cc

(* Structure-of-arrays RemyCC sender fleet.

   One {!Sender_backend.factory} whose per-flow hot state — reliability
   counters, RTO estimator, pacing clock, RemyCC memory signals — lives
   in flat float/int arrays shared by all flows instead of one
   {!Tcp_sender} record + {!Remycc} closure set per flow.  At 10k flows
   this removes ~10k record/closure webs and, on the ack path, the
   per-ack [Cc.ack_info] record (the RemyCC update needs only four of
   its fields, read here straight from the ack): steady-state ack
   processing allocates only the [Memory.t] passed to
   {!Rule_tree.lookup} and is cache-friendly across flows.

   Every arithmetic expression below is copied verbatim from
   [Tcp_sender], [Remycc] and [Memory] so that runs are bit-identical
   to the per-record backend — test_fleet holds this equivalence on
   multi-flow lossy scenarios, and the timing-wheel/heap oracle makes
   it transitive to the seed implementation.  When changing one side,
   change the other. *)

type bank = {
  engine : Engine.t;
  pool : Packet.Pool.pool;
  metrics : Metrics.t;
  tree : Rule_tree.t;
  override : (int * Action.t) option;
  tally : Tally.t option;
  idle_restart_s : float; (* infinity = off, mirrors Remycc.make *)
  n : int;
  (* Per-flow wiring, registered as the factory is called in flow
     order. *)
  rng : Prng.t array;
  workload : Workload.t array;
  transmit : (Packet.t -> unit) array;
  start_mode : [ `Immediate | `Off_draw ] array;
  min_rto : float array;
  wake_cbs : (unit -> unit) array;
  (* Workload state *)
  on : bool array;
  demand_is_time : bool array;
  demand_seg : int array; (* valid when [not demand_is_time] *)
  demand_until : float array; (* valid when [demand_is_time] *)
  conn : int array; (* -1 before first connection *)
  (* Reliability state (per connection) *)
  next_seq : int array;
  highest_sent : int array; (* one past the highest seq ever sent *)
  cum_acked : int array;
  dup_acks : int array;
  in_recovery : bool array;
  recover_seq : int array;
  partial_rearmed : bool array;
  (* RTT estimation / RTO; srtt is NaN before the first sample. *)
  srtt : float array;
  rttvar : float array;
  rto_backoff : float array;
  (* Lazy retransmission timer (see Tcp_sender for the discipline). *)
  timer_armed : bool array;
  timer_deadline : float array;
  timer_event_at : float array; (* infinity when no live event *)
  timer_gen : int array;
  (* Pacing *)
  last_send : float array;
  wake_armed : bool array;
  (* RemyCC pacing state *)
  cwnd : float array;
  intersend : float array;
  (* RemyCC memory tracker (Memory.tracker unrolled; the EWMAs use
     Ewma.create_at 0., i.e. always-set blending). *)
  ack_ewma : float array;
  send_ewma : float array;
  last_received_at : float array; (* NaN before the first ack *)
  last_sent_at : float array; (* NaN before the first ack *)
  min_rtt : float array; (* infinity before the first sample *)
  rtt_ratio : float array;
}

let max_rto = Tcp_sender.max_rto

let make_bank ~tree ~override ~tally ~idle_restart_s (env : Sender_backend.env) =
  let n = env.Sender_backend.n_flows in
  if n < 1 then invalid_arg "Fleet: n_flows must be >= 1";
  {
    engine = env.engine;
    pool = env.pool;
    metrics = env.metrics;
    tree;
    override;
    tally;
    idle_restart_s;
    n;
    rng = Array.make n env.rng;
    workload = Array.make n env.workload;
    transmit = Array.make n env.transmit;
    start_mode = Array.make n env.start;
    min_rto = Array.make n env.min_rto;
    wake_cbs = Array.make n ignore;
    on = Array.make n false;
    demand_is_time = Array.make n false;
    demand_seg = Array.make n 0;
    demand_until = Array.make n 0.;
    conn = Array.make n (-1);
    next_seq = Array.make n 0;
    highest_sent = Array.make n 0;
    cum_acked = Array.make n 0;
    dup_acks = Array.make n 0;
    in_recovery = Array.make n false;
    recover_seq = Array.make n (-1);
    partial_rearmed = Array.make n false;
    srtt = Array.make n Float.nan;
    rttvar = Array.make n 0.;
    rto_backoff = Array.make n 1.;
    timer_armed = Array.make n false;
    timer_deadline = Array.make n Float.infinity;
    timer_event_at = Array.make n Float.infinity;
    timer_gen = Array.make n 0;
    last_send = Array.make n neg_infinity;
    wake_armed = Array.make n false;
    cwnd = Array.make n 0.;
    intersend = Array.make n 0.;
    ack_ewma = Array.make n 0.;
    send_ewma = Array.make n 0.;
    last_received_at = Array.make n Float.nan;
    last_sent_at = Array.make n Float.nan;
    min_rtt = Array.make n Float.infinity;
    rtt_ratio = Array.make n 0.;
  }

(* --- RemyCC (Remycc.make with mask = all_signals, inlined) --------- *)

let apply_mem b i mem =
  let id = Rule_tree.lookup b.tree mem in
  (match b.tally with Some t -> Tally.record t id mem | None -> ());
  let act = Rule_tree.action ?override:b.override b.tree id in
  b.cwnd.(i) <- Action.apply act ~window:b.cwnd.(i);
  b.intersend.(i) <- act.Action.intersend_ms /. 1e3

(* Per-ack fast path: when no tally wants the memory record, look the
   rule up straight from the three floats and allocate nothing. *)
(* remy-lint: hot *)
let apply3 b i ~ack_ewma ~send_ewma ~rtt_ratio =
  match b.tally with
  | Some _ -> apply_mem b i (Memory.make ~ack_ewma ~send_ewma ~rtt_ratio)
  | None ->
    let id = Rule_tree.lookup3 b.tree ~ack_ewma ~send_ewma ~rtt_ratio in
    let act = Rule_tree.action ?override:b.override b.tree id in
    b.cwnd.(i) <- Action.apply act ~window:b.cwnd.(i);
    b.intersend.(i) <- act.Action.intersend_ms /. 1e3

let cc_reset b i =
  (* Memory.reset *)
  b.ack_ewma.(i) <- 0.;
  b.send_ewma.(i) <- 0.;
  b.last_received_at.(i) <- Float.nan;
  b.last_sent_at.(i) <- Float.nan;
  b.min_rtt.(i) <- Float.infinity;
  b.rtt_ratio.(i) <- 0.;
  b.cwnd.(i) <- 0.;
  (* Section 4.3: the all-zero region's action sets the initial window. *)
  apply_mem b i Memory.zero

(* [rtt_s] is NaN when Karn's rule rejected the sample (Tcp_sender
   passes [rtt = None]); RemyCC then falls back to now - sent_at. *)
(* remy-lint: hot *)
let cc_on_ack b i ~now ~rtt_s ~acked_sent_at ~receiver_ts =
  (* Idle restart (Remycc.make's idle_restart_s, mirrored): an ACK gap
     longer than the threshold restarts the memory tracker — only the
     tracker, not the pacing state — before this ack is folded in. *)
  (if b.idle_restart_s < Float.infinity then
     let last = b.last_received_at.(i) in
     if (not (Float.is_nan last)) && receiver_ts -. last > b.idle_restart_s
     then begin
       b.ack_ewma.(i) <- 0.;
       b.send_ewma.(i) <- 0.;
       b.last_received_at.(i) <- Float.nan;
       b.last_sent_at.(i) <- Float.nan;
       b.min_rtt.(i) <- Float.infinity;
       b.rtt_ratio.(i) <- 0.
     end);
  let rtt = if Float.is_nan rtt_s then now -. acked_sent_at else rtt_s in
  (* Memory.on_ack: deltas in milliseconds, floored at zero. *)
  if not (Float.is_nan b.last_received_at.(i)) then begin
    let xa = Float.max 0. ((receiver_ts -. b.last_received_at.(i)) *. 1e3) in
    b.ack_ewma.(i) <-
      b.ack_ewma.(i) +. (Memory.ewma_weight *. (xa -. b.ack_ewma.(i)));
    let xs = Float.max 0. ((acked_sent_at -. b.last_sent_at.(i)) *. 1e3) in
    b.send_ewma.(i) <-
      b.send_ewma.(i) +. (Memory.ewma_weight *. (xs -. b.send_ewma.(i)))
  end;
  b.last_received_at.(i) <- receiver_ts;
  b.last_sent_at.(i) <- acked_sent_at;
  if rtt < b.min_rtt.(i) then b.min_rtt.(i) <- rtt;
  b.rtt_ratio.(i) <-
    (if b.min_rtt.(i) > 0. && Float.is_finite b.min_rtt.(i) then
       rtt /. b.min_rtt.(i)
     else 1.);
  apply3 b i ~ack_ewma:b.ack_ewma.(i) ~send_ewma:b.send_ewma.(i)
    ~rtt_ratio:b.rtt_ratio.(i)

(* --- sender (Tcp_sender, inlined over the bank) -------------------- *)

let in_flight b i = max 0 (b.next_seq.(i) - b.cum_acked.(i) - b.dup_acks.(i))

let current_rto b i =
  let base =
    if Float.is_nan b.srtt.(i) then 1.0 else b.srtt.(i) +. (4. *. b.rttvar.(i))
  in
  Float.min max_rto (Float.max b.min_rto.(i) base *. b.rto_backoff.(i))

let segments_remaining b i =
  if b.demand_is_time.(i) then
    if Engine.now b.engine < b.demand_until.(i) then max_int else 0
  else b.demand_seg.(i) - b.next_seq.(i)

let rec schedule_timer_event b i at =
  b.timer_gen.(i) <- b.timer_gen.(i) + 1;
  let gen = b.timer_gen.(i) in
  b.timer_event_at.(i) <- at;
  Engine.schedule b.engine at (fun () -> timer_event b i gen)

and timer_event b i gen =
  if gen = b.timer_gen.(i) then begin
    b.timer_event_at.(i) <- Float.infinity;
    if b.timer_armed.(i) then begin
      if Engine.now b.engine >= b.timer_deadline.(i) then on_rto b i
      else schedule_timer_event b i b.timer_deadline.(i)
    end
  end

and arm_timer b i =
  b.timer_armed.(i) <- true;
  b.timer_deadline.(i) <- Engine.now b.engine +. current_rto b i;
  if b.timer_deadline.(i) < b.timer_event_at.(i) then
    schedule_timer_event b i b.timer_deadline.(i)

and disarm_timer b i = b.timer_armed.(i) <- false

and send_packet b i ~seq =
  let now = Engine.now b.engine in
  let retx = seq < b.highest_sent.(i) in
  let pkt =
    Packet.Pool.acquire b.pool ~flow:i ~seq ~conn:b.conn.(i) ~now ~retx
      ~ecn_capable:false ()
  in
  b.highest_sent.(i) <- max b.highest_sent.(i) (seq + 1);
  b.last_send.(i) <- now;
  b.transmit.(i) pkt;
  if not b.timer_armed.(i) then arm_timer b i

and try_send b i =
  if b.on.(i) then begin
    let now = Engine.now b.engine in
    let window = max 1 (int_of_float (Float.max 0. b.cwnd.(i))) in
    if in_flight b i < window && segments_remaining b i > 0 then begin
      let gap = b.intersend.(i) in
      let allowed_at = b.last_send.(i) +. gap in
      if now +. 1e-12 >= allowed_at then begin
        send_packet b i ~seq:b.next_seq.(i);
        b.next_seq.(i) <- b.next_seq.(i) + 1;
        try_send b i
      end
      else if not b.wake_armed.(i) then begin
        b.wake_armed.(i) <- true;
        Engine.schedule b.engine allowed_at b.wake_cbs.(i)
      end
    end
  end

and on_rto b i =
  b.timer_armed.(i) <- false;
  if b.on.(i) && b.highest_sent.(i) > b.cum_acked.(i) then begin
    let now = Engine.now b.engine in
    (let tr = Engine.tracer b.engine in
     if Remy_obs.Trace.is_on tr then
       Remy_obs.Trace.sender_event tr ~now ~kind:Remy_obs.Trace.Timeout ~flow:i
         ~seq:b.cum_acked.(i));
    b.rto_backoff.(i) <- Float.min 64. (b.rto_backoff.(i) *. 2.);
    b.dup_acks.(i) <- 0;
    b.in_recovery.(i) <- false;
    (* RFC 6582 "careful": see Tcp_sender.on_rto. *)
    b.recover_seq.(i) <- b.highest_sent.(i);
    b.next_seq.(i) <- b.cum_acked.(i);
    arm_timer b i;
    try_send b i
  end

and switch_on b i =
  let now = Engine.now b.engine in
  b.on.(i) <- true;
  b.conn.(i) <- b.conn.(i) + 1;
  b.next_seq.(i) <- 0;
  b.highest_sent.(i) <- 0;
  b.cum_acked.(i) <- 0;
  b.dup_acks.(i) <- 0;
  b.in_recovery.(i) <- false;
  b.recover_seq.(i) <- -1;
  b.partial_rearmed.(i) <- false;
  b.srtt.(i) <- Float.nan;
  b.rttvar.(i) <- 0.;
  b.rto_backoff.(i) <- 1.;
  disarm_timer b i;
  b.last_send.(i) <- neg_infinity;
  cc_reset b i;
  Metrics.flow_on b.metrics i now;
  (match Workload.sample_on b.workload.(i) b.rng.(i) with
  | Workload.Packets n ->
    b.demand_is_time.(i) <- false;
    b.demand_seg.(i) <- n
  | Workload.Seconds s ->
    b.demand_is_time.(i) <- true;
    b.demand_until.(i) <- now +. s;
    if Float.is_finite s then begin
      let conn = b.conn.(i) in
      Engine.schedule_in b.engine s (fun () ->
          if b.on.(i) && b.conn.(i) = conn then switch_off b i)
    end);
  try_send b i

and switch_off b i =
  let now = Engine.now b.engine in
  b.on.(i) <- false;
  disarm_timer b i;
  Metrics.flow_off b.metrics i now;
  let off = Workload.sample_off b.workload.(i) b.rng.(i) in
  if Float.is_finite off then
    Engine.schedule_in b.engine off (fun () -> switch_on b i)

let start b i =
  match b.start_mode.(i) with
  | `Immediate -> switch_on b i
  | `Off_draw ->
    let off = Workload.sample_off b.workload.(i) b.rng.(i) in
    if Float.is_finite off then
      Engine.schedule_in b.engine off (fun () -> switch_on b i)

let complete_if_done b i =
  if
    (not b.demand_is_time.(i))
    && b.cum_acked.(i) >= b.demand_seg.(i)
    && b.on.(i)
  then switch_off b i

let handle_ack b i (ack : Packet.ack) =
  if b.on.(i) && ack.ack_conn = b.conn.(i) then begin
    let now = Engine.now b.engine in
    let rtt_s =
      if ack.acked_retx then Float.nan else now -. ack.acked_sent_at
    in
    (* RFC 6298 estimator (NaN = no Karn-valid sample). *)
    if not (Float.is_nan rtt_s) then begin
      if Float.is_nan b.srtt.(i) then begin
        b.srtt.(i) <- rtt_s;
        b.rttvar.(i) <- rtt_s /. 2.
      end
      else begin
        b.rttvar.(i) <-
          (0.75 *. b.rttvar.(i)) +. (0.25 *. Float.abs (b.srtt.(i) -. rtt_s));
        b.srtt.(i) <- (0.875 *. b.srtt.(i)) +. (0.125 *. rtt_s)
      end
    end;
    let newly = ack.cum_ack - b.cum_acked.(i) in
    if newly > 0 then begin
      b.cum_acked.(i) <- ack.cum_ack;
      if b.next_seq.(i) < b.cum_acked.(i) then b.next_seq.(i) <- b.cum_acked.(i);
      b.dup_acks.(i) <- 0;
      b.rto_backoff.(i) <- 1.;
      if b.in_recovery.(i) then begin
        if b.cum_acked.(i) >= b.recover_seq.(i) then begin
          b.in_recovery.(i) <- false;
          arm_timer b i
        end
        else begin
          (* NewReno partial ACK, impatient re-arm: see Tcp_sender. *)
          send_packet b i ~seq:b.cum_acked.(i);
          if not b.partial_rearmed.(i) then begin
            b.partial_rearmed.(i) <- true;
            arm_timer b i
          end
        end
      end
      else if b.highest_sent.(i) > b.cum_acked.(i) then arm_timer b i
      else disarm_timer b i;
      if b.highest_sent.(i) <= b.cum_acked.(i) then disarm_timer b i
    end
    else begin
      b.dup_acks.(i) <- b.dup_acks.(i) + 1;
      if
        b.dup_acks.(i) = 3
        && (not b.in_recovery.(i))
        && b.cum_acked.(i) > b.recover_seq.(i)
      then begin
        b.in_recovery.(i) <- true;
        b.recover_seq.(i) <- b.next_seq.(i);
        b.partial_rearmed.(i) <- false;
        (* cc.on_loss is a no-op for RemyCC. *)
        send_packet b i ~seq:b.cum_acked.(i)
      end
    end;
    cc_on_ack b i ~now ~rtt_s ~acked_sent_at:ack.acked_sent_at
      ~receiver_ts:ack.received_at;
    complete_if_done b i;
    try_send b i
  end

(* --- factory ------------------------------------------------------- *)

let factory ?override ?tally ?(idle_restart_s = Float.infinity) tree :
    Sender_backend.factory =
  let bank = ref None in
  fun env ->
    let b =
      match !bank with
      | Some b -> b
      | None ->
        let b = make_bank ~tree ~override ~tally ~idle_restart_s env in
        for i = 0 to b.n - 1 do
          b.wake_cbs.(i) <-
            (fun () ->
              b.wake_armed.(i) <- false;
              try_send b i)
        done;
        bank := Some b;
        b
    in
    let i = env.Sender_backend.flow in
    if i < 0 || i >= b.n then
      invalid_arg (Printf.sprintf "Fleet: flow %d out of range (n=%d)" i b.n);
    if env.Sender_backend.n_flows <> b.n then
      invalid_arg "Fleet: inconsistent n_flows across factory calls";
    b.rng.(i) <- env.Sender_backend.rng;
    b.workload.(i) <- env.Sender_backend.workload;
    b.transmit.(i) <- env.Sender_backend.transmit;
    b.start_mode.(i) <- env.Sender_backend.start;
    b.min_rto.(i) <- env.Sender_backend.min_rto;
    {
      Sender_backend.start_flow = (fun () -> start b i);
      handle_ack = (fun ack -> handle_ack b i ack);
      cwnd = (fun () -> b.cwnd.(i));
      pacing_gap = (fun () -> b.intersend.(i));
      srtt =
        (fun () -> if Float.is_nan b.srtt.(i) then None else Some b.srtt.(i));
    }
