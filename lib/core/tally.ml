open Remy_util

type slot = {
  mutable count : int;
  mutable kept : Memory.t list;
  mutable kept_n : int;
}

type t = { slots : slot array; reservoir : int; rng : Prng.t }

let create ?(reservoir = 128) ~capacity ~seed () =
  {
    slots = Array.init capacity (fun _ -> { count = 0; kept = []; kept_n = 0 });
    reservoir;
    rng = Prng.create seed;
  }

let record t id m =
  let s = t.slots.(id) in
  s.count <- s.count + 1;
  if s.kept_n < t.reservoir then begin
    s.kept <- m :: s.kept;
    s.kept_n <- s.kept_n + 1
  end
  else if Prng.int t.rng s.count < t.reservoir then begin
    (* Replace a uniformly chosen kept sample. *)
    let victim = Prng.int t.rng s.kept_n in
    s.kept <- List.mapi (fun i x -> if i = victim then m else x) s.kept
  end

let count t id = t.slots.(id).count
let samples t id = t.slots.(id).kept

let export t =
  let acc = ref [] in
  for id = Array.length t.slots - 1 downto 0 do
    let s = t.slots.(id) in
    if s.count > 0 then acc := (id, s.count, s.kept) :: !acc
  done;
  !acc

let merge_exported dst slots =
  List.iter
    (fun (id, count, kept) ->
      if id < Array.length dst.slots then begin
        let d = dst.slots.(id) in
        d.count <- d.count + count;
        (* Pool then re-trim to the reservoir size. *)
        let pooled = kept @ d.kept in
        let rec take n = function
          | [] -> []
          | _ when n = 0 -> []
          | x :: tl -> x :: take (n - 1) tl
        in
        d.kept <- take dst.reservoir pooled;
        d.kept_n <- List.length d.kept
      end)
    slots

(* A slot that never fired pools an empty sample list into an unchanged
   one, so skipping zero-count slots (as [export] does) is a no-op. *)
let merge_into dst src = merge_exported dst (export src)

let most_used t ~among =
  let best = ref None in
  List.iter
    (fun id ->
      let c = count t id in
      if c > 0 then
        match !best with
        | Some (_, bc) when bc >= c -> ()
        | _ -> best := Some (id, c))
    among;
  Option.map fst !best

let median_memory t id =
  match samples t id with
  | [] -> None
  | sams ->
    let component d =
      let values = List.map (fun m -> Memory.get m d) sams in
      Stats.median (Array.of_list values)
    in
    Some
      (Memory.make ~ack_ewma:(component 0) ~send_ewma:(component 1)
         ~rtt_ratio:(component 2))
