(** The protocol designer's prior assumptions about the network
    (Section 3.1): ranges of link speed, propagation RTT and degree of
    multiplexing, plus the traffic model, from which design-time network
    specimens are drawn.

    The named models below are the paper's design tables (Section 5.1),
    except that on/off means and simulation horizons default to the
    scaled-down values recorded in DESIGN.md (pass the paper's values
    explicitly to reproduce at full scale). *)

type on_process =
  | On_seconds of float  (** exponential mean, saturating while on *)
  | On_bytes of float  (** exponential mean transfer size *)
  | On_icsi  (** Fig. 3's empirical flow lengths *)

type t = {
  min_senders : int;
  max_senders : int;  (** uniform degree of multiplexing *)
  link_mbps : float * float;  (** uniform *)
  rtt_ms : float * float;  (** uniform *)
  on_process : on_process;
  mean_off_s : float;
  queue_capacity : int;  (** design-time queues are unlimited *)
  sim_duration : float;  (** seconds simulated per specimen *)
  topology : string option;
      (** [None] (the default in every named model) evaluates specimens
          on the classic dumbbell; [Some name] routes them through the
          named multi-bottleneck {!Remy_cc.Topology} builder
          ("parking-lot", "fat-tree-pod", "incast"), with the drawn
          link speed scaling the bottleneck tier and the drawn RTT the
          total propagation. *)
}

type specimen = {
  n : int;
  spec_link_mbps : float;
  rtt_s : float;
  workload : Remy_sim.Workload.t;
  spec_seed : int;
}

val draw : t -> Remy_util.Prng.t -> specimen
val draw_many : t -> Remy_util.Prng.t -> int -> specimen list

(** {2 The paper's design models (Section 5.1)} *)

val general : ?mean_on_s:float -> ?mean_off_s:float -> ?sim_duration:float -> unit -> t
(** 1-16 senders, 10-20 Mbps, RTT 100-200 ms — the model behind the
    delta = 0.1 / 1 / 10 RemyCCs.  Paper defaults: on/off mean 5 s,
    100 s horizon; our scaled defaults: 1 s / 1 s, 12 s. *)

val onex : ?sim_duration:float -> unit -> t
(** Link speed known exactly: 15 Mbps, RTT 150 ms, 2 senders. *)

val tenx : ?sim_duration:float -> unit -> t
(** Tenfold link-speed range: 4.7-47 Mbps, RTT 150 ms, 2 senders. *)

val datacenter : ?link_mbps:float -> ?sim_duration:float -> unit -> t
(** 1-64 senders, 4 ms RTT, exponential transfers, short off times.
    Default 1000 Mbps — the paper's 10 Gbps scaled by 10 (DESIGN.md,
    "Substitutions"), with transfer size scaled likewise. *)

val coexist : ?sim_duration:float -> unit -> t
(** RTT design range stretched to 100 ms - 10 s so the protocol
    tolerates a buffer-filling competitor (Section 5.6). *)

val pp : Format.formatter -> t -> unit
