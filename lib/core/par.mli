(** Work-stealing parallel map over OCaml 5 domains.

    Remy's inner loop — evaluating ~100 candidate actions on the same
    specimen networks — is "embarrassingly parallel" (Section 4.3); the
    paper burned CPU-weeks on 48-80-core machines.  Each task here is a
    full simulation batch, so the per-task spawn overhead is negligible.
    Results are deterministic because every task owns its own seeds;
    scheduling order cannot influence them. *)

val recommended_domains : unit -> int
(** Physical core count minus one (at least 1). *)

val map : domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f xs] applies [f] to every element, using up to
    [domains] total domains (the calling domain participates).  Any
    exception raised by [f] is re-raised after all domains finish. *)

type stats = { calls : int; tasks : int; spawns : int }
(** Cumulative process-wide counters: [map] invocations, tasks executed,
    helper domains spawned.  Monotonic; diff two snapshots for a span. *)

val stats : unit -> stats
