(** Work-stealing parallel map over OCaml 5 domains.

    Remy's inner loop — evaluating ~100 candidate actions on the same
    specimen networks — is "embarrassingly parallel" (Section 4.3); the
    paper burned CPU-weeks on 48-80-core machines.  Two entry points:

    - {!map} spawns fresh domains per call — fine for one-shot batches
      (scenario replications, CLI tools).
    - {!Pool} keeps the domains alive between batches, so the training
      hot loop (hundreds of thousands of small task grids) pays the
      spawn cost once per [design] run instead of once per candidate
      round.

    Both schedule through a shared atomic cursor (work stealing), and
    both are deterministic: every task owns its own seeds and writes
    only its own result slot, so scheduling order cannot influence
    results. *)

val recommended_domains : unit -> int
(** Physical core count minus one (at least 1). *)

val map : domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f xs] applies [f] to every element, using up to
    [domains] total domains (the calling domain participates).  Any
    exception raised by [f] is re-raised after all domains finish.

    [domains] is clamped to the hardware's recommended domain count:
    OCaml 5's minor GC synchronizes all running domains, so
    oversubscribing physical cores only adds scheduling barriers.
    Results are unaffected — tasks are deterministic per index. *)

exception Task_failed of { index : int; attempts : int; error : string }
(** A pool task kept failing after its configured retries; [error] is
    the last exception's rendering.  Raised (once per batch) by
    {!Pool.map} when the pool was created with [retries > 0]. *)

exception Stalled of { completed : int; total : int; waited_s : float }
(** The pool's watchdog saw no task complete for the configured timeout
    — a worker domain is wedged (OCaml domains cannot be killed), so the
    batch is abandoned.  The pool is unusable afterwards: do not call
    {!Pool.map} or {!Pool.shutdown} on it again; checkpoint and exit. *)

(** A persistent pool of worker domains.  [create] spawns [domains - 1]
    helpers that block on a condition variable between jobs; each
    {!Pool.map} wakes them, races them (and the caller) over one shared
    cursor, and parks them again.  Not re-entrant: one job at a time per
    pool, submitted from the domain that created it. *)
module Pool : sig
  type t

  val create :
    ?retries:int ->
    ?on_retry:(task:int -> attempt:int -> exn -> unit) ->
    ?stall_timeout_s:float ->
    domains:int ->
    unit ->
    t
  (** Spawn helper domains (parked until work arrives) so that
      [domains] total serve each job — clamped to the hardware's
      recommended domain count, like {!val:map}.

      [retries] (default 0): a raising task is re-run up to this many
      times before the batch fails; tasks are pure, so retries cannot
      change results, only absorb transient faults.  Each retry invokes
      [on_retry] (from whichever domain ran the task — the callback must
      be thread-safe) and bumps the {!stats} [pool_retries] counter.
      With [retries = 0] the original exception propagates unchanged;
      with [retries > 0] exhausted retries raise {!Task_failed}.

      [stall_timeout_s]: enable the watchdog — if no task completes for
      this long while the submitter is waiting on helpers, raise
      {!Stalled} rather than hang.  Set it well above the longest
      expected single task.  It cannot fire for a task the submitting
      domain itself is running (the submitter cannot watch itself). *)

  val size : t -> int
  (** Total domains that serve a job, including the submitter (after
      the hardware clamp). *)

  val map : t -> ('a -> 'b) -> 'a array -> 'b array
  (** Like {!val:map} but reusing the pool's domains.  The caller
      participates; returns when every task has finished.  Any exception
      raised by [f] is re-raised after the batch drains (remaining tasks
      are skipped), subject to the pool's retry policy. *)

  val shutdown : t -> unit
  (** Wake and join every helper.  The pool must not be used after. *)

  val with_pool :
    ?retries:int ->
    ?on_retry:(task:int -> attempt:int -> exn -> unit) ->
    ?stall_timeout_s:float ->
    domains:int ->
    (t -> 'a) ->
    'a
  (** [create], run, then [shutdown] (also on exception). *)
end

type stats = {
  calls : int;  (** transient {!val:map} invocations *)
  tasks : int;  (** tasks executed by transient maps *)
  spawns : int;  (** helper domains spawned ({!val:map} + pool creation) *)
  pool_jobs : int;  (** {!Pool.map} submissions *)
  pool_tasks : int;  (** tasks executed through pools *)
  pool_helper_tasks : int;
      (** pool tasks claimed by helper domains rather than the submitter
          — [pool_helper_tasks / pool_tasks] is pool utilization: 0 when
          helpers never win a task (e.g. a one-core box), approaching
          [(size-1)/size] when work spreads evenly *)
  pool_retries : int;  (** failed task attempts absorbed by retry *)
}
(** Cumulative process-wide counters.  Monotonic; diff two snapshots for
    a span. *)

val stats : unit -> stats
