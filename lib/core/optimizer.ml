open Remy_util

type config = {
  model : Net_model.t;
  objective : Objective.t;
  specimens_per_step : int;
  domains : int;
  k_subdivide : int;
  candidate_multipliers : float list;
  rounds_per_rule : int;
  max_epochs : int;
  max_rules : int;
  prune_agreeing : bool;
  incremental : bool;
  wall_budget_s : float;
  seed : int;
}

let default_config ?(specimens_per_step = 16) ?domains ?(k_subdivide = 4)
    ?(candidate_multipliers = [ 1.; 8.; 64. ]) ?(rounds_per_rule = 40)
    ?(max_epochs = 16) ?(max_rules = 256) ?(prune_agreeing = false)
    ?(incremental = true) ?(wall_budget_s = 600.) ?(seed = 1) ~model ~objective () =
  {
    model;
    objective;
    specimens_per_step;
    domains = (match domains with Some d -> d | None -> Par.recommended_domains ());
    k_subdivide;
    candidate_multipliers;
    rounds_per_rule;
    prune_agreeing;
    incremental;
    max_epochs;
    max_rules;
    wall_budget_s;
    seed;
  }

type report = {
  tree : Rule_tree.t;
  epochs : int;
  improvements : int;
  subdivisions : int;
  evaluations : int;
  spec_sims : int;
  spec_skips : int;
  final_score : float;
}

type event =
  | Improving of { epoch : int; rule : int; uses : int; score : float }
  | Improved of { rule : int; action : Action.t; score : float }
  | Subdivided of { rule : int; at : Memory.t; rules_now : int }
  | Pruned of { collapsed : int; rules_now : int }
  | Epoch_done of Remy_obs.Telemetry.epoch

let pp_event ppf = function
  | Improving { epoch; rule; uses; score } ->
    Format.fprintf ppf "epoch %d: improving rule %d (uses=%d, score %.4f)" epoch
      rule uses score
  | Improved { rule; action; score } ->
    Format.fprintf ppf "  rule %d -> %a (score %.4f)" rule Action.pp action score
  | Subdivided { rule; at; rules_now } ->
    Format.fprintf ppf "epoch: subdivided rule %d at %a (%d rules now)" rule
      Memory.pp at rules_now
  | Pruned { collapsed; rules_now } ->
    Format.fprintf ppf "pruned %d agreeing split(s) (%d rules now)" collapsed
      rules_now
  | Epoch_done e ->
    Format.fprintf ppf
      "epoch %d done: %d rules, score %.4f, %d evals, %d improvements, %.1f s"
      e.Remy_obs.Telemetry.epoch e.Remy_obs.Telemetry.live_rules
      e.Remy_obs.Telemetry.score e.Remy_obs.Telemetry.evaluations
      e.Remy_obs.Telemetry.improvements e.Remy_obs.Telemetry.wall_s

let design ?(progress = fun (_ : event) -> ()) config =
  let started = Remy_obs.Clock.now_s () in
  let out_of_time () = Remy_obs.Clock.now_s () -. started > config.wall_budget_s in
  let rng = Prng.create config.seed in
  let tree = Rule_tree.create () in
  let improvements = ref 0 in
  let subdivisions = ref 0 in
  let evaluations = ref 0 in
  let spec_sims = ref 0 in
  let spec_skips = ref 0 in
  let last_score = ref neg_infinity in
  let queue_capacity = config.model.Net_model.queue_capacity in
  let duration = config.model.Net_model.sim_duration in
  let pool = Par.Pool.create ~domains:config.domains in
  (* Whole-table evaluation on the pool; returns the per-specimen cache
     that licenses incremental candidate scoring. *)
  let eval_baseline ?tally specimens =
    incr evaluations;
    let r, cache =
      Evaluator.baseline ~pool ?tally ~objective:config.objective ~queue_capacity
        ~duration tree specimens
    in
    (r.Evaluator.mean_score, cache)
  in
  (* Greedy improvement of one rule's action on fixed specimens
     (step 3).  Returns true if the action changed. *)
  let improve_rule id cache baseline =
    let changed = ref false in
    let current = ref baseline in
    let continue = ref true in
    let rounds = ref 0 in
    while !continue && !rounds < config.rounds_per_rule && not (out_of_time ()) do
      incr rounds;
      let candidates =
        Array.of_list
          (Action.neighbors
             ~multipliers:config.candidate_multipliers
             (Rule_tree.action tree id))
      in
      let scores, (sims, skips) =
        Evaluator.candidate_scores ~pool ~incremental:config.incremental
          ~objective:config.objective ~queue_capacity ~duration tree ~rule:id
          candidates cache
      in
      evaluations := !evaluations + Array.length candidates;
      spec_sims := !spec_sims + sims;
      spec_skips := !spec_skips + skips;
      let best = ref (-1) in
      Array.iteri (fun i s -> if s > !current && (!best < 0 || s > scores.(!best)) then best := i) scores;
      if !best >= 0 then begin
        Rule_tree.set_action tree id candidates.(!best);
        current := scores.(!best);
        changed := true;
        incr improvements;
        progress
          (Improved { rule = id; action = candidates.(!best); score = !current })
      end
      else continue := false
    done;
    last_score := !current;
    !changed
  in
  let subdivide_most_used () =
    if config.prune_agreeing then begin
      let collapsed = Rule_tree.collapse_agreeing tree in
      if collapsed > 0 then
        progress (Pruned { collapsed; rules_now = Rule_tree.num_rules tree })
    end;
    if Rule_tree.num_rules tree < config.max_rules then begin
      let specimens = Net_model.draw_many config.model rng config.specimens_per_step in
      let tally =
        Tally.create ~capacity:(Rule_tree.capacity tree)
          ~seed:(config.seed lxor 0xD1F) ()
      in
      ignore (eval_baseline ~tally specimens);
      match Tally.most_used tally ~among:(Rule_tree.live_ids tree) with
      | None -> ()
      | Some id ->
        let at =
          match Tally.median_memory tally id with
          | Some m -> m
          | None -> Memory.zero
        in
        ignore (Rule_tree.subdivide tree id ~at);
        incr subdivisions;
        progress (Subdivided { rule = id; at; rules_now = Rule_tree.num_rules tree })
    end
  in
  let global_epoch = ref 0 in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) @@ fun () ->
  (try
     while !global_epoch < config.max_epochs && not (out_of_time ()) do
       (* Step 1: everything joins the current epoch. *)
       Rule_tree.promote_all tree !global_epoch;
       (* Steps 2-3: improve most-used rules of this epoch until none
          remain or time runs out. *)
       let first_rule = ref None in
       let continue = ref true in
       while !continue && not (out_of_time ()) do
         let specimens =
           Net_model.draw_many config.model rng config.specimens_per_step
         in
         let tally =
           Tally.create ~capacity:(Rule_tree.capacity tree)
             ~seed:(config.seed lxor !evaluations) ()
         in
         let baseline, cache = eval_baseline ~tally specimens in
         let current_epoch_rules =
           List.filter
             (fun id -> Rule_tree.epoch tree id = !global_epoch)
             (Rule_tree.live_ids tree)
         in
         match Tally.most_used tally ~among:current_epoch_rules with
         | None -> continue := false
         | Some id ->
           if !first_rule = None then first_rule := Some id;
           progress
             (Improving
                {
                  epoch = !global_epoch;
                  rule = id;
                  uses = Tally.count tally id;
                  score = baseline;
                });
           ignore (improve_rule id cache baseline);
           Rule_tree.set_epoch tree id (!global_epoch + 1)
       done;
       (* Step 4. *)
       incr global_epoch;
       (* Step 5. *)
       if !global_epoch mod config.k_subdivide = 0 then subdivide_most_used ();
       let par = Par.stats () in
       progress
         (Epoch_done
            {
              Remy_obs.Telemetry.epoch = !global_epoch - 1;
              live_rules = Rule_tree.num_rules tree;
              most_used_rule = !first_rule;
              evaluations = !evaluations;
              improvements = !improvements;
              subdivisions = !subdivisions;
              score = !last_score;
              wall_s = Remy_obs.Clock.now_s () -. started;
              domains = config.domains;
              par_tasks = par.Par.tasks + par.Par.pool_tasks;
              par_spawns = par.Par.spawns;
              par_jobs = par.Par.pool_jobs;
              par_helper_tasks = par.Par.pool_helper_tasks;
              spec_sims = !spec_sims;
              spec_skips = !spec_skips;
            })
     done
   with Stdlib.Exit -> ());
  {
    tree;
    epochs = !global_epoch;
    improvements = !improvements;
    subdivisions = !subdivisions;
    evaluations = !evaluations;
    spec_sims = !spec_sims;
    spec_skips = !spec_skips;
    final_score = !last_score;
  }
