open Remy_util

type config = {
  model : Net_model.t;
  objective : Objective.t;
  specimens_per_step : int;
  domains : int;
  k_subdivide : int;
  candidate_multipliers : float list;
  rounds_per_rule : int;
  max_epochs : int;
  max_rules : int;
  prune_agreeing : bool;
  incremental : bool;
  wall_budget_s : float;
  seed : int;
  task_retries : int;
  stall_timeout_s : float option;
}

let default_config ?(specimens_per_step = 16) ?domains ?(k_subdivide = 4)
    ?(candidate_multipliers = [ 1.; 8.; 64. ]) ?(rounds_per_rule = 40)
    ?(max_epochs = 16) ?(max_rules = 256) ?(prune_agreeing = false)
    ?(incremental = true) ?(wall_budget_s = 600.) ?(seed = 1) ?(task_retries = 1)
    ?stall_timeout_s ~model ~objective () =
  {
    model;
    objective;
    specimens_per_step;
    domains = (match domains with Some d -> d | None -> Par.recommended_domains ());
    k_subdivide;
    candidate_multipliers;
    rounds_per_rule;
    prune_agreeing;
    incremental;
    max_epochs;
    max_rules;
    wall_budget_s;
    seed;
    task_retries;
    stall_timeout_s;
  }

(* Canonical rendering of every config field that can influence the
   search trajectory.  Fields that provably cannot — [domains],
   [incremental] (result-invariant by construction), [task_retries] and
   [stall_timeout_s] (tasks are pure), and the extendable budgets
   [max_epochs] / [wall_budget_s] — are deliberately excluded, so a
   checkpoint can be resumed with more budget or different parallelism
   and still continue bit-identically. *)
let config_fingerprint config =
  let b = Buffer.create 256 in
  let s x = Buffer.add_string b x in
  let f x = s (Printf.sprintf "%.17g;" x) in
  let i x = s (Printf.sprintf "%d;" x) in
  let m = config.model in
  s "model:";
  i m.Net_model.min_senders;
  i m.Net_model.max_senders;
  let lo, hi = m.Net_model.link_mbps in
  f lo;
  f hi;
  let lo, hi = m.Net_model.rtt_ms in
  f lo;
  f hi;
  (match m.Net_model.on_process with
  | Net_model.On_seconds x ->
    s "on-seconds:";
    f x
  | Net_model.On_bytes x ->
    s "on-bytes:";
    f x
  | Net_model.On_icsi -> s "on-icsi;");
  f m.Net_model.mean_off_s;
  i m.Net_model.queue_capacity;
  f m.Net_model.sim_duration;
  (* Rendered only when set, so pre-existing dumbbell fingerprints (and
     their checkpoints) stay valid. *)
  (match m.Net_model.topology with
  | Some name ->
    s "topology:";
    s name;
    s ";"
  | None -> ());
  s "objective:";
  f config.objective.Objective.alpha;
  f config.objective.Objective.beta;
  f config.objective.Objective.delta;
  s "search:";
  i config.specimens_per_step;
  i config.k_subdivide;
  List.iter f config.candidate_multipliers;
  i config.rounds_per_rule;
  i config.max_rules;
  s (if config.prune_agreeing then "prune;" else "noprune;");
  i config.seed;
  Checkpoint.hash_hex (Buffer.contents b)

type checkpoint_spec = { dir : string; every_rounds : int }

type report = {
  tree : Rule_tree.t;
  epochs : int;
  rounds : int;
  improvements : int;
  subdivisions : int;
  evaluations : int;
  spec_sims : int;
  spec_skips : int;
  final_score : float;
  interrupted : bool;
}

type event =
  | Improving of { epoch : int; rule : int; uses : int; score : float }
  | Improved of { rule : int; action : Action.t; score : float }
  | Subdivided of { rule : int; at : Memory.t; rules_now : int }
  | Pruned of { collapsed : int; rules_now : int }
  | Epoch_done of Remy_obs.Telemetry.epoch
  | Checkpoint_saved of {
      path : string;
      epoch : int;
      rounds : int;
      duration_s : float;
    }
  | Resumed of { epoch : int; rounds : int; elapsed_s : float }
  | Worker_retry of { task : int; attempt : int; error : string }

let pp_event ppf = function
  | Improving { epoch; rule; uses; score } ->
    Format.fprintf ppf "epoch %d: improving rule %d (uses=%d, score %.4f)" epoch
      rule uses score
  | Improved { rule; action; score } ->
    Format.fprintf ppf "  rule %d -> %a (score %.4f)" rule Action.pp action score
  | Subdivided { rule; at; rules_now } ->
    Format.fprintf ppf "epoch: subdivided rule %d at %a (%d rules now)" rule
      Memory.pp at rules_now
  | Pruned { collapsed; rules_now } ->
    Format.fprintf ppf "pruned %d agreeing split(s) (%d rules now)" collapsed
      rules_now
  | Epoch_done e ->
    Format.fprintf ppf
      "epoch %d done: %d rules, score %.4f, %d evals, %d improvements, %.1f s"
      e.Remy_obs.Telemetry.epoch e.Remy_obs.Telemetry.live_rules
      e.Remy_obs.Telemetry.score e.Remy_obs.Telemetry.evaluations
      e.Remy_obs.Telemetry.improvements e.Remy_obs.Telemetry.wall_s
  | Checkpoint_saved { path; epoch; rounds; duration_s } ->
    Format.fprintf ppf "checkpoint -> %s (epoch %d, round %d, %.0f ms)" path epoch
      rounds (duration_s *. 1e3)
  | Resumed { epoch; rounds; elapsed_s } ->
    Format.fprintf ppf
      "resumed from checkpoint: epoch %d, round %d, %.1f s already spent" epoch
      rounds elapsed_s
  | Worker_retry { task; attempt; error } ->
    Format.fprintf ppf "worker task %d failed (attempt %d), retrying: %s" task
      attempt error

type eval_backend = {
  eval_baseline :
    ?tally:Tally.t ->
    Rule_tree.t ->
    Net_model.specimen list ->
    Evaluator.result * Evaluator.spec_cache array;
  eval_candidates :
    Rule_tree.t ->
    rule:int ->
    Action.t array ->
    Evaluator.spec_cache array ->
    float array * (int * int);
}

(* Internal: unwinds the design loops at the next round boundary after a
   stop request; never escapes [design]. *)
exception Stop

let design ?backend ?(progress = fun (_ : event) -> ()) ?checkpoint ?resume
    ?(stop_requested = fun () -> false)
    ?(on_round = fun ~rounds:(_ : int) (_ : Rule_tree.t) -> ()) ?now0 config =
  let fingerprint = config_fingerprint config in
  (match resume with
  | None -> ()
  | Some snap -> (
    match Checkpoint.check_config snap ~config_hash:fingerprint with
    | Ok () -> ()
    | Error e -> invalid_arg ("Optimizer.design: " ^ e)));
  let resumed_elapsed = match resume with Some s -> s.Checkpoint.elapsed_s | None -> 0. in
  (* [now0] lets the caller share one monotonic epoch base between this
     run's telemetry [wall_s] and its manifest, instead of each taking
     its own slightly-later clock reading. *)
  let started =
    (match now0 with Some t -> t | None -> Remy_obs.Clock.now_s ())
    -. resumed_elapsed
  in
  let out_of_time () = Remy_obs.Clock.now_s () -. started > config.wall_budget_s in
  let rng =
    match resume with
    | None -> Prng.create config.seed
    | Some s -> (
      match Prng.of_state s.Checkpoint.rng with
      | Ok g -> g
      | Error e -> invalid_arg ("Optimizer.design: snapshot PRNG: " ^ e))
  in
  let tree =
    match resume with None -> Rule_tree.create () | Some s -> s.Checkpoint.tree
  in
  let restored f default = match resume with Some s -> f s | None -> default in
  let improvements = ref (restored (fun s -> s.Checkpoint.improvements) 0) in
  let subdivisions = ref (restored (fun s -> s.Checkpoint.subdivisions) 0) in
  let evaluations = ref (restored (fun s -> s.Checkpoint.evaluations) 0) in
  let spec_sims = ref (restored (fun s -> s.Checkpoint.spec_sims) 0) in
  let spec_skips = ref (restored (fun s -> s.Checkpoint.spec_skips) 0) in
  let rounds = ref (restored (fun s -> s.Checkpoint.rounds) 0) in
  let last_score = ref (restored (fun s -> s.Checkpoint.last_score) neg_infinity) in
  let global_epoch = ref (restored (fun s -> s.Checkpoint.epoch) 0) in
  let resume_mid, resume_first_rule =
    match resume with
    | Some { Checkpoint.position = Checkpoint.Mid_epoch { first_rule }; _ } ->
      (ref true, first_rule)
    | _ -> (ref false, None)
  in
  let interrupted = ref false in
  (* Worker retries fire on helper domains; buffer them under a mutex
     and surface them as progress events from the submitting domain at
     round boundaries, so [progress] never runs concurrently. *)
  let retry_mutex = Mutex.create () in
  let retry_log = ref [] in
  let note_retry ~task ~attempt e =
    let error = Printexc.to_string e in
    Mutex.lock retry_mutex;
    retry_log := (task, attempt, error) :: !retry_log;
    Mutex.unlock retry_mutex
  in
  let drain_retries () =
    Mutex.lock retry_mutex;
    let pending = List.rev !retry_log in
    retry_log := [];
    Mutex.unlock retry_mutex;
    List.iter
      (fun (task, attempt, error) ->
        progress (Worker_retry { task; attempt; error }))
      pending
  in
  let queue_capacity = config.model.Net_model.queue_capacity in
  let duration = config.model.Net_model.sim_duration in
  (* With an external [backend] (e.g. a distributed coordinator) no
     in-process pool exists: every evaluation goes through the backend,
     which must reduce in task order just as the pool paths do. *)
  let pool =
    match backend with
    | Some _ -> None
    | None ->
      Some
        (Par.Pool.create ~retries:config.task_retries ~on_retry:note_retry
           ?stall_timeout_s:config.stall_timeout_s ~domains:config.domains ())
  in
  let save_checkpoint position =
    match checkpoint with
    | None -> ()
    | Some { dir; _ } ->
      let t0 = Remy_obs.Clock.now_s () in
      Remy_obs.Profiler.span "checkpoint" (fun () ->
          Checkpoint.save ~dir
            {
          Checkpoint.config_hash = fingerprint;
          position;
          epoch = !global_epoch;
          rounds = !rounds;
          improvements = !improvements;
          subdivisions = !subdivisions;
          evaluations = !evaluations;
          spec_sims = !spec_sims;
          spec_skips = !spec_skips;
          last_score = !last_score;
          elapsed_s = t0 -. started;
          telemetry_epochs = !global_epoch;
          rng = Prng.state rng;
          tree;
        });
      progress
        (Checkpoint_saved
           {
             path = Checkpoint.file ~dir;
             epoch = !global_epoch;
             rounds = !rounds;
             duration_s = Remy_obs.Clock.now_s () -. t0;
           })
  in
  let round_checkpoint position =
    match checkpoint with
    | Some { every_rounds; _ } when every_rounds > 0 && !rounds mod every_rounds = 0
      ->
      save_checkpoint position
    | _ -> ()
  in
  (* Whole-table evaluation on the pool; returns the per-specimen cache
     that licenses incremental candidate scoring. *)
  let eval_baseline ?tally specimens =
    incr evaluations;
    let r, cache =
      Remy_obs.Profiler.span "baseline" (fun () ->
          match (backend, pool) with
          | Some b, _ -> b.eval_baseline ?tally tree specimens
          | None, Some pool ->
            Evaluator.baseline ~pool ?tally
              ?topology:config.model.Net_model.topology
              ~objective:config.objective ~queue_capacity ~duration tree
              specimens
          | None, None -> assert false)
    in
    (r.Evaluator.mean_score, cache)
  in
  (* Greedy improvement of one rule's action on fixed specimens
     (step 3).  Returns true if the action changed. *)
  let improve_rule id cache baseline =
    let changed = ref false in
    let current = ref baseline in
    let continue = ref true in
    let rounds = ref 0 in
    while !continue && !rounds < config.rounds_per_rule && not (out_of_time ()) do
      incr rounds;
      let candidates =
        Array.of_list
          (Action.neighbors
             ~multipliers:config.candidate_multipliers
             (Rule_tree.action tree id))
      in
      let run_eval () =
        match (backend, pool) with
        | Some b, _ -> b.eval_candidates tree ~rule:id candidates cache
        | None, Some pool ->
          Evaluator.candidate_scores ~pool ~incremental:config.incremental
            ?topology:config.model.Net_model.topology
            ~objective:config.objective ~queue_capacity ~duration tree ~rule:id
            candidates cache
        | None, None -> assert false
      in
      let scores, (sims, skips) =
        Remy_obs.Profiler.span "eval" (fun () ->
            if Remy_obs.Metrics.enabled () then begin
              let t0 = Remy_obs.Clock.now_s () in
              let r = run_eval () in
              Remy_obs.Metrics.record Remy_obs.Metrics.Eval_round
                (Remy_obs.Clock.now_s () -. t0);
              r
            end
            else run_eval ())
      in
      evaluations := !evaluations + Array.length candidates;
      spec_sims := !spec_sims + sims;
      spec_skips := !spec_skips + skips;
      let best = ref (-1) in
      Array.iteri (fun i s -> if s > !current && (!best < 0 || s > scores.(!best)) then best := i) scores;
      if !best >= 0 then begin
        Rule_tree.set_action tree id candidates.(!best);
        current := scores.(!best);
        changed := true;
        incr improvements;
        progress
          (Improved { rule = id; action = candidates.(!best); score = !current })
      end
      else continue := false
    done;
    last_score := !current;
    !changed
  in
  let subdivide_most_used () =
    if config.prune_agreeing then begin
      let collapsed = Rule_tree.collapse_agreeing tree in
      if collapsed > 0 then
        progress (Pruned { collapsed; rules_now = Rule_tree.num_rules tree })
    end;
    if Rule_tree.num_rules tree < config.max_rules then begin
      let specimens = Net_model.draw_many config.model rng config.specimens_per_step in
      let tally =
        Tally.create ~capacity:(Rule_tree.capacity tree)
          ~seed:(config.seed lxor 0xD1F) ()
      in
      ignore (eval_baseline ~tally specimens);
      match Tally.most_used tally ~among:(Rule_tree.live_ids tree) with
      | None -> ()
      | Some id ->
        let at =
          match Tally.median_memory tally id with
          | Some m -> m
          | None -> Memory.zero
        in
        ignore (Rule_tree.subdivide tree id ~at);
        incr subdivisions;
        progress (Subdivided { rule = id; at; rules_now = Rule_tree.num_rules tree })
    end
  in
  let stalled = ref false in
  Fun.protect ~finally:(fun () ->
      (* A [Par.Stalled] pool has a wedged worker domain that can never
         be joined; skip the shutdown (the process is aborting anyway)
         instead of hanging in it. *)
      if not !stalled then Option.iter Par.Pool.shutdown pool)
  @@ fun () ->
  (match resume with
  | Some s ->
    progress
      (Resumed
         {
           epoch = s.Checkpoint.epoch;
           rounds = s.Checkpoint.rounds;
           elapsed_s = s.Checkpoint.elapsed_s;
         })
  | None -> ());
  (try
     Remy_obs.Profiler.span "design" @@ fun () ->
     (* Always leave a resumable file behind, even if we are interrupted
        before the first round completes. *)
     save_checkpoint
       (if !resume_mid then Checkpoint.Mid_epoch { first_rule = resume_first_rule }
        else Checkpoint.Epoch_start);
     while !global_epoch < config.max_epochs && not (out_of_time ()) do
       let first_rule = ref None in
       (* Step 1: everything joins the current epoch — unless we are
          resuming mid-epoch, in which case promotion (and the rounds
          already played) happened before the snapshot was taken. *)
       if !resume_mid then begin
         resume_mid := false;
         first_rule := resume_first_rule
       end
       else Rule_tree.promote_all tree !global_epoch;
       (* Steps 2-3: improve most-used rules of this epoch until none
          remain or time runs out. *)
       let continue = ref true in
       while !continue && not (out_of_time ()) do
         let specimens =
           Net_model.draw_many config.model rng config.specimens_per_step
         in
         let tally =
           Tally.create ~capacity:(Rule_tree.capacity tree)
             ~seed:(config.seed lxor !evaluations) ()
         in
         let baseline, cache = eval_baseline ~tally specimens in
         let current_epoch_rules =
           List.filter
             (fun id -> Rule_tree.epoch tree id = !global_epoch)
             (Rule_tree.live_ids tree)
         in
         match Tally.most_used tally ~among:current_epoch_rules with
         | None -> continue := false
         | Some id ->
           if !first_rule = None then first_rule := Some id;
           progress
             (Improving
                {
                  epoch = !global_epoch;
                  rule = id;
                  uses = Tally.count tally id;
                  score = baseline;
                });
           ignore
             (Remy_obs.Profiler.span "round" (fun () ->
                  improve_rule id cache baseline));
           Rule_tree.set_epoch tree id (!global_epoch + 1);
           incr rounds;
           drain_retries ();
           (* A round boundary: every piece of state the future depends
              on is consistent here, so this is where checkpoints are
              taken, post-round observers run, and an interrupt is
              honored.  The chaos point ahead of the stop check lets a
              sigint directive exercise exactly the graceful path a
              user's ^C would. *)
           Remy_faults.Chaos.hit "round-end";
           on_round ~rounds:!rounds tree;
           if stop_requested () then begin
             save_checkpoint (Checkpoint.Mid_epoch { first_rule = !first_rule });
             raise Stop
           end
           else round_checkpoint (Checkpoint.Mid_epoch { first_rule = !first_rule })
       done;
       (* Step 4. *)
       incr global_epoch;
       (* Step 5. *)
       if !global_epoch mod config.k_subdivide = 0 then
         Remy_obs.Profiler.span "subdivide" subdivide_most_used;
       drain_retries ();
       let par = Par.stats () in
       progress
         (Epoch_done
            {
              Remy_obs.Telemetry.epoch = !global_epoch - 1;
              live_rules = Rule_tree.num_rules tree;
              most_used_rule = !first_rule;
              evaluations = !evaluations;
              improvements = !improvements;
              subdivisions = !subdivisions;
              score = !last_score;
              wall_s = Remy_obs.Clock.now_s () -. started;
              domains = config.domains;
              par_tasks = par.Par.tasks + par.Par.pool_tasks;
              par_spawns = par.Par.spawns;
              par_jobs = par.Par.pool_jobs;
              par_helper_tasks = par.Par.pool_helper_tasks;
              spec_sims = !spec_sims;
              spec_skips = !spec_skips;
            });
       save_checkpoint Checkpoint.Epoch_start;
       if stop_requested () then raise Stop
     done
   with
  | Stdlib.Exit -> ()
  | Stop -> interrupted := true
  | Par.Stalled _ as e ->
    (* Do NOT overwrite the checkpoint here: mid-round state is not a
       valid resume point, and the last round-boundary checkpoint is
       already safely on disk. *)
    stalled := true;
    raise e);
  drain_retries ();
  {
    tree;
    epochs = !global_epoch;
    rounds = !rounds;
    improvements = !improvements;
    subdivisions = !subdivisions;
    evaluations = !evaluations;
    spec_sims = !spec_sims;
    spec_skips = !spec_skips;
    final_score = !last_score;
    interrupted = !interrupted;
  }
