open Remy_util

type rule = {
  lo : float array;  (* length 3, inclusive *)
  hi : float array;  (* exclusive *)
  mutable act : Action.t;
  mutable epoch : int;
  mutable leaf : bool;  (* reachable by lookup, i.e. a live rule *)
}

type node = Leaf of int | Split of { point : float array; children : node array }

(* Compiled lookup index: the live rules' boxes tile memory space, so the
   distinct box edges per dimension induce a grid of elementary cells,
   each wholly inside exactly one rule (the same decomposition
   [Boxpart.check] uses to decide partition-hood).  [cuts.(d)] holds the
   sorted lower edges of the cells along dimension [d] (cell [i] spans
   [cuts.(d).(i), cuts.(d).(i+1)), the last cell extending to the domain
   edge) and [grid] maps each cell, row-major via [strides], to its rule
   id.  Lookup is then one binary search per dimension plus a single
   array read — no pointer-chasing tree descent. *)
type index = {
  cuts : float array array;
  strides : int array;
  grid : int array;
}

type index_state = Unbuilt | Too_large | Built of index

type t = {
  mutable root : node;
  mutable rules : rule array;
  mutable live : int;
  mutable index : index_state;
}

(* Global toggle so determinism tests can run whole designs with the
   compiled index off and compare bit-for-bit.  Atomic: flipped by tests
   while parallel evaluators look rules up; an Atomic.get on the lookup
   path costs the same as a plain load on x86/ARM. *)
let compiled = Atomic.make true
let use_compiled_lookup b = Atomic.set compiled b
let compiled_lookup_enabled () = Atomic.get compiled

(* A dense grid over a heavily subdivided table can explode (cells grow
   with the product of per-dimension cuts); past this many cells the
   table keeps tree descent.  Real Remy tables (the paper reports
   162-204 rules) compile to a few thousand cells. *)
let max_index_cells = 1 lsl 22

let whole_box () =
  (Array.make Memory.dims 0., Array.make Memory.dims Memory.max_value)

let child_index point m =
  let idx = ref 0 in
  for d = 0 to Memory.dims - 1 do
    if Memory.get m d >= point.(d) then idx := !idx lor (1 lsl d)
  done;
  !idx

let lookup_uncompiled t m =
  let rec go = function
    | Leaf id -> id
    | Split { point; children } -> go children.(child_index point m)
  in
  go t.root

let live_ids t =
  let rec go acc = function
    | Leaf id -> id :: acc
    | Split { children; _ } -> Array.fold_left go acc children
  in
  List.rev (go [] t.root)

(* --- index construction --------------------------------------------- *)

(* Sort [vals] and drop duplicates, in place conceptually. *)
let sorted_distinct vals =
  Array.sort Float.compare vals;
  let n = Array.length vals in
  let out = Array.make (max n 1) 0. in
  let k = ref 0 in
  for i = 0 to n - 1 do
    if !k = 0 || out.(!k - 1) <> vals.(i) then begin
      out.(!k) <- vals.(i);
      incr k
    end
  done;
  Array.sub out 0 !k

(* Index of [v] in sorted [a]; [v] is known to be present. *)
let find_exact (a : float array) v =
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

let build_index t =
  let ids = Array.of_list (live_ids t) in
  (* Cell lower edges: every box's lo, plus every interior hi (each
     interior face is some neighbour's lo for octree-built tables, but
     including the his makes the index correct for any exact
     partition). *)
  let cuts =
    Array.init Memory.dims (fun d ->
        let edges =
          Array.concat
            [
              Array.map (fun id -> t.rules.(id).lo.(d)) ids;
              Array.map (fun id -> t.rules.(id).hi.(d)) ids;
            ]
        in
        sorted_distinct
          (Array.of_list
             (List.filter (fun v -> v < Memory.max_value) (Array.to_list edges))))
  in
  let ncells = Array.map Array.length cuts in
  let total =
    Array.fold_left
      (fun acc n -> if acc > max_index_cells then acc else acc * n)
      1 ncells
  in
  if total > max_index_cells then t.index <- Too_large
  else begin
    let strides = Array.make Memory.dims 1 in
    for d = Memory.dims - 2 downto 0 do
      strides.(d) <- strides.(d + 1) * ncells.(d + 1)
    done;
    let grid = Array.make total (-1) in
    let lo_cell = Array.make Memory.dims 0 in
    let hi_cell = Array.make Memory.dims 0 in
    Array.iter
      (fun id ->
        let r = t.rules.(id) in
        for d = 0 to Memory.dims - 1 do
          lo_cell.(d) <- find_exact cuts.(d) r.lo.(d);
          hi_cell.(d) <-
            (if r.hi.(d) >= Memory.max_value then ncells.(d) - 1
             else find_exact cuts.(d) r.hi.(d) - 1)
        done;
        for x = lo_cell.(0) to hi_cell.(0) do
          for y = lo_cell.(1) to hi_cell.(1) do
            for z = lo_cell.(2) to hi_cell.(2) do
              grid.((x * strides.(0)) + (y * strides.(1)) + z) <- id
            done
          done
        done)
      ids;
    (* A cell no rule claimed means the table is not an exact partition
       (impossible via the public API); keep tree descent so compiled
       and uncompiled lookups can never disagree. *)
    let complete = ref true in
    Array.iter (fun id -> if id < 0 then complete := false) grid;
    if !complete then begin
      Remy_obs.Counters.incr Remy_obs.Counters.index_builds;
      t.index <- Built { cuts; strides; grid }
    end
    else t.index <- Too_large
  end

(* Called after every structural change, always on the domain that owns
   the tree (the optimizer mutates structure only between evaluation
   rounds), so worker domains never observe a half-built index. *)
let refresh_index t = if Atomic.get compiled then build_index t else t.index <- Unbuilt

let create ?(initial_action = Action.default) () =
  let lo, hi = whole_box () in
  let t =
    {
      root = Leaf 0;
      rules = [| { lo; hi; act = initial_action; epoch = 0; leaf = true } |];
      live = 1;
      index = Unbuilt;
    }
  in
  refresh_index t;
  t

(* Largest [i] with [cuts.(i) <= v], or 0 when [v] precedes every cut —
   matching tree descent, which also lands in the lowest child for
   points left of (or incomparable to, i.e. NaN) every split point. *)
let cell_of (cuts : float array) v =
  let lo = ref 0 and hi = ref (Array.length cuts - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) lsr 1 in
    if cuts.(mid) <= v then lo := mid else hi := mid - 1
  done;
  !lo

let lookup t m =
  match t.index with
  | Built { cuts; strides; grid } when Atomic.get compiled ->
    let pos = ref 0 in
    for d = 0 to Memory.dims - 1 do
      pos := !pos + (cell_of cuts.(d) (Memory.get m d) * strides.(d))
    done;
    grid.(!pos)
  | Unbuilt when Atomic.get compiled ->
    build_index t;
    lookup_uncompiled t m
  | _ -> lookup_uncompiled t m

(* Allocation-free variant for per-ack hot paths: same result as
   [lookup] on [Memory.make ~ack_ewma ~send_ewma ~rtt_ratio], without
   materializing the record when the compiled grid is available. *)
(* remy-lint: hot *)
let lookup3 t ~ack_ewma ~send_ewma ~rtt_ratio =
  match t.index with
  | Built { cuts; strides; grid } when Atomic.get compiled ->
    (* Same saturation [Memory.make] would apply to each coordinate. *)
    grid.((cell_of cuts.(0) (Memory.clamp ack_ewma) * strides.(0))
          + (cell_of cuts.(1) (Memory.clamp send_ewma) * strides.(1))
          + (cell_of cuts.(2) (Memory.clamp rtt_ratio) * strides.(2)))
  | _ -> lookup t (Memory.make ~ack_ewma ~send_ewma ~rtt_ratio)

let index_state t =
  match t.index with
  | Unbuilt -> `Unbuilt
  | Too_large -> `Too_large
  | Built { grid; _ } -> `Built (Array.length grid)

let check_id t id =
  if id < 0 || id >= Array.length t.rules then
    invalid_arg (Printf.sprintf "Rule_tree: bad rule id %d" id)

(* [set_action] stays O(1) and does NOT touch the index: the grid maps
   cells to rule ids, not to actions, so changing a rule's action is
   invisible to the compiled lookup. *)

let action ?override t id =
  check_id t id;
  match override with
  | Some (oid, act) when oid = id -> act
  | Some _ | None -> t.rules.(id).act

let set_action t id act =
  check_id t id;
  t.rules.(id).act <- act

let epoch t id =
  check_id t id;
  t.rules.(id).epoch

let set_epoch t id e =
  check_id t id;
  t.rules.(id).epoch <- e

let promote_all t e = List.iter (fun id -> t.rules.(id).epoch <- e) (live_ids t)
let capacity t = Array.length t.rules
let num_rules t = t.live

let box t id =
  check_id t id;
  let r = t.rules.(id) in
  Array.init Memory.dims (fun d -> (r.lo.(d), r.hi.(d)))

let subdivide t id ~at =
  check_id t id;
  if not t.rules.(id).leaf then
    invalid_arg (Printf.sprintf "Rule_tree.subdivide: %d not live" id);
  let parent = t.rules.(id) in
  (* Pull the split point strictly inside the box so no child is empty. *)
  let point =
    Array.init Memory.dims (fun d ->
        let v = Memory.get at d in
        if v > parent.lo.(d) && v < parent.hi.(d) then v
        else (parent.lo.(d) +. parent.hi.(d)) /. 2.)
  in
  let base = Array.length t.rules in
  let children =
    Array.init 8 (fun i ->
        let lo = Array.copy parent.lo and hi = Array.copy parent.hi in
        for d = 0 to Memory.dims - 1 do
          if i land (1 lsl d) <> 0 then lo.(d) <- point.(d) else hi.(d) <- point.(d)
        done;
        { lo; hi; act = parent.act; epoch = parent.epoch; leaf = true })
  in
  parent.leaf <- false;
  t.live <- t.live + 7;
  t.rules <- Array.append t.rules children;
  let child_nodes = Array.init 8 (fun i -> Leaf (base + i)) in
  let rec replace = function
    | Leaf l when l = id -> Split { point; children = child_nodes }
    | Leaf _ as leaf -> leaf
    | Split { point = p; children = cs } ->
      Split { point = p; children = Array.map replace cs }
  in
  t.root <- replace t.root;
  refresh_index t;
  List.init 8 (fun i -> base + i)

let collapse_agreeing t =
  let collapsed = ref 0 in
  (* Fresh rules created by merges this pass; ids continue after
     t.rules.  Indexed by id so leaf lookups stay O(1) even when a
     bottom-up chain of merges references rules minted moments ago. *)
  let n_fixed = Array.length t.rules in
  let fresh : (int, rule) Hashtbl.t = Hashtbl.create 16 in
  let rule_of id = if id < n_fixed then t.rules.(id) else Hashtbl.find fresh id in
  (* Walk with explicit bounds so a merged leaf gets its box back. *)
  let rec go lo hi node =
    match node with
    | Leaf _ -> node
    | Split { point; children } ->
      let children' =
        Array.mapi
          (fun i child ->
            let clo = Array.copy lo and chi = Array.copy hi in
            for d = 0 to Memory.dims - 1 do
              if i land (1 lsl d) <> 0 then clo.(d) <- point.(d)
              else chi.(d) <- point.(d)
            done;
            go clo chi child)
          children
      in
      let leaf_actions =
        Array.fold_left
          (fun acc child ->
            match (acc, child) with
            | Some actions, Leaf id -> Some ((rule_of id).act :: actions)
            | _ -> None)
          (Some []) children'
      in
      (match leaf_actions with
      | Some (first :: rest) when List.for_all (Action.equal first) rest ->
        incr collapsed;
        let epoch =
          Array.fold_left
            (fun acc child ->
              match child with Leaf id -> min acc (rule_of id).epoch | _ -> acc)
            max_int children'
        in
        Array.iter
          (fun child ->
            match child with Leaf id -> (rule_of id).leaf <- false | _ -> ())
          children';
        let id = n_fixed + Hashtbl.length fresh in
        Hashtbl.add fresh id
          { lo = Array.copy lo; hi = Array.copy hi; act = first; epoch; leaf = true };
        t.live <- t.live - 7;
        Leaf id
      | Some _ | None -> Split { point; children = children' })
  in
  let lo, hi = whole_box () in
  let root' = go lo hi t.root in
  if Hashtbl.length fresh > 0 then begin
    let extra =
      Array.init (Hashtbl.length fresh) (fun i -> Hashtbl.find fresh (n_fixed + i))
    in
    t.rules <- Array.append t.rules extra;
    t.root <- root';
    refresh_index t
  end;
  !collapsed

(* --- serialization -------------------------------------------------- *)

let sexp_of_action (a : Action.t) =
  Sexp.list
    [
      Sexp.atom "action";
      Sexp.float a.Action.multiple;
      Sexp.float a.Action.increment;
      Sexp.float a.Action.intersend_ms;
    ]

let action_of_sexp s =
  match s with
  | Sexp.List [ Sexp.Atom "action"; m; b; r ] ->
    Result.bind (Sexp.to_float m) (fun multiple ->
        Result.bind (Sexp.to_float b) (fun increment ->
            Result.bind (Sexp.to_float r) (fun intersend_ms ->
                Ok { Action.multiple; increment; intersend_ms })))
  | _ -> Error "expected (action m b r)"

let to_sexp t =
  let rec node_sexp = function
    | Leaf id ->
      let r = t.rules.(id) in
      Sexp.list [ Sexp.atom "leaf"; sexp_of_action r.act ]
    | Split { point; children } ->
      Sexp.list
        (Sexp.atom "split"
        :: Sexp.list (Array.to_list (Array.map Sexp.float point))
        :: Array.to_list (Array.map node_sexp children))
  in
  Sexp.list [ Sexp.atom "remycc-rules"; Sexp.atom "v1"; node_sexp t.root ]

let of_sexp s =
  let ( let* ) = Result.bind in
  let rec node_of lo hi s (rules : rule list) =
    match s with
    | Sexp.List [ Sexp.Atom "leaf"; act ] ->
      let* act = action_of_sexp act in
      let id = List.length rules in
      Ok (Leaf id, rules @ [ { lo; hi; act; epoch = 0; leaf = true } ])
    | Sexp.List (Sexp.Atom "split" :: Sexp.List point :: children)
      when List.length children = 8 ->
      let* coords =
        List.fold_right
          (fun p acc ->
            let* acc = acc in
            let* v = Sexp.to_float p in
            Ok (v :: acc))
          point (Ok [])
      in
      if List.length coords <> Memory.dims then Error "split point arity"
      else begin
        let point = Array.of_list coords in
        let* children_rev, rules =
          List.fold_left
            (fun acc (i, child) ->
              let* children, rules = acc in
              let clo = Array.copy lo and chi = Array.copy hi in
              for d = 0 to Memory.dims - 1 do
                if i land (1 lsl d) <> 0 then clo.(d) <- point.(d)
                else chi.(d) <- point.(d)
              done;
              let* node, rules = node_of clo chi child rules in
              Ok (node :: children, rules))
            (Ok ([], rules))
            (List.mapi (fun i c -> (i, c)) children)
        in
        Ok (Split { point; children = Array.of_list (List.rev children_rev) }, rules)
      end
    | _ -> Error "expected (leaf ...) or (split point c0..c7)"
  in
  match s with
  | Sexp.List [ Sexp.Atom "remycc-rules"; Sexp.Atom "v1"; root ] ->
    let lo, hi = whole_box () in
    let* root, rules = node_of lo hi root [] in
    let t =
      {
        root;
        rules = Array.of_list rules;
        live = List.length rules;
        index = Unbuilt;
      }
    in
    refresh_index t;
    Ok t
  | _ -> Error "expected (remycc-rules v1 <tree>)"

(* Full-fidelity serialization for checkpoints: unlike [to_sexp], which
   keeps only the live structure and renumbers ids on load, this
   preserves the rules array verbatim — retired entries, array order,
   epochs and leaf flags — so that a restored tree is indistinguishable
   from the original to every id-, capacity- and epoch-sensitive
   consumer (tallies, incremental caches, [collapse_agreeing]'s fresh-id
   numbering). *)

let to_sexp_full t =
  let floats arr = Sexp.list (Array.to_list (Array.map Sexp.float arr)) in
  let rule_sexp (r : rule) =
    Sexp.list
      [
        floats r.lo;
        floats r.hi;
        sexp_of_action r.act;
        Sexp.int r.epoch;
        Sexp.int (if r.leaf then 1 else 0);
      ]
  in
  let rec node_sexp = function
    | Leaf id -> Sexp.int id
    | Split { point; children } ->
      Sexp.list
        (Sexp.atom "split" :: floats point
        :: Array.to_list (Array.map node_sexp children))
  in
  Sexp.list
    [
      Sexp.atom "remycc-state";
      Sexp.atom "v1";
      Sexp.list (Sexp.atom "rules" :: Array.to_list (Array.map rule_sexp t.rules));
      Sexp.list [ Sexp.atom "tree"; node_sexp t.root ];
    ]

let ( let* ) = Result.bind

let floats_of_sexp ~what s =
  let* items = Sexp.to_list s in
  if List.length items <> Memory.dims then
    Error (Printf.sprintf "%s: expected %d coordinates" what Memory.dims)
  else
    let* coords =
      List.fold_right
        (fun p acc ->
          let* acc = acc in
          let* v = Sexp.to_float p in
          Ok (v :: acc))
        items (Ok [])
    in
    Ok (Array.of_list coords)

let of_sexp_full s =
  match s with
  | Sexp.List
      [
        Sexp.Atom "remycc-state";
        Sexp.Atom "v1";
        Sexp.List (Sexp.Atom "rules" :: rule_sexps);
        Sexp.List [ Sexp.Atom "tree"; root_sexp ];
      ] ->
    let rule_of_sexp i s =
      match s with
      | Sexp.List [ lo; hi; act; epoch; leaf ] ->
        let what part = Printf.sprintf "rule %d %s" i part in
        let* lo = floats_of_sexp ~what:(what "lo") lo in
        let* hi = floats_of_sexp ~what:(what "hi") hi in
        let* act = action_of_sexp act in
        let* () =
          Result.map_error (fun e -> Printf.sprintf "rule %d: %s" i e)
            (Action.validate act)
        in
        let* epoch = Sexp.to_int epoch in
        let* leaf = Sexp.to_int leaf in
        if epoch < 0 then Error (Printf.sprintf "rule %d: negative epoch" i)
        else begin
          let box_ok = ref true in
          for d = 0 to Memory.dims - 1 do
            if
              not
                (Float.is_finite lo.(d) && Float.is_finite hi.(d)
                && lo.(d) < hi.(d))
            then box_ok := false
          done;
          if not !box_ok then
            Error (Printf.sprintf "rule %d: degenerate box (lo must be < hi)" i)
          else Ok { lo; hi; act; epoch; leaf = leaf <> 0 }
        end
      | _ -> Error (Printf.sprintf "rule %d: expected (lo hi action epoch leaf)" i)
    in
    let* rules_rev, n =
      List.fold_left
        (fun acc s ->
          let* rules, i = acc in
          let* r = rule_of_sexp i s in
          Ok (r :: rules, i + 1))
        (Ok ([], 0))
        rule_sexps
    in
    let rules = Array.of_list (List.rev rules_rev) in
    (* Rebuild the structure, checking that every leaf reference names a
       distinct in-range rule flagged live, and that the stored boxes
       match what the split points imply. *)
    let referenced = Array.make n false in
    let rec node_of lo hi s =
      match s with
      | Sexp.Atom _ ->
        let* id = Sexp.to_int s in
        if id < 0 || id >= n then
          Error (Printf.sprintf "leaf references rule %d outside 0..%d" id (n - 1))
        else if referenced.(id) then
          Error (Printf.sprintf "rule %d referenced by two leaves" id)
        else if not rules.(id).leaf then
          Error (Printf.sprintf "leaf references retired rule %d" id)
        else if rules.(id).lo <> lo || rules.(id).hi <> hi then
          Error
            (Printf.sprintf "rule %d: stored box disagrees with tree structure" id)
        else begin
          referenced.(id) <- true;
          Ok (Leaf id)
        end
      | Sexp.List (Sexp.Atom "split" :: point :: children)
        when List.length children = 8 ->
        let* point = floats_of_sexp ~what:"split point" point in
        let inside = ref true in
        for d = 0 to Memory.dims - 1 do
          if not (point.(d) > lo.(d) && point.(d) < hi.(d)) then inside := false
        done;
        if not !inside then Error "split point falls outside its box"
        else
          let* children_rev =
            List.fold_left
              (fun acc (i, child) ->
                let* children = acc in
                let clo = Array.copy lo and chi = Array.copy hi in
                for d = 0 to Memory.dims - 1 do
                  if i land (1 lsl d) <> 0 then clo.(d) <- point.(d)
                  else chi.(d) <- point.(d)
                done;
                let* node = node_of clo chi child in
                Ok (node :: children))
              (Ok [])
              (List.mapi (fun i c -> (i, c)) children)
          in
          Ok (Split { point; children = Array.of_list (List.rev children_rev) })
      | _ -> Error "expected a rule id or (split point c0..c7)"
    in
    let lo, hi = whole_box () in
    let* root = node_of lo hi root_sexp in
    let live = ref 0 in
    let orphan = ref None in
    Array.iteri
      (fun id r ->
        if r.leaf then begin
          incr live;
          if (not referenced.(id)) && !orphan = None then orphan := Some id
        end)
      rules;
    (match !orphan with
    | Some id ->
      Error (Printf.sprintf "rule %d is flagged live but unreachable from the tree" id)
    | None ->
      let t = { root; rules; live = !live; index = Unbuilt } in
      refresh_index t;
      Ok t)
  | _ -> Error "expected (remycc-state v1 (rules ...) (tree ...))"

(* Whole-table geometry: the live rules' boxes must tile the memory
   domain exactly — no gap, no double cover.  [Boxpart.check] decides
   this without sampling; errors name the offending rule pair (or the
   single empty/escaping rule) plus a witness memory point. *)
let check_partition t =
  let ids = Array.of_list (live_ids t) in
  let boxes =
    Array.map
      (fun id -> { Boxpart.lo = t.rules.(id).lo; hi = t.rules.(id).hi })
      ids
  in
  let lo, hi = whole_box () in
  match Boxpart.check ~lo ~hi boxes with
  | Ok () -> Ok ()
  | Error flaw ->
    let point p =
      Format.asprintf "(%a)"
        (Format.pp_print_array
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
           (fun fmt v -> Format.fprintf fmt "%g" v))
        p
    in
    Error
      (match flaw with
      | Boxpart.Overlap { a; b; point = p } ->
        Printf.sprintf "rules %d and %d overlap at %s — not a partition"
          ids.(a) ids.(b) (point p)
      | Boxpart.Gap { point = p } ->
        Printf.sprintf "memory domain not covered: no rule owns %s" (point p)
      | Boxpart.Degenerate { box; dim } ->
        Printf.sprintf "rule %d: empty box (lo >= hi in dimension %d)" ids.(box)
          dim
      | Boxpart.Escape { box; dim } ->
        Printf.sprintf "rule %d escapes the memory domain in dimension %d"
          ids.(box) dim)

let validate t =
  let ( let* ) = Result.bind in
  let rec go lo hi node =
    match node with
    | Leaf id ->
      if id < 0 || id >= Array.length t.rules then
        Error (Printf.sprintf "rule %d: id outside the rules array" id)
      else
        Result.map_error
          (fun e ->
            Format.asprintf "rule %d (%a): %s" id Action.pp t.rules.(id).act e)
          (Action.validate t.rules.(id).act)
    | Split { point; children } ->
      let* () =
        if Array.length children <> 8 then Error "split without 8 children"
        else Ok ()
      in
      let inside = ref true in
      for d = 0 to Memory.dims - 1 do
        if
          not (Float.is_finite point.(d) && point.(d) > lo.(d) && point.(d) < hi.(d))
        then inside := false
      done;
      let* () =
        if !inside then Ok ()
        else
          Error
            (Format.asprintf
               "split point (%g %g %g) escapes its box — memory domain not covered"
               point.(0) point.(1) point.(2))
      in
      let rec check_children i acc =
        if i >= 8 then acc
        else
          match acc with
          | Error _ -> acc
          | Ok () ->
            let clo = Array.copy lo and chi = Array.copy hi in
            for d = 0 to Memory.dims - 1 do
              if i land (1 lsl d) <> 0 then clo.(d) <- point.(d)
              else chi.(d) <- point.(d)
            done;
            check_children (i + 1) (go clo chi children.(i))
      in
      check_children 0 (Ok ())
  in
  let lo, hi = whole_box () in
  (* Geometry first (it names the offending rule pair and a witness
     point), but only once every leaf id is in range. *)
  let* () =
    match
      List.find_opt (fun id -> id < 0 || id >= Array.length t.rules) (live_ids t)
    with
    | Some id -> Error (Printf.sprintf "rule %d: id outside the rules array" id)
    | None -> Ok ()
  in
  let* () = check_partition t in
  go lo hi t.root

let save path t = Sexp.save path (to_sexp t)

let load path =
  match Sexp.load path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok s -> (
    match of_sexp s with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok _ as ok -> ok)

let load_validated path =
  match load path with
  | Error _ as e -> e
  | Ok t -> (
    match validate t with
    | Ok () -> Ok t
    | Error e -> Error (Printf.sprintf "%s: invalid rule table: %s" path e))

let pp fmt t =
  Format.fprintf fmt "rule table: %d rules@." (num_rules t);
  List.iter
    (fun id ->
      let r = t.rules.(id) in
      Format.fprintf fmt "  [%3d] ack[%g,%g) send[%g,%g) ratio[%g,%g) -> %a@." id
        r.lo.(0) r.hi.(0) r.lo.(1) r.hi.(1) r.lo.(2) r.hi.(2) Action.pp r.act)
    (live_ids t)
