type report = {
  points : int;
  agreement : float;
  mean_d_multiple : float;
  mean_d_increment : float;
  mean_d_intersend : float;
  max_disagreement : Memory.t * Action.t * Action.t;
}

let action_distance (a : Action.t) (b : Action.t) =
  (Float.abs (a.Action.multiple -. b.Action.multiple) /. 2.)
  +. (Float.abs (a.Action.increment -. b.Action.increment) /. 512.)
  +. (Float.abs (a.Action.intersend_ms -. b.Action.intersend_ms) /. 1000.)

(* Log-spaced grid values: dense near zero (where EWMAs live in
   practice), sparse toward 16384. *)
let grid_values per_dim =
  Array.init per_dim (fun i ->
      if i = 0 then 0.
      else begin
        let frac = float_of_int i /. float_of_int (per_dim - 1) in
        (* 10^(frac * log10 16384) - 1, i.e. 0 .. 16383ish *)
        (Memory.max_value ** frac) -. 1.
      end)

let compare_on_grid ?(per_dim = 12) t1 t2 =
  let values = grid_values per_dim in
  let total = ref 0 in
  let equal_count = ref 0 in
  let dm = ref 0. and db = ref 0. and dr = ref 0. in
  let worst = ref None in
  Array.iter
    (fun ack ->
      Array.iter
        (fun send ->
          Array.iter
            (fun ratio ->
              let m = Memory.make ~ack_ewma:ack ~send_ewma:send ~rtt_ratio:ratio in
              let a1 = Rule_tree.action t1 (Rule_tree.lookup t1 m) in
              let a2 = Rule_tree.action t2 (Rule_tree.lookup t2 m) in
              incr total;
              if Action.equal a1 a2 then incr equal_count;
              dm := !dm +. Float.abs (a1.Action.multiple -. a2.Action.multiple);
              db := !db +. Float.abs (a1.Action.increment -. a2.Action.increment);
              dr :=
                !dr +. Float.abs (a1.Action.intersend_ms -. a2.Action.intersend_ms);
              let d = action_distance a1 a2 in
              match !worst with
              | Some (best_d, _, _, _) when best_d >= d -> ()
              | _ -> worst := Some (d, m, a1, a2))
            values)
        values)
    values;
  let n = float_of_int !total in
  let max_disagreement =
    match !worst with
    | Some (_, m, a1, a2) -> (m, a1, a2)
    | None -> (Memory.zero, Action.default, Action.default)
  in
  {
    points = !total;
    agreement = float_of_int !equal_count /. n;
    mean_d_multiple = !dm /. n;
    mean_d_increment = !db /. n;
    mean_d_intersend = !dr /. n;
    max_disagreement;
  }

let pp fmt r =
  let m, a1, a2 = r.max_disagreement in
  Format.fprintf fmt
    "@[<v>probed %d memory points@,\
     identical actions at %.1f%% of points@,\
     mean |d multiple|  = %.4f@,\
     mean |d increment| = %.3f packets@,\
     mean |d intersend| = %.4f ms@,\
     largest disagreement at %a:@,  table A: %a@,  table B: %a@]" r.points
    (100. *. r.agreement) r.mean_d_multiple r.mean_d_increment r.mean_d_intersend
    Memory.pp m Action.pp a1 Action.pp a2

let identical r = r.agreement >= 1.0
