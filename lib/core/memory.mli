(** The RemyCC memory: the three congestion signals of Section 4.1.

    - [ack_ewma]: EWMA of the interarrival time between new ACKs
      (strictly, between the receiver timestamps they echo), ms;
    - [send_ewma]: EWMA of the spacing of the sender timestamps echoed
      in those ACKs, ms;
    - [rtt_ratio]: most recent RTT divided by the connection's minimum.

    Both EWMAs give weight 1/8 to the new sample and blend from the
    well-known all-zeroes initial state.  Values live in the cube
    [0, 16384) per dimension (Section 4.3); deliberately absent are raw
    RTT and packet loss (Section 4.1 explains why). *)

type t = { ack_ewma : float; send_ewma : float; rtt_ratio : float }

val zero : t
(** The flow-start state. *)

val max_value : float
(** 16384, the upper bound of every dimension. *)

val clamp : float -> float
(** The saturation [make] applies to every coordinate:
    [min (max_value - 1e-9) (max 0. v)]. *)

val ewma_weight : float
(** 1/8. *)

type tracker
(** Mutable per-connection signal tracker. *)

val tracker : unit -> tracker
val reset : tracker -> unit

val on_ack : tracker -> sent_at:float -> received_at:float -> rtt:float -> t
(** Feed one acknowledgment (times in seconds; [rtt] measured by the
    sender) and return the updated memory. *)

val current : tracker -> t

val min_rtt : tracker -> float option
(** Smallest RTT seen this connection, seconds. *)

val last_received_at : tracker -> float
(** Receiver timestamp of the last ACK folded in (NaN before the first),
    so callers can detect a long ACK gap — e.g. a link outage — and
    restart the estimators rather than feed them one giant delta. *)

val get : t -> int -> float
(** Dimension accessor: 0 = ack_ewma, 1 = send_ewma, 2 = rtt_ratio. *)

val make : ack_ewma:float -> send_ewma:float -> rtt_ratio:float -> t
val dims : int
val pp : Format.formatter -> t -> unit
