(** Tail-drop FIFO queue — the paper's default 1000-packet DropTail
    bottleneck (Section 5.1), and with {!Qdisc.unlimited_capacity} the
    lossless queue of Remy's design-phase simulator. *)

val create : ?tracer:Remy_obs.Trace.t -> capacity:int -> unit -> Qdisc.t
(** [capacity] in packets.  [tracer] (default off) records
    enqueue/dequeue/drop events. *)
