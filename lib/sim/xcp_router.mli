(** XCP router (Katabi, Handley & Rohrs, SIGCOMM 2002).

    The explicit-feedback baseline of Section 5.  Every control interval
    (the mean RTT of traffic seen in the previous interval) the router
    computes the aggregate feedback

      phi = alpha * d * spare_bandwidth - beta * persistent_queue

    splits it (after fairness "shuffling" of 10% of traffic) into
    per-packet positive feedback proportional to rtt^2/cwnd and negative
    feedback proportional to rtt, and writes the window delta into each
    passing packet's congestion header.  Senders ({!Remy_cc.Xcp}) apply
    the echoed delta per ACK.  Works in packets and seconds: the router
    must be told the outgoing link capacity — the known XCP limitation on
    variable-rate links that footnote 6 of the paper works around by
    supplying the long-term average rate. *)

val create :
  Engine.t ->
  ?tracer:Remy_obs.Trace.t ->
  capacity_pps:float ->
  queue_capacity:int ->
  ?alpha:float ->
  ?beta:float ->
  ?gamma:float ->
  unit ->
  Qdisc.t
(** Defaults: alpha 0.4, beta 0.226, shuffle fraction gamma 0.1 (the
    constants proven stable in the XCP paper).  [queue_capacity] in
    packets (tail drop). *)
