(** Discrete-event simulation engine.

    A monotonic virtual clock plus a binary-heap agenda of closures.
    Events scheduled for the same instant fire in scheduling order
    (determinism), and scheduling into the past is a programming error.
    This engine plays the role ns-2's scheduler plays for the paper's
    evaluation. *)

type t

val create : ?tracer:Remy_obs.Trace.t -> unit -> t
(** [tracer] (default {!Remy_obs.Trace.off}) is carried by the engine so
    simulator components reach it without extra plumbing; with the
    default, every trace site reduces to a single false branch. *)

val now : t -> float
(** Current virtual time in seconds; starts at [0.]. *)

val tracer : t -> Remy_obs.Trace.t
val set_tracer : t -> Remy_obs.Trace.t -> unit

val schedule_epsilon : float
(** Tolerance used by {!schedule} when deciding whether a timestamp lies
    in the past: events up to this far behind the clock are clamped to
    "now" instead of rejected, absorbing float round-off. *)

val schedule : t -> float -> (unit -> unit) -> unit
(** [schedule t at f] runs [f] when the clock reaches [at].  Raises
    [Invalid_argument] if [at] is more than {!schedule_epsilon} in the
    past. *)

val schedule_in : t -> float -> (unit -> unit) -> unit
(** [schedule_in t dt f] = [schedule t (now t +. dt) f]. *)

val run : t -> until:float -> unit
(** Execute events in order until the agenda empties or the next event
    lies strictly after [until]; the clock finishes at [until]. *)

val pending : t -> int
(** Number of queued events (for tests and invariant checks). *)
