(** Discrete-event simulation engine.

    A monotonic virtual clock plus an agenda of closures, backed by
    either a binary heap or a hierarchical timing wheel (see
    {!use_wheel}) — the two agendas pop in the same order, so runs are
    bit-identical whichever is active.  Events scheduled for the same
    instant fire in scheduling order (determinism), and scheduling
    into the past is a programming error.  This engine plays the role
    ns-2's scheduler plays for the paper's evaluation. *)

type t

val use_wheel : bool -> unit
(** Select the process-wide default agenda backend for subsequently
    created engines: the O(1) timing wheel ([true], the default) or
    the O(log n) binary heap ([false], the pre-wheel behaviour kept as
    a bit-identity oracle and baseline). *)

val wheel_enabled : unit -> bool

val create : ?tracer:Remy_obs.Trace.t -> ?wheel:bool -> unit -> t
(** [tracer] (default {!Remy_obs.Trace.off}) is carried by the engine so
    simulator components reach it without extra plumbing; with the
    default, every trace site reduces to a single false branch.
    [wheel] overrides the {!use_wheel} process default for this
    engine. *)

val now : t -> float
(** Current virtual time in seconds; starts at [0.]. *)

val tracer : t -> Remy_obs.Trace.t
val set_tracer : t -> Remy_obs.Trace.t -> unit

val schedule_epsilon : float
(** Tolerance used by {!schedule} when deciding whether a timestamp lies
    in the past: events up to this far behind the clock are clamped to
    "now" instead of rejected, absorbing float round-off. *)

val schedule : t -> float -> (unit -> unit) -> unit
(** [schedule t at f] runs [f] when the clock reaches [at].  Raises
    [Invalid_argument] if [at] is more than {!schedule_epsilon} in the
    past. *)

val schedule_in : t -> float -> (unit -> unit) -> unit
(** [schedule_in t dt f] = [schedule t (now t +. dt) f]. *)

val run : t -> until:float -> unit
(** Execute events in order until the agenda empties or the next event
    lies strictly after [until]; the clock finishes at [until]. *)

val pending : t -> int
(** Number of queued events (for tests and invariant checks). *)
