(** Constant-delay delivery pipe.

    [push] hands the value to [handler] exactly [delay] seconds later,
    preserving order.  Equivalent to scheduling one fresh closure per
    value, but the values wait in a ring buffer and every agenda entry is
    the same preallocated callback — so the steady-state cost per value
    is an array write and a heap push, with no allocation.  Used for the
    dumbbell topology's fixed propagation delays (sender → queue and
    receiver → sender half-RTTs). *)

type 'a t

val create : Engine.t -> delay:float -> filler:'a -> ('a -> unit) -> 'a t
(** [filler] pads the internal ring buffer (never passed to the
    handler). *)

val push : 'a t -> 'a -> unit
(** Deliver the value to the handler [delay] seconds from now.  Values
    pushed at the same instant are delivered in push order. *)

val length : 'a t -> int
(** Values currently in flight. *)
