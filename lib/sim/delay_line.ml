type 'a t = {
  engine : Engine.t;
  delay : float;
  handler : 'a -> unit;
  mutable buf : 'a array;
  mutable head : int;  (* index of the oldest element *)
  mutable len : int;
  mutable pop_cb : unit -> unit;  (* preallocated; shared by every event *)
  filler : 'a;
}

let create engine ~delay ~filler handler =
  let t =
    { engine; delay; handler; buf = Array.make 16 filler; head = 0; len = 0;
      pop_cb = ignore; filler }
  in
  t.pop_cb <-
    (fun () ->
      (* Events fire in push order (constant delay keeps due times
         monotone, and the agenda is FIFO within a timestamp), so each
         firing consumes exactly the oldest element.  The wrap is a
         compare, not a [mod] — integer division is a hot-path cost. *)
      let v = t.buf.(t.head) in
      t.buf.(t.head) <- t.filler;
      let h = t.head + 1 in
      t.head <- (if h >= Array.length t.buf then 0 else h);
      t.len <- t.len - 1;
      t.handler v);
  t

let grow t =
  let cap = Array.length t.buf in
  let bigger = Array.make (2 * cap) t.filler in
  for i = 0 to t.len - 1 do
    bigger.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- bigger;
  t.head <- 0

(* remy-lint: hot *)
let push t v =
  if t.len >= Array.length t.buf then grow t;
  let cap = Array.length t.buf in
  (* head < cap and len <= cap, so one conditional subtract wraps. *)
  let i = t.head + t.len in
  t.buf.(if i >= cap then i - cap else i) <- v;
  t.len <- t.len + 1;
  Engine.schedule_in t.engine t.delay t.pop_cb

let length t = t.len
