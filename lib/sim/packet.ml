type xcp_header = {
  xcp_cwnd : float;
  xcp_rtt : float;
  mutable xcp_feedback : float;
}

(* Fields are mutable so pooled packets can be re-initialised in place;
   outside [Pool] the records are treated as write-once. *)
type t = {
  mutable flow : int;
  mutable seq : int;
  mutable conn : int;
  mutable size : int;
  mutable sent_at : float;
  mutable retx : bool;
  mutable ecn_capable : bool;
  mutable ecn_marked : bool;
  mutable corrupt : bool;
  mutable xcp : xcp_header option;
}

type ack = {
  mutable ack_flow : int;
  mutable ack_conn : int;
  mutable cum_ack : int;
  mutable acked_seq : int;
  mutable acked_sent_at : float;
  mutable acked_retx : bool;
  mutable ecn_echo : bool;
  mutable ack_xcp_feedback : float option;
  mutable received_at : float;
}

let default_size = 1500

let make ~flow ~seq ~conn ~now ?(size = default_size) ?(retx = false)
    ?(ecn_capable = false) ?xcp () =
  {
    flow;
    seq;
    conn;
    size;
    sent_at = now;
    retx;
    ecn_capable;
    ecn_marked = false;
    corrupt = false;
    xcp;
  }

(* Pool array filler only: a slot holding [dummy] is by definition free,
   so no live flow ever reads or writes it from any domain. *)
(* remy-lint: allow global-mutable *)
let dummy =
  {
    flow = -1;
    seq = -1;
    conn = -1;
    size = 0;
    sent_at = 0.;
    retx = false;
    ecn_capable = false;
    ecn_marked = false;
    corrupt = false;
    xcp = None;
  }

(* Same free-slot filler argument as [dummy]. *)
(* remy-lint: allow global-mutable *)
let dummy_ack =
  {
    ack_flow = -1;
    ack_conn = -1;
    cum_ack = 0;
    acked_seq = -1;
    acked_sent_at = 0.;
    acked_retx = false;
    ecn_echo = false;
    ack_xcp_feedback = None;
    received_at = 0.;
  }

(* Free lists of retired packet and ack records, reused across a
   connection's lifetime so the per-packet cost of a simulation is field
   writes instead of minor-heap allocation.  Releasing is optional: a
   record the owner loses track of (e.g. a packet dropped inside a
   qdisc) is simply collected, and the next acquire replenishes the pool
   (a "miss"). *)
module Pool = struct
  type pool = {
    mutable pkts : t array;
    mutable n_pkts : int;
    mutable acks : ack array;
    mutable n_acks : int;
    mutable hits : int;
    mutable misses : int;
  }

  (* [packets]/[acks] pre-populate the free lists with that many fresh
     records (counted as neither hits nor misses), so a scenario that
     knows its flow count and bandwidth-delay product pays its pool
     misses at construction instead of cold-missing through the first
     RTTs of the steady state. *)
  let create ?(packets = 0) ?(acks = 0) () =
    let p =
      {
        pkts = Array.make (max 64 packets) dummy;
        n_pkts = 0;
        acks = Array.make (max 64 acks) dummy_ack;
        n_acks = 0;
        hits = 0;
        misses = 0;
      }
    in
    for i = 0 to packets - 1 do
      p.pkts.(i) <-
        make ~flow:(-1) ~seq:(-1) ~conn:(-1) ~now:0. ()
    done;
    p.n_pkts <- packets;
    for i = 0 to acks - 1 do
      p.acks.(i) <-
        {
          ack_flow = -1;
          ack_conn = -1;
          cum_ack = 0;
          acked_seq = -1;
          acked_sent_at = 0.;
          acked_retx = false;
          ecn_echo = false;
          ack_xcp_feedback = None;
          received_at = 0.;
        }
    done;
    p.n_acks <- acks;
    p

  (* remy-lint: hot *)
  let acquire p ~flow ~seq ~conn ~now ?(size = default_size) ?(retx = false)
      ?(ecn_capable = false) ?xcp () =
    if p.n_pkts > 0 then begin
      p.n_pkts <- p.n_pkts - 1;
      p.hits <- p.hits + 1;
      let pkt = p.pkts.(p.n_pkts) in
      pkt.flow <- flow;
      pkt.seq <- seq;
      pkt.conn <- conn;
      pkt.size <- size;
      pkt.sent_at <- now;
      pkt.retx <- retx;
      pkt.ecn_capable <- ecn_capable;
      pkt.ecn_marked <- false;
      pkt.corrupt <- false;
      pkt.xcp <- xcp;
      pkt
    end
    else begin
      p.misses <- p.misses + 1;
      (* cold miss path: forwarding to make's optional parameters boxes
         the arguments in Some *)
      (* remy-lint: allow hot-alloc *)
      make ~flow ~seq ~conn ~now ~size ~retx ~ecn_capable ?xcp ()
    end

  (* remy-lint: hot *)
  let release p pkt =
    if p.n_pkts >= Array.length p.pkts then begin
      (* cold doubling path *)
      let bigger = Array.make (2 * Array.length p.pkts) dummy in (* remy-lint: allow hot-alloc *)
      Array.blit p.pkts 0 bigger 0 p.n_pkts;
      p.pkts <- bigger
    end;
    p.pkts.(p.n_pkts) <- pkt;
    p.n_pkts <- p.n_pkts + 1

  (* remy-lint: hot *)
  let acquire_ack p =
    if p.n_acks > 0 then begin
      p.n_acks <- p.n_acks - 1;
      p.hits <- p.hits + 1;
      p.acks.(p.n_acks)
    end
    else begin
      p.misses <- p.misses + 1;
      (* cold miss path: the pool ran dry *)
      (* remy-lint: allow hot-alloc *)
      {
        ack_flow = -1;
        ack_conn = -1;
        cum_ack = 0;
        acked_seq = -1;
        acked_sent_at = 0.;
        acked_retx = false;
        ecn_echo = false;
        ack_xcp_feedback = None;
        received_at = 0.;
      }
    end

  (* remy-lint: hot *)
  let release_ack p ack =
    if p.n_acks >= Array.length p.acks then begin
      (* cold doubling path *)
      let bigger = Array.make (2 * Array.length p.acks) dummy_ack in (* remy-lint: allow hot-alloc *)
      Array.blit p.acks 0 bigger 0 p.n_acks;
      p.acks <- bigger
    end;
    p.acks.(p.n_acks) <- ack;
    p.n_acks <- p.n_acks + 1

  let hits p = p.hits
  let misses p = p.misses
end
