open Remy_util
module T = Remy_obs.Trace

let create ?(tracer = T.off) ~capacity ~min_th ~max_th ~max_p ~weight ~seed ()
    =
  let q : Packet.t Queue.t = Queue.create () in
  let bytes = ref 0 in
  let drops = ref 0 in
  let avg = ref 0. in
  let count = ref (-1) in
  (* packets since last mark, for uniform marking spacing *)
  let rng = Prng.create seed in
  let event ~now kind (pkt : Packet.t) =
    if T.is_on tracer then
      T.packet_event tracer ~now ~kind ~queue:"red" ~flow:pkt.Packet.flow
        ~seq:pkt.Packet.seq ~size:pkt.Packet.size ~qlen:(Queue.length q) ()
  in
  let mark_or_drop ~now pkt =
    if pkt.Packet.ecn_capable then begin
      pkt.Packet.ecn_marked <- true;
      event ~now T.Ecn_mark pkt;
      true (* still enqueued *)
    end
    else false
  in
  let admit ~now pkt =
    Queue.add pkt q;
    bytes := !bytes + pkt.Packet.size;
    event ~now T.Enqueue pkt;
    true
  in
  let reject ~now pkt =
    incr drops;
    event ~now T.Drop pkt;
    false
  in
  let enqueue ~now pkt =
    avg := ((1. -. weight) *. !avg) +. (weight *. float_of_int (Queue.length q));
    if Queue.length q >= capacity then reject ~now pkt
    else if !avg < min_th then begin
      count := -1;
      admit ~now pkt
    end
    else if !avg >= max_th then begin
      count := 0;
      if mark_or_drop ~now pkt then admit ~now pkt else reject ~now pkt
    end
    else begin
      incr count;
      let pb = max_p *. (!avg -. min_th) /. (max_th -. min_th) in
      let pa =
        let denom = 1. -. (float_of_int !count *. pb) in
        if denom <= 0. then 1. else pb /. denom
      in
      if Prng.float rng 1.0 < pa then begin
        count := 0;
        if mark_or_drop ~now pkt then admit ~now pkt else reject ~now pkt
      end
      else admit ~now pkt
    end
  in
  let dequeue ~now =
    match Queue.take_opt q with
    | None -> None
    | Some pkt ->
      bytes := !bytes - pkt.Packet.size;
      event ~now T.Dequeue pkt;
      Some pkt
  in
  {
    Qdisc.name = "red";
    enqueue;
    dequeue;
    length = (fun () -> Queue.length q);
    byte_length = (fun () -> !bytes);
    drops = (fun () -> !drops);
  }

let create_dctcp ?(tracer = T.off) ~capacity ~threshold () =
  let q : Packet.t Queue.t = Queue.create () in
  let bytes = ref 0 in
  let drops = ref 0 in
  let event ~now kind (pkt : Packet.t) =
    if T.is_on tracer then
      T.packet_event tracer ~now ~kind ~queue:"dctcp-red" ~flow:pkt.Packet.flow
        ~seq:pkt.Packet.seq ~size:pkt.Packet.size ~qlen:(Queue.length q) ()
  in
  let enqueue ~now pkt =
    if Queue.length q >= capacity then begin
      incr drops;
      event ~now T.Drop pkt;
      false
    end
    else begin
      if Queue.length q >= threshold && pkt.Packet.ecn_capable then begin
        pkt.Packet.ecn_marked <- true;
        event ~now T.Ecn_mark pkt
      end;
      Queue.add pkt q;
      bytes := !bytes + pkt.Packet.size;
      event ~now T.Enqueue pkt;
      true
    end
  in
  let dequeue ~now =
    match Queue.take_opt q with
    | None -> None
    | Some pkt ->
      bytes := !bytes - pkt.Packet.size;
      event ~now T.Dequeue pkt;
      Some pkt
  in
  {
    Qdisc.name = "dctcp-red";
    enqueue;
    dequeue;
    length = (fun () -> Queue.length q);
    byte_length = (fun () -> !bytes);
    drops = (fun () -> !drops);
  }
