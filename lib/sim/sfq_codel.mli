(** Stochastic fair queueing with per-queue CoDel (sfqCoDel).

    The paper's strongest in-network baseline (Section 5.1): flows are
    hashed into bins, each bin runs its own CoDel instance, and bins are
    served by deficit round-robin with a one-MTU quantum.  Bins with
    fresh traffic are served first (the new/old flow lists of
    fq_codel/sfqcodel), which gives short flows low latency.  When the
    shared buffer is full, the arriving packet is dropped from the
    currently longest bin. *)

val create :
  ?tracer:Remy_obs.Trace.t ->
  ?bins:int ->
  ?quantum:int ->
  ?target:float ->
  ?interval:float ->
  capacity:int ->
  unit ->
  Qdisc.t
(** Defaults: 1024 bins, quantum 1500 bytes, CoDel target 5 ms /
    interval 100 ms; [capacity] is the shared packet limit.  [tracer]
    (default off) records enqueue/dequeue events, overflow drops from
    the fattest bin, and per-bin CoDel head drops ([qlen] fields report
    the shared queue's total). *)
