(** Stochastic (non-congestive) packet loss.

    Wraps any queue discipline with an i.i.d. Bernoulli drop ahead of the
    queue — the "links with non-congestive stochastic loss" of the
    paper's introduction (e.g. wireless corruption).  Section 4.1 argues
    that because a RemyCC does not use loss as a congestion signal, it
    should "robustly handle stochastic (non-congestive) packet losses
    without adversely reducing performance", unlike loss-based TCP; the
    [ablation_loss] benchmark tests exactly that claim with this
    wrapper. *)

val create :
  ?tracer:Remy_obs.Trace.t ->
  inner:Qdisc.t ->
  loss_rate:float ->
  seed:int ->
  unit ->
  Qdisc.t
(** [loss_rate] in [0, 1); drops are deterministic given [seed] and are
    counted in the wrapper's [drops] (added to the inner qdisc's).
    [tracer] (default off) records the wrapper's random drops; events
    from the inner qdisc need the inner qdisc's own tracer. *)
