type t = {
  engine : Engine.t;
  disc : Qdisc.t;
  sink : Packet.t -> unit;
  mutable busy : bool;  (* constant-rate links only *)
  mutable in_service : Packet.t;  (* meaningful only while busy *)
  mutable complete : unit -> unit;  (* preallocated tx-done callback *)
  mutable delivered_pkts : int;
  mutable delivered_bytes : int;
  mutable corrupt_drops : int;
  mutable up : bool;  (* outage state: a down link serves nothing *)
  mutable service : service;
}

and service = Constant of float (* bytes per second *) | Trace

let deliver t pkt =
  if pkt.Packet.corrupt then begin
    (* Corrupted in flight: the packet consumed service capacity but the
       checksum fails at the far end, so it never reaches the sink. *)
    t.corrupt_drops <- t.corrupt_drops + 1;
    let tr = Engine.tracer t.engine in
    if Remy_obs.Trace.is_on tr then
      Remy_obs.Trace.packet_event tr ~now:(Engine.now t.engine)
        ~kind:Remy_obs.Trace.Drop
        ~queue:(t.disc.Qdisc.name ^ "+corrupt")
        ~flow:pkt.Packet.flow ~seq:pkt.Packet.seq ~size:pkt.Packet.size
        ~qlen:(t.disc.Qdisc.length ()) ()
  end
  else begin
    t.delivered_pkts <- t.delivered_pkts + 1;
    t.delivered_bytes <- t.delivered_bytes + pkt.Packet.size;
    (* [now - sent_at] at link exit is send-to-transmission-complete: queue
       wait plus transmission, before propagation — exactly the receiver's
       (receive_time - sent_at - rtt/2) queueing delay, observed here so no
       rtt plumbing is needed. *)
    if Remy_obs.Metrics.enabled () then
      Remy_obs.Metrics.record Remy_obs.Metrics.Queueing_delay
        (Engine.now t.engine -. pkt.Packet.sent_at);
    let tr = Engine.tracer t.engine in
    if Remy_obs.Trace.is_on tr then
      Remy_obs.Trace.packet_event tr ~now:(Engine.now t.engine)
        ~kind:Remy_obs.Trace.Deliver ~queue:t.disc.Qdisc.name ~flow:pkt.Packet.flow
        ~seq:pkt.Packet.seq ~size:pkt.Packet.size
        ~delay_s:(Engine.now t.engine -. pkt.Packet.sent_at)
        ~qlen:(t.disc.Qdisc.length ()) ();
    t.sink pkt
  end

let start_service t =
  match t.service with
  | Trace -> ()
  | Constant rate -> (
    if t.up && not t.busy then
      match t.disc.Qdisc.dequeue ~now:(Engine.now t.engine) with
      | None -> ()
      | Some pkt ->
        (* Queue sojourn: send (= enqueue, senders transmit into the
           qdisc at [sent_at]) to dequeue, excluding transmission. *)
        if Remy_obs.Metrics.enabled () then
          Remy_obs.Metrics.record Remy_obs.Metrics.Sojourn
            (Engine.now t.engine -. pkt.Packet.sent_at);
        (* Single packet in service at a time, so the in-flight packet
           lives in a field and every transmission reuses one completion
           callback instead of allocating a closure per packet. *)
        t.busy <- true;
        t.in_service <- pkt;
        let tx_time = float_of_int pkt.Packet.size /. rate in
        Engine.schedule_in t.engine tx_time t.complete)

let create_constant engine ~qdisc ~bytes_per_sec ~sink =
  let t =
    {
      engine;
      disc = qdisc;
      sink;
      busy = false;
      in_service = Packet.dummy;
      complete = ignore;
      delivered_pkts = 0;
      delivered_bytes = 0;
      corrupt_drops = 0;
      up = true;
      service = Constant bytes_per_sec;
    }
  in
  t.complete <-
    (fun () ->
      let pkt = t.in_service in
      t.busy <- false;
      t.in_service <- Packet.dummy;
      deliver t pkt;
      start_service t);
  t

let create_trace engine ~qdisc ~next_gap ~sink =
  let t =
    {
      engine;
      disc = qdisc;
      sink;
      busy = false;
      in_service = Packet.dummy;
      complete = ignore;
      delivered_pkts = 0;
      delivered_bytes = 0;
      corrupt_drops = 0;
      up = true;
      service = Trace;
    }
  in
  let rec tick () =
    (* A down trace link skips its delivery opportunities: the chain of
       opportunities keeps ticking (as the radio schedule would), but no
       packet leaves the queue. *)
    (if t.up then
       match t.disc.Qdisc.dequeue ~now:(Engine.now engine) with
       | Some pkt ->
         if Remy_obs.Metrics.enabled () then
           Remy_obs.Metrics.record Remy_obs.Metrics.Sojourn
             (Engine.now engine -. pkt.Packet.sent_at);
         deliver t pkt
       | None -> ());
    Engine.schedule_in engine (Float.max 1e-9 (next_gap ())) tick
  in
  Engine.schedule_in engine (Float.max 1e-9 (next_gap ())) tick;
  t

let send t pkt =
  let now = Engine.now t.engine in
  if t.disc.Qdisc.enqueue ~now pkt then start_service t

let kick t = start_service t
let is_up t = t.up

let set_up t up =
  let was = t.up in
  t.up <- up;
  (* Coming back up: restart service for whatever parked in the queue
     during the outage.  An in-flight transmission was never interrupted
     (the packet was already on the wire), so no cleanup on down. *)
  if up && not was then start_service t

let rate_bytes_per_sec t =
  match t.service with Constant r -> Some r | Trace -> None

let set_rate_bytes_per_sec t rate =
  match t.service with
  | Constant _ ->
    if rate <= 0. then invalid_arg "Link.set_rate_bytes_per_sec: rate <= 0";
    (* Applies from the next packet entering service; the transmission in
       progress finishes at the old rate. *)
    t.service <- Constant rate
  | Trace -> ()

let qdisc t = t.disc
let delivered_packets t = t.delivered_pkts
let delivered_bytes t = t.delivered_bytes
let corrupt_drops t = t.corrupt_drops

let bytes_per_sec_of_mbps mbps = mbps *. 1e6 /. 8.
let pps_of_mbps mbps = bytes_per_sec_of_mbps mbps /. float_of_int Packet.default_size
