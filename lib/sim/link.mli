(** Bottleneck link: serves packets from a queue discipline.

    Two service models, matching the paper's evaluation:

    - constant rate (the dumbbell and datacenter topologies): one packet
      transmission takes size/rate seconds;
    - trace-driven (the cellular experiments): queued packets are
      released at exactly the delivery instants of a pre-recorded trace,
      "queueing packets until they are released to the receiver at the
      same time they were released in the trace" (Section 5.3).

    Delivered packets go to [sink], which the topology wires to add
    propagation delay and hand the packet to a receiver. *)

type t

val create_constant :
  Engine.t -> qdisc:Qdisc.t -> bytes_per_sec:float -> sink:(Packet.t -> unit) -> t

val create_trace :
  Engine.t -> qdisc:Qdisc.t -> next_gap:(unit -> float) -> sink:(Packet.t -> unit) -> t
(** [next_gap ()] returns the time until the next delivery opportunity
    (one packet per opportunity); the chain of opportunities starts at
    creation time. *)

val send : t -> Packet.t -> unit
(** Enqueue a packet (the qdisc may drop or mark it) and start service if
    the link is idle. *)

val kick : t -> unit
(** Start service if the link is idle and the qdisc non-empty.  Needed
    by fault injectors that enqueue into the qdisc behind the link's
    back (e.g. a reordered packet re-entering after its hold). *)

val is_up : t -> bool

val set_up : t -> bool -> unit
(** Outage control (default up).  A down link serves nothing: packets
    park in the qdisc (or are dropped there by its own policy) until the
    link comes back up, at which point service restarts.  A transmission
    already in progress completes — the packet was on the wire. *)

val rate_bytes_per_sec : t -> float option
(** Current service rate; [None] for trace-driven links. *)

val set_rate_bytes_per_sec : t -> float -> unit
(** Mid-run bandwidth shift, from the next packet entering service.
    No-op on trace-driven links. *)

val qdisc : t -> Qdisc.t
val delivered_packets : t -> int
val delivered_bytes : t -> int

val corrupt_drops : t -> int
(** Packets that consumed service capacity but arrived corrupt and were
    dropped at link exit (fault injection). *)

val bytes_per_sec_of_mbps : float -> float
val pps_of_mbps : float -> float
(** Packets per second at the {!Packet.default_size} segment size. *)
