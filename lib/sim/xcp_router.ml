let create engine ?(tracer = Remy_obs.Trace.off) ~capacity_pps ~queue_capacity
    ?(alpha = 0.4) ?(beta = 0.226) ?(gamma = 0.1) () =
  let module T = Remy_obs.Trace in
  let q : Packet.t Queue.t = Queue.create () in
  let bytes = ref 0 in
  let drops = ref 0 in
  let event ~now kind (pkt : Packet.t) =
    if T.is_on tracer then
      T.packet_event tracer ~now ~kind ~queue:"xcp" ~flow:pkt.Packet.flow
        ~seq:pkt.Packet.seq ~size:pkt.Packet.size ~qlen:(Queue.length q) ()
  in
  (* Control-interval accumulators (reset each interval). *)
  let arrivals = ref 0. in
  (* packets *)
  let sum_rtt = ref 0. in
  let sum_rtt_by_cwnd = ref 0. in
  let min_queue = ref 0 in
  (* Per-packet feedback scale factors, from the previous interval. *)
  let xi_pos = ref 0. in
  let xi_neg = ref 0. in
  let d = ref 0.1 in
  (* current control interval = mean RTT estimate *)
  let effective_rtt pkt_rtt = if pkt_rtt > 1e-6 then pkt_rtt else !d in
  let effective_cwnd c = Float.max 0.1 c in
  let rec control_tick () =
    let interval = !d in
    let y = !arrivals /. interval in
    (* input rate, pkts/s *)
    let spare = capacity_pps -. y in
    let phi =
      (alpha *. interval *. spare) -. (beta *. float_of_int !min_queue)
    in
    let shuffle = Float.max 0. ((gamma *. !arrivals) -. Float.abs phi) in
    let pos_budget = shuffle +. Float.max 0. phi in
    let neg_budget = shuffle +. Float.max 0. (-.phi) in
    xi_pos :=
      (if !sum_rtt_by_cwnd > 1e-12 then
         pos_budget /. (interval *. !sum_rtt_by_cwnd)
       else 0.);
    xi_neg :=
      (if !arrivals > 0. then neg_budget /. (interval *. !arrivals) else 0.);
    (* Next interval length: mean RTT of traffic, bounded for sanity. *)
    if !arrivals > 0. && !sum_rtt > 0. then
      d := Float.min 2.0 (Float.max 0.001 (!sum_rtt /. !arrivals));
    arrivals := 0.;
    sum_rtt := 0.;
    sum_rtt_by_cwnd := 0.;
    min_queue := Queue.length q;
    Engine.schedule_in engine !d control_tick
  in
  Engine.schedule_in engine !d control_tick;
  let feedback_for pkt =
    match pkt.Packet.xcp with
    | None -> ()
    | Some hdr ->
      let rtt = effective_rtt hdr.Packet.xcp_rtt in
      let cwnd = effective_cwnd hdr.Packet.xcp_cwnd in
      let p = !xi_pos *. rtt *. rtt /. cwnd in
      let n = !xi_neg *. rtt in
      let h = p -. n in
      (* Downstream routers take the minimum feedback; emulate that even
         though our topologies have a single bottleneck. *)
      hdr.Packet.xcp_feedback <- Float.min hdr.Packet.xcp_feedback h
  in
  let enqueue ~now pkt =
    if Queue.length q >= queue_capacity then begin
      incr drops;
      event ~now T.Drop pkt;
      false
    end
    else begin
      (match pkt.Packet.xcp with
      | Some hdr ->
        let rtt = effective_rtt hdr.Packet.xcp_rtt in
        let cwnd = effective_cwnd hdr.Packet.xcp_cwnd in
        arrivals := !arrivals +. 1.;
        sum_rtt := !sum_rtt +. rtt;
        sum_rtt_by_cwnd := !sum_rtt_by_cwnd +. (rtt /. cwnd)
      | None -> arrivals := !arrivals +. 1.);
      feedback_for pkt;
      Queue.add pkt q;
      bytes := !bytes + pkt.Packet.size;
      event ~now T.Enqueue pkt;
      true
    end
  in
  let dequeue ~now =
    let r = Queue.take_opt q in
    (match r with
    | Some pkt ->
      bytes := !bytes - pkt.Packet.size;
      event ~now T.Dequeue pkt
    | None -> ());
    if Queue.length q < !min_queue then min_queue := Queue.length q;
    r
  in
  {
    Qdisc.name = "xcp";
    enqueue;
    dequeue;
    length = (fun () -> Queue.length q);
    byte_length = (fun () -> !bytes);
    drops = (fun () -> !drops);
  }
