let mtu = Packet.default_size

module State = struct
  type t = {
    target : float;
    interval : float;
    mutable first_above_time : float;
    mutable drop_next : float;
    mutable count : int;
    mutable lastcount : int;
    mutable dropping : bool;
  }

  let create ?(target = 0.005) ?(interval = 0.100) () =
    {
      target;
      interval;
      first_above_time = 0.;
      drop_next = 0.;
      count = 0;
      lastcount = 0;
      dropping = false;
    }

  let control_law t from count = from +. (t.interval /. sqrt (float_of_int count))

  (* Pop one packet and decide whether CoDel would drop it. *)
  let dodequeue t ~now ~pop ~bytes =
    match pop () with
    | None ->
      t.first_above_time <- 0.;
      (None, false)
    | Some (enq_time, pkt) ->
      let sojourn = now -. enq_time in
      if sojourn < t.target || bytes () <= mtu then begin
        t.first_above_time <- 0.;
        (Some pkt, false)
      end
      else if t.first_above_time = 0. then begin
        t.first_above_time <- now +. t.interval;
        (Some pkt, false)
      end
      else (Some pkt, now >= t.first_above_time)

  let dequeue t ~now ~pop ~bytes ~on_drop =
    let pkt, ok_to_drop = dodequeue t ~now ~pop ~bytes in
    match pkt with
    | None ->
      t.dropping <- false;
      None
    | Some pkt ->
      let result = ref (Some pkt) in
      if t.dropping then begin
        if not ok_to_drop then t.dropping <- false
        else begin
          let current = ref pkt in
          let continue = ref true in
          while !continue && t.dropping && now >= t.drop_next do
            on_drop !current;
            t.count <- t.count + 1;
            let next, ok = dodequeue t ~now ~pop ~bytes in
            match next with
            | None ->
              t.dropping <- false;
              result := None;
              continue := false
            | Some p ->
              current := p;
              if not ok then begin
                t.dropping <- false;
                result := Some p
              end
              else begin
                t.drop_next <- control_law t t.drop_next t.count;
                result := Some p
              end
          done
        end
      end
      else if ok_to_drop then begin
        on_drop pkt;
        let next, _ok = dodequeue t ~now ~pop ~bytes in
        result := next;
        t.dropping <- true;
        let delta = t.count - t.lastcount in
        t.count <-
          (if delta > 1 && now -. t.drop_next < 16. *. t.interval then delta else 1);
        t.drop_next <- control_law t now t.count;
        t.lastcount <- t.count
      end;
      !result
end

let create ?(tracer = Remy_obs.Trace.off) ?target ?interval ~capacity () =
  let module T = Remy_obs.Trace in
  let q : (float * Packet.t) Queue.t = Queue.create () in
  let bytes = ref 0 in
  let drops = ref 0 in
  let state = State.create ?target ?interval () in
  let event ~now kind (pkt : Packet.t) =
    if T.is_on tracer then
      T.packet_event tracer ~now ~kind ~queue:"codel" ~flow:pkt.Packet.flow
        ~seq:pkt.Packet.seq ~size:pkt.Packet.size ~qlen:(Queue.length q) ()
  in
  let pop () =
    match Queue.take_opt q with
    | None -> None
    | Some (at, pkt) ->
      bytes := !bytes - pkt.Packet.size;
      Some (at, pkt)
  in
  let enqueue ~now pkt =
    if Queue.length q >= capacity then begin
      incr drops;
      event ~now T.Drop pkt;
      false
    end
    else begin
      Queue.add (now, pkt) q;
      bytes := !bytes + pkt.Packet.size;
      event ~now T.Enqueue pkt;
      true
    end
  in
  let dequeue ~now =
    let r =
      State.dequeue state ~now ~pop
        ~bytes:(fun () -> !bytes)
        ~on_drop:(fun pkt ->
          incr drops;
          event ~now T.Drop pkt)
    in
    (match r with Some pkt -> event ~now T.Dequeue pkt | None -> ());
    r
  in
  {
    Qdisc.name = "codel";
    enqueue;
    dequeue;
    length = (fun () -> Queue.length q);
    byte_length = (fun () -> !bytes);
    drops = (fun () -> !drops);
  }
