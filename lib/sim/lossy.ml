open Remy_util

let create ?(tracer = Remy_obs.Trace.off) ~inner ~loss_rate ~seed () =
  let module T = Remy_obs.Trace in
  assert (loss_rate >= 0. && loss_rate < 1.);
  let rng = Prng.create seed in
  let random_drops = ref 0 in
  let enqueue ~now pkt =
    if Prng.float rng 1.0 < loss_rate then begin
      incr random_drops;
      if T.is_on tracer then
        T.packet_event tracer ~now ~kind:T.Drop
          ~queue:(inner.Qdisc.name ^ "+loss")
          ~flow:pkt.Packet.flow ~seq:pkt.Packet.seq ~size:pkt.Packet.size
          ~qlen:(inner.Qdisc.length ()) ();
      false
    end
    else inner.Qdisc.enqueue ~now pkt
  in
  {
    Qdisc.name = inner.Qdisc.name ^ "+loss";
    enqueue;
    dequeue = inner.Qdisc.dequeue;
    length = inner.Qdisc.length;
    byte_length = inner.Qdisc.byte_length;
    drops = (fun () -> !random_drops + inner.Qdisc.drops ());
  }
