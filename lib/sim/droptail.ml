module T = Remy_obs.Trace

let name = "droptail"

let create ?(tracer = T.off) ~capacity () =
  (* FIFO ring: no per-packet allocation on the enqueue path, unlike a
     linked [Queue.t].  The ring grows geometrically with actual
     occupancy — [capacity] only bounds admission and can be
     {!Qdisc.unlimited_capacity} ([max_int]). *)
  let ring = ref (Array.make 16 Packet.dummy) in
  let head = ref 0 in
  let len = ref 0 in
  let bytes = ref 0 in
  let drops = ref 0 in
  let grow () =
    let r = !ring in
    let cap = Array.length r in
    let bigger = Array.make (2 * cap) Packet.dummy in
    for i = 0 to !len - 1 do
      let j = !head + i in
      bigger.(i) <- r.(if j >= cap then j - cap else j)
    done;
    ring := bigger;
    head := 0
  in
  let event ~now kind (pkt : Packet.t) =
    if T.is_on tracer then
      T.packet_event tracer ~now ~kind ~queue:name ~flow:pkt.Packet.flow
        ~seq:pkt.Packet.seq ~size:pkt.Packet.size ~qlen:!len ()
  in
  let enqueue ~now pkt =
    if !len >= capacity then begin
      incr drops;
      event ~now T.Drop pkt;
      false
    end
    else begin
      if !len >= Array.length !ring then grow ();
      let r = !ring in
      let cap = Array.length r in
      let i = !head + !len in
      r.(if i >= cap then i - cap else i) <- pkt;
      incr len;
      bytes := !bytes + pkt.Packet.size;
      event ~now T.Enqueue pkt;
      true
    end
  in
  let dequeue ~now =
    if !len = 0 then None
    else begin
      let r = !ring in
      let pkt = r.(!head) in
      r.(!head) <- Packet.dummy;
      let h = !head + 1 in
      head := (if h >= Array.length r then 0 else h);
      decr len;
      bytes := !bytes - pkt.Packet.size;
      event ~now T.Dequeue pkt;
      Some pkt
    end
  in
  {
    Qdisc.name;
    enqueue;
    dequeue;
    length = (fun () -> !len);
    byte_length = (fun () -> !bytes);
    drops = (fun () -> !drops);
  }
