module T = Remy_obs.Trace

let name = "droptail"

let create ?(tracer = T.off) ~capacity () =
  let q : Packet.t Queue.t = Queue.create () in
  let bytes = ref 0 in
  let drops = ref 0 in
  let event ~now kind (pkt : Packet.t) =
    if T.is_on tracer then
      T.packet_event tracer ~now ~kind ~queue:name ~flow:pkt.Packet.flow
        ~seq:pkt.Packet.seq ~size:pkt.Packet.size ~qlen:(Queue.length q) ()
  in
  let enqueue ~now pkt =
    if Queue.length q >= capacity then begin
      incr drops;
      event ~now T.Drop pkt;
      false
    end
    else begin
      Queue.add pkt q;
      bytes := !bytes + pkt.Packet.size;
      event ~now T.Enqueue pkt;
      true
    end
  in
  let dequeue ~now =
    match Queue.take_opt q with
    | None -> None
    | Some pkt ->
      bytes := !bytes - pkt.Packet.size;
      event ~now T.Dequeue pkt;
      Some pkt
  in
  {
    Qdisc.name;
    enqueue;
    dequeue;
    length = (fun () -> Queue.length q);
    byte_length = (fun () -> !bytes);
    drops = (fun () -> !drops);
  }
