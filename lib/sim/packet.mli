(** Data packets and acknowledgments.

    One packet is one fixed-size TCP segment (the simulator works in
    whole segments, like Remy's own design-phase simulator).  Sequence
    numbers count segments within one connection ("on" period).  The XCP
    congestion header and the ECN bits ride along for the router-assisted
    baselines.

    All fields are mutable so that {!Pool} can re-initialise retired
    records in place; every consumer outside the pool treats them as
    write-once (the link marks [ecn_marked], XCP routers update
    [xcp_feedback], everything else only reads). *)

type xcp_header = {
  xcp_cwnd : float;  (** sender cwnd, packets *)
  xcp_rtt : float;  (** sender RTT estimate, seconds *)
  mutable xcp_feedback : float;  (** router-granted window delta, packets *)
}

type t = {
  mutable flow : int;  (** sender index within the experiment *)
  mutable seq : int;  (** segment sequence number, from 0 per connection *)
  mutable conn : int;  (** connection ("on" period) counter, guards stale ACKs *)
  mutable size : int;  (** bytes on the wire *)
  mutable sent_at : float;  (** transmission timestamp (echoed by receiver) *)
  mutable retx : bool;  (** retransmission (Karn: no RTT sample) *)
  mutable ecn_capable : bool;
  mutable ecn_marked : bool;
  mutable corrupt : bool;
      (** payload corrupted in flight (fault injection); the link drops
          the packet at service completion — it consumes capacity but is
          never delivered *)
  mutable xcp : xcp_header option;
}

type ack = {
  mutable ack_flow : int;
  mutable ack_conn : int;
  mutable cum_ack : int;  (** next segment expected in order *)
  mutable acked_seq : int;  (** seq of the data packet that triggered this ACK *)
  mutable acked_sent_at : float;  (** echo of that packet's [sent_at] *)
  mutable acked_retx : bool;
  mutable ecn_echo : bool;
  mutable ack_xcp_feedback : float option;  (** packets of window delta *)
  mutable received_at : float;  (** receiver timestamp *)
}

val default_size : int
(** 1500 bytes: the segment size used throughout the evaluation. *)

val make :
  flow:int ->
  seq:int ->
  conn:int ->
  now:float ->
  ?size:int ->
  ?retx:bool ->
  ?ecn_capable:bool ->
  ?xcp:xcp_header ->
  unit ->
  t

val dummy : t
(** Placeholder packet for array fillers and not-in-service slots; never
    enters a simulation. *)

val dummy_ack : ack

(** Free lists of packet and ack records, reused across a connection's
    lifetime.  [acquire]/[acquire_ack] pop a recycled record (fully
    re-initialised) or allocate on a miss; [release]/[release_ack] hand a
    record back once no reference to it survives.  Records the owner
    loses track of (e.g. packets dropped inside a qdisc) may simply be
    garbage collected — the pool replenishes itself on the next miss. *)
module Pool : sig
  type pool

  val create : ?packets:int -> ?acks:int -> unit -> pool
  (** [packets]/[acks] (default 0) pre-populate the free lists with
      that many fresh records — counted as neither hits nor misses —
      so a scenario that can estimate its working set (flow count plus
      bandwidth-delay product) starts warm instead of cold-missing
      through the first RTTs. *)

  val acquire :
    pool ->
    flow:int ->
    seq:int ->
    conn:int ->
    now:float ->
    ?size:int ->
    ?retx:bool ->
    ?ecn_capable:bool ->
    ?xcp:xcp_header ->
    unit ->
    t

  val release : pool -> t -> unit
  (** The caller must not touch the record afterwards: it will be handed
      out again, re-initialised, by a later [acquire]. *)

  val acquire_ack : pool -> ack
  (** Unlike {!acquire} the ack comes back uninitialised (callers set
      every field); a recycled record may carry stale values. *)

  val release_ack : pool -> ack -> unit

  val hits : pool -> int
  (** Acquires served from the free list. *)

  val misses : pool -> int
  (** Acquires that had to allocate. *)
end
