type bin = {
  q : (float * Packet.t) Queue.t;
  codel : Codel.State.t;
  mutable bytes : int;
  mutable deficit : int;
  mutable active : bool;
}

let create ?(tracer = Remy_obs.Trace.off) ?(bins = 1024)
    ?(quantum = Packet.default_size) ?target ?interval ~capacity () =
  let module T = Remy_obs.Trace in
  let make_bin () =
    {
      q = Queue.create ();
      codel = Codel.State.create ?target ?interval ();
      bytes = 0;
      deficit = 0;
      active = false;
    }
  in
  let table = Array.init bins (fun _ -> make_bin ()) in
  let new_flows : int Queue.t = Queue.create () in
  let old_flows : int Queue.t = Queue.create () in
  let total_pkts = ref 0 in
  let drops = ref 0 in
  let total_bytes = ref 0 in
  let hash flow = flow * 2654435761 land (bins - 1) in
  let event ~now kind (pkt : Packet.t) =
    if T.is_on tracer then
      T.packet_event tracer ~now ~kind ~queue:"sfqcodel" ~flow:pkt.Packet.flow
        ~seq:pkt.Packet.seq ~size:pkt.Packet.size ~qlen:!total_pkts ()
  in
  let drop_from_fattest ~now =
    (* Head-drop from the bin with the largest byte backlog. *)
    let fattest = ref (-1) in
    Array.iteri
      (fun i b ->
        if b.bytes > 0 && (!fattest < 0 || b.bytes > table.(!fattest).bytes) then
          fattest := i)
      table;
    if !fattest >= 0 then begin
      let b = table.(!fattest) in
      match Queue.take_opt b.q with
      | Some (_, pkt) ->
        b.bytes <- b.bytes - pkt.Packet.size;
        total_bytes := !total_bytes - pkt.Packet.size;
        decr total_pkts;
        incr drops;
        event ~now T.Drop pkt
      | None -> ()
    end
  in
  let enqueue ~now pkt =
    let i = hash pkt.Packet.flow in
    let b = table.(i) in
    Queue.add (now, pkt) b.q;
    b.bytes <- b.bytes + pkt.Packet.size;
    total_bytes := !total_bytes + pkt.Packet.size;
    incr total_pkts;
    event ~now T.Enqueue pkt;
    if not b.active then begin
      b.active <- true;
      b.deficit <- quantum;
      Queue.add i new_flows
    end;
    if !total_pkts > capacity then drop_from_fattest ~now;
    true
    (* the arriving packet itself is admitted; overflow drops the fattest *)
  in
  let pop_bin b () =
    match Queue.take_opt b.q with
    | None -> None
    | Some (at, pkt) ->
      b.bytes <- b.bytes - pkt.Packet.size;
      total_bytes := !total_bytes - pkt.Packet.size;
      decr total_pkts;
      Some (at, pkt)
  in
  let rec serve ~now =
    let from_new = not (Queue.is_empty new_flows) in
    let list = if from_new then new_flows else old_flows in
    match Queue.peek_opt list with
    | None -> None
    | Some i ->
      let b = table.(i) in
      if b.deficit <= 0 then begin
        ignore (Queue.pop list);
        b.deficit <- b.deficit + quantum;
        Queue.add i old_flows;
        serve ~now
      end
      else begin
        let pkt =
          Codel.State.dequeue b.codel ~now ~pop:(pop_bin b)
            ~bytes:(fun () -> b.bytes)
            ~on_drop:(fun pkt ->
              incr drops;
              event ~now T.Drop pkt)
        in
        match pkt with
        | Some pkt ->
          b.deficit <- b.deficit - pkt.Packet.size;
          event ~now T.Dequeue pkt;
          Some pkt
        | None ->
          (* Bin is empty: new bins get one more pass via the old list;
             old bins go inactive. *)
          ignore (Queue.pop list);
          if from_new then Queue.add i old_flows else b.active <- false;
          serve ~now
      end
  in
  {
    Qdisc.name = "sfqcodel";
    enqueue;
    dequeue = (fun ~now -> serve ~now);
    length = (fun () -> !total_pkts);
    byte_length = (fun () -> !total_bytes);
    drops = (fun () -> !drops);
  }
