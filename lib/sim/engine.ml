open Remy_util

type t = {
  mutable clock : float;
  agenda : (unit -> unit) Heap.t;
  mutable tracer : Remy_obs.Trace.t;
}

(* Scheduling tolerance: events aimed up to one nanosecond into the past
   are clamped to "now" rather than rejected, absorbing float round-off
   in rate computations (bytes / bandwidth etc.). *)
let schedule_epsilon = 1e-9

let create ?(tracer = Remy_obs.Trace.off) () =
  { clock = 0.; agenda = Heap.create (); tracer }

let now t = t.clock
let tracer t = t.tracer
let set_tracer t tr = t.tracer <- tr

let schedule t at f =
  if at < t.clock -. schedule_epsilon then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %.9f is before now %.9f" at t.clock);
  Heap.push t.agenda (Float.max at t.clock) f

let schedule_in t dt f = schedule t (t.clock +. dt) f

let run t ~until =
  (* Per-event cost here is two array reads and a call: Heap.min_prio /
     pop_exn avoid the option + tuple that peek/pop allocate, and the
     event tally accumulates in a local int, flushed to the atomic
     counter once per run. *)
  let a = t.agenda in
  let fired = ref 0 in
  while Heap.size a > 0 && Heap.min_prio a <= until do
    let at = Heap.min_prio a in
    let f = Heap.pop_exn a in
    t.clock <- at;
    incr fired;
    f ()
  done;
  Remy_obs.Counters.add Remy_obs.Counters.events_run !fired;
  t.clock <- Float.max t.clock until

let pending t = Heap.size t.agenda
