open Remy_util

(* The agenda has two interchangeable backends: the binary heap and
   the hierarchical timing wheel.  Both key events by (priority,
   insertion sequence), so runs are bit-identical whichever is active
   (test_timing_wheel proves this); the wheel wins once thousands of
   flows keep tens of thousands of events pending. *)
type agenda =
  | A_heap of (unit -> unit) Heap.t
  | A_wheel of (unit -> unit) Timing_wheel.t

type t = {
  mutable clock : float;
  agenda : agenda;
  mutable tracer : Remy_obs.Trace.t;
}

(* Scheduling tolerance: events aimed up to one nanosecond into the past
   are clamped to "now" rather than rejected, absorbing float round-off
   in rate computations (bytes / bandwidth etc.). *)
let schedule_epsilon = 1e-9

(* Process-wide default, flipped by {!use_wheel}; [create ?wheel]
   overrides per engine.  Mirrors [Rule_tree.use_compiled_lookup].
   Atomic: tests toggle it while parallel evaluators create engines. *)
let wheel_default = Atomic.make true
let use_wheel enabled = Atomic.set wheel_default enabled
let wheel_enabled () = Atomic.get wheel_default

let create ?(tracer = Remy_obs.Trace.off) ?wheel () =
  let use = match wheel with Some b -> b | None -> Atomic.get wheel_default in
  {
    clock = 0.;
    agenda =
      (if use then A_wheel (Timing_wheel.create ())
       else A_heap (Heap.create ()));
    tracer;
  }

let now t = t.clock
let tracer t = t.tracer
let set_tracer t tr = t.tracer <- tr

let schedule t at f =
  if at < t.clock -. schedule_epsilon then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %.9f is before now %.9f" at t.clock);
  let prio = Float.max at t.clock in
  match t.agenda with
  | A_heap a -> Heap.push a prio f
  | A_wheel w -> Timing_wheel.push w prio f

let schedule_in t dt f = schedule t (t.clock +. dt) f

(* Per-event cost in the drains is two reads and a call: min_prio /
   pop_exn avoid the option + tuple that peek/pop allocate, the event
   tally accumulates in an argument register (flushed to the atomic
   counter once per run), and the agenda backend is matched once, not
   per event.  Tail recursion keeps the loops allocation-free — the
   hot-alloc lint proves it. *)

(* remy-lint: hot *)
let rec drain_heap t a ~until fired =
  if Heap.size a = 0 then fired
  else
    let at = Heap.min_prio a in
    if at > until then fired
    else begin
      let f = Heap.pop_exn a in
      t.clock <- at;
      f ();
      drain_heap t a ~until (fired + 1)
    end

(* remy-lint: hot *)
let rec drain_wheel t w ~until fired =
  if Timing_wheel.size w = 0 then fired
  else
    let at = Timing_wheel.min_prio w in
    if at > until then fired
    else begin
      let f = Timing_wheel.pop_exn w in
      t.clock <- at;
      f ();
      drain_wheel t w ~until (fired + 1)
    end

let run t ~until =
  let fired =
    match t.agenda with
    | A_heap a -> drain_heap t a ~until 0
    | A_wheel w -> drain_wheel t w ~until 0
  in
  Remy_obs.Counters.add Remy_obs.Counters.events_run fired;
  t.clock <- Float.max t.clock until

let pending t =
  match t.agenda with
  | A_heap a -> Heap.size a
  | A_wheel w -> Timing_wheel.size w
