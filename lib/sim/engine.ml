open Remy_util

type t = {
  mutable clock : float;
  agenda : (unit -> unit) Heap.t;
  mutable tracer : Remy_obs.Trace.t;
}

let create ?(tracer = Remy_obs.Trace.off) () =
  { clock = 0.; agenda = Heap.create (); tracer }

let now t = t.clock
let tracer t = t.tracer
let set_tracer t tr = t.tracer <- tr

let schedule t at f =
  if at < t.clock -. 1e-9 then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %.9f is before now %.9f" at t.clock);
  Heap.push t.agenda (Float.max at t.clock) f

let schedule_in t dt f = schedule t (t.clock +. dt) f

let run t ~until =
  let rec loop () =
    match Heap.peek t.agenda with
    | Some (at, _) when at <= until ->
      (match Heap.pop t.agenda with
      | Some (at, f) ->
        t.clock <- at;
        f ()
      | None -> assert false);
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  t.clock <- Float.max t.clock until

let pending t = Heap.size t.agenda
