(** CoDel active queue management (Nichols & Jacobson, ACM Queue 2012).

    Drops at the head of the queue when the packet sojourn time has
    exceeded [target] (5 ms) for at least one [interval] (100 ms),
    spacing subsequent drops by interval/sqrt(count).  {!State} exposes
    the per-queue control machinery so {!Sfq_codel} can run one CoDel
    instance per fair-queueing bin, as in Nichols's sfqcodel. *)

module State : sig
  type t

  val create : ?target:float -> ?interval:float -> unit -> t
  (** Defaults: target 5 ms, interval 100 ms. *)

  val dequeue :
    t ->
    now:float ->
    pop:(unit -> (float * Packet.t) option) ->
    bytes:(unit -> int) ->
    on_drop:(Packet.t -> unit) ->
    Packet.t option
  (** Run the CoDel dequeue state machine over an underlying FIFO.
      [pop] yields [(enqueue_time, packet)]; [bytes] is the backlog in
      bytes (CoDel never drops below one MTU of backlog); dropped
      packets are reported to [on_drop]. *)
end

val create :
  ?tracer:Remy_obs.Trace.t ->
  ?target:float ->
  ?interval:float ->
  capacity:int ->
  unit ->
  Qdisc.t
(** Standalone CoDel FIFO with tail-drop at [capacity] packets.
    [tracer] (default off) records enqueue/dequeue events, tail drops,
    and CoDel's head drops. *)
