(** Random Early Detection, plus DCTCP's threshold-marking variant.

    Two modes:

    - {!create} is classic RED (Floyd & Jacobson 1993): an EWMA of the
      queue length; between [min_th] and [max_th] packets are marked (if
      ECN-capable) or dropped with probability growing to [max_p];
      above [max_th] all arrivals are marked/dropped.

    - {!create_dctcp} is the "modified RED" of the DCTCP evaluation
      (Alizadeh et al. 2010, and Section 5.5 here): mark ECN on every
      arriving packet once the {e instantaneous} queue exceeds the
      threshold K; non-ECN-capable packets are never early-dropped, only
      tail-dropped at capacity. *)

val create :
  ?tracer:Remy_obs.Trace.t ->
  capacity:int ->
  min_th:float ->
  max_th:float ->
  max_p:float ->
  weight:float ->
  seed:int ->
  unit ->
  Qdisc.t
(** Thresholds in packets; [weight] is the queue-average EWMA gain
    (Floyd's w_q, typically 0.002).  Marking decisions draw from an
    internal deterministic PRNG seeded by [seed].  [tracer] (default
    off) records enqueue/dequeue/drop/ecn_mark events. *)

val create_dctcp :
  ?tracer:Remy_obs.Trace.t -> capacity:int -> threshold:int -> unit -> Qdisc.t
(** [threshold] K in packets (DCTCP paper uses K = 65 at 10 Gbps). *)
