(* The lint framework: pass behaviour over the seeded/clean fixture
   pairs in test/lint_fixtures, JSON rendering, suppression (inline
   annotations and the LINT_ALLOW file), exit codes — and the self-test
   that the repository's own lib/ and bin/ lint clean.

   Tests run from _build/default/test; the driver's root autodetection
   walks up to the repository root (the nearest dune-project), so
   fixture sources are read from the real tree and .cmt files from
   _build/default. *)

module D = Remy_lint_lib.Driver
module F = Remy_lint_lib.Finding
module R = Remy_obs.Record

let root =
  match D.autodetect_root (Sys.getcwd ()) with
  | Some r -> r
  | None -> failwith "test_lint: no dune-project above cwd"

let cfg ?passes ?rules ?allow_file paths =
  let c = D.default_config ~root in
  { c with D.paths; passes; rules; allow_file; require_cmt = true }

let run ?passes ?rules ?allow_file paths = D.run (cfg ?passes ?rules ?allow_file paths)

let fixture name = "test/lint_fixtures/" ^ name

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let check_no_errors (r : D.result) =
  Alcotest.(check (list string)) "no operational errors" [] r.D.errors

let lines_of (r : D.result) = List.map (fun (f : F.t) -> f.F.line) r.D.findings
let rules_of (r : D.result) =
  List.sort_uniq String.compare (List.map (fun (f : F.t) -> f.F.rule) r.D.findings)

(* --- domain-safety ------------------------------------------------- *)

let test_race_ref () =
  let r = run ~passes:[ "domain-safety" ] [ fixture "race_captured_ref.ml" ] in
  check_no_errors r;
  Alcotest.(check int) "one typed unit" 1 r.D.units_typed;
  Alcotest.(check (list string)) "rule" [ "domain-safety" ] (rules_of r);
  (* direct capture (incr, line 8); helper write+read (line 14, two ops);
     on_retry callback (line 21). *)
  Alcotest.(check (list int)) "finding lines" [ 8; 14; 14; 21 ] (lines_of r);
  let witnesses = List.map (fun (f : F.t) -> f.F.witness) r.D.findings in
  Alcotest.(check bool) "spawn witness present" true
    (List.exists (fun w -> contains_sub w "Domain.spawn") witnesses)

let test_race_hashtbl () =
  let r = run ~passes:[ "domain-safety" ] [ fixture "race_hashtbl.ml" ] in
  check_no_errors r;
  Alcotest.(check int) "two findings" 2 (List.length r.D.findings);
  List.iter
    (fun (f : F.t) ->
      Alcotest.(check string) "rule" "domain-safety" f.F.rule;
      Alcotest.(check bool) "hashtable op" true
        (contains_sub f.F.what "hashtable write"))
    r.D.findings

let test_race_clean () =
  let r = run ~passes:[ "domain-safety" ] [ fixture "race_clean.ml" ] in
  check_no_errors r;
  Alcotest.(check int) "typed" 1 r.D.units_typed;
  Alcotest.(check (list int)) "no findings" [] (lines_of r)

(* --- hot-alloc ------------------------------------------------------ *)

let test_hot_seeded () =
  let r = run ~passes:[ "hot-alloc" ] [ fixture "hot_seeded.ml" ] in
  check_no_errors r;
  Alcotest.(check (list string)) "rule" [ "hot-alloc" ] (rules_of r);
  (* tuple, cons, record, Array.make, closure, omitted-label partial. *)
  Alcotest.(check (list int)) "finding lines" [ 7; 10; 13; 16; 20; 26 ] (lines_of r)

let test_hot_clean () =
  let r = run ~passes:[ "hot-alloc" ] [ fixture "hot_clean.ml" ] in
  check_no_errors r;
  Alcotest.(check (list int)) "no findings" [] (lines_of r)

(* --- global-mutable ------------------------------------------------- *)

let test_global_seeded () =
  let r = run ~rules:[ "global-mutable" ] [ fixture "global_seeded.ml" ] in
  check_no_errors r;
  (* ref, Hashtbl.create, Buffer.create, mutable-record literal; the
     Atomic/Mutex/array/allow-annotated bindings stay silent. *)
  Alcotest.(check (list int)) "finding lines" [ 6; 7; 8; 12 ] (lines_of r)

(* --- determinism + allow-annotation ergonomics ---------------------- *)

let test_det_seeded () =
  let r = run ~passes:[ "determinism" ] [ fixture "det_seeded.ml" ] in
  check_no_errors r;
  (* hash, compare-as-value, wall clock, random; the two audited_* lines
     are silenced by a preceding-line and a same-line annotation. *)
  Alcotest.(check (list int)) "finding lines" [ 4; 5; 6; 7 ] (lines_of r);
  Alcotest.(check (list string)) "rules"
    [ "poly-compare"; "poly-hash"; "random"; "wall-clock" ]
    (rules_of r)

(* --- JSON rendering ------------------------------------------------- *)

let test_json () =
  let r = run ~passes:[ "hot-alloc" ] [ fixture "hot_seeded.ml" ] in
  let lines =
    D.render_json r |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  (* six findings + the summary trailer *)
  Alcotest.(check int) "record count" 7 (List.length lines);
  let records =
    List.map
      (fun l ->
        match R.of_json l with
        | Ok rec_ -> rec_
        | Error e -> Alcotest.failf "bad JSON record %S: %s" l e)
      lines
  in
  let first = List.hd records in
  let str k = Option.bind (R.find k first) R.to_str in
  Alcotest.(check (option string)) "file" (Some (fixture "hot_seeded.ml")) (str "file");
  Alcotest.(check (option string)) "pass" (Some "hot-alloc") (str "pass");
  Alcotest.(check (option string)) "rule" (Some "hot-alloc") (str "rule");
  Alcotest.(check (option string)) "severity" (Some "error") (str "severity");
  Alcotest.(check (option int)) "line" (Some 7)
    (Option.bind (R.find "line" first) R.to_int);
  let summary = List.nth records 6 in
  Alcotest.(check (option int)) "summary findings" (Some 6)
    (Option.bind (R.find "findings" summary) R.to_int);
  Alcotest.(check (option int)) "summary exit" (Some 1)
    (Option.bind (R.find "exit_code" summary) R.to_int)

(* --- suppression file ----------------------------------------------- *)

let with_temp_file contents f =
  let path = Filename.temp_file "lint_allow" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let test_suppression_file () =
  with_temp_file
    "# audit for the seeded fixture\n\
     hot-alloc test/lint_fixtures/hot_seeded.ml seeded on purpose\n"
    (fun allow ->
      let r =
        run ~passes:[ "hot-alloc" ] ~allow_file:allow [ fixture "hot_seeded.ml" ]
      in
      check_no_errors r;
      Alcotest.(check int) "all suppressed" 0 (List.length r.D.findings);
      Alcotest.(check int) "suppressed count" 6 (List.length r.D.suppressed);
      Alcotest.(check int) "exit 0" 0 (D.exit_code r);
      let _, (entry : Remy_lint_lib.Suppress.entry) = List.hd r.D.suppressed in
      Alcotest.(check string) "justification kept" "seeded on purpose"
        entry.Remy_lint_lib.Suppress.why)

let test_suppression_needs_why () =
  with_temp_file "hot-alloc test/lint_fixtures/hot_seeded.ml\n" (fun allow ->
      let r =
        run ~passes:[ "hot-alloc" ] ~allow_file:allow [ fixture "hot_seeded.ml" ]
      in
      Alcotest.(check bool) "errors" true (r.D.errors <> []);
      Alcotest.(check int) "exit 2" 2 (D.exit_code r))

(* --- exit codes and registry ---------------------------------------- *)

let test_exit_codes () =
  let clean = run ~passes:[ "domain-safety" ] [ fixture "race_clean.ml" ] in
  Alcotest.(check int) "clean is 0" 0 (D.exit_code clean);
  let dirty = run ~passes:[ "domain-safety" ] [ fixture "race_captured_ref.ml" ] in
  Alcotest.(check int) "findings are 1" 1 (D.exit_code dirty);
  let bad = run ~passes:[ "no-such-pass" ] [ fixture "race_clean.ml" ] in
  Alcotest.(check int) "unknown pass is 2" 2 (D.exit_code bad);
  let badrule = run ~rules:[ "no-such-rule" ] [ fixture "race_clean.ml" ] in
  Alcotest.(check int) "unknown rule is 2" 2 (D.exit_code badrule)

let test_registry () =
  Alcotest.(check (list string)) "passes"
    [ "determinism"; "hot-alloc"; "domain-safety" ]
    (List.map (fun (p : Remy_lint_lib.Pass.t) -> p.Remy_lint_lib.Pass.name)
       Remy_lint_lib.Registry.all)

(* --- the repository lints clean -------------------------------------- *)

let test_repo_clean () =
  let c = D.default_config ~root in
  let r = D.run { c with D.require_cmt = true } in
  check_no_errors r;
  List.iter
    (fun (f : F.t) -> Printf.eprintf "unexpected: %s\n" (F.to_string f))
    r.D.findings;
  Alcotest.(check int) "lib/ and bin/ lint clean" 0 (List.length r.D.findings);
  Alcotest.(check bool) "par.ml audits applied" true
    (List.length r.D.suppressed >= 2);
  Alcotest.(check bool) "typed coverage" true (r.D.units_typed >= 50);
  Alcotest.(check bool) "source coverage" true (r.D.files_scanned >= 60)

let tests =
  [
    Alcotest.test_case "domain-safety: seeded ref races" `Quick test_race_ref;
    Alcotest.test_case "domain-safety: seeded hashtable races" `Quick test_race_hashtbl;
    Alcotest.test_case "domain-safety: protected twins clean" `Quick test_race_clean;
    Alcotest.test_case "hot-alloc: seeded allocations" `Quick test_hot_seeded;
    Alcotest.test_case "hot-alloc: clean twin" `Quick test_hot_clean;
    Alcotest.test_case "global-mutable: seeded globals" `Quick test_global_seeded;
    Alcotest.test_case "determinism: seeded + allow ergonomics" `Quick test_det_seeded;
    Alcotest.test_case "json records round-trip" `Quick test_json;
    Alcotest.test_case "suppression file" `Quick test_suppression_file;
    Alcotest.test_case "suppression requires justification" `Quick
      test_suppression_needs_why;
    Alcotest.test_case "exit codes" `Quick test_exit_codes;
    Alcotest.test_case "pass registry" `Quick test_registry;
    Alcotest.test_case "repository lints clean" `Quick test_repo_clean;
  ]
