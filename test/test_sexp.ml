open Remy_util

let sexp_testable = Alcotest.testable (fun fmt s -> Format.pp_print_string fmt (Sexp.to_string s)) ( = )

let test_atom_roundtrip () =
  let s = Sexp.atom "hello" in
  Alcotest.(check (result sexp_testable string)) "atom" (Ok s) (Sexp.of_string "hello")

let test_list_roundtrip () =
  let s = Sexp.list [ Sexp.atom "a"; Sexp.list [ Sexp.atom "b"; Sexp.atom "c" ] ] in
  Alcotest.(check (result sexp_testable string))
    "nested" (Ok s)
    (Sexp.of_string (Sexp.to_string s))

let test_quoting () =
  let s = Sexp.atom "has spaces (and parens)" in
  let rendered = Sexp.to_string s in
  Alcotest.(check (result sexp_testable string)) "quoted roundtrip" (Ok s)
    (Sexp.of_string rendered)

let test_float_roundtrip () =
  List.iter
    (fun f ->
      let s = Sexp.float f in
      match Result.bind (Sexp.of_string (Sexp.to_string s)) Sexp.to_float with
      | Ok f' -> Alcotest.(check (float 0.)) "exact float" f f'
      | Error msg -> Alcotest.fail msg)
    [ 0.; 1.5; -3.25; 1e-300; Float.pi; 16384.; 0.1 ]

let test_comments_and_whitespace () =
  let input = "; header comment\n( a ; inline\n  b )\n" in
  match Sexp.of_string input with
  | Ok (Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b" ]) -> ()
  | Ok other -> Alcotest.failf "unexpected parse: %s" (Sexp.to_string other)
  | Error msg -> Alcotest.fail msg

let test_errors () =
  let is_error s = match Sexp.of_string s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "unterminated list" true (is_error "(a b");
  Alcotest.(check bool) "stray paren" true (is_error ")");
  Alcotest.(check bool) "trailing content" true (is_error "(a) b");
  Alcotest.(check bool) "unterminated string" true (is_error "\"abc");
  Alcotest.(check bool) "empty input" true (is_error "   ")

let error_of s =
  match Sexp.of_string s with
  | Error e -> e
  | Ok _ -> Alcotest.failf "expected a parse error for %S" s

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let test_error_positions () =
  (* Positions are 1-based and must point at the offending character —
     the open paren for unterminated lists, the first non-whitespace
     byte for trailing garbage. *)
  Alcotest.(check bool) "stray paren at line 1, column 1" true
    (contains (error_of ")") "line 1, column 1");
  Alcotest.(check bool) "stray paren on later line" true
    (contains (error_of "(a b)\n  )") "line 2, column 3");
  Alcotest.(check bool) "unterminated list names the open paren" true
    (let e = error_of "\n  (a b" in
     contains e "line 2, column 3" && contains e "unterminated list");
  Alcotest.(check bool) "trailing garbage located" true
    (let e = error_of "(a)\n   b" in
     contains e "line 2, column 4" && contains e "trailing garbage")

let test_error_truncation_labelled () =
  List.iter
    (fun input ->
      Alcotest.(check bool)
        (Printf.sprintf "%S flagged as truncated" input)
        true
        (contains (error_of input) "truncated input"))
    [ "(a b"; "\"abc"; "\"abc\\"; "" ]

let test_field () =
  let s =
    Sexp.list
      [
        Sexp.list [ Sexp.atom "name"; Sexp.atom "x" ];
        Sexp.list [ Sexp.atom "value"; Sexp.int 3 ];
      ]
  in
  (match Sexp.field s "value" with
  | Ok v -> Alcotest.(check (result int string)) "field" (Ok 3) (Sexp.to_int v)
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check bool) "missing field" true (Result.is_error (Sexp.field s "nope"))

let test_save_load () =
  let path = Filename.temp_file "sexp_test" ".sexp" in
  let s = Sexp.list [ Sexp.atom "doc"; Sexp.list [ Sexp.float 1.25; Sexp.int 7 ] ] in
  Sexp.save path s;
  let loaded = Sexp.load path in
  Sys.remove path;
  Alcotest.(check (result sexp_testable string)) "roundtrip through file" (Ok s) loaded

let gen_sexp =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then map Sexp.atom (string_size ~gen:(char_range 'a' 'z') (int_range 1 8))
        else
          frequency
            [
              (2, map Sexp.atom (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)));
              (1, map Sexp.list (list_size (int_range 0 4) (self (n / 2))));
            ]))

let prop_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string roundtrip" ~count:200
    (QCheck.make gen_sexp) (fun s -> Sexp.of_string (Sexp.to_string s) = Ok s)

let gen_nasty_atom =
  (* Atoms containing every character class the quoting must survive. *)
  QCheck.Gen.(
    map
      (fun chars -> Sexp.atom (String.concat "" chars))
      (list_size (int_range 1 12)
         (oneofl [ "a"; " "; "("; ")"; "\""; "\\"; ";"; "\n"; "x" ])))

let prop_roundtrip_nasty =
  QCheck.Test.make ~name:"quoting survives hostile atom contents" ~count:300
    (QCheck.make gen_nasty_atom)
    (fun s -> Sexp.of_string (Sexp.to_string s) = Ok s)

let prop_roundtrip_hum =
  QCheck.Test.make ~name:"to_string_hum/of_string roundtrip" ~count:200
    (QCheck.make gen_sexp) (fun s -> Sexp.of_string (Sexp.to_string_hum s) = Ok s)

let tests =
  [
    Alcotest.test_case "atom roundtrip" `Quick test_atom_roundtrip;
    Alcotest.test_case "nested list roundtrip" `Quick test_list_roundtrip;
    Alcotest.test_case "quoting" `Quick test_quoting;
    Alcotest.test_case "floats roundtrip exactly" `Quick test_float_roundtrip;
    Alcotest.test_case "comments and whitespace" `Quick test_comments_and_whitespace;
    Alcotest.test_case "parse errors" `Quick test_errors;
    Alcotest.test_case "parse errors carry line/column" `Quick test_error_positions;
    Alcotest.test_case "truncated inputs labelled" `Quick
      test_error_truncation_labelled;
    Alcotest.test_case "field lookup" `Quick test_field;
    Alcotest.test_case "save/load" `Quick test_save_load;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_roundtrip_nasty;
    QCheck_alcotest.to_alcotest prop_roundtrip_hum;
  ]
