(* Aggregated alcotest entry point: one suite per module group.
   `dune runtest` runs everything; ALCOTEST_QUICK_TESTS=1 skips the
   slower integration simulations. *)

(* Re-exec'd worker child for the remy-dist coordinator tests: serve the
   wire protocol on stdin and exit before alcotest ever runs.  See the
   note at the top of test_remy_dist.ml for why the tests spawn rather
   than fork. *)
let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--remy-dist-worker-child"
  then Test_remy_dist.worker_child ()

let () =
  Alcotest.run "remy"
    [
      ("prng", Test_prng.tests);
      ("dist", Test_dist.tests);
      ("stats", Test_stats.tests);
      ("heap", Test_heap.tests);
      ("timing-wheel", Test_timing_wheel.tests);
      ("ewma", Test_ewma.tests);
      ("sexp", Test_sexp.tests);
      ("ellipse", Test_ellipse.tests);
      ("engine", Test_engine.tests);
      ("trace", Test_trace.tests);
      ("probe", Test_probe.tests);
      ("qdisc", Test_qdisc.tests);
      ("qdisc-properties", Test_qdisc_props.tests);
      ("codel", Test_codel.tests);
      ("delay-line", Test_delay_line.tests);
      ("packet-pool", Test_packet_pool.tests);
      ("link", Test_link.tests);
      ("workload", Test_workload.tests);
      ("metrics", Test_metrics.tests);
      ("obs-metrics", Test_obs_metrics.tests);
      ("cell-trace", Test_cell_trace.tests);
      ("lossy", Test_lossy.tests);
      ("faults", Test_faults.tests);
      ("incast", Test_incast.tests);
      ("receiver", Test_receiver.tests);
      ("delack", Test_delack.tests);
      ("tcp-sender", Test_tcp_sender.tests);
      ("cc-algorithms", Test_cc_algorithms.tests);
      ("xcp-router", Test_xcp_router.tests);
      ("dumbbell", Test_dumbbell.tests);
      ("topology", Test_topology.tests);
      ("fleet", Test_fleet.tests);
      ("memory", Test_memory.tests);
      ("action", Test_action.tests);
      ("rule-tree", Test_rule_tree.tests);
      ("compiled-index", Test_compiled_index.tests);
      ("tally", Test_tally.tests);
      ("table-diff", Test_table_diff.tests);
      ("objective", Test_objective.tests);
      ("net-model", Test_net_model.tests);
      ("remy-dist", Test_remy_dist.tests);
      ("par", Test_par.tests);
      ("checkpoint", Test_checkpoint.tests);
      ("remycc", Test_remycc.tests);
      ("evaluator", Test_evaluator.tests);
      ("optimizer", Test_optimizer.tests);
      ("scenarios", Test_scenarios.tests);
      ("figures", Test_figures.tests);
      ("data-tables", Test_data_tables.tests);
      ("analysis", Test_analysis.tests);
      ("lint", Test_lint.tests);
    ]
