open Remy_sim
open Remy_cc

let mk_pkt seq = Packet.make ~flow:0 ~seq ~conn:0 ~now:0. ()

let test_zero_rate_transparent () =
  let q = Lossy.create ~inner:(Droptail.create ~capacity:10 ()) ~loss_rate:0. ~seed:1 () in
  for i = 0 to 9 do
    Alcotest.(check bool) "accepted" true (q.Qdisc.enqueue ~now:0. (mk_pkt i))
  done;
  Alcotest.(check int) "no drops" 0 (q.Qdisc.drops ());
  Alcotest.(check int) "all queued" 10 (q.Qdisc.length ())

let test_loss_rate_approximate () =
  let q =
    Lossy.create ~inner:(Droptail.create ~capacity:1_000_000 ()) ~loss_rate:0.1 ~seed:2 ()
  in
  let n = 20_000 in
  let dropped = ref 0 in
  for i = 0 to n - 1 do
    if not (q.Qdisc.enqueue ~now:0. (mk_pkt i)) then incr dropped
  done;
  let rate = float_of_int !dropped /. float_of_int n in
  if Float.abs (rate -. 0.1) > 0.01 then Alcotest.failf "loss rate off: %f" rate;
  Alcotest.(check int) "wrapper counts drops" !dropped (q.Qdisc.drops ())

let test_deterministic () =
  let run seed =
    let q =
      Lossy.create ~inner:(Droptail.create ~capacity:1_000_000 ()) ~loss_rate:0.3 ~seed ()
    in
    List.init 100 (fun i -> q.Qdisc.enqueue ~now:0. (mk_pkt i))
  in
  Alcotest.(check bool) "same seed same pattern" true (run 5 = run 5);
  Alcotest.(check bool) "different seed differs" true (run 5 <> run 6)

let test_inner_drops_included () =
  let q = Lossy.create ~inner:(Droptail.create ~capacity:2 ()) ~loss_rate:0. ~seed:1 () in
  for i = 0 to 4 do
    ignore (q.Qdisc.enqueue ~now:0. (mk_pkt i))
  done;
  Alcotest.(check int) "tail drops surface through wrapper" 3 (q.Qdisc.drops ())

let test_transfer_completes_under_loss () =
  (* End-to-end: a NewReno transfer completes despite 5% random loss. *)
  let flows =
    [|
      {
        Dumbbell.cc = Newreno.factory ();
        rtt = 0.05;
        workload =
          {
            Workload.off_time = Remy_util.Dist.Constant infinity;
            on_spec =
              Workload.By_bytes (Remy_util.Dist.Constant (200. *. 1500.));
          };
        start = `Immediate;
      };
    |]
  in
  let r =
    Dumbbell.run
      {
        Dumbbell.service = Dumbbell.Rate_mbps 10.;
        qdisc = Dumbbell.With_loss (0.05, Dumbbell.Droptail 1000);
        flows;
        duration = 60.;
        seed = 3;
        min_rto = 0.2;
      }
  in
  Alcotest.(check int) "all 200 segments delivered" 200
    r.Dumbbell.flows.(0).Remy_sim.Metrics.packets

let tests =
  [
    Alcotest.test_case "zero rate transparent" `Quick test_zero_rate_transparent;
    Alcotest.test_case "loss rate approximate" `Quick test_loss_rate_approximate;
    Alcotest.test_case "deterministic given seed" `Quick test_deterministic;
    Alcotest.test_case "inner drops included" `Quick test_inner_drops_included;
    Alcotest.test_case "transfer completes under loss" `Slow test_transfer_completes_under_loss;
  ]
