(* Periodic probes: the sample grid is exact and drift-free, and a
   probed simulation emits one queue sample (plus one flow sample per
   sender) per grid point, including the final end-of-run sample. *)

open Remy_sim
open Remy_cc
module R = Remy_obs.Record
module Probe = Remy_obs.Probe

let floats = Alcotest.(list (float 1e-12))

let test_grid_exact () =
  Alcotest.check floats "interval divides span"
    [ 0.; 0.25; 0.5; 0.75; 1.0 ]
    (Probe.times ~interval:0.25 ~until:1.0);
  Alcotest.check floats "final sample lands on until"
    [ 0.; 0.3; 0.6; 0.9; 1.0 ]
    (Probe.times ~interval:0.3 ~until:1.0);
  Alcotest.check floats "interval longer than span" [ 0.; 0.2 ]
    (Probe.times ~interval:1.0 ~until:0.2)

let test_grid_no_drift () =
  (* k * interval, not an accumulator: after 10^5 steps the grid point
     is still the exact multiple. *)
  let interval = 0.01 in
  let ts = Array.of_list (Probe.times ~interval ~until:1000.) in
  Alcotest.(check int) "count" 100_001 (Array.length ts);
  Alcotest.(check (float 1e-9)) "midpoint exact" 500.
    ts.(50_000);
  Alcotest.(check (float 0.)) "endpoint exact" 1000. ts.(Array.length ts - 1)

let test_grid_rejects_bad_args () =
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Probe.times: interval must be positive") (fun () ->
      ignore (Probe.times ~interval:0. ~until:1.));
  Alcotest.check_raises "negative until"
    (Invalid_argument "Probe.times: until must be non-negative") (fun () ->
      ignore (Probe.times ~interval:1. ~until:(-1.)))

let run_probed ~n ~duration ~probe_interval =
  let sink, read = Remy_obs.Sink.memory () in
  let cfg =
    {
      Dumbbell.service = Dumbbell.Rate_mbps 10.;
      qdisc = Dumbbell.Droptail 100;
      flows =
        Array.init n (fun _ ->
            {
              Dumbbell.cc = Newreno.factory ();
              rtt = 0.05;
              workload = Workload.saturating;
              start = `Immediate;
            });
      duration;
      seed = 77;
      min_rto = 0.2;
    }
  in
  ignore (Dumbbell.run ~tracer:(Remy_obs.Trace.make sink) ~probe_interval cfg);
  read ()

let filter_ev records kind =
  List.filter (fun r -> R.find "ev" r = Some (R.Str kind)) records

let test_sampler_fires_at_interval () =
  let records = run_probed ~n:2 ~duration:1.0 ~probe_interval:0.25 in
  let qsamples = filter_ev records "qsample" in
  let fsamples = filter_ev records "fsample" in
  (* 0, 0.25, 0.5, 0.75, 1.0 *)
  Alcotest.(check int) "one queue sample per grid point" 5 (List.length qsamples);
  Alcotest.(check int) "one flow sample per sender per grid point" 10
    (List.length fsamples)

let test_final_sample_at_sim_end () =
  let records = run_probed ~n:1 ~duration:1.1 ~probe_interval:0.25 in
  let qsamples = filter_ev records "qsample" in
  (* 0, 0.25, 0.5, 0.75, 1.0, 1.1 *)
  Alcotest.(check int) "trailing partial interval still sampled" 6
    (List.length qsamples);
  let last = List.nth qsamples (List.length qsamples - 1) in
  Alcotest.(check (option (float 0.))) "last sample at sim end" (Some 1.1)
    (Option.bind (R.find "t" last) R.to_float)

let test_samples_carry_state () =
  let records = run_probed ~n:1 ~duration:2.0 ~probe_interval:0.5 in
  (* After startup, a saturating NewReno flow has positive cwnd and a
     measured srtt; the queue sample sees the droptail bottleneck. *)
  let late_fsamples =
    List.filter
      (fun r ->
        match Option.bind (R.find "t" r) R.to_float with
        | Some t -> t >= 1.0
        | None -> false)
      (filter_ev records "fsample")
  in
  Alcotest.(check bool) "late flow samples exist" true (late_fsamples <> []);
  List.iter
    (fun r ->
      (match Option.bind (R.find "cwnd" r) R.to_float with
      | Some c -> Alcotest.(check bool) "cwnd positive" true (c > 0.)
      | None -> Alcotest.fail "fsample missing cwnd");
      match Option.bind (R.find "srtt_s" r) R.to_float with
      | Some s -> Alcotest.(check bool) "srtt positive" true (s > 0.)
      | None -> Alcotest.fail "late fsample missing srtt")
    late_fsamples;
  match filter_ev records "qsample" with
  | r :: _ ->
    Alcotest.(check (option string)) "queue name" (Some "droptail")
      (Option.bind (R.find "q" r) R.to_str)
  | [] -> Alcotest.fail "no qsamples"

let tests =
  [
    Alcotest.test_case "grid is exact" `Quick test_grid_exact;
    Alcotest.test_case "grid does not drift" `Quick test_grid_no_drift;
    Alcotest.test_case "grid rejects bad arguments" `Quick test_grid_rejects_bad_args;
    Alcotest.test_case "sampler fires at interval" `Slow
      test_sampler_fires_at_interval;
    Alcotest.test_case "final sample at sim end" `Slow test_final_sample_at_sim_end;
    Alcotest.test_case "samples carry live state" `Slow test_samples_carry_state;
  ]
