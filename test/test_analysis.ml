(* The static verification layer: Boxpart's exact partition decision and
   the Verify analyzer, cross-checked against Monte-Carlo point
   membership on randomly subdivided and randomly corrupted tables. *)

open Remy
module Verify = Remy_analysis.Verify
module Boxpart = Remy_util.Boxpart
module Prng = Remy_util.Prng

let mem a s r = Memory.make ~ack_ewma:a ~send_ewma:s ~rtt_ratio:r

(* A tree subdivided [n] times at random interior points of random live
   rules — by construction a true partition. *)
let random_tree rng n =
  let t = Rule_tree.create () in
  for _ = 1 to n do
    let ids = Rule_tree.live_ids t in
    let id = List.nth ids (Prng.int rng (List.length ids)) in
    let box = Rule_tree.box t id in
    let coord d =
      let lo, hi = box.(d) in
      lo +. ((0.1 +. (0.8 *. Prng.float rng 1.)) *. (hi -. lo))
    in
    ignore (Rule_tree.subdivide t id ~at:(mem (coord 0) (coord 1) (coord 2)))
  done;
  t

let domain_lo = [| 0.; 0.; 0. |]
let domain_hi = Array.make 3 Memory.max_value

let live_boxes t =
  Array.of_list
    (List.map
       (fun id ->
         let b = Rule_tree.box t id in
         {
           Boxpart.lo = Array.init 3 (fun d -> fst b.(d));
           hi = Array.init 3 (fun d -> snd b.(d));
         })
       (Rule_tree.live_ids t))

let random_point rng =
  Array.init 3 (fun _ -> Prng.float rng Memory.max_value)

(* How many boxes contain the point — the Monte-Carlo ground truth the
   analyzer's verdict must agree with. *)
let coverage boxes p =
  Array.fold_left (fun n b -> if Boxpart.contains b p then n + 1 else n) 0 boxes

(* --- Boxpart unit tests ----------------------------------------------- *)

let unit_box lo hi = { Boxpart.lo = [| lo; 0.; 0. |]; hi = [| hi; 1.; 1. |] }
let check1 boxes = Boxpart.check ~lo:[| 0.; 0.; 0. |] ~hi:[| 1.; 1.; 1. |] boxes

let test_boxpart_exact_partition () =
  match check1 [| unit_box 0. 0.25; unit_box 0.25 1. |] with
  | Ok () -> ()
  | Error f -> Alcotest.failf "expected partition, got %a" Boxpart.pp_flaw f

let test_boxpart_gap () =
  match check1 [| unit_box 0. 0.25; unit_box 0.5 1. |] with
  | Error (Boxpart.Gap { point }) ->
    Alcotest.(check bool)
      "witness in the gap" true
      (point.(0) > 0.25 && point.(0) < 0.5)
  | Error f -> Alcotest.failf "expected gap, got %a" Boxpart.pp_flaw f
  | Ok () -> Alcotest.fail "gap not detected"

let test_boxpart_overlap () =
  match check1 [| unit_box 0. 0.5; unit_box 0.25 1. |] with
  | Error (Boxpart.Overlap { a; b; point }) ->
    Alcotest.(check (pair int int)) "colliding pair" (0, 1) (a, b);
    Alcotest.(check bool)
      "witness in both" true
      (point.(0) > 0.25 && point.(0) < 0.5)
  | Error f -> Alcotest.failf "expected overlap, got %a" Boxpart.pp_flaw f
  | Ok () -> Alcotest.fail "overlap not detected"

let test_boxpart_degenerate () =
  match check1 [| unit_box 0. 1.; unit_box 0.7 0.7 |] with
  | Error (Boxpart.Degenerate { box; dim }) ->
    Alcotest.(check (pair int int)) "degenerate box" (1, 0) (box, dim)
  | Error f -> Alcotest.failf "expected degenerate, got %a" Boxpart.pp_flaw f
  | Ok () -> Alcotest.fail "degenerate box not detected"

let test_boxpart_escape () =
  match check1 [| unit_box (-0.5) 1. |] with
  | Error (Boxpart.Escape { box; dim }) ->
    Alcotest.(check (pair int int)) "escaping box" (0, 0) (box, dim)
  | Error f -> Alcotest.failf "expected escape, got %a" Boxpart.pp_flaw f
  | Ok () -> Alcotest.fail "domain escape not detected"

(* --- Verify unit tests ------------------------------------------------ *)

let test_fresh_tree_sound () =
  let r = Verify.table (Rule_tree.create ()) in
  Alcotest.(check bool) "sound" true (Verify.sound r);
  Alcotest.(check int) "one live rule" 1 r.Verify.live;
  (* The default action (m = 1, b = 1) grows without bound un-clamped,
     so the proven bound is the clamp and the rule is flagged. *)
  Alcotest.(check (list int)) "default rule divergent" [ 0 ] r.Verify.divergent;
  Alcotest.(check (float 0.)) "bound is the clamp" Action.max_window
    r.Verify.window_hi

let test_subdivided_tree_sound () =
  let rng = Prng.create 11 in
  let t = random_tree rng 6 in
  let r = Verify.table t in
  Alcotest.(check bool) "sound" true (Verify.sound r);
  Alcotest.(check int) "live count" (Rule_tree.num_rules t) r.Verify.live;
  Alcotest.(check int) "retired = capacity - live"
    (Rule_tree.capacity t - Rule_tree.num_rules t)
    r.Verify.retired

let test_contractive_window_bound () =
  (* m = 0.5, b = 10: orbit limit b/(1-m) = 20 regardless of start. *)
  let t = Rule_tree.create () in
  Rule_tree.set_action t 0 { Action.multiple = 0.5; increment = 10.; intersend_ms = 1. };
  let r = Verify.table t in
  Alcotest.(check bool) "sound" true (Verify.sound r);
  Alcotest.(check bool) "no divergent rules" true (r.Verify.divergent = []);
  Alcotest.(check bool)
    (Printf.sprintf "bound close to 20 (got %g)" r.Verify.window_hi)
    true
    (r.Verify.window_hi >= 20. && r.Verify.window_hi < 20.5)

let test_bad_action_flagged () =
  let t = Rule_tree.create () in
  (* set_action does not validate — exactly the corruption channel. *)
  Rule_tree.set_action t 0 { Action.multiple = 5.; increment = 9999.; intersend_ms = 1. };
  let r = Verify.table t in
  Alcotest.(check bool) "unsound" false (Verify.sound r);
  match r.Verify.problems with
  | [ Verify.Bad_action { id = 0; _ } ] -> ()
  | ps ->
    Alcotest.failf "expected Bad_action on rule 0, got %d problem(s): %a"
      (List.length ps)
      Format.(pp_print_list Verify.pp_problem)
      ps

let test_never_fired () =
  let t = Rule_tree.create () in
  ignore (Rule_tree.subdivide t 0 ~at:(mem 100. 100. 2.));
  let tally = Tally.create ~capacity:(Rule_tree.capacity t) ~seed:1 () in
  let hit = Rule_tree.lookup t (mem 50. 50. 1.5) in
  Tally.record tally hit (mem 50. 50. 1.5);
  let r = Verify.table ~tally t in
  match r.Verify.never_fired with
  | None -> Alcotest.fail "expected never-fired listing with a tally"
  | Some ids ->
    Alcotest.(check int) "all but one rule never fired"
      (Rule_tree.num_rules t - 1)
      (List.length ids);
    Alcotest.(check bool) "the hit rule fired" false (List.mem hit ids)

let test_to_record_roundtrip_fields () =
  let r = Verify.table (Rule_tree.create ()) in
  let rec_ = Verify.to_record r in
  let get k = Remy_obs.Record.find k rec_ in
  Alcotest.(check bool) "verified field" true
    (get "verified" = Some (Remy_obs.Record.Bool true));
  Alcotest.(check bool) "rules field" true
    (get "rules" = Some (Remy_obs.Record.Int 1));
  Alcotest.(check bool) "problems counted" true
    (get "problems" = Some (Remy_obs.Record.Int 0))

let test_load_validated_rejects_corrupt () =
  let leaf = "(leaf (action 1 1 0.01))" in
  let body = String.concat " " (List.init 8 (fun _ -> leaf)) in
  let corrupt =
    Printf.sprintf "(remycc-rules v1 (split (-3.0 8192 8192) %s))" body
  in
  let path = Filename.temp_file "remy_corrupt" ".rules" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc corrupt;
      close_out oc;
      match Rule_tree.load_validated path with
      | Ok _ -> Alcotest.fail "corrupt table accepted"
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "error names a rule (%s)" msg)
          true
          (let has sub =
             let n = String.length msg and m = String.length sub in
             let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
             go 0
           in
           has "rule"))

(* --- QCheck fuzz: analyzer vs Monte-Carlo ----------------------------- *)

let points_per_case = 200

(* Any subdivision sequence yields a sound table, and Monte-Carlo agrees:
   every sampled memory point lies in exactly one live box. *)
let prop_subdivided_sound =
  QCheck.Test.make ~count:60 ~name:"random subdivided trees verify sound"
    QCheck.(pair (int_range 0 10_000_000) (int_range 0 12))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let t = random_tree rng n in
      let r = Verify.table t in
      if not (Verify.sound r) then false
      else begin
        let boxes = live_boxes t in
        let ok = ref true in
        for _ = 1 to points_per_case do
          if coverage boxes (random_point rng) <> 1 then ok := false
        done;
        !ok
      end)

(* Corrupt one box of a valid partition at random; the analyzer's
   verdict must stay conservative w.r.t. Monte-Carlo ground truth:
   if sampling finds a point covered != once, the analyzer must reject;
   if the analyzer accepts, sampling must find no violation. *)
let mutate rng boxes =
  let boxes =
    Array.map (fun b -> { Boxpart.lo = Array.copy b.Boxpart.lo; hi = Array.copy b.Boxpart.hi }) boxes
  in
  let i = Prng.int rng (Array.length boxes) in
  let d = Prng.int rng 3 in
  let b = boxes.(i) in
  let span = b.Boxpart.hi.(d) -. b.Boxpart.lo.(d) in
  (match Prng.int rng 4 with
  | 0 -> b.Boxpart.lo.(d) <- b.Boxpart.lo.(d) +. (Prng.float rng 0.5 *. span)
  | 1 -> b.Boxpart.hi.(d) <- b.Boxpart.hi.(d) -. (Prng.float rng 0.5 *. span)
  | 2 -> b.Boxpart.lo.(d) <- b.Boxpart.lo.(d) -. (Prng.float rng 0.5 *. span)
  | _ -> b.Boxpart.hi.(d) <- b.Boxpart.lo.(d));
  boxes

let prop_mutated_agrees =
  QCheck.Test.make ~count:120 ~name:"analyzer verdict agrees with Monte-Carlo on mutations"
    QCheck.(pair (int_range 0 10_000_000) (int_range 1 10))
    (fun (seed, n) ->
      let rng = Prng.create (seed + 77) in
      let t = random_tree rng n in
      let boxes = mutate rng (live_boxes t) in
      let verdict = Boxpart.check ~lo:domain_lo ~hi:domain_hi boxes in
      let mc_violation = ref false in
      for _ = 1 to points_per_case do
        if coverage boxes (random_point rng) <> 1 then mc_violation := true
      done;
      match verdict with
      | Ok () -> not !mc_violation (* accepted ⇒ sampling finds nothing *)
      | Error _ -> true (* rejection is always safe *))

let prop_mutated_detected =
  (* The converse direction with a guaranteed-measure corruption: grow a
     box into its neighbours (or collapse it) by a macroscopic amount —
     the exact checker must reject every time. *)
  QCheck.Test.make ~count:120 ~name:"macroscopic corruption is always rejected"
    QCheck.(pair (int_range 0 10_000_000) (int_range 1 10))
    (fun (seed, n) ->
      let rng = Prng.create (seed + 555) in
      let t = random_tree rng n in
      let boxes = mutate rng (live_boxes t) in
      (* Only keep cases where sampling can already see the damage —
         those must never be accepted. *)
      let mc_violation = ref false in
      for _ = 1 to points_per_case do
        if coverage boxes (random_point rng) <> 1 then mc_violation := true
      done;
      QCheck.assume !mc_violation;
      match Boxpart.check ~lo:domain_lo ~hi:domain_hi boxes with
      | Error _ -> true
      | Ok () -> false)

let tests =
  [
    Alcotest.test_case "boxpart: exact partition accepted" `Quick
      test_boxpart_exact_partition;
    Alcotest.test_case "boxpart: gap detected with witness" `Quick test_boxpart_gap;
    Alcotest.test_case "boxpart: overlap names the pair" `Quick test_boxpart_overlap;
    Alcotest.test_case "boxpart: degenerate box named" `Quick
      test_boxpart_degenerate;
    Alcotest.test_case "boxpart: domain escape named" `Quick test_boxpart_escape;
    Alcotest.test_case "verify: fresh tree sound" `Quick test_fresh_tree_sound;
    Alcotest.test_case "verify: subdivided tree sound" `Quick
      test_subdivided_tree_sound;
    Alcotest.test_case "verify: contractive map gets tight bound" `Quick
      test_contractive_window_bound;
    Alcotest.test_case "verify: out-of-bounds action flagged" `Quick
      test_bad_action_flagged;
    Alcotest.test_case "verify: never-fired rules from tally" `Quick
      test_never_fired;
    Alcotest.test_case "verify: verdict record fields" `Quick
      test_to_record_roundtrip_fields;
    Alcotest.test_case "load_validated rejects corrupt file naming rule" `Quick
      test_load_validated_rejects_corrupt;
    QCheck_alcotest.to_alcotest prop_subdivided_sound;
    QCheck_alcotest.to_alcotest prop_mutated_agrees;
    QCheck_alcotest.to_alcotest prop_mutated_detected;
  ]
