open Remy_sim

let mk_pkt seq = Packet.make ~flow:0 ~seq ~conn:0 ~now:0. ()

let test_constant_rate_timing () =
  let engine = Engine.create () in
  let qdisc = Droptail.create ~capacity:100 () in
  let deliveries = ref [] in
  let link =
    Link.create_constant engine ~qdisc ~bytes_per_sec:15000.
      ~sink:(fun pkt -> deliveries := (Engine.now engine, pkt.Packet.seq) :: !deliveries)
  in
  (* Two packets of 1500 B at 15 kB/s: 0.1 s each, back to back. *)
  Link.send link (mk_pkt 0);
  Link.send link (mk_pkt 1);
  Engine.run engine ~until:1.;
  match List.rev !deliveries with
  | [ (t0, 0); (t1, 1) ] ->
    Alcotest.(check (float 1e-9)) "first tx time" 0.1 t0;
    Alcotest.(check (float 1e-9)) "second queued behind" 0.2 t1
  | other -> Alcotest.failf "unexpected deliveries: %d" (List.length other)

let test_idle_restart () =
  let engine = Engine.create () in
  let qdisc = Droptail.create ~capacity:100 () in
  let deliveries = ref [] in
  let link =
    Link.create_constant engine ~qdisc ~bytes_per_sec:15000.
      ~sink:(fun _ -> deliveries := Engine.now engine :: !deliveries)
  in
  Link.send link (mk_pkt 0);
  Engine.run engine ~until:1.;
  (* Link went idle; a later packet restarts service cleanly. *)
  Engine.schedule engine 2.0 (fun () -> Link.send link (mk_pkt 1));
  Engine.run engine ~until:3.;
  Alcotest.(check (list (float 1e-9))) "idle restart" [ 0.1; 2.1 ] (List.rev !deliveries)

let test_delivered_counters () =
  let engine = Engine.create () in
  let qdisc = Droptail.create ~capacity:100 () in
  let link =
    Link.create_constant engine ~qdisc ~bytes_per_sec:1e6 ~sink:(fun _ -> ())
  in
  for i = 0 to 9 do
    Link.send link (mk_pkt i)
  done;
  Engine.run engine ~until:1.;
  Alcotest.(check int) "packets" 10 (Link.delivered_packets link);
  Alcotest.(check int) "bytes" (10 * Packet.default_size) (Link.delivered_bytes link)

let test_trace_link_follows_instants () =
  let engine = Engine.create () in
  let qdisc = Droptail.create ~capacity:100 () in
  let gaps = [| 0.5; 0.25; 0.25 |] in
  let i = ref 0 in
  let next_gap () =
    let g = gaps.(!i mod Array.length gaps) in
    incr i;
    g
  in
  let deliveries = ref [] in
  let link =
    Link.create_trace engine ~qdisc ~next_gap
      ~sink:(fun pkt -> deliveries := (Engine.now engine, pkt.Packet.seq) :: !deliveries)
  in
  (* Three packets enqueued immediately; they leave exactly at the trace
     instants 0.5, 0.75, 1.0. *)
  Link.send link (mk_pkt 0);
  Link.send link (mk_pkt 1);
  Link.send link (mk_pkt 2);
  Engine.run engine ~until:2.;
  match List.rev !deliveries with
  | [ (t0, 0); (t1, 1); (t2, 2) ] ->
    Alcotest.(check (float 1e-9)) "instant 1" 0.5 t0;
    Alcotest.(check (float 1e-9)) "instant 2" 0.75 t1;
    Alcotest.(check (float 1e-9)) "instant 3" 1.0 t2
  | _ -> Alcotest.fail "wrong delivery count"

let test_trace_link_wastes_idle_instants () =
  (* A delivery opportunity with an empty queue is lost, not banked —
     the paper's cellular replay semantics. *)
  let engine = Engine.create () in
  let qdisc = Droptail.create ~capacity:100 () in
  let next_gap () = 0.5 in
  let deliveries = ref [] in
  let link =
    Link.create_trace engine ~qdisc ~next_gap
      ~sink:(fun _ -> deliveries := Engine.now engine :: !deliveries)
  in
  (* First opportunity at 0.5 is wasted; the packet arrives at 0.7 and
     must wait for the 1.0 opportunity. *)
  Engine.schedule engine 0.7 (fun () -> Link.send link (mk_pkt 0));
  Engine.run engine ~until:2.;
  Alcotest.(check (list (float 1e-9))) "waits for next instant" [ 1.0 ] (List.rev !deliveries)

let test_rate_conversions () =
  Alcotest.(check (float 1e-6)) "bytes/s of 12 Mbps" 1.5e6 (Link.bytes_per_sec_of_mbps 12.);
  Alcotest.(check (float 1e-6)) "pps of 15 Mbps" (15e6 /. 8. /. 1500.) (Link.pps_of_mbps 15.)

let tests =
  [
    Alcotest.test_case "constant rate timing" `Quick test_constant_rate_timing;
    Alcotest.test_case "idle restart" `Quick test_idle_restart;
    Alcotest.test_case "delivery counters" `Quick test_delivered_counters;
    Alcotest.test_case "trace link follows instants" `Quick test_trace_link_follows_instants;
    Alcotest.test_case "trace link wastes idle instants" `Quick test_trace_link_wastes_idle_instants;
    Alcotest.test_case "rate conversions" `Quick test_rate_conversions;
  ]
