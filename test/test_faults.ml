(* Fault-injection layer: spec parsing, Gilbert–Elliott statistics,
   injector determinism (including across agenda backends), graceful
   sender degradation under outages, zero-cost-when-off, and the chaos
   harness's directive machinery. *)

open Remy_sim
open Remy_cc
open Remy_faults

(* ---------- Spec parsing ---------- *)

let parse_ok s =
  match Spec.parse s with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let test_parse_roundtrip () =
  List.iter
    (fun s ->
      let t = parse_ok s in
      let s' = Spec.to_string t in
      let t' = parse_ok s' in
      Alcotest.(check string)
        (Printf.sprintf "canonical fixpoint of %S" s)
        s' (Spec.to_string t'))
    [
      "outage:10+2+30";
      "outage:5+1,drop";
      "ge:0.01,0.25,0.5";
      "ge:0.01,0.25,0.5,0.001";
      "reorder:0.05,0.005";
      "dup:0.01";
      "corrupt:0.002";
      "rate:5@30";
      "ratex:0.5@30";
      "delay:0.02@30";
      "outage:10+2+30;ge:0.01,0.25,0.5;link1/corrupt:0.01";
    ]

let test_parse_errors () =
  List.iter
    (fun s ->
      match Spec.parse s with
      | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
      | Error _ -> ())
    [
      "outage:10";            (* missing duration *)
      "outage:-1+2";          (* negative start *)
      "outage:0+0";           (* zero duration *)
      "outage:0+5+3";         (* period shorter than downtime *)
      "ge:1.5,0.2,0.5";       (* probability out of range *)
      "ge:0.01,0.2";          (* missing loss *)
      "reorder:0.05,0";       (* zero hold *)
      "dup:2";
      "rate:0@10";
      "nonsense:1";
      "link-1/dup:0.1";
    ]

let test_presets_resolve () =
  List.iter
    (fun (name, _) ->
      match Spec.of_arg name with
      | Ok t -> Alcotest.(check bool) (name ^ " non-empty") false (Spec.is_empty t)
      | Error e -> Alcotest.failf "preset %s: %s" name e)
    Spec.presets

let test_for_link_scoping () =
  let t = parse_ok "dup:0.1;link2/dup:0.5;link1/outage:1+1" in
  let l0 = Spec.for_link t 0 in
  let l1 = Spec.for_link t 1 in
  let l2 = Spec.for_link t 2 in
  Alcotest.(check (float 0.)) "link0 global dup" 0.1 l0.Spec.dup_prob;
  Alcotest.(check (float 0.)) "link2 override dup" 0.5 l2.Spec.dup_prob;
  Alcotest.(check int) "link1 outage present" 1 (List.length l1.Spec.outages);
  Alcotest.(check int) "link0 no outage" 0 (List.length l0.Spec.outages)

(* ---------- Gilbert–Elliott ---------- *)

let empirical_loss params ~seed ~n =
  let ge = Gilbert.create ~seed params in
  let drops = ref 0 in
  for _ = 1 to n do
    if Gilbert.step_drop ge then incr drops
  done;
  float_of_int !drops /. float_of_int n

let test_ge_stationary_fixed () =
  let params =
    { Gilbert.p_gb = 0.1; p_bg = 0.3; loss_good = 0.01; loss_bad = 0.5 }
  in
  let expected = Gilbert.stationary_loss params in
  let got = empirical_loss params ~seed:11 ~n:200_000 in
  if Float.abs (got -. expected) > 0.01 then
    Alcotest.failf "empirical %.4f vs stationary %.4f" got expected

let test_ge_degenerate () =
  (* loss_bad = 1, p_bg = 0 from a certain entry into bad: everything
     drops once the chain falls in. *)
  let params = { Gilbert.p_gb = 1.0; p_bg = 0.; loss_good = 0.; loss_bad = 1.0 } in
  let ge = Gilbert.create ~seed:3 params in
  let all = ref true in
  for _ = 1 to 100 do
    if not (Gilbert.step_drop ge) then all := false
  done;
  Alcotest.(check bool) "absorbing bad state drops all" true !all

let test_ge_determinism () =
  let params =
    { Gilbert.p_gb = 0.05; p_bg = 0.2; loss_good = 0.001; loss_bad = 0.4 }
  in
  let draw seed =
    let ge = Gilbert.create ~seed params in
    List.init 500 (fun _ -> Gilbert.step_drop ge)
  in
  Alcotest.(check bool) "same seed same drops" true (draw 7 = draw 7);
  Alcotest.(check bool) "different seed differs" true (draw 7 <> draw 8)

let ge_stationary_prop =
  (* Fast-mixing chains only (transition probs bounded away from 0), so
     200k steps average over many good/bad episodes. *)
  QCheck.Test.make ~count:20 ~name:"GE empirical loss converges to stationary"
    QCheck.(
      quad (float_range 0.05 0.5) (float_range 0.05 0.5) (float_range 0. 0.2)
        (float_range 0.2 1.0))
    (fun (p_gb, p_bg, loss_good, loss_bad) ->
      let params = { Gilbert.p_gb; p_bg; loss_good; loss_bad } in
      let expected = Gilbert.stationary_loss params in
      let got = empirical_loss params ~seed:99 ~n:200_000 in
      Float.abs (got -. expected) < 0.02)

(* ---------- Injector unit behavior ---------- *)

let mk_pkt seq = Packet.make ~flow:0 ~seq ~conn:0 ~now:0. ()

let test_maybe_empty_is_inner () =
  let engine = Engine.create () in
  let inner = Droptail.create ~capacity:10 () in
  let gate, inj = Injector.maybe engine ~seed:1 Spec.empty_link ~inner in
  Alcotest.(check bool) "inner returned untouched" true (gate == inner);
  Alcotest.(check bool) "no injector" true (inj = None)

let test_duplication_and_corruption () =
  let engine = Engine.create () in
  let inner = Droptail.create ~capacity:10_000 () in
  let spec = Spec.for_link (parse_ok "dup:0.5;corrupt:1") 0 in
  let gate, inj = Injector.create engine ~seed:5 spec ~inner in
  for i = 0 to 999 do
    ignore (gate.Qdisc.enqueue ~now:0. (mk_pkt i))
  done;
  let stats = Injector.stats inj in
  let dups = stats.Injector.duplicated in
  Alcotest.(check int) "queue holds originals + duplicates"
    (1000 + dups)
    (inner.Qdisc.length ());
  if dups < 400 || dups > 600 then Alcotest.failf "dup rate off: %d/1000" dups;
  Alcotest.(check int) "all originals marked corrupt" 1000
    stats.Injector.corrupted

let test_reorder_holds_packets () =
  let engine = Engine.create () in
  let inner = Droptail.create ~capacity:10_000 () in
  let spec = Spec.for_link (parse_ok "reorder:1,0.01") 0 in
  let gate, inj = Injector.create engine ~seed:6 spec ~inner in
  for i = 0 to 9 do
    Alcotest.(check bool) "gate accepts held packet" true
      (gate.Qdisc.enqueue ~now:0. (mk_pkt i))
  done;
  Alcotest.(check int) "nothing reaches inner before the hold" 0
    (inner.Qdisc.length ());
  Engine.run engine ~until:0.1;
  Alcotest.(check int) "all arrive after the hold" 10 (inner.Qdisc.length ());
  Alcotest.(check int) "reorder draws counted" 10
    (Injector.stats inj).Injector.reordered

(* ---------- End-to-end dumbbell runs ---------- *)

let fixed_transfer n =
  {
    Workload.off_time = Remy_util.Dist.Constant infinity;
    on_spec =
      Workload.By_bytes (Remy_util.Dist.Constant (float_of_int (n * Packet.default_size)));
  }

let dumbbell_config ?(duration = 30.) ?(seed = 9) ?(n = 2) () =
  {
    Dumbbell.service = Dumbbell.Rate_mbps 10.;
    qdisc = Dumbbell.Droptail 1000;
    flows =
      Array.init n (fun _ ->
          {
            Dumbbell.cc = Newreno.factory ();
            rtt = 0.1;
            workload = fixed_transfer 200;
            start = `Immediate;
          });
    duration;
    seed;
    min_rto = Dumbbell.default_min_rto;
  }

let summaries r =
  Array.to_list
    (Array.map
       (fun (f : Metrics.flow_summary) ->
         (f.Metrics.packets, f.Metrics.bytes, f.Metrics.throughput_mbps,
          f.Metrics.mean_queueing_delay_ms))
       r.Dumbbell.flows)

let test_no_fault_bit_identity () =
  let a = Dumbbell.run (dumbbell_config ()) in
  let b = Dumbbell.run ~faults:Spec.empty (dumbbell_config ()) in
  Alcotest.(check bool) "empty spec is invisible" true (summaries a = summaries b)

let test_outage_park_delivers_everything () =
  let faults = parse_ok "outage:1+2" in
  let r = Dumbbell.run ~faults (dumbbell_config ()) in
  Array.iter
    (fun (f : Metrics.flow_summary) ->
      Alcotest.(check int) "all segments delivered across the outage" 200
        f.Metrics.packets)
    r.Dumbbell.flows

let test_outage_drop_recovers () =
  (* Arrivals during the blackout are discarded: the senders must take
     RTOs and still finish the transfer afterwards. *)
  let faults = parse_ok "outage:1+2,drop" in
  let r = Dumbbell.run ~faults (dumbbell_config ()) in
  Array.iter
    (fun (f : Metrics.flow_summary) ->
      Alcotest.(check int) "transfer completes after drop outage" 200
        f.Metrics.packets)
    r.Dumbbell.flows

let test_faulted_run_deterministic () =
  let faults = parse_ok "outage:1+0.5+5;ge:0.02,0.2,0.4;reorder:0.05,0.005;dup:0.01;corrupt:0.005" in
  let a = Dumbbell.run ~faults (dumbbell_config ()) in
  let b = Dumbbell.run ~faults (dumbbell_config ()) in
  Alcotest.(check bool) "identical runs identical summaries" true
    (summaries a = summaries b)

let test_faulted_run_agenda_equivalence () =
  let faults = parse_ok "outage:1+0.5+5;ge:0.02,0.2,0.4;reorder:0.05,0.005" in
  let was = Engine.wheel_enabled () in
  Engine.use_wheel false;
  let heap = Dumbbell.run ~faults (dumbbell_config ()) in
  Engine.use_wheel true;
  let wheel = Dumbbell.run ~faults (dumbbell_config ()) in
  Engine.use_wheel was;
  Alcotest.(check bool) "heap and wheel agendas agree under faults" true
    (summaries heap = summaries wheel)

let test_ge_drops_affect_throughput () =
  let clean = Dumbbell.run (dumbbell_config ~duration:10. ()) in
  let lossy = Dumbbell.run ~faults:(parse_ok "ge:0.05,0.1,0.8") (dumbbell_config ~duration:10. ()) in
  let tput r =
    Array.fold_left (fun acc (f : Metrics.flow_summary) -> acc +. f.Metrics.throughput_mbps)
      0. r.Dumbbell.flows
  in
  Alcotest.(check bool) "bursty loss hurts throughput" true (tput lossy < tput clean)

(* ---------- Graceful degradation: idle restart ---------- *)

let remy_dumbbell_config ~factory ?(duration = 20.) ?(seed = 21) () =
  {
    Dumbbell.service = Dumbbell.Rate_mbps 10.;
    qdisc = Dumbbell.Droptail 1000;
    flows =
      Array.init 2 (fun _ ->
          {
            Dumbbell.cc = factory;
            rtt = 0.1;
            workload = fixed_transfer 150;
            start = `Immediate;
          });
    duration;
    seed;
    min_rto = Dumbbell.default_min_rto;
  }

let test_idle_restart_off_is_identity () =
  let tree = Remy.Rule_tree.create () in
  let a = Dumbbell.run (remy_dumbbell_config ~factory:(Remy.Remycc.factory tree) ()) in
  let b =
    Dumbbell.run
      (remy_dumbbell_config
         ~factory:(Remy.Remycc.factory ~idle_restart_s:infinity tree)
         ())
  in
  Alcotest.(check bool) "infinite threshold never fires" true
    (summaries a = summaries b)

let test_idle_restart_deterministic_under_outage () =
  let tree = Remy.Rule_tree.create () in
  let run () =
    Dumbbell.run
      ~faults:(parse_ok "outage:1+2")
      (remy_dumbbell_config ~factory:(Remy.Remycc.factory ~idle_restart_s:0.5 tree) ())
  in
  Alcotest.(check bool) "idle restart stays deterministic" true
    (summaries (run ()) = summaries (run ()))

let test_fleet_matches_records_under_faults () =
  (* The SoA fleet mirrors the per-record sender; the fault layer and
     idle-restart must not break the bit-identical equivalence. *)
  let tree = Remy.Rule_tree.create () in
  let faults = parse_ok "outage:0.5+1+4;ge:0.02,0.2,0.3" in
  let config idle =
    Topology.incast ~n:8
      ~cc:(Remy.Remycc.factory ?idle_restart_s:idle tree)
      ~duration:5. ~seed:13 ()
  in
  let flows r =
    Array.to_list
      (Array.map
         (fun (f : Metrics.flow_summary) ->
           (f.Metrics.packets, f.Metrics.bytes, f.Metrics.throughput_mbps))
         r.Topology.flows)
  in
  List.iter
    (fun idle ->
      let records = Topology.run ~faults (config idle) in
      let fleet =
        Topology.run ~faults
          ~sender_factory:(Remy.Fleet.factory ?idle_restart_s:idle tree)
          (config idle)
      in
      Alcotest.(check bool)
        (Printf.sprintf "fleet = records (idle_restart=%s)"
           (match idle with None -> "off" | Some s -> string_of_float s))
        true
        (flows records = flows fleet))
    [ None; Some 0.3 ]

(* ---------- RTO under long outages (regression: unbounded doubling) ---------- *)

let test_rto_bounded_under_blackout () =
  (* A sender facing a dead link for minutes: backoff must saturate at
     the named clamp instead of doubling without bound, and the first
     ACK after recovery must reset it. *)
  let faults = parse_ok "outage:1+60,drop" in
  let config =
    {
      Dumbbell.service = Dumbbell.Rate_mbps 10.;
      qdisc = Dumbbell.Droptail 1000;
      flows =
        [|
          {
            Dumbbell.cc = Newreno.factory ();
            rtt = 0.1;
            workload = fixed_transfer 100;
            start = `Immediate;
          };
        |];
      duration = 120.;
      seed = 31;
      min_rto = Dumbbell.default_min_rto;
    }
  in
  let r = Dumbbell.run ~faults config in
  Alcotest.(check int) "transfer completes after a 60 s blackout" 100
    r.Dumbbell.flows.(0).Metrics.packets

(* ---------- Chaos harness ---------- *)

let test_chaos_parse () =
  (match Chaos.parse "fail=pool-task:2,stall=round-end:1:0.5,corrupt=checkpoint-saved:1" with
  | Ok ds -> Alcotest.(check int) "three directives" 3 (List.length ds)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  List.iter
    (fun s ->
      match Chaos.parse s with
      | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
      | Error _ -> ())
    [ "explode=pool-task:1"; "fail=pool-task"; "fail=pool-task:0"; "stall=x:1" ]

let test_chaos_fail_fires_once () =
  Chaos.configure [ Chaos.directive ~point:"pool-task" ~nth:2 Chaos.Fail ];
  Fun.protect ~finally:Chaos.reset (fun () ->
      Alcotest.(check bool) "armed" true (Chaos.active ());
      Chaos.hit "pool-task";
      (match Chaos.hit "pool-task" with
      | () -> Alcotest.fail "second hit should raise"
      | exception Chaos.Injected p ->
        Alcotest.(check string) "carries point name" "pool-task" p);
      (* Fires exactly once: the third hit passes. *)
      Chaos.hit "pool-task";
      (* Unrelated points never fire. *)
      Chaos.hit "round-end")

let test_chaos_corrupt_flips_byte () =
  let path = Filename.temp_file "remy-chaos" ".bin" in
  Fun.protect
    ~finally:(fun () ->
      Chaos.reset ();
      Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.make 64 'x'));
      Chaos.configure
        [ Chaos.directive ~point:"checkpoint-saved" ~nth:1 Chaos.Corrupt_file ];
      Chaos.hit ~path "checkpoint-saved";
      let contents = In_channel.with_open_bin path In_channel.input_all in
      Alcotest.(check int) "size unchanged" 64 (String.length contents);
      Alcotest.(check bool) "one byte flipped" true
        (contents <> String.make 64 'x'))

let test_chaos_corrupted_checkpoint_rejected () =
  (* The full loop the CI chaos job relies on: corrupt a just-saved
     checkpoint and the loader must refuse it with a diagnostic. *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "remy-chaos-ckpt-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect ~finally:Chaos.reset (fun () ->
      let snapshot =
        {
          Remy.Checkpoint.config_hash = Remy.Checkpoint.hash_hex "chaos-test";
          position = Remy.Checkpoint.Epoch_start;
          epoch = 1;
          rounds = 1;
          improvements = 0;
          subdivisions = 0;
          evaluations = 5;
          spec_sims = 10;
          spec_skips = 0;
          last_score = -1.;
          elapsed_s = 1.;
          telemetry_epochs = 0;
          rng = Remy_util.Prng.state (Remy_util.Prng.create 1);
          tree = Remy.Rule_tree.create ();
        }
      in
      Remy.Checkpoint.save ~dir snapshot;
      (match Remy.Checkpoint.load ~dir with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "clean checkpoint rejected: %s" e);
      Chaos.configure
        [ Chaos.directive ~point:"checkpoint-saved" ~nth:1 Chaos.Corrupt_file ];
      Remy.Checkpoint.save ~dir snapshot;
      match Remy.Checkpoint.load ~dir with
      | Ok _ -> Alcotest.fail "corrupted checkpoint accepted"
      | Error _ -> ())

let test_chaos_pool_task_retried () =
  (* A fail directive inside a pool task must be absorbed by the retry
     machinery: the map still completes with correct results. *)
  Chaos.configure [ Chaos.directive ~point:"pool-task" ~nth:3 Chaos.Fail ];
  Fun.protect ~finally:Chaos.reset (fun () ->
      Remy.Par.Pool.with_pool ~retries:2 ~domains:2 (fun pool ->
          let xs = Array.init 16 (fun i -> i) in
          let ys = Remy.Par.Pool.map pool (fun x -> x * x) xs in
          Alcotest.(check (array int)) "map survives injected failure"
            (Array.map (fun x -> x * x) xs)
            ys))

let tests =
  [
    Alcotest.test_case "spec round-trip" `Quick test_parse_roundtrip;
    Alcotest.test_case "spec errors" `Quick test_parse_errors;
    Alcotest.test_case "presets resolve" `Quick test_presets_resolve;
    Alcotest.test_case "per-link scoping" `Quick test_for_link_scoping;
    Alcotest.test_case "GE stationary loss (fixed)" `Quick test_ge_stationary_fixed;
    Alcotest.test_case "GE absorbing bad state" `Quick test_ge_degenerate;
    Alcotest.test_case "GE deterministic" `Quick test_ge_determinism;
    QCheck_alcotest.to_alcotest ge_stationary_prop;
    Alcotest.test_case "empty spec returns inner" `Quick test_maybe_empty_is_inner;
    Alcotest.test_case "duplication and corruption" `Quick
      test_duplication_and_corruption;
    Alcotest.test_case "reorder holds packets" `Quick test_reorder_holds_packets;
    Alcotest.test_case "no-fault bit identity" `Slow test_no_fault_bit_identity;
    Alcotest.test_case "outage park delivers" `Slow
      test_outage_park_delivers_everything;
    Alcotest.test_case "outage drop recovers" `Slow test_outage_drop_recovers;
    Alcotest.test_case "faulted run deterministic" `Slow
      test_faulted_run_deterministic;
    Alcotest.test_case "heap/wheel agenda equivalence" `Slow
      test_faulted_run_agenda_equivalence;
    Alcotest.test_case "GE loss hurts throughput" `Slow
      test_ge_drops_affect_throughput;
    Alcotest.test_case "idle restart off = identity" `Slow
      test_idle_restart_off_is_identity;
    Alcotest.test_case "idle restart deterministic" `Slow
      test_idle_restart_deterministic_under_outage;
    Alcotest.test_case "fleet = records under faults" `Slow
      test_fleet_matches_records_under_faults;
    Alcotest.test_case "RTO bounded across blackout" `Slow
      test_rto_bounded_under_blackout;
    Alcotest.test_case "chaos parse" `Quick test_chaos_parse;
    Alcotest.test_case "chaos fail fires once" `Quick test_chaos_fail_fires_once;
    Alcotest.test_case "chaos corrupt flips byte" `Quick
      test_chaos_corrupt_flips_byte;
    Alcotest.test_case "corrupted checkpoint rejected" `Quick
      test_chaos_corrupted_checkpoint_rejected;
    Alcotest.test_case "pool retries injected failure" `Quick
      test_chaos_pool_task_retried;
  ]
