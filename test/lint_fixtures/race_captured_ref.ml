(* Seeded domain-safety violations: refs captured by closures that cross
   domain boundaries, directly and through a helper binding.  Expected
   findings are asserted (by line) in test_lint.ml — keep line numbers
   stable or update the test. *)

let direct_capture () =
  let hits = ref 0 in
  let d = Domain.spawn (fun () -> incr hits) in
  Domain.join d;
  !hits

let through_helper () =
  let total = ref 0. in
  let bump x = total := !total +. x in
  let d = Domain.spawn (fun () -> bump 1.5) in
  Domain.join d;
  !total

let retry_counter ~domains =
  let failures = ref 0 in
  Remy.Par.Pool.create ~on_retry:(fun ~task:_ ~attempt:_ _ -> incr failures) ~domains ()
