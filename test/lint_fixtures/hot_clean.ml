(* Clean twins for the hot-alloc pass: allocation-free hot functions,
   an audited cold branch, the raise-path exemption, and both annotation
   placements (preceding line and same line). *)

type acc = { mutable total : float; mutable count : int }

(* remy-lint: hot *)
let hot_fold t x =
  t.total <- t.total +. x;
  t.count <- t.count + 1

let hot_max xs = Array.fold_left Float.max neg_infinity xs (* remy-lint: hot *)

(* remy-lint: hot *)
let hot_ensure buf n =
  if n <= Bytes.length buf then buf
  else Bytes.create (2 * n) (* remy-lint: allow hot-alloc *)

(* remy-lint: hot *)
let hot_checked xs i =
  if i < 0 || i >= Array.length xs then
    invalid_arg (Printf.sprintf "hot_checked: index %d" i);
  Array.unsafe_get xs i
