(* Seeded global-mutable violations plus the exempt shapes: Atomic and
   Mutex bindings pass by type, module-level arrays are deliberately not
   flagged (read-only lookup tables are idiomatic), and an inline allow
   silences an audited entry. *)

let total_evals = ref 0
let memo : (int, float) Hashtbl.t = Hashtbl.create 16
let log_buf = Buffer.create 64

type cursor = { mutable pos : int }

let origin = { pos = 0 }

(* exempt by type *)
let enabled = Atomic.make false
let guard = Mutex.create ()

(* arrays: deliberately not flagged *)
let lut = Array.make 8 0.

(* remy-lint: allow global-mutable *)
let audited : int list ref = ref []
