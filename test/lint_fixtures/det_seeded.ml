(* Seeded determinism violations (the parsetree pass), plus both allow
   annotation placements. *)

let hash_anything x = Hashtbl.hash x
let sort_floats xs = List.sort compare xs
let now_s () = Unix.gettimeofday ()
let jitter () = Random.float 1.0

(* remy-lint: allow poly-hash *)
let audited_hash x = Hashtbl.hash x

let audited_sort xs = List.sort compare xs (* remy-lint: allow poly-compare *)
