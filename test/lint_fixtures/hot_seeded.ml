(* Seeded hot-alloc violations: every hot-annotated function below
   allocates, one construct per function. *)

type point = { px : int; py : int }

(* remy-lint: hot *)
let hot_pair a b = (a, b)

(* remy-lint: hot *)
let hot_cons x xs = x :: xs

(* remy-lint: hot *)
let hot_record px py = { px; py }

(* remy-lint: hot *)
let hot_array n = Array.make n 0

(* remy-lint: hot *)
let hot_closure k =
  let add = fun y -> y + k in
  add k

let labelled ~a b = a + b

(* remy-lint: hot *)
let hot_partial () = labelled 2
