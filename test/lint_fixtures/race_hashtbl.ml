(* Seeded domain-safety violations: a hashtable shared by the closures
   Par.map / Pool.map fan out across domains. *)

let tally_lengths xs =
  let seen = Hashtbl.create 8 in
  let _ =
    Remy.Par.map ~domains:2 (fun s -> Hashtbl.replace seen s (String.length s); s) xs
  in
  Hashtbl.length seen

let count_distinct pool xs =
  let seen = Hashtbl.create 8 in
  let _ = Remy.Par.Pool.map pool (fun x -> Hashtbl.replace seen x (); x) xs in
  Hashtbl.length seen
