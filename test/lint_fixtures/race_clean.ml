(* Clean twins of the race fixtures: the same shapes with the mutable
   state protected (Atomic, Mutex.protect, lock/unlock sequence, DLS) or
   domain-private.  The domain-safety pass must stay silent here. *)

let clean_atomic () =
  let hits = Atomic.make 0 in
  let d = Domain.spawn (fun () -> Atomic.incr hits) in
  Domain.join d;
  Atomic.get hits

let clean_mutex_protect () =
  let hits = ref 0 in
  let m = Mutex.create () in
  let d = Domain.spawn (fun () -> Mutex.protect m (fun () -> incr hits)) in
  Domain.join d;
  Mutex.protect m (fun () -> !hits)

let clean_lock_sequence () =
  let hits = ref 0 in
  let m = Mutex.create () in
  let d =
    Domain.spawn (fun () ->
        Mutex.lock m;
        incr hits;
        Mutex.unlock m)
  in
  Domain.join d;
  Mutex.lock m;
  let v = !hits in
  Mutex.unlock m;
  v

let clean_domain_private () =
  let d =
    Domain.spawn (fun () ->
        let acc = ref 0 in
        for i = 1 to 10 do
          acc := !acc + i
        done;
        !acc)
  in
  Domain.join d

let scratch_key = Domain.DLS.new_key (fun () -> ref 0)

let clean_dls () =
  let d =
    Domain.spawn (fun () ->
        let r = Domain.DLS.get scratch_key in
        incr r;
        !r)
  in
  Domain.join d
