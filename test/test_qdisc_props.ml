(* Property tests over queue disciplines: random enqueue/dequeue
   interleavings must preserve counting invariants for every
   implementation. *)

open Remy_sim

let mk_pkt ~flow seq = Packet.make ~flow ~seq ~conn:0 ~now:0. ()

(* Interpret a random op list against a qdisc, tracking time; check that
   accepted - dequeued - codel_drops = final length, and byte/packet
   accounting agree. *)
let run_ops make_qdisc ops =
  let q = make_qdisc () in
  let now = ref 0. in
  let accepted = ref 0 in
  let dequeued = ref 0 in
  let seq = ref 0 in
  List.iter
    (fun op ->
      now := !now +. 0.001;
      if op then begin
        incr seq;
        if q.Qdisc.enqueue ~now:!now (mk_pkt ~flow:(!seq mod 7) !seq) then
          incr accepted
      end
      else
        match q.Qdisc.dequeue ~now:!now with
        | Some _ -> incr dequeued
        | None -> ())
    ops;
  let len = q.Qdisc.length () in
  let bytes = q.Qdisc.byte_length () in
  (* Some disciplines (CoDel) drop at dequeue time; those drops are in
     drops() but were counted as accepted.  The fundamental conservation
     is: accepted = dequeued + still-queued + post-accept drops. *)
  let post_accept_drops = !accepted - !dequeued - len in
  len >= 0 && bytes = len * Packet.default_size && post_accept_drops >= 0

let qdisc_cases =
  [
    ("droptail", fun () -> Droptail.create ~capacity:50 ());
    ("codel", fun () -> Codel.create ~capacity:50 ());
    ("sfqcodel", fun () -> Sfq_codel.create ~capacity:50 ~bins:16 ());
    ( "dctcp-red",
      fun () -> Red.create_dctcp ~capacity:50 ~threshold:10 () );
    ( "red",
      fun () ->
        Red.create ~capacity:50 ~min_th:5. ~max_th:20. ~max_p:0.5 ~weight:0.1
          ~seed:3 () );
  ]

let prop_conservation (name, make_qdisc) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: packet/byte conservation" name)
    ~count:100
    QCheck.(list_of_size Gen.(int_range 0 400) bool)
    (fun ops -> run_ops make_qdisc ops)

let drain_everything (name, make_qdisc) =
  Alcotest.test_case (name ^ ": drains to empty") `Quick (fun () ->
      let q = make_qdisc () in
      for i = 0 to 29 do
        ignore (q.Qdisc.enqueue ~now:0. (mk_pkt ~flow:(i mod 5) i))
      done;
      let rec drain n =
        if n > 10_000 then Alcotest.fail "did not drain";
        match q.Qdisc.dequeue ~now:0.001 with
        | Some _ -> drain (n + 1)
        | None -> ()
      in
      drain 0;
      Alcotest.(check int) "empty" 0 (q.Qdisc.length ());
      Alcotest.(check int) "no bytes" 0 (q.Qdisc.byte_length ()))

let tests =
  List.map (fun case -> QCheck_alcotest.to_alcotest (prop_conservation case)) qdisc_cases
  @ List.map drain_everything qdisc_cases
