open Remy

let model = Net_model.onex ~sim_duration:3.0 ()

let specimens seed =
  Net_model.draw_many model (Remy_util.Prng.create seed) 3

let objective = Objective.proportional ~delta:1.0

let eval ?override ?tally tree specs =
  Evaluator.score ?override ?tally ~domains:1 ~objective
    ~queue_capacity:model.Net_model.queue_capacity
    ~duration:model.Net_model.sim_duration tree specs

let test_deterministic () =
  let tree = Rule_tree.create () in
  let r1 = eval tree (specimens 5) and r2 = eval tree (specimens 5) in
  Alcotest.(check (float 0.)) "same specimens, same score" r1.Evaluator.mean_score
    r2.Evaluator.mean_score

let test_specimens_matter () =
  let tree = Rule_tree.create () in
  let r1 = eval tree (specimens 5) and r2 = eval tree (specimens 6) in
  Alcotest.(check bool) "different specimens, different score" true
    (r1.Evaluator.mean_score <> r2.Evaluator.mean_score)

let test_override_changes_score () =
  let tree = Rule_tree.create () in
  let specs = specimens 5 in
  let base = eval tree specs in
  let slow =
    eval ~override:(0, { Action.multiple = 0.; increment = 1.; intersend_ms = 500. })
      tree specs
  in
  Alcotest.(check bool) "throttled candidate scores differently" true
    (base.Evaluator.mean_score <> slow.Evaluator.mean_score);
  Alcotest.(check bool) "throttled candidate scores worse" true
    (slow.Evaluator.mean_score < base.Evaluator.mean_score)

let test_tally_collected () =
  let tree = Rule_tree.create () in
  let tally = Tally.create ~capacity:(Rule_tree.capacity tree) ~seed:2 () in
  ignore (eval ~tally tree (specimens 5));
  Alcotest.(check bool) "rule usage observed" true (Tally.count tally 0 > 0);
  Alcotest.(check bool) "memory samples kept" true (Tally.samples tally 0 <> [])

let test_scores_finite () =
  let tree = Rule_tree.create () in
  let r = eval tree (specimens 9) in
  List.iter
    (fun s -> if not (Float.is_finite s) then Alcotest.fail "non-finite sender score")
    r.Evaluator.sender_scores;
  Alcotest.(check bool) "mean finite" true (Float.is_finite r.Evaluator.mean_score)

let test_flow_summaries_exposed () =
  let tree = Rule_tree.create () in
  let s = List.hd (specimens 5) in
  let flows =
    Evaluator.specimen_flow_summaries ~queue_capacity:model.Net_model.queue_capacity
      ~duration:model.Net_model.sim_duration tree s
  in
  Alcotest.(check int) "one summary per sender" s.Net_model.n (Array.length flows)

(* --- pooled baseline + incremental candidate evaluation -------------- *)

(* A tree with enough rules that some specimens skip some rules. *)
let subdivided_tree () =
  let tree = Rule_tree.create () in
  ignore
    (Rule_tree.subdivide tree 0
       ~at:(Memory.make ~ack_ewma:150. ~send_ewma:150. ~rtt_ratio:1.5));
  tree

let test_baseline_matches_score () =
  let tree = subdivided_tree () in
  let specs = specimens 5 in
  let one_shot = eval tree specs in
  Par.Pool.with_pool ~domains:2 (fun pool ->
      let pooled, cache =
        Evaluator.baseline ~pool ~objective
          ~queue_capacity:model.Net_model.queue_capacity
          ~duration:model.Net_model.sim_duration tree specs
      in
      Alcotest.(check (float 0.)) "identical mean" one_shot.Evaluator.mean_score
        pooled.Evaluator.mean_score;
      Alcotest.(check int) "one cache entry per specimen" (List.length specs)
        (Array.length cache);
      Array.iter
        (fun (c : Evaluator.spec_cache) ->
          Alcotest.(check bool) "some rule touched or no sender on" true
            (Array.exists Fun.id c.Evaluator.touched
            || c.Evaluator.scores = []))
        cache)

let test_candidates_incremental_identical () =
  let tree = subdivided_tree () in
  let specs = specimens 7 in
  let cand_of m =
    { Action.multiple = m; increment = 1.; intersend_ms = 1. }
  in
  let candidates = [| cand_of 0.5; cand_of 1.0; cand_of 1.5 |] in
  Par.Pool.with_pool ~domains:2 (fun pool ->
      let _, cache =
        Evaluator.baseline ~pool ~objective
          ~queue_capacity:model.Net_model.queue_capacity
          ~duration:model.Net_model.sim_duration tree specs
      in
      List.iter
        (fun rule ->
          let on, (sims_on, skips_on) =
            Evaluator.candidate_scores ~pool ~incremental:true ~objective
              ~queue_capacity:model.Net_model.queue_capacity
              ~duration:model.Net_model.sim_duration tree ~rule candidates cache
          in
          let off, (sims_off, skips_off) =
            Evaluator.candidate_scores ~pool ~incremental:false ~objective
              ~queue_capacity:model.Net_model.queue_capacity
              ~duration:model.Net_model.sim_duration tree ~rule candidates cache
          in
          Alcotest.(check (array (float 0.)))
            (Printf.sprintf "rule %d: cache on = cache off" rule)
            off on;
          (* And both match the one-shot override evaluation. *)
          Array.iteri
            (fun i cand ->
              let direct = (eval ~override:(rule, cand) tree specs).Evaluator.mean_score in
              Alcotest.(check (float 0.))
                (Printf.sprintf "rule %d cand %d matches one-shot" rule i)
                direct on.(i))
            candidates;
          Alcotest.(check int) "off simulates everything"
            (Array.length candidates * List.length specs)
            sims_off;
          Alcotest.(check int) "off skips nothing" 0 skips_off;
          Alcotest.(check int) "sims + skips = grid" sims_off (sims_on + skips_on))
        (Rule_tree.live_ids tree))

let test_candidates_skip_untouched () =
  (* Across all rules of a subdivided tree, at least one (rule, specimen)
     pair must be skippable — otherwise the cache test is vacuous. *)
  let tree = subdivided_tree () in
  let specs = specimens 11 in
  Par.Pool.with_pool ~domains:1 (fun pool ->
      let _, cache =
        Evaluator.baseline ~pool ~objective
          ~queue_capacity:model.Net_model.queue_capacity
          ~duration:model.Net_model.sim_duration tree specs
      in
      let total_skips =
        List.fold_left
          (fun acc rule ->
            let _, (_, skips) =
              Evaluator.candidate_scores ~pool ~incremental:true ~objective
                ~queue_capacity:model.Net_model.queue_capacity
                ~duration:model.Net_model.sim_duration tree ~rule
                [| Action.default |] cache
            in
            acc + skips)
          0 (Rule_tree.live_ids tree)
      in
      Alcotest.(check bool) "some specimen skipped for some rule" true
        (total_skips > 0))

let tests =
  [
    Alcotest.test_case "deterministic" `Slow test_deterministic;
    Alcotest.test_case "specimens matter" `Slow test_specimens_matter;
    Alcotest.test_case "override changes score" `Slow test_override_changes_score;
    Alcotest.test_case "tally collected" `Slow test_tally_collected;
    Alcotest.test_case "scores finite" `Slow test_scores_finite;
    Alcotest.test_case "flow summaries exposed" `Quick test_flow_summaries_exposed;
    Alcotest.test_case "pooled baseline matches one-shot score" `Slow
      test_baseline_matches_score;
    Alcotest.test_case "incremental candidates bit-identical" `Slow
      test_candidates_incremental_identical;
    Alcotest.test_case "incremental cache skips untouched specimens" `Slow
      test_candidates_skip_untouched;
  ]
