open Remy
open Remy_util

(* The compiled lookup index must be an invisible optimization: for any
   table reachable through the public API, every memory point must map
   to the same rule id through the flat index as through tree descent,
   and an optimizer run must design bit-for-bit the same table with the
   index on or off. *)

let agree t m =
  Rule_tree.lookup t m = Rule_tree.lookup_uncompiled t m

(* Probe a table at uniform random points, at every box corner (the cut
   coordinates themselves, where half-open boundary handling matters),
   and at the pathological floats the tracker can emit. *)
let check_agreement t probe_rng =
  let ok = ref true in
  for _ = 1 to 300 do
    let m =
      Memory.make
        ~ack_ewma:(Prng.float probe_rng Memory.max_value)
        ~send_ewma:(Prng.float probe_rng Memory.max_value)
        ~rtt_ratio:(Prng.float probe_rng Memory.max_value)
    in
    if not (agree t m) then ok := false
  done;
  List.iter
    (fun id ->
      let b = Rule_tree.box t id in
      List.iter
        (fun pick ->
          let m =
            Memory.make ~ack_ewma:(pick b.(0)) ~send_ewma:(pick b.(1))
              ~rtt_ratio:(pick b.(2))
          in
          if not (agree t m) then ok := false)
        [ fst; snd; (fun (lo, hi) -> (lo +. hi) /. 2.) ])
    (Rule_tree.live_ids t);
  List.iter
    (fun m -> if not (agree t m) then ok := false)
    [
      Memory.zero;
      Memory.make ~ack_ewma:Float.nan ~send_ewma:0. ~rtt_ratio:0.;
      Memory.make ~ack_ewma:Float.nan ~send_ewma:Float.nan ~rtt_ratio:Float.nan;
      Memory.make ~ack_ewma:(Memory.max_value -. 1e-9) ~send_ewma:0.
        ~rtt_ratio:(Memory.max_value -. 1e-9);
    ];
  !ok

let prop_compiled_matches_tree =
  QCheck.Test.make ~name:"compiled lookup = tree descent on random tables"
    ~count:50
    QCheck.(pair (int_range 0 5) (int_range 0 10_000))
    (fun (depth, seed) ->
      let t = Test_rule_tree.random_tree (Prng.create (seed + 1)) depth in
      (match Rule_tree.index_state t with
      | `Built _ -> ()
      | `Unbuilt | `Too_large -> QCheck.Test.fail_report "index not built");
      check_agreement t (Prng.create ((seed * 7919) + 13)))

let test_set_action_keeps_index () =
  let t = Test_rule_tree.random_tree (Prng.create 3) 3 in
  List.iter
    (fun id ->
      Rule_tree.set_action t id
        { Action.multiple = 0.5; increment = 1.; intersend_ms = 2. })
    (Rule_tree.live_ids t);
  (match Rule_tree.index_state t with
  | `Built _ -> ()
  | `Unbuilt | `Too_large -> Alcotest.fail "set_action invalidated the index");
  Alcotest.(check bool) "still agrees" true
    (check_agreement t (Prng.create 17))

let test_toggle_off_uses_tree () =
  let t = Test_rule_tree.random_tree (Prng.create 4) 3 in
  let probe = Prng.create 23 in
  let points =
    Array.init 200 (fun _ ->
        Memory.make
          ~ack_ewma:(Prng.float probe Memory.max_value)
          ~send_ewma:(Prng.float probe Memory.max_value)
          ~rtt_ratio:(Prng.float probe Memory.max_value))
  in
  let with_compiled = Array.map (Rule_tree.lookup t) points in
  Rule_tree.use_compiled_lookup false;
  Fun.protect
    ~finally:(fun () -> Rule_tree.use_compiled_lookup true)
    (fun () ->
      Alcotest.(check bool) "toggle reads back" false
        (Rule_tree.compiled_lookup_enabled ());
      Array.iteri
        (fun i m ->
          Alcotest.(check int) "same id with lookup disabled" with_compiled.(i)
            (Rule_tree.lookup t m))
        points)

let test_serialization_rebuilds_index () =
  let t = Test_rule_tree.random_tree (Prng.create 6) 4 in
  let path = Filename.temp_file "rules" ".rules" in
  Rule_tree.save path t;
  (match Rule_tree.load path with
  | Error msg -> Alcotest.fail msg
  | Ok t' ->
    (match Rule_tree.index_state t' with
    | `Built _ -> ()
    | `Unbuilt | `Too_large -> Alcotest.fail "loaded table has no index");
    Alcotest.(check bool) "loaded table agrees with itself" true
      (check_agreement t' (Prng.create 29)));
  Sys.remove path

(* Past [max_index_cells] the index must refuse to build and lookups
   must fall back to descent — still agreeing, because
   [lookup_uncompiled] is then both sides of the comparison's oracle and
   the compiled path returns it verbatim. *)
let test_too_large_falls_back () =
  let t = Rule_tree.create () in
  let rng = Prng.create 9 in
  (* Subdivisions at distinct coordinates add up to one cut per
     dimension each; past ~161 cuts/dim the dense grid would exceed the
     cell cap. *)
  let target = 175 in
  let continue = ref true in
  while !continue do
    let ids = Rule_tree.live_ids t in
    let id = List.nth ids (Prng.int rng (List.length ids)) in
    let b = Rule_tree.box t id in
    ignore
      (Rule_tree.subdivide t id
         ~at:
           (Memory.make
              ~ack_ewma:(Prng.uniform rng (fst b.(0)) (snd b.(0)))
              ~send_ewma:(Prng.uniform rng (fst b.(1)) (snd b.(1)))
              ~rtt_ratio:(Prng.uniform rng (fst b.(2)) (snd b.(2)))));
    match Rule_tree.index_state t with
    | `Too_large -> continue := false
    | `Built _ | `Unbuilt ->
      if List.length (Rule_tree.live_ids t) > target * 7 + 1 then
        continue := false
  done;
  (match Rule_tree.index_state t with
  | `Too_large -> ()
  | `Built _ | `Unbuilt -> Alcotest.fail "index never hit the cell cap");
  Alcotest.(check bool) "fallback agrees" true
    (check_agreement t (Prng.create 41))

(* The acceptance property for the whole PR: a full design run is
   bit-identical with the compiled index on and off.  Same shape as the
   optimizer's domain/incremental invariance tests. *)
let tiny_model =
  { (Net_model.onex ~sim_duration:2.0 ()) with Net_model.max_senders = 1 }

let design_config () =
  Optimizer.default_config ~specimens_per_step:3 ~domains:2
    ~candidate_multipliers:[ 1. ] ~rounds_per_rule:2 ~k_subdivide:1
    ~max_epochs:2 ~wall_budget_s:300. ~seed:5 ~model:tiny_model
    ~objective:(Objective.proportional ~delta:1.0) ()

let test_design_invariant_to_compiled_lookup () =
  let design_with on =
    Rule_tree.use_compiled_lookup on;
    Fun.protect
      ~finally:(fun () -> Rule_tree.use_compiled_lookup true)
      (fun () -> Optimizer.design (design_config ()))
  in
  let r_on = design_with true in
  let r_off = design_with false in
  Alcotest.(check string) "identical rule table"
    (Sexp.to_string (Rule_tree.to_sexp r_on.Optimizer.tree))
    (Sexp.to_string (Rule_tree.to_sexp r_off.Optimizer.tree));
  Alcotest.(check (float 0.)) "identical final score (bit-exact)"
    r_on.Optimizer.final_score r_off.Optimizer.final_score;
  Alcotest.(check int) "identical evaluations" r_on.Optimizer.evaluations
    r_off.Optimizer.evaluations;
  Alcotest.(check int) "identical improvements" r_on.Optimizer.improvements
    r_off.Optimizer.improvements

let tests =
  [
    QCheck_alcotest.to_alcotest prop_compiled_matches_tree;
    Alcotest.test_case "set_action keeps the index valid" `Quick
      test_set_action_keeps_index;
    Alcotest.test_case "disabling the toggle matches compiled ids" `Quick
      test_toggle_off_uses_tree;
    Alcotest.test_case "save/load rebuilds the index" `Quick
      test_serialization_rebuilds_index;
    Alcotest.test_case "oversized tables fall back to descent" `Slow
      test_too_large_falls_back;
    Alcotest.test_case "design invariant to compiled lookup" `Slow
      test_design_invariant_to_compiled_lookup;
  ]
